//! # pic2d — facade crate
//!
//! Re-exports the whole workspace behind one dependency, mirroring the system
//! described in *Barsamian, Hirstoaga, Violard, “Efficient Data Structures for
//! a Hybrid Parallel and Vectorized Particle-in-Cell Code”, IPDPSW 2017*.
//!
//! The sub-crates:
//!
//! * [`sfc`] — space-filling-curve cell layouts (row-major, L4D, Morton, Hilbert)
//! * [`spectral`] — radix-2 FFT and the periodic spectral Poisson solver
//! * [`cachesim`] — trace-driven set-associative cache-hierarchy simulator
//! * [`minimpi`] — in-process message-passing substrate with a LogGP cost model
//! * [`pic_core`] — the PIC library itself (particles, fields, kernels, sort, sim)
//! * [`decomp`] — spatial domain decomposition (SFC partitions, halo exchange,
//!   particle migration) layered on `minimpi` point-to-point messaging
//! * [`serve`] — multi-tenant job runtime: many simulations over one shared
//!   pool, with checkpoint preemption, deadlines, retry/backoff, quarantine,
//!   load shedding, and fingerprint-keyed result caching
//!
//! ## Quickstart
//!
//! ```
//! use pic2d::pic_core::sim::{PicConfig, Simulation};
//!
//! let cfg = PicConfig::landau_table1(1_000); // tiny scale of the paper's Table I case
//! let mut sim = Simulation::new(cfg).unwrap();
//! sim.run(10);
//! assert!(sim.diagnostics().relative_energy_drift() < 0.05);
//! ```

pub use cachesim;
pub use decomp;
pub use minimpi;
pub use pic_core;
pub use serve;
pub use sfc;
pub use spectral;

/// Crate version of the facade, for tooling.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
