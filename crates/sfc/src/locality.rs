//! Locality metrics for cell layouts.
//!
//! The paper's §IV-B argues about cache behaviour through the distribution of
//! `|encode(neighbour) − encode(cell)|` for unit moves along each axis: a move
//! whose index delta stays under a cache line (or a few lines) keeps the
//! freshly-loaded field data usable; a large delta forces a reload. This
//! module computes those distributions so the analysis bench can print the
//! paper's 7/8-vs-1/2 argument quantitatively.

use crate::CellLayout;

/// Summary of index deltas produced by unit moves along one axis.
#[derive(Debug, Clone, PartialEq)]
pub struct MoveStats {
    /// Fraction of moves with `|Δicell| == 1`.
    pub unit_fraction: f64,
    /// Fraction of moves with `|Δicell| <= threshold` (see [`axis_move_stats`]).
    pub near_fraction: f64,
    /// Mean `|Δicell|`.
    pub mean_abs_delta: f64,
    /// Maximum `|Δicell|`.
    pub max_abs_delta: usize,
    /// Number of moves sampled.
    pub samples: usize,
}

/// Direction of a unit move on the grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Axis {
    /// `ix → ix + 1` (the paper's “vertical” move, Fig. 4 orientation).
    X,
    /// `iy → iy + 1` (the paper's “horizontal” move).
    Y,
}

/// Compute the index-delta statistics for unit moves along `axis`.
///
/// `near_threshold` is the delta (in cells) still considered cache-friendly;
/// with the redundant ρ layout (4 doubles = 32 B per cell) a 64-B line holds
/// 2 cells, so a threshold of 8 covers the paper's L4D stride.
pub fn axis_move_stats(layout: &dyn CellLayout, axis: Axis, near_threshold: usize) -> MoveStats {
    let (ncx, ncy) = (layout.ncx(), layout.ncy());
    let mut samples = 0usize;
    let mut unit = 0usize;
    let mut near = 0usize;
    let mut sum: u128 = 0;
    let mut max = 0usize;
    let (xs, ys) = match axis {
        Axis::X => (ncx - 1, ncy),
        Axis::Y => (ncx, ncy - 1),
    };
    for ix in 0..xs {
        for iy in 0..ys {
            let from = layout.encode(ix, iy);
            let to = match axis {
                Axis::X => layout.encode(ix + 1, iy),
                Axis::Y => layout.encode(ix, iy + 1),
            };
            let d = from.abs_diff(to);
            samples += 1;
            unit += usize::from(d == 1);
            near += usize::from(d <= near_threshold);
            sum += d as u128;
            max = max.max(d);
        }
    }
    MoveStats {
        unit_fraction: unit as f64 / samples as f64,
        near_fraction: near as f64 / samples as f64,
        mean_abs_delta: sum as f64 / samples as f64,
        max_abs_delta: max,
        samples,
    }
}

/// Average of the `near_fraction` over both axes — a single scalar “locality
/// score” used to rank layouts (higher is better).
pub fn locality_score(layout: &dyn CellLayout, near_threshold: usize) -> f64 {
    let x = axis_move_stats(layout, Axis::X, near_threshold);
    let y = axis_move_stats(layout, Axis::Y, near_threshold);
    0.5 * (x.near_fraction + y.near_fraction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Hilbert, Morton, RowMajor, L4D};

    #[test]
    fn row_major_y_moves_all_unit() {
        let l = RowMajor::new(128, 128).unwrap();
        let y = axis_move_stats(&l, Axis::Y, 8);
        assert_eq!(y.unit_fraction, 1.0);
        // …and every x move jumps by ncy.
        let x = axis_move_stats(&l, Axis::X, 8);
        assert_eq!(x.unit_fraction, 0.0);
        assert_eq!(x.max_abs_delta, 128);
        assert_eq!(x.mean_abs_delta, 128.0);
    }

    #[test]
    fn l4d_matches_paper_fractions() {
        // §IV-B with SIZE = 8: 7/8 of horizontal (y) moves are unit-stride;
        // all vertical (x) moves jump by exactly 8.
        let l = L4D::new(128, 128, 8).unwrap();
        let y = axis_move_stats(&l, Axis::Y, 8);
        assert!((y.unit_fraction - 7.0 / 8.0).abs() < 0.01);
        let x = axis_move_stats(&l, Axis::X, 8);
        assert_eq!(x.unit_fraction, 0.0);
        assert_eq!(x.max_abs_delta, 8);
        assert_eq!(x.near_fraction, 1.0);
    }

    #[test]
    fn morton_beats_row_major_on_combined_score() {
        let rm = RowMajor::new(128, 128).unwrap();
        let mo = Morton::new(128, 128).unwrap();
        assert!(locality_score(&mo, 8) > locality_score(&rm, 8));
    }

    #[test]
    fn hilbert_has_best_axis_balance() {
        // Hilbert's unit moves are balanced across axes, unlike row-major.
        let h = Hilbert::new(64, 64).unwrap();
        let x = axis_move_stats(&h, Axis::X, 8);
        let y = axis_move_stats(&h, Axis::Y, 8);
        assert!(x.unit_fraction > 0.2);
        assert!(y.unit_fraction > 0.2);
    }

    #[test]
    fn l4d_size_sweep_monotone_x_stride() {
        // Larger SIZE → larger x-move delta (trade-off the bench sweeps).
        for size in [4usize, 8, 16, 32] {
            let l = L4D::new(128, 128, size).unwrap();
            let x = axis_move_stats(&l, Axis::X, size);
            assert_eq!(x.max_abs_delta, size);
        }
    }
}
