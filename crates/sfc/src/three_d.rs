//! Three-dimensional space-filling curves — the paper's §VI outlook
//! (“formulas also exist for space-filling curves in three dimensions”),
//! provided so a 3d3v extension of the PIC code can reuse this crate.
//!
//! The same design as the 2-D layouts: a [`CellLayout3D`] bijection between
//! `(ix, iy, iz)` and a flat `icell`, with row-major, Morton (3-D dilated
//! integers) and Hilbert (Skilling's algorithm for n = 3) instances.

use crate::LayoutError;

/// A bijection between 3-D cell coordinates and a flat index.
pub trait CellLayout3D: Send + Sync {
    /// Cells along x.
    fn ncx(&self) -> usize;
    /// Cells along y.
    fn ncy(&self) -> usize;
    /// Cells along z.
    fn ncz(&self) -> usize;

    /// Flat array size (≥ `ncx·ncy·ncz`).
    fn ncells(&self) -> usize {
        self.ncx() * self.ncy() * self.ncz()
    }

    /// Map cell coordinates to the flat index.
    fn encode(&self, ix: usize, iy: usize, iz: usize) -> usize;

    /// Inverse of [`encode`](CellLayout3D::encode).
    fn decode(&self, icell: usize) -> (usize, usize, usize);

    /// Layout name.
    fn name(&self) -> &'static str;
}

/// Row-major 3-D order: `icell = (ix·ncy + iy)·ncz + iz`.
#[derive(Debug, Clone, Copy)]
pub struct RowMajor3D {
    ncx: usize,
    ncy: usize,
    ncz: usize,
}

impl RowMajor3D {
    /// Build a 3-D row-major layout.
    pub fn new(ncx: usize, ncy: usize, ncz: usize) -> Result<Self, LayoutError> {
        if ncx == 0 || ncy == 0 || ncz == 0 {
            return Err(LayoutError::ZeroDimension);
        }
        Ok(Self { ncx, ncy, ncz })
    }
}

impl CellLayout3D for RowMajor3D {
    fn ncx(&self) -> usize {
        self.ncx
    }
    fn ncy(&self) -> usize {
        self.ncy
    }
    fn ncz(&self) -> usize {
        self.ncz
    }

    #[inline]
    fn encode(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.ncx && iy < self.ncy && iz < self.ncz);
        (ix * self.ncy + iy) * self.ncz + iz
    }

    #[inline]
    fn decode(&self, icell: usize) -> (usize, usize, usize) {
        let iz = icell % self.ncz;
        let rest = icell / self.ncz;
        (rest / self.ncy, rest % self.ncy, iz)
    }

    fn name(&self) -> &'static str {
        "Row-major 3D"
    }
}

/// Dilate the low 21 bits of `x` so bit `i` lands at bit `3i`.
#[inline]
pub fn dilate3(x: u64) -> u64 {
    debug_assert!(x < (1 << 21));
    let mut x = x & 0x1F_FFFF;
    x = (x | (x << 32)) & 0x001F_0000_0000_FFFF;
    x = (x | (x << 16)) & 0x001F_0000_FF00_00FF;
    x = (x | (x << 8)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x << 4)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x << 2)) & 0x1249_2492_4924_9249;
    x
}

/// Inverse of [`dilate3`].
#[inline]
pub fn contract3(x: u64) -> u64 {
    let mut x = x & 0x1249_2492_4924_9249;
    x = (x | (x >> 2)) & 0x10C3_0C30_C30C_30C3;
    x = (x | (x >> 4)) & 0x100F_00F0_0F00_F00F;
    x = (x | (x >> 8)) & 0x001F_0000_FF00_00FF;
    x = (x | (x >> 16)) & 0x001F_0000_0000_FFFF;
    x = (x | (x >> 32)) & 0x001F_FFFF;
    x
}

/// 3-D Morton order on a cubic power-of-two grid; `iz` is the fast axis.
#[derive(Debug, Clone, Copy)]
pub struct Morton3D {
    side: usize,
}

impl Morton3D {
    /// Build a 3-D Morton layout on a cube of power-of-two `side`.
    pub fn new(side: usize) -> Result<Self, LayoutError> {
        if side == 0 {
            return Err(LayoutError::ZeroDimension);
        }
        if !side.is_power_of_two() {
            return Err(LayoutError::NotPowerOfTwo { dim: side });
        }
        Ok(Self { side })
    }
}

impl CellLayout3D for Morton3D {
    fn ncx(&self) -> usize {
        self.side
    }
    fn ncy(&self) -> usize {
        self.side
    }
    fn ncz(&self) -> usize {
        self.side
    }

    #[inline]
    fn encode(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.side && iy < self.side && iz < self.side);
        ((dilate3(ix as u64) << 2) | (dilate3(iy as u64) << 1) | dilate3(iz as u64)) as usize
    }

    #[inline]
    fn decode(&self, icell: usize) -> (usize, usize, usize) {
        let c = icell as u64;
        (
            contract3(c >> 2) as usize,
            contract3(c >> 1) as usize,
            contract3(c) as usize,
        )
    }

    fn name(&self) -> &'static str {
        "Morton 3D"
    }
}

/// 3-D Hilbert order via Skilling's transposition algorithm (n = 3).
#[derive(Debug, Clone, Copy)]
pub struct Hilbert3D {
    side: usize,
    b: u32,
}

impl Hilbert3D {
    /// Build a 3-D Hilbert layout on a cube of power-of-two `side`.
    pub fn new(side: usize) -> Result<Self, LayoutError> {
        if side == 0 {
            return Err(LayoutError::ZeroDimension);
        }
        if !side.is_power_of_two() {
            return Err(LayoutError::NotPowerOfTwo { dim: side });
        }
        Ok(Self {
            side,
            b: side.trailing_zeros(),
        })
    }

    fn axes_to_transpose(&self, x: &mut [usize; 3]) {
        if self.b == 0 {
            return;
        }
        let m = 1usize << (self.b - 1);
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            for i in 0..3 {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q >>= 1;
        }
        for i in 1..3 {
            x[i] ^= x[i - 1];
        }
        let mut t = 0usize;
        let mut q = m;
        while q > 1 {
            if x[2] & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        for xi in x.iter_mut() {
            *xi ^= t;
        }
    }

    fn transpose_to_axes(&self, x: &mut [usize; 3]) {
        if self.b == 0 {
            return;
        }
        let n = 2usize << (self.b - 1);
        let t = x[2] >> 1;
        for i in (1..3).rev() {
            x[i] ^= x[i - 1];
        }
        x[0] ^= t;
        let mut q = 2usize;
        while q != n {
            let p = q - 1;
            for i in (0..3).rev() {
                if x[i] & q != 0 {
                    x[0] ^= p;
                } else {
                    let t = (x[0] ^ x[i]) & p;
                    x[0] ^= t;
                    x[i] ^= t;
                }
            }
            q <<= 1;
        }
    }
}

impl CellLayout3D for Hilbert3D {
    fn ncx(&self) -> usize {
        self.side
    }
    fn ncy(&self) -> usize {
        self.side
    }
    fn ncz(&self) -> usize {
        self.side
    }

    #[inline]
    fn encode(&self, ix: usize, iy: usize, iz: usize) -> usize {
        debug_assert!(ix < self.side && iy < self.side && iz < self.side);
        let mut x = [ix, iy, iz];
        self.axes_to_transpose(&mut x);
        ((dilate3(x[0] as u64) << 2) | (dilate3(x[1] as u64) << 1) | dilate3(x[2] as u64)) as usize
    }

    #[inline]
    fn decode(&self, icell: usize) -> (usize, usize, usize) {
        let c = icell as u64;
        let mut x = [
            contract3(c >> 2) as usize,
            contract3(c >> 1) as usize,
            contract3(c) as usize,
        ];
        self.transpose_to_axes(&mut x);
        (x[0], x[1], x[2])
    }

    fn name(&self) -> &'static str {
        "Hilbert 3D"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilate3_roundtrip() {
        for x in [0u64, 1, 2, 7, 255, 4095, (1 << 21) - 1] {
            assert_eq!(contract3(dilate3(x)), x, "x={x}");
        }
        assert_eq!(dilate3(0b111), 0b111_111_111 & 0x249);
        // bit i → bit 3i
        assert_eq!(dilate3(0b101), 0b001_000_001);
    }

    fn check_bijection_3d(l: &dyn CellLayout3D) {
        let (nx, ny, nz) = (l.ncx(), l.ncy(), l.ncz());
        let mut seen = vec![false; l.ncells()];
        for ix in 0..nx {
            for iy in 0..ny {
                for iz in 0..nz {
                    let c = l.encode(ix, iy, iz);
                    assert!(c < l.ncells(), "{}: out of range", l.name());
                    assert!(!seen[c], "{}: collision at ({ix},{iy},{iz})", l.name());
                    seen[c] = true;
                    assert_eq!(l.decode(c), (ix, iy, iz), "{}", l.name());
                }
            }
        }
    }

    #[test]
    fn row_major_3d_bijection() {
        check_bijection_3d(&RowMajor3D::new(4, 8, 2).unwrap());
        check_bijection_3d(&RowMajor3D::new(8, 8, 8).unwrap());
    }

    #[test]
    fn morton_3d_bijection() {
        check_bijection_3d(&Morton3D::new(8).unwrap());
        check_bijection_3d(&Morton3D::new(16).unwrap());
    }

    #[test]
    fn hilbert_3d_bijection() {
        check_bijection_3d(&Hilbert3D::new(4).unwrap());
        check_bijection_3d(&Hilbert3D::new(8).unwrap());
        check_bijection_3d(&Hilbert3D::new(16).unwrap());
    }

    #[test]
    fn hilbert_3d_consecutive_adjacent() {
        for side in [2usize, 4, 8] {
            let h = Hilbert3D::new(side).unwrap();
            let mut prev = h.decode(0);
            for c in 1..side * side * side {
                let cur = h.decode(c);
                let d = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1) + prev.2.abs_diff(cur.2);
                assert_eq!(d, 1, "side={side} step {c}: {prev:?} -> {cur:?}");
                prev = cur;
            }
        }
    }

    #[test]
    fn morton_3d_octant_locality() {
        // Each 2×2×2 block is 8 consecutive indices.
        let m = Morton3D::new(8).unwrap();
        let mut idx: Vec<usize> = (0..2)
            .flat_map(|x| (0..2).flat_map(move |y| (0..2).map(move |z| (x, y, z))))
            .map(|(x, y, z)| m.encode(x, y, z))
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn rejects_bad_dims() {
        assert!(Morton3D::new(0).is_err());
        assert!(Morton3D::new(12).is_err());
        assert!(Hilbert3D::new(6).is_err());
        assert!(RowMajor3D::new(0, 1, 1).is_err());
    }
}
