//! Dilated-integer arithmetic for Morton encoding (Raman & Wise, *Converting
//! to and from Dilated Integers*, IEEE ToC 57(4), 2008).
//!
//! A *dilated* integer has its bits spread out so that bit `i` of the source
//! lands in bit `2i` of the result: `0b1011 → 0b01_00_01_01`. Interleaving two
//! dilated integers (one shifted left by one) yields the Morton code.
//!
//! Two variants are provided, matching the paper's §IV-B discussion:
//!
//! * [`dilate_bits`] / [`contract_bits`]: the branch-free magic-mask ladder
//!   (the paper's “Algorithm 5 from [17]”, ~5–12 ops) — auto-vectorizable;
//! * [`dilate_bits_lut`] / [`contract_bits_lut`]: byte-wise lookup tables —
//!   fewer ALU ops but an indirection that *blocks* vectorization, which is
//!   why the paper discards it for the particle loop.

/// Dilate the low 32 bits of `x`: bit `i` of `x` moves to bit `2i`.
///
/// ```
/// # use sfc::dilate_bits;
/// assert_eq!(dilate_bits(0b1011), 0b01_00_01_01);
/// assert_eq!(dilate_bits(u32::MAX as u64), 0x5555_5555_5555_5555);
/// ```
#[inline]
pub fn dilate_bits(x: u64) -> u64 {
    debug_assert!(x <= u32::MAX as u64, "dilate_bits takes a 32-bit value");
    let mut x = x & 0xFFFF_FFFF;
    x = (x | (x << 16)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x << 8)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x << 4)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x << 2)) & 0x3333_3333_3333_3333;
    x = (x | (x << 1)) & 0x5555_5555_5555_5555;
    x
}

/// Inverse of [`dilate_bits`]: collect every even-position bit of `x`.
///
/// ```
/// # use sfc::{contract_bits, dilate_bits};
/// assert_eq!(contract_bits(dilate_bits(12345)), 12345);
/// ```
#[inline]
pub fn contract_bits(x: u64) -> u64 {
    let mut x = x & 0x5555_5555_5555_5555;
    x = (x | (x >> 1)) & 0x3333_3333_3333_3333;
    x = (x | (x >> 2)) & 0x0F0F_0F0F_0F0F_0F0F;
    x = (x | (x >> 4)) & 0x00FF_00FF_00FF_00FF;
    x = (x | (x >> 8)) & 0x0000_FFFF_0000_FFFF;
    x = (x | (x >> 16)) & 0x0000_0000_FFFF_FFFF;
    x
}

/// 256-entry table: `DILATE_TABLE[b]` is byte `b` dilated to 16 bits.
static DILATE_TABLE: [u16; 256] = build_dilate_table();

const fn build_dilate_table() -> [u16; 256] {
    let mut table = [0u16; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u16;
        let mut i = 0;
        while i < 8 {
            v |= (((b >> i) & 1) as u16) << (2 * i);
            i += 1;
        }
        table[b] = v;
        b += 1;
    }
    table
}

/// 256-entry table: `CONTRACT_TABLE[b]` collects the even bits of byte `b`
/// into a nibble.
static CONTRACT_TABLE: [u8; 256] = build_contract_table();

const fn build_contract_table() -> [u8; 256] {
    let mut table = [0u8; 256];
    let mut b = 0usize;
    while b < 256 {
        let mut v = 0u8;
        let mut i = 0;
        while i < 4 {
            v |= (((b >> (2 * i)) & 1) as u8) << i;
            i += 1;
        }
        table[b] = v;
        b += 1;
    }
    table
}

/// Lookup-table dilation (the variant the paper *discards* for the particle
/// loop because the table indirection inhibits vectorization).
///
/// ```
/// # use sfc::{dilate_bits, dilate_bits_lut};
/// for x in [0u64, 1, 77, 0xFFFF, 0xDEAD_BEEF] {
///     assert_eq!(dilate_bits_lut(x), dilate_bits(x));
/// }
/// ```
#[inline]
pub fn dilate_bits_lut(x: u64) -> u64 {
    debug_assert!(x <= u32::MAX as u64);
    let b0 = DILATE_TABLE[(x & 0xFF) as usize] as u64;
    let b1 = DILATE_TABLE[((x >> 8) & 0xFF) as usize] as u64;
    let b2 = DILATE_TABLE[((x >> 16) & 0xFF) as usize] as u64;
    let b3 = DILATE_TABLE[((x >> 24) & 0xFF) as usize] as u64;
    b0 | (b1 << 16) | (b2 << 32) | (b3 << 48)
}

/// Lookup-table contraction, inverse of [`dilate_bits_lut`].
#[inline]
pub fn contract_bits_lut(x: u64) -> u64 {
    let mut out = 0u64;
    let mut i = 0;
    while i < 8 {
        let byte = ((x >> (8 * i)) & 0xFF) as usize;
        out |= (CONTRACT_TABLE[byte] as u64) << (4 * i);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dilate_spreads_bits() {
        assert_eq!(dilate_bits(0), 0);
        assert_eq!(dilate_bits(1), 1);
        assert_eq!(dilate_bits(2), 4);
        assert_eq!(dilate_bits(3), 5);
        assert_eq!(dilate_bits(0b111), 0b010101);
    }

    #[test]
    fn contract_inverts_dilate_exhaustive_16bit() {
        for x in 0u64..=0xFFFF {
            assert_eq!(contract_bits(dilate_bits(x)), x);
        }
    }

    #[test]
    fn lut_matches_arithmetic_exhaustive_16bit() {
        for x in 0u64..=0xFFFF {
            assert_eq!(dilate_bits_lut(x), dilate_bits(x), "x={x}");
        }
    }

    #[test]
    fn lut_contract_inverts() {
        for x in [0u64, 1, 255, 256, 65535, 0x0012_3456, 0xFFFF_FFFF] {
            assert_eq!(contract_bits_lut(dilate_bits_lut(x)), x);
        }
    }

    #[test]
    fn dilate_large_values() {
        let x = 0xFFFF_FFFFu64;
        assert_eq!(dilate_bits(x), 0x5555_5555_5555_5555);
        assert_eq!(contract_bits(0x5555_5555_5555_5555), x);
    }

    #[test]
    fn contract_ignores_odd_bits() {
        // Odd-position bits must not leak into the contraction.
        assert_eq!(contract_bits(0b10), 0);
        assert_eq!(contract_bits(0b11), 1);
        assert_eq!(contract_bits(0xAAAA_AAAA_AAAA_AAAA), 0);
    }
}
