//! Range-cut helpers for SFC-based domain decomposition.
//!
//! A space-filling curve turns the 2-D cell grid into a 1-D sequence in
//! which spatially close cells sit at nearby indices. Cutting that sequence
//! into contiguous index ranges therefore yields rank subdomains that are
//! (a) trivially load-balanced — every rank gets the same number of cells,
//! or the same total weight under [`cut_weighted`] — and (b) spatially
//! compact, because the curve's locality keeps each range's cells clustered
//! (the spacetree-partitioning argument of Weinzierl et al.). The helpers
//! here are pure index arithmetic: they know nothing about grids or ranks,
//! only how to split `[0, n)` (optionally weighted) into `k` contiguous,
//! non-overlapping, exhaustive pieces.

use std::ops::Range;

/// Split `[0, ncells)` into `nparts` contiguous ranges of near-equal size.
///
/// The first `ncells % nparts` ranges get one extra cell, so sizes differ by
/// at most one. Every cell lands in exactly one range and ranges are emitted
/// in ascending index order.
///
/// # Panics
/// Panics if `nparts == 0` or `nparts > ncells` (an empty subdomain cannot
/// own a halo and signals a misconfigured run).
pub fn cut_uniform(ncells: usize, nparts: usize) -> Vec<Range<usize>> {
    assert!(nparts > 0, "need at least one part");
    assert!(
        nparts <= ncells,
        "cannot cut {ncells} cells into {nparts} non-empty parts"
    );
    let base = ncells / nparts;
    let extra = ncells % nparts;
    let mut out = Vec::with_capacity(nparts);
    let mut start = 0;
    for k in 0..nparts {
        let len = base + usize::from(k < extra);
        out.push(start..start + len);
        start += len;
    }
    debug_assert_eq!(start, ncells);
    out
}

/// Split `[0, weights.len())` into `nparts` contiguous ranges whose total
/// weights are as equal as a single greedy sweep can make them.
///
/// Cut `k` is placed at the first index whose running prefix sum reaches
/// `total · k / nparts`, while always leaving at least one cell for each of
/// the remaining parts (so every range is non-empty even when the weight
/// mass is concentrated in a few cells). Zero or uniform weights reduce to
/// [`cut_uniform`]'s balance up to rounding. Negative weights are clamped to
/// zero — a cell cannot carry negative load.
///
/// Degenerate histograms are handled explicitly: once the remaining weight
/// is exhausted (all mass concentrated below the current cut, e.g. a
/// single dominant cell), the leftover zero-weight cells are spread
/// uniformly over the remaining parts instead of degenerating into
/// one-cell parts plus one bloated tail — under a live re-partition those
/// cells will acquire particles and a maximally lopsided cell assignment
/// would turn directly into imbalance. The result is always an exact
/// contiguous tiling of `[0, len)` with no empty part.
///
/// # Panics
/// Panics if `nparts == 0` or `nparts > weights.len()`.
pub fn cut_weighted(weights: &[f64], nparts: usize) -> Vec<Range<usize>> {
    let ncells = weights.len();
    assert!(nparts > 0, "need at least one part");
    assert!(
        nparts <= ncells,
        "cannot cut {ncells} cells into {nparts} non-empty parts"
    );
    let total: f64 = weights.iter().map(|&w| w.max(0.0)).sum();
    if total <= 0.0 {
        return cut_uniform(ncells, nparts);
    }
    let mut out = Vec::with_capacity(nparts);
    let mut start = 0usize;
    let mut prefix = 0.0f64;
    for k in 1..nparts {
        if total - prefix <= 0.0 {
            // Only zero-weight cells remain: tile them uniformly over the
            // remaining parts (this part included).
            for r in cut_uniform(ncells - start, nparts - (k - 1)) {
                out.push(start + r.start..start + r.end);
            }
            debug_assert_valid_cut(&out, ncells, nparts);
            return out;
        }
        let target = total * k as f64 / nparts as f64;
        let mut end = start;
        // Leave room: parts k..nparts still need one cell each.
        let max_end = ncells - (nparts - k);
        while end < max_end && prefix < target {
            prefix += weights[end].max(0.0);
            end += 1;
        }
        // Non-empty: advance at least one cell past `start`.
        if end == start {
            prefix += weights[end].max(0.0);
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    out.push(start..ncells);
    debug_assert_valid_cut(&out, ncells, nparts);
    out
}

/// Debug-mode structural check shared by the cut helpers: `nparts`
/// non-empty ranges tiling `[0, ncells)` contiguously.
fn debug_assert_valid_cut(ranges: &[Range<usize>], ncells: usize, nparts: usize) {
    debug_assert_eq!(ranges.len(), nparts, "wrong part count");
    debug_assert_eq!(ranges[0].start, 0, "tiling must start at 0");
    debug_assert_eq!(ranges[nparts - 1].end, ncells, "tiling must end at len");
    for w in ranges.windows(2) {
        debug_assert_eq!(w[0].end, w[1].start, "gap or overlap at {w:?}");
    }
    for r in ranges {
        debug_assert!(!r.is_empty(), "empty part {r:?}");
    }
}

/// The part owning `index` under `ranges` (as produced by the cut helpers:
/// sorted, contiguous, exhaustive), by binary search on range starts.
///
/// # Panics
/// Panics if `index` is outside the union of `ranges`.
pub fn owner_of(ranges: &[Range<usize>], index: usize) -> usize {
    debug_assert!(!ranges.is_empty());
    let last = ranges.len() - 1;
    assert!(
        index >= ranges[0].start && index < ranges[last].end,
        "index {index} outside partitioned domain"
    );
    ranges.partition_point(|r| r.end <= index).min(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_partition(ranges: &[Range<usize>], ncells: usize) {
        assert_eq!(ranges[0].start, 0);
        assert_eq!(ranges.last().unwrap().end, ncells);
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start, "ranges must tile contiguously");
        }
        for r in ranges {
            assert!(!r.is_empty(), "empty range {r:?}");
        }
    }

    #[test]
    fn uniform_tiles_and_balances() {
        for &(n, k) in &[(16usize, 4usize), (17, 4), (1024, 8), (5, 5), (7, 3)] {
            let ranges = cut_uniform(n, k);
            assert_eq!(ranges.len(), k);
            assert_partition(&ranges, n);
            let sizes: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
            let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
            assert!(hi - lo <= 1, "{sizes:?}");
        }
    }

    #[test]
    fn weighted_balances_weight() {
        // A linear ramp: the first parts must take more cells than the last.
        let w: Vec<f64> = (0..256).map(|i| i as f64).collect();
        let total: f64 = w.iter().sum();
        let ranges = cut_weighted(&w, 4);
        assert_partition(&ranges, 256);
        for r in &ranges {
            let part: f64 = w[r.clone()].iter().sum();
            assert!(
                (part - total / 4.0).abs() < total * 0.05,
                "part {r:?} weight {part} vs target {}",
                total / 4.0
            );
        }
        assert!(ranges[0].len() > ranges[3].len());
    }

    #[test]
    fn weighted_survives_concentrated_mass() {
        // All weight in one cell: every part must still be non-empty, and
        // the weightless remainder must tile uniformly instead of piling
        // into a single bloated tail part.
        let mut w = vec![0.0; 32];
        w[0] = 100.0;
        let ranges = cut_weighted(&w, 8);
        assert_eq!(ranges.len(), 8);
        assert_partition(&ranges, 32);
        let sizes: Vec<usize> = ranges[1..].iter().map(|r| r.len()).collect();
        let (lo, hi) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(hi - lo <= 1, "zero-weight tail must be uniform: {sizes:?}");
    }

    #[test]
    fn weighted_single_cell_dominant_stays_tiled() {
        // One cell carries 99% of the mass mid-sequence: exact tiling, no
        // empty parts, and the cells after the spike spread near-evenly
        // (each later part's light load comes from many cells, not one).
        let mut w = vec![0.01; 64];
        w[20] = 1000.0;
        for nparts in [2usize, 4, 8, 16] {
            let ranges = cut_weighted(&w, nparts);
            assert_eq!(ranges.len(), nparts);
            assert_partition(&ranges, 64);
        }
    }

    #[test]
    fn weighted_zero_total_falls_back_to_uniform() {
        assert_eq!(cut_weighted(&[0.0; 12], 3), cut_uniform(12, 3));
    }

    #[test]
    fn owner_of_agrees_with_scan() {
        let ranges = cut_uniform(100, 7);
        for i in 0..100 {
            let scan = ranges.iter().position(|r| r.contains(&i)).unwrap();
            assert_eq!(owner_of(&ranges, i), scan, "index {i}");
        }
    }

    #[test]
    #[should_panic(expected = "non-empty parts")]
    fn more_parts_than_cells_rejected() {
        let _ = cut_uniform(3, 4);
    }
}
