//! The L4D (“column-major of row-major”) layout of Chatterjee et al. 1999,
//! with the closed-form index computation proposed by the paper (§IV-B):
//!
//! ```text
//! (ix, iy) ↦ SIZE·ix + mod(iy, SIZE) + ncx·SIZE·(iy / SIZE)
//! ```
//!
//! The grid is cut into vertical bands of `SIZE` consecutive `iy` columns;
//! bands are laid out one after another, and inside a band the cells are
//! scanned with `ix` major and the in-band `iy` offset minor. With the axes of
//! the paper's Fig. 4 (`ix` down, `iy` right): a *horizontal* move (`iy ± 1`)
//! stays inside the band `(SIZE-1)/SIZE` of the time and then shifts the index
//! by exactly 1; a *vertical* move (`ix ± 1`) always shifts it by `SIZE` —
//! compare row-major where vertical moves jump by the full `ncy`.

use crate::{CellLayout, LayoutError};

/// L4D layout with tile width `size` (the paper's `SIZE`, best value 8 on
/// Haswell).
///
/// `size` need not divide `ncy`: the trailing band is padded with cells that
/// are allocated but never produced by `encode` (the paper notes the same).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct L4D {
    ncx: usize,
    ncy: usize,
    size: usize,
    /// Cells per band: `ncx * size`.
    band: usize,
    /// `size` is almost always a power of two; cache the mask/shift fast path.
    size_pow2: Option<(usize, u32)>, // (mask, shift)
}

impl L4D {
    /// Build an L4D layout with tile width `size`.
    pub fn new(ncx: usize, ncy: usize, size: usize) -> Result<Self, LayoutError> {
        if ncx == 0 || ncy == 0 {
            return Err(LayoutError::ZeroDimension);
        }
        if size == 0 || size > ncy {
            return Err(LayoutError::BadTileSize { size });
        }
        let size_pow2 = if size.is_power_of_two() {
            Some((size - 1, size.trailing_zeros()))
        } else {
            None
        };
        Ok(Self {
            ncx,
            ncy,
            size,
            band: ncx * size,
            size_pow2,
        })
    }

    /// The tile width (`SIZE`).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of vertical bands, including a possibly padded last one.
    pub fn nbands(&self) -> usize {
        self.ncy.div_ceil(self.size)
    }
}

impl CellLayout for L4D {
    #[inline]
    fn ncx(&self) -> usize {
        self.ncx
    }

    #[inline]
    fn ncy(&self) -> usize {
        self.ncy
    }

    fn ncells(&self) -> usize {
        // Padded: every band is full even if size does not divide ncy.
        self.band * self.nbands()
    }

    #[inline]
    fn encode(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.ncx && iy < self.ncy);
        match self.size_pow2 {
            Some((mask, shift)) => {
                // Branch-free, auto-vectorizable power-of-two path.
                (ix << shift) + (iy & mask) + self.band * (iy >> shift)
            }
            None => self.size * ix + iy % self.size + self.band * (iy / self.size),
        }
    }

    #[inline]
    fn decode(&self, icell: usize) -> (usize, usize) {
        debug_assert!(icell < self.ncells());
        let band = icell / self.band;
        let rem = icell % self.band;
        let ix = rem / self.size;
        let iy = band * self.size + rem % self.size;
        (ix, iy)
    }

    fn name(&self) -> &'static str {
        "L4D"
    }

    fn encode_batch(&self, ix: &[usize], iy: &[usize], out: &mut [usize]) {
        assert_eq!(ix.len(), iy.len());
        assert_eq!(ix.len(), out.len());
        if let Some((mask, shift)) = self.size_pow2 {
            let band = self.band;
            for ((o, &x), &y) in out.iter_mut().zip(ix).zip(iy) {
                *o = (x << shift) + (y & mask) + band * (y >> shift);
            }
        } else {
            for ((o, &x), &y) in out.iter_mut().zip(ix).zip(iy) {
                *o = self.encode(x, y);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_fig4() {
        // Fig. 4: 128×128 grid, SIZE = 8. First band: iy in 0..8, ix-major.
        let l = L4D::new(128, 128, 8).unwrap();
        assert_eq!(l.encode(0, 0), 0);
        assert_eq!(l.encode(0, 7), 7);
        assert_eq!(l.encode(1, 0), 8);
        assert_eq!(l.encode(1, 7), 15);
        assert_eq!(l.encode(126, 0), 1008);
        assert_eq!(l.encode(126, 7), 1015);
        assert_eq!(l.encode(127, 0), 1016);
        assert_eq!(l.encode(127, 7), 1023);
        // Second band starts at 1024 (= ncx * SIZE).
        assert_eq!(l.encode(0, 8), 1024);
        // Right edge values of the figure: 511, 519, 527 are (63,7),(64,7),(65,7).
        assert_eq!(l.encode(63, 7), 511);
        assert_eq!(l.encode(64, 7), 519);
        assert_eq!(l.encode(65, 7), 527);
        // Bottom-right of the figure: last band, last ix row.
        assert_eq!(l.encode(127, 127), 16383);
        assert_eq!(l.encode(127, 120), 16376);
    }

    #[test]
    fn vertical_moves_shift_by_size() {
        let l = L4D::new(128, 128, 8).unwrap();
        for ix in 0..127 {
            for iy in 0..128 {
                assert_eq!(l.encode(ix + 1, iy), l.encode(ix, iy) + 8);
            }
        }
    }

    #[test]
    fn horizontal_moves_mostly_unit_stride() {
        let l = L4D::new(128, 128, 8).unwrap();
        let mut unit = 0usize;
        let mut total = 0usize;
        for ix in 0..128 {
            for iy in 0..127 {
                total += 1;
                if l.encode(ix, iy + 1) == l.encode(ix, iy) + 1 {
                    unit += 1;
                }
            }
        }
        // ~7 of every 8 horizontal moves stay in-band (the paper's 7/8 claim;
        // the sampled fraction is 112/127 because the last column has no
        // rightward move).
        let frac = unit as f64 / total as f64;
        assert!((frac - 7.0 / 8.0).abs() < 0.01, "fraction {frac}");
    }

    #[test]
    fn non_dividing_size_pads() {
        // SIZE = 6 does not divide ncy = 16: two full bands + one padded.
        let l = L4D::new(8, 16, 6).unwrap();
        assert_eq!(l.nbands(), 3);
        assert_eq!(l.ncells(), 8 * 6 * 3);
        assert!(l.ncells() > 8 * 16);
        // Still a bijection on the valid domain.
        let mut seen = std::collections::HashSet::new();
        for ix in 0..8 {
            for iy in 0..16 {
                let c = l.encode(ix, iy);
                assert!(c < l.ncells());
                assert!(seen.insert(c));
                assert_eq!(l.decode(c), (ix, iy));
            }
        }
    }

    #[test]
    fn size_equal_ncy_is_column_of_rows() {
        // SIZE = ncy degenerates to row-major (the paper's remark).
        let l = L4D::new(16, 16, 16).unwrap();
        let r = crate::RowMajor::new(16, 16).unwrap();
        use crate::CellLayout as _;
        for ix in 0..16 {
            for iy in 0..16 {
                assert_eq!(l.encode(ix, iy), r.encode(ix, iy));
            }
        }
    }

    #[test]
    fn bad_sizes_rejected() {
        assert!(matches!(
            L4D::new(8, 8, 0),
            Err(LayoutError::BadTileSize { size: 0 })
        ));
        assert!(matches!(
            L4D::new(8, 8, 9),
            Err(LayoutError::BadTileSize { size: 9 })
        ));
    }

    #[test]
    fn non_pow2_size_consistent() {
        let l = L4D::new(16, 32, 5).unwrap();
        for ix in 0..16 {
            for iy in 0..32 {
                let c = l.encode(ix, iy);
                assert_eq!(l.decode(c), (ix, iy));
            }
        }
    }
}
