//! The canonical linear layouts: row-major (the C default, the paper's
//! baseline ordering) and column-major (the Fortran twin).

use crate::{CellLayout, LayoutError};

/// Row-major (scan) order: `icell = ix * ncy + iy`.
///
/// This is the paper's baseline: consecutive `iy` are adjacent in memory, so a
/// particle moving along y usually lands in the neighbouring index, but a move
/// along x jumps by `ncy` — the cache-miss pattern of §IV-B.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowMajor {
    ncx: usize,
    ncy: usize,
}

impl RowMajor {
    /// Build a row-major layout for an `ncx × ncy` grid.
    pub fn new(ncx: usize, ncy: usize) -> Result<Self, LayoutError> {
        if ncx == 0 || ncy == 0 {
            return Err(LayoutError::ZeroDimension);
        }
        Ok(Self { ncx, ncy })
    }
}

impl CellLayout for RowMajor {
    #[inline]
    fn ncx(&self) -> usize {
        self.ncx
    }

    #[inline]
    fn ncy(&self) -> usize {
        self.ncy
    }

    #[inline]
    fn encode(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.ncx && iy < self.ncy);
        ix * self.ncy + iy
    }

    #[inline]
    fn decode(&self, icell: usize) -> (usize, usize) {
        debug_assert!(icell < self.ncells());
        (icell / self.ncy, icell % self.ncy)
    }

    fn name(&self) -> &'static str {
        "Row-major"
    }

    fn encode_batch(&self, ix: &[usize], iy: &[usize], out: &mut [usize]) {
        assert_eq!(ix.len(), iy.len());
        assert_eq!(ix.len(), out.len());
        let ncy = self.ncy;
        // Branch-free multiply-add: auto-vectorizes.
        for ((o, &x), &y) in out.iter_mut().zip(ix).zip(iy) {
            *o = x * ncy + y;
        }
    }
}

/// Column-major order: `icell = iy * ncx + ix`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColMajor {
    ncx: usize,
    ncy: usize,
}

impl ColMajor {
    /// Build a column-major layout for an `ncx × ncy` grid.
    pub fn new(ncx: usize, ncy: usize) -> Result<Self, LayoutError> {
        if ncx == 0 || ncy == 0 {
            return Err(LayoutError::ZeroDimension);
        }
        Ok(Self { ncx, ncy })
    }
}

impl CellLayout for ColMajor {
    #[inline]
    fn ncx(&self) -> usize {
        self.ncx
    }

    #[inline]
    fn ncy(&self) -> usize {
        self.ncy
    }

    #[inline]
    fn encode(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.ncx && iy < self.ncy);
        iy * self.ncx + ix
    }

    #[inline]
    fn decode(&self, icell: usize) -> (usize, usize) {
        debug_assert!(icell < self.ncells());
        (icell % self.ncx, icell / self.ncx)
    }

    fn name(&self) -> &'static str {
        "Col-major"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_matches_c_convention() {
        let l = RowMajor::new(4, 8).unwrap();
        assert_eq!(l.encode(0, 0), 0);
        assert_eq!(l.encode(0, 7), 7);
        assert_eq!(l.encode(1, 0), 8);
        assert_eq!(l.encode(3, 7), 31);
        assert_eq!(l.decode(8), (1, 0));
        assert_eq!(l.ncells(), 32);
    }

    #[test]
    fn col_major_transposes_row_major() {
        let r = RowMajor::new(8, 8).unwrap();
        let c = ColMajor::new(8, 8).unwrap();
        for ix in 0..8 {
            for iy in 0..8 {
                assert_eq!(r.encode(ix, iy), c.encode(iy, ix));
            }
        }
    }

    #[test]
    fn y_move_is_unit_stride_in_row_major() {
        let l = RowMajor::new(128, 128).unwrap();
        assert_eq!(l.encode(5, 7) + 1, l.encode(5, 8));
        // x moves jump by ncy — the paper's bad case.
        assert_eq!(l.encode(6, 7) - l.encode(5, 7), 128);
    }
}
