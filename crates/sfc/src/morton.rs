//! Morton (Z / Lebesgue) ordering via dilated integers.
//!
//! `icell` interleaves the bits of `ix` and `iy`, with `iy` in the even
//! (low) positions so that — like row-major — `iy` is the fast axis:
//! `encode(0,1) = 1`, `encode(1,0) = 2`, `encode(1,1) = 3` (the N-shape of
//! the paper's Fig. 3).
//!
//! Rectangular power-of-two grids are supported by interleaving the common
//! low bits and appending the surplus high bits of the longer dimension,
//! which preserves the bijection onto `[0, ncx·ncy)`.
//!
//! Two encoders are provided, mirroring the paper's §IV-B comparison of
//! Raman & Wise's algorithms: the arithmetic magic-mask form (vectorizable;
//! the one the paper keeps) in [`Morton`], and the byte-lookup-table form
//! (blocked from vectorizing by the indirection; the one the paper discards)
//! in [`MortonLut`].

use crate::dilate::{contract_bits, dilate_bits, dilate_bits_lut};
use crate::{CellLayout, LayoutError};

fn check_dims(ncx: usize, ncy: usize) -> Result<(u32, u32), LayoutError> {
    if ncx == 0 || ncy == 0 {
        return Err(LayoutError::ZeroDimension);
    }
    if !ncx.is_power_of_two() {
        return Err(LayoutError::NotPowerOfTwo { dim: ncx });
    }
    if !ncy.is_power_of_two() {
        return Err(LayoutError::NotPowerOfTwo { dim: ncy });
    }
    Ok((ncx.trailing_zeros(), ncy.trailing_zeros()))
}

/// Morton layout, arithmetic (magic-mask) encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Morton {
    ncx: usize,
    ncy: usize,
    bx: u32,
    by: u32,
    /// Bits interleaved from each coordinate: `min(bx, by)`.
    m: u32,
}

impl Morton {
    /// Build a Morton layout. Both dimensions must be powers of two.
    pub fn new(ncx: usize, ncy: usize) -> Result<Self, LayoutError> {
        let (bx, by) = check_dims(ncx, ncy)?;
        Ok(Self {
            ncx,
            ncy,
            bx,
            by,
            m: bx.min(by),
        })
    }

    #[inline]
    fn low_mask(&self) -> usize {
        (1usize << self.m) - 1
    }
}

impl CellLayout for Morton {
    #[inline]
    fn ncx(&self) -> usize {
        self.ncx
    }

    #[inline]
    fn ncy(&self) -> usize {
        self.ncy
    }

    #[inline]
    fn encode(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.ncx && iy < self.ncy);
        let mask = self.low_mask();
        let low = (dilate_bits((ix & mask) as u64) << 1) | dilate_bits((iy & mask) as u64);
        let high = if self.bx > self.by {
            ix >> self.m
        } else {
            iy >> self.m
        };
        (low as usize) | (high << (2 * self.m))
    }

    #[inline]
    fn decode(&self, icell: usize) -> (usize, usize) {
        debug_assert!(icell < self.ncells());
        let low = (icell as u64) & ((1u64 << (2 * self.m)) - 1);
        let ix_low = contract_bits(low >> 1) as usize;
        let iy_low = contract_bits(low) as usize;
        let high = icell >> (2 * self.m);
        if self.bx > self.by {
            (ix_low | (high << self.m), iy_low)
        } else {
            (ix_low, iy_low | (high << self.m))
        }
    }

    fn name(&self) -> &'static str {
        "Morton"
    }

    fn encode_batch(&self, ix: &[usize], iy: &[usize], out: &mut [usize]) {
        assert_eq!(ix.len(), iy.len());
        assert_eq!(ix.len(), out.len());
        // The magic-mask ladder is branch-free; LLVM vectorizes this loop.
        for ((o, &x), &y) in out.iter_mut().zip(ix).zip(iy) {
            *o = self.encode(x, y);
        }
    }
}

/// Morton layout using the byte-wise lookup-table encoder.
///
/// Functionally identical to [`Morton`]; exists so the benches can show why
/// the paper discards the LUT variant (the table load is an indirection the
/// compiler cannot vectorize through).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MortonLut(Morton);

impl MortonLut {
    /// Build a LUT-encoded Morton layout. Both dimensions must be powers of two.
    pub fn new(ncx: usize, ncy: usize) -> Result<Self, LayoutError> {
        Ok(Self(Morton::new(ncx, ncy)?))
    }
}

impl CellLayout for MortonLut {
    #[inline]
    fn ncx(&self) -> usize {
        self.0.ncx
    }

    #[inline]
    fn ncy(&self) -> usize {
        self.0.ncy
    }

    #[inline]
    fn encode(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.0.ncx && iy < self.0.ncy);
        let mask = self.0.low_mask();
        let low = (dilate_bits_lut((ix & mask) as u64) << 1) | dilate_bits_lut((iy & mask) as u64);
        let high = if self.0.bx > self.0.by {
            ix >> self.0.m
        } else {
            iy >> self.0.m
        };
        (low as usize) | (high << (2 * self.0.m))
    }

    #[inline]
    fn decode(&self, icell: usize) -> (usize, usize) {
        self.0.decode(icell)
    }

    fn name(&self) -> &'static str {
        "Morton (LUT)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Naive reference: interleave bit by bit.
    fn naive_encode(ix: usize, iy: usize, bx: u32, by: u32) -> usize {
        let m = bx.min(by);
        let mut out = 0usize;
        for b in 0..m {
            out |= ((iy >> b) & 1) << (2 * b);
            out |= ((ix >> b) & 1) << (2 * b + 1);
        }
        let high = if bx > by { ix >> m } else { iy >> m };
        out | (high << (2 * m))
    }

    #[test]
    fn matches_fig3_8x8() {
        // Fig. 3 of the paper: Z-order on an 8×8 grid.
        let m = Morton::new(8, 8).unwrap();
        assert_eq!(m.encode(0, 0), 0);
        assert_eq!(m.encode(0, 1), 1);
        assert_eq!(m.encode(1, 0), 2);
        assert_eq!(m.encode(1, 1), 3);
        assert_eq!(m.encode(0, 2), 4);
        assert_eq!(m.encode(2, 0), 8);
        assert_eq!(m.encode(3, 3), 15);
        assert_eq!(m.encode(4, 4), 48);
        assert_eq!(m.encode(7, 7), 63);
    }

    #[test]
    fn matches_naive_square() {
        let m = Morton::new(64, 64).unwrap();
        for ix in 0..64 {
            for iy in 0..64 {
                assert_eq!(m.encode(ix, iy), naive_encode(ix, iy, 6, 6));
            }
        }
    }

    #[test]
    fn matches_naive_rectangular() {
        for &(ncx, ncy) in &[(8usize, 32usize), (32, 8), (4, 64), (128, 16)] {
            let m = Morton::new(ncx, ncy).unwrap();
            let (bx, by) = (ncx.trailing_zeros(), ncy.trailing_zeros());
            for ix in 0..ncx {
                for iy in 0..ncy {
                    let enc = m.encode(ix, iy);
                    assert_eq!(enc, naive_encode(ix, iy, bx, by), "({ix},{iy})");
                    assert_eq!(m.decode(enc), (ix, iy));
                }
            }
        }
    }

    #[test]
    fn lut_variant_identical() {
        let a = Morton::new(128, 128).unwrap();
        let b = MortonLut::new(128, 128).unwrap();
        for ix in (0..128).step_by(3) {
            for iy in 0..128 {
                assert_eq!(a.encode(ix, iy), b.encode(ix, iy));
            }
        }
    }

    #[test]
    fn non_pow2_rejected() {
        assert!(matches!(
            Morton::new(100, 128),
            Err(LayoutError::NotPowerOfTwo { dim: 100 })
        ));
        assert!(matches!(
            Morton::new(128, 100),
            Err(LayoutError::NotPowerOfTwo { dim: 100 })
        ));
    }

    #[test]
    fn quadrant_locality() {
        // Morton keeps each 2^k × 2^k block contiguous: the 4×4 block at
        // (0,0) occupies indices 0..16.
        let m = Morton::new(16, 16).unwrap();
        let mut idx: Vec<usize> = (0..4)
            .flat_map(|ix| (0..4).map(move |iy| m.encode(ix, iy)))
            .collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..16).collect::<Vec<_>>());
    }
}
