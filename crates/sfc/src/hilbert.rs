//! Hilbert ordering via Skilling's transposition algorithm
//! (*Programming the Hilbert curve*, AIP Conf. Proc. 707, 2004).
//!
//! The Hilbert curve visits every cell of a `2^b × 2^b` grid such that
//! consecutive indices are always 4-neighbours — the best possible locality
//! for a space-filling curve. Its drawback, and the reason the paper
//! ultimately discards it (§IV-B, Table III), is the cost of evaluating the
//! bijection: the state-machine bit manipulation cannot be flattened into the
//! handful of branch-free ops that Morton or L4D need, so the per-particle
//! index computation dominates the update-positions loop.

use crate::dilate::{contract_bits, dilate_bits};
use crate::{CellLayout, LayoutError};

/// Hilbert layout on a square power-of-two grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hilbert {
    side: usize,
    /// Bits per coordinate: `side = 2^b`.
    b: u32,
}

impl Hilbert {
    /// Build a Hilbert layout. The grid must be square with a power-of-two
    /// side.
    pub fn new(ncx: usize, ncy: usize) -> Result<Self, LayoutError> {
        if ncx == 0 || ncy == 0 {
            return Err(LayoutError::ZeroDimension);
        }
        if ncx != ncy {
            return Err(LayoutError::NotSquare { ncx, ncy });
        }
        if !ncx.is_power_of_two() {
            return Err(LayoutError::NotPowerOfTwo { dim: ncx });
        }
        Ok(Self {
            side: ncx,
            b: ncx.trailing_zeros(),
        })
    }

    /// Skilling's `AxestoTranspose` for n = 2: turn coordinates into the
    /// “transposed” Hilbert index (index bits distributed over the two words).
    #[inline]
    fn axes_to_transpose(&self, mut x0: usize, mut x1: usize) -> (usize, usize) {
        if self.b == 0 {
            return (0, 0);
        }
        let m = 1usize << (self.b - 1);
        // Inverse undo.
        let mut q = m;
        while q > 1 {
            let p = q - 1;
            if x0 & q != 0 {
                x0 ^= p; // invert
            }
            if x1 & q != 0 {
                x0 ^= p;
            } else {
                let t = (x0 ^ x1) & p;
                x0 ^= t;
                x1 ^= t;
            }
            q >>= 1;
        }
        // Gray encode.
        x1 ^= x0;
        let mut t = 0usize;
        let mut q = m;
        while q > 1 {
            if x1 & q != 0 {
                t ^= q - 1;
            }
            q >>= 1;
        }
        x0 ^= t;
        x1 ^= t;
        (x0, x1)
    }

    /// Skilling's `TransposetoAxes` for n = 2.
    #[inline]
    fn transpose_to_axes(&self, mut x0: usize, mut x1: usize) -> (usize, usize) {
        if self.b == 0 {
            return (0, 0);
        }
        let n = 2usize << (self.b - 1);
        // Gray decode.
        let t = x1 >> 1;
        x1 ^= x0;
        x0 ^= t;
        // Undo excess work.
        let mut q = 2usize;
        while q != n {
            let p = q - 1;
            if x1 & q != 0 {
                x0 ^= p;
            } else {
                let t = (x0 ^ x1) & p;
                x0 ^= t;
                x1 ^= t;
            }
            if x0 & q != 0 {
                x0 ^= p;
            } else {
                // t = (x0 ^ x0) & p = 0 — no-op by construction.
            }
            q <<= 1;
        }
        (x0, x1)
    }
}

impl CellLayout for Hilbert {
    #[inline]
    fn ncx(&self) -> usize {
        self.side
    }

    #[inline]
    fn ncy(&self) -> usize {
        self.side
    }

    #[inline]
    fn encode(&self, ix: usize, iy: usize) -> usize {
        debug_assert!(ix < self.side && iy < self.side);
        let (t0, t1) = self.axes_to_transpose(ix, iy);
        // Interleave the transposed words: t0 supplies the high bit of each
        // pair (Skilling's convention).
        ((dilate_bits(t0 as u64) << 1) | dilate_bits(t1 as u64)) as usize
    }

    #[inline]
    fn decode(&self, icell: usize) -> (usize, usize) {
        debug_assert!(icell < self.ncells());
        let t0 = contract_bits((icell as u64) >> 1) as usize;
        let t1 = contract_bits(icell as u64) as usize;
        self.transpose_to_axes(t0, t1)
    }

    fn name(&self) -> &'static str {
        "Hilbert"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trivial_sides() {
        let h = Hilbert::new(1, 1).unwrap();
        assert_eq!(h.encode(0, 0), 0);
        assert_eq!(h.decode(0), (0, 0));

        let h = Hilbert::new(2, 2).unwrap();
        let mut seen = [false; 4];
        for ix in 0..2 {
            for iy in 0..2 {
                let c = h.encode(ix, iy);
                assert!(c < 4);
                assert!(!seen[c]);
                seen[c] = true;
                assert_eq!(h.decode(c), (ix, iy));
            }
        }
    }

    /// The defining Hilbert property: consecutive indices are 4-neighbours.
    #[test]
    fn consecutive_indices_are_adjacent() {
        for side in [2usize, 4, 8, 16, 32, 64] {
            let h = Hilbert::new(side, side).unwrap();
            let mut prev = h.decode(0);
            for icell in 1..side * side {
                let cur = h.decode(icell);
                let d = prev.0.abs_diff(cur.0) + prev.1.abs_diff(cur.1);
                assert_eq!(
                    d,
                    1,
                    "side {side}: decode({}) = {:?} → decode({icell}) = {:?} not adjacent",
                    icell - 1,
                    prev,
                    cur
                );
                prev = cur;
            }
        }
    }

    #[test]
    fn bijection_128() {
        let h = Hilbert::new(128, 128).unwrap();
        let mut seen = vec![false; 128 * 128];
        for ix in 0..128 {
            for iy in 0..128 {
                let c = h.encode(ix, iy);
                assert!(!seen[c]);
                seen[c] = true;
                assert_eq!(h.decode(c), (ix, iy));
            }
        }
    }

    /// Each quadrant of the curve is visited entirely before the next —
    /// recursive-block locality (shared with Morton, unlike L4D).
    #[test]
    fn quadrants_are_contiguous() {
        let h = Hilbert::new(16, 16).unwrap();
        // The first 64 indices must cover exactly one 8×8 quadrant.
        let cells: Vec<(usize, usize)> = (0..64).map(|i| h.decode(i)).collect();
        let qx: Vec<usize> = cells.iter().map(|c| c.0 / 8).collect();
        let qy: Vec<usize> = cells.iter().map(|c| c.1 / 8).collect();
        assert!(qx.iter().all(|&q| q == qx[0]));
        assert!(qy.iter().all(|&q| q == qy[0]));
    }

    #[test]
    fn non_square_rejected() {
        assert!(matches!(
            Hilbert::new(8, 16),
            Err(LayoutError::NotSquare { ncx: 8, ncy: 16 })
        ));
    }
}
