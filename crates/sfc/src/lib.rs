//! # sfc — space-filling-curve cell layouts
//!
//! A PIC code stores per-cell grid quantities (the redundant electric-field and
//! charge-density arrays of Barsamian et al., IPDPSW 2017) in a flat array
//! indexed by a *cell index* `icell`. The bijection `(ix, iy) → icell` decides
//! how spatially-close cells map to memory-close indices, and therefore how
//! many cache misses the interpolation/accumulation loops take once particles
//! drift away from their sorted order.
//!
//! This crate implements the four orderings compared in the paper:
//!
//! * [`RowMajor`] — the canonical C layout `icell = ix * ncy + iy`;
//! * [`ColMajor`] — the Fortran twin, included for completeness and testing;
//! * [`L4D`] — “column-major of row-major” tiling (Chatterjee et al. 1999):
//!   narrow vertical tiles of width `SIZE`, row-major inside, column-major
//!   across tiles;
//! * [`Morton`] — Z-order via dilated integers (Raman & Wise 2008), both the
//!   arithmetic (vectorizable) and the lookup-table variants;
//! * [`Hilbert`] — the Hilbert curve via Skilling's transposition algorithm
//!   (AIP Conf. Proc. 707, 2004).
//!
//! All layouts implement the [`CellLayout`] trait. The crate also provides
//! [`locality`] — the index-distance statistics used in the paper's §IV-B
//! argument for why L4D/Morton beat row-major when particles move in both
//! axes.
//!
//! ## Example
//!
//! ```
//! use sfc::{CellLayout, Morton, RowMajor};
//!
//! let m = Morton::new(8, 8).unwrap();
//! // The Z-order of Fig. 3: cell (1,0) is index 2, cell (1,1) is index 3.
//! assert_eq!(m.encode(1, 0), 2);
//! assert_eq!(m.encode(1, 1), 3);
//! assert_eq!(m.decode(3), (1, 1));
//!
//! let r = RowMajor::new(8, 8).unwrap();
//! assert_eq!(r.encode(1, 0), 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dilate;
mod hilbert;
mod l4d;
mod linear;
pub mod locality;
mod morton;
pub mod partition;
pub mod three_d;

pub use dilate::{contract_bits, contract_bits_lut, dilate_bits, dilate_bits_lut};
pub use hilbert::Hilbert;
pub use l4d::L4D;
pub use linear::{ColMajor, RowMajor};
pub use morton::{Morton, MortonLut};
pub use three_d::{CellLayout3D, Hilbert3D, Morton3D, RowMajor3D};

/// Error type for layout construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LayoutError {
    /// A grid dimension was zero.
    ZeroDimension,
    /// The layout requires power-of-two dimensions but got something else.
    NotPowerOfTwo {
        /// Offending dimension value.
        dim: usize,
    },
    /// The layout requires a square grid but `ncx != ncy`.
    NotSquare {
        /// Number of cells along x.
        ncx: usize,
        /// Number of cells along y.
        ncy: usize,
    },
    /// The L4D tile size was zero or larger than the grid height.
    BadTileSize {
        /// Offending tile size.
        size: usize,
    },
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::ZeroDimension => write!(f, "grid dimensions must be nonzero"),
            LayoutError::NotPowerOfTwo { dim } => {
                write!(f, "layout requires power-of-two dimensions, got {dim}")
            }
            LayoutError::NotSquare { ncx, ncy } => {
                write!(f, "layout requires a square grid, got {ncx} x {ncy}")
            }
            LayoutError::BadTileSize { size } => {
                write!(f, "invalid L4D tile size {size}")
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// A bijective mapping between 2-D cell coordinates and a flat cell index.
///
/// Implementations must be bijections from `[0, ncx) × [0, ncy)` onto
/// `[0, ncells())`. (`ncells()` may exceed `ncx*ncy` for layouts that pad,
/// e.g. [`L4D`] with a tile size that does not divide `ncy`; padded indices
/// are never produced by `encode`.)
pub trait CellLayout: Send + Sync {
    /// Number of cells along the x axis.
    fn ncx(&self) -> usize;
    /// Number of cells along the y axis.
    fn ncy(&self) -> usize;

    /// Size of the flat array needed to hold all cells (≥ `ncx * ncy`).
    fn ncells(&self) -> usize {
        self.ncx() * self.ncy()
    }

    /// Map cell coordinates to the flat index.
    ///
    /// # Panics
    /// May panic (debug assertions) if `ix >= ncx()` or `iy >= ncy()`.
    fn encode(&self, ix: usize, iy: usize) -> usize;

    /// Inverse of [`encode`](CellLayout::encode).
    fn decode(&self, icell: usize) -> (usize, usize);

    /// Human-readable layout name (used by the bench harnesses).
    fn name(&self) -> &'static str;

    /// Encode a batch of coordinates. The default loops over [`encode`];
    /// layouts override it when a branch-free form auto-vectorizes.
    fn encode_batch(&self, ix: &[usize], iy: &[usize], out: &mut [usize]) {
        assert_eq!(ix.len(), iy.len());
        assert_eq!(ix.len(), out.len());
        for ((o, &x), &y) in out.iter_mut().zip(ix).zip(iy) {
            *o = self.encode(x, y);
        }
    }
}

/// The orderings studied in the paper, as a plain enum for configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]

pub enum Ordering {
    /// Canonical C row-major order.
    RowMajor,
    /// Column-major order.
    ColMajor,
    /// L4D (“column-major of row-major”) with the given tile size.
    L4D(usize),
    /// Morton / Z / Lebesgue order.
    Morton,
    /// Hilbert order.
    Hilbert,
}

impl Ordering {
    /// All orderings compared in the paper's Table II/III, with the paper's
    /// preferred L4D tile size (`SIZE = 8`).
    pub fn paper_set() -> [Ordering; 4] {
        [
            Ordering::RowMajor,
            Ordering::L4D(8),
            Ordering::Morton,
            Ordering::Hilbert,
        ]
    }

    /// Instantiate a boxed layout for a grid.
    pub fn build(self, ncx: usize, ncy: usize) -> Result<Box<dyn CellLayout>, LayoutError> {
        Ok(match self {
            Ordering::RowMajor => Box::new(RowMajor::new(ncx, ncy)?),
            Ordering::ColMajor => Box::new(ColMajor::new(ncx, ncy)?),
            Ordering::L4D(size) => Box::new(L4D::new(ncx, ncy, size)?),
            Ordering::Morton => Box::new(Morton::new(ncx, ncy)?),
            Ordering::Hilbert => Box::new(Hilbert::new(ncx, ncy)?),
        })
    }

    /// Display name matching the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            Ordering::RowMajor => "Row-major",
            Ordering::ColMajor => "Col-major",
            Ordering::L4D(_) => "L4D",
            Ordering::Morton => "Morton",
            Ordering::Hilbert => "Hilbert",
        }
    }
}

impl std::fmt::Display for Ordering {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ordering::L4D(s) => write!(f, "L4D(SIZE={s})"),
            other => write!(f, "{}", other.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_bijection(layout: &dyn CellLayout) {
        let (ncx, ncy) = (layout.ncx(), layout.ncy());
        let mut seen = vec![false; layout.ncells()];
        for ix in 0..ncx {
            for iy in 0..ncy {
                let icell = layout.encode(ix, iy);
                assert!(
                    icell < layout.ncells(),
                    "{}: encode({ix},{iy}) = {icell} out of bounds {}",
                    layout.name(),
                    layout.ncells()
                );
                assert!(
                    !seen[icell],
                    "{}: encode({ix},{iy}) = {icell} collides",
                    layout.name()
                );
                seen[icell] = true;
                assert_eq!(
                    layout.decode(icell),
                    (ix, iy),
                    "{}: decode(encode({ix},{iy})) mismatch",
                    layout.name()
                );
            }
        }
        assert_eq!(seen.iter().filter(|&&s| s).count(), ncx * ncy);
    }

    #[test]
    fn all_paper_layouts_are_bijections_128() {
        for ord in Ordering::paper_set() {
            let layout = ord.build(128, 128).unwrap();
            check_bijection(layout.as_ref());
        }
    }

    #[test]
    fn all_paper_layouts_are_bijections_small() {
        for ord in Ordering::paper_set() {
            for &(ncx, ncy) in &[(8usize, 8usize), (16, 16), (32, 32)] {
                let layout = ord.build(ncx, ncy).unwrap();
                check_bijection(layout.as_ref());
            }
        }
    }

    #[test]
    fn rectangular_grids_where_supported() {
        // Row/col-major and L4D support rectangles; Morton requires square
        // power-of-two, Hilbert requires square power-of-two.
        check_bijection(&RowMajor::new(16, 64).unwrap());
        check_bijection(&ColMajor::new(16, 64).unwrap());
        check_bijection(&L4D::new(16, 64, 8).unwrap());
        check_bijection(&Morton::new(16, 64).unwrap());
    }

    #[test]
    fn ordering_display_names() {
        assert_eq!(Ordering::RowMajor.to_string(), "Row-major");
        assert_eq!(Ordering::L4D(8).to_string(), "L4D(SIZE=8)");
        assert_eq!(Ordering::Morton.name(), "Morton");
    }

    #[test]
    fn zero_dimension_rejected() {
        assert_eq!(RowMajor::new(0, 8).unwrap_err(), LayoutError::ZeroDimension);
        assert_eq!(Morton::new(8, 0).unwrap_err(), LayoutError::ZeroDimension);
    }

    #[test]
    fn encode_batch_matches_scalar() {
        let layout = Morton::new(32, 32).unwrap();
        let ix: Vec<usize> = (0..32).flat_map(|x| std::iter::repeat_n(x, 32)).collect();
        let iy: Vec<usize> = (0..32).cycle().take(32 * 32).collect();
        let mut out = vec![0usize; ix.len()];
        layout.encode_batch(&ix, &iy, &mut out);
        for i in 0..ix.len() {
            assert_eq!(out[i], layout.encode(ix[i], iy[i]));
        }
    }
}
