//! LogGP-style analytic communication cost model.
//!
//! The paper's Figs. 7 and 9 run on up to 8 192 Curie cores; this host does
//! not have them. What those figures actually demonstrate is a *crossover*:
//! the per-step `MPI_ALLREDUCE` of ρ costs `(α + β·n)·⌈log₂P⌉` for a tree
//! reduction of `n` bytes over `P` ranks, while the per-rank computation time
//! is constant in weak scaling (fixed particles/rank) or `∝ 1/P` in strong
//! scaling. The model below reproduces that arithmetic; its constants can be
//! calibrated from measured [`crate::World`] runs at small `P` so the
//! extrapolated curves keep a realistic scale.

/// Analytic cost model for tree-based collectives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per-message latency, seconds (the LogGP `L + 2o`).
    pub alpha: f64,
    /// Per-byte transfer time, seconds (the LogGP `G`).
    pub beta: f64,
}

impl CostModel {
    /// Constants representative of the QDR-InfiniBand fat tree of the Curie
    /// machine (≈1.5 µs latency, ≈3.2 GB/s effective per-link bandwidth).
    pub fn curie_like() -> Self {
        Self {
            alpha: 1.5e-6,
            beta: 1.0 / 3.2e9,
        }
    }

    /// Time of one tree allreduce of `bytes` over `p` ranks.
    ///
    /// Both the reduce and the broadcast phases touch every tree level, and
    /// each level moves the full payload: `2·(α + β·n)·⌈log₂p⌉`. For `p = 1`
    /// the cost is zero.
    pub fn allreduce(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        let levels = (usize::BITS - (p - 1).leading_zeros()) as f64; // ⌈log₂p⌉
        2.0 * (self.alpha + self.beta * bytes as f64) * levels
    }

    /// Time of a flat (linear) allreduce: every rank's contribution crosses
    /// one link serially — the behaviour pure-MPI exhibits in Fig. 7 once
    /// message injection saturates.
    pub fn allreduce_flat(&self, p: usize, bytes: usize) -> f64 {
        if p <= 1 {
            return 0.0;
        }
        (p - 1) as f64 * (self.alpha + self.beta * bytes as f64)
    }

    /// Least-squares calibration of `(α, β)` from measured samples
    /// `(p, bytes, seconds)` assuming the tree formula. Needs ≥ 2 samples
    /// with distinct `bytes·levels` products; returns `None` when the system
    /// is degenerate.
    pub fn fit_tree(samples: &[(usize, usize, f64)]) -> Option<CostModel> {
        // t = 2·levels·α + 2·levels·bytes·β — linear in (α, β).
        let mut s_aa = 0.0;
        let mut s_ab = 0.0;
        let mut s_bb = 0.0;
        let mut s_at = 0.0;
        let mut s_bt = 0.0;
        let mut n = 0usize;
        for &(p, bytes, t) in samples {
            if p <= 1 {
                continue;
            }
            let levels = (usize::BITS - (p - 1).leading_zeros()) as f64;
            let a = 2.0 * levels;
            let b = 2.0 * levels * bytes as f64;
            s_aa += a * a;
            s_ab += a * b;
            s_bb += b * b;
            s_at += a * t;
            s_bt += b * t;
            n += 1;
        }
        if n < 2 {
            return None;
        }
        let det = s_aa * s_bb - s_ab * s_ab;
        if det.abs() < 1e-30 {
            return None;
        }
        let alpha = (s_bb * s_at - s_ab * s_bt) / det;
        let beta = (s_aa * s_bt - s_ab * s_at) / det;
        Some(CostModel { alpha, beta })
    }
}

/// Predicted timings for one parallel PIC configuration — the building block
/// of the Fig. 7 / Fig. 9 extrapolation harness.
#[derive(Debug, Clone, Copy)]
pub struct ScalingPoint {
    /// Total ranks (processes).
    pub procs: usize,
    /// Computation seconds per step per rank.
    pub compute: f64,
    /// Communication seconds per step per rank.
    pub comm: f64,
}

impl ScalingPoint {
    /// Total time per step.
    pub fn total(&self) -> f64 {
        self.compute + self.comm
    }

    /// Communication share of the total, in percent (Fig. 7 annotations).
    pub fn comm_percent(&self) -> f64 {
        100.0 * self.comm / self.total()
    }
}

/// Weak-scaling prediction: fixed work per rank (`compute_per_step` constant),
/// allreduce of `grid_bytes` each step.
pub fn weak_scaling(
    model: &CostModel,
    compute_per_step: f64,
    grid_bytes: usize,
    procs: &[usize],
    tree: bool,
) -> Vec<ScalingPoint> {
    procs
        .iter()
        .map(|&p| ScalingPoint {
            procs: p,
            compute: compute_per_step,
            comm: if tree {
                model.allreduce(p, grid_bytes)
            } else {
                model.allreduce_flat(p, grid_bytes)
            },
        })
        .collect()
}

/// Strong-scaling prediction: total work fixed (`compute_total` divided by
/// ranks), allreduce of `grid_bytes` each step.
pub fn strong_scaling(
    model: &CostModel,
    compute_total: f64,
    grid_bytes: usize,
    procs: &[usize],
) -> Vec<ScalingPoint> {
    procs
        .iter()
        .map(|&p| ScalingPoint {
            procs: p,
            compute: compute_total / p as f64,
            comm: model.allreduce(p, grid_bytes),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_is_free() {
        let m = CostModel::curie_like();
        assert_eq!(m.allreduce(1, 1 << 20), 0.0);
        assert_eq!(m.allreduce_flat(1, 1 << 20), 0.0);
    }

    #[test]
    fn tree_grows_logarithmically() {
        let m = CostModel::curie_like();
        let t2 = m.allreduce(2, 4096);
        let t4 = m.allreduce(4, 4096);
        let t1024 = m.allreduce(1024, 4096);
        assert!((t4 / t2 - 2.0).abs() < 1e-12);
        assert!((t1024 / t2 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn flat_grows_linearly() {
        let m = CostModel::curie_like();
        let t2 = m.allreduce_flat(2, 4096);
        let t9 = m.allreduce_flat(9, 4096);
        assert!((t9 / t2 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn flat_overtakes_tree() {
        // The Fig. 7 story: pure-MPI (flat-ish) blows up, hybrid (fewer,
        // tree-reduced ranks) stays flat.
        let m = CostModel::curie_like();
        assert!(m.allreduce_flat(8192, 1 << 19) > 20.0 * m.allreduce(8192, 1 << 19));
    }

    #[test]
    fn fit_recovers_constants() {
        let truth = CostModel {
            alpha: 2e-6,
            beta: 4e-10,
        };
        let samples: Vec<(usize, usize, f64)> = [2usize, 4, 8, 16, 64]
            .iter()
            .flat_map(|&p| {
                [1024usize, 65536, 1 << 20]
                    .iter()
                    .map(move |&b| (p, b, truth.allreduce(p, b)))
            })
            .collect();
        let fit = CostModel::fit_tree(&samples).unwrap();
        assert!((fit.alpha - truth.alpha).abs() / truth.alpha < 1e-9);
        assert!((fit.beta - truth.beta).abs() / truth.beta < 1e-9);
    }

    #[test]
    fn fit_rejects_degenerate() {
        assert!(CostModel::fit_tree(&[]).is_none());
        assert!(CostModel::fit_tree(&[(2, 100, 1e-5)]).is_none());
        // Same (p, bytes) twice: singular system.
        assert!(CostModel::fit_tree(&[(2, 100, 1e-5), (2, 100, 1.1e-5)]).is_none());
    }

    #[test]
    fn weak_scaling_comm_fraction_rises() {
        let m = CostModel::curie_like();
        let pts = weak_scaling(&m, 0.1, 128 * 128 * 8, &[1, 64, 8192], true);
        assert_eq!(pts[0].comm_percent(), 0.0);
        assert!(pts[2].comm_percent() > pts[1].comm_percent());
        // Total time stays near-flat for the tree algorithm (the Fig. 7
        // hybrid curve): within 2% at 8192 ranks for this payload.
        assert!(pts[2].total() < 1.02 * pts[0].total());
    }

    #[test]
    fn strong_scaling_saturates() {
        let m = CostModel::curie_like();
        let pts = strong_scaling(&m, 10.0, 256 * 256 * 8, &[16, 64, 256, 1024, 8192]);
        // A 4× rank increase early on gives a near-ideal ≈4× speedup; an 8×
        // increase late gives far less than 8× — the Fig. 9 saturation.
        let ratio_small = pts[0].total() / pts[1].total(); // 16 → 64 ranks (ideal 4×)
        let ratio_large = pts[3].total() / pts[4].total(); // 1024 → 8192 (ideal 8×)
        assert!(
            ratio_small > 3.8,
            "early scaling near-ideal, got {ratio_small}"
        );
        assert!(
            ratio_large < 4.0,
            "late scaling saturates, got {ratio_large}"
        );
    }
}
