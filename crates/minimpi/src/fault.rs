//! Deterministic fault injection for the transport layer.
//!
//! A [`FaultPlan`] decides, for every transmission attempt of every data
//! frame, whether that attempt is delivered clean, dropped, corrupted in
//! flight, or delayed. Decisions are pure functions of
//! `(seed, src, dst, tag, seq, attempt)` via a splitmix64-based hash, so a
//! fault schedule is exactly reproducible across runs and independent of
//! thread interleaving — the property that makes fault-injection tests
//! deterministic.
//!
//! Including the retransmission `attempt` counter in the hash is what makes
//! sub-certain fault rates *recoverable*: each retry of the same frame
//! draws a fresh decision, so with drop probability `p < 1` a frame
//! eventually gets through, while `p = 1` ([`FaultPlan::always_drop`])
//! starves every retry and surfaces a clean
//! [`CommError`](crate::CommError) at the sender.

use std::time::Duration;

/// splitmix64 — the 64-bit finalizer used for all fault decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Hash a word sequence down to one u64 (order-sensitive).
fn hash_words(seed: u64, words: &[u64]) -> u64 {
    let mut h = splitmix64(seed ^ 0xA076_1D64_78BD_642F);
    for &w in words {
        h = splitmix64(h ^ w);
    }
    h
}

/// Map a hash to a uniform f64 in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// The outcome of a fault decision for one transmission attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fault {
    /// Deliver the frame unmodified.
    None,
    /// Silently discard the frame.
    Drop,
    /// Deliver the frame with a flipped payload bit (checksum unchanged,
    /// so the receiver detects and discards it).
    Corrupt,
    /// Deliver the frame after sleeping.
    Delay(Duration),
}

/// A deterministic, seeded schedule of message faults.
///
/// Build with [`FaultPlan::new`] and the chainable setters; install into a
/// world with [`World::run_with_faults`](crate::World::run_with_faults).
/// Probabilities apply independently per transmission attempt, evaluated
/// in the order drop → corrupt → delay.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    drop_prob: f64,
    corrupt_prob: f64,
    delay_prob: f64,
    delay: Duration,
    /// Restrict injection to frames *sent by* these ranks (None = all).
    targets: Option<Vec<usize>>,
    /// Crash faults: `(rank, op)` pairs — rank `r` dies when its per-rank
    /// communication-operation counter reaches `op`.
    kills: Vec<(usize, u64)>,
}

impl FaultPlan {
    /// A plan that injects nothing (yet); chain setters to arm it.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            corrupt_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_micros(100),
            targets: None,
            kills: Vec::new(),
        }
    }

    /// A plan that drops every data frame from every rank — no retry can
    /// succeed, so reliable sends fail cleanly with
    /// [`CommError::RetriesExhausted`](crate::CommError::RetriesExhausted).
    pub fn always_drop(seed: u64) -> Self {
        Self::new(seed).drop_messages(1.0)
    }

    /// Drop each transmission attempt with probability `p`.
    pub fn drop_messages(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.drop_prob = p;
        self
    }

    /// Corrupt each delivered attempt with probability `p`.
    pub fn corrupt_messages(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.corrupt_prob = p;
        self
    }

    /// Delay each delivered attempt by `delay` with probability `p`.
    pub fn delay_messages(mut self, p: f64, delay: Duration) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.delay_prob = p;
        self.delay = delay;
        self
    }

    /// Only inject faults into frames sent by the listed ranks.
    pub fn target_ranks(mut self, ranks: &[usize]) -> Self {
        self.targets = Some(ranks.to_vec());
        self
    }

    /// Crash-fault mode: kill `rank` when its communication-operation
    /// counter reaches `at_op` (each public `Comm` operation — send, recv,
    /// collective — counts as one op). The killed rank marks itself dead in
    /// the world's shared failure-detector state and every subsequent
    /// operation on it returns
    /// [`CommError::RankFailed`](crate::CommError::RankFailed); survivors
    /// observe the death through the detector instead of hanging.
    pub fn kill_rank(mut self, rank: usize, at_op: u64) -> Self {
        self.kills.push((rank, at_op));
        self
    }

    /// The op count at which `rank` is scheduled to die, if any (the
    /// earliest when several kills target the same rank).
    pub(crate) fn kill_at(&self, rank: usize) -> Option<u64> {
        self.kills
            .iter()
            .filter(|(r, _)| *r == rank)
            .map(|&(_, op)| op)
            .min()
    }

    /// Decide the fate of one transmission attempt.
    pub(crate) fn decide(&self, src: usize, dst: usize, tag: u64, seq: u64, attempt: u64) -> Fault {
        if let Some(t) = &self.targets {
            if !t.contains(&src) {
                return Fault::None;
            }
        }
        let key = [src as u64, dst as u64, tag, seq, attempt];
        if unit(hash_words(self.seed ^ 1, &key)) < self.drop_prob {
            return Fault::Drop;
        }
        if unit(hash_words(self.seed ^ 2, &key)) < self.corrupt_prob {
            return Fault::Corrupt;
        }
        if unit(hash_words(self.seed ^ 3, &key)) < self.delay_prob {
            return Fault::Delay(self.delay);
        }
        Fault::None
    }
}

/// Scale a timing `base` (a receive deadline, a heartbeat timeout) by how
/// oversubscribed `nranks` concurrent ranks leave this host's cores.
///
/// Every rank of an in-process world is an OS thread; when `nranks` exceeds
/// the available parallelism, a *live* rank can be starved off-CPU for
/// whole scheduler quanta mid-collective, and a deadline tuned on an idle
/// many-core box spuriously expires — misread as a rank failure. The scale
/// factor is the oversubscription ratio `ceil(nranks / cores)` (never below
/// 1), so idle multi-core hosts keep the tight `base` while loaded or
/// single-core boxes get proportionally more slack. Used by the heartbeat
/// detector and the shrink/recovery tests alike, replacing hand-raised
/// magic constants.
pub fn load_scaled_deadline(base: Duration, nranks: usize) -> Duration {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    base * nranks.div_ceil(cores).max(1) as u32
}

/// Checksum over the raw bit patterns of an `f64` payload — the integrity
/// check every data frame carries. Bitwise, so `-0.0`, `NaN` payloads, and
/// denormals all checksum stably.
///
/// FNV-1a style but word-wise over four independent lanes, folded in lane
/// order at the end: a byte-serial FNV is one long dependent multiply
/// chain (~1 GB/s), which shows up as real overhead when multi-megabyte
/// checkpoint payloads cross the transport. Four lanes give the CPU
/// independent chains to overlap while staying deterministic and
/// position-sensitive (swapped elements land in different lanes or
/// different fold positions).
pub fn checksum(data: &[f64]) -> u64 {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lanes = [SEED; 4];
    let mut chunks = data.chunks_exact(4);
    for c in &mut chunks {
        for i in 0..4 {
            lanes[i] = (lanes[i] ^ c[i].to_bits()).wrapping_mul(PRIME);
        }
    }
    let mut h = SEED;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    for &v in chunks.remainder() {
        h = (h ^ v.to_bits()).wrapping_mul(PRIME);
    }
    h
}

/// Flip one mantissa bit of one hash-chosen payload element — the in-flight
/// corruption a [`Fault::Corrupt`] decision applies. No-op on empty payloads.
pub(crate) fn corrupt_payload(seed: u64, src: usize, seq: u64, data: &mut [f64]) {
    if data.is_empty() {
        return;
    }
    let idx = hash_words(seed ^ 4, &[src as u64, seq]) as usize % data.len();
    data[idx] = f64::from_bits(data[idx].to_bits() ^ (1 << 51));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let plan = FaultPlan::new(7).drop_messages(0.5).corrupt_messages(0.25);
        for src in 0..4 {
            for seq in 0..100 {
                let a = plan.decide(src, 1, 10, seq, 0);
                let b = plan.decide(src, 1, 10, seq, 0);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn attempt_counter_changes_decisions() {
        // With p = 0.5 some frame must flip outcome across attempts.
        let plan = FaultPlan::new(42).drop_messages(0.5);
        let mut saw_flip = false;
        for seq in 0..64 {
            let d0 = plan.decide(0, 1, 0, seq, 0);
            let d1 = plan.decide(0, 1, 0, seq, 1);
            if d0 != d1 {
                saw_flip = true;
            }
        }
        assert!(saw_flip);
    }

    #[test]
    fn drop_rate_is_roughly_honored() {
        let plan = FaultPlan::new(3).drop_messages(0.3);
        let n = 10_000;
        let drops = (0..n)
            .filter(|&seq| plan.decide(0, 1, 0, seq, 0) == Fault::Drop)
            .count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn always_drop_drops_everything() {
        let plan = FaultPlan::always_drop(1);
        for seq in 0..100 {
            for attempt in 0..10 {
                assert_eq!(plan.decide(2, 3, 9, seq, attempt), Fault::Drop);
            }
        }
    }

    #[test]
    fn targeting_excludes_other_ranks() {
        let plan = FaultPlan::always_drop(1).target_ranks(&[2]);
        assert_eq!(plan.decide(2, 0, 0, 0, 0), Fault::Drop);
        assert_eq!(plan.decide(1, 0, 0, 0, 0), Fault::None);
    }

    #[test]
    fn checksum_detects_single_bit_flip() {
        let data = vec![1.0, -2.5, 3e17, 0.0];
        let sum = checksum(&data);
        let mut bad = data.clone();
        corrupt_payload(9, 0, 0, &mut bad);
        assert_ne!(bad, data);
        assert_ne!(checksum(&bad), sum);
    }

    #[test]
    fn checksum_is_order_sensitive() {
        assert_ne!(checksum(&[1.0, 2.0]), checksum(&[2.0, 1.0]));
    }

    #[test]
    fn kill_schedule_is_queryable() {
        let plan = FaultPlan::new(1)
            .kill_rank(2, 10)
            .kill_rank(2, 5)
            .kill_rank(0, 3);
        assert_eq!(plan.kill_at(2), Some(5));
        assert_eq!(plan.kill_at(0), Some(3));
        assert_eq!(plan.kill_at(1), None);
    }
}
