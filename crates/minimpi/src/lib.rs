//! # minimpi — an in-process message-passing substrate
//!
//! The paper parallelizes its PIC code across processes with MPI, using a
//! single collective: an `MPI_ALLREDUCE` of the charge-density array each
//! time step (§V-A). Rust MPI bindings are thin and a supercomputer is not
//! available here, so this crate substitutes the smallest substrate that
//! exercises the same code path:
//!
//! * [`World::run`] spawns `nranks` OS threads, each receiving a [`Comm`]
//!   handle — the moral equivalent of `MPI_COMM_WORLD`;
//! * [`Comm`] provides `barrier`, `allreduce_sum` (flat, tree, and
//!   Rabenseifner variants), point-to-point `send`/`recv`, `gather`, and
//!   per-rank communication-time accounting (the quantity Fig. 7 plots);
//! * [`cost::CostModel`] is a LogGP-style analytic model, calibrated from
//!   measured runs, used to extrapolate the weak/strong scaling of Figs. 7
//!   and 9 to core counts the host machine does not have.
//!
//! ## Fault injection and reliable transport
//!
//! Real interconnects drop, delay, and corrupt packets; MPI hides that
//! behind a reliable transport. This crate models both halves so the PIC
//! runtime's resilience can be exercised deterministically:
//!
//! * a seeded [`FaultPlan`] (installed via [`World::run_with_faults`])
//!   decides drop/corrupt/delay per transmission attempt as a pure hash of
//!   `(seed, src, dst, tag, seq, attempt)` — reproducible and independent
//!   of thread interleaving;
//! * every data frame carries an FNV-1a [`checksum`] of its payload; a
//!   receiver discards corrupted frames without acknowledging them;
//! * under a fault plan, sends are acknowledged and retried with bounded
//!   exponential backoff; a frame that cannot be delivered surfaces as a
//!   clean [`CommError`] from the `try_*` APIs instead of a deadlock.
//!
//! Without a fault plan the transport takes a fast path with no
//! acknowledgements (in-process channels cannot drop frames), so the
//! fault machinery costs nothing in normal runs.
//!
//! ## Example
//!
//! ```
//! use minimpi::World;
//!
//! let results = World::run(4, |comm| {
//!     let mine = vec![comm.rank() as f64; 8];
//!     let mut buf = mine.clone();
//!     comm.allreduce_sum(&mut buf);
//!     buf[0] // 0+1+2+3 = 6
//! });
//! assert!(results.iter().all(|&r| r == 6.0));
//! ```
//!
//! Fault-injected example — a lossy link that the transport recovers from:
//!
//! ```
//! use minimpi::{FaultPlan, World};
//!
//! let plan = FaultPlan::new(1).drop_messages(0.3);
//! let sums = World::run_with_faults(2, plan, |comm| {
//!     comm.set_ack_timeout(std::time::Duration::from_millis(5));
//!     let mut v = vec![comm.rank() as f64 + 1.0];
//!     comm.try_allreduce_sum_tree(&mut v, 0).unwrap();
//!     v[0]
//! });
//! assert!(sums.iter().all(|&s| s == 3.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod fault;

pub use fault::{checksum, FaultPlan};

use fault::Fault;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// A communication failure surfaced by the fallible (`try_*`) APIs.
///
/// These arise only under fault injection or when a peer rank exits early;
/// the fault-free in-process transport cannot fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the receive deadline
    /// ([`Comm::set_recv_deadline`]).
    Timeout {
        /// The waiting rank.
        rank: usize,
        /// The rank the message was expected from.
        src: usize,
        /// The expected tag.
        tag: u64,
    },
    /// Every transmission attempt of a frame was lost or corrupted and the
    /// retry budget ([`Comm::set_max_retries`]) is exhausted.
    RetriesExhausted {
        /// The sending rank.
        rank: usize,
        /// The destination rank.
        dst: usize,
        /// The frame's tag.
        tag: u64,
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// A payload failed checksum validation after it was already accepted —
    /// data corrupted between the reduction buffer and this rank's copy.
    Corrupted {
        /// The detecting rank.
        rank: usize,
        /// The tag of the affected exchange (0 for the flat allreduce).
        tag: u64,
    },
    /// A peer's inbox was torn down (the rank returned or panicked).
    Disconnected {
        /// The rank that observed the disconnect.
        rank: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { rank, src, tag } => {
                write!(
                    f,
                    "rank {rank}: timed out waiting for (src {src}, tag {tag})"
                )
            }
            CommError::RetriesExhausted {
                rank,
                dst,
                tag,
                attempts,
            } => write!(
                f,
                "rank {rank}: gave up sending (dst {dst}, tag {tag}) after {attempts} attempts"
            ),
            CommError::Corrupted { rank, tag } => {
                write!(f, "rank {rank}: checksum mismatch on tag {tag}")
            }
            CommError::Disconnected { rank } => {
                write!(f, "rank {rank}: peer inbox disconnected")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// A wire frame: either a data message or an acknowledgement.
///
/// Control frames ([`Frame::Ack`]) are never fault-injected — keeping the
/// reverse path reliable keeps the protocol a simple positive-ack scheme
/// (a lost ack would only cause a duplicate retransmission, which the
/// receiver's dedup absorbs anyway).
#[derive(Debug, Clone)]
enum Frame {
    Data {
        src: usize,
        tag: u64,
        /// Per-(src → dst) monotone sequence number; identifies the frame
        /// across retransmissions and drives duplicate suppression.
        seq: u64,
        /// Whether the sender is waiting for an [`Frame::Ack`].
        needs_ack: bool,
        /// FNV-1a checksum of the *original* payload. A corrupted-in-flight
        /// frame carries the clean checksum, so the receiver detects it.
        checksum: u64,
        data: Vec<f64>,
    },
    Ack {
        /// The acknowledging rank.
        src: usize,
        seq: u64,
    },
}

/// Shared state for one world.
struct Shared {
    nranks: usize,
    barrier: Barrier,
    /// Reduction scratch, guarded; sized lazily to the first allreduce.
    acc: Mutex<Vec<f64>>,
    /// Per-rank inbox sender handles (indexed by destination).
    inboxes: Vec<Sender<Frame>>,
    /// Total communication time across ranks, in nanoseconds.
    comm_nanos: AtomicU64,
}

/// Bounded exponential backoff between retransmissions: 1, 2, 4, 8, 16 ms,
/// capped at 20 ms.
fn backoff(attempt: usize) -> Duration {
    Duration::from_millis((1u64 << attempt.min(5)).min(20))
}

/// The world: spawns ranks and collects their results.
pub struct World;

impl World {
    /// Run `f` on `nranks` concurrent ranks and return their results in rank
    /// order. Panics in any rank propagate.
    ///
    /// # Panics
    /// Panics if `nranks == 0`.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run_inner(nranks, None, f).0
    }

    /// Like [`World::run`], additionally returning the mean per-rank
    /// communication time in seconds.
    pub fn run_timed<T, F>(nranks: usize, f: F) -> (Vec<T>, f64)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run_inner(nranks, None, f)
    }

    /// Run `f` on `nranks` ranks with `plan` injecting message faults into
    /// every data frame. Point-to-point traffic switches to the reliable
    /// (ack + retry) transport; ranks should use the `try_*` APIs and
    /// handle [`CommError`] (the panicking wrappers abort the rank on
    /// unrecoverable faults).
    ///
    /// # Panics
    /// Panics if `nranks == 0`.
    pub fn run_with_faults<T, F>(nranks: usize, plan: FaultPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run_inner(nranks, Some(Arc::new(plan)), f).0
    }

    fn run_inner<T, F>(nranks: usize, faults: Option<Arc<FaultPlan>>, f: F) -> (Vec<T>, f64)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        assert!(nranks > 0, "need at least one rank");
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            nranks,
            barrier: Barrier::new(nranks),
            acc: Mutex::new(Vec::new()),
            inboxes: senders,
            comm_nanos: AtomicU64::new(0),
        });

        let mut out: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let shared = Arc::clone(&shared);
                    let faults = faults.clone();
                    let f = &f;
                    s.spawn(move || {
                        let mut comm = Comm::new(rank, shared, rx, faults);
                        let r = f(&mut comm);
                        comm.shared
                            .comm_nanos
                            .fetch_add(comm.comm_time_ns, Ordering::Relaxed);
                        r
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                // Propagating a child panic: reachable only when the user
                // closure itself panics.
                *slot = Some(h.join().expect("rank panicked"));
            }
        });
        let mean_comm = shared.comm_nanos.load(Ordering::Relaxed) as f64 / 1e9 / nranks as f64;
        // Every slot was filled in the join loop above.
        let results = out.into_iter().map(|o| o.expect("slot filled")).collect();
        (results, mean_comm)
    }
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    inbox: Receiver<Frame>,
    /// Validated messages received but not yet claimed (selective receive),
    /// as `(src, tag, payload)` in arrival order.
    stash: VecDeque<(usize, u64, Vec<f64>)>,
    /// `(src, seq)` pairs already delivered — suppresses retransmitted
    /// duplicates on the reliable path.
    delivered: HashSet<(usize, u64)>,
    /// Acks that arrived while this rank was not waiting for them
    /// (e.g. a late ack after a sender timeout), as `(peer, seq)`.
    acked: HashSet<(usize, u64)>,
    /// Next sequence number per destination rank.
    next_seq: Vec<u64>,
    comm_time_ns: u64,
    faults: Option<Arc<FaultPlan>>,
    ack_timeout: Duration,
    recv_deadline: Duration,
    max_retries: usize,
}

impl Comm {
    fn new(
        rank: usize,
        shared: Arc<Shared>,
        inbox: Receiver<Frame>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let nranks = shared.nranks;
        Comm {
            rank,
            shared,
            inbox,
            stash: VecDeque::new(),
            delivered: HashSet::new(),
            acked: HashSet::new(),
            next_seq: vec![0; nranks],
            comm_time_ns: 0,
            faults,
            ack_timeout: Duration::from_millis(25),
            recv_deadline: Duration::from_secs(10),
            max_retries: 10,
        }
    }

    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.shared.nranks
    }

    /// Seconds this rank has spent inside communication calls.
    pub fn comm_time(&self) -> f64 {
        self.comm_time_ns as f64 / 1e9
    }

    /// How long a reliable send waits for an ack before retransmitting.
    pub fn set_ack_timeout(&mut self, d: Duration) {
        self.ack_timeout = d;
    }

    /// Deadline for [`try_recv`](Self::try_recv) before it reports
    /// [`CommError::Timeout`] — the bound that turns a would-be deadlock
    /// into a clean error.
    pub fn set_recv_deadline(&mut self, d: Duration) {
        self.recv_deadline = d;
    }

    /// Retransmission budget per frame on the reliable path.
    pub fn set_max_retries(&mut self, n: usize) {
        self.max_retries = n;
    }

    /// Synchronize all ranks.
    pub fn barrier(&mut self) {
        let t = Instant::now();
        self.shared.barrier.wait();
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
    }

    // ---------------------------------------------------------------- data
    // path: validate / ack / dedup / stash.

    fn accept_data(
        &mut self,
        src: usize,
        tag: u64,
        seq: u64,
        needs_ack: bool,
        sum: u64,
        data: Vec<f64>,
    ) {
        if fault::checksum(&data) != sum {
            // Corrupted in flight: discard without acknowledging. The
            // sender retransmits and a clean copy arrives on a later
            // attempt (or its retry budget runs out and it reports the
            // failure) — corruption never reaches the application.
            return;
        }
        if needs_ack {
            // Ack duplicates too: the earlier ack may have raced the
            // sender's timeout. Delivery failure here means the sender is
            // gone, which its own side already observes.
            let _ = self.shared.inboxes[src].send(Frame::Ack {
                src: self.rank,
                seq,
            });
            if !self.delivered.insert((src, seq)) {
                return; // retransmitted duplicate, already delivered
            }
        }
        self.stash.push_back((src, tag, data));
    }

    fn deliver(&self, dst: usize, frame: Frame) -> Result<(), CommError> {
        self.shared.inboxes[dst]
            .send(frame)
            .map_err(|_| CommError::Disconnected { rank: self.rank })
    }

    /// Wait for an ack of `seq` from `peer`, servicing any data frames that
    /// arrive meanwhile (two ranks reliably sending to each other would
    /// otherwise deadlock). `Ok(false)` means the ack timeout elapsed.
    fn await_ack(&mut self, peer: usize, seq: u64) -> Result<bool, CommError> {
        if self.acked.remove(&(peer, seq)) {
            return Ok(true);
        }
        let deadline = Instant::now() + self.ack_timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            match self.inbox.recv_timeout(deadline - now) {
                Ok(Frame::Ack { src, seq: s }) => {
                    if src == peer && s == seq {
                        return Ok(true);
                    }
                    self.acked.insert((src, s));
                }
                Ok(Frame::Data {
                    src,
                    tag,
                    seq,
                    needs_ack,
                    checksum,
                    data,
                }) => self.accept_data(src, tag, seq, needs_ack, checksum, data),
                Err(RecvTimeoutError::Timeout) => return Ok(false),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { rank: self.rank })
                }
            }
        }
    }

    // ---------------------------------------------------------- point-to-point

    /// Send a copy of `data` to `dst` with `tag`, reporting transport
    /// failures instead of panicking.
    ///
    /// Without a fault plan this is a single infallible channel push. With
    /// one, the frame is retransmitted with bounded exponential backoff
    /// until acknowledged; a frame the plan starves past the retry budget
    /// returns [`CommError::RetriesExhausted`].
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    pub fn try_send(&mut self, dst: usize, tag: u64, data: &[f64]) -> Result<(), CommError> {
        let t = Instant::now();
        let res = self.send_impl(dst, tag, data);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    fn send_impl(&mut self, dst: usize, tag: u64, data: &[f64]) -> Result<(), CommError> {
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let sum = fault::checksum(data);

        let Some(plan) = self.faults.clone() else {
            // Fast path: in-process channels cannot drop or corrupt, so no
            // ack round-trip is needed.
            return self.deliver(
                dst,
                Frame::Data {
                    src: self.rank,
                    tag,
                    seq,
                    needs_ack: false,
                    checksum: sum,
                    data: data.to_vec(),
                },
            );
        };

        for attempt in 0..=self.max_retries {
            match plan.decide(self.rank, dst, tag, seq, attempt as u64) {
                Fault::Drop => {} // this attempt is lost in flight
                outcome => {
                    let mut payload = data.to_vec();
                    if outcome == Fault::Corrupt {
                        fault::corrupt_payload(attempt as u64, self.rank, seq, &mut payload);
                    }
                    if let Fault::Delay(d) = outcome {
                        std::thread::sleep(d);
                    }
                    self.deliver(
                        dst,
                        Frame::Data {
                            src: self.rank,
                            tag,
                            seq,
                            needs_ack: true,
                            checksum: sum,
                            data: payload,
                        },
                    )?;
                }
            }
            if self.await_ack(dst, seq)? {
                return Ok(());
            }
            std::thread::sleep(backoff(attempt));
        }
        Err(CommError::RetriesExhausted {
            rank: self.rank,
            dst,
            tag,
            attempts: self.max_retries + 1,
        })
    }

    /// Send a copy of `data` to `dst` with `tag`.
    ///
    /// # Panics
    /// Panics if `dst` is out of range, or on a transport failure — which
    /// only fault injection or an early-exiting peer can cause; use
    /// [`try_send`](Self::try_send) to handle those.
    pub fn send(&mut self, dst: usize, tag: u64, data: &[f64]) {
        self.try_send(dst, tag, data)
            .unwrap_or_else(|e| panic!("minimpi send to rank {dst}: {e}"));
    }

    /// Blocking selective receive from `src` with `tag`, bounded by the
    /// receive deadline ([`Self::set_recv_deadline`]) so a missing sender
    /// yields [`CommError::Timeout`] instead of a hang.
    pub fn try_recv(&mut self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let t = Instant::now();
        let res = self.recv_impl(src, tag);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    fn recv_impl(&mut self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        let deadline = Instant::now() + self.recv_deadline;
        loop {
            if let Some(pos) = self
                .stash
                .iter()
                .position(|(s, g, _)| *s == src && *g == tag)
            {
                // The position was just found, so the removal succeeds.
                return Ok(self.stash.remove(pos).expect("stash entry present").2);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout {
                    rank: self.rank,
                    src,
                    tag,
                });
            }
            match self.inbox.recv_timeout(deadline - now) {
                Ok(Frame::Data {
                    src,
                    tag,
                    seq,
                    needs_ack,
                    checksum,
                    data,
                }) => self.accept_data(src, tag, seq, needs_ack, checksum, data),
                Ok(Frame::Ack { src, seq }) => {
                    // A late ack (its sender already timed out and moved
                    // on, or will look for it on its next await).
                    self.acked.insert((src, seq));
                }
                Err(RecvTimeoutError::Timeout) => {} // loop reports Timeout
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { rank: self.rank })
                }
            }
        }
    }

    /// Blocking selective receive from `src` with `tag`.
    ///
    /// # Panics
    /// Panics if the receive deadline elapses or the world is torn down;
    /// use [`try_recv`](Self::try_recv) to handle those.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        self.try_recv(src, tag)
            .unwrap_or_else(|e| panic!("minimpi recv from rank {src}: {e}"))
    }

    /// Like [`try_recv`](Self::try_recv) but into an existing buffer.
    ///
    /// # Panics
    /// Panics if the received length differs from `buf` — a collective
    /// contract violation, not a runtime fault.
    pub fn try_recv_into(
        &mut self,
        src: usize,
        tag: u64,
        buf: &mut [f64],
    ) -> Result<(), CommError> {
        let data = self.try_recv(src, tag)?;
        assert_eq!(data.len(), buf.len(), "recv_into length mismatch");
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// Like [`recv`](Self::recv) but into an existing buffer.
    ///
    /// # Panics
    /// Panics if lengths differ, the receive deadline elapses, or the world
    /// is torn down.
    pub fn recv_into(&mut self, src: usize, tag: u64, buf: &mut [f64]) {
        self.try_recv_into(src, tag, buf)
            .unwrap_or_else(|e| panic!("minimpi recv_into from rank {src}: {e}"));
    }

    // ------------------------------------------------------------ collectives

    /// Global sum-reduction of `buf` across all ranks; every rank ends with
    /// the total (the paper's `MPI_ALLREDUCE` on ρ). Flat shared-accumulator
    /// algorithm over shared memory — message faults do not apply, but each
    /// rank still verifies its copy of the result against a checksum taken
    /// under the accumulator lock.
    ///
    /// # Panics
    /// Panics if ranks pass buffers of different lengths.
    pub fn try_allreduce_sum(&mut self, buf: &mut [f64]) -> Result<(), CommError> {
        let t = Instant::now();
        {
            let mut acc = self.shared.acc.lock().expect("rank panicked holding lock");
            if acc.len() != buf.len() {
                assert!(
                    acc.is_empty(),
                    "allreduce length mismatch: {} vs {}",
                    acc.len(),
                    buf.len()
                );
                acc.resize(buf.len(), 0.0);
            }
            for (a, &b) in acc.iter_mut().zip(buf.iter()) {
                *a += b;
            }
        }
        self.shared.barrier.wait();
        let expected;
        {
            let acc = self.shared.acc.lock().expect("rank panicked holding lock");
            expected = fault::checksum(&acc);
            buf.copy_from_slice(&acc);
        }
        self.shared.barrier.wait();
        if self.rank == 0 {
            self.shared
                .acc
                .lock()
                .expect("rank panicked holding lock")
                .clear();
        }
        self.shared.barrier.wait();
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        if fault::checksum(buf) != expected {
            return Err(CommError::Corrupted {
                rank: self.rank,
                tag: 0,
            });
        }
        Ok(())
    }

    /// Infallible wrapper around
    /// [`try_allreduce_sum`](Self::try_allreduce_sum).
    ///
    /// # Panics
    /// Panics if ranks pass buffers of different lengths, or on checksum
    /// failure.
    pub fn allreduce_sum(&mut self, buf: &mut [f64]) {
        self.try_allreduce_sum(buf)
            .unwrap_or_else(|e| panic!("minimpi allreduce_sum: {e}"));
    }

    /// Tree (recursive-doubling) allreduce built on point-to-point messages —
    /// the algorithm real MPI uses, with `⌈log₂ P⌉` rounds. Works for any
    /// rank count (non-powers of two fold the remainder onto the main tree).
    /// Under fault injection, each hop recovers via the reliable transport
    /// or surfaces its [`CommError`].
    pub fn try_allreduce_sum_tree(&mut self, buf: &mut [f64], tag: u64) -> Result<(), CommError> {
        let t = Instant::now();
        let p = self.size();
        let pow2 = p.next_power_of_two() >> usize::from(!p.is_power_of_two());
        // `pow2` = largest power of two ≤ p.
        let r = self.rank;
        let extra = p - pow2;

        // Fold the surplus ranks onto their partners below pow2.
        if r >= pow2 {
            self.try_send(r - pow2, tag, buf)?;
            self.try_recv_into(r - pow2, tag + 1, buf)?;
        } else {
            if r < extra {
                let msg = self.try_recv(r + pow2, tag)?;
                for (b, m) in buf.iter_mut().zip(&msg) {
                    *b += m;
                }
            }
            // Recursive doubling among the pow2 ranks.
            let mut mask = 1usize;
            while mask < pow2 {
                let partner = r ^ mask;
                self.try_send(partner, tag + 2 + mask as u64, buf)?;
                let msg = self.try_recv(partner, tag + 2 + mask as u64)?;
                for (b, m) in buf.iter_mut().zip(&msg) {
                    *b += m;
                }
                mask <<= 1;
            }
            if r < extra {
                self.try_send(r + pow2, tag + 1, buf)?;
            }
        }
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Infallible wrapper around
    /// [`try_allreduce_sum_tree`](Self::try_allreduce_sum_tree).
    ///
    /// # Panics
    /// Panics on transport failure (only possible under fault injection or
    /// an early-exiting peer).
    pub fn allreduce_sum_tree(&mut self, buf: &mut [f64], tag: u64) {
        self.try_allreduce_sum_tree(buf, tag)
            .unwrap_or_else(|e| panic!("minimpi allreduce_sum_tree: {e}"));
    }

    /// Rabenseifner allreduce (reduce-scatter + allgather) — the algorithm
    /// real MPI libraries pick for large payloads: each of the `⌈log₂P⌉`
    /// reduce-scatter rounds halves the exchanged data, so total traffic is
    /// `2·n·(P−1)/P` instead of the tree's `2·n·log₂P`. Requires a
    /// power-of-two rank count (callers fall back to
    /// [`allreduce_sum_tree`](Self::allreduce_sum_tree) otherwise).
    pub fn try_allreduce_sum_rabenseifner(
        &mut self,
        buf: &mut [f64],
        tag: u64,
    ) -> Result<(), CommError> {
        let p = self.size();
        if p == 1 {
            return Ok(());
        }
        if !p.is_power_of_two() || buf.len() < p {
            return self.try_allreduce_sum_tree(buf, tag);
        }
        let t = Instant::now();
        let r = self.rank;
        let n = buf.len();
        // Block boundaries: block b = [starts[b], starts[b+1]).
        let starts: Vec<usize> = (0..=p).map(|b| b * n / p).collect();

        // Reduce-scatter by recursive halving: after round k, this rank
        // holds the partial sum of a 2^{k+1}-rank group on a 1/2^{k+1}
        // slice of the buffer.
        let mut group = p; // current group size
        let mut lo = 0usize; // current block range [lo, hi) owned
        let mut hi = p;
        let mut round = 0u64;
        while group > 1 {
            let half = group / 2;
            let partner = r ^ half;
            let mid = lo + (hi - lo) / 2;
            // Lower half of the group keeps [lo, mid), sends [mid, hi).
            let (keep_lo, keep_hi, send_lo, send_hi) = if (r & half) == 0 {
                (lo, mid, mid, hi)
            } else {
                (mid, hi, lo, mid)
            };
            let send_slice = buf[starts[send_lo]..starts[send_hi]].to_vec();
            self.try_send(partner, tag + 2 * round, &send_slice)?;
            let recv = self.try_recv(partner, tag + 2 * round)?;
            let dst = &mut buf[starts[keep_lo]..starts[keep_hi]];
            assert_eq!(recv.len(), dst.len());
            for (d, s) in dst.iter_mut().zip(&recv) {
                *d += s;
            }
            lo = keep_lo;
            hi = keep_hi;
            group = half;
            round += 1;
        }

        // Allgather by recursive doubling: mirror the halving.
        let mut group = 2usize;
        while group <= p {
            let half = group / 2;
            let partner = r ^ half;
            // This rank owns [lo, hi); the partner owns the sibling range.
            let width = hi - lo;
            let (plo, phi) = if (r & half) == 0 {
                (lo + width, hi + width)
            } else {
                (lo - width, hi - width)
            };
            let own = buf[starts[lo]..starts[hi]].to_vec();
            self.try_send(partner, tag + 1000 + 2 * round, &own)?;
            let recv = self.try_recv(partner, tag + 1000 + 2 * round)?;
            let dst = &mut buf[starts[plo]..starts[phi]];
            assert_eq!(recv.len(), dst.len());
            dst.copy_from_slice(&recv);
            lo = lo.min(plo);
            hi = hi.max(phi);
            group *= 2;
            round += 1;
        }
        debug_assert_eq!((lo, hi), (0, p));
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Infallible wrapper around
    /// [`try_allreduce_sum_rabenseifner`](Self::try_allreduce_sum_rabenseifner).
    ///
    /// # Panics
    /// Panics on transport failure (only possible under fault injection or
    /// an early-exiting peer).
    pub fn allreduce_sum_rabenseifner(&mut self, buf: &mut [f64], tag: u64) {
        self.try_allreduce_sum_rabenseifner(buf, tag)
            .unwrap_or_else(|e| panic!("minimpi allreduce_sum_rabenseifner: {e}"));
    }

    /// Gather each rank's `data` on rank 0 (others get `None`).
    pub fn gather(&mut self, data: &[f64], tag: u64) -> Option<Vec<Vec<f64>>> {
        if self.rank == 0 {
            let mut all = vec![Vec::new(); self.size()];
            all[0] = data.to_vec();
            for (src, slot) in all.iter_mut().enumerate().skip(1) {
                *slot = self.recv(src, tag);
            }
            Some(all)
        } else {
            self.send(0, tag, data);
            None
        }
    }

    /// Broadcast rank 0's `buf` to everyone.
    pub fn broadcast(&mut self, buf: &mut [f64], tag: u64) {
        if self.rank == 0 {
            for dst in 1..self.size() {
                let data: Vec<f64> = buf.to_vec();
                self.send(dst, tag, &data);
            }
        } else {
            self.recv_into(0, tag, buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let r = World::run(1, |comm| {
            let mut v = vec![5.0];
            comm.allreduce_sum(&mut v);
            comm.allreduce_sum_tree(&mut v, 100);
            v[0]
        });
        assert_eq!(r, vec![5.0]);
    }

    #[test]
    fn flat_allreduce_sums() {
        for nranks in [2usize, 3, 4, 7, 8] {
            let results = World::run(nranks, |comm| {
                let mut v: Vec<f64> = (0..16).map(|i| (comm.rank() * 16 + i) as f64).collect();
                comm.allreduce_sum(&mut v);
                v
            });
            for i in 0..16 {
                let expect: f64 = (0..nranks).map(|r| (r * 16 + i) as f64).sum();
                for r in &results {
                    assert_eq!(r[i], expect, "nranks={nranks} i={i}");
                }
            }
        }
    }

    #[test]
    fn tree_allreduce_sums() {
        for nranks in [2usize, 3, 4, 5, 8, 13, 16] {
            let results = World::run(nranks, |comm| {
                let mut v: Vec<f64> = (0..8).map(|i| (comm.rank() + i) as f64).collect();
                comm.allreduce_sum_tree(&mut v, 0);
                v
            });
            for i in 0..8 {
                let expect: f64 = (0..nranks).map(|r| (r + i) as f64).sum();
                for (rank, r) in results.iter().enumerate() {
                    assert_eq!(r[i], expect, "nranks={nranks} rank={rank} i={i}");
                }
            }
        }
    }

    #[test]
    fn repeated_allreduce_rounds() {
        // The PIC loop calls allreduce every iteration — state must reset.
        let results = World::run(4, |comm| {
            let mut total = 0.0;
            for step in 0..10u64 {
                let mut v = vec![1.0 + step as f64];
                comm.allreduce_sum(&mut v);
                total += v[0];
            }
            total
        });
        let expect: f64 = (0..10).map(|s| 4.0 * (1.0 + s as f64)).sum();
        assert!(results.iter().all(|&r| r == expect));
    }

    #[test]
    fn mixed_tree_and_flat() {
        let results = World::run(6, |comm| {
            let mut a = vec![comm.rank() as f64];
            comm.allreduce_sum(&mut a);
            let mut b = vec![1.0];
            comm.allreduce_sum_tree(&mut b, 50);
            (a[0], b[0])
        });
        for (a, b) in results {
            assert_eq!(a, 15.0);
            assert_eq!(b, 6.0);
        }
    }

    #[test]
    fn rabenseifner_allreduce_sums() {
        for nranks in [2usize, 4, 8] {
            let results = World::run(nranks, |comm| {
                let mut v: Vec<f64> = (0..32).map(|i| (comm.rank() * 32 + i) as f64).collect();
                comm.allreduce_sum_rabenseifner(&mut v, 0);
                v
            });
            for i in 0..32 {
                let expect: f64 = (0..nranks).map(|r| (r * 32 + i) as f64).sum();
                for (rank, r) in results.iter().enumerate() {
                    assert_eq!(r[i], expect, "nranks={nranks} rank={rank} i={i}");
                }
            }
        }
    }

    #[test]
    fn rabenseifner_falls_back_for_odd_ranks() {
        let results = World::run(3, |comm| {
            let mut v = vec![1.0; 16];
            comm.allreduce_sum_rabenseifner(&mut v, 0);
            v[0]
        });
        assert!(results.iter().all(|&r| r == 3.0));
    }

    #[test]
    fn rabenseifner_falls_back_for_small_payload() {
        // Payload shorter than the rank count cannot be block-scattered.
        let results = World::run(4, |comm| {
            let mut v = vec![comm.rank() as f64; 2];
            comm.allreduce_sum_rabenseifner(&mut v, 0);
            v[0]
        });
        assert!(results.iter().all(|&r| r == 6.0));
    }

    #[test]
    fn rabenseifner_repeated_rounds() {
        let results = World::run(4, |comm| {
            let mut total = 0.0;
            for step in 0..5u64 {
                let mut v = vec![1.0 + step as f64; 64];
                comm.allreduce_sum_rabenseifner(&mut v, step * 10_000);
                total += v[33];
            }
            total
        });
        let expect: f64 = (0..5).map(|s| 4.0 * (1.0 + s as f64)).sum();
        assert!(results.iter().all(|&r| r == expect));
    }

    #[test]
    fn rabenseifner_uneven_blocks() {
        // Payload not divisible by rank count: blocks differ in size.
        let results = World::run(4, |comm| {
            let mut v: Vec<f64> = (0..13).map(|i| (comm.rank() + i) as f64).collect();
            comm.allreduce_sum_rabenseifner(&mut v, 0);
            v
        });
        for i in 0..13 {
            let expect: f64 = (0..4).map(|r| (r + i) as f64).sum();
            for r in &results {
                assert_eq!(r[i], expect, "i={i}");
            }
        }
    }

    #[test]
    fn point_to_point_roundtrip() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn selective_receive_out_of_order() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send(1, 2, &[20.0]);
                comm.send(1, 1, &[10.0]);
                vec![0.0]
            } else {
                let first = comm.recv(0, 1);
                let second = comm.recv(0, 2);
                vec![first[0], second[0]]
            }
        });
        assert_eq!(results[1], vec![10.0, 20.0]);
    }

    #[test]
    fn gather_collects_on_root() {
        let results = World::run(3, |comm| comm.gather(&[comm.rank() as f64], 9));
        let root = results[0].as_ref().unwrap();
        assert_eq!(root.len(), 3);
        for (r, v) in root.iter().enumerate() {
            assert_eq!(v[0], r as f64);
        }
        assert!(results[1].is_none());
        assert!(results[2].is_none());
    }

    #[test]
    fn broadcast_distributes() {
        let results = World::run(4, |comm| {
            let mut v = if comm.rank() == 0 {
                vec![3.25, -1.0]
            } else {
                vec![0.0, 0.0]
            };
            comm.broadcast(&mut v, 11);
            v
        });
        for r in results {
            assert_eq!(r, vec![3.25, -1.0]);
        }
    }

    #[test]
    fn comm_time_is_tracked() {
        let (_, mean_comm) = World::run_timed(4, |comm| {
            let mut v = vec![0.0; 1024];
            for _ in 0..50 {
                comm.allreduce_sum(&mut v);
            }
            comm.comm_time()
        });
        assert!(mean_comm > 0.0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        World::run(8, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must see all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    // ------------------------------------------------------- fault injection

    /// Shrink the timeouts so fault tests run fast.
    fn fast_timeouts(comm: &mut Comm) {
        comm.set_ack_timeout(Duration::from_millis(5));
    }

    #[test]
    fn lossy_link_recovers_via_retry() {
        let plan = FaultPlan::new(11).drop_messages(0.5);
        let results = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            if comm.rank() == 0 {
                for i in 0..20u64 {
                    comm.try_send(1, i, &[i as f64, -(i as f64)]).unwrap();
                }
                Vec::new()
            } else {
                (0..20u64)
                    .map(|i| {
                        let m = comm.try_recv(0, i).unwrap();
                        assert_eq!(m, vec![i as f64, -(i as f64)]);
                        m[0]
                    })
                    .collect()
            }
        });
        assert_eq!(results[1], (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn corrupted_frames_are_detected_and_retransmitted() {
        // Half of all deliveries carry a flipped bit; the checksum rejects
        // them and a clean retransmission must still get every payload
        // through intact.
        let plan = FaultPlan::new(5).corrupt_messages(0.5);
        let results = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            if comm.rank() == 0 {
                for i in 0..20u64 {
                    comm.try_send(1, i, &[1.5 * i as f64; 8]).unwrap();
                }
                true
            } else {
                (0..20u64).all(|i| comm.try_recv(0, i).unwrap() == vec![1.5 * i as f64; 8])
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn delayed_frames_do_not_affect_results() {
        let plan = FaultPlan::new(3).delay_messages(0.5, Duration::from_micros(200));
        let results = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            let mut v = vec![comm.rank() as f64; 8];
            comm.try_allreduce_sum_tree(&mut v, 0).unwrap();
            v[0]
        });
        assert!(results.iter().all(|&r| r == 6.0));
    }

    #[test]
    fn tree_allreduce_recovers_under_faults() {
        // Drops and corruption on every link; the reliable transport must
        // still produce exactly the fault-free sums on every rank.
        let plan = FaultPlan::new(17).drop_messages(0.3).corrupt_messages(0.2);
        let results = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            let mut total = 0.0;
            for step in 0..5u64 {
                let mut v: Vec<f64> = (0..8).map(|i| (comm.rank() + i) as f64).collect();
                comm.try_allreduce_sum_tree(&mut v, step * 10_000).unwrap();
                total += v[3];
            }
            total
        });
        let per_step: f64 = (0..4).map(|r| (r + 3) as f64).sum();
        assert!(results.iter().all(|&r| r == 5.0 * per_step), "{results:?}");
    }

    #[test]
    fn rabenseifner_recovers_under_faults() {
        let plan = FaultPlan::new(23).drop_messages(0.3).corrupt_messages(0.2);
        let results = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            let mut v: Vec<f64> = (0..16).map(|i| (comm.rank() * 16 + i) as f64).collect();
            comm.try_allreduce_sum_rabenseifner(&mut v, 0).unwrap();
            v
        });
        for i in 0..16 {
            let expect: f64 = (0..4).map(|r| (r * 16 + i) as f64).sum();
            for r in &results {
                assert_eq!(r[i], expect, "i={i}");
            }
        }
    }

    #[test]
    fn unrecoverable_plan_fails_cleanly_without_deadlock() {
        let plan = FaultPlan::always_drop(1);
        let results = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            comm.set_max_retries(4);
            comm.set_recv_deadline(Duration::from_millis(400));
            if comm.rank() == 0 {
                comm.try_send(1, 7, &[1.0]).unwrap_err()
            } else {
                comm.try_recv(0, 7).unwrap_err()
            }
        });
        assert!(
            matches!(
                results[0],
                CommError::RetriesExhausted {
                    rank: 0,
                    dst: 1,
                    tag: 7,
                    attempts: 5
                }
            ),
            "{:?}",
            results[0]
        );
        assert!(
            matches!(
                results[1],
                CommError::Timeout {
                    rank: 1,
                    src: 0,
                    tag: 7
                }
            ),
            "{:?}",
            results[1]
        );
    }

    #[test]
    fn fault_injection_is_reproducible() {
        // Same seed → byte-identical outcomes including the error path.
        let run = || {
            let plan = FaultPlan::new(99).drop_messages(0.4);
            World::run_with_faults(2, plan, |comm| {
                fast_timeouts(comm);
                if comm.rank() == 0 {
                    (0..10u64)
                        .map(|i| comm.try_send(1, i, &[i as f64]).is_ok())
                        .collect::<Vec<_>>()
                } else {
                    (0..10u64)
                        .map(|i| comm.try_recv(0, i).is_ok())
                        .collect::<Vec<_>>()
                }
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn targeted_faults_leave_other_ranks_clean() {
        // Only rank 0's outgoing frames are faulty; rank 1 → 0 traffic
        // takes the reliable path but never needs a retry.
        let plan = FaultPlan::new(2).drop_messages(0.9).target_ranks(&[0]);
        let results = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            if comm.rank() == 0 {
                comm.try_send(1, 1, &[4.0]).unwrap();
                comm.try_recv(1, 2).unwrap()
            } else {
                let got = comm.try_recv(0, 1).unwrap();
                comm.try_send(0, 2, &[got[0] * 2.0]).unwrap();
                got
            }
        });
        assert_eq!(results[0], vec![8.0]);
        assert_eq!(results[1], vec![4.0]);
    }
}
