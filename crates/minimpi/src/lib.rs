//! # minimpi — an in-process message-passing substrate
//!
//! The paper parallelizes its PIC code across processes with MPI, using a
//! single collective: an `MPI_ALLREDUCE` of the charge-density array each
//! time step (§V-A). Rust MPI bindings are thin and a supercomputer is not
//! available here, so this crate substitutes the smallest substrate that
//! exercises the same code path:
//!
//! * [`World::run`] spawns `nranks` OS threads, each receiving a [`Comm`]
//!   handle — the moral equivalent of `MPI_COMM_WORLD`;
//! * [`Comm`] provides `barrier`, `allreduce_sum` (flat, tree, and
//!   Rabenseifner variants), point-to-point `send`/`recv`, `gather`, and
//!   per-rank communication-time accounting (the quantity Fig. 7 plots);
//! * [`cost::CostModel`] is a LogGP-style analytic model, calibrated from
//!   measured runs, used to extrapolate the weak/strong scaling of Figs. 7
//!   and 9 to core counts the host machine does not have.
//!
//! ## Fault injection and reliable transport
//!
//! Real interconnects drop, delay, and corrupt packets; MPI hides that
//! behind a reliable transport. This crate models both halves so the PIC
//! runtime's resilience can be exercised deterministically:
//!
//! * a seeded [`FaultPlan`] (installed via [`World::run_with_faults`])
//!   decides drop/corrupt/delay per transmission attempt as a pure hash of
//!   `(seed, src, dst, tag, seq, attempt)` — reproducible and independent
//!   of thread interleaving;
//! * every data frame carries an FNV-1a [`checksum`] of its payload; a
//!   receiver discards corrupted frames without acknowledging them;
//! * under a fault plan, sends are acknowledged and retried with bounded
//!   exponential backoff; a frame that cannot be delivered surfaces as a
//!   clean [`CommError`] from the `try_*` APIs instead of a deadlock.
//!
//! Without a fault plan the transport takes a fast path with no
//! acknowledgements (in-process channels cannot drop frames), so the
//! fault machinery costs nothing in normal runs.
//!
//! ## Crash faults and shrinking recovery
//!
//! Beyond lossy links, ranks can *die*: [`FaultPlan::kill_rank`] schedules a
//! crash fault at a deterministic operation count, after which every
//! operation on the killed rank returns [`CommError::RankFailed`] and the
//! rank marks itself dead in the world's shared failure-detector state.
//! Survivors observe the death — through the dead flag, or through a stale
//! heartbeat when [`Comm::set_heartbeat_timeout`] arms the detector — and
//! their fault-aware collectives ([`Comm::try_barrier`],
//! [`Comm::try_allreduce_sum_tree`], [`Comm::try_broadcast`],
//! [`Comm::try_gather`]) return [`CommError::RankFailed`] instead of
//! hanging. [`Comm::shrink`] then rebuilds a live-rank communicator
//! (ULFM-style) and bumps the communicator epoch so stale pre-failure
//! traffic can never match a post-shrink collective. Every retry, timeout,
//! kill, detection, and shrink is recorded as a [`TransportEvent`]
//! (drained with [`Comm::take_events`]) for post-mortem ledgers.
//!
//! ## Example
//!
//! ```
//! use minimpi::World;
//!
//! let results = World::run(4, |comm| {
//!     let mine = vec![comm.rank() as f64; 8];
//!     let mut buf = mine.clone();
//!     comm.allreduce_sum(&mut buf);
//!     buf[0] // 0+1+2+3 = 6
//! });
//! assert!(results.iter().all(|&r| r == 6.0));
//! ```
//!
//! Fault-injected example — a lossy link that the transport recovers from:
//!
//! ```
//! use minimpi::{FaultPlan, World};
//!
//! let plan = FaultPlan::new(1).drop_messages(0.3);
//! let sums = World::run_with_faults(2, plan, |comm| {
//!     comm.set_ack_timeout(std::time::Duration::from_millis(5));
//!     let mut v = vec![comm.rank() as f64 + 1.0];
//!     comm.try_allreduce_sum_tree(&mut v, 0).unwrap();
//!     v[0]
//! });
//! assert!(sums.iter().all(|&s| s == 3.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
mod fault;

pub use fault::{checksum, load_scaled_deadline, FaultPlan};

use fault::Fault;
use std::collections::{HashSet, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier, Mutex};
use std::time::{Duration, Instant};

/// Process-global monotone counter that orders fault events across ranks
/// (and across crates: `pic_core::faultlog` stamps its ledger entries from
/// the same counter, so a merged ledger sorts into true causal order —
/// a kill is always sequenced before its detection).
static EVENT_SEQ: AtomicU64 = AtomicU64::new(0);

/// Draw the next value of the process-global fault-event sequence counter.
pub fn next_event_seq() -> u64 {
    EVENT_SEQ.fetch_add(1, Ordering::SeqCst)
}

/// What a [`TransportEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransportEventKind {
    /// A reliable send retransmitted an unacknowledged frame.
    Retry,
    /// A receive deadline elapsed.
    Timeout,
    /// This rank was killed by the fault plan's crash schedule.
    Kill,
    /// A peer rank was detected as failed (first observation only).
    Detect,
    /// The communicator group was shrunk to the surviving ranks.
    Shrink,
    /// A spare rank was admitted into the communicator group (recorded by
    /// both the admitting members and the joiner itself).
    Join,
}

/// One entry of the transport-level fault ledger, recorded by [`Comm`] as
/// faults are injected, detected, and recovered from. Drained with
/// [`Comm::take_events`]; `seq` comes from [`next_event_seq`] so entries
/// from different ranks merge into a single causally ordered ledger.
#[derive(Debug, Clone)]
pub struct TransportEvent {
    /// Global sequence number (monotone across all ranks in the process).
    pub seq: u64,
    /// Event kind.
    pub kind: TransportEventKind,
    /// The recording rank.
    pub rank: usize,
    /// The peer rank involved, if any (retry destination, detected rank…).
    pub peer: Option<usize>,
    /// The tag of the affected exchange (0 when not applicable).
    pub tag: u64,
    /// The recording rank's operation counter when the event fired.
    pub op: u64,
    /// Human-readable context.
    pub detail: String,
}

/// A communication failure surfaced by the fallible (`try_*`) APIs.
///
/// These arise only under fault injection or when a peer rank exits early;
/// the fault-free in-process transport cannot fail.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// No matching message arrived within the receive deadline
    /// ([`Comm::set_recv_deadline`]).
    Timeout {
        /// The waiting rank.
        rank: usize,
        /// The rank the message was expected from.
        src: usize,
        /// The expected tag.
        tag: u64,
    },
    /// Every transmission attempt of a frame was lost or corrupted and the
    /// retry budget ([`Comm::set_max_retries`]) is exhausted.
    RetriesExhausted {
        /// The sending rank.
        rank: usize,
        /// The destination rank.
        dst: usize,
        /// The frame's tag.
        tag: u64,
        /// Attempts made before giving up.
        attempts: usize,
    },
    /// A payload failed checksum validation after it was already accepted —
    /// data corrupted between the reduction buffer and this rank's copy.
    Corrupted {
        /// The detecting rank.
        rank: usize,
        /// The tag of the affected exchange (0 for the flat allreduce).
        tag: u64,
    },
    /// A peer's inbox was torn down (the rank returned or panicked).
    Disconnected {
        /// The rank that observed the disconnect.
        rank: usize,
    },
    /// A rank of the communicator failed (crash fault, or heartbeat staler
    /// than [`Comm::set_heartbeat_timeout`]). `failed == rank` means the
    /// reporting rank itself was killed by the fault plan. Survivors
    /// typically respond by calling [`Comm::shrink`].
    RankFailed {
        /// The observing rank.
        rank: usize,
        /// The rank detected as failed.
        failed: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::Timeout { rank, src, tag } => {
                write!(
                    f,
                    "rank {rank}: timed out waiting for (src {src}, tag {tag})"
                )
            }
            CommError::RetriesExhausted {
                rank,
                dst,
                tag,
                attempts,
            } => write!(
                f,
                "rank {rank}: gave up sending (dst {dst}, tag {tag}) after {attempts} attempts"
            ),
            CommError::Corrupted { rank, tag } => {
                write!(f, "rank {rank}: checksum mismatch on tag {tag}")
            }
            CommError::Disconnected { rank } => {
                write!(f, "rank {rank}: peer inbox disconnected")
            }
            CommError::RankFailed { rank, failed } if rank == failed => {
                write!(f, "rank {rank}: killed by crash fault")
            }
            CommError::RankFailed { rank, failed } => {
                write!(f, "rank {rank}: rank {failed} detected as failed")
            }
        }
    }
}

impl std::error::Error for CommError {}

/// A wire frame: either a data message or an acknowledgement.
///
/// Control frames ([`Frame::Ack`]) are never fault-injected — keeping the
/// reverse path reliable keeps the protocol a simple positive-ack scheme
/// (a lost ack would only cause a duplicate retransmission, which the
/// receiver's dedup absorbs anyway).
#[derive(Debug, Clone)]
enum Frame {
    Data {
        src: usize,
        tag: u64,
        /// Per-(src → dst) monotone sequence number; identifies the frame
        /// across retransmissions and drives duplicate suppression.
        seq: u64,
        /// Whether the sender is waiting for an [`Frame::Ack`].
        needs_ack: bool,
        /// FNV-1a checksum of the *original* payload. A corrupted-in-flight
        /// frame carries the clean checksum, so the receiver detects it.
        checksum: u64,
        data: Vec<f64>,
    },
    Ack {
        /// The acknowledging rank.
        src: usize,
        seq: u64,
    },
}

/// The admission board of an elastic world: spares announce themselves as
/// candidates, the group leader posts tickets once the members vote them
/// in, and the members close the board when the run ends so unused spares
/// stop waiting. Purely advisory shared state — the binding agreement is
/// the epoch-tagged allreduce inside [`Comm::try_admit`].
#[derive(Default)]
struct JoinBoard {
    /// World ranks of spares currently waiting for admission.
    candidates: Vec<usize>,
    /// Admission tickets posted by the group leader:
    /// `(candidate, new group, new epoch)`.
    tickets: Vec<(usize, Vec<usize>, u64)>,
    /// No further admissions — posted when the members finish their run.
    closed: bool,
}

/// Shared state for one world.
struct Shared {
    nranks: usize,
    barrier: Barrier,
    /// Reduction scratch, guarded; sized lazily to the first allreduce.
    acc: Mutex<Vec<f64>>,
    /// Per-rank inbox sender handles (indexed by destination).
    inboxes: Vec<Sender<Frame>>,
    /// Total communication time across ranks, in nanoseconds.
    comm_nanos: AtomicU64,
    /// Failure detector: `dead[r]` is set by rank `r` itself when a crash
    /// fault kills it, giving survivors an immediate, consistent signal.
    dead: Vec<AtomicBool>,
    /// Per-rank heartbeat timestamps (nanoseconds since `start`), refreshed
    /// at every communication operation and while polling in fault-aware
    /// receives. A rank whose heartbeat goes stale beyond the configured
    /// timeout is treated as failed even if it never set its dead flag.
    heartbeats: Vec<AtomicU64>,
    /// World creation time — the heartbeat clock's origin.
    start: Instant,
    /// Spare-admission board for elastic worlds ([`World::run_elastic`]).
    join: Mutex<JoinBoard>,
}

/// Bounded exponential backoff between retransmissions: 1, 2, 4, 8, 16 ms,
/// capped at 20 ms.
fn backoff(attempt: usize) -> Duration {
    Duration::from_millis((1u64 << attempt.min(5)).min(20))
}

/// The world: spawns ranks and collects their results.
pub struct World;

impl World {
    /// Run `f` on `nranks` concurrent ranks and return their results in rank
    /// order. Panics in any rank propagate.
    ///
    /// # Panics
    /// Panics if `nranks == 0`.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run_inner(nranks, nranks, None, f).0
    }

    /// Like [`World::run`], additionally returning the mean per-rank
    /// communication time in seconds.
    pub fn run_timed<T, F>(nranks: usize, f: F) -> (Vec<T>, f64)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run_inner(nranks, nranks, None, f)
    }

    /// Run `f` on `nranks` ranks with `plan` injecting message faults into
    /// every data frame. Point-to-point traffic switches to the reliable
    /// (ack + retry) transport; ranks should use the `try_*` APIs and
    /// handle [`CommError`] (the panicking wrappers abort the rank on
    /// unrecoverable faults).
    ///
    /// # Panics
    /// Panics if `nranks == 0`.
    pub fn run_with_faults<T, F>(nranks: usize, plan: FaultPlan, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run_inner(nranks, nranks, Some(Arc::new(plan)), f).0
    }

    /// Run an *elastic* world: `active` member ranks plus `spares` extra
    /// ranks that start outside the communicator group. Spares call
    /// [`Comm::try_join`] to announce themselves and wait for admission;
    /// members admit them with the [`Comm::try_admit`] collective
    /// (typically after a [`Comm::shrink`] removed a dead rank) and should
    /// call [`Comm::close_joins`] when they finish so unclaimed spares stop
    /// waiting. All `active + spares` closures run concurrently and their
    /// results return in world-rank order. An elastic world always uses the
    /// message-based fault-aware collectives — the fixed-count shared
    /// barrier cannot describe a group that grows and shrinks.
    ///
    /// # Panics
    /// Panics if `active == 0`.
    pub fn run_elastic<T, F>(active: usize, spares: usize, plan: Option<FaultPlan>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        Self::run_inner(active + spares, active, plan.map(Arc::new), f).0
    }

    fn run_inner<T, F>(
        nranks: usize,
        active: usize,
        faults: Option<Arc<FaultPlan>>,
        f: F,
    ) -> (Vec<T>, f64)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        assert!(nranks > 0, "need at least one rank");
        assert!(active > 0 && active <= nranks, "need at least one member");
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = channel();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            nranks,
            barrier: Barrier::new(nranks),
            acc: Mutex::new(Vec::new()),
            inboxes: senders,
            comm_nanos: AtomicU64::new(0),
            dead: (0..nranks).map(|_| AtomicBool::new(false)).collect(),
            heartbeats: (0..nranks).map(|_| AtomicU64::new(0)).collect(),
            start: Instant::now(),
            join: Mutex::new(JoinBoard::default()),
        });

        let mut out: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let shared = Arc::clone(&shared);
                    let faults = faults.clone();
                    let f = &f;
                    s.spawn(move || {
                        let mut comm = Comm::new(rank, active, shared, rx, faults);
                        let r = f(&mut comm);
                        comm.shared
                            .comm_nanos
                            .fetch_add(comm.comm_time_ns, Ordering::Relaxed);
                        r
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                // Propagating a child panic: reachable only when the user
                // closure itself panics.
                *slot = Some(h.join().expect("rank panicked"));
            }
        });
        let mean_comm = shared.comm_nanos.load(Ordering::Relaxed) as f64 / 1e9 / nranks as f64;
        // Every slot was filled in the join loop above.
        let results = out.into_iter().map(|o| o.expect("slot filled")).collect();
        (results, mean_comm)
    }
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    inbox: Receiver<Frame>,
    /// Validated messages received but not yet claimed (selective receive),
    /// as `(src, tag, payload)` in arrival order.
    stash: VecDeque<(usize, u64, Vec<f64>)>,
    /// `(src, seq)` pairs already delivered — suppresses retransmitted
    /// duplicates on the reliable path.
    delivered: HashSet<(usize, u64)>,
    /// Acks that arrived while this rank was not waiting for them
    /// (e.g. a late ack after a sender timeout), as `(peer, seq)`.
    acked: HashSet<(usize, u64)>,
    /// Next sequence number per destination rank.
    next_seq: Vec<u64>,
    comm_time_ns: u64,
    faults: Option<Arc<FaultPlan>>,
    ack_timeout: Duration,
    recv_deadline: Duration,
    max_retries: usize,
    /// World ranks of the current (possibly shrunk or grown) communicator
    /// group, sorted ascending. Starts as `0..active`.
    group: Vec<usize>,
    /// Whether this rank belongs to `group`. Always true in non-elastic
    /// worlds; spares of an elastic world start false and flip true when
    /// [`try_join`](Self::try_join) hands them an admission ticket.
    member: bool,
    /// Whether this world was started by [`World::run_elastic`] — forces
    /// the message-based collectives even when every spare gets admitted
    /// and the group momentarily equals the full world.
    elastic: bool,
    /// Communicator epoch, bumped by [`shrink`](Self::shrink) and
    /// [`try_admit`](Self::try_admit), and mixed into the high bits of
    /// collective tags so stale pre-recovery traffic never matches a
    /// post-recovery collective.
    epoch: u64,
    /// Failed-admission attempts within the current epoch — sequences the
    /// join-agreement tags exactly like `shrink`'s attempt counter. Reset
    /// on every epoch bump so a fresh joiner agrees with the incumbents.
    join_seq: u64,
    /// Count of public communication operations — the clock crash faults
    /// ([`FaultPlan::kill_rank`]) key on.
    op_count: u64,
    /// Set when this rank's scheduled crash fault has fired.
    dead_self: bool,
    /// Stale-heartbeat threshold; `None` disables the heartbeat half of
    /// the failure detector (dead flags still work).
    heartbeat_timeout: Option<Duration>,
    /// Poll/backoff slice for fault-aware receives: how often a blocked
    /// receive re-checks the failure detector.
    detect_poll: Duration,
    /// Peers already reported as failed (one Detect event per peer).
    detected: HashSet<usize>,
    /// Transport-level fault ledger, drained by [`take_events`](Self::take_events).
    events: Vec<TransportEvent>,
    /// Sequence counter for internally tagged collectives (`barrier`,
    /// the flat-allreduce fallback) — advances identically on every rank.
    ctl_seq: u64,
    /// Payload `f64` values successfully sent over the message path (the
    /// per-rank communication *volume*, as distinct from the *time* in
    /// `comm_time_ns`). Retransmissions of the same frame count once.
    sent_f64s: u64,
    /// Payload `f64` values claimed by receives on this rank.
    recvd_f64s: u64,
}

/// Bits reserved above user collective tags for the communicator epoch.
/// User tags must stay below `1 << EPOCH_SHIFT`.
const EPOCH_SHIFT: u32 = 48;
/// Tag namespace for internally sequenced collectives (barrier, flat
/// allreduce fallback). Above any user tag in the tree, below epoch bits.
const CTL_TAG_BASE: u64 = 1 << 46;
/// Tag namespace for the shrink agreement protocol.
const SHRINK_TAG_BASE: u64 = 1 << 45;
/// Tag namespace for the join (spare admission) agreement protocol.
const JOIN_TAG_BASE: u64 = 1 << 44;
/// Tag stride between internally sequenced collectives — larger than any
/// offset a single collective adds to its base tag.
const CTL_TAG_STRIDE: u64 = 4096;

/// Bit position of the per-job tag block inside application tag
/// namespaces. A multi-tenant runtime driving several decomposed
/// simulations over one world folds `job_tag_block(job)` into every tag,
/// so concurrent jobs never alias each other's step traffic. Bits 0–23
/// remain for step-indexed tags (2²⁰ steps at 16 tags/step), bits 24–35
/// carry the job, and the decomposition driver's epoch fold (bit 36+) and
/// the control namespaces (bit 44+) sit safely above.
pub const JOB_TAG_SHIFT: u32 = 24;
/// Exclusive upper bound on job ids representable in a tag block.
pub const MAX_TAG_JOBS: u64 = 1 << 12;

/// The tag-namespace block reserved for `job` (see [`JOB_TAG_SHIFT`]).
///
/// # Panics
/// If `job >= MAX_TAG_JOBS` — the runtime must recycle job ids (modulo
/// `MAX_TAG_JOBS` is safe once a job's traffic has drained).
pub fn job_tag_block(job: u64) -> u64 {
    assert!(
        job < MAX_TAG_JOBS,
        "job id {job} exceeds the {MAX_TAG_JOBS}-entry tag-block space"
    );
    job << JOB_TAG_SHIFT
}

impl Comm {
    fn new(
        rank: usize,
        active: usize,
        shared: Arc<Shared>,
        inbox: Receiver<Frame>,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let nranks = shared.nranks;
        Comm {
            rank,
            shared,
            inbox,
            stash: VecDeque::new(),
            delivered: HashSet::new(),
            acked: HashSet::new(),
            next_seq: vec![0; nranks],
            comm_time_ns: 0,
            faults,
            ack_timeout: Duration::from_millis(25),
            recv_deadline: Duration::from_secs(10),
            max_retries: 10,
            group: (0..active).collect(),
            member: rank < active,
            elastic: active != nranks,
            epoch: 0,
            join_seq: 0,
            op_count: 0,
            dead_self: false,
            heartbeat_timeout: None,
            detect_poll: Duration::from_millis(2),
            detected: HashSet::new(),
            events: Vec::new(),
            ctl_seq: 0,
            sent_f64s: 0,
            recvd_f64s: 0,
        }
    }

    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.shared.nranks
    }

    /// Seconds this rank has spent inside communication calls.
    pub fn comm_time(&self) -> f64 {
        self.comm_time_ns as f64 / 1e9
    }

    /// Bytes of payload this rank has sent over the message path (8 bytes
    /// per `f64`; each logical frame counts once, however many times the
    /// reliable transport retransmitted it). The flat shared-memory
    /// allreduce moves no messages and therefore counts nothing — benches
    /// comparing communication volume should use the message-based
    /// collectives, as real MPI would.
    pub fn bytes_sent(&self) -> u64 {
        self.sent_f64s * 8
    }

    /// Bytes of payload claimed by receives on this rank.
    pub fn bytes_received(&self) -> u64 {
        self.recvd_f64s * 8
    }

    /// Zero the [`bytes_sent`](Self::bytes_sent) /
    /// [`bytes_received`](Self::bytes_received) counters (e.g. after a
    /// warmup phase).
    pub fn reset_data_volume(&mut self) {
        self.sent_f64s = 0;
        self.recvd_f64s = 0;
    }

    /// How long a reliable send waits for an ack before retransmitting.
    pub fn set_ack_timeout(&mut self, d: Duration) {
        self.ack_timeout = d;
    }

    /// Deadline for [`try_recv`](Self::try_recv) before it reports
    /// [`CommError::Timeout`] — the bound that turns a would-be deadlock
    /// into a clean error.
    pub fn set_recv_deadline(&mut self, d: Duration) {
        self.recv_deadline = d;
    }

    /// Retransmission budget per frame on the reliable path.
    pub fn set_max_retries(&mut self, n: usize) {
        self.max_retries = n;
    }

    /// Arm the heartbeat failure detector: a peer whose last heartbeat is
    /// older than `d` is treated as failed. Heartbeats are refreshed at
    /// every communication operation and while polling inside fault-aware
    /// receives, so choose `d` larger than the longest compute phase
    /// between communication calls.
    pub fn set_heartbeat_timeout(&mut self, d: Duration) {
        self.heartbeat_timeout = Some(d);
        // Poll at a fraction of the timeout: a blocked receive that wakes
        // every 2 ms to re-check a 2 s detector burns context switches
        // (measurable when ranks share cores) without detecting anything
        // sooner. An explicit `set_detect_poll` afterwards still wins.
        self.detect_poll = (d / 20).clamp(Duration::from_millis(2), Duration::from_millis(250));
    }

    /// How often a blocked fault-aware receive re-checks the failure
    /// detector (the detector's polling backoff).
    pub fn set_detect_poll(&mut self, d: Duration) {
        self.detect_poll = d.max(Duration::from_micros(100));
    }

    /// World ranks of the current communicator group, sorted ascending.
    /// Identical to `0..size()` until a [`shrink`](Self::shrink).
    pub fn group(&self) -> &[usize] {
        &self.group
    }

    /// Members of the current group (`== size()` until a shrink).
    pub fn group_size(&self) -> usize {
        self.group.len()
    }

    /// Current communicator epoch (bumped by each [`shrink`](Self::shrink)
    /// and each successful [`try_admit`](Self::try_admit)).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether this rank belongs to the current communicator group. Always
    /// true in non-elastic worlds; a spare of [`World::run_elastic`] is a
    /// non-member until [`try_join`](Self::try_join) admits it. Non-members
    /// must not call group collectives.
    pub fn is_member(&self) -> bool {
        self.member
    }

    /// Count of public communication operations performed by this rank —
    /// the clock [`FaultPlan::kill_rank`] schedules crash faults against.
    pub fn op_count(&self) -> u64 {
        self.op_count
    }

    /// Drain the transport-level fault ledger: every retry, timeout, kill,
    /// failure detection, and shrink recorded since the last call.
    pub fn take_events(&mut self) -> Vec<TransportEvent> {
        std::mem::take(&mut self.events)
    }

    fn push_event(
        &mut self,
        kind: TransportEventKind,
        peer: Option<usize>,
        tag: u64,
        detail: String,
    ) {
        self.events.push(TransportEvent {
            seq: next_event_seq(),
            kind,
            rank: self.rank,
            peer,
            tag,
            op: self.op_count,
            detail,
        });
    }

    /// Refresh this rank's heartbeat timestamp.
    fn beat(&self) {
        let ns = self.shared.start.elapsed().as_nanos() as u64;
        self.shared.heartbeats[self.rank].store(ns, Ordering::Relaxed);
    }

    /// Whether the failure-detector checks are active: any fault plan, an
    /// armed heartbeat detector, or a shrunk group means ranks can die.
    fn watching(&self) -> bool {
        self.faults.is_some()
            || self.heartbeat_timeout.is_some()
            || self.elastic
            || self.group.len() != self.shared.nranks
    }

    /// Is world rank `p` currently considered failed?
    fn peer_failed(&self, p: usize) -> bool {
        if self.shared.dead[p].load(Ordering::SeqCst) {
            return true;
        }
        if let Some(timeout) = self.heartbeat_timeout {
            let now = self.shared.start.elapsed();
            let hb = Duration::from_nanos(self.shared.heartbeats[p].load(Ordering::Relaxed));
            if now > hb + timeout {
                return true;
            }
        }
        false
    }

    /// Scan the current group for a member the failure detector considers
    /// dead. A point-to-point receive from a *live* peer surfaces a third
    /// rank's death only as [`CommError::Timeout`] (the detector watches
    /// the message's source, not the whole group); callers holding such a
    /// timeout can consult this to distinguish a genuine stall from a peer
    /// failure that warrants a [`Comm::shrink`].
    pub fn failed_group_member(&self) -> Option<usize> {
        self.group
            .iter()
            .copied()
            .find(|&m| m != self.rank && self.peer_failed(m))
    }

    /// Build the error for an observed failure of `failed`, recording a
    /// Detect event the first time each peer is seen dead.
    fn rank_failed(&mut self, failed: usize) -> CommError {
        if failed != self.rank && self.detected.insert(failed) {
            self.push_event(
                TransportEventKind::Detect,
                Some(failed),
                0,
                format!("rank {failed} detected as failed"),
            );
        }
        CommError::RankFailed {
            rank: self.rank,
            failed,
        }
    }

    /// Account one public communication operation: fire a scheduled crash
    /// fault when its op count is reached, refresh the heartbeat, and
    /// refuse to operate once this rank is dead.
    fn note_op(&mut self) -> Result<(), CommError> {
        if self.dead_self {
            return Err(CommError::RankFailed {
                rank: self.rank,
                failed: self.rank,
            });
        }
        self.op_count += 1;
        if let Some(plan) = &self.faults {
            if let Some(at) = plan.kill_at(self.rank) {
                if self.op_count >= at {
                    self.push_event(
                        TransportEventKind::Kill,
                        None,
                        0,
                        format!("crash fault at op {}", self.op_count),
                    );
                    self.dead_self = true;
                    // The flag store is sequenced after the Kill event's
                    // seq draw, so a merged ledger always orders the kill
                    // before any survivor's detection of it.
                    self.shared.dead[self.rank].store(true, Ordering::SeqCst);
                    return Err(CommError::RankFailed {
                        rank: self.rank,
                        failed: self.rank,
                    });
                }
            }
        }
        self.beat();
        Ok(())
    }

    /// Epoch-qualify a collective tag.
    fn etag(&self, tag: u64) -> u64 {
        debug_assert!(
            tag < 1 << EPOCH_SHIFT,
            "user tag {tag} overflows epoch bits"
        );
        (self.epoch << EPOCH_SHIFT) | tag
    }

    /// Next tag for an internally sequenced collective.
    fn next_ctl_tag(&mut self) -> u64 {
        let tag = self.etag(CTL_TAG_BASE + CTL_TAG_STRIDE * self.ctl_seq);
        self.ctl_seq += 1;
        tag
    }

    /// Synchronize the current group. Fault-free full-group worlds use the
    /// shared-memory barrier; under a fault plan, an armed heartbeat
    /// detector, or a shrunk group the message-based
    /// [`try_barrier`](Self::try_barrier) runs instead, so a dead rank
    /// yields a panic with a clean error rather than a hang.
    ///
    /// # Panics
    /// Panics on a detected rank failure (only possible with the failure
    /// detector active); use [`try_barrier`](Self::try_barrier) to handle.
    pub fn barrier(&mut self) {
        if self.watching() {
            self.try_barrier()
                .unwrap_or_else(|e| panic!("minimpi barrier: {e}"));
            return;
        }
        let t = Instant::now();
        self.shared.barrier.wait();
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
    }

    /// Fault-aware barrier over the current group (gather-to-root then
    /// release, all point-to-point): returns [`CommError::RankFailed`]
    /// instead of hanging when a group member dies.
    pub fn try_barrier(&mut self) -> Result<(), CommError> {
        self.note_op()?;
        let tag = self.next_ctl_tag();
        let group = self.group.clone();
        let t = Instant::now();
        let res = self.barrier_over(&group, tag);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    fn barrier_over(&mut self, group: &[usize], tag: u64) -> Result<(), CommError> {
        if group.len() <= 1 {
            return Ok(());
        }
        let r = self.group_index(group);
        if r == 0 {
            for &m in &group[1..] {
                self.recv_watch(m, tag, Some(group))?;
            }
            for &m in &group[1..] {
                self.send_ft(m, tag + 1, &[], Some(group))?;
            }
        } else {
            self.send_ft(group[0], tag, &[], Some(group))?;
            self.recv_watch(group[0], tag + 1, Some(group))?;
        }
        Ok(())
    }

    /// This rank's index within `group`.
    ///
    /// # Panics
    /// Panics if this rank is not a member — calling a collective after
    /// being excluded by a shrink is a protocol violation.
    fn group_index(&self, group: &[usize]) -> usize {
        group
            .iter()
            .position(|&g| g == self.rank)
            .expect("rank not in communicator group")
    }

    // ---------------------------------------------------------------- data
    // path: validate / ack / dedup / stash.

    fn accept_data(
        &mut self,
        src: usize,
        tag: u64,
        seq: u64,
        needs_ack: bool,
        sum: u64,
        data: Vec<f64>,
    ) {
        if fault::checksum(&data) != sum {
            // Corrupted in flight: discard without acknowledging. The
            // sender retransmits and a clean copy arrives on a later
            // attempt (or its retry budget runs out and it reports the
            // failure) — corruption never reaches the application.
            return;
        }
        if needs_ack {
            // Ack duplicates too: the earlier ack may have raced the
            // sender's timeout. Delivery failure here means the sender is
            // gone, which its own side already observes.
            let _ = self.shared.inboxes[src].send(Frame::Ack {
                src: self.rank,
                seq,
            });
            if !self.delivered.insert((src, seq)) {
                return; // retransmitted duplicate, already delivered
            }
        }
        self.stash.push_back((src, tag, data));
    }

    fn deliver(&self, dst: usize, frame: Frame) -> Result<(), CommError> {
        self.shared.inboxes[dst]
            .send(frame)
            .map_err(|_| CommError::Disconnected { rank: self.rank })
    }

    /// Wait for an ack of `seq` from `peer`, servicing any data frames that
    /// arrive meanwhile (two ranks reliably sending to each other would
    /// otherwise deadlock). `Ok(false)` means the ack timeout elapsed.
    fn await_ack(&mut self, peer: usize, seq: u64) -> Result<bool, CommError> {
        if self.acked.remove(&(peer, seq)) {
            return Ok(true);
        }
        let deadline = Instant::now() + self.ack_timeout;
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Ok(false);
            }
            match self.inbox.recv_timeout(deadline - now) {
                Ok(Frame::Ack { src, seq: s }) => {
                    if src == peer && s == seq {
                        return Ok(true);
                    }
                    self.acked.insert((src, s));
                }
                Ok(Frame::Data {
                    src,
                    tag,
                    seq,
                    needs_ack,
                    checksum,
                    data,
                }) => self.accept_data(src, tag, seq, needs_ack, checksum, data),
                Err(RecvTimeoutError::Timeout) => return Ok(false),
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { rank: self.rank })
                }
            }
        }
    }

    // ---------------------------------------------------------- point-to-point

    /// Send a copy of `data` to `dst` with `tag`, reporting transport
    /// failures instead of panicking.
    ///
    /// Without a fault plan this is a single infallible channel push. With
    /// one, the frame is retransmitted with bounded exponential backoff
    /// until acknowledged; a frame the plan starves past the retry budget
    /// returns [`CommError::RetriesExhausted`].
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    pub fn try_send(&mut self, dst: usize, tag: u64, data: &[f64]) -> Result<(), CommError> {
        self.note_op()?;
        let t = Instant::now();
        let res = self.send_ft(dst, tag, data, None);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    /// `send_impl` with failure mapping: a transport failure towards a
    /// peer the detector considers dead surfaces as
    /// [`CommError::RankFailed`] rather than a generic transport error.
    fn send_ft(
        &mut self,
        dst: usize,
        tag: u64,
        data: &[f64],
        watch: Option<&[usize]>,
    ) -> Result<(), CommError> {
        let res = self.send_impl(dst, tag, data);
        if res.is_ok() {
            self.sent_f64s += data.len() as u64;
        }
        match res {
            Err(e @ (CommError::Disconnected { .. } | CommError::RetriesExhausted { .. }))
                if self.watching() =>
            {
                // A peer that stops answering may itself be the casualty,
                // or may have aborted a collective after detecting some
                // *other* group member's death — attribute the failure to
                // whichever watched rank the detector actually flags.
                let failed = if self.peer_failed(dst) {
                    Some(dst)
                } else {
                    watch.and_then(|g| {
                        g.iter()
                            .copied()
                            .find(|&p| p != self.rank && self.peer_failed(p))
                    })
                };
                match failed {
                    Some(p) => Err(self.rank_failed(p)),
                    None => Err(e),
                }
            }
            r => r,
        }
    }

    fn send_impl(&mut self, dst: usize, tag: u64, data: &[f64]) -> Result<(), CommError> {
        if self.watching() && self.peer_failed(dst) {
            return Err(self.rank_failed(dst));
        }
        let seq = self.next_seq[dst];
        self.next_seq[dst] += 1;
        let sum = fault::checksum(data);

        let Some(plan) = self.faults.clone() else {
            // Fast path: in-process channels cannot drop or corrupt, so no
            // ack round-trip is needed.
            return self.deliver(
                dst,
                Frame::Data {
                    src: self.rank,
                    tag,
                    seq,
                    needs_ack: false,
                    checksum: sum,
                    data: data.to_vec(),
                },
            );
        };

        for attempt in 0..=self.max_retries {
            if attempt > 0 && self.peer_failed(dst) {
                // The peer died while we were retrying: stop burning the
                // retry budget and report the failure directly.
                return Err(self.rank_failed(dst));
            }
            match plan.decide(self.rank, dst, tag, seq, attempt as u64) {
                Fault::Drop => {} // this attempt is lost in flight
                outcome => {
                    let mut payload = data.to_vec();
                    if outcome == Fault::Corrupt {
                        fault::corrupt_payload(attempt as u64, self.rank, seq, &mut payload);
                    }
                    if let Fault::Delay(d) = outcome {
                        std::thread::sleep(d);
                    }
                    self.deliver(
                        dst,
                        Frame::Data {
                            src: self.rank,
                            tag,
                            seq,
                            needs_ack: true,
                            checksum: sum,
                            data: payload,
                        },
                    )?;
                }
            }
            if self.await_ack(dst, seq)? {
                return Ok(());
            }
            self.push_event(
                TransportEventKind::Retry,
                Some(dst),
                tag,
                format!("attempt {attempt} unacknowledged, retransmitting"),
            );
            std::thread::sleep(backoff(attempt));
        }
        Err(CommError::RetriesExhausted {
            rank: self.rank,
            dst,
            tag,
            attempts: self.max_retries + 1,
        })
    }

    /// Send a copy of `data` to `dst` with `tag`.
    ///
    /// # Panics
    /// Panics if `dst` is out of range, or on a transport failure — which
    /// only fault injection or an early-exiting peer can cause; use
    /// [`try_send`](Self::try_send) to handle those.
    pub fn send(&mut self, dst: usize, tag: u64, data: &[f64]) {
        self.try_send(dst, tag, data)
            .unwrap_or_else(|e| panic!("minimpi send to rank {dst}: {e}"));
    }

    /// Blocking selective receive from `src` with `tag`, bounded by the
    /// receive deadline ([`Self::set_recv_deadline`]) so a missing sender
    /// yields [`CommError::Timeout`] instead of a hang.
    pub fn try_recv(&mut self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        self.note_op()?;
        let t = Instant::now();
        let res = self.recv_watch(src, tag, None);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    /// Group-watched point-to-point receive: like [`try_recv`](Self::try_recv),
    /// but the failure of *any* current group member — not just `src` —
    /// surfaces as [`CommError::RankFailed`]. Use this for receives inside
    /// a step whose completion depends on the whole group making progress
    /// (halo exchanges, scatter legs): a third rank's death then interrupts
    /// every member within a detector poll instead of costing stragglers a
    /// full receive deadline, which keeps their entry into
    /// [`shrink`](Self::shrink) aligned.
    pub fn try_recv_group(&mut self, src: usize, tag: u64) -> Result<Vec<f64>, CommError> {
        self.note_op()?;
        let group = self.group.clone();
        let t = Instant::now();
        let res = self.recv_watch(src, tag, Some(&group));
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    /// Combined send-then-receive, the halo-exchange workhorse: push `data`
    /// to `dst` under `tag`, then block for the matching message from
    /// `src` with the same tag. Safe against head-of-line deadlock because
    /// sends complete without waiting for the receiver to post (frames park
    /// in the receiver's stash), and under a fault plan the ack wait itself
    /// services incoming data frames.
    pub fn try_sendrecv(
        &mut self,
        dst: usize,
        data: &[f64],
        src: usize,
        tag: u64,
    ) -> Result<Vec<f64>, CommError> {
        self.note_op()?;
        let t = Instant::now();
        let res = self
            .send_ft(dst, tag, data, None)
            .and_then(|()| self.recv_watch(src, tag, None));
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    /// Pull every frame already sitting in the inbox into the stash/ack
    /// sets without blocking — run before declaring a peer failed, so a
    /// message it sent just before dying is still delivered.
    fn drain_inbox(&mut self) {
        while let Ok(frame) = self.inbox.try_recv() {
            match frame {
                Frame::Data {
                    src,
                    tag,
                    seq,
                    needs_ack,
                    checksum,
                    data,
                } => self.accept_data(src, tag, seq, needs_ack, checksum, data),
                Frame::Ack { src, seq } => {
                    self.acked.insert((src, seq));
                }
            }
        }
    }

    fn stash_take(&mut self, src: usize, tag: u64) -> Option<Vec<f64>> {
        let pos = self
            .stash
            .iter()
            .position(|(s, g, _)| *s == src && *g == tag)?;
        // The position was just found, so the removal succeeds.
        let data = self.stash.remove(pos).expect("stash entry present").2;
        self.recvd_f64s += data.len() as u64;
        Some(data)
    }

    /// The blocking-receive core. With the failure detector active it polls
    /// in `detect_poll` slices, refreshing this rank's heartbeat and
    /// checking `src` — plus every member of `watch`, for collectives,
    /// whose completion depends on the whole group — against the detector,
    /// so a dead rank surfaces as [`CommError::RankFailed`] long before the
    /// receive deadline. Fault-free full-group runs block on the channel
    /// directly, paying nothing.
    fn recv_watch(
        &mut self,
        src: usize,
        tag: u64,
        watch: Option<&[usize]>,
    ) -> Result<Vec<f64>, CommError> {
        let deadline = Instant::now() + self.recv_deadline;
        let watching = self.watching();
        loop {
            if let Some(data) = self.stash_take(src, tag) {
                return Ok(data);
            }
            if watching {
                self.beat();
                let failed = if self.peer_failed(src) {
                    Some(src)
                } else {
                    watch.and_then(|g| {
                        g.iter()
                            .copied()
                            .find(|&p| p != self.rank && self.peer_failed(p))
                    })
                };
                if let Some(p) = failed {
                    // Deliver anything already in flight before giving up:
                    // the dead rank may have sent this message first.
                    self.drain_inbox();
                    if let Some(data) = self.stash_take(src, tag) {
                        return Ok(data);
                    }
                    return Err(self.rank_failed(p));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                self.push_event(
                    TransportEventKind::Timeout,
                    Some(src),
                    tag,
                    "receive deadline elapsed".into(),
                );
                return Err(CommError::Timeout {
                    rank: self.rank,
                    src,
                    tag,
                });
            }
            let wait = if watching {
                self.detect_poll.min(deadline - now)
            } else {
                deadline - now
            };
            match self.inbox.recv_timeout(wait) {
                Ok(Frame::Data {
                    src,
                    tag,
                    seq,
                    needs_ack,
                    checksum,
                    data,
                }) => self.accept_data(src, tag, seq, needs_ack, checksum, data),
                Ok(Frame::Ack { src, seq }) => {
                    // A late ack (its sender already timed out and moved
                    // on, or will look for it on its next await).
                    self.acked.insert((src, seq));
                }
                Err(RecvTimeoutError::Timeout) => {} // loop re-checks
                Err(RecvTimeoutError::Disconnected) => {
                    return Err(CommError::Disconnected { rank: self.rank })
                }
            }
        }
    }

    /// Blocking selective receive from `src` with `tag`, bounded by the
    /// receive deadline ([`Self::set_recv_deadline`]) exactly like
    /// [`try_recv`](Self::try_recv) — no public receive can block forever.
    ///
    /// # Panics
    /// Panics if the receive deadline elapses, a watched rank fails, or the
    /// world is torn down; use [`try_recv`](Self::try_recv) to handle those.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        self.try_recv(src, tag)
            .unwrap_or_else(|e| panic!("minimpi recv from rank {src}: {e}"))
    }

    /// Like [`try_recv`](Self::try_recv) but into an existing buffer.
    ///
    /// # Panics
    /// Panics if the received length differs from `buf` — a collective
    /// contract violation, not a runtime fault.
    pub fn try_recv_into(
        &mut self,
        src: usize,
        tag: u64,
        buf: &mut [f64],
    ) -> Result<(), CommError> {
        let data = self.try_recv(src, tag)?;
        assert_eq!(data.len(), buf.len(), "recv_into length mismatch");
        buf.copy_from_slice(&data);
        Ok(())
    }

    /// Like [`recv`](Self::recv) but into an existing buffer. Bounded by
    /// the receive deadline ([`Self::set_recv_deadline`]) like every other
    /// blocking receive.
    ///
    /// # Panics
    /// Panics if lengths differ, the receive deadline elapses, or the world
    /// is torn down.
    pub fn recv_into(&mut self, src: usize, tag: u64, buf: &mut [f64]) {
        self.try_recv_into(src, tag, buf)
            .unwrap_or_else(|e| panic!("minimpi recv_into from rank {src}: {e}"));
    }

    // ------------------------------------------------------------ collectives

    /// Global sum-reduction of `buf` across all ranks; every rank ends with
    /// the total (the paper's `MPI_ALLREDUCE` on ρ). Flat shared-accumulator
    /// algorithm over shared memory — message faults do not apply, but each
    /// rank still verifies its copy of the result against a checksum taken
    /// under the accumulator lock.
    ///
    /// # Panics
    /// Panics if ranks pass buffers of different lengths.
    pub fn try_allreduce_sum(&mut self, buf: &mut [f64]) -> Result<(), CommError> {
        self.note_op()?;
        if self.watching() {
            // The shared-memory barrier would hang forever if a rank dies
            // mid-collective; with the failure detector active, route to
            // the message-based tree, which detects and reports instead.
            let tag = self.next_ctl_tag();
            let group = self.group.clone();
            let t = Instant::now();
            let res = self.allreduce_tree_over(&group, buf, tag);
            self.comm_time_ns += t.elapsed().as_nanos() as u64;
            return res;
        }
        let t = Instant::now();
        {
            let mut acc = self.shared.acc.lock().expect("rank panicked holding lock");
            if acc.len() != buf.len() {
                assert!(
                    acc.is_empty(),
                    "allreduce length mismatch: {} vs {}",
                    acc.len(),
                    buf.len()
                );
                acc.resize(buf.len(), 0.0);
            }
            for (a, &b) in acc.iter_mut().zip(buf.iter()) {
                *a += b;
            }
        }
        self.shared.barrier.wait();
        let expected;
        {
            let acc = self.shared.acc.lock().expect("rank panicked holding lock");
            expected = fault::checksum(&acc);
            buf.copy_from_slice(&acc);
        }
        self.shared.barrier.wait();
        if self.rank == 0 {
            self.shared
                .acc
                .lock()
                .expect("rank panicked holding lock")
                .clear();
        }
        self.shared.barrier.wait();
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        if fault::checksum(buf) != expected {
            return Err(CommError::Corrupted {
                rank: self.rank,
                tag: 0,
            });
        }
        Ok(())
    }

    /// Infallible wrapper around
    /// [`try_allreduce_sum`](Self::try_allreduce_sum).
    ///
    /// # Panics
    /// Panics if ranks pass buffers of different lengths, or on checksum
    /// failure.
    pub fn allreduce_sum(&mut self, buf: &mut [f64]) {
        self.try_allreduce_sum(buf)
            .unwrap_or_else(|e| panic!("minimpi allreduce_sum: {e}"));
    }

    /// Tree (recursive-doubling) allreduce built on point-to-point messages —
    /// the algorithm real MPI uses, with `⌈log₂ P⌉` rounds. Works for any
    /// rank count (non-powers of two fold the remainder onto the main tree)
    /// and runs over the current (possibly shrunk) group. Under fault
    /// injection, each hop recovers via the reliable transport or surfaces
    /// its [`CommError`]; a dead group member surfaces as
    /// [`CommError::RankFailed`] instead of a hang.
    pub fn try_allreduce_sum_tree(&mut self, buf: &mut [f64], tag: u64) -> Result<(), CommError> {
        self.note_op()?;
        let tag = self.etag(tag);
        let group = self.group.clone();
        let t = Instant::now();
        let res = self.allreduce_tree_over(&group, buf, tag);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    /// The tree allreduce over an explicit world-rank `group` (this rank
    /// must be a member); `tag` is already epoch-qualified. Also the
    /// agreement primitive of [`shrink`](Self::shrink), which runs it over
    /// tentative survivor groups.
    fn allreduce_tree_over(
        &mut self,
        group: &[usize],
        buf: &mut [f64],
        tag: u64,
    ) -> Result<(), CommError> {
        let p = group.len();
        if p <= 1 {
            return Ok(());
        }
        let r = self.group_index(group);
        let pow2 = p.next_power_of_two() >> usize::from(!p.is_power_of_two());
        // `pow2` = largest power of two ≤ p.
        let extra = p - pow2;

        // Fold the surplus ranks onto their partners below pow2.
        if r >= pow2 {
            self.send_ft(group[r - pow2], tag, buf, Some(group))?;
            let msg = self.recv_watch(group[r - pow2], tag + 1, Some(group))?;
            assert_eq!(msg.len(), buf.len(), "allreduce length mismatch");
            buf.copy_from_slice(&msg);
        } else {
            if r < extra {
                let msg = self.recv_watch(group[r + pow2], tag, Some(group))?;
                for (b, m) in buf.iter_mut().zip(&msg) {
                    *b += m;
                }
            }
            // Recursive doubling among the pow2 ranks.
            let mut mask = 1usize;
            while mask < pow2 {
                let partner = r ^ mask;
                self.send_ft(group[partner], tag + 2 + mask as u64, buf, Some(group))?;
                let msg = self.recv_watch(group[partner], tag + 2 + mask as u64, Some(group))?;
                for (b, m) in buf.iter_mut().zip(&msg) {
                    *b += m;
                }
                mask <<= 1;
            }
            if r < extra {
                self.send_ft(group[r + pow2], tag + 1, buf, Some(group))?;
            }
        }
        Ok(())
    }

    /// Infallible wrapper around
    /// [`try_allreduce_sum_tree`](Self::try_allreduce_sum_tree).
    ///
    /// # Panics
    /// Panics on transport failure (only possible under fault injection or
    /// an early-exiting peer).
    pub fn allreduce_sum_tree(&mut self, buf: &mut [f64], tag: u64) {
        self.try_allreduce_sum_tree(buf, tag)
            .unwrap_or_else(|e| panic!("minimpi allreduce_sum_tree: {e}"));
    }

    /// Rabenseifner allreduce (reduce-scatter + allgather) — the algorithm
    /// real MPI libraries pick for large payloads: each of the `⌈log₂P⌉`
    /// reduce-scatter rounds halves the exchanged data, so total traffic is
    /// `2·n·(P−1)/P` instead of the tree's `2·n·log₂P`. Requires a
    /// power-of-two rank count (callers fall back to
    /// [`allreduce_sum_tree`](Self::allreduce_sum_tree) otherwise).
    pub fn try_allreduce_sum_rabenseifner(
        &mut self,
        buf: &mut [f64],
        tag: u64,
    ) -> Result<(), CommError> {
        self.note_op()?;
        let tag = self.etag(tag);
        let group = self.group.clone();
        let p = group.len();
        if p == 1 {
            return Ok(());
        }
        if !p.is_power_of_two() || buf.len() < p {
            let t = Instant::now();
            let res = self.allreduce_tree_over(&group, buf, tag);
            self.comm_time_ns += t.elapsed().as_nanos() as u64;
            return res;
        }
        let t = Instant::now();
        let r = self.group_index(&group);
        let n = buf.len();
        // Block boundaries: block b = [starts[b], starts[b+1]).
        let starts: Vec<usize> = (0..=p).map(|b| b * n / p).collect();

        // Reduce-scatter by recursive halving: after round k, this rank
        // holds the partial sum of a 2^{k+1}-rank group on a 1/2^{k+1}
        // slice of the buffer.
        let mut gsize = p; // current group size
        let mut lo = 0usize; // current block range [lo, hi) owned
        let mut hi = p;
        let mut round = 0u64;
        while gsize > 1 {
            let half = gsize / 2;
            let partner = r ^ half;
            let mid = lo + (hi - lo) / 2;
            // Lower half of the group keeps [lo, mid), sends [mid, hi).
            let (keep_lo, keep_hi, send_lo, send_hi) = if (r & half) == 0 {
                (lo, mid, mid, hi)
            } else {
                (mid, hi, lo, mid)
            };
            let send_slice = buf[starts[send_lo]..starts[send_hi]].to_vec();
            self.send_ft(group[partner], tag + 2 * round, &send_slice, Some(&group))?;
            let recv = self.recv_watch(group[partner], tag + 2 * round, Some(&group))?;
            let dst = &mut buf[starts[keep_lo]..starts[keep_hi]];
            assert_eq!(recv.len(), dst.len());
            for (d, s) in dst.iter_mut().zip(&recv) {
                *d += s;
            }
            lo = keep_lo;
            hi = keep_hi;
            gsize = half;
            round += 1;
        }

        // Allgather by recursive doubling: mirror the halving.
        let mut gsize = 2usize;
        while gsize <= p {
            let half = gsize / 2;
            let partner = r ^ half;
            // This rank owns [lo, hi); the partner owns the sibling range.
            let width = hi - lo;
            let (plo, phi) = if (r & half) == 0 {
                (lo + width, hi + width)
            } else {
                (lo - width, hi - width)
            };
            let own = buf[starts[lo]..starts[hi]].to_vec();
            self.send_ft(group[partner], tag + 1000 + 2 * round, &own, Some(&group))?;
            let recv = self.recv_watch(group[partner], tag + 1000 + 2 * round, Some(&group))?;
            let dst = &mut buf[starts[plo]..starts[phi]];
            assert_eq!(recv.len(), dst.len());
            dst.copy_from_slice(&recv);
            lo = lo.min(plo);
            hi = hi.max(phi);
            gsize *= 2;
            round += 1;
        }
        debug_assert_eq!((lo, hi), (0, p));
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// Infallible wrapper around
    /// [`try_allreduce_sum_rabenseifner`](Self::try_allreduce_sum_rabenseifner).
    ///
    /// # Panics
    /// Panics on transport failure (only possible under fault injection or
    /// an early-exiting peer).
    pub fn allreduce_sum_rabenseifner(&mut self, buf: &mut [f64], tag: u64) {
        self.try_allreduce_sum_rabenseifner(buf, tag)
            .unwrap_or_else(|e| panic!("minimpi allreduce_sum_rabenseifner: {e}"));
    }

    /// Fault-aware gather over the current group: every member's `data`
    /// arrives at the group root (`group()[0]`), which gets `Some(vec)`
    /// indexed in group order; other members get `Ok(None)`. A dead group
    /// member surfaces as [`CommError::RankFailed`] instead of a hang.
    pub fn try_gather(
        &mut self,
        data: &[f64],
        tag: u64,
    ) -> Result<Option<Vec<Vec<f64>>>, CommError> {
        self.note_op()?;
        let tag = self.etag(tag);
        let group = self.group.clone();
        let t = Instant::now();
        let res = self.gather_over(&group, data, tag);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    fn gather_over(
        &mut self,
        group: &[usize],
        data: &[f64],
        tag: u64,
    ) -> Result<Option<Vec<Vec<f64>>>, CommError> {
        if self.group_index(group) == 0 {
            let mut all = Vec::with_capacity(group.len());
            all.push(data.to_vec());
            for &m in &group[1..] {
                all.push(self.recv_watch(m, tag, Some(group))?);
            }
            Ok(Some(all))
        } else {
            self.send_ft(group[0], tag, data, Some(group))?;
            Ok(None)
        }
    }

    /// Gather each rank's `data` on the group root (others get `None`).
    ///
    /// # Panics
    /// Panics on a detected rank failure or transport error; use
    /// [`try_gather`](Self::try_gather) to handle those.
    pub fn gather(&mut self, data: &[f64], tag: u64) -> Option<Vec<Vec<f64>>> {
        self.try_gather(data, tag)
            .unwrap_or_else(|e| panic!("minimpi gather: {e}"))
    }

    /// Fault-aware broadcast of the group root's (`group()[0]`) `buf` to
    /// every group member. A dead group member surfaces as
    /// [`CommError::RankFailed`] instead of a hang.
    pub fn try_broadcast(&mut self, buf: &mut [f64], tag: u64) -> Result<(), CommError> {
        self.note_op()?;
        let tag = self.etag(tag);
        let group = self.group.clone();
        let t = Instant::now();
        let res = self.broadcast_over(&group, buf, tag);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    fn broadcast_over(
        &mut self,
        group: &[usize],
        buf: &mut [f64],
        tag: u64,
    ) -> Result<(), CommError> {
        if self.group_index(group) == 0 {
            for &m in &group[1..] {
                let data: Vec<f64> = buf.to_vec();
                self.send_ft(m, tag, &data, Some(group))?;
            }
        } else {
            let msg = self.recv_watch(group[0], tag, Some(group))?;
            assert_eq!(msg.len(), buf.len(), "broadcast length mismatch");
            buf.copy_from_slice(&msg);
        }
        Ok(())
    }

    /// Broadcast the group root's `buf` to everyone.
    ///
    /// # Panics
    /// Panics on a detected rank failure or transport error; use
    /// [`try_broadcast`](Self::try_broadcast) to handle those.
    pub fn broadcast(&mut self, buf: &mut [f64], tag: u64) {
        self.try_broadcast(buf, tag)
            .unwrap_or_else(|e| panic!("minimpi broadcast: {e}"));
    }

    /// Fault-aware personalized all-to-all over the current group:
    /// `blocks[i]` (blocks may differ in length, including empty) is
    /// delivered to group member `i`, and the return value holds the block
    /// received from each member, in group order — the exchange pattern of
    /// a distributed matrix transpose. This rank's own block is copied
    /// directly without touching the transport.
    ///
    /// Deadlock-free by construction: every send completes before any
    /// receive is posted (frames park in the receiver's stash, and under a
    /// fault plan the ack wait itself services incoming frames). A dead
    /// group member surfaces as [`CommError::RankFailed`] on every caller
    /// instead of a hang; injected drop/corrupt faults are absorbed by the
    /// ack/retry transport and recorded in the event ledger.
    ///
    /// # Panics
    /// Panics if `blocks.len()` differs from the group size.
    pub fn try_all_to_all(
        &mut self,
        blocks: &[Vec<f64>],
        tag: u64,
    ) -> Result<Vec<Vec<f64>>, CommError> {
        self.note_op()?;
        let tag = self.etag(tag);
        let group = self.group.clone();
        assert_eq!(
            blocks.len(),
            group.len(),
            "all_to_all needs one block per group member"
        );
        let t = Instant::now();
        let res = self.all_to_all_over(&group, blocks, tag);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res
    }

    fn all_to_all_over(
        &mut self,
        group: &[usize],
        blocks: &[Vec<f64>],
        tag: u64,
    ) -> Result<Vec<Vec<f64>>, CommError> {
        let me = self.group_index(group);
        for (i, &m) in group.iter().enumerate() {
            if i != me {
                self.send_ft(m, tag, &blocks[i], Some(group))?;
            }
        }
        let mut out = Vec::with_capacity(group.len());
        for (i, &m) in group.iter().enumerate() {
            if i == me {
                out.push(blocks[i].clone());
            } else {
                out.push(self.recv_watch(m, tag, Some(group))?);
            }
        }
        Ok(out)
    }

    /// Personalized all-to-all over the current group.
    ///
    /// # Panics
    /// Panics on a detected rank failure or transport error; use
    /// [`try_all_to_all`](Self::try_all_to_all) to handle those.
    pub fn all_to_all(&mut self, blocks: &[Vec<f64>], tag: u64) -> Vec<Vec<f64>> {
        self.try_all_to_all(blocks, tag)
            .unwrap_or_else(|e| panic!("minimpi all_to_all: {e}"))
    }

    // ------------------------------------------------------------- recovery

    /// ULFM-style shrink: agree with the surviving group members on the
    /// set of failed ranks, rebuild the communicator group without them,
    /// and bump the epoch. Returns the new group (sorted world ranks).
    ///
    /// Every surviving member of the current group must call `shrink`
    /// (typically after a collective returned
    /// [`CommError::RankFailed`]). The agreement is an allreduce of each
    /// member's suspect bitmask over the tentative survivor group; if the
    /// union reveals suspects a member had not yet observed (or another
    /// rank dies mid-agreement), the round retries with the enlarged set.
    /// Convergence needs the survivors' suspect sets to stabilize, which
    /// dead-flag (crash-fault) detection gives immediately; a round that
    /// cannot complete surfaces its [`CommError`] rather than hanging.
    pub fn shrink(&mut self) -> Result<Vec<usize>, CommError> {
        if self.dead_self {
            return Err(CommError::RankFailed {
                rank: self.rank,
                failed: self.rank,
            });
        }
        self.beat();
        let nranks = self.shared.nranks;
        let old_group = self.group.clone();
        let mut suspect = vec![false; nranks];
        let mut last_err = None;
        for attempt in 0..nranks.max(2) as u64 {
            // Re-scan the detector each round: ranks that died since the
            // last attempt join the suspect set.
            for &m in &old_group {
                if m != self.rank && self.peer_failed(m) {
                    suspect[m] = true;
                }
            }
            let tentative: Vec<usize> =
                old_group.iter().copied().filter(|&m| !suspect[m]).collect();
            let mut votes: Vec<f64> = suspect.iter().map(|&s| if s { 1.0 } else { 0.0 }).collect();
            let tag = self.etag(SHRINK_TAG_BASE + CTL_TAG_STRIDE * attempt);
            match self.allreduce_tree_over(&tentative, &mut votes, tag) {
                Ok(()) => {
                    let agreed: Vec<usize> = (0..nranks).filter(|&m| votes[m] > 0.0).collect();
                    if agreed.iter().all(|&m| suspect[m]) {
                        self.group = tentative;
                        self.epoch += 1;
                        self.join_seq = 0;
                        self.push_event(
                            TransportEventKind::Shrink,
                            None,
                            0,
                            format!(
                                "group {:?} -> {:?}, epoch {}",
                                old_group, self.group, self.epoch
                            ),
                        );
                        return Ok(self.group.clone());
                    }
                    // Another member suspects ranks we had not observed:
                    // adopt the union and retry.
                    for &m in &agreed {
                        suspect[m] = true;
                    }
                }
                Err(CommError::RankFailed { failed, .. }) if failed != self.rank => {
                    suspect[failed] = true;
                    last_err = Some(CommError::RankFailed {
                        rank: self.rank,
                        failed,
                    });
                }
                Err(CommError::Timeout { .. }) => {
                    // A member aborted this round (it saw a suspect we have
                    // not); re-scan and retry.
                    last_err = Some(CommError::Timeout {
                        rank: self.rank,
                        src: self.rank,
                        tag,
                    });
                }
                Err(e) => return Err(e),
            }
        }
        Err(last_err.unwrap_or(CommError::Disconnected { rank: self.rank }))
    }

    // ------------------------------------------------------------ elasticity

    /// Spare side of the join protocol: announce this rank on the world's
    /// admission board and wait up to `deadline` for the members to vote it
    /// in via [`try_admit`](Self::try_admit). Returns the adopted group on
    /// admission, `Ok(None)` when the members closed the board without
    /// admitting this rank (the run ended), and
    /// [`CommError::Timeout`] when `deadline` elapses first. A member
    /// calling `try_join` returns its current group immediately.
    ///
    /// On admission this rank adopts the group's epoch, so its collective
    /// tags line up with the incumbents' from the first post-join exchange.
    pub fn try_join(&mut self, deadline: Duration) -> Result<Option<Vec<usize>>, CommError> {
        if self.member {
            return Ok(Some(self.group.clone()));
        }
        self.note_op()?;
        {
            let mut board = self.shared.join.lock().expect("join board poisoned");
            if !board.candidates.contains(&self.rank) {
                board.candidates.push(self.rank);
            }
        }
        let limit = Instant::now() + deadline;
        loop {
            self.beat();
            {
                let mut board = self.shared.join.lock().expect("join board poisoned");
                if let Some(i) = board.tickets.iter().position(|t| t.0 == self.rank) {
                    let (_, group, epoch) = board.tickets.remove(i);
                    drop(board);
                    self.group = group;
                    self.epoch = epoch;
                    self.join_seq = 0;
                    self.member = true;
                    self.push_event(
                        TransportEventKind::Join,
                        None,
                        0,
                        format!("joined group {:?}, epoch {}", self.group, self.epoch),
                    );
                    return Ok(Some(self.group.clone()));
                }
                if board.closed {
                    board.candidates.retain(|&c| c != self.rank);
                    return Ok(None);
                }
            }
            if Instant::now() >= limit {
                self.shared
                    .join
                    .lock()
                    .expect("join board poisoned")
                    .candidates
                    .retain(|&c| c != self.rank);
                return Err(CommError::Timeout {
                    rank: self.rank,
                    src: self.rank,
                    tag: JOIN_TAG_BASE,
                });
            }
            std::thread::sleep(self.detect_poll);
        }
    }

    /// Member side of the join protocol: a collective over the current
    /// group that votes waiting spares in. Every member snapshots the
    /// admission board (skipping candidates the failure detector already
    /// considers dead), the per-candidate votes are summed with an
    /// epoch-qualified allreduce — mirroring [`shrink`](Self::shrink)'s
    /// agreement — and exactly the unanimously seen candidates are
    /// admitted: the summed vote count identifies the same set on every
    /// member, so the new group is consistent without a second round. A
    /// candidate only some members saw (it announced itself mid-snapshot)
    /// simply stays on the board for the next `try_admit`.
    ///
    /// On success the group grows, the epoch bumps, a
    /// [`TransportEventKind::Join`] event is ledgered, and the (old) group
    /// leader posts admission tickets the joiners collect in
    /// [`try_join`](Self::try_join). Returns the admitted world ranks, or
    /// `Ok(None)` when no candidate was unanimously visible. Every member
    /// of the group must call `try_admit` at the same protocol point; after
    /// an `Err` (e.g. a member died mid-agreement) callers should
    /// [`shrink`](Self::shrink) and retry.
    pub fn try_admit(&mut self) -> Result<Option<Vec<usize>>, CommError> {
        self.note_op()?;
        let nranks = self.shared.nranks;
        let group = self.group.clone();
        let mut votes = vec![0.0; nranks];
        {
            let board = self.shared.join.lock().expect("join board poisoned");
            for &c in &board.candidates {
                if !group.contains(&c) && !self.peer_failed(c) {
                    votes[c] = 1.0;
                }
            }
        }
        let tag = self.etag(JOIN_TAG_BASE + CTL_TAG_STRIDE * self.join_seq);
        self.join_seq += 1;
        let t = Instant::now();
        let res = self.allreduce_tree_over(&group, &mut votes, tag);
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
        res?;
        let admitted: Vec<usize> = (0..nranks)
            .filter(|&c| votes[c] == group.len() as f64)
            .collect();
        if admitted.is_empty() {
            return Ok(None);
        }
        let leader = group[0];
        let mut new_group = group;
        new_group.extend_from_slice(&admitted);
        new_group.sort_unstable();
        self.group = new_group;
        self.epoch += 1;
        self.join_seq = 0;
        self.push_event(
            TransportEventKind::Join,
            Some(admitted[0]),
            0,
            format!(
                "admitted {:?}: group -> {:?}, epoch {}",
                admitted, self.group, self.epoch
            ),
        );
        if self.rank == leader {
            let mut board = self.shared.join.lock().expect("join board poisoned");
            board.candidates.retain(|c| !admitted.contains(c));
            for &c in &admitted {
                board.tickets.push((c, self.group.clone(), self.epoch));
            }
        }
        Ok(Some(admitted))
    }

    /// Close the admission board: spares blocked in
    /// [`try_join`](Self::try_join) return `Ok(None)` instead of waiting
    /// out their deadline. Members call this when their run completes;
    /// idempotent and safe to call from every member.
    pub fn close_joins(&self) {
        self.shared.join.lock().expect("join board poisoned").closed = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let r = World::run(1, |comm| {
            let mut v = vec![5.0];
            comm.allreduce_sum(&mut v);
            comm.allreduce_sum_tree(&mut v, 100);
            v[0]
        });
        assert_eq!(r, vec![5.0]);
    }

    #[test]
    fn flat_allreduce_sums() {
        for nranks in [2usize, 3, 4, 7, 8] {
            let results = World::run(nranks, |comm| {
                let mut v: Vec<f64> = (0..16).map(|i| (comm.rank() * 16 + i) as f64).collect();
                comm.allreduce_sum(&mut v);
                v
            });
            for i in 0..16 {
                let expect: f64 = (0..nranks).map(|r| (r * 16 + i) as f64).sum();
                for r in &results {
                    assert_eq!(r[i], expect, "nranks={nranks} i={i}");
                }
            }
        }
    }

    #[test]
    fn tree_allreduce_sums() {
        for nranks in [2usize, 3, 4, 5, 8, 13, 16] {
            let results = World::run(nranks, |comm| {
                let mut v: Vec<f64> = (0..8).map(|i| (comm.rank() + i) as f64).collect();
                comm.allreduce_sum_tree(&mut v, 0);
                v
            });
            for i in 0..8 {
                let expect: f64 = (0..nranks).map(|r| (r + i) as f64).sum();
                for (rank, r) in results.iter().enumerate() {
                    assert_eq!(r[i], expect, "nranks={nranks} rank={rank} i={i}");
                }
            }
        }
    }

    #[test]
    fn repeated_allreduce_rounds() {
        // The PIC loop calls allreduce every iteration — state must reset.
        let results = World::run(4, |comm| {
            let mut total = 0.0;
            for step in 0..10u64 {
                let mut v = vec![1.0 + step as f64];
                comm.allreduce_sum(&mut v);
                total += v[0];
            }
            total
        });
        let expect: f64 = (0..10).map(|s| 4.0 * (1.0 + s as f64)).sum();
        assert!(results.iter().all(|&r| r == expect));
    }

    #[test]
    fn mixed_tree_and_flat() {
        let results = World::run(6, |comm| {
            let mut a = vec![comm.rank() as f64];
            comm.allreduce_sum(&mut a);
            let mut b = vec![1.0];
            comm.allreduce_sum_tree(&mut b, 50);
            (a[0], b[0])
        });
        for (a, b) in results {
            assert_eq!(a, 15.0);
            assert_eq!(b, 6.0);
        }
    }

    #[test]
    fn rabenseifner_allreduce_sums() {
        for nranks in [2usize, 4, 8] {
            let results = World::run(nranks, |comm| {
                let mut v: Vec<f64> = (0..32).map(|i| (comm.rank() * 32 + i) as f64).collect();
                comm.allreduce_sum_rabenseifner(&mut v, 0);
                v
            });
            for i in 0..32 {
                let expect: f64 = (0..nranks).map(|r| (r * 32 + i) as f64).sum();
                for (rank, r) in results.iter().enumerate() {
                    assert_eq!(r[i], expect, "nranks={nranks} rank={rank} i={i}");
                }
            }
        }
    }

    #[test]
    fn rabenseifner_falls_back_for_odd_ranks() {
        let results = World::run(3, |comm| {
            let mut v = vec![1.0; 16];
            comm.allreduce_sum_rabenseifner(&mut v, 0);
            v[0]
        });
        assert!(results.iter().all(|&r| r == 3.0));
    }

    #[test]
    fn rabenseifner_falls_back_for_small_payload() {
        // Payload shorter than the rank count cannot be block-scattered.
        let results = World::run(4, |comm| {
            let mut v = vec![comm.rank() as f64; 2];
            comm.allreduce_sum_rabenseifner(&mut v, 0);
            v[0]
        });
        assert!(results.iter().all(|&r| r == 6.0));
    }

    #[test]
    fn rabenseifner_repeated_rounds() {
        let results = World::run(4, |comm| {
            let mut total = 0.0;
            for step in 0..5u64 {
                let mut v = vec![1.0 + step as f64; 64];
                comm.allreduce_sum_rabenseifner(&mut v, step * 10_000);
                total += v[33];
            }
            total
        });
        let expect: f64 = (0..5).map(|s| 4.0 * (1.0 + s as f64)).sum();
        assert!(results.iter().all(|&r| r == expect));
    }

    #[test]
    fn rabenseifner_uneven_blocks() {
        // Payload not divisible by rank count: blocks differ in size.
        let results = World::run(4, |comm| {
            let mut v: Vec<f64> = (0..13).map(|i| (comm.rank() + i) as f64).collect();
            comm.allreduce_sum_rabenseifner(&mut v, 0);
            v
        });
        for i in 0..13 {
            let expect: f64 = (0..4).map(|r| (r + i) as f64).sum();
            for r in &results {
                assert_eq!(r[i], expect, "i={i}");
            }
        }
    }

    #[test]
    fn point_to_point_roundtrip() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn selective_receive_out_of_order() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send(1, 2, &[20.0]);
                comm.send(1, 1, &[10.0]);
                vec![0.0]
            } else {
                let first = comm.recv(0, 1);
                let second = comm.recv(0, 2);
                vec![first[0], second[0]]
            }
        });
        assert_eq!(results[1], vec![10.0, 20.0]);
    }

    #[test]
    fn gather_collects_on_root() {
        let results = World::run(3, |comm| comm.gather(&[comm.rank() as f64], 9));
        let root = results[0].as_ref().unwrap();
        assert_eq!(root.len(), 3);
        for (r, v) in root.iter().enumerate() {
            assert_eq!(v[0], r as f64);
        }
        assert!(results[1].is_none());
        assert!(results[2].is_none());
    }

    #[test]
    fn broadcast_distributes() {
        let results = World::run(4, |comm| {
            let mut v = if comm.rank() == 0 {
                vec![3.25, -1.0]
            } else {
                vec![0.0, 0.0]
            };
            comm.broadcast(&mut v, 11);
            v
        });
        for r in results {
            assert_eq!(r, vec![3.25, -1.0]);
        }
    }

    #[test]
    fn comm_time_is_tracked() {
        let (_, mean_comm) = World::run_timed(4, |comm| {
            let mut v = vec![0.0; 1024];
            for _ in 0..50 {
                comm.allreduce_sum(&mut v);
            }
            comm.comm_time()
        });
        assert!(mean_comm > 0.0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        World::run(8, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must see all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }

    // ------------------------------------------------------- fault injection

    /// Shrink the timeouts so fault tests run fast.
    fn fast_timeouts(comm: &mut Comm) {
        comm.set_ack_timeout(Duration::from_millis(5));
    }

    #[test]
    fn lossy_link_recovers_via_retry() {
        let plan = FaultPlan::new(11).drop_messages(0.5);
        let results = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            if comm.rank() == 0 {
                for i in 0..20u64 {
                    comm.try_send(1, i, &[i as f64, -(i as f64)]).unwrap();
                }
                Vec::new()
            } else {
                (0..20u64)
                    .map(|i| {
                        let m = comm.try_recv(0, i).unwrap();
                        assert_eq!(m, vec![i as f64, -(i as f64)]);
                        m[0]
                    })
                    .collect()
            }
        });
        assert_eq!(results[1], (0..20).map(|i| i as f64).collect::<Vec<_>>());
    }

    #[test]
    fn corrupted_frames_are_detected_and_retransmitted() {
        // Half of all deliveries carry a flipped bit; the checksum rejects
        // them and a clean retransmission must still get every payload
        // through intact.
        let plan = FaultPlan::new(5).corrupt_messages(0.5);
        let results = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            if comm.rank() == 0 {
                for i in 0..20u64 {
                    comm.try_send(1, i, &[1.5 * i as f64; 8]).unwrap();
                }
                true
            } else {
                (0..20u64).all(|i| comm.try_recv(0, i).unwrap() == vec![1.5 * i as f64; 8])
            }
        });
        assert!(results[1]);
    }

    #[test]
    fn delayed_frames_do_not_affect_results() {
        let plan = FaultPlan::new(3).delay_messages(0.5, Duration::from_micros(200));
        let results = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            let mut v = vec![comm.rank() as f64; 8];
            comm.try_allreduce_sum_tree(&mut v, 0).unwrap();
            v[0]
        });
        assert!(results.iter().all(|&r| r == 6.0));
    }

    #[test]
    fn tree_allreduce_recovers_under_faults() {
        // Drops and corruption on every link; the reliable transport must
        // still produce exactly the fault-free sums on every rank.
        let plan = FaultPlan::new(17).drop_messages(0.3).corrupt_messages(0.2);
        let results = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            let mut total = 0.0;
            for step in 0..5u64 {
                let mut v: Vec<f64> = (0..8).map(|i| (comm.rank() + i) as f64).collect();
                comm.try_allreduce_sum_tree(&mut v, step * 10_000).unwrap();
                total += v[3];
            }
            total
        });
        let per_step: f64 = (0..4).map(|r| (r + 3) as f64).sum();
        assert!(results.iter().all(|&r| r == 5.0 * per_step), "{results:?}");
    }

    #[test]
    fn rabenseifner_recovers_under_faults() {
        let plan = FaultPlan::new(23).drop_messages(0.3).corrupt_messages(0.2);
        let results = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            let mut v: Vec<f64> = (0..16).map(|i| (comm.rank() * 16 + i) as f64).collect();
            comm.try_allreduce_sum_rabenseifner(&mut v, 0).unwrap();
            v
        });
        for i in 0..16 {
            let expect: f64 = (0..4).map(|r| (r * 16 + i) as f64).sum();
            for r in &results {
                assert_eq!(r[i], expect, "i={i}");
            }
        }
    }

    #[test]
    fn unrecoverable_plan_fails_cleanly_without_deadlock() {
        let plan = FaultPlan::always_drop(1);
        let results = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            comm.set_max_retries(4);
            comm.set_recv_deadline(Duration::from_millis(400));
            if comm.rank() == 0 {
                comm.try_send(1, 7, &[1.0]).unwrap_err()
            } else {
                comm.try_recv(0, 7).unwrap_err()
            }
        });
        assert!(
            matches!(
                results[0],
                CommError::RetriesExhausted {
                    rank: 0,
                    dst: 1,
                    tag: 7,
                    attempts: 5
                }
            ),
            "{:?}",
            results[0]
        );
        assert!(
            matches!(
                results[1],
                CommError::Timeout {
                    rank: 1,
                    src: 0,
                    tag: 7
                }
            ),
            "{:?}",
            results[1]
        );
    }

    #[test]
    fn fault_injection_is_reproducible() {
        // Same seed → byte-identical outcomes including the error path.
        let run = || {
            let plan = FaultPlan::new(99).drop_messages(0.4);
            World::run_with_faults(2, plan, |comm| {
                fast_timeouts(comm);
                if comm.rank() == 0 {
                    (0..10u64)
                        .map(|i| comm.try_send(1, i, &[i as f64]).is_ok())
                        .collect::<Vec<_>>()
                } else {
                    (0..10u64)
                        .map(|i| comm.try_recv(0, i).is_ok())
                        .collect::<Vec<_>>()
                }
            })
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn targeted_faults_leave_other_ranks_clean() {
        // Only rank 0's outgoing frames are faulty; rank 1 → 0 traffic
        // takes the reliable path but never needs a retry.
        let plan = FaultPlan::new(2).drop_messages(0.9).target_ranks(&[0]);
        let results = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            if comm.rank() == 0 {
                comm.try_send(1, 1, &[4.0]).unwrap();
                comm.try_recv(1, 2).unwrap()
            } else {
                let got = comm.try_recv(0, 1).unwrap();
                comm.try_send(0, 2, &[got[0] * 2.0]).unwrap();
                got
            }
        });
        assert_eq!(results[0], vec![8.0]);
        assert_eq!(results[1], vec![4.0]);
    }

    #[test]
    fn crash_fault_kills_rank_and_survivor_detects() {
        let plan = FaultPlan::new(5).kill_rank(1, 1);
        let out = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            comm.set_recv_deadline(Duration::from_millis(2000));
            if comm.rank() == 0 {
                match comm.try_recv(1, 7) {
                    Err(CommError::RankFailed { rank: 0, failed }) => format!("detected {failed}"),
                    other => format!("unexpected {other:?}"),
                }
            } else {
                match comm.try_send(0, 7, &[1.0]) {
                    Err(CommError::RankFailed { rank: 1, failed: 1 }) => "killed".to_string(),
                    other => format!("unexpected {other:?}"),
                }
            }
        });
        assert_eq!(out[0], "detected 1");
        assert_eq!(out[1], "killed");
    }

    #[test]
    fn ledger_orders_kill_before_detect() {
        let plan = FaultPlan::new(6).kill_rank(1, 1);
        let events = World::run_with_faults(2, plan, |comm| {
            fast_timeouts(comm);
            comm.set_recv_deadline(Duration::from_millis(2000));
            if comm.rank() == 0 {
                let _ = comm.try_recv(1, 3);
            } else {
                let _ = comm.try_send(0, 3, &[1.0]);
            }
            comm.take_events()
        });
        let kill = events[1]
            .iter()
            .find(|e| e.kind == TransportEventKind::Kill)
            .expect("killed rank records a Kill event");
        let detect = events[0]
            .iter()
            .find(|e| e.kind == TransportEventKind::Detect)
            .expect("survivor records a Detect event");
        assert!(
            kill.seq < detect.seq,
            "kill seq {} must precede detect seq {}",
            kill.seq,
            detect.seq
        );
        assert_eq!(detect.peer, Some(1));
    }

    #[test]
    fn stale_heartbeat_is_detected_as_failure() {
        // Rank 1 never beats (no comm ops) for longer than the timeout, so
        // rank 0's receive reports it failed instead of waiting out the
        // full deadline.
        let out = World::run(2, |comm| {
            fast_timeouts(comm);
            if comm.rank() == 0 {
                comm.set_heartbeat_timeout(Duration::from_millis(40));
                comm.set_recv_deadline(Duration::from_secs(5));
                matches!(
                    comm.try_recv(1, 1),
                    Err(CommError::RankFailed { failed: 1, .. })
                )
            } else {
                std::thread::sleep(Duration::from_millis(400));
                true
            }
        });
        assert!(out[0], "stale heartbeat must surface as RankFailed");
        assert!(out[1]);
    }

    #[test]
    fn collectives_fail_cleanly_when_a_rank_dies() {
        // Rank 2 dies at its first op; the other three ranks' allreduce
        // must detect it instead of hanging, on every algorithm.
        let plan = FaultPlan::new(8).kill_rank(2, 1);
        let out = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            comm.set_recv_deadline(Duration::from_millis(2000));
            let mut buf = vec![1.0; 8];
            let res = comm.try_allreduce_sum_tree(&mut buf, 100);
            matches!(res, Err(CommError::RankFailed { .. }))
        });
        assert!(out.iter().all(|&ok| ok), "{out:?}");
    }

    #[test]
    fn shrink_rebuilds_live_group_and_collectives_recover() {
        let plan = FaultPlan::new(9).kill_rank(2, 2);
        let out = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            // Generous deadline: the dead rank is caught by the dead-flag
            // watch, not deadline expiry, and a loaded box can starve a
            // *live* peer past a short deadline mid-collective — scale the
            // base by the host's oversubscription instead of hard-coding
            // a worst-case constant.
            comm.set_recv_deadline(load_scaled_deadline(Duration::from_millis(2_500), 4));
            let mut buf = vec![1.0; 4];
            // First collective succeeds (rank 2 dies on its second op).
            if comm.try_allreduce_sum_tree(&mut buf, 50).is_err() {
                return (comm.group().to_vec(), f64::NAN);
            }
            assert_eq!(buf, vec![4.0; 4]);
            // Second collective kills rank 2 / fails on survivors.
            let mut buf = vec![1.0; 4];
            match comm.try_allreduce_sum_tree(&mut buf, 60) {
                Err(CommError::RankFailed { rank, failed }) if rank == failed => {
                    return (vec![], f64::NAN); // the dead rank exits
                }
                Err(CommError::RankFailed { .. }) => {}
                other => panic!("expected RankFailed, got {other:?}"),
            }
            let group = comm.shrink().expect("survivors agree on shrink");
            let mut buf = vec![1.0; 4];
            comm.try_allreduce_sum_tree(&mut buf, 70)
                .expect("post-shrink collective succeeds");
            (group, buf[0])
        });
        for r in [0, 1, 3] {
            assert_eq!(out[r].0, vec![0, 1, 3], "rank {r} group");
            assert_eq!(out[r].1, 3.0, "rank {r} post-shrink sum");
        }
        assert!(out[2].1.is_nan());
    }

    #[test]
    fn gather_broadcast_survive_with_group_semantics() {
        let plan = FaultPlan::new(10).kill_rank(3, 1);
        let out = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            comm.set_recv_deadline(Duration::from_millis(2000));
            let r = comm.rank() as f64;
            if comm.try_gather(&[r], 5).is_err() && comm.rank() == 3 {
                return -1.0;
            }
            // Survivors: the gather may have succeeded (rank 3's frame can
            // land before its death is material) or failed; either way,
            // shrink and redo it over the live group.
            if comm.group().len() == comm.size() && comm.shrink().is_err() {
                return -2.0;
            }
            let gathered = comm.try_gather(&[r], 6).expect("post-shrink gather");
            let mut sum = vec![0.0];
            if let Some(parts) = gathered {
                sum[0] = parts.iter().map(|p| p[0]).sum();
            }
            comm.try_broadcast(&mut sum, 7).expect("post-shrink bcast");
            sum[0]
        });
        for r in [0, 1, 2] {
            assert_eq!(out[r], 3.0, "rank {r}"); // sum of surviving rank ids
        }
        assert_eq!(out[3], -1.0);
    }

    #[test]
    fn all_to_all_exchanges_variable_length_blocks() {
        // Rank r sends to rank d a block of length r + d whose entries encode
        // both endpoints; every rank must receive exactly what each peer
        // addressed to it, including the zero-length block from rank 0 to 0.
        let out = World::run(4, |comm| {
            let me = comm.rank();
            let blocks: Vec<Vec<f64>> =
                (0..4).map(|d| vec![(me * 10 + d) as f64; me + d]).collect();
            comm.all_to_all(&blocks, 40)
        });
        for (me, recvd) in out.iter().enumerate() {
            for (src, block) in recvd.iter().enumerate() {
                assert_eq!(
                    *block,
                    vec![(src * 10 + me) as f64; src + me],
                    "rank {me} from {src}"
                );
            }
        }
    }

    #[test]
    fn all_to_all_accounts_data_volume() {
        // Only off-rank blocks travel: each rank ships 3 blocks of 8 f64s
        // out and takes 3 in; the own-rank block never hits the transport.
        let out = World::run(2, |comm| {
            comm.reset_data_volume();
            let blocks = vec![vec![comm.rank() as f64; 8]; 2];
            comm.all_to_all(&blocks, 41);
            (comm.bytes_sent(), comm.bytes_received())
        });
        for (r, &(sent, recvd)) in out.iter().enumerate() {
            assert_eq!(sent, 8 * 8, "rank {r} sent");
            assert_eq!(recvd, 8 * 8, "rank {r} recvd");
        }
    }

    #[test]
    fn all_to_all_recovers_under_faults() {
        // Drops and corruption on every link must be absorbed by the
        // ack/retry layer: the exchanged blocks are bit-exact with the
        // fault-free run and the ledger records the retransmissions.
        let plan = FaultPlan::new(29).drop_messages(0.3).corrupt_messages(0.2);
        let out = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            let me = comm.rank();
            let mut sum = 0.0;
            for step in 0..4u64 {
                let blocks: Vec<Vec<f64>> = (0..4)
                    .map(|d| vec![(me * 4 + d) as f64 + step as f64; 6])
                    .collect();
                let recvd = comm.try_all_to_all(&blocks, 100 + step * 10).unwrap();
                for (src, b) in recvd.iter().enumerate() {
                    assert_eq!(*b, vec![(src * 4 + me) as f64 + step as f64; 6]);
                }
                sum += recvd.iter().map(|b| b[0]).sum::<f64>();
            }
            let retries = comm
                .take_events()
                .iter()
                .filter(|e| e.kind == TransportEventKind::Retry)
                .count();
            (sum, retries)
        });
        let total_retries: usize = out.iter().map(|o| o.1).sum();
        assert!(total_retries > 0, "fault plan produced no retransmissions");
        for (me, &(sum, _)) in out.iter().enumerate() {
            let expect: f64 = (0..4u64)
                .map(|step| {
                    (0..4)
                        .map(|src| (src * 4 + me) as f64 + step as f64)
                        .sum::<f64>()
                })
                .sum();
            assert_eq!(sum, expect, "rank {me}");
        }
    }

    #[test]
    fn all_to_all_fails_cleanly_when_a_rank_dies() {
        // Rank 1 dies at its first op, mid-exchange: every survivor must
        // surface a CommError instead of hanging in the drain loop.
        let plan = FaultPlan::new(31).kill_rank(1, 1);
        let out = World::run_with_faults(4, plan, |comm| {
            fast_timeouts(comm);
            comm.set_recv_deadline(Duration::from_millis(2000));
            let blocks = vec![vec![comm.rank() as f64; 4]; 4];
            comm.try_all_to_all(&blocks, 55).is_err()
        });
        assert!(out.iter().all(|&failed| failed), "{out:?}");
    }

    #[test]
    #[should_panic(expected = "rank panicked")]
    fn blocking_recv_honors_deadline() {
        World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.set_recv_deadline(Duration::from_millis(50));
                let _ = comm.recv(1, 9); // nobody ever sends: must panic
            } else {
                std::thread::sleep(Duration::from_millis(200));
            }
        });
    }

    #[test]
    fn load_scaled_deadline_never_shrinks_base() {
        let base = Duration::from_millis(500);
        assert!(load_scaled_deadline(base, 1) >= base);
        assert!(load_scaled_deadline(base, 4) >= base);
        // Oversubscription can only lengthen the deadline, monotonically.
        assert!(load_scaled_deadline(base, 1024) >= load_scaled_deadline(base, 4));
    }

    #[test]
    fn elastic_world_admits_a_spare() {
        // 3 members + 1 spare, no faults: the members admit the spare, the
        // grown group runs a collective, and both sides ledger the Join.
        let out = World::run_elastic(3, 1, None, |comm| {
            fast_timeouts(comm);
            comm.set_recv_deadline(load_scaled_deadline(Duration::from_millis(2_500), 4));
            if !comm.is_member() {
                let g = comm
                    .try_join(load_scaled_deadline(Duration::from_secs(5), 4))
                    .expect("spare join");
                let Some(group) = g else {
                    return (vec![], f64::NAN, 0);
                };
                let mut v = vec![comm.rank() as f64 + 1.0];
                comm.try_allreduce_sum_tree(&mut v, 70).unwrap();
                let joins = comm
                    .take_events()
                    .iter()
                    .filter(|e| e.kind == TransportEventKind::Join)
                    .count();
                return (group, v[0], joins);
            }
            // Members: give the spare a moment to announce itself, then
            // admit (retrying while no candidate is visible yet).
            let mut admitted = None;
            for _ in 0..500 {
                match comm.try_admit().expect("admit collective") {
                    Some(a) => {
                        admitted = Some(a);
                        break;
                    }
                    None => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            assert_eq!(admitted, Some(vec![3]), "rank {}", comm.rank());
            let mut v = vec![comm.rank() as f64 + 1.0];
            comm.try_allreduce_sum_tree(&mut v, 70).unwrap();
            comm.close_joins();
            let joins = comm
                .take_events()
                .iter()
                .filter(|e| e.kind == TransportEventKind::Join)
                .count();
            (comm.group().to_vec(), v[0], joins)
        });
        for (r, (group, sum, joins)) in out.iter().enumerate() {
            assert_eq!(group, &vec![0, 1, 2, 3], "rank {r} group");
            assert_eq!(*sum, 1.0 + 2.0 + 3.0 + 4.0, "rank {r} sum");
            assert_eq!(*joins, 1, "rank {r} must ledger exactly one Join");
        }
    }

    #[test]
    fn unclaimed_spare_exits_when_joins_close() {
        let out = World::run_elastic(2, 1, None, |comm| {
            if !comm.is_member() {
                // The members never admit: the board closing must release
                // the spare with Ok(None) well before the deadline.
                return matches!(comm.try_join(Duration::from_secs(30)), Ok(None));
            }
            let mut v = vec![1.0];
            comm.try_allreduce_sum_tree(&mut v, 10).unwrap();
            comm.close_joins();
            true
        });
        assert!(out.iter().all(|&ok| ok), "{out:?}");
    }

    #[test]
    fn shrink_then_admit_replaces_a_dead_rank() {
        // 3 members + 1 spare; member 1 dies, the survivors shrink and
        // admit the spare: the group ends as {0, 2, 3} with a working
        // collective and a fresh epoch qualifying its tags.
        let plan = FaultPlan::new(77).kill_rank(1, 2);
        let out = World::run_elastic(3, 1, Some(plan), |comm| {
            fast_timeouts(comm);
            comm.set_recv_deadline(load_scaled_deadline(Duration::from_millis(2_500), 4));
            if !comm.is_member() {
                match comm.try_join(load_scaled_deadline(Duration::from_secs(10), 4)) {
                    Ok(Some(group)) => {
                        let mut v = vec![comm.rank() as f64];
                        comm.try_allreduce_sum_tree(&mut v, 90).unwrap();
                        return (group, v[0]);
                    }
                    other => panic!("spare expected admission, got {other:?}"),
                }
            }
            let mut v = vec![1.0; 2];
            if comm.try_allreduce_sum_tree(&mut v, 80).is_err() && comm.rank() == 1 {
                return (vec![], f64::NAN); // the killed rank exits
            }
            let mut v = vec![1.0; 2];
            match comm.try_allreduce_sum_tree(&mut v, 81) {
                Err(CommError::RankFailed { rank, failed }) if rank == failed => {
                    return (vec![], f64::NAN)
                }
                Err(CommError::RankFailed { .. }) => {}
                other => panic!("expected RankFailed, got {other:?}"),
            }
            comm.shrink().expect("survivors agree on shrink");
            let mut admitted = None;
            for _ in 0..500 {
                match comm.try_admit().expect("admit collective") {
                    Some(a) => {
                        admitted = Some(a);
                        break;
                    }
                    None => std::thread::sleep(Duration::from_millis(2)),
                }
            }
            assert_eq!(admitted, Some(vec![3]));
            assert!(comm.epoch() >= 2, "shrink + admit each bump the epoch");
            let mut v = vec![comm.rank() as f64];
            comm.try_allreduce_sum_tree(&mut v, 90).unwrap();
            comm.close_joins();
            (comm.group().to_vec(), v[0])
        });
        for r in [0, 2, 3] {
            assert_eq!(out[r].0, vec![0, 2, 3], "rank {r} group");
            assert_eq!(out[r].1, 5.0, "rank {r} post-join sum"); // 0 + 2 + 3
        }
        assert!(out[1].1.is_nan());
    }
}
