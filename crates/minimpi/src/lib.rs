//! # minimpi — an in-process message-passing substrate
//!
//! The paper parallelizes its PIC code across processes with MPI, using a
//! single collective: an `MPI_ALLREDUCE` of the charge-density array each
//! time step (§V-A). Rust MPI bindings are thin and a supercomputer is not
//! available here, so this crate substitutes the smallest substrate that
//! exercises the same code path:
//!
//! * [`World::run`] spawns `nranks` OS threads, each receiving a [`Comm`]
//!   handle — the moral equivalent of `MPI_COMM_WORLD`;
//! * [`Comm`] provides `barrier`, `allreduce_sum` (flat and tree variants),
//!   point-to-point `send`/`recv`, `gather`, and per-rank communication-time
//!   accounting (the quantity Fig. 7 plots);
//! * [`cost::CostModel`] is a LogGP-style analytic model, calibrated from
//!   measured runs, used to extrapolate the weak/strong scaling of Figs. 7
//!   and 9 to core counts the host machine does not have.
//!
//! ## Example
//!
//! ```
//! use minimpi::World;
//!
//! let results = World::run(4, |comm| {
//!     let mine = vec![comm.rank() as f64; 8];
//!     let mut buf = mine.clone();
//!     comm.allreduce_sum(&mut buf);
//!     buf[0] // 0+1+2+3 = 6
//! });
//! assert!(results.iter().all(|&r| r == 6.0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::time::Instant;

/// A typed point-to-point message: payload of `f64`s plus a tag.
#[derive(Debug, Clone)]
struct Message {
    src: usize,
    tag: u64,
    data: Vec<f64>,
}

/// Shared state for one world.
struct Shared {
    nranks: usize,
    barrier: Barrier,
    /// Reduction scratch, guarded; sized lazily to the first allreduce.
    acc: Mutex<Vec<f64>>,
    /// Per-rank inbox sender handles (indexed by destination).
    inboxes: Vec<Sender<Message>>,
    /// Total communication time across ranks, in nanoseconds.
    comm_nanos: AtomicU64,
}

/// The world: spawns ranks and collects their results.
pub struct World;

impl World {
    /// Run `f` on `nranks` concurrent ranks and return their results in rank
    /// order. Panics in any rank propagate.
    ///
    /// # Panics
    /// Panics if `nranks == 0`.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        assert!(nranks > 0, "need at least one rank");
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            nranks,
            barrier: Barrier::new(nranks),
            acc: Mutex::new(Vec::new()),
            inboxes: senders,
            comm_nanos: AtomicU64::new(0),
        });

        let mut out: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let shared = Arc::clone(&shared);
                    let f = &f;
                    s.spawn(move || {
                        let mut comm = Comm {
                            rank,
                            shared,
                            inbox: rx,
                            stash: VecDeque::new(),
                            comm_time_ns: 0,
                        };
                        let r = f(&mut comm);
                        comm.shared
                            .comm_nanos
                            .fetch_add(comm.comm_time_ns, Ordering::Relaxed);
                        r
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rank panicked"));
            }
        });
        out.into_iter().map(|o| o.unwrap()).collect()
    }

    /// Like [`World::run`], additionally returning the mean per-rank
    /// communication time in seconds.
    pub fn run_timed<T, F>(nranks: usize, f: F) -> (Vec<T>, f64)
    where
        T: Send,
        F: Fn(&mut Comm) -> T + Send + Sync,
    {
        let mut senders = Vec::with_capacity(nranks);
        let mut receivers = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let (tx, rx) = unbounded();
            senders.push(tx);
            receivers.push(rx);
        }
        let shared = Arc::new(Shared {
            nranks,
            barrier: Barrier::new(nranks),
            acc: Mutex::new(Vec::new()),
            inboxes: senders,
            comm_nanos: AtomicU64::new(0),
        });
        let shared2 = Arc::clone(&shared);

        let mut out: Vec<Option<T>> = (0..nranks).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = receivers
                .into_iter()
                .enumerate()
                .map(|(rank, rx)| {
                    let shared = Arc::clone(&shared);
                    let f = &f;
                    s.spawn(move || {
                        let mut comm = Comm {
                            rank,
                            shared,
                            inbox: rx,
                            stash: VecDeque::new(),
                            comm_time_ns: 0,
                        };
                        let r = f(&mut comm);
                        comm.shared
                            .comm_nanos
                            .fetch_add(comm.comm_time_ns, Ordering::Relaxed);
                        r
                    })
                })
                .collect();
            for (slot, h) in out.iter_mut().zip(handles) {
                *slot = Some(h.join().expect("rank panicked"));
            }
        });
        let mean_comm =
            shared2.comm_nanos.load(Ordering::Relaxed) as f64 / 1e9 / nranks as f64;
        (out.into_iter().map(|o| o.unwrap()).collect(), mean_comm)
    }
}

/// Per-rank communicator handle.
pub struct Comm {
    rank: usize,
    shared: Arc<Shared>,
    inbox: Receiver<Message>,
    /// Messages received but not yet claimed (selective receive).
    stash: VecDeque<Message>,
    comm_time_ns: u64,
}

impl Comm {
    /// This rank's id in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.shared.nranks
    }

    /// Seconds this rank has spent inside communication calls.
    pub fn comm_time(&self) -> f64 {
        self.comm_time_ns as f64 / 1e9
    }

    /// Synchronize all ranks.
    pub fn barrier(&mut self) {
        let t = Instant::now();
        self.shared.barrier.wait();
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
    }

    /// Global sum-reduction of `buf` across all ranks; every rank ends with
    /// the total (the paper's `MPI_ALLREDUCE` on ρ). Flat shared-accumulator
    /// algorithm.
    ///
    /// # Panics
    /// Panics if ranks pass buffers of different lengths.
    pub fn allreduce_sum(&mut self, buf: &mut [f64]) {
        let t = Instant::now();
        {
            let mut acc = self.shared.acc.lock();
            if acc.len() != buf.len() {
                assert!(
                    acc.is_empty(),
                    "allreduce length mismatch: {} vs {}",
                    acc.len(),
                    buf.len()
                );
                acc.resize(buf.len(), 0.0);
            }
            for (a, &b) in acc.iter_mut().zip(buf.iter()) {
                *a += b;
            }
        }
        self.shared.barrier.wait();
        {
            let acc = self.shared.acc.lock();
            buf.copy_from_slice(&acc);
        }
        self.shared.barrier.wait();
        if self.rank == 0 {
            self.shared.acc.lock().clear();
        }
        self.shared.barrier.wait();
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
    }

    /// Tree (recursive-doubling) allreduce built on point-to-point messages —
    /// the algorithm real MPI uses, with `⌈log₂ P⌉` rounds. Works for any
    /// rank count (non-powers of two fold the remainder onto the main tree).
    pub fn allreduce_sum_tree(&mut self, buf: &mut [f64], tag: u64) {
        let t = Instant::now();
        let p = self.size();
        let pow2 = p.next_power_of_two() >> usize::from(!p.is_power_of_two());
        // `pow2` = largest power of two ≤ p.
        let r = self.rank;
        let extra = p - pow2;

        // Fold the surplus ranks onto their partners below pow2.
        if r >= pow2 {
            self.send(r - pow2, tag, buf);
            self.recv_into(r - pow2, tag + 1, buf);
        } else {
            if r < extra {
                let msg = self.recv(r + pow2, tag);
                for (b, m) in buf.iter_mut().zip(&msg) {
                    *b += m;
                }
            }
            // Recursive doubling among the pow2 ranks.
            let mut mask = 1usize;
            while mask < pow2 {
                let partner = r ^ mask;
                self.send(partner, tag + 2 + mask as u64, buf);
                let msg = self.recv(partner, tag + 2 + mask as u64);
                for (b, m) in buf.iter_mut().zip(&msg) {
                    *b += m;
                }
                mask <<= 1;
            }
            if r < extra {
                self.send(r + pow2, tag + 1, buf);
            }
        }
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
    }

    /// Rabenseifner allreduce (reduce-scatter + allgather) — the algorithm
    /// real MPI libraries pick for large payloads: each of the `⌈log₂P⌉`
    /// reduce-scatter rounds halves the exchanged data, so total traffic is
    /// `2·n·(P−1)/P` instead of the tree's `2·n·log₂P`. Requires a
    /// power-of-two rank count (callers fall back to
    /// [`allreduce_sum_tree`](Self::allreduce_sum_tree) otherwise).
    pub fn allreduce_sum_rabenseifner(&mut self, buf: &mut [f64], tag: u64) {
        let p = self.size();
        if p == 1 {
            return;
        }
        if !p.is_power_of_two() || buf.len() < p {
            return self.allreduce_sum_tree(buf, tag);
        }
        let t = Instant::now();
        let r = self.rank;
        let n = buf.len();
        // Block boundaries: block b = [starts[b], starts[b+1]).
        let starts: Vec<usize> = (0..=p).map(|b| b * n / p).collect();

        // Reduce-scatter by recursive halving: after round k, this rank
        // holds the partial sum of a 2^{k+1}-rank group on a 1/2^{k+1}
        // slice of the buffer.
        let mut group = p; // current group size
        let mut lo = 0usize; // current block range [lo, hi) owned
        let mut hi = p;
        let mut round = 0u64;
        while group > 1 {
            let half = group / 2;
            let partner = r ^ half;
            let mid = lo + (hi - lo) / 2;
            // Lower half of the group keeps [lo, mid), sends [mid, hi).
            let (keep_lo, keep_hi, send_lo, send_hi) = if (r & half) == 0 {
                (lo, mid, mid, hi)
            } else {
                (mid, hi, lo, mid)
            };
            let send_slice = &buf[starts[send_lo]..starts[send_hi]];
            self.send(partner, tag + 2 * round, send_slice);
            let recv = self.recv(partner, tag + 2 * round);
            let dst = &mut buf[starts[keep_lo]..starts[keep_hi]];
            assert_eq!(recv.len(), dst.len());
            for (d, s) in dst.iter_mut().zip(&recv) {
                *d += s;
            }
            lo = keep_lo;
            hi = keep_hi;
            group = half;
            round += 1;
        }

        // Allgather by recursive doubling: mirror the halving.
        let mut group = 2usize;
        while group <= p {
            let half = group / 2;
            let partner = r ^ half;
            // This rank owns [lo, hi); the partner owns the sibling range.
            let width = hi - lo;
            let (plo, phi) = if (r & half) == 0 {
                (lo + width, hi + width)
            } else {
                (lo - width, hi - width)
            };
            let own = &buf[starts[lo]..starts[hi]];
            self.send(partner, tag + 1000 + 2 * round, own);
            let recv = self.recv(partner, tag + 1000 + 2 * round);
            let dst = &mut buf[starts[plo]..starts[phi]];
            assert_eq!(recv.len(), dst.len());
            dst.copy_from_slice(&recv);
            lo = lo.min(plo);
            hi = hi.max(phi);
            group *= 2;
            round += 1;
        }
        debug_assert_eq!((lo, hi), (0, p));
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
    }

    /// Send a copy of `data` to `dst` with `tag`.
    ///
    /// # Panics
    /// Panics if `dst` is out of range.
    pub fn send(&mut self, dst: usize, tag: u64, data: &[f64]) {
        let t = Instant::now();
        self.shared.inboxes[dst]
            .send(Message {
                src: self.rank,
                tag,
                data: data.to_vec(),
            })
            .expect("receiver hung up");
        self.comm_time_ns += t.elapsed().as_nanos() as u64;
    }

    /// Blocking selective receive from `src` with `tag`.
    pub fn recv(&mut self, src: usize, tag: u64) -> Vec<f64> {
        let t = Instant::now();
        // Check the stash first.
        if let Some(pos) = self
            .stash
            .iter()
            .position(|m| m.src == src && m.tag == tag)
        {
            let m = self.stash.remove(pos).unwrap();
            self.comm_time_ns += t.elapsed().as_nanos() as u64;
            return m.data;
        }
        loop {
            let m = self.inbox.recv().expect("world torn down");
            if m.src == src && m.tag == tag {
                self.comm_time_ns += t.elapsed().as_nanos() as u64;
                return m.data;
            }
            self.stash.push_back(m);
        }
    }

    /// Like [`recv`](Self::recv) but into an existing buffer.
    ///
    /// # Panics
    /// Panics if lengths differ.
    pub fn recv_into(&mut self, src: usize, tag: u64, buf: &mut [f64]) {
        let data = self.recv(src, tag);
        assert_eq!(data.len(), buf.len());
        buf.copy_from_slice(&data);
    }

    /// Gather each rank's `data` on rank 0 (others get `None`).
    pub fn gather(&mut self, data: &[f64], tag: u64) -> Option<Vec<Vec<f64>>> {
        if self.rank == 0 {
            let mut all = vec![Vec::new(); self.size()];
            all[0] = data.to_vec();
            for src in 1..self.size() {
                all[src] = self.recv(src, tag);
            }
            Some(all)
        } else {
            self.send(0, tag, data);
            None
        }
    }

    /// Broadcast rank 0's `buf` to everyone.
    pub fn broadcast(&mut self, buf: &mut [f64], tag: u64) {
        if self.rank == 0 {
            for dst in 1..self.size() {
                let data: Vec<f64> = buf.to_vec();
                self.send(dst, tag, &data);
            }
        } else {
            self.recv_into(0, tag, buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let r = World::run(1, |comm| {
            let mut v = vec![5.0];
            comm.allreduce_sum(&mut v);
            comm.allreduce_sum_tree(&mut v, 100);
            v[0]
        });
        assert_eq!(r, vec![5.0]);
    }

    #[test]
    fn flat_allreduce_sums() {
        for nranks in [2usize, 3, 4, 7, 8] {
            let results = World::run(nranks, |comm| {
                let mut v: Vec<f64> = (0..16).map(|i| (comm.rank() * 16 + i) as f64).collect();
                comm.allreduce_sum(&mut v);
                v
            });
            for i in 0..16 {
                let expect: f64 = (0..nranks).map(|r| (r * 16 + i) as f64).sum();
                for r in &results {
                    assert_eq!(r[i], expect, "nranks={nranks} i={i}");
                }
            }
        }
    }

    #[test]
    fn tree_allreduce_sums() {
        for nranks in [2usize, 3, 4, 5, 8, 13, 16] {
            let results = World::run(nranks, |comm| {
                let mut v: Vec<f64> = (0..8).map(|i| (comm.rank() + i) as f64).collect();
                comm.allreduce_sum_tree(&mut v, 0);
                v
            });
            for i in 0..8 {
                let expect: f64 = (0..nranks).map(|r| (r + i) as f64).sum();
                for (rank, r) in results.iter().enumerate() {
                    assert_eq!(r[i], expect, "nranks={nranks} rank={rank} i={i}");
                }
            }
        }
    }

    #[test]
    fn repeated_allreduce_rounds() {
        // The PIC loop calls allreduce every iteration — state must reset.
        let results = World::run(4, |comm| {
            let mut total = 0.0;
            for step in 0..10u64 {
                let mut v = vec![1.0 + step as f64];
                comm.allreduce_sum(&mut v);
                total += v[0];
            }
            total
        });
        let expect: f64 = (0..10).map(|s| 4.0 * (1.0 + s as f64)).sum();
        assert!(results.iter().all(|&r| r == expect));
    }

    #[test]
    fn mixed_tree_and_flat() {
        let results = World::run(6, |comm| {
            let mut a = vec![comm.rank() as f64];
            comm.allreduce_sum(&mut a);
            let mut b = vec![1.0];
            comm.allreduce_sum_tree(&mut b, 50);
            (a[0], b[0])
        });
        for (a, b) in results {
            assert_eq!(a, 15.0);
            assert_eq!(b, 6.0);
        }
    }

    #[test]
    fn rabenseifner_allreduce_sums() {
        for nranks in [2usize, 4, 8] {
            let results = World::run(nranks, |comm| {
                let mut v: Vec<f64> = (0..32).map(|i| (comm.rank() * 32 + i) as f64).collect();
                comm.allreduce_sum_rabenseifner(&mut v, 0);
                v
            });
            for i in 0..32 {
                let expect: f64 = (0..nranks).map(|r| (r * 32 + i) as f64).sum();
                for (rank, r) in results.iter().enumerate() {
                    assert_eq!(r[i], expect, "nranks={nranks} rank={rank} i={i}");
                }
            }
        }
    }

    #[test]
    fn rabenseifner_falls_back_for_odd_ranks() {
        let results = World::run(3, |comm| {
            let mut v = vec![1.0; 16];
            comm.allreduce_sum_rabenseifner(&mut v, 0);
            v[0]
        });
        assert!(results.iter().all(|&r| r == 3.0));
    }

    #[test]
    fn rabenseifner_falls_back_for_small_payload() {
        // Payload shorter than the rank count cannot be block-scattered.
        let results = World::run(4, |comm| {
            let mut v = vec![comm.rank() as f64; 2];
            comm.allreduce_sum_rabenseifner(&mut v, 0);
            v[0]
        });
        assert!(results.iter().all(|&r| r == 6.0));
    }

    #[test]
    fn rabenseifner_repeated_rounds() {
        let results = World::run(4, |comm| {
            let mut total = 0.0;
            for step in 0..5u64 {
                let mut v = vec![1.0 + step as f64; 64];
                comm.allreduce_sum_rabenseifner(&mut v, step * 10_000);
                total += v[33];
            }
            total
        });
        let expect: f64 = (0..5).map(|s| 4.0 * (1.0 + s as f64)).sum();
        assert!(results.iter().all(|&r| r == expect));
    }

    #[test]
    fn rabenseifner_uneven_blocks() {
        // Payload not divisible by rank count: blocks differ in size.
        let results = World::run(4, |comm| {
            let mut v: Vec<f64> = (0..13).map(|i| (comm.rank() + i) as f64).collect();
            comm.allreduce_sum_rabenseifner(&mut v, 0);
            v
        });
        for i in 0..13 {
            let expect: f64 = (0..4).map(|r| (r + i) as f64).sum();
            for r in &results {
                assert_eq!(r[i], expect, "i={i}");
            }
        }
    }

    #[test]
    fn point_to_point_roundtrip() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(1, 7, &[1.0, 2.0, 3.0]);
                comm.recv(1, 8)
            } else {
                let got = comm.recv(0, 7);
                let doubled: Vec<f64> = got.iter().map(|x| x * 2.0).collect();
                comm.send(0, 8, &doubled);
                got
            }
        });
        assert_eq!(results[0], vec![2.0, 4.0, 6.0]);
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn selective_receive_out_of_order() {
        let results = World::run(2, |comm| {
            if comm.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                comm.send(1, 2, &[20.0]);
                comm.send(1, 1, &[10.0]);
                vec![0.0]
            } else {
                let first = comm.recv(0, 1);
                let second = comm.recv(0, 2);
                vec![first[0], second[0]]
            }
        });
        assert_eq!(results[1], vec![10.0, 20.0]);
    }

    #[test]
    fn gather_collects_on_root() {
        let results = World::run(3, |comm| comm.gather(&[comm.rank() as f64], 9));
        let root = results[0].as_ref().unwrap();
        assert_eq!(root.len(), 3);
        for (r, v) in root.iter().enumerate() {
            assert_eq!(v[0], r as f64);
        }
        assert!(results[1].is_none());
        assert!(results[2].is_none());
    }

    #[test]
    fn broadcast_distributes() {
        let results = World::run(4, |comm| {
            let mut v = if comm.rank() == 0 {
                vec![3.25, -1.0]
            } else {
                vec![0.0, 0.0]
            };
            comm.broadcast(&mut v, 11);
            v
        });
        for r in results {
            assert_eq!(r, vec![3.25, -1.0]);
        }
    }

    #[test]
    fn comm_time_is_tracked() {
        let (_, mean_comm) = World::run_timed(4, |comm| {
            let mut v = vec![0.0; 1024];
            for _ in 0..50 {
                comm.allreduce_sum(&mut v);
            }
            comm.comm_time()
        });
        assert!(mean_comm > 0.0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        World::run(8, |comm| {
            counter.fetch_add(1, Ordering::SeqCst);
            comm.barrier();
            // After the barrier every rank must see all 8 increments.
            assert_eq!(counter.load(Ordering::SeqCst), 8);
        });
    }
}
