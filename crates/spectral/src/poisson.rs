//! Spectral solver for the periodic Poisson equation of the Vlasov–Poisson
//! system:
//!
//! ```text
//! −Δφ = ρ / ε₀        E = −∇φ
//! ```
//!
//! on a uniform `nx × ny` Cartesian grid over `[0, Lx) × [0, Ly)` with
//! periodic boundary conditions and normalized units (ε₀ = 1, the standard
//! choice for the Landau test cases of the paper).
//!
//! In Fourier space `φ̂_k = ρ̂_k / |k|²` and `Ê_k = −i k φ̂_k`. The `k = 0`
//! mode of ρ (the mean charge) is projected out: a periodic system must be
//! globally neutral, and PIC codes enforce this by subtracting the uniform
//! ion background — dropping the zero mode is exactly that subtraction.

use crate::fft::{Fft2Plan, RowExecutor};
use crate::{Complex64, SpectralError};

/// The signed angular wavenumbers of an `n`-point periodic axis of extent
/// `l`: `2π · s(i) / l` with `s(i) = i` for `i ≤ n/2` and `i − n` above —
/// the frequency convention of every solver in this crate, exposed so
/// distributed solvers scale spectral coefficients with bit-identical
/// values.
pub fn wavenumbers(n: usize, l: f64) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let s = if i <= n / 2 {
                i as f64
            } else {
                i as f64 - n as f64
            };
            2.0 * std::f64::consts::PI * s / l
        })
        .collect()
}

/// Reusable buffers for [`PoissonSolver2D::solve_e_with`]: the spectral
/// workspaces that [`PoissonSolver2D::solve_e`] allocates on every call.
/// Own one per simulation and the per-step field solve allocates nothing.
#[derive(Debug, Default, Clone)]
pub struct SolveScratch {
    hat: Vec<Complex64>,
    hx: Vec<Complex64>,
    hy: Vec<Complex64>,
    colbuf: Vec<Complex64>,
    /// Transpose buffer for the pool-parallel transform passes
    /// ([`PoissonSolver2D::solve_e_pooled`]); grown lazily like the rest.
    tbuf: Vec<Complex64>,
}

impl SolveScratch {
    /// An empty scratch; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    fn ensure(&mut self, n: usize, nx: usize) {
        if self.hat.len() < n {
            self.hat.resize(n, Complex64::ZERO);
            self.hx.resize(n, Complex64::ZERO);
            self.hy.resize(n, Complex64::ZERO);
        }
        if self.colbuf.len() < nx {
            self.colbuf.resize(nx, Complex64::ZERO);
        }
    }

    fn ensure_tbuf(&mut self, n: usize) {
        if self.tbuf.len() < n {
            self.tbuf.resize(n, Complex64::ZERO);
        }
    }
}

/// A reusable spectral Poisson solver for a fixed grid.
#[derive(Debug, Clone)]
pub struct PoissonSolver2D {
    nx: usize,
    ny: usize,
    lx: f64,
    ly: f64,
    plan: Fft2Plan,
    /// Signed wavenumbers along x: `kx[ix] = 2π·freq(ix)/Lx`.
    kx: Vec<f64>,
    /// Signed wavenumbers along y.
    ky: Vec<f64>,
}

impl PoissonSolver2D {
    /// Create a solver for an `nx × ny` power-of-two grid over `Lx × Ly`.
    pub fn new(nx: usize, ny: usize, lx: f64, ly: f64) -> Result<Self, SpectralError> {
        if nx == 0 || ny == 0 {
            return Err(SpectralError::ZeroDimension);
        }
        if lx.is_nan() || lx <= 0.0 {
            return Err(SpectralError::BadExtent { extent: lx });
        }
        if ly.is_nan() || ly <= 0.0 {
            return Err(SpectralError::BadExtent { extent: ly });
        }
        let plan = Fft2Plan::new(nx, ny)?;
        let kx = wavenumbers(nx, lx);
        let ky = wavenumbers(ny, ly);
        Ok(Self {
            nx,
            ny,
            lx,
            ly,
            plan,
            kx,
            ky,
        })
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// Physical extent along x.
    pub fn lx(&self) -> f64 {
        self.lx
    }

    /// Physical extent along y.
    pub fn ly(&self) -> f64 {
        self.ly
    }

    /// Signed wavenumbers along x (`kx[ix] = 2π·s(ix)/Lx`).
    pub fn kx(&self) -> &[f64] {
        &self.kx
    }

    /// Signed wavenumbers along y.
    pub fn ky(&self) -> &[f64] {
        &self.ky
    }

    /// Solve for the potential: given `rho` (row-major, `rho[ix*ny + iy]`),
    /// write φ into `phi`. The mean of φ is zero.
    ///
    /// # Panics
    /// Panics if slice lengths differ from `nx * ny`.
    pub fn solve_phi(&self, rho: &[f64], phi: &mut [f64]) {
        let n = self.nx * self.ny;
        assert_eq!(rho.len(), n);
        assert_eq!(phi.len(), n);
        let mut hat: Vec<Complex64> = rho.iter().map(|&r| Complex64::from_re(r)).collect();
        self.plan.forward(&mut hat);
        for ix in 0..self.nx {
            for iy in 0..self.ny {
                let k2 = self.kx[ix] * self.kx[ix] + self.ky[iy] * self.ky[iy];
                let idx = ix * self.ny + iy;
                hat[idx] = if k2 == 0.0 {
                    Complex64::ZERO
                } else {
                    hat[idx] / k2
                };
            }
        }
        self.plan.inverse(&mut hat);
        for (p, h) in phi.iter_mut().zip(&hat) {
            *p = h.re;
        }
    }

    /// Solve directly for the electric field `E = −∇φ` with `−Δφ = ρ`.
    ///
    /// One forward transform and two inverse transforms; `Ê = −ik ρ̂ / |k|²`.
    ///
    /// # Panics
    /// Panics if slice lengths differ from `nx * ny`.
    pub fn solve_e(&self, rho: &[f64], ex: &mut [f64], ey: &mut [f64]) {
        let mut scratch = SolveScratch::new();
        self.solve_e_with(rho, ex, ey, &mut scratch);
    }

    /// [`solve_e`](Self::solve_e) with caller-owned spectral workspaces:
    /// allocation-free once `scratch` has grown to the grid size.
    ///
    /// # Panics
    /// Panics if slice lengths differ from `nx * ny`.
    pub fn solve_e_with(
        &self,
        rho: &[f64],
        ex: &mut [f64],
        ey: &mut [f64],
        scratch: &mut SolveScratch,
    ) {
        let n = self.nx * self.ny;
        assert_eq!(rho.len(), n);
        assert_eq!(ex.len(), n);
        assert_eq!(ey.len(), n);
        scratch.ensure(n, self.nx);
        let hat = &mut scratch.hat[..n];
        let hx = &mut scratch.hx[..n];
        let hy = &mut scratch.hy[..n];
        let colbuf = &mut scratch.colbuf[..self.nx];
        for (h, &r) in hat.iter_mut().zip(rho) {
            *h = Complex64::from_re(r);
        }
        self.plan.forward_with(hat, colbuf);
        self.scale_spectral(hat, hx, hy);
        self.plan.inverse_with(hx, colbuf);
        self.plan.inverse_with(hy, colbuf);
        for i in 0..n {
            ex[i] = hx[i].re;
            ey[i] = hy[i].re;
        }
    }

    /// [`solve_e_with`](Self::solve_e_with) with the transform passes run
    /// on `exec` (a thread pool in the simulation hot path): row batches
    /// striped across workers, column passes on contiguous rows of a tiled
    /// transpose. Bit-exact with the sequential path — every 1-D transform
    /// and every spectral scale performs the identical operation sequence —
    /// and allocation-free once `scratch` has grown to the grid size.
    ///
    /// # Panics
    /// Panics if slice lengths differ from `nx * ny`.
    pub fn solve_e_pooled(
        &self,
        rho: &[f64],
        ex: &mut [f64],
        ey: &mut [f64],
        scratch: &mut SolveScratch,
        exec: &dyn RowExecutor,
    ) {
        let n = self.nx * self.ny;
        assert_eq!(rho.len(), n);
        assert_eq!(ex.len(), n);
        assert_eq!(ey.len(), n);
        scratch.ensure(n, self.nx);
        scratch.ensure_tbuf(n);
        let hat = &mut scratch.hat[..n];
        let hx = &mut scratch.hx[..n];
        let hy = &mut scratch.hy[..n];
        let tbuf = &mut scratch.tbuf[..n];
        for (h, &r) in hat.iter_mut().zip(rho) {
            *h = Complex64::from_re(r);
        }
        self.plan.forward_par(hat, tbuf, exec);
        self.scale_spectral(hat, hx, hy);
        self.plan.inverse_par(hx, tbuf, exec);
        self.plan.inverse_par(hy, tbuf, exec);
        for i in 0..n {
            ex[i] = hx[i].re;
            ey[i] = hy[i].re;
        }
    }

    /// The per-mode scale `Ê = −ik ρ̂ / |k|²` (zero mode projected out),
    /// shared by every solve path so they stay bit-identical.
    fn scale_spectral(&self, hat: &[Complex64], hx: &mut [Complex64], hy: &mut [Complex64]) {
        for ix in 0..self.nx {
            for iy in 0..self.ny {
                let kx = self.kx[ix];
                let ky = self.ky[iy];
                let k2 = kx * kx + ky * ky;
                let idx = ix * self.ny + iy;
                if k2 != 0.0 {
                    // Ê = −ik · ρ̂/k²  (φ̂ = ρ̂/k², Ê = −ik φ̂).
                    let phi_hat = hat[idx] / k2;
                    hx[idx] = -phi_hat.mul_i().scale(kx);
                    hy[idx] = -phi_hat.mul_i().scale(ky);
                } else {
                    hx[idx] = Complex64::ZERO;
                    hy[idx] = Complex64::ZERO;
                }
            }
        }
    }

    /// The electrostatic field energy `½ ∫ |E|² dx dy` approximated on the
    /// grid — the diagnostic the paper's Landau-damping validation tracks.
    pub fn field_energy(&self, ex: &[f64], ey: &[f64]) -> f64 {
        let cell = (self.lx / self.nx as f64) * (self.ly / self.ny as f64);
        0.5 * cell * ex.iter().zip(ey).map(|(&x, &y)| x * x + y * y).sum::<f64>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn grid_fn(nx: usize, ny: usize, lx: f64, ly: f64, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let (dx, dy) = (lx / nx as f64, ly / ny as f64);
        (0..nx * ny)
            .map(|i| {
                let (ix, iy) = (i / ny, i % ny);
                f(ix as f64 * dx, iy as f64 * dy)
            })
            .collect()
    }

    #[test]
    fn single_mode_phi() {
        // ρ = cos(x) on [0,2π)² ⇒ φ = cos(x) (since −Δcos = cos).
        let n = 64;
        let s = PoissonSolver2D::new(n, n, 2.0 * PI, 2.0 * PI).unwrap();
        let rho = grid_fn(n, n, 2.0 * PI, 2.0 * PI, |x, _| x.cos());
        let mut phi = vec![0.0; n * n];
        s.solve_phi(&rho, &mut phi);
        let expect = grid_fn(n, n, 2.0 * PI, 2.0 * PI, |x, _| x.cos());
        for i in 0..n * n {
            assert!((phi[i] - expect[i]).abs() < 1e-10, "i={i}");
        }
    }

    #[test]
    fn single_mode_field() {
        // ρ = cos(x) ⇒ E_x = −∂φ/∂x = sin(x), E_y = 0.
        let n = 64;
        let s = PoissonSolver2D::new(n, n, 2.0 * PI, 2.0 * PI).unwrap();
        let rho = grid_fn(n, n, 2.0 * PI, 2.0 * PI, |x, _| x.cos());
        let (mut ex, mut ey) = (vec![0.0; n * n], vec![0.0; n * n]);
        s.solve_e(&rho, &mut ex, &mut ey);
        let expect = grid_fn(n, n, 2.0 * PI, 2.0 * PI, |x, _| x.sin());
        for i in 0..n * n {
            assert!((ex[i] - expect[i]).abs() < 1e-10, "i={i}");
            assert!(ey[i].abs() < 1e-10);
        }
    }

    #[test]
    fn mixed_mode_manufactured() {
        // φ = sin(2x)cos(3y) on [0,2π)² ⇒ ρ = −Δφ = 13 φ, E = −∇φ.
        let n = 128;
        let l = 2.0 * PI;
        let s = PoissonSolver2D::new(n, n, l, l).unwrap();
        let rho = grid_fn(n, n, l, l, |x, y| 13.0 * (2.0 * x).sin() * (3.0 * y).cos());
        let (mut ex, mut ey) = (vec![0.0; n * n], vec![0.0; n * n]);
        s.solve_e(&rho, &mut ex, &mut ey);
        let eex = grid_fn(n, n, l, l, |x, y| -2.0 * (2.0 * x).cos() * (3.0 * y).cos());
        let eey = grid_fn(n, n, l, l, |x, y| 3.0 * (2.0 * x).sin() * (3.0 * y).sin());
        for i in 0..n * n {
            assert!((ex[i] - eex[i]).abs() < 1e-9, "ex i={i}");
            assert!((ey[i] - eey[i]).abs() < 1e-9, "ey i={i}");
        }
    }

    #[test]
    fn non_square_domain() {
        // Landau grids use L = 2π/k with k = 0.5 ⇒ L = 4π; check a 4π × 2π box.
        let (nx, ny) = (64, 32);
        let (lx, ly) = (4.0 * PI, 2.0 * PI);
        let s = PoissonSolver2D::new(nx, ny, lx, ly).unwrap();
        // ρ = cos(kx·x) with kx = 2π/Lx = 0.5 ⇒ φ = ρ/kx², E_x = sin(kx x)/kx.
        let kx = 2.0 * PI / lx;
        let rho = grid_fn(nx, ny, lx, ly, |x, _| (kx * x).cos());
        let (mut ex, mut ey) = (vec![0.0; nx * ny], vec![0.0; nx * ny]);
        s.solve_e(&rho, &mut ex, &mut ey);
        let expect = grid_fn(nx, ny, lx, ly, |x, _| (kx * x).sin() / kx);
        for i in 0..nx * ny {
            assert!((ex[i] - expect[i]).abs() < 1e-10, "i={i}");
            assert!(ey[i].abs() < 1e-10);
        }
    }

    #[test]
    fn zero_mode_projected_out() {
        // A uniform ρ produces no field (neutralizing background).
        let n = 16;
        let s = PoissonSolver2D::new(n, n, 1.0, 1.0).unwrap();
        let rho = vec![3.7; n * n];
        let (mut ex, mut ey) = (vec![1.0; n * n], vec![1.0; n * n]);
        s.solve_e(&rho, &mut ex, &mut ey);
        assert!(ex.iter().chain(&ey).all(|&v| v.abs() < 1e-12));
        let mut phi = vec![0.0; n * n];
        s.solve_phi(&rho, &mut phi);
        assert!(phi.iter().all(|&v| v.abs() < 1e-12));
    }

    #[test]
    fn phi_has_zero_mean() {
        let n = 32;
        let s = PoissonSolver2D::new(n, n, 2.0 * PI, 2.0 * PI).unwrap();
        let rho = grid_fn(n, n, 2.0 * PI, 2.0 * PI, |x, y| {
            (x).cos() + 0.3 * (2.0 * y).sin() + 5.0
        });
        let mut phi = vec![0.0; n * n];
        s.solve_phi(&rho, &mut phi);
        let mean: f64 = phi.iter().sum::<f64>() / (n * n) as f64;
        assert!(mean.abs() < 1e-12);
    }

    #[test]
    fn field_energy_of_plane_wave() {
        // E_x = sin(x), E_y = 0 on [0,2π)²: ½∫sin² = ½·(2π)²/2 = π².
        let n = 64;
        let l = 2.0 * PI;
        let s = PoissonSolver2D::new(n, n, l, l).unwrap();
        let ex = grid_fn(n, n, l, l, |x, _| x.sin());
        let ey = vec![0.0; n * n];
        let e = s.field_energy(&ex, &ey);
        assert!((e - PI * PI).abs() < 1e-8, "energy {e}");
    }

    #[test]
    fn pooled_solve_bit_exact_with_sequential() {
        use crate::fft::SerialExec;
        for (nx, ny) in [(16usize, 16usize), (32, 16), (8, 64)] {
            let s = PoissonSolver2D::new(nx, ny, 2.0 * PI, 4.0 * PI).unwrap();
            let rho = grid_fn(nx, ny, 2.0 * PI, 4.0 * PI, |x, y| {
                (x).cos() * (0.5 * y).sin() + 0.25 * (2.0 * x).sin()
            });
            let n = nx * ny;
            let (mut ex_s, mut ey_s) = (vec![0.0; n], vec![0.0; n]);
            let mut scratch = SolveScratch::new();
            s.solve_e_with(&rho, &mut ex_s, &mut ey_s, &mut scratch);
            let (mut ex_p, mut ey_p) = (vec![0.0; n], vec![0.0; n]);
            s.solve_e_pooled(&rho, &mut ex_p, &mut ey_p, &mut scratch, &SerialExec);
            for i in 0..n {
                assert_eq!(ex_s[i].to_bits(), ex_p[i].to_bits(), "ex {nx}x{ny} i={i}");
                assert_eq!(ey_s[i].to_bits(), ey_p[i].to_bits(), "ey {nx}x{ny} i={i}");
            }
        }
    }

    #[test]
    fn wavenumber_convention_matches_solver() {
        let s = PoissonSolver2D::new(8, 16, 1.0, 3.0).unwrap();
        assert_eq!(s.kx(), wavenumbers(8, 1.0).as_slice());
        assert_eq!(s.ky(), wavenumbers(16, 3.0).as_slice());
        assert!(wavenumbers(8, 1.0)[5] < 0.0, "upper half is negative");
    }

    #[test]
    fn bad_arguments_rejected() {
        assert!(PoissonSolver2D::new(0, 8, 1.0, 1.0).is_err());
        assert!(PoissonSolver2D::new(8, 8, -1.0, 1.0).is_err());
        assert!(PoissonSolver2D::new(8, 8, 1.0, f64::NAN).is_err());
        assert!(PoissonSolver2D::new(12, 8, 1.0, 1.0).is_err());
    }
}
