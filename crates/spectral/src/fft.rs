//! Iterative radix-2 Cooley–Tukey FFT, 1-D and 2-D.
//!
//! The PIC grids in the paper are powers of two (128×128, 256×256), so a
//! radix-2 transform covers every configuration the solver sees. Twiddle
//! factors are precomputed once per [`FftPlan`] — the pattern FFTW calls a
//! *plan* — because the Poisson solve runs every time step.

use crate::{Complex64, SpectralError};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `X_k = Σ x_n e^{−2πi nk/N}` (no normalization).
    Forward,
    /// `x_n = Σ X_k e^{+2πi nk/N}` (normalized by `1/N` in [`FftPlan::inverse`]).
    Inverse,
}

/// A reusable 1-D FFT plan for a fixed power-of-two length.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
    /// Forward twiddles, grouped per butterfly stage: for stage with
    /// half-block `m`, the `m` factors `e^{−2πi j/(2m)}`, j = 0..m, packed
    /// consecutively (stages m = 1, 2, 4, …, n/2).
    twiddles: Vec<Complex64>,
}

impl FftPlan {
    /// Create a plan for length `n` (must be a power of two ≥ 1).
    pub fn new(n: usize) -> Result<Self, SpectralError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(SpectralError::NotPowerOfTwo { len: n });
        }
        let log2n = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 0..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (log2n.max(1) - 1));
        }
        if log2n == 0 {
            rev[0] = 0;
        }
        // Total twiddle count: 1 + 2 + 4 + … + n/2 = n − 1.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut m = 1usize;
        while m < n {
            let step = -std::f64::consts::PI / m as f64;
            for j in 0..m {
                twiddles.push(Complex64::cis(step * j as f64));
            }
            m <<= 1;
        }
        Ok(Self { n, rev, twiddles })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the plan length is 1 (the transform is the identity).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// In-place forward transform (no normalization).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT length mismatch");
        self.transform(data, false);
    }

    /// In-place inverse transform, normalized by `1/N`.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT length mismatch");
        self.transform(data, true);
        let inv = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }

    fn transform(&self, data: &mut [Complex64], invert: bool) {
        let n = self.n;
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies, stage by stage, twiddles read off the packed table.
        let mut m = 1usize;
        let mut toff = 0usize;
        while m < n {
            let tw = &self.twiddles[toff..toff + m];
            let mut k = 0;
            while k < n {
                for j in 0..m {
                    let w = if invert { tw[j].conj() } else { tw[j] };
                    let u = data[k + j];
                    let t = w * data[k + j + m];
                    data[k + j] = u + t;
                    data[k + j + m] = u - t;
                }
                k += 2 * m;
            }
            toff += m;
            m <<= 1;
        }
    }
}

/// A reusable 2-D FFT plan (row–column algorithm) for an `nx × ny` grid
/// stored row-major (`data[ix * ny + iy]`).
#[derive(Debug, Clone)]
pub struct Fft2Plan {
    nx: usize,
    ny: usize,
    row: FftPlan,
    col: FftPlan,
}

impl Fft2Plan {
    /// Create a plan for an `nx × ny` grid (both powers of two).
    pub fn new(nx: usize, ny: usize) -> Result<Self, SpectralError> {
        if nx == 0 || ny == 0 {
            return Err(SpectralError::ZeroDimension);
        }
        Ok(Self {
            nx,
            ny,
            row: FftPlan::new(ny)?,
            col: FftPlan::new(nx)?,
        })
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// In-place 2-D forward transform.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny`.
    pub fn forward(&self, data: &mut [Complex64]) {
        let mut colbuf = vec![Complex64::ZERO; self.nx];
        self.forward_with(data, &mut colbuf);
    }

    /// In-place 2-D inverse transform (normalized by `1/(nx·ny)`).
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        let mut colbuf = vec![Complex64::ZERO; self.nx];
        self.inverse_with(data, &mut colbuf);
    }

    /// [`forward`](Self::forward) with a caller-owned column buffer of
    /// `nx` entries — the allocation-free form for per-step solves.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny` or `colbuf.len() != nx`.
    pub fn forward_with(&self, data: &mut [Complex64], colbuf: &mut [Complex64]) {
        self.transform2(data, Direction::Forward, colbuf);
    }

    /// [`inverse`](Self::inverse) with a caller-owned column buffer of
    /// `nx` entries.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny` or `colbuf.len() != nx`.
    pub fn inverse_with(&self, data: &mut [Complex64], colbuf: &mut [Complex64]) {
        self.transform2(data, Direction::Inverse, colbuf);
    }

    fn transform2(&self, data: &mut [Complex64], dir: Direction, colbuf: &mut [Complex64]) {
        assert_eq!(data.len(), self.nx * self.ny, "2-D FFT size mismatch");
        assert_eq!(colbuf.len(), self.nx, "2-D FFT column buffer mismatch");
        // Rows (contiguous).
        for r in data.chunks_exact_mut(self.ny) {
            match dir {
                Direction::Forward => self.row.forward(r),
                Direction::Inverse => self.row.inverse(r),
            }
        }
        // Columns: gather → transform → scatter, one column buffer at a time.
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                colbuf[ix] = data[ix * self.ny + iy];
            }
            match dir {
                Direction::Forward => self.col.forward(colbuf),
                Direction::Inverse => self.col.inverse(colbuf),
            }
            for ix in 0..self.nx {
                data[ix * self.ny + iy] = colbuf[ix];
            }
        }
    }
}

/// Naive `O(N²)` DFT, used as the test oracle.
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let theta = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc += x * Complex64::cis(theta);
        }
        *o = if matches!(dir, Direction::Inverse) {
            acc / n as f64
        } else {
            acc
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Tiny xorshift so the tests stay dependency-free and deterministic.
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut d = [Complex64::new(3.5, -1.0)];
        plan.forward(&mut d);
        assert_eq!(d[0], Complex64::new(3.5, -1.0));
        plan.inverse(&mut d);
        assert_eq!(d[0], Complex64::new(3.5, -1.0));
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let plan = FftPlan::new(n).unwrap();
            let sig = rand_signal(n, 42 + n as u64);
            let mut fast = sig.clone();
            plan.forward(&mut fast);
            let slow = dft_naive(&sig, Direction::Forward);
            for k in 0..n {
                assert!(
                    close(fast[k], slow[k], 1e-9 * n as f64),
                    "n={n} k={k}: {:?} vs {:?}",
                    fast[k],
                    slow[k]
                );
            }
        }
    }

    #[test]
    fn roundtrip_restores_signal() {
        for n in [2usize, 8, 128, 1024] {
            let plan = FftPlan::new(n).unwrap();
            let sig = rand_signal(n, 7);
            let mut d = sig.clone();
            plan.forward(&mut d);
            plan.inverse(&mut d);
            for k in 0..n {
                assert!(close(d[k], sig[k], 1e-12), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn parseval() {
        let n = 512;
        let plan = FftPlan::new(n).unwrap();
        let sig = rand_signal(n, 99);
        let time_energy: f64 = sig.iter().map(|z| z.norm_sqr()).sum();
        let mut d = sig;
        plan.forward(&mut d);
        let freq_energy: f64 = d.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let a = rand_signal(n, 1);
        let b = rand_signal(n, 2);
        let mut sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y.scale(2.5)).collect();
        plan.forward(&mut sum);
        let mut fa = a;
        let mut fb = b;
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        for k in 0..n {
            assert!(close(sum[k], fa[k] + fb[k].scale(2.5), 1e-10));
        }
    }

    #[test]
    fn pure_tone_lands_in_single_bin() {
        let n = 128;
        let plan = FftPlan::new(n).unwrap();
        let k0 = 5;
        let mut d: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        plan.forward(&mut d);
        for (k, z) in d.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-9);
                assert!(z.im.abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leak at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            FftPlan::new(12),
            Err(SpectralError::NotPowerOfTwo { len: 12 })
        ));
        assert!(matches!(
            FftPlan::new(0),
            Err(SpectralError::NotPowerOfTwo { len: 0 })
        ));
    }

    #[test]
    fn fft2_roundtrip() {
        let (nx, ny) = (16, 32);
        let plan = Fft2Plan::new(nx, ny).unwrap();
        let sig = rand_signal(nx * ny, 1234);
        let mut d = sig.clone();
        plan.forward(&mut d);
        plan.inverse(&mut d);
        for k in 0..nx * ny {
            assert!(close(d[k], sig[k], 1e-12));
        }
    }

    #[test]
    fn fft2_separable_tone() {
        // A 2-D plane wave lands in exactly one 2-D bin.
        let (nx, ny) = (8, 8);
        let plan = Fft2Plan::new(nx, ny).unwrap();
        let (kx, ky) = (3usize, 2usize);
        let mut d: Vec<Complex64> = (0..nx * ny)
            .map(|i| {
                let (ix, iy) = (i / ny, i % ny);
                Complex64::cis(
                    2.0 * std::f64::consts::PI
                        * ((kx * ix) as f64 / nx as f64 + (ky * iy) as f64 / ny as f64),
                )
            })
            .collect();
        plan.forward(&mut d);
        for ix in 0..nx {
            for iy in 0..ny {
                let z = d[ix * ny + iy];
                if (ix, iy) == (kx, ky) {
                    assert!((z.re - (nx * ny) as f64).abs() < 1e-8);
                } else {
                    assert!(z.abs() < 1e-8, "leak at ({ix},{iy})");
                }
            }
        }
    }

    #[test]
    fn fft2_matches_row_column_naive() {
        let (nx, ny) = (4, 8);
        let plan = Fft2Plan::new(nx, ny).unwrap();
        let sig = rand_signal(nx * ny, 5);
        let mut fast = sig.clone();
        plan.forward(&mut fast);
        // Naive row-column.
        let mut slow = sig;
        for r in slow.chunks_exact_mut(ny) {
            let t = dft_naive(r, Direction::Forward);
            r.copy_from_slice(&t);
        }
        let mut col = vec![Complex64::ZERO; nx];
        for iy in 0..ny {
            for ix in 0..nx {
                col[ix] = slow[ix * ny + iy];
            }
            let t = dft_naive(&col, Direction::Forward);
            for ix in 0..nx {
                slow[ix * ny + iy] = t[ix];
            }
        }
        for k in 0..nx * ny {
            assert!(close(fast[k], slow[k], 1e-9));
        }
    }
}
