//! Iterative radix-2 Cooley–Tukey FFT, 1-D and 2-D.
//!
//! The PIC grids in the paper are powers of two (128×128, 256×256), so a
//! radix-2 transform covers every configuration the solver sees. Twiddle
//! factors are precomputed once per [`FftPlan`] — the pattern FFTW calls a
//! *plan* — because the Poisson solve runs every time step.

use crate::{Complex64, SpectralError};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// `X_k = Σ x_n e^{−2πi nk/N}` (no normalization).
    Forward,
    /// `x_n = Σ X_k e^{+2πi nk/N}` (normalized by `1/N` in [`FftPlan::inverse`]).
    Inverse,
}

/// A reusable 1-D FFT plan for a fixed power-of-two length.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Bit-reversal permutation.
    rev: Vec<u32>,
    /// Forward twiddles, grouped per butterfly stage: for stage with
    /// half-block `m`, the `m` factors `e^{−2πi j/(2m)}`, j = 0..m, packed
    /// consecutively (stages m = 1, 2, 4, …, n/2).
    twiddles: Vec<Complex64>,
}

impl FftPlan {
    /// Create a plan for length `n` (must be a power of two ≥ 1).
    pub fn new(n: usize) -> Result<Self, SpectralError> {
        if n == 0 || !n.is_power_of_two() {
            return Err(SpectralError::NotPowerOfTwo { len: n });
        }
        let log2n = n.trailing_zeros();
        let mut rev = vec![0u32; n];
        for i in 0..n {
            rev[i] = (rev[i >> 1] >> 1) | (((i & 1) as u32) << (log2n.max(1) - 1));
        }
        if log2n == 0 {
            rev[0] = 0;
        }
        // Total twiddle count: 1 + 2 + 4 + … + n/2 = n − 1.
        let mut twiddles = Vec::with_capacity(n.saturating_sub(1));
        let mut m = 1usize;
        while m < n {
            let step = -std::f64::consts::PI / m as f64;
            for j in 0..m {
                twiddles.push(Complex64::cis(step * j as f64));
            }
            m <<= 1;
        }
        Ok(Self { n, rev, twiddles })
    }

    /// Transform length.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the plan length is 1 (the transform is the identity).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 1
    }

    /// In-place forward transform (no normalization).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT length mismatch");
        self.transform(data, false);
    }

    /// In-place inverse transform, normalized by `1/N`.
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        assert_eq!(data.len(), self.n, "FFT length mismatch");
        self.transform(data, true);
        let inv = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
    }

    fn transform(&self, data: &mut [Complex64], invert: bool) {
        let n = self.n;
        if n == 1 {
            return;
        }
        // Bit-reversal permutation.
        for i in 0..n {
            let j = self.rev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        // Butterflies, stage by stage, twiddles read off the packed table.
        let mut m = 1usize;
        let mut toff = 0usize;
        while m < n {
            let tw = &self.twiddles[toff..toff + m];
            let mut k = 0;
            while k < n {
                for j in 0..m {
                    let w = if invert { tw[j].conj() } else { tw[j] };
                    let u = data[k + j];
                    let t = w * data[k + j + m];
                    data[k + j] = u + t;
                    data[k + j + m] = u - t;
                }
                k += 2 * m;
            }
            toff += m;
            m <<= 1;
        }
    }
}

/// An executor for batches of independent whole-row transforms — the seam
/// through which a thread pool (which lives upstream of this dependency-free
/// crate) parallelizes the 2-D transform passes.
///
/// The contract of [`run_rows`](Self::run_rows): partition `data` into
/// contiguous blocks of whole `row_len`-element rows and invoke
/// `f(first_row, block)` exactly once per block (possibly concurrently),
/// where `first_row` is the global index of the block's first row. Blocks
/// must cover `data` in order and must not overlap. Implementations choose
/// the block count (≤ [`width`](Self::width)); any partition into whole
/// rows yields identical results because `f` treats rows independently.
pub trait RowExecutor {
    /// Maximum useful concurrency (1 for serial executors).
    fn width(&self) -> usize;

    /// Run `f` over a partition of `data` into whole-row blocks.
    ///
    /// # Panics
    /// Implementations may panic when `data.len()` is not a multiple of
    /// `row_len`.
    fn run_rows(
        &self,
        data: &mut [Complex64],
        row_len: usize,
        f: &(dyn Fn(usize, &mut [Complex64]) + Sync),
    );
}

/// The trivial executor: one block, run on the calling thread.
#[derive(Debug, Clone, Copy, Default)]
pub struct SerialExec;

impl RowExecutor for SerialExec {
    fn width(&self) -> usize {
        1
    }

    fn run_rows(
        &self,
        data: &mut [Complex64],
        row_len: usize,
        f: &(dyn Fn(usize, &mut [Complex64]) + Sync),
    ) {
        assert_eq!(data.len() % row_len.max(1), 0, "partial row in batch");
        if !data.is_empty() {
            f(0, data);
        }
    }
}

/// Default tile edge for [`transpose_tiled`]: a 16×16 `Complex64` tile
/// touches 4 KiB of source and 4 KiB of destination — both L1-resident, so
/// the strided side of the transpose misses at most once per cache line.
pub const TRANSPOSE_TILE: usize = 16;

/// Cache-blocked out-of-place matrix transpose: `src` is `rows × cols`
/// row-major and `dst` becomes `cols × rows` (`dst[j * rows + i] =
/// src[i * cols + j]`). The loops walk `tile × tile` blocks so both the
/// read and the write side stay within a few cache lines per block — the
/// naive double loop strides one side by `cols` (or `rows`) every element
/// and thrashes at grid sizes ≥ 256².
///
/// # Panics
/// Panics if the slice lengths differ from `rows * cols` or `tile == 0`.
pub fn transpose_tiled(
    src: &[Complex64],
    dst: &mut [Complex64],
    rows: usize,
    cols: usize,
    tile: usize,
) {
    assert_eq!(src.len(), rows * cols, "transpose source size mismatch");
    assert_eq!(
        dst.len(),
        rows * cols,
        "transpose destination size mismatch"
    );
    assert!(tile >= 1, "transpose tile must be nonzero");
    transpose_block(src, rows, cols, 0, dst, tile);
}

/// Transpose columns `j0 ..` of `src` (`rows × cols`) into `block`, a
/// contiguous run of destination rows starting at row `j0` of the full
/// `cols × rows` transpose. `transpose_tiled` is the `j0 = 0`, whole-output
/// case; the parallel transform hands each executor block its own slice.
fn transpose_block(
    src: &[Complex64],
    rows: usize,
    cols: usize,
    j0: usize,
    block: &mut [Complex64],
    tile: usize,
) {
    let brows = block.len() / rows.max(1);
    for jt in (0..brows).step_by(tile) {
        let jhi = (jt + tile).min(brows);
        for it in (0..rows).step_by(tile) {
            let ihi = (it + tile).min(rows);
            for j in jt..jhi {
                for i in it..ihi {
                    block[j * rows + i] = src[i * cols + j0 + j];
                }
            }
        }
    }
}

/// A reusable 2-D FFT plan (row–column algorithm) for an `nx × ny` grid
/// stored row-major (`data[ix * ny + iy]`).
#[derive(Debug, Clone)]
pub struct Fft2Plan {
    nx: usize,
    ny: usize,
    /// Length-`ny` plan for the row pass.
    row: FftPlan,
    /// Length-`nx` plan for the column pass — `None` on square grids,
    /// where the row plan's twiddle/bit-reversal tables are reused instead
    /// of being built twice.
    col: Option<FftPlan>,
}

impl Fft2Plan {
    /// Create a plan for an `nx × ny` grid (both powers of two).
    pub fn new(nx: usize, ny: usize) -> Result<Self, SpectralError> {
        if nx == 0 || ny == 0 {
            return Err(SpectralError::ZeroDimension);
        }
        Ok(Self {
            nx,
            ny,
            row: FftPlan::new(ny)?,
            col: (nx != ny).then(|| FftPlan::new(nx)).transpose()?,
        })
    }

    /// The length-`ny` 1-D plan used for the row pass.
    pub fn row_plan(&self) -> &FftPlan {
        &self.row
    }

    /// The length-`nx` 1-D plan used for the column pass (the row plan
    /// itself on square grids).
    pub fn col_plan(&self) -> &FftPlan {
        self.col.as_ref().unwrap_or(&self.row)
    }

    /// Grid dimensions `(nx, ny)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.nx, self.ny)
    }

    /// In-place 2-D forward transform.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny`.
    pub fn forward(&self, data: &mut [Complex64]) {
        let mut colbuf = vec![Complex64::ZERO; self.nx];
        self.forward_with(data, &mut colbuf);
    }

    /// In-place 2-D inverse transform (normalized by `1/(nx·ny)`).
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny`.
    pub fn inverse(&self, data: &mut [Complex64]) {
        let mut colbuf = vec![Complex64::ZERO; self.nx];
        self.inverse_with(data, &mut colbuf);
    }

    /// [`forward`](Self::forward) with a caller-owned column buffer of
    /// `nx` entries — the allocation-free form for per-step solves.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny` or `colbuf.len() != nx`.
    pub fn forward_with(&self, data: &mut [Complex64], colbuf: &mut [Complex64]) {
        self.transform2(data, Direction::Forward, colbuf);
    }

    /// [`inverse`](Self::inverse) with a caller-owned column buffer of
    /// `nx` entries.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny` or `colbuf.len() != nx`.
    pub fn inverse_with(&self, data: &mut [Complex64], colbuf: &mut [Complex64]) {
        self.transform2(data, Direction::Inverse, colbuf);
    }

    /// Pass order: the forward transform runs rows then columns; the
    /// inverse runs columns then rows — the reversed composition, so each
    /// 1-D pass is undone by its own inverse in reverse order. The order
    /// fixes the floating-point rounding, and the parallel
    /// ([`forward_par`](Self::forward_par)) and distributed (slab) solvers
    /// replicate it exactly to stay bit-identical with this path.
    fn transform2(&self, data: &mut [Complex64], dir: Direction, colbuf: &mut [Complex64]) {
        assert_eq!(data.len(), self.nx * self.ny, "2-D FFT size mismatch");
        assert_eq!(colbuf.len(), self.nx, "2-D FFT column buffer mismatch");
        match dir {
            Direction::Forward => {
                self.rows_pass(data, dir);
                self.cols_pass(data, dir, colbuf);
            }
            Direction::Inverse => {
                self.cols_pass(data, dir, colbuf);
                self.rows_pass(data, dir);
            }
        }
    }

    /// Transform every (contiguous) row with the length-`ny` plan.
    fn rows_pass(&self, data: &mut [Complex64], dir: Direction) {
        for r in data.chunks_exact_mut(self.ny) {
            match dir {
                Direction::Forward => self.row.forward(r),
                Direction::Inverse => self.row.inverse(r),
            }
        }
    }

    /// Transform every column: gather → transform → scatter, one column
    /// buffer at a time.
    fn cols_pass(&self, data: &mut [Complex64], dir: Direction, colbuf: &mut [Complex64]) {
        let col = self.col_plan();
        for iy in 0..self.ny {
            for ix in 0..self.nx {
                colbuf[ix] = data[ix * self.ny + iy];
            }
            match dir {
                Direction::Forward => col.forward(colbuf),
                Direction::Inverse => col.inverse(colbuf),
            }
            for ix in 0..self.nx {
                data[ix * self.ny + iy] = colbuf[ix];
            }
        }
    }

    /// [`forward_with`](Self::forward_with), with the row batches of each
    /// pass striped over `exec` and the column pass run on contiguous rows
    /// of a tiled transpose (`tbuf`, `nx * ny` entries) instead of a
    /// strided gather/scatter. Bit-exact with the sequential path: every
    /// 1-D transform sees the same values in the same butterfly order, and
    /// the passes compose in the same row-then-column order.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny` or `tbuf.len() != nx * ny`.
    pub fn forward_par(
        &self,
        data: &mut [Complex64],
        tbuf: &mut [Complex64],
        exec: &dyn RowExecutor,
    ) {
        let n = self.nx * self.ny;
        assert_eq!(data.len(), n, "2-D FFT size mismatch");
        assert_eq!(tbuf.len(), n, "2-D FFT transpose buffer mismatch");
        self.par_pass(data, self.ny, &self.row, Direction::Forward, exec);
        par_transpose(data, self.nx, self.ny, tbuf, exec);
        self.par_pass(tbuf, self.nx, self.col_plan(), Direction::Forward, exec);
        par_transpose(tbuf, self.ny, self.nx, data, exec);
    }

    /// [`inverse_with`](Self::inverse_with) on the executor: columns first,
    /// then rows — the sequential inverse pass order — each pass striped
    /// over `exec` with transposes in between. Bit-exact with the
    /// sequential path.
    ///
    /// # Panics
    /// Panics if `data.len() != nx * ny` or `tbuf.len() != nx * ny`.
    pub fn inverse_par(
        &self,
        data: &mut [Complex64],
        tbuf: &mut [Complex64],
        exec: &dyn RowExecutor,
    ) {
        let n = self.nx * self.ny;
        assert_eq!(data.len(), n, "2-D FFT size mismatch");
        assert_eq!(tbuf.len(), n, "2-D FFT transpose buffer mismatch");
        par_transpose(data, self.nx, self.ny, tbuf, exec);
        self.par_pass(tbuf, self.nx, self.col_plan(), Direction::Inverse, exec);
        par_transpose(tbuf, self.ny, self.nx, data, exec);
        self.par_pass(data, self.ny, &self.row, Direction::Inverse, exec);
    }

    /// One 1-D pass over every `row_len`-element row of `data`, striped
    /// across the executor's row blocks.
    fn par_pass(
        &self,
        data: &mut [Complex64],
        row_len: usize,
        plan: &FftPlan,
        dir: Direction,
        exec: &dyn RowExecutor,
    ) {
        exec.run_rows(data, row_len, &|_first, block| {
            for r in block.chunks_exact_mut(row_len) {
                match dir {
                    Direction::Forward => plan.forward(r),
                    Direction::Inverse => plan.inverse(r),
                }
            }
        });
    }
}

/// Transpose `src` (`rows × cols`) into `dst` (`cols × rows`), each
/// executor block tiling its own contiguous run of destination rows.
fn par_transpose(
    src: &[Complex64],
    rows: usize,
    cols: usize,
    dst: &mut [Complex64],
    exec: &dyn RowExecutor,
) {
    exec.run_rows(dst, rows, &|j0, block| {
        transpose_block(src, rows, cols, j0, block, TRANSPOSE_TILE);
    });
}

/// Naive `O(N²)` DFT, used as the test oracle.
pub fn dft_naive(input: &[Complex64], dir: Direction) -> Vec<Complex64> {
    let n = input.len();
    let sign = match dir {
        Direction::Forward => -1.0,
        Direction::Inverse => 1.0,
    };
    let mut out = vec![Complex64::ZERO; n];
    for (k, o) in out.iter_mut().enumerate() {
        let mut acc = Complex64::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let theta = sign * 2.0 * std::f64::consts::PI * (k * j) as f64 / n as f64;
            acc += x * Complex64::cis(theta);
        }
        *o = if matches!(dir, Direction::Inverse) {
            acc / n as f64
        } else {
            acc
        };
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex64, b: Complex64, tol: f64) -> bool {
        (a - b).abs() <= tol
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<Complex64> {
        // Tiny xorshift so the tests stay dependency-free and deterministic.
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            (s as f64 / u64::MAX as f64) * 2.0 - 1.0
        };
        (0..n).map(|_| Complex64::new(next(), next())).collect()
    }

    #[test]
    fn length_one_is_identity() {
        let plan = FftPlan::new(1).unwrap();
        let mut d = [Complex64::new(3.5, -1.0)];
        plan.forward(&mut d);
        assert_eq!(d[0], Complex64::new(3.5, -1.0));
        plan.inverse(&mut d);
        assert_eq!(d[0], Complex64::new(3.5, -1.0));
    }

    #[test]
    fn matches_naive_dft() {
        for n in [2usize, 4, 8, 16, 64, 256] {
            let plan = FftPlan::new(n).unwrap();
            let sig = rand_signal(n, 42 + n as u64);
            let mut fast = sig.clone();
            plan.forward(&mut fast);
            let slow = dft_naive(&sig, Direction::Forward);
            for k in 0..n {
                assert!(
                    close(fast[k], slow[k], 1e-9 * n as f64),
                    "n={n} k={k}: {:?} vs {:?}",
                    fast[k],
                    slow[k]
                );
            }
        }
    }

    #[test]
    fn roundtrip_restores_signal() {
        for n in [2usize, 8, 128, 1024] {
            let plan = FftPlan::new(n).unwrap();
            let sig = rand_signal(n, 7);
            let mut d = sig.clone();
            plan.forward(&mut d);
            plan.inverse(&mut d);
            for k in 0..n {
                assert!(close(d[k], sig[k], 1e-12), "n={n} k={k}");
            }
        }
    }

    #[test]
    fn parseval() {
        let n = 512;
        let plan = FftPlan::new(n).unwrap();
        let sig = rand_signal(n, 99);
        let time_energy: f64 = sig.iter().map(|z| z.norm_sqr()).sum();
        let mut d = sig;
        plan.forward(&mut d);
        let freq_energy: f64 = d.iter().map(|z| z.norm_sqr()).sum::<f64>() / n as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9 * time_energy);
    }

    #[test]
    fn linearity() {
        let n = 64;
        let plan = FftPlan::new(n).unwrap();
        let a = rand_signal(n, 1);
        let b = rand_signal(n, 2);
        let mut sum: Vec<Complex64> = a.iter().zip(&b).map(|(&x, &y)| x + y.scale(2.5)).collect();
        plan.forward(&mut sum);
        let mut fa = a;
        let mut fb = b;
        plan.forward(&mut fa);
        plan.forward(&mut fb);
        for k in 0..n {
            assert!(close(sum[k], fa[k] + fb[k].scale(2.5), 1e-10));
        }
    }

    #[test]
    fn pure_tone_lands_in_single_bin() {
        let n = 128;
        let plan = FftPlan::new(n).unwrap();
        let k0 = 5;
        let mut d: Vec<Complex64> = (0..n)
            .map(|j| Complex64::cis(2.0 * std::f64::consts::PI * (k0 * j) as f64 / n as f64))
            .collect();
        plan.forward(&mut d);
        for (k, z) in d.iter().enumerate() {
            if k == k0 {
                assert!((z.re - n as f64).abs() < 1e-9);
                assert!(z.im.abs() < 1e-9);
            } else {
                assert!(z.abs() < 1e-9, "leak at bin {k}: {z:?}");
            }
        }
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(matches!(
            FftPlan::new(12),
            Err(SpectralError::NotPowerOfTwo { len: 12 })
        ));
        assert!(matches!(
            FftPlan::new(0),
            Err(SpectralError::NotPowerOfTwo { len: 0 })
        ));
    }

    #[test]
    fn fft2_roundtrip() {
        let (nx, ny) = (16, 32);
        let plan = Fft2Plan::new(nx, ny).unwrap();
        let sig = rand_signal(nx * ny, 1234);
        let mut d = sig.clone();
        plan.forward(&mut d);
        plan.inverse(&mut d);
        for k in 0..nx * ny {
            assert!(close(d[k], sig[k], 1e-12));
        }
    }

    #[test]
    fn fft2_separable_tone() {
        // A 2-D plane wave lands in exactly one 2-D bin.
        let (nx, ny) = (8, 8);
        let plan = Fft2Plan::new(nx, ny).unwrap();
        let (kx, ky) = (3usize, 2usize);
        let mut d: Vec<Complex64> = (0..nx * ny)
            .map(|i| {
                let (ix, iy) = (i / ny, i % ny);
                Complex64::cis(
                    2.0 * std::f64::consts::PI
                        * ((kx * ix) as f64 / nx as f64 + (ky * iy) as f64 / ny as f64),
                )
            })
            .collect();
        plan.forward(&mut d);
        for ix in 0..nx {
            for iy in 0..ny {
                let z = d[ix * ny + iy];
                if (ix, iy) == (kx, ky) {
                    assert!((z.re - (nx * ny) as f64).abs() < 1e-8);
                } else {
                    assert!(z.abs() < 1e-8, "leak at ({ix},{iy})");
                }
            }
        }
    }

    /// A serial executor that still exercises the multi-block partition
    /// logic: splits every batch into `k` near-equal whole-row blocks.
    struct Blocks(usize);

    impl RowExecutor for Blocks {
        fn width(&self) -> usize {
            self.0
        }

        fn run_rows(
            &self,
            data: &mut [Complex64],
            row_len: usize,
            f: &(dyn Fn(usize, &mut [Complex64]) + Sync),
        ) {
            let nrows = data.len() / row_len.max(1);
            let k = self.0.clamp(1, nrows.max(1));
            let (base, extra) = (nrows / k, nrows % k);
            let mut rest = data;
            let mut first = 0;
            for c in 0..k {
                let take = base + usize::from(c < extra);
                let (head, tail) = rest.split_at_mut(take * row_len);
                if !head.is_empty() {
                    f(first, head);
                }
                first += take;
                rest = tail;
            }
        }
    }

    #[test]
    fn transpose_roundtrip_and_naive_parity() {
        for (rows, cols) in [(1usize, 1usize), (4, 8), (16, 16), (13, 7), (33, 65)] {
            let src = rand_signal(rows * cols, (rows * 1000 + cols) as u64);
            for tile in [1usize, 8, 13, TRANSPOSE_TILE] {
                let mut t = vec![Complex64::ZERO; rows * cols];
                transpose_tiled(&src, &mut t, rows, cols, tile);
                for i in 0..rows {
                    for j in 0..cols {
                        assert_eq!(
                            t[j * rows + i],
                            src[i * cols + j],
                            "rows={rows} cols={cols} tile={tile} ({i},{j})"
                        );
                    }
                }
                let mut back = vec![Complex64::ZERO; rows * cols];
                transpose_tiled(&t, &mut back, cols, rows, tile);
                assert_eq!(back, src, "rows={rows} cols={cols} tile={tile}");
            }
        }
    }

    #[test]
    fn square_plan_is_shared() {
        let sq = Fft2Plan::new(64, 64).unwrap();
        assert!(
            std::ptr::eq(sq.row_plan(), sq.col_plan()),
            "square grid should reuse one 1-D plan"
        );
        let rect = Fft2Plan::new(32, 64).unwrap();
        assert!(!std::ptr::eq(rect.row_plan(), rect.col_plan()));
        assert_eq!(rect.row_plan().len(), 64);
        assert_eq!(rect.col_plan().len(), 32);
    }

    #[test]
    fn parallel_transform_bit_exact_with_sequential() {
        for (nx, ny) in [(8usize, 8usize), (16, 32), (64, 16), (1, 8), (8, 1)] {
            let plan = Fft2Plan::new(nx, ny).unwrap();
            let sig = rand_signal(nx * ny, (nx * 100 + ny) as u64);
            let mut colbuf = vec![Complex64::ZERO; nx];
            let mut seq = sig.clone();
            plan.forward_with(&mut seq, &mut colbuf);
            for exec in [&Blocks(1) as &dyn RowExecutor, &Blocks(3), &Blocks(64)] {
                let mut par = sig.clone();
                let mut tbuf = vec![Complex64::ZERO; nx * ny];
                plan.forward_par(&mut par, &mut tbuf, exec);
                assert_eq!(par, seq, "forward {nx}x{ny} width={}", exec.width());
                plan.inverse_par(&mut par, &mut tbuf, exec);
                let mut undo = seq.clone();
                plan.inverse_with(&mut undo, &mut colbuf);
                assert_eq!(par, undo, "inverse {nx}x{ny} width={}", exec.width());
            }
        }
    }

    #[test]
    fn inverse_pass_order_is_reversed_composition() {
        // Column-inverse then row-inverse must bit-exactly undo each pass
        // applied manually in the forward order.
        let (nx, ny) = (8usize, 16usize);
        let plan = Fft2Plan::new(nx, ny).unwrap();
        let sig = rand_signal(nx * ny, 77);
        let mut d = sig.clone();
        plan.forward(&mut d);
        // Manually undo: columns first (gather/scatter), then rows.
        let mut col = vec![Complex64::ZERO; nx];
        for iy in 0..ny {
            for ix in 0..nx {
                col[ix] = d[ix * ny + iy];
            }
            plan.col_plan().inverse(&mut col);
            for ix in 0..nx {
                d[ix * ny + iy] = col[ix];
            }
        }
        for r in d.chunks_exact_mut(ny) {
            plan.row_plan().inverse(r);
        }
        let mut via_plan = sig.clone();
        plan.forward(&mut via_plan);
        plan.inverse(&mut via_plan);
        assert_eq!(d, via_plan);
    }

    #[test]
    fn fft2_matches_row_column_naive() {
        let (nx, ny) = (4, 8);
        let plan = Fft2Plan::new(nx, ny).unwrap();
        let sig = rand_signal(nx * ny, 5);
        let mut fast = sig.clone();
        plan.forward(&mut fast);
        // Naive row-column.
        let mut slow = sig;
        for r in slow.chunks_exact_mut(ny) {
            let t = dft_naive(r, Direction::Forward);
            r.copy_from_slice(&t);
        }
        let mut col = vec![Complex64::ZERO; nx];
        for iy in 0..ny {
            for ix in 0..nx {
                col[ix] = slow[ix * ny + iy];
            }
            let t = dft_naive(&col, Direction::Forward);
            for ix in 0..nx {
                slow[ix * ny + iy] = t[ix];
            }
        }
        for k in 0..nx * ny {
            assert!(close(fast[k], slow[k], 1e-9));
        }
    }
}
