//! Kinetic plasma dispersion: the plasma dispersion function `Z(ζ)` and the
//! Landau root of the electrostatic dispersion relation.
//!
//! The paper validates its code against “theoretical results … available
//! [Birdsall & Langdon; Hockney & Eastwood]” for Landau damping. Rather
//! than hard-coding γ(k = 0.5) ≈ −0.1533, this module computes the damping
//! rate from first principles, so the physics-validation harness can check
//! any `k`:
//!
//! For a Maxwellian with thermal speed 1 and plasma frequency 1, Langmuir
//! waves obey `1 + (1/k²)·(1 + ζ Z(ζ)) = 0` with `ζ = ω/(√2·k)`. The root
//! `ω(k) = ω_r + iγ` has γ < 0 (Landau damping).
//!
//! `Z` is evaluated via the Dawson function `F(x)` on (near-)real arguments
//! and analytic continuation by a few Newton steps in the complex plane.

use crate::Complex64;

/// Dawson function `F(x) = e^{−x²} ∫₀ˣ e^{t²} dt` for real `x`, by the
/// series for small `|x|` and the asymptotic continued expansion for large.
pub fn dawson(x: f64) -> f64 {
    let ax = x.abs();
    let val = if ax < 4.0 {
        // Maclaurin-type series: F(x) = Σ (−2)ⁿ x^{2n+1} n! / (2n+1)!
        // computed stably as a recurrence.
        let x2 = x * x;
        let mut term = ax;
        let mut sum = ax;
        let mut n = 0u32;
        while term.abs() > 1e-18 * sum.abs().max(1e-300) && n < 200 {
            n += 1;
            term *= -2.0 * x2 / (2.0 * n as f64 + 1.0);
            sum += term;
        }
        sum
    } else {
        // Asymptotic: F(x) ~ 1/(2x) + 1/(4x³) + 3/(8x⁵) + 15/(16x⁷) + …
        let inv2 = 1.0 / (ax * ax);
        (0.5 / ax) * (1.0 + 0.5 * inv2 * (1.0 + 1.5 * inv2 * (1.0 + 2.5 * inv2)))
    };
    if x < 0.0 {
        -val
    } else {
        val
    }
}

/// Plasma dispersion function `Z(ζ)` for complex ζ with small imaginary
/// part, from the real-axis values
/// `Z(x) = −2 F(x) + i√π e^{−x²}` extended by a first-order Taylor step
/// `Z(x + iy) ≈ Z(x) + iy·Z'(x)`, with `Z' = −2(1 + ζZ)`.
///
/// Adequate for weakly damped Langmuir roots (|Im ζ| ≪ 1), which is the
/// regime of every Landau test case in the paper.
pub fn z_function(zeta: Complex64) -> Complex64 {
    let x = zeta.re;
    let sqrt_pi = std::f64::consts::PI.sqrt();
    let zx = Complex64::new(-2.0 * dawson(x), sqrt_pi * (-x * x).exp());
    // Z'(x) = −2 (1 + x Z(x)) on the real axis.
    let zpx = (Complex64::ONE + zx.scale(x)).scale(-2.0);
    // Second order: Z'' = −2(Z + x Z').
    let zppx = (zx + zpx.scale(x)).scale(-2.0);
    let dy = Complex64::new(0.0, zeta.im);
    zx + zpx * dy + zppx * dy * dy * 0.5
}

/// Electrostatic dispersion relation `D(ω) = 1 + (1/k²)(1 + ζ Z(ζ))`,
/// `ζ = ω/(√2 k)`.
pub fn dielectric(k: f64, omega: Complex64) -> Complex64 {
    let zeta = omega / (std::f64::consts::SQRT_2 * k);
    let z = z_function(zeta);
    Complex64::ONE + (Complex64::ONE + zeta * z) / (k * k)
}

/// Solve `D(ω) = 0` for the least-damped Langmuir root at wavenumber `k`
/// by complex Newton iteration from the Bohm–Gross estimate.
/// Returns `ω = ω_r + iγ` (γ < 0 = damping) or `None` if no convergence.
pub fn landau_root(k: f64) -> Option<Complex64> {
    if k.is_nan() || k <= 0.0 {
        return None;
    }
    // Bohm–Gross: ω² ≈ 1 + 3k² (thermal speed 1), slightly damped.
    let mut omega = Complex64::new((1.0 + 3.0 * k * k).sqrt(), -0.01);
    for _ in 0..100 {
        let f = dielectric(k, omega);
        // Numerical derivative (central, small complex-safe step).
        let h = 1e-7;
        let df = (dielectric(k, omega + Complex64::new(h, 0.0))
            - dielectric(k, omega - Complex64::new(h, 0.0)))
            / (2.0 * h);
        if df.abs() < 1e-30 {
            return None;
        }
        let step = Complex64::new(
            (f.re * df.re + f.im * df.im) / df.norm_sqr(),
            (f.im * df.re - f.re * df.im) / df.norm_sqr(),
        );
        omega -= step;
        if step.abs() < 1e-12 {
            return Some(omega);
        }
    }
    None
}

/// The Landau damping rate γ(k) < 0 for a unit Maxwellian.
pub fn landau_damping_rate(k: f64) -> Option<f64> {
    landau_root(k).map(|w| w.im)
}

/// Real Langmuir frequency ω_r(k).
pub fn langmuir_frequency(k: f64) -> Option<f64> {
    landau_root(k).map(|w| w.re)
}

/// Cold two-stream growth rate for two counter-streaming beams at ±v0,
/// each carrying half the density: the dielectric is
/// `D(ω) = 1 − ½/(ω−kv0)² − ½/(ω+kv0)²`, whose quadratic in `ω²` is solved
/// exactly. The mode is unstable for `k·v0 < ω_p = 1`, with the maximum
/// growth rate `γ_max = 1/(2√2) ≈ 0.354` at `k·v0 = √(3/8)`.
pub fn two_stream_growth_rate(k: f64, v0: f64) -> Option<f64> {
    // D = 0 ⇔ (ω²−a)² − ... with x = ω², a = (kv0)²:
    // 1 = ½[1/(ω−a₀)² + 1/(ω+a₀)²], a₀ = k v0. Let u = ω², c = a₀²:
    // (u−c)² = u + c ⇒ u² − (2c+1)u + c² − c = 0.
    let c = (k * v0) * (k * v0);
    let disc = (2.0 * c + 1.0) * (2.0 * c + 1.0) - 4.0 * (c * c - c);
    if disc < 0.0 {
        return None;
    }
    let u_minus = (2.0 * c + 1.0 - disc.sqrt()) / 2.0;
    if u_minus < 0.0 {
        // ω² < 0: purely growing mode with γ = √(−ω²).
        Some((-u_minus).sqrt())
    } else {
        Some(0.0) // stable at this k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dawson_known_values() {
        // Abramowitz & Stegun 7.1.17 table values.
        assert!((dawson(0.0)).abs() < 1e-15);
        assert!((dawson(0.5) - 0.42443638).abs() < 1e-7);
        assert!((dawson(1.0) - 0.53807950).abs() < 1e-7);
        assert!((dawson(2.0) - 0.30134039).abs() < 1e-7);
        assert!((dawson(5.0) - 0.10213407).abs() < 1e-4);
        assert!((dawson(-1.0) + 0.53807950).abs() < 1e-7);
    }

    #[test]
    fn z_satisfies_differential_identity_on_axis() {
        // Z'(x) = −2(1 + xZ(x)): check with numerical differentiation.
        for &x in &[0.3f64, 1.0, 2.2] {
            let h = 1e-6;
            let zp = (z_function(Complex64::from_re(x + h))
                - z_function(Complex64::from_re(x - h)))
                / (2.0 * h);
            let expect = (Complex64::ONE + z_function(Complex64::from_re(x)).scale(x)).scale(-2.0);
            assert!((zp - expect).abs() < 1e-5, "x={x}");
        }
    }

    #[test]
    fn z_at_zero() {
        // Z(0) = i√π.
        let z0 = z_function(Complex64::ZERO);
        assert!(z0.re.abs() < 1e-12);
        assert!((z0.im - std::f64::consts::PI.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn landau_rate_at_half_matches_literature() {
        // The canonical value everyone quotes: γ(k=0.5) ≈ −0.1533,
        // ω_r ≈ 1.4156.
        let w = landau_root(0.5).expect("root converges");
        assert!((w.im - -0.1533).abs() < 0.01, "gamma {}", w.im);
        assert!((w.re - 1.4156).abs() < 0.01, "omega {}", w.re);
    }

    #[test]
    fn landau_rate_other_wavenumbers() {
        // γ(k=0.3) ≈ −0.0126; γ(k=0.4) ≈ −0.0661 (literature tables).
        let g3 = landau_damping_rate(0.3).unwrap();
        let g4 = landau_damping_rate(0.4).unwrap();
        assert!((g3 - -0.0126).abs() < 0.005, "gamma(0.3) {g3}");
        assert!((g4 - -0.0661).abs() < 0.01, "gamma(0.4) {g4}");
        // Damping strengthens with k.
        assert!(g4 < g3);
    }

    #[test]
    fn langmuir_frequency_increases_with_k() {
        let w3 = langmuir_frequency(0.3).unwrap();
        let w5 = langmuir_frequency(0.5).unwrap();
        assert!(w5 > w3);
        assert!(w3 > 1.0, "above the plasma frequency");
    }

    #[test]
    fn two_stream_cold_rates() {
        // Unstable for k·v0 < 1, stable beyond.
        let g = two_stream_growth_rate(0.2, 3.0).unwrap(); // kv0 = 0.6
        assert!(g > 0.3, "growth {g}");
        let stable = two_stream_growth_rate(0.5, 3.0).unwrap(); // kv0 = 1.5
        assert_eq!(stable, 0.0);
        // Max cold growth is 1/(2√2) ≈ 0.3536 at kv0 = √(3/8) ≈ 0.6124.
        let kmax = (3.0f64 / 8.0).sqrt() / 3.0;
        let gmax = two_stream_growth_rate(kmax, 3.0).unwrap();
        assert!(
            (gmax - 0.5 / std::f64::consts::SQRT_2).abs() < 1e-9,
            "max growth {gmax}"
        );
        // And it is indeed the maximum over nearby k.
        assert!(gmax >= two_stream_growth_rate(kmax * 0.8, 3.0).unwrap());
        assert!(gmax >= two_stream_growth_rate(kmax * 1.2, 3.0).unwrap());
    }

    #[test]
    fn invalid_inputs() {
        assert!(landau_root(0.0).is_none());
        assert!(landau_root(-1.0).is_none());
    }
}
