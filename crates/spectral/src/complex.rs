//! A minimal double-precision complex number.
//!
//! Implemented locally (rather than pulling in a numerics crate) because the
//! FFT needs only a handful of operations and the workspace policy keeps the
//! dependency set to the approved list.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// Zero.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Construct from real and imaginary parts.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely real complex number.
    #[inline]
    pub const fn from_re(re: f64) -> Self {
        Self { re, im: 0.0 }
    }

    /// `e^{iθ} = cos θ + i sin θ`.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        let (s, c) = theta.sin_cos();
        Self { re: c, im: s }
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        Self {
            re: self.re,
            im: -self.im,
        }
    }

    /// Squared modulus `|z|²`.
    #[inline]
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Modulus `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.norm_sqr().sqrt()
    }

    /// Multiply by a real scalar.
    #[inline]
    pub fn scale(self, s: f64) -> Self {
        Self {
            re: self.re * s,
            im: self.im * s,
        }
    }

    /// Multiply by `i` (a rotation by 90°), exact and cheaper than a full
    /// complex multiply — used by the spectral derivative.
    #[inline]
    pub fn mul_i(self) -> Self {
        Self {
            re: -self.im,
            im: self.re,
        }
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    #[inline]
    fn add(self, rhs: Self) -> Self {
        Self::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex64 {
    #[inline]
    fn add_assign(&mut self, rhs: Self) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        Self::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl SubAssign for Complex64 {
    #[inline]
    fn sub_assign(&mut self, rhs: Self) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: Self) -> Self {
        Self::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl MulAssign for Complex64 {
    #[inline]
    fn mul_assign(&mut self, rhs: Self) {
        *self = *self * rhs;
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn mul(self, rhs: f64) -> Self {
        self.scale(rhs)
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    #[inline]
    fn div(self, rhs: f64) -> Self {
        self.scale(1.0 / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    #[inline]
    fn neg(self) -> Self {
        Self::new(-self.re, -self.im)
    }
}

impl From<f64> for Complex64 {
    #[inline]
    fn from(re: f64) -> Self {
        Self::from_re(re)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-15;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(3.0, -4.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z, Complex64::new(-3.0, 4.0));
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sqr(), 25.0);
    }

    #[test]
    fn multiplication() {
        // (1+2i)(3+4i) = 3+4i+6i−8 = −5+10i
        let a = Complex64::new(1.0, 2.0);
        let b = Complex64::new(3.0, 4.0);
        assert_eq!(a * b, Complex64::new(-5.0, 10.0));
    }

    #[test]
    fn conj_and_mul_i() {
        let z = Complex64::new(1.0, 2.0);
        assert_eq!(z.conj(), Complex64::new(1.0, -2.0));
        assert_eq!(z.mul_i(), z * Complex64::I);
        // z·z̄ = |z|²
        let p = z * z.conj();
        assert!((p.re - z.norm_sqr()).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn cis_unit_circle() {
        use std::f64::consts::PI;
        let z = Complex64::cis(PI / 2.0);
        assert!((z.re).abs() < EPS);
        assert!((z.im - 1.0).abs() < EPS);
        assert!((Complex64::cis(PI).re + 1.0).abs() < EPS);
        // e^{iθ} has unit modulus.
        for k in 0..16 {
            assert!((Complex64::cis(k as f64 * 0.3).abs() - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn scalar_ops() {
        let z = Complex64::new(2.0, -6.0);
        assert_eq!(z * 0.5, Complex64::new(1.0, -3.0));
        assert_eq!(z / 2.0, Complex64::new(1.0, -3.0));
        assert_eq!(Complex64::from(7.0), Complex64::new(7.0, 0.0));
    }
}
