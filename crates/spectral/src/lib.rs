//! # spectral — FFT and the periodic Poisson solver
//!
//! The paper solves the Poisson equation `−Δφ = ρ/ε₀` on a uniform periodic
//! Cartesian grid with a Fourier method (FFTW3 in the original C code). This
//! crate is the from-scratch Rust substrate for that step:
//!
//! * [`Complex64`] — a minimal complex type (no external num crates);
//! * [`fft`] — iterative radix-2 Cooley–Tukey FFT, forward/inverse, 1-D and
//!   2-D (row–column decomposition);
//! * [`poisson`] — the spectral Poisson solver returning the electric field
//!   `E = −∇φ` at the grid points.
//!
//! ## Example: one Poisson solve
//!
//! ```
//! use spectral::poisson::PoissonSolver2D;
//!
//! let n = 32;
//! let solver =
//!     PoissonSolver2D::new(n, n, 2.0 * std::f64::consts::PI, 2.0 * std::f64::consts::PI)
//!         .unwrap();
//! // ρ(x, y) = cos(x): the exact solution of −Δφ = ρ has E_x = −sin(x), E_y = 0.
//! let lx = solver.lx();
//! let rho: Vec<f64> = (0..n * n)
//!     .map(|i| (((i / n) as f64) * lx / n as f64).cos())
//!     .collect();
//! let mut ex = vec![0.0; n * n];
//! let mut ey = vec![0.0; n * n];
//! solver.solve_e(&rho, &mut ex, &mut ey);
//! assert!(ex[0].abs() < 1e-12); // E_x(0, y) = −sin(0) = 0
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod complex;
pub mod dispersion;
pub mod fft;
pub mod poisson;

pub use complex::Complex64;

/// Error type for spectral operations.
#[derive(Debug, Clone, PartialEq)]
pub enum SpectralError {
    /// The transform length must be a power of two.
    NotPowerOfTwo {
        /// Offending length.
        len: usize,
    },
    /// A grid dimension was zero.
    ZeroDimension,
    /// A physical extent was not strictly positive.
    BadExtent {
        /// Offending extent value.
        extent: f64,
    },
}

impl std::fmt::Display for SpectralError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpectralError::NotPowerOfTwo { len } => {
                write!(f, "FFT length must be a power of two, got {len}")
            }
            SpectralError::ZeroDimension => write!(f, "grid dimensions must be nonzero"),
            SpectralError::BadExtent { extent } => {
                write!(f, "physical extent must be positive, got {extent}")
            }
        }
    }
}

impl std::error::Error for SpectralError {}
