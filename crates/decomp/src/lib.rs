//! # decomp — spatial domain decomposition for the PIC simulation
//!
//! The paper deliberately replicates the grid: every rank owns a slice of
//! one global particle population, deposits a partial ρ over the *whole*
//! grid, and an allreduce reconstitutes the global density (§V-A). That is
//! simple and load-balanced, but the per-rank communication volume is the
//! full grid per step and every rank stores every cell — weak scaling stops
//! at the allreduce bandwidth.
//!
//! This crate shards the simulation *spatially* instead:
//!
//! * [`Partition`] cuts a space-filling-curve cell ordering (row-major,
//!   Morton, or Hilbert — the `sfc` crate's layouts) into contiguous,
//!   near-equal ranges of cell indices, optionally weighted by per-cell
//!   particle counts. Because `icell` *is* the SFC index, a contiguous
//!   index range is a spatially compact subdomain, and a particle's owner
//!   is a binary search away.
//! * [`HaloPlan`] derives, purely from the partition, which grid points a
//!   rank's deposition can touch beyond its own cells (the write halo of
//!   the redundant `[4]`/`[8]` cell structures) and therefore which partial
//!   ρ values must travel to which neighbor — plus the point set where the
//!   rank needs E to kick its particles.
//! * [`DecomposedSimulation`] composes these with the existing
//!   [`Simulation`](pic_core::sim::Simulation) kernels: deposit locally,
//!   halo-exchange partial ρ to the owning ranks over minimpi
//!   point-to-point messages, gather the owned densities to a root that
//!   runs the (global, spectral) Poisson solve, scatter each subdomain's E
//!   values back, and migrate particles whose `icell` left the subdomain
//!   before the next kick.
//!
//! The decomposed trajectory matches a serial run of the same
//! configuration to ≤1e-9 on ρ and E (only floating-point summation order
//! differs), and its per-rank communication volume is boundary-sized
//! rather than grid-sized — see `results/BENCH_scaling.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod driver;
pub mod elastic;
mod halo;
mod partition;
mod slab;

pub use driver::{CommStats, DecompConfig, DecomposedSimulation, SolverMode};
pub use elastic::{run_elastic_member, run_elastic_spare, ElasticConfig, ElasticOutcome};
pub use halo::{
    exchange_current, exchange_current_routed, exchange_rho, exchange_rho_routed, HaloPlan,
};
pub use partition::{particle_cell_weights, Partition};
pub use slab::SlabSolver;

use minimpi::CommError;
use pic_core::PicError;

/// Errors from the decomposition layer.
#[derive(Debug)]
pub enum DecompError {
    /// An error from the underlying simulation kernels.
    Pic(PicError),
    /// A communication failure (fault injection, dead peer, timeout).
    Comm(CommError),
    /// A configuration the decomposition cannot run.
    Config(String),
    /// A particle outran the halo: after a position update its cell lies
    /// outside this rank's write region, so its deposition would corrupt
    /// a point no exchange covers. Raise `halo_width` (or shrink `dt`).
    Leakage {
        /// Rank that detected the stray particle.
        rank: usize,
        /// The particle's cell index after the position update.
        icell: usize,
        /// Step at which it was detected.
        step: u64,
    },
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompError::Pic(e) => write!(f, "simulation error: {e}"),
            DecompError::Comm(e) => write!(f, "communication error: {e}"),
            DecompError::Config(msg) => write!(f, "decomposition config: {msg}"),
            DecompError::Leakage { rank, icell, step } => write!(
                f,
                "rank {rank} step {step}: particle outran the halo into cell {icell}; \
                 increase halo_width"
            ),
        }
    }
}

impl std::error::Error for DecompError {}

impl From<PicError> for DecompError {
    fn from(e: PicError) -> Self {
        DecompError::Pic(e)
    }
}

impl From<CommError> for DecompError {
    fn from(e: CommError) -> Self {
        DecompError::Comm(e)
    }
}
