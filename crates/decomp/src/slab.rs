//! Slab-distributed spectral Poisson solve: no rank ever holds the full
//! grid.
//!
//! The root-gather path assembles the whole `nx × ny` density on one rank
//! and solves there — O(grid) memory and solve time on the root, with every
//! other rank idle. This module distributes the row–column FFT instead:
//!
//! * each rank owns a contiguous **row slab** (`chunk_range(nx, p, r)` grid
//!   rows) for the y-direction passes, and a contiguous **column slab**
//!   (`chunk_range(ny, p, r)` transposed rows) for the x-direction passes;
//! * the distributed transpose between the two layouts is one
//!   [`Comm::try_all_to_all`] block exchange — the classic slab/pencil
//!   dance of distributed FFTs;
//! * the spectral scale `Ê = −ik ρ̂ / |k|²` runs element-wise in the
//!   transposed layout with the exact expression of
//!   `PoissonSolver2D::scale_spectral`, so every coefficient carries the
//!   same bits as the serial solve.
//!
//! Bit-exactness with [`PoissonSolver2D::solve_e`]: the serial 2-D forward
//! runs rows (y) then columns (x), the inverse columns then rows — and each
//! 1-D transform is an independent in-place butterfly over the same values
//! in the same order no matter which rank executes it. The slab pipeline
//! replicates those per-transform value sequences exactly (rows of the row
//! slab, then rows of the transposed column slab), so the solved E matches
//! the serial field bit for bit. The parity tests assert `to_bits`
//! equality.
//!
//! Per-rank memory is four slab buffers ≈ `64·nx·ny/p` bytes — it *shrinks*
//! as ranks are added, where the root-gather path pinned O(grid) on the
//! root regardless of `p` (see `results/BENCH_solver.json`).

use crate::DecompError;
use minimpi::Comm;
use pic_core::pool::chunk_range;
use spectral::fft::{Fft2Plan, FftPlan};
use spectral::poisson::wavenumbers;
use spectral::Complex64;

/// Distributed slab solver state for one rank: 1-D plans, wavenumbers,
/// the point routing tables, and the reusable slab buffers.
pub struct SlabSolver {
    nx: usize,
    ny: usize,
    /// This rank's index within the communicator group.
    me: usize,
    /// Row-slab bounds `[r0, r1)` of every rank: grid rows for the
    /// y-direction passes.
    row_bounds: Vec<(usize, usize)>,
    /// Column-slab bounds `[c0, c1)` of every rank: grid columns, i.e.
    /// rows of the transposed layout, for the x-direction passes.
    col_bounds: Vec<(usize, usize)>,
    /// Shared 1-D plans (one table on square grids).
    plan: Fft2Plan,
    kx: Vec<f64>,
    ky: Vec<f64>,
    /// `rho_send[q]`: this rank's owned points whose grid row lies in
    /// rank `q`'s slab (ascending point order on both endpoints).
    rho_send: Vec<Vec<usize>>,
    /// `rho_recv[q]`: rank `q`'s owned points within this rank's slab.
    rho_recv: Vec<Vec<usize>>,
    /// `e_send[q]`: rank `q`'s E points within this rank's slab.
    e_send: Vec<Vec<usize>>,
    /// `e_recv[q]`: this rank's E points within rank `q`'s slab.
    e_recv: Vec<Vec<usize>>,
    /// Row slab (`nrows × ny`), holds ρ̂ then Ex on the way back.
    slab: Vec<Complex64>,
    /// Second row slab for Ey.
    slab2: Vec<Complex64>,
    /// Column slab (`ncols × nx`, transposed layout), ρ̂ᵀ then Êx.
    tslab: Vec<Complex64>,
    /// Second column slab for Êy.
    tslab2: Vec<Complex64>,
}

impl SlabSolver {
    /// Build the solver for rank `me` of `p`: slab bounds, FFT plans, and
    /// the all-to-all routing lists derived from every rank's owned/E point
    /// sets (both endpoints filter the same ascending lists, so sender and
    /// receiver agree on payload order without any index traffic).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        nx: usize,
        ny: usize,
        lx: f64,
        ly: f64,
        me: usize,
        p: usize,
        all_owned_points: &[Vec<usize>],
        all_e_points: &[Vec<usize>],
    ) -> Result<Self, DecompError> {
        let plan = Fft2Plan::new(nx, ny)
            .map_err(|e| DecompError::Config(format!("slab solver plan: {e}")))?;
        let row_bounds: Vec<_> = (0..p).map(|r| chunk_range(nx, p, r)).collect();
        let col_bounds: Vec<_> = (0..p).map(|r| chunk_range(ny, p, r)).collect();
        let (r0, r1) = row_bounds[me];
        let (c0, c1) = col_bounds[me];

        let in_rows =
            |bounds: (usize, usize)| move |&&pt: &&usize| pt / ny >= bounds.0 && pt / ny < bounds.1;
        let rho_send: Vec<Vec<usize>> = (0..p)
            .map(|q| {
                all_owned_points[me]
                    .iter()
                    .filter(in_rows(row_bounds[q]))
                    .copied()
                    .collect()
            })
            .collect();
        let rho_recv: Vec<Vec<usize>> = (0..p)
            .map(|q| {
                all_owned_points[q]
                    .iter()
                    .filter(in_rows(row_bounds[me]))
                    .copied()
                    .collect()
            })
            .collect();
        let e_send: Vec<Vec<usize>> = (0..p)
            .map(|q| {
                all_e_points[q]
                    .iter()
                    .filter(in_rows(row_bounds[me]))
                    .copied()
                    .collect()
            })
            .collect();
        let e_recv: Vec<Vec<usize>> = (0..p)
            .map(|q| {
                all_e_points[me]
                    .iter()
                    .filter(in_rows(row_bounds[q]))
                    .copied()
                    .collect()
            })
            .collect();

        Ok(Self {
            nx,
            ny,
            me,
            row_bounds,
            col_bounds,
            plan,
            kx: wavenumbers(nx, lx),
            ky: wavenumbers(ny, ly),
            rho_send,
            rho_recv,
            e_send,
            e_recv,
            slab: vec![Complex64::ZERO; (r1 - r0) * ny],
            slab2: vec![Complex64::ZERO; (r1 - r0) * ny],
            tslab: vec![Complex64::ZERO; (c1 - c0) * nx],
            tslab2: vec![Complex64::ZERO; (c1 - c0) * nx],
        })
    }

    /// Persistent per-rank buffer bytes — the slab path's grid memory
    /// footprint, which shrinks as ranks are added.
    pub fn solver_bytes(&self) -> u64 {
        ((self.slab.len() + self.slab2.len() + self.tslab.len() + self.tslab2.len())
            * std::mem::size_of::<Complex64>()) as u64
    }

    /// This rank's row-slab bounds `[r0, r1)`.
    pub fn rows(&self) -> (usize, usize) {
        self.row_bounds[self.me]
    }

    /// Distributed solve (collective): `rho` holds global density at this
    /// rank's owned points; on return `ex`/`ey` hold the solved field at
    /// this rank's E points. Uses tags `tag0 .. tag0+3` (ρ scatter,
    /// forward transpose, inverse transpose, E delivery).
    pub fn solve(
        &mut self,
        comm: &mut Comm,
        rho: &[f64],
        ex: &mut [f64],
        ey: &mut [f64],
        tag0: u64,
    ) -> Result<(), DecompError> {
        let (ny, nx) = (self.ny, self.nx);
        let (r0, _) = self.row_bounds[self.me];
        let (c0, c1) = self.col_bounds[self.me];
        let p = self.row_bounds.len();

        // 1. Route owned ρ to slab owners.
        let blocks: Vec<Vec<f64>> = (0..p)
            .map(|q| self.rho_send[q].iter().map(|&pt| rho[pt]).collect())
            .collect();
        let parts = comm.try_all_to_all(&blocks, tag0)?;
        for (q, vals) in parts.iter().enumerate() {
            debug_assert_eq!(vals.len(), self.rho_recv[q].len());
            for (&pt, &v) in self.rho_recv[q].iter().zip(vals) {
                self.slab[(pt / ny - r0) * ny + pt % ny] = Complex64::from_re(v);
            }
        }

        // 2. Forward y pass: each slab row is a full grid row.
        for r in self.slab.chunks_exact_mut(ny) {
            self.plan.row_plan().forward(r);
        }

        // 3. Distributed forward transpose: row slabs → column slabs.
        let blocks: Vec<Vec<f64>> = (0..p)
            .map(|q| {
                let (qc0, qc1) = self.col_bounds[q];
                let mut b = Vec::with_capacity(self.slab.len() / ny.max(1) * (qc1 - qc0) * 2);
                for row in self.slab.chunks_exact(ny) {
                    for &z in &row[qc0..qc1] {
                        b.push(z.re);
                        b.push(z.im);
                    }
                }
                b
            })
            .collect();
        let parts = comm.try_all_to_all(&blocks, tag0 + 1)?;
        for (q, vals) in parts.iter().enumerate() {
            let (qr0, qr1) = self.row_bounds[q];
            debug_assert_eq!(vals.len(), (qr1 - qr0) * (c1 - c0) * 2);
            let mut it = vals.chunks_exact(2);
            for i in 0..qr1 - qr0 {
                for jt in 0..c1 - c0 {
                    let v = it.next().expect("transpose payload underrun");
                    self.tslab[jt * nx + qr0 + i] = Complex64::new(v[0], v[1]);
                }
            }
        }

        // 4. Forward x pass: each transposed-slab row is a full grid column.
        for r in self.tslab.chunks_exact_mut(nx) {
            self.plan.col_plan().forward(r);
        }

        // 5. Spectral scale in the transposed layout — the exact per-mode
        //    expression of the serial solver, so every Ê bit matches.
        for jt in 0..c1 - c0 {
            let ky = self.ky[c0 + jt];
            for ix in 0..nx {
                let kx = self.kx[ix];
                let k2 = kx * kx + ky * ky;
                let idx = jt * nx + ix;
                if k2 != 0.0 {
                    let phi_hat = self.tslab[idx] / k2;
                    self.tslab[idx] = -phi_hat.mul_i().scale(kx);
                    self.tslab2[idx] = -phi_hat.mul_i().scale(ky);
                } else {
                    self.tslab[idx] = Complex64::ZERO;
                    self.tslab2[idx] = Complex64::ZERO;
                }
            }
        }

        // 6. Inverse x pass on both fields (the serial inverse runs columns
        //    first, rows second — flip of the forward order).
        for r in self.tslab.chunks_exact_mut(nx) {
            self.plan.col_plan().inverse(r);
        }
        for r in self.tslab2.chunks_exact_mut(nx) {
            self.plan.col_plan().inverse(r);
        }

        // 7. One combined inverse transpose: both fields per message.
        let blocks: Vec<Vec<f64>> = (0..p)
            .map(|q| {
                let (qr0, qr1) = self.row_bounds[q];
                let mut b = Vec::with_capacity((qr1 - qr0) * (c1 - c0) * 4);
                for t in [&self.tslab, &self.tslab2] {
                    for jt in 0..c1 - c0 {
                        for &z in &t[jt * nx + qr0..jt * nx + qr1] {
                            b.push(z.re);
                            b.push(z.im);
                        }
                    }
                }
                b
            })
            .collect();
        let parts = comm.try_all_to_all(&blocks, tag0 + 2)?;
        for (q, vals) in parts.iter().enumerate() {
            let (qc0, qc1) = self.col_bounds[q];
            let half = vals.len() / 2;
            debug_assert_eq!(half, (qc1 - qc0) * (self.slab.len() / ny.max(1)) * 2);
            for (dst, field) in [
                (&mut self.slab, &vals[..half]),
                (&mut self.slab2, &vals[half..]),
            ] {
                let mut it = field.chunks_exact(2);
                for jt in 0..qc1 - qc0 {
                    for i in 0..dst.len() / ny.max(1) {
                        let v = it.next().expect("transpose payload underrun");
                        dst[i * ny + qc0 + jt] = Complex64::new(v[0], v[1]);
                    }
                }
            }
        }

        // 8. Inverse y pass on both fields.
        for r in self.slab.chunks_exact_mut(ny) {
            self.plan.row_plan().inverse(r);
        }
        for r in self.slab2.chunks_exact_mut(ny) {
            self.plan.row_plan().inverse(r);
        }

        // 9. Deliver E to each rank's E points.
        let blocks: Vec<Vec<f64>> = (0..p)
            .map(|q| {
                let mut b = Vec::with_capacity(self.e_send[q].len() * 2);
                for &pt in &self.e_send[q] {
                    let i = (pt / ny - r0) * ny + pt % ny;
                    b.push(self.slab[i].re);
                    b.push(self.slab2[i].re);
                }
                b
            })
            .collect();
        let parts = comm.try_all_to_all(&blocks, tag0 + 3)?;
        for (q, vals) in parts.iter().enumerate() {
            debug_assert_eq!(vals.len(), self.e_recv[q].len() * 2);
            for (&pt, v) in self.e_recv[q].iter().zip(vals.chunks_exact(2)) {
                ex[pt] = v[0];
                ey[pt] = v[1];
            }
        }
        Ok(())
    }

    /// The length-`ny` plan of the y passes (exposed for benchmarks).
    pub fn row_plan(&self) -> &FftPlan {
        self.plan.row_plan()
    }
}
