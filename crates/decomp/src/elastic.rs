//! Elastic recovery: rank rejoin, live re-partition, and graceful
//! degradation under sustained faults.
//!
//! The crash-fault story so far only *shrinks*: a death costs a rank for
//! the rest of the run, and the replicated runner's rollback machinery
//! does not exist for the spatially decomposed path at all. This module
//! closes both gaps with one runner:
//!
//! * **Rejoin.** Spare ranks park in [`minimpi::Comm::try_join`]; after a
//!   shrink the surviving members vote one in
//!   ([`minimpi::Comm::try_admit`]), the joiner adopts the dead rank's
//!   partition *slot*, receives the slot's buddy snapshot, and the group
//!   replays from the agreed rollback step at full strength —
//!   **bit-exact** against a fault-free run of the same schedule, because
//!   every per-step summation order is a function of the slot geometry
//!   alone, never of which world rank hosts which slot.
//! * **Live re-partition.** On a fixed schedule (and after any shrink
//!   that leaves a slot orphaned) the group histograms its particle
//!   population, re-cuts the space-filling curve, and migrates only the
//!   displaced cells' particles plus a pointwise field handoff
//!   ([`DecomposedSimulation::recut_to`]). Scheduled re-cuts replay
//!   idempotently after a rollback: the particle multiset at the boundary
//!   is unchanged, so the histogram — exact integers, order-independent —
//!   reproduces the same cuts and the replayed re-cut moves nothing.
//! * **Graceful degradation.** When sustained faults push the live count
//!   below [`ElasticConfig::slab_floor`], the slab-distributed Poisson
//!   solve falls back to root-gather; at one survivor the decomposition
//!   degenerates to a replicated single-domain run. Both transitions are
//!   ledgered as [`FaultKind::Degrade`] and checkpoints stay portable
//!   across them (the snapshot fingerprint never covered solver
//!   parallelism).
//!
//! See `DESIGN.md` § "Elastic recovery model" for the protocol walk-through
//! and the bit-exactness argument.

use crate::{DecompConfig, DecompError, DecomposedSimulation, SolverMode};
use minimpi::{Comm, CommError};
use pic_core::faultlog::{FaultKind, FaultLog};
use pic_core::particles::ParticlesSoA;
use pic_core::resilience::checkpoint as ckpt;
use pic_core::resilience::{pack_snaps, unpack_snaps};
use pic_core::sim::PicConfig;
use std::ops::Range;
use std::time::Duration;

/// Buddy-checkpoint exchange tags: `base + (epoch << 24) + step` — unique
/// per (epoch, step), below the driver's step-tag namespace (2⁴²).
const ECKPT_TAG: u64 = 1 << 41;
/// Recovery-protocol tags (rollback gather/broadcast, topology broadcast,
/// snapshot handoff): `base + (epoch << 12) + offset`. Collectives are
/// additionally epoch-qualified by minimpi itself; the explicit epoch mix
/// matters for the point-to-point snapshot handoff.
const EREC_TAG: u64 = (1 << 41) + (1 << 40);

/// Knobs for the elastic runner.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Take a coordinated ring-buddy checkpoint every this many steps (≥ 1).
    pub checkpoint_every: u64,
    /// Re-cut the partition from a live particle histogram every this many
    /// steps; 0 disables scheduled re-cuts.
    pub recut_every: u64,
    /// Minimum live-rank count for the slab-distributed solve; below it
    /// the run degrades to [`SolverMode::RootGather`] instead of erroring.
    /// At one survivor the run always degenerates to a replicated
    /// single-domain simulation, whatever the floor.
    pub slab_floor: usize,
    /// Give up after this many completed recoveries.
    pub max_recoveries: usize,
    /// Arm the heartbeat failure detector with this timeout.
    pub heartbeat_timeout: Option<Duration>,
    /// Override the transport receive deadline for the whole run.
    pub recv_deadline: Option<Duration>,
    /// How long a spare waits in [`minimpi::Comm::try_join`] before giving
    /// up on ever being admitted.
    pub join_deadline: Duration,
    /// Admission votes each recovery attempts before concluding no spare
    /// is available and recovering at reduced strength. Every member runs
    /// the same count, and each vote's result is collectively agreed, so
    /// the group exits the loop in lockstep.
    pub admit_attempts: usize,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 5,
            recut_every: 0,
            slab_floor: 2,
            max_recoveries: 4,
            heartbeat_timeout: None,
            recv_deadline: None,
            join_deadline: Duration::from_secs(10),
            admit_attempts: 3,
        }
    }
}

/// What one world rank ends an elastic run with.
#[derive(Debug, Clone)]
pub struct ElasticOutcome {
    /// This rank's world rank.
    pub world_rank: usize,
    /// False if this rank was killed by a crash fault.
    pub survivor: bool,
    /// True if this rank started as a spare and was admitted mid-run.
    pub joined: bool,
    /// The partition slot this rank hosts at the end (`None` for a spare
    /// that was never admitted, or a killed rank).
    pub slot: Option<usize>,
    /// Slots (= live ranks) at the end of the run.
    pub nslots: usize,
    /// Completed steps.
    pub steps: u64,
    /// Completed recoveries (shrink/admit + rollback cycles).
    pub recoveries: usize,
    /// Coordinated checkpoints committed.
    pub checkpoints: usize,
    /// Re-cut operations performed (scheduled + recovery, incl. replays).
    pub recuts: usize,
    /// The solver mode in force at the end.
    pub mode: Option<SolverMode>,
    /// Final local particles (the slot's population, in the deterministic
    /// slot-ordered array layout).
    pub particles: ParticlesSoA,
    /// Grid points owned by the final slot, ascending.
    pub owned_points: Vec<usize>,
    /// ρ at [`owned_points`](Self::owned_points), in order.
    pub rho_owned: Vec<f64>,
    /// E·x at [`owned_points`](Self::owned_points), in order.
    pub ex_owned: Vec<f64>,
    /// E·y at [`owned_points`](Self::owned_points), in order.
    pub ey_owned: Vec<f64>,
    /// This rank's fault ledger (driver + runner events merged); merge the
    /// per-rank logs with [`FaultLog::merge`] for the whole story.
    pub log: FaultLog,
}

impl ElasticOutcome {
    fn empty(world_rank: usize, survivor: bool, joined: bool, log: FaultLog) -> Self {
        Self {
            world_rank,
            survivor,
            joined,
            slot: None,
            nslots: 0,
            steps: 0,
            recoveries: 0,
            checkpoints: 0,
            recuts: 0,
            mode: None,
            particles: ParticlesSoA::default(),
            owned_points: Vec::new(),
            rho_owned: Vec::new(),
            ex_owned: Vec::new(),
            ey_owned: Vec::new(),
            log,
        }
    }
}

/// One committed checkpoint generation. The runner keeps the last two, so
/// a crash mid-exchange (some ranks committed, some not) still leaves a
/// globally agreed generation — recovery takes the minimum of the latest
/// committed steps, which every rank holds as its latest or its previous.
struct Ckpt {
    step: u64,
    /// Partition ranges in force at checkpoint time.
    ranges: Vec<Range<usize>>,
    /// Slot → hosting world rank at checkpoint time.
    slot_owner: Vec<usize>,
    /// This rank's slot at checkpoint time.
    my_slot: usize,
    /// This rank's own snapshot.
    own: Vec<u8>,
    /// The ward's packed snapshot (ring predecessor in slot space), held
    /// in transport form and unpacked only if recovery needs it.
    buddy: Vec<f64>,
}

struct LoopState {
    cks: Vec<Ckpt>,
    step: u64,
    need_ckpt: bool,
    joined: bool,
    recoveries: usize,
    checkpoints: usize,
    recuts: usize,
    log: FaultLog,
}

/// The solver mode a group of `live` ranks runs: the configured mode,
/// degraded to root-gather below the floor, and always root-gather for the
/// degenerate single-rank (replicated) group, where gather/scatter are
/// no-ops and the "root" solve is simply local.
fn mode_for(live: usize, dcfg: &DecompConfig, ecfg: &ElasticConfig) -> SolverMode {
    if live == 1 || live < ecfg.slab_floor {
        SolverMode::RootGather
    } else {
        dcfg.solver
    }
}

fn mode_code(m: SolverMode) -> f64 {
    match m {
        SolverMode::Slab => 0.0,
        SolverMode::RootGather => 1.0,
    }
}

fn is_rank_failed(e: &DecompError) -> Option<(usize, usize)> {
    match e {
        DecompError::Comm(CommError::RankFailed { rank, failed }) => Some((*rank, *failed)),
        _ => None,
    }
}

/// One unit of forward progress at step boundary `st.step`: the scheduled
/// re-cut (when due), the coordinated ring-buddy checkpoint (when due),
/// and one driver step. Any [`CommError::RankFailed`] surfaces to the
/// caller's recovery handler.
fn boundary_cycle(
    comm: &mut Comm,
    drv: &mut DecomposedSimulation,
    ecfg: &ElasticConfig,
    st: &mut LoopState,
) -> Result<(), DecompError> {
    // Scheduled re-cut first, so a due checkpoint captures the post-re-cut
    // partition (a rollback to this boundary then replays the re-cut as an
    // exact no-op: same particle multiset → same histogram → same cuts).
    if ecfg.recut_every > 0 && st.step > 0 && st.step.is_multiple_of(ecfg.recut_every) {
        drv.recut(comm)?;
        st.recuts += 1;
    }

    if st.need_ckpt {
        let own = drv.checkpoint();
        let slot_owner = drv.slot_owner().to_vec();
        let n = slot_owner.len();
        let my_slot = drv.my_slot();
        let buddy = if n > 1 {
            // Ring buddies in *slot* space: slot s replicates to the host
            // of slot (s+1) mod n, so recovery can locate a dead slot's
            // copy from the checkpoint-time topology alone.
            let tag = ECKPT_TAG + (comm.epoch() << 24) + st.step;
            let payload = pack_snaps(&[(my_slot, own.clone())]);
            comm.try_send(slot_owner[(my_slot + 1) % n], tag, &payload)?;
            let got = comm.try_recv_group(slot_owner[(my_slot + n - 1) % n], tag)?;
            st.log.record(
                st.step,
                comm.rank(),
                comm.op_count(),
                FaultKind::BuddyStore,
                format!(
                    "holding slot {} for rank {}",
                    (my_slot + n - 1) % n,
                    slot_owner[(my_slot + n - 1) % n]
                ),
            );
            got
        } else {
            Vec::new()
        };
        st.log.record(
            st.step,
            comm.rank(),
            comm.op_count(),
            FaultKind::Checkpoint,
            format!("step {}, slot {my_slot} of {n}", st.step),
        );
        st.cks.push(Ckpt {
            step: st.step,
            ranges: drv.partition().ranges().to_vec(),
            slot_owner,
            my_slot,
            own,
            buddy,
        });
        if st.cks.len() > 2 {
            st.cks.remove(0);
        }
        st.checkpoints += 1;
        st.need_ckpt = false;
    }

    drv.step(comm)
}

/// Shrink, try to admit a waiting spare, agree on the rollback step,
/// re-establish the topology (joiner adoption or orphan re-cut), and roll
/// everyone back. On return the driver is consistent and `st.step` is the
/// agreed resume step.
fn recover(
    comm: &mut Comm,
    drv: &mut DecomposedSimulation,
    dcfg: &DecompConfig,
    ecfg: &ElasticConfig,
    st: &mut LoopState,
) -> Result<(), DecompError> {
    let rank = comm.rank();
    let prev_mode = drv.solver_mode();
    comm.shrink()?;
    st.log.ingest_transport(st.step, comm.take_events());
    if st.cks.is_empty() {
        return Err(DecompError::Config(
            "unrecoverable: rank failed before the first checkpoint committed".into(),
        ));
    }

    // Offer waiting spares a seat. Each vote is an agreed collective, so
    // every member sees the same result and exits the loop together; a
    // spare announced after the last vote simply waits for the next
    // recovery (or the end of the run).
    for _ in 0..ecfg.admit_attempts.max(1) {
        if comm.try_admit()?.is_some() {
            break;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    st.log.ingest_transport(st.step, comm.take_events());
    let group = comm.group().to_vec();

    // Agree on the rollback step: the newest step *every* incumbent has a
    // committed checkpoint for (a crash mid-exchange can leave latest
    // generations off by one). A freshly admitted joiner votes -1 — it
    // holds nothing and adopts whatever the incumbents agree.
    let latest = st.cks.last().expect("non-empty").step as f64;
    let gathered = comm.try_gather(&[latest], EREC_TAG)?;
    let mut buf = [gathered
        .map(|parts| {
            parts
                .iter()
                .map(|p| p[0])
                .filter(|&v| v >= 0.0)
                .fold(f64::INFINITY, f64::min)
        })
        .unwrap_or(0.0)];
    comm.try_broadcast(&mut buf, EREC_TAG + 1)?;
    let agreed = buf[0] as u64;
    let ck = st
        .cks
        .iter()
        .rev()
        .find(|c| c.step == agreed)
        .ok_or_else(|| {
            DecompError::Config(format!(
                "unrecoverable: no local checkpoint for agreed rollback step {agreed}"
            ))
        })?;

    // Resolve the new topology. Dead slots are matched to admitted joiners
    // in ascending slot order; slots left over are orphans, recovered from
    // their ring buddy and re-absorbed by a full re-cut.
    let old_n = ck.slot_owner.len();
    let dead: Vec<usize> = (0..old_n)
        .filter(|&s| !group.contains(&ck.slot_owner[s]))
        .collect();
    let joiners: Vec<usize> = group
        .iter()
        .copied()
        .filter(|r| !ck.slot_owner.contains(r))
        .collect();
    if joiners.len() > dead.len() {
        return Err(DecompError::Config(format!(
            "{} joiner(s) admitted for {} dead slot(s)",
            joiners.len(),
            dead.len()
        )));
    }
    let mut resolved = ck.slot_owner.clone();
    let mut orphans: Vec<usize> = Vec::new();
    for (i, &s) in dead.iter().enumerate() {
        if i < joiners.len() {
            resolved[s] = joiners[i];
        } else {
            orphans.push(s);
        }
    }
    // Holder of slot s's replicated snapshot: the checkpoint-time host of
    // the ring successor slot. Losing a slot and its buddy together loses
    // the only copy.
    let holder = |s: usize| ck.slot_owner[(s + 1) % old_n];
    for &s in &dead {
        if !group.contains(&holder(s)) {
            return Err(DecompError::Config(format!(
                "unrecoverable: slot {s} and its buddy (rank {}) both failed",
                holder(s)
            )));
        }
    }
    let new_mode = mode_for(group.len(), dcfg, ecfg);

    // Topology broadcast — redundant for incumbents (they all computed the
    // same resolution above) but it is what hands a joiner the cuts, the
    // old hosting (to locate its snapshot's holder), and the mode. Fixed
    // world-sized layout so a joiner can size the buffer without knowing
    // the slot count: [agreed, old_n, mode, ends…, old hosts…, resolved…]
    // with -1 marking an orphan slot.
    {
        let w = comm.size();
        let mut payload = vec![0.0f64; 3 + 3 * w];
        payload[0] = agreed as f64;
        payload[1] = old_n as f64;
        payload[2] = mode_code(new_mode);
        for s in 0..old_n {
            payload[3 + s] = ck.ranges[s].end as f64;
            payload[3 + w + s] = ck.slot_owner[s] as f64;
            payload[3 + 2 * w + s] = if orphans.contains(&s) {
                -1.0
            } else {
                resolved[s] as f64
            };
        }
        comm.try_broadcast(&mut payload, EREC_TAG + 2)?;
    }

    // Snapshot handoff: each adopted slot's holder forwards its packed
    // buddy payload to the joiner. The payload travels in the exact form
    // the checkpoint exchange produced, so forwarding is a copy.
    let htag = EREC_TAG + (comm.epoch() << 12) + 3;
    for (i, &s) in dead.iter().enumerate() {
        if i >= joiners.len() {
            break;
        }
        if holder(s) == rank {
            comm.try_send(joiners[i], htag, &ck.buddy)?;
        }
    }

    // Roll back: re-adopt the checkpoint-time partition and restore the
    // own snapshot (plans and backend stay stale until the topology step
    // below rebuilds them).
    let ranges = ck.ranges.clone();
    let ck_slot = ck.my_slot;
    let own = ck.own.clone();
    let orphan_injections: Vec<(usize, Vec<u8>)> = orphans
        .iter()
        .filter(|&&s| holder(s) == rank)
        .map(|&s| {
            let snaps = unpack_snaps(&ck.buddy);
            let (id, bytes) = snaps.into_iter().next().ok_or_else(|| {
                DecompError::Config(format!("empty buddy payload while recovering slot {s}"))
            })?;
            if id != s {
                return Err(DecompError::Config(format!(
                    "buddy payload holds slot {id}, expected orphan slot {s}"
                )));
            }
            Ok((s, bytes))
        })
        .collect::<Result<_, DecompError>>()?;
    drv.stage_rollback(ranges, ck_slot, &own)?;
    st.log.record(
        agreed,
        rank,
        comm.op_count(),
        FaultKind::Rollback,
        format!("slot {ck_slot} back to step {agreed}"),
    );
    for (s, bytes) in &orphan_injections {
        drv.inject_snapshot(*s, bytes)?;
    }

    if orphans.is_empty() {
        // Full-strength recovery: same partition, joiners in the dead
        // ranks' slots. Pure hosting change — no data moves, and the
        // replayed trajectory is bit-exact against the fault-free run.
        drv.reconfigure_hosts(comm, resolved)?;
    } else {
        // Reduced strength: orphaned state was injected into the buddies;
        // re-cut to the live count, which also redistributes the injected
        // particles to their new owners.
        let mut adoptive = resolved.clone();
        for &s in &orphans {
            adoptive[s] = holder(s);
        }
        let new_my_slot = group
            .iter()
            .position(|&r| r == rank)
            .expect("member of own group");
        drv.recut_to(comm, adoptive, group.clone(), new_my_slot)?;
        st.recuts += 1;
    }

    if new_mode != prev_mode {
        drv.set_solver_mode(comm, new_mode)?;
    }
    // Ledger every rung of the degradation ladder: the solver downgrade
    // (slab → root-gather below the floor) and the final decomposed →
    // replicated collapse at one survivor — the latter even when the
    // solver mode was already degraded on an earlier recovery.
    let degrade = if group.len() == 1 && old_n > 1 {
        Some("replicated single-domain fallback (1 survivor)".to_string())
    } else if prev_mode == SolverMode::Slab && new_mode == SolverMode::RootGather {
        Some(format!(
            "slab solve below floor {}: falling back to root-gather on {} rank(s)",
            ecfg.slab_floor,
            group.len()
        ))
    } else {
        None
    };
    if let Some(detail) = degrade {
        st.log
            .record(agreed, rank, comm.op_count(), FaultKind::Degrade, detail);
    }

    st.step = agreed;
    st.need_ckpt = true; // re-establish buddy pairs under the new topology
    st.recoveries += 1;
    Ok(())
}

/// The shared member loop: step until `nsteps`, recovering from rank
/// failures via [`recover`]. Entered by incumbents at step 0 and by
/// admitted joiners at their adoption step.
fn member_loop(
    comm: &mut Comm,
    mut drv: DecomposedSimulation,
    dcfg: &DecompConfig,
    ecfg: &ElasticConfig,
    nsteps: u64,
    mut st: LoopState,
) -> Result<ElasticOutcome, DecompError> {
    let rank = comm.rank();
    let every = ecfg.checkpoint_every.max(1);
    let res = loop {
        if st.step >= nsteps {
            break Ok(());
        }
        let r = boundary_cycle(comm, &mut drv, ecfg, &mut st);
        st.log.ingest_transport(st.step, comm.take_events());
        match r {
            Ok(()) => {
                st.step += 1;
                if st.step < nsteps && st.step.is_multiple_of(every) {
                    st.need_ckpt = true;
                }
            }
            Err(e) => {
                // A third rank's death reaches a rank blocked on a *live*
                // peer only as a timeout (p2p receives watch their source,
                // not the group); if the detector confirms a dead member,
                // that timeout is a failure signal, not a fatal stall.
                let self_death = matches!(is_rank_failed(&e), Some((r, failed)) if r == failed);
                let peer_death = is_rank_failed(&e).is_some()
                    || (matches!(&e, DecompError::Comm(CommError::Timeout { .. }))
                        && comm.failed_group_member().is_some());
                if self_death || !peer_death {
                    break Err(e);
                }
                if st.recoveries >= ecfg.max_recoveries {
                    break Err(DecompError::Config(format!(
                        "gave up after {} recoveries",
                        st.recoveries
                    )));
                }
                if let Err(re) = recover(comm, &mut drv, dcfg, ecfg, &mut st) {
                    break Err(re);
                }
            }
        }
    };
    // Close the admission board only on a *live* exit (run complete or a
    // genuine error). A killed rank closing it races the survivors'
    // in-flight admission: the spare can see `closed` and leave between
    // the members' unanimous vote and its ticket being posted, leaving
    // the group waiting on a contribution that never comes.
    let self_death =
        matches!(&res, Err(e) if matches!(is_rank_failed(e), Some((r, failed)) if r == failed));
    if !self_death {
        comm.close_joins();
    }
    if let Err(e) = res {
        return match is_rank_failed(&e) {
            // Killed by a crash fault: report the death, not an error.
            Some((r, failed)) if r == failed => {
                let mut log = drv.fault_log().clone();
                log.merge(std::mem::take(&mut st.log));
                let mut out = ElasticOutcome::empty(rank, false, st.joined, log);
                out.steps = st.step;
                out.recoveries = st.recoveries;
                out.checkpoints = st.checkpoints;
                out.recuts = st.recuts;
                Ok(out)
            }
            _ => Err(e),
        };
    }

    // Decode this rank's own final snapshot for the outcome: the canonical
    // view of the slot's particles and owned field values.
    let state = ckpt::decode(&drv.checkpoint())?;
    let owned_points = drv.plan().owned_points.clone();
    let rho_owned: Vec<f64> = owned_points.iter().map(|&p| state.rho[p]).collect();
    let ex_owned: Vec<f64> = owned_points.iter().map(|&p| state.ex[p]).collect();
    let ey_owned: Vec<f64> = owned_points.iter().map(|&p| state.ey[p]).collect();
    let mut log = drv.fault_log().clone();
    log.merge(std::mem::take(&mut st.log));
    Ok(ElasticOutcome {
        world_rank: rank,
        survivor: true,
        joined: st.joined,
        slot: Some(drv.my_slot()),
        nslots: drv.slot_owner().len(),
        steps: st.step,
        recoveries: st.recoveries,
        checkpoints: st.checkpoints,
        recuts: st.recuts,
        mode: Some(drv.solver_mode()),
        particles: state.particles,
        owned_points,
        rho_owned,
        ex_owned,
        ey_owned,
        log,
    })
}

fn apply_comm_cfg(comm: &mut Comm, ecfg: &ElasticConfig) {
    if let Some(d) = ecfg.heartbeat_timeout {
        comm.set_heartbeat_timeout(d);
    }
    if let Some(d) = ecfg.recv_deadline {
        comm.set_recv_deadline(d);
    }
}

/// Run `nsteps` elastically as an initial group member. Pair with
/// [`run_elastic_spare`] on the spare ranks of a
/// [`minimpi::World::run_elastic`] world; every member must pass identical
/// configurations.
///
/// With no faults injected this is a plain decomposed run plus the
/// checkpoint/re-cut schedule; with a kill and an available spare the
/// group shrinks, admits the spare into the dead rank's slot, rolls back,
/// and replays — bit-exact against the fault-free run. With kills and no
/// spares it degrades: fewer slots per re-cut, root-gather below the slab
/// floor, replicated at one survivor.
pub fn run_elastic_member(
    comm: &mut Comm,
    cfg: PicConfig,
    dcfg: DecompConfig,
    ecfg: &ElasticConfig,
    nsteps: u64,
) -> Result<ElasticOutcome, DecompError> {
    apply_comm_cfg(comm, ecfg);
    let st = LoopState {
        cks: Vec::new(),
        step: 0,
        need_ckpt: true, // always hold a committed generation at step 0
        joined: false,
        recoveries: 0,
        checkpoints: 0,
        recuts: 0,
        log: FaultLog::new(),
    };
    let mut effective = dcfg;
    effective.solver = mode_for(comm.group_size(), &dcfg, ecfg);
    let drv = match DecomposedSimulation::new(cfg, effective, comm) {
        Ok(d) => d,
        Err(e) => {
            // A rank killed during construction still reports a death
            // outcome; survivors of such a death cannot recover (nothing
            // checkpointed yet) and surface the error instead.
            return match is_rank_failed(&e) {
                Some((r, failed)) if r == failed => {
                    // Dead ranks perform no protocol actions — in
                    // particular they must not close the join board (see
                    // member_loop); the surviving ranks close it below.
                    let mut log = FaultLog::new();
                    log.ingest_transport(0, comm.take_events());
                    Ok(ElasticOutcome::empty(comm.rank(), false, false, log))
                }
                _ => {
                    comm.close_joins();
                    Err(e)
                }
            };
        }
    };
    let mut st = st;
    st.log.ingest_transport(0, comm.take_events());
    member_loop(comm, drv, &dcfg, ecfg, nsteps, st)
}

/// Run as a spare: park in the admission queue until a recovery votes this
/// rank in, then adopt the dead rank's slot and finish the run as a
/// member. Returns a `joined: false` outcome if the run ends (or
/// [`ElasticConfig::join_deadline`] passes) without an admission.
pub fn run_elastic_spare(
    comm: &mut Comm,
    cfg: PicConfig,
    dcfg: DecompConfig,
    ecfg: &ElasticConfig,
    nsteps: u64,
) -> Result<ElasticOutcome, DecompError> {
    apply_comm_cfg(comm, ecfg);
    let rank = comm.rank();
    let not_joined = |comm: &mut Comm| {
        let mut log = FaultLog::new();
        log.ingest_transport(0, comm.take_events());
        ElasticOutcome::empty(rank, true, false, log)
    };
    match comm.try_join(ecfg.join_deadline) {
        Ok(Some(_)) => {}
        Ok(None) => return Ok(not_joined(comm)),
        Err(CommError::Timeout { .. }) => return Ok(not_joined(comm)),
        Err(e) => return Err(e.into()),
    }

    // Admitted: sync into the recovery protocol the incumbents are running
    // right now, from the rollback agreement onward.
    comm.try_gather(&[-1.0], EREC_TAG)?;
    let mut buf = [0.0f64];
    comm.try_broadcast(&mut buf, EREC_TAG + 1)?;
    let w = comm.size();
    let mut topo = vec![0.0f64; 3 + 3 * w];
    comm.try_broadcast(&mut topo, EREC_TAG + 2)?;
    let agreed = topo[0] as u64;
    let old_n = topo[1] as usize;
    let bcast_mode = if topo[2] == 0.0 {
        SolverMode::Slab
    } else {
        SolverMode::RootGather
    };
    let mut ranges = Vec::with_capacity(old_n);
    let mut start = 0usize;
    for s in 0..old_n {
        let end = topo[3 + s] as usize;
        ranges.push(start..end);
        start = end;
    }
    let old_hosts: Vec<usize> = (0..old_n).map(|s| topo[3 + w + s] as usize).collect();
    let mut orphans: Vec<usize> = Vec::new();
    // Mirror the incumbents' `adoptive` resolution exactly: joiner ranks
    // in adopted slots, the ring buddy standing in for each orphan.
    let adoptive: Vec<usize> = (0..old_n)
        .map(|s| {
            let v = topo[3 + 2 * w + s];
            if v < 0.0 {
                orphans.push(s);
                old_hosts[(s + 1) % old_n]
            } else {
                v as usize
            }
        })
        .collect();
    let my_slot = adoptive
        .iter()
        .position(|&r| r == rank)
        .ok_or_else(|| DecompError::Config(format!("joiner {rank} resolved to no slot")))?;

    // Receive the adopted slot's snapshot from its checkpoint-time buddy.
    let htag = EREC_TAG + (comm.epoch() << 12) + 3;
    let payload = comm.try_recv(old_hosts[(my_slot + 1) % old_n], htag)?;
    let snaps = unpack_snaps(&payload);
    let (id, snapshot) = snaps
        .into_iter()
        .next()
        .ok_or_else(|| DecompError::Config("empty snapshot handoff payload".into()))?;
    if id != my_slot {
        return Err(DecompError::Config(format!(
            "snapshot handoff holds slot {id}, expected {my_slot}"
        )));
    }

    // With orphans pending, the interim hosting is not a bijection (buddy
    // stand-ins double-host), which only the root-gather backend tolerates;
    // the re-cut below rebuilds the real topology, then the agreed mode is
    // installed. Without orphans the agreed mode is valid immediately.
    let mut build_dcfg = dcfg;
    build_dcfg.solver = if orphans.is_empty() {
        bcast_mode
    } else {
        SolverMode::RootGather
    };
    let mut drv = DecomposedSimulation::new_adopted(
        cfg,
        build_dcfg,
        comm,
        ranges,
        adoptive.clone(),
        &snapshot,
    )?;
    let mut st = LoopState {
        cks: Vec::new(),
        step: agreed,
        need_ckpt: true,
        joined: true,
        recoveries: 0,
        checkpoints: 0,
        recuts: 0,
        log: FaultLog::new(),
    };
    if !orphans.is_empty() {
        let group = comm.group().to_vec();
        let new_my_slot = group
            .iter()
            .position(|&r| r == rank)
            .expect("member of own group");
        drv.recut_to(comm, adoptive, group, new_my_slot)?;
        st.recuts += 1;
    }
    drv.set_solver_mode(comm, bcast_mode)?;
    st.log.ingest_transport(agreed, comm.take_events());
    member_loop(comm, drv, &dcfg, ecfg, nsteps, st)
}
