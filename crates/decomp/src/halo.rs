//! Halo planning and ρ exchange for the redundant cell structures.
//!
//! Between two sorts a rank's particles can drift out of its owned cells,
//! so its deposition writes a *halo* of grid points beyond the subdomain.
//! Conversely the points it owns receive contributions from neighbors whose
//! particles drifted toward it. [`HaloPlan`] precomputes, from the
//! partition alone (no runtime negotiation), exactly which point values
//! travel where; both endpoints of every message derive the same list, so
//! neighbor discovery needs no communication.
//!
//! Grid points are identified by their row-major index `ix * ncy + iy`
//! (the `Field2D` convention); each point corresponds 1:1 to the cell with
//! the same coordinates, and a point is *owned* by the rank owning that
//! cell. A cell's deposition and interpolation touch its four corner
//! points `(ix, iy)`, `(ix, iy+1)`, `(ix+1, iy)`, `(ix+1, iy+1)` (periodic
//! wrap) — the redundant `[4]`/`[8]` corner order of `pic_core::fields`.

use crate::{DecompError, Partition};
use minimpi::Comm;

/// The communication plan of one rank, derived purely from the partition.
pub struct HaloPlan {
    /// Halo width in cells (Chebyshev distance particles may travel
    /// between migrations — i.e. in one step).
    pub halo_width: usize,
    /// Mask over cells: `true` where this rank's particles may sit at
    /// deposit time (owned cells dilated by `halo_width`, periodic). A
    /// particle outside this region after a push is a
    /// [`DecompError::Leakage`].
    pub write_cells: Vec<bool>,
    /// Points owned by this rank (cell 1:1 point), ascending.
    pub owned_points: Vec<usize>,
    /// Corner points of owned cells, ascending — the points where this
    /// rank needs E to kick particles (owned points plus a one-point ring).
    pub e_points: Vec<usize>,
    /// Per peer (ascending): points of `peer`'s subdomain this rank's
    /// deposition may touch — their partial values are sent to `peer`.
    pub send: Vec<(usize, Vec<usize>)>,
    /// Per peer (ascending): owned points `peer`'s deposition may touch —
    /// partial values received from `peer` and accumulated.
    pub recv: Vec<(usize, Vec<usize>)>,
    /// Ranks owning any cell of the write region (minus self), ascending —
    /// the only possible sources/destinations of migrating particles.
    pub neighbors: Vec<usize>,
}

/// Mask over cells within Chebyshev distance `h` (periodic) of rank `r`'s
/// owned cells.
fn write_cell_mask(part: &Partition, r: usize, h: usize) -> Vec<bool> {
    let layout = part.layout();
    let (ncx, ncy) = (layout.ncx() as isize, layout.ncy() as isize);
    let mut mask = vec![false; part.ncells()];
    let h = h as isize;
    for c in part.range(r) {
        let (ix, iy) = layout.decode(c);
        for dx in -h..=h {
            let x = (ix as isize + dx).rem_euclid(ncx) as usize;
            for dy in -h..=h {
                let y = (iy as isize + dy).rem_euclid(ncy) as usize;
                mask[layout.encode(x, y)] = true;
            }
        }
    }
    mask
}

/// Mask over grid points touched by depositing in the masked cells: the
/// union of every masked cell's four corner points.
pub(crate) fn corner_point_mask(part: &Partition, cells: &[bool]) -> Vec<bool> {
    let layout = part.layout();
    let (ncx, ncy) = (layout.ncx(), layout.ncy());
    let mut pts = vec![false; ncx * ncy];
    for (c, &m) in cells.iter().enumerate() {
        if !m {
            continue;
        }
        let (ix, iy) = layout.decode(c);
        let (ixp, iyp) = ((ix + 1) % ncx, (iy + 1) % ncy);
        pts[ix * ncy + iy] = true;
        pts[ix * ncy + iyp] = true;
        pts[ixp * ncy + iy] = true;
        pts[ixp * ncy + iyp] = true;
    }
    pts
}

pub(crate) fn mask_of_range(part: &Partition, r: usize) -> Vec<bool> {
    let mut m = vec![false; part.ncells()];
    for c in part.range(r) {
        m[c] = true;
    }
    m
}

/// Owner part of every grid point (row-major `ix * ncy + iy` index): the
/// owner of the 1:1 cell with the same coordinates. Shared by the plan
/// builder and the live re-partition's field handoff.
pub(crate) fn point_owner_map(part: &Partition) -> Vec<usize> {
    let layout = part.layout();
    let ncy = layout.ncy();
    let mut po = vec![0usize; part.ncells()];
    for c in 0..part.ncells() {
        let (ix, iy) = layout.decode(c);
        po[ix * ncy + iy] = part.owner(c);
    }
    po
}

impl HaloPlan {
    /// Build rank `rank`'s plan. Every rank calling this with the same
    /// partition computes mutually consistent send/recv lists (rank A's
    /// send list toward B equals B's recv list from A, in the same point
    /// order), so the exchange needs no handshake.
    pub fn build(part: &Partition, rank: usize, halo_width: usize) -> Self {
        // Owner of each point = owner of the 1:1 cell.
        let point_owner = point_owner_map(part);

        let write_cells = write_cell_mask(part, rank, halo_width);
        let my_write_pts = corner_point_mask(part, &write_cells);

        let owned_points: Vec<usize> = (0..part.ncells())
            .filter(|&p| point_owner[p] == rank)
            .collect();
        let e_points: Vec<usize> = corner_point_mask(part, &mask_of_range(part, rank))
            .iter()
            .enumerate()
            .filter_map(|(p, &m)| m.then_some(p))
            .collect();

        let mut send: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut recv: Vec<(usize, Vec<usize>)> = Vec::new();
        let mut neighbors: Vec<usize> = Vec::new();
        for peer in 0..part.nranks() {
            if peer == rank {
                continue;
            }
            let to_peer: Vec<usize> = (0..part.ncells())
                .filter(|&p| my_write_pts[p] && point_owner[p] == peer)
                .collect();
            if !to_peer.is_empty() {
                send.push((peer, to_peer));
            }
            let peer_write_pts = corner_point_mask(part, &write_cell_mask(part, peer, halo_width));
            let from_peer: Vec<usize> = (0..part.ncells())
                .filter(|&p| peer_write_pts[p] && point_owner[p] == rank)
                .collect();
            if !from_peer.is_empty() {
                recv.push((peer, from_peer));
            }
        }
        for (c, &m) in write_cells.iter().enumerate() {
            if m {
                let o = part.owner(c);
                if o != rank && !neighbors.contains(&o) {
                    neighbors.push(o);
                }
            }
        }
        neighbors.sort_unstable();

        Self {
            halo_width,
            write_cells,
            owned_points,
            e_points,
            send,
            recv,
            neighbors,
        }
    }
}

/// Exchange partial ρ: send this rank's contributions at foreign-owned
/// points, then accumulate neighbors' contributions into owned points.
/// After the call, `rho` holds the *global* density at every owned point
/// (and stale partials elsewhere).
///
/// Deadlock-free by construction: minimpi sends complete without a posted
/// receive (frames park in the receiver's stash), and under a fault plan
/// the sender's ack wait services incoming data frames — so the
/// send-all-then-receive-all order below cannot cycle; injected faults
/// surface as [`DecompError::Comm`].
pub fn exchange_rho(
    comm: &mut Comm,
    plan: &HaloPlan,
    rho: &mut [f64],
    tag: u64,
) -> Result<(), DecompError> {
    exchange_rho_impl(comm, plan, rho, tag, None)
}

/// [`exchange_rho`] with a *slot routing table*: the plan's peer indices
/// are partition slots, and the frame for slot `s` travels to world rank
/// `route[s]`. This is how the elastic driver keeps one halo plan valid
/// across rank deaths and rejoins — the plan (pure partition geometry)
/// survives; only the slot → rank table changes.
pub fn exchange_rho_routed(
    comm: &mut Comm,
    plan: &HaloPlan,
    rho: &mut [f64],
    tag: u64,
    route: &[usize],
) -> Result<(), DecompError> {
    exchange_rho_impl(comm, plan, rho, tag, Some(route))
}

fn exchange_rho_impl(
    comm: &mut Comm,
    plan: &HaloPlan,
    rho: &mut [f64],
    tag: u64,
    route: Option<&[usize]>,
) -> Result<(), DecompError> {
    let dst = |slot: usize| route.map_or(slot, |r| r[slot]);
    for (peer, pts) in &plan.send {
        let payload: Vec<f64> = pts.iter().map(|&p| rho[p]).collect();
        comm.try_send(dst(*peer), tag, &payload)?;
    }
    for (peer, pts) in &plan.recv {
        let data = comm.try_recv_group(dst(*peer), tag)?;
        if data.len() != pts.len() {
            return Err(DecompError::Config(format!(
                "halo payload from slot {peer}: {} values for {} points",
                data.len(),
                pts.len()
            )));
        }
        for (v, &p) in data.iter().zip(pts) {
            rho[p] += v;
        }
    }
    Ok(())
}

/// Exchange partial current density: like [`exchange_rho`] but for the
/// three components `(Jx, Jy, Jz)` of the electromagnetic deposit, packed
/// into *one* frame per peer (`[Jx at pts.., Jy at pts.., Jz at pts..]`)
/// so the multi-species step pays the same message count as ρ. After the
/// call each component holds the global current at every owned point.
pub fn exchange_current(
    comm: &mut Comm,
    plan: &HaloPlan,
    jx: &mut [f64],
    jy: &mut [f64],
    jz: &mut [f64],
    tag: u64,
) -> Result<(), DecompError> {
    exchange_current_impl(comm, plan, jx, jy, jz, tag, None)
}

/// [`exchange_current`] with the same slot routing table as
/// [`exchange_rho_routed`], for the elastic driver's slot → world-rank
/// indirection.
pub fn exchange_current_routed(
    comm: &mut Comm,
    plan: &HaloPlan,
    jx: &mut [f64],
    jy: &mut [f64],
    jz: &mut [f64],
    tag: u64,
    route: &[usize],
) -> Result<(), DecompError> {
    exchange_current_impl(comm, plan, jx, jy, jz, tag, Some(route))
}

fn exchange_current_impl(
    comm: &mut Comm,
    plan: &HaloPlan,
    jx: &mut [f64],
    jy: &mut [f64],
    jz: &mut [f64],
    tag: u64,
    route: Option<&[usize]>,
) -> Result<(), DecompError> {
    let dst = |slot: usize| route.map_or(slot, |r| r[slot]);
    for (peer, pts) in &plan.send {
        let mut payload = Vec::with_capacity(3 * pts.len());
        payload.extend(pts.iter().map(|&p| jx[p]));
        payload.extend(pts.iter().map(|&p| jy[p]));
        payload.extend(pts.iter().map(|&p| jz[p]));
        comm.try_send(dst(*peer), tag, &payload)?;
    }
    for (peer, pts) in &plan.recv {
        let data = comm.try_recv_group(dst(*peer), tag)?;
        if data.len() != 3 * pts.len() {
            return Err(DecompError::Config(format!(
                "halo current payload from slot {peer}: {} values for {} points",
                data.len(),
                pts.len()
            )));
        }
        let n = pts.len();
        for (i, &p) in pts.iter().enumerate() {
            jx[p] += data[i];
            jy[p] += data[n + i];
            jz[p] += data[2 * n + i];
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc::Ordering;

    fn plan_all(part: &Partition, h: usize) -> Vec<HaloPlan> {
        (0..part.nranks())
            .map(|r| HaloPlan::build(part, r, h))
            .collect()
    }

    #[test]
    fn send_recv_lists_are_mutually_consistent() {
        for ord in [Ordering::RowMajor, Ordering::Morton, Ordering::Hilbert] {
            let part = Partition::new(ord, 16, 16, 4).unwrap();
            let plans = plan_all(&part, 2);
            for (r, plan) in plans.iter().enumerate() {
                for (peer, pts) in &plan.send {
                    let back = plans[*peer]
                        .recv
                        .iter()
                        .find(|(p, _)| *p == r)
                        .unwrap_or_else(|| panic!("{ord}: {peer} missing recv from {r}"));
                    assert_eq!(&back.1, pts, "{ord}: {r}->{peer} point lists differ");
                }
            }
        }
    }

    #[test]
    fn owned_points_tile_the_grid() {
        let part = Partition::new(Ordering::Hilbert, 16, 16, 5).unwrap();
        let plans = plan_all(&part, 1);
        let mut seen = vec![0usize; 16 * 16];
        for plan in &plans {
            for &p in &plan.owned_points {
                seen[p] += 1;
            }
        }
        assert!(
            seen.iter().all(|&c| c == 1),
            "points not tiled exactly once"
        );
    }

    #[test]
    fn e_points_cover_owned_cell_corners() {
        let part = Partition::new(Ordering::Morton, 8, 8, 3).unwrap();
        let layout = part.layout();
        for r in 0..3 {
            let plan = HaloPlan::build(&part, r, 2);
            for c in part.range(r) {
                let (ix, iy) = layout.decode(c);
                for (px, py) in [
                    (ix, iy),
                    (ix, (iy + 1) % 8),
                    ((ix + 1) % 8, iy),
                    ((ix + 1) % 8, (iy + 1) % 8),
                ] {
                    assert!(
                        plan.e_points.binary_search(&(px * 8 + py)).is_ok(),
                        "rank {r} missing corner of cell {c}"
                    );
                }
            }
        }
    }

    #[test]
    fn current_exchange_accumulates_all_partials() {
        // Each rank deposits a recognizable partial (rank-tagged values at
        // every point of its write region); after the exchange, every owned
        // point must hold the sum of the partials of all ranks whose write
        // region covers it — independently for the three components.
        let part = Partition::new(Ordering::Morton, 8, 8, 3).unwrap();
        let plans = std::sync::Arc::new(plan_all(&part, 1));
        let npts = part.ncells();
        // Reference: global sum of every rank's partial at every point.
        let partial = |r: usize, p: usize, c: usize| (r + 1) as f64 * (p as f64 + 0.5) + c as f64;
        let mut expect = vec![[0.0f64; 3]; npts];
        for (r, plan) in plans.iter().enumerate() {
            let pts = corner_point_mask(&part, &plan.write_cells);
            for (p, &m) in pts.iter().enumerate() {
                if m {
                    for (c, e) in expect[p].iter_mut().enumerate() {
                        *e += partial(r, p, c);
                    }
                }
            }
        }
        let plans2 = plans.clone();
        let results = minimpi::World::run(3, move |comm| {
            let r = comm.rank();
            let plan = &plans2[r];
            let pts = corner_point_mask(&part, &plan.write_cells);
            let mut j = [vec![0.0; npts], vec![0.0; npts], vec![0.0; npts]];
            for (p, &m) in pts.iter().enumerate() {
                if m {
                    for (c, comp) in j.iter_mut().enumerate() {
                        comp[p] = partial(r, p, c);
                    }
                }
            }
            let [mut jx, mut jy, mut jz] = j;
            exchange_current(comm, plan, &mut jx, &mut jy, &mut jz, 7).unwrap();
            (jx, jy, jz)
        });
        for (r, (jx, jy, jz)) in results.iter().enumerate() {
            for &p in &plans[r].owned_points {
                for (c, comp) in [jx, jy, jz].into_iter().enumerate() {
                    assert!(
                        (comp[p] - expect[p][c]).abs() < 1e-12,
                        "rank {r} point {p} component {c}: {} vs {}",
                        comp[p],
                        expect[p][c]
                    );
                }
            }
        }
    }

    #[test]
    fn write_region_contains_owned_and_respects_width() {
        let part = Partition::new(Ordering::Morton, 16, 16, 4).unwrap();
        let layout = part.layout();
        let plan = HaloPlan::build(&part, 1, 2);
        for c in part.range(1) {
            assert!(plan.write_cells[c]);
        }
        // Every write cell is within Chebyshev distance 2 of an owned cell.
        for (c, &m) in plan.write_cells.iter().enumerate() {
            if !m {
                continue;
            }
            let (ix, iy) = layout.decode(c);
            let near = part.range(1).any(|oc| {
                let (ox, oy) = layout.decode(oc);
                let d = |a: usize, b: usize, n: usize| {
                    let d = (a as isize - b as isize).rem_euclid(n as isize) as usize;
                    d.min(n - d)
                };
                d(ix, ox, 16).max(d(iy, oy, 16)) <= 2
            });
            assert!(near, "cell {c} too far from rank 1's subdomain");
        }
    }
}
