//! The rank partition: contiguous SFC-index ranges over the cell grid.

use crate::DecompError;
use sfc::partition::{cut_uniform, cut_weighted, owner_of};
use sfc::{CellLayout, Ordering};
use std::ops::Range;

/// A spatial partition of the cell grid across ranks.
///
/// Cells are identified by their SFC index (`icell`, the same index the
/// particle arrays and the redundant field structures use), and each rank
/// owns one contiguous range of that ordering. Contiguity in a
/// locality-preserving curve (Morton, Hilbert) makes the subdomains
/// spatially compact; row-major gives horizontal slabs. Layouts that pad
/// the index space ([`sfc::L4D`]) or that the simulation silently remaps
/// (`ColMajor`) are rejected — a contiguous range of a padded ordering is
/// not a well-defined cell set.
pub struct Partition {
    ordering: Ordering,
    layout: Box<dyn CellLayout>,
    ranges: Vec<Range<usize>>,
}

impl Partition {
    /// Equal-size partition: `nranks` contiguous ranges differing by at
    /// most one cell.
    pub fn new(
        ordering: Ordering,
        ncx: usize,
        ncy: usize,
        nranks: usize,
    ) -> Result<Self, DecompError> {
        let layout = Self::checked_layout(ordering, ncx, ncy)?;
        let ranges = cut_uniform(layout.ncells(), nranks);
        Ok(Self {
            ordering,
            layout,
            ranges,
        })
    }

    /// Weighted partition: cut so each range carries a near-equal share of
    /// `weights` (typically per-cell particle counts, see
    /// [`particle_cell_weights`]). `weights.len()` must equal the cell
    /// count.
    pub fn new_weighted(
        ordering: Ordering,
        ncx: usize,
        ncy: usize,
        nranks: usize,
        weights: &[f64],
    ) -> Result<Self, DecompError> {
        let layout = Self::checked_layout(ordering, ncx, ncy)?;
        if weights.len() != layout.ncells() {
            return Err(DecompError::Config(format!(
                "{} weights for {} cells",
                weights.len(),
                layout.ncells()
            )));
        }
        if nranks == 0 || nranks > layout.ncells() {
            return Err(DecompError::Config(format!(
                "cannot cut {} cells into {nranks} non-empty subdomains",
                layout.ncells()
            )));
        }
        let ranges = cut_weighted(weights, nranks);
        Ok(Self {
            ordering,
            layout,
            ranges,
        })
    }

    /// Re-cut the same grid and ordering from a fresh weight histogram —
    /// the live re-partition primitive. `weights.len()` must equal the
    /// cell count; `nparts` may differ from the current rank count (a
    /// shrink or join changes the live group size). The returned partition
    /// shares nothing with `self` beyond the layout parameters, so the
    /// caller can diff old vs new ownership cell by cell to derive an
    /// incremental migration.
    pub fn recut_weighted(&self, weights: &[f64], nparts: usize) -> Result<Self, DecompError> {
        Self::new_weighted(
            self.ordering,
            self.layout.ncx(),
            self.layout.ncy(),
            nparts,
            weights,
        )
    }

    /// Rebuild a partition from explicit ranges — how a joining rank adopts
    /// the cuts the incumbent group already agreed on, without re-deriving
    /// them from a histogram it never saw. The ranges must be a contiguous,
    /// non-empty, exhaustive tiling of `[0, ncells)`.
    pub fn from_ranges(
        ordering: Ordering,
        ncx: usize,
        ncy: usize,
        ranges: Vec<Range<usize>>,
    ) -> Result<Self, DecompError> {
        let layout = Self::checked_layout(ordering, ncx, ncy)?;
        let ncells = layout.ncells();
        if ranges.is_empty() {
            return Err(DecompError::Config("empty range list".into()));
        }
        let mut expect = 0usize;
        for r in &ranges {
            if r.start != expect || r.is_empty() {
                return Err(DecompError::Config(format!(
                    "ranges must tile [0, {ncells}) contiguously and non-empty; \
                     got {r:?} where {expect} was expected"
                )));
            }
            expect = r.end;
        }
        if expect != ncells {
            return Err(DecompError::Config(format!(
                "ranges end at {expect}, grid has {ncells} cells"
            )));
        }
        Ok(Self {
            ordering,
            layout,
            ranges,
        })
    }

    fn checked_layout(
        ordering: Ordering,
        ncx: usize,
        ncy: usize,
    ) -> Result<Box<dyn CellLayout>, DecompError> {
        match ordering {
            Ordering::RowMajor | Ordering::Morton | Ordering::Hilbert => {}
            Ordering::L4D(_) => {
                return Err(DecompError::Config(
                    "L4D pads the cell index space; its index ranges are not \
                     contiguous cell sets — use RowMajor, Morton, or Hilbert"
                        .into(),
                ))
            }
            Ordering::ColMajor => {
                return Err(DecompError::Config(
                    "the simulation remaps ColMajor to RowMajor; partition on \
                     RowMajor, Morton, or Hilbert"
                        .into(),
                ))
            }
        }
        let layout = ordering
            .build(ncx, ncy)
            .map_err(|e| DecompError::Config(e.to_string()))?;
        debug_assert_eq!(layout.ncells(), ncx * ncy);
        Ok(layout)
    }

    /// The ordering the partition cuts.
    pub fn ordering(&self) -> Ordering {
        self.ordering
    }

    /// The cell layout (icell ↔ (ix, iy) bijection).
    pub fn layout(&self) -> &dyn CellLayout {
        self.layout.as_ref()
    }

    /// Number of ranks.
    pub fn nranks(&self) -> usize {
        self.ranges.len()
    }

    /// Total cells in the grid.
    pub fn ncells(&self) -> usize {
        self.layout.ncells()
    }

    /// The cell-index range rank `r` owns.
    pub fn range(&self, r: usize) -> Range<usize> {
        self.ranges[r].clone()
    }

    /// All ranges, in rank order.
    pub fn ranges(&self) -> &[Range<usize>] {
        &self.ranges
    }

    /// The rank owning cell `icell`.
    pub fn owner(&self, icell: usize) -> usize {
        owner_of(&self.ranges, icell)
    }
}

/// Per-cell particle counts as partition weights: histogram `icell` over
/// `ncells` bins. Feed the result to [`Partition::new_weighted`] so cell
/// ranges carry near-equal particle populations instead of equal areas.
pub fn particle_cell_weights(icell: &[u32], ncells: usize) -> Vec<f64> {
    let mut w = vec![0.0; ncells];
    for &c in icell {
        w[c as usize] += 1.0;
    }
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_cell_owned_exactly_once() {
        for ord in [Ordering::RowMajor, Ordering::Morton, Ordering::Hilbert] {
            let p = Partition::new(ord, 16, 16, 5).unwrap();
            let mut counts = vec![0usize; p.ncells()];
            for r in 0..p.nranks() {
                for c in p.range(r) {
                    counts[c] += 1;
                }
            }
            assert!(counts.iter().all(|&c| c == 1), "{ord}: coverage hole");
            for c in 0..p.ncells() {
                let owner = p.owner(c);
                assert!(p.range(owner).contains(&c));
            }
        }
    }

    #[test]
    fn padded_and_remapped_orderings_rejected() {
        assert!(matches!(
            Partition::new(Ordering::L4D(8), 16, 16, 4),
            Err(DecompError::Config(_))
        ));
        assert!(matches!(
            Partition::new(Ordering::ColMajor, 16, 16, 4),
            Err(DecompError::Config(_))
        ));
    }

    #[test]
    fn weighted_partition_balances_particles() {
        // Particles concentrated in the low-index half of the curve: the
        // weighted cut must give the low ranks fewer cells each.
        let ncells = 16 * 16;
        let icell: Vec<u32> = (0..4000u32).map(|i| i % (ncells as u32 / 2)).collect();
        let w = particle_cell_weights(&icell, ncells);
        assert_eq!(w.iter().sum::<f64>(), 4000.0);
        let p = Partition::new_weighted(Ordering::Morton, 16, 16, 4, &w).unwrap();
        let loads: Vec<f64> = (0..4)
            .map(|r| p.range(r).map(|c| w[c]).sum::<f64>())
            .collect();
        for &l in &loads {
            assert!((l - 1000.0).abs() < 150.0, "unbalanced loads {loads:?}");
        }
        assert!(p.range(0).len() < p.range(3).len());
    }

    #[test]
    fn recut_tracks_shifted_weight_and_changes_rank_count() {
        let ncells = 16 * 16;
        let p = Partition::new(Ordering::Hilbert, 16, 16, 4).unwrap();
        // All particles drift into the high-index half of the curve.
        let icell: Vec<u32> = (0..3000u32)
            .map(|i| ncells as u32 / 2 + i % (ncells as u32 / 2))
            .collect();
        let w = particle_cell_weights(&icell, ncells);
        let q = p.recut_weighted(&w, 3).unwrap();
        assert_eq!(q.nranks(), 3);
        assert_eq!(q.ordering(), p.ordering());
        assert_eq!(q.ncells(), p.ncells());
        let loads: Vec<f64> = (0..3)
            .map(|r| q.range(r).map(|c| w[c]).sum::<f64>())
            .collect();
        for &l in &loads {
            assert!(
                (l - 1000.0).abs() < 200.0,
                "unbalanced recut loads {loads:?}"
            );
        }
        // The empty half must not bloat one rank: the cut follows the mass.
        assert!(q.range(0).len() > q.range(2).len());
    }

    #[test]
    // The single-element vecs below really are one-range tilings, not a
    // mistyped `vec![elem; len]`.
    #[allow(clippy::single_range_in_vec_init)]
    fn from_ranges_adopts_and_validates_tiling() {
        let p = Partition::new(Ordering::Morton, 8, 8, 3).unwrap();
        let q = Partition::from_ranges(Ordering::Morton, 8, 8, p.ranges().to_vec()).unwrap();
        assert_eq!(q.ranges(), p.ranges());
        for bad in [
            vec![0..10, 12..64], // gap
            vec![0..40, 30..64], // overlap
            vec![0..64, 64..64], // empty part
            vec![0..32],         // short
            vec![1..64],         // does not start at 0
        ] {
            assert!(
                matches!(
                    Partition::from_ranges(Ordering::Morton, 8, 8, bad.clone()),
                    Err(DecompError::Config(_))
                ),
                "accepted invalid tiling {bad:?}"
            );
        }
    }

    #[test]
    fn weight_length_mismatch_rejected() {
        let w = vec![1.0; 10];
        assert!(matches!(
            Partition::new_weighted(Ordering::Morton, 16, 16, 4, &w),
            Err(DecompError::Config(_))
        ));
    }
}
