//! The decomposed step loop: deposit → migrate-send → halo → solve →
//! migrate-drain, with particle migration latency hidden behind the solve.

use crate::{exchange_rho, halo::HaloPlan, slab::SlabSolver, DecompError, Partition};
use minimpi::Comm;
use pic_core::faultlog::FaultLog;
use pic_core::grid::Grid2D;
use pic_core::particles::{self, ParticlesSoA};
use pic_core::rng::Rng;
use pic_core::sim::{ParticleLayout, PicConfig, Simulation};
use pic_core::PicError;
use spectral::poisson::{PoissonSolver2D, SolveScratch};
use std::time::Instant;

/// Tag namespace for decomposition traffic: far above the step-indexed user
/// tags of the replication path (≤ ~2⁴⁰ + small), far below minimpi's
/// control namespaces (2⁴⁵⁺). Each step burns [`TAGS_PER_STEP`] tags.
const TAG_BASE: u64 = 1 << 42;
/// Tags consumed per step (halo, gather, scatter, migrate, and four
/// all-to-all rounds of the slab solve).
const TAGS_PER_STEP: u64 = 8;
/// Tag of the one-time initialization allreduce.
const INIT_TAG: u64 = TAG_BASE - 16;

/// Which rank set runs the spectral Poisson solve each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverMode {
    /// Slab-distributed solve: every rank owns a contiguous row slab,
    /// all-to-all exchanges implement the distributed transpose, and no
    /// rank ever holds the full grid. The default.
    Slab,
    /// Gather ρ to the first group rank, solve the full grid there, and
    /// scatter E back — the legacy fallback, O(grid) memory and solve time
    /// on one rank.
    RootGather,
}

/// Knobs of the decomposition itself (the physics lives in [`PicConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct DecompConfig {
    /// Halo width in cells: the Chebyshev distance a particle may travel
    /// in one step. 2 covers |v| < 2 cells/step; raise it for hot tails
    /// (e.g. 128-grid Landau at σ = 1 thermal units ≈ 0.64 cells/step
    /// keeps 3σ under 2, but two-stream beams at v₀ = 3 need 3).
    pub halo_width: usize,
    /// Cut the curve by initial per-cell particle counts instead of cell
    /// counts, so ranks start with near-equal particle loads.
    pub weighted: bool,
    /// Field-solve distribution strategy.
    pub solver: SolverMode,
}

impl Default for DecompConfig {
    fn default() -> Self {
        Self {
            halo_width: 2,
            weighted: false,
            solver: SolverMode::Slab,
        }
    }
}

/// Cumulative per-rank communication accounting, by phase: bytes moved
/// *and* wall time spent, so overlap gains are measurable, not just
/// volume reductions.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommStats {
    /// Bytes moved (sent + received) by ρ halo exchanges.
    pub halo_bytes: u64,
    /// Bytes moved by the owned-ρ gather to the solving rank
    /// ([`SolverMode::RootGather`] only).
    pub gather_bytes: u64,
    /// Bytes moved by the E scatter from the solving rank
    /// ([`SolverMode::RootGather`] only).
    pub scatter_bytes: u64,
    /// Bytes moved by the slab solve's all-to-all rounds
    /// ([`SolverMode::Slab`] only).
    pub solve_bytes: u64,
    /// Bytes moved by particle migration.
    pub migrate_bytes: u64,
    /// Particles sent to other ranks.
    pub migrated_out: u64,
    /// Particles received from other ranks.
    pub migrated_in: u64,
    /// Wall seconds in the ρ halo exchange.
    pub halo_secs: f64,
    /// Wall seconds in the field solve (gather + solve + scatter for the
    /// root path; the full all-to-all pipeline for the slab path).
    pub solve_secs: f64,
    /// Wall seconds posting migration sends (classify + send + compact) —
    /// before the solve, so the payloads travel while ranks compute.
    pub migrate_send_secs: f64,
    /// Wall seconds draining migration receives after the solve. Near-zero
    /// drain time relative to `migrate_send_secs` + transit means the
    /// overlap hid the migration latency.
    pub migrate_drain_secs: f64,
}

impl CommStats {
    /// Total bytes moved across all phases.
    pub fn total_bytes(&self) -> u64 {
        self.halo_bytes
            + self.gather_bytes
            + self.scatter_bytes
            + self.solve_bytes
            + self.migrate_bytes
    }

    /// Total wall seconds attributed to communication-bearing phases.
    pub fn total_secs(&self) -> f64 {
        self.halo_secs + self.solve_secs + self.migrate_send_secs + self.migrate_drain_secs
    }
}

/// A spatially decomposed PIC run: this rank advances only the particles
/// inside its subdomain and stores valid field values only on its points
/// (plus halos). The spectral Poisson solve is either slab-distributed
/// across all ranks (default) or gathered to one root rank
/// ([`SolverMode`]).
///
/// Collective in construction and in [`step`](Self::step): every rank of
/// the communicator must call them in lockstep with identical
/// configurations.
pub struct DecomposedSimulation {
    sim: Simulation,
    partition: Partition,
    plan: HaloPlan,
    rank: usize,
    root: usize,
    step: u64,
    stats: CommStats,
    faults: FaultLog,
    backend: SolverBackend,
    /// `owned_points` of every rank (solver routing needs them; cheap
    /// enough to keep everywhere).
    all_owned_points: Vec<Vec<usize>>,
    /// `e_points` of every rank.
    all_e_points: Vec<Vec<usize>>,
}

/// Per-rank field-solver state, by mode.
enum SolverBackend {
    /// Root gather/solve/scatter: `Some` on the root rank only.
    Root(Option<RootSolver>),
    /// Slab-distributed solve: every rank carries one.
    Slab(SlabSolver),
}

struct RootSolver {
    solver: PoissonSolver2D,
    scratch: SolveScratch,
    rho: Vec<f64>,
    ex: Vec<f64>,
    ey: Vec<f64>,
}

impl DecomposedSimulation {
    /// Build the partition, slice the sampled particle population by owned
    /// cells, and initialize the local simulation (the initial ρ is summed
    /// across ranks with one allreduce, so every rank starts from the
    /// correct global field — the only full-grid collective of the run).
    pub fn new(
        mut cfg: PicConfig,
        dcfg: DecompConfig,
        comm: &mut Comm,
    ) -> Result<Self, DecompError> {
        if cfg.particle_layout != ParticleLayout::Soa {
            return Err(DecompError::Config(
                "decomposed runs require the SoA particle layout".into(),
            ));
        }
        if cfg.keep_range.is_some() || cfg.keep_cells.is_some() {
            return Err(DecompError::Config(
                "keep_range/keep_cells are owned by the decomposition driver".into(),
            ));
        }
        if dcfg.halo_width == 0 {
            return Err(DecompError::Config("halo_width must be at least 1".into()));
        }
        let (rank, nranks) = (comm.rank(), comm.size());
        let root = comm.group()[0];

        let partition = if dcfg.weighted {
            // Re-sample the (deterministic) initial population once to
            // histogram per-cell loads; every rank computes the same cut.
            let grid = Grid2D::new(cfg.grid_nx, cfg.grid_ny, cfg.lx, cfg.ly)?;
            let layout = cfg
                .ordering
                .build(cfg.grid_nx, cfg.grid_ny)
                .map_err(PicError::from)?;
            let mut rng = Rng::seed_from_u64(cfg.seed);
            let sample = particles::initialize_with_rng(
                &grid,
                layout.as_ref(),
                cfg.distribution,
                cfg.n_particles,
                &mut rng,
            );
            let w = crate::particle_cell_weights(&sample.icell, layout.ncells());
            Partition::new_weighted(cfg.ordering, cfg.grid_nx, cfg.grid_ny, nranks, &w)?
        } else {
            Partition::new(cfg.ordering, cfg.grid_nx, cfg.grid_ny, nranks)?
        };

        let range = partition.range(rank);
        cfg.keep_cells = Some((range.start as u32, range.end as u32));

        let plan = HaloPlan::build(&partition, rank, dcfg.halo_width);
        let all_owned_points: Vec<Vec<usize>> = (0..nranks)
            .map(|r| HaloPlan::build(&partition, r, dcfg.halo_width).owned_points)
            .collect();
        let all_e_points: Vec<Vec<usize>> = (0..nranks)
            .map(|r| HaloPlan::build(&partition, r, dcfg.halo_width).e_points)
            .collect();

        let mut comm_err = None;
        let sim = Simulation::new_with_reduce(cfg.clone(), |rho| {
            if let Err(e) = comm.try_allreduce_sum_tree(rho, INIT_TAG) {
                comm_err = Some(e);
            }
        })?;
        if let Some(e) = comm_err {
            return Err(e.into());
        }

        let backend = match dcfg.solver {
            SolverMode::Slab => SolverBackend::Slab(SlabSolver::new(
                cfg.grid_nx,
                cfg.grid_ny,
                cfg.lx,
                cfg.ly,
                rank,
                nranks,
                &all_owned_points,
                &all_e_points,
            )?),
            SolverMode::RootGather => SolverBackend::Root(if rank == root {
                let n = cfg.grid_nx * cfg.grid_ny;
                Some(RootSolver {
                    solver: PoissonSolver2D::new(cfg.grid_nx, cfg.grid_ny, cfg.lx, cfg.ly)
                        .map_err(PicError::from)?,
                    scratch: SolveScratch::new(),
                    rho: vec![0.0; n],
                    ex: vec![0.0; n],
                    ey: vec![0.0; n],
                })
            } else {
                None
            }),
        };

        Ok(Self {
            sim,
            partition,
            plan,
            rank,
            root,
            step: 0,
            stats: CommStats::default(),
            faults: FaultLog::new(),
            backend,
            all_owned_points,
            all_e_points,
        })
    }

    /// Advance one step on every rank (collective).
    ///
    /// 1. local sort/kick/push/deposit ([`Simulation::step_pre_reduce`]);
    /// 2. leakage check — every particle must still sit in the write
    ///    region, else its deposit escaped the halo;
    /// 3. **post migration sends**: particles whose cell changed owner are
    ///    shipped out and compacted away now, so their payloads travel
    ///    while every rank is busy solving;
    /// 4. halo-exchange partial ρ so owned points hold global values;
    /// 5. field solve — slab-distributed all-to-all pipeline, or the
    ///    root gather/solve/scatter fallback ([`SolverMode`]);
    /// 6. rebuild the local redundant field view and diagnostics;
    /// 7. **drain migration receives** posted in step 3.
    ///
    /// Any injected transport fault surfaces as `Err` (never a deadlock:
    /// sends are non-blocking and receives are deadline-bounded); transport
    /// retry/kill events are folded into [`fault_log`](Self::fault_log).
    pub fn step(&mut self, comm: &mut Comm) -> Result<(), DecompError> {
        self.step += 1;
        let t0 = TAG_BASE + TAGS_PER_STEP * self.step;
        let res = self.step_inner(comm, t0);
        self.faults.ingest_transport(self.step, comm.take_events());
        res
    }

    fn step_inner(&mut self, comm: &mut Comm, t0: u64) -> Result<(), DecompError> {
        self.sim.step_pre_reduce();

        for &c in &self.sim.particles().icell {
            if !self.plan.write_cells[c as usize] {
                return Err(DecompError::Leakage {
                    rank: self.rank,
                    icell: c as usize,
                    step: self.step,
                });
            }
        }

        let mut moved = comm.bytes_sent() + comm.bytes_received();
        let mut mark = Instant::now();
        let mut phase = |comm: &Comm, bytes: &mut u64, secs: &mut f64| {
            let now = comm.bytes_sent() + comm.bytes_received();
            *bytes += now - moved;
            moved = now;
            *secs += mark.elapsed().as_secs_f64();
            mark = Instant::now();
        };

        // Comm/compute overlap: migration payloads leave now and sit in
        // the peers' stashes while everyone runs the solve; the matching
        // receives drain after it.
        self.migrate_send(comm, t0 + 3)?;
        phase(
            comm,
            &mut self.stats.migrate_bytes,
            &mut self.stats.migrate_send_secs,
        );

        exchange_rho(comm, &self.plan, self.sim.rho_mut(), t0)?;
        phase(comm, &mut self.stats.halo_bytes, &mut self.stats.halo_secs);

        match &mut self.backend {
            SolverBackend::Slab(slab) => {
                let (rho, ex, ey) = self.sim.field_mut();
                slab.solve(comm, rho, ex, ey, t0 + 4)?;
                phase(
                    comm,
                    &mut self.stats.solve_bytes,
                    &mut self.stats.solve_secs,
                );
            }
            SolverBackend::Root(solver) => {
                let rho = self.sim.rho_mut();
                let owned: Vec<f64> = self.plan.owned_points.iter().map(|&p| rho[p]).collect();
                let gathered = comm.try_gather(&owned, t0 + 1)?;
                phase(
                    comm,
                    &mut self.stats.gather_bytes,
                    &mut self.stats.solve_secs,
                );

                match gathered {
                    Some(parts) => {
                        let rs = solver.as_mut().expect("gather root solves");
                        for (vals, pts) in parts.iter().zip(&self.all_owned_points) {
                            for (&v, &p) in vals.iter().zip(pts) {
                                rs.rho[p] = v;
                            }
                        }
                        rs.solver
                            .solve_e_with(&rs.rho, &mut rs.ex, &mut rs.ey, &mut rs.scratch);
                        for (r, pts) in self.all_e_points.iter().enumerate() {
                            if r == self.rank {
                                continue;
                            }
                            let payload: Vec<f64> = pts
                                .iter()
                                .map(|&p| rs.ex[p])
                                .chain(pts.iter().map(|&p| rs.ey[p]))
                                .collect();
                            comm.try_send(r, t0 + 2, &payload)?;
                        }
                        let (ex, ey) = self.sim.e_field_mut();
                        for &p in &self.plan.e_points {
                            ex[p] = rs.ex[p];
                            ey[p] = rs.ey[p];
                        }
                    }
                    None => {
                        let data = comm.try_recv(self.root, t0 + 2)?;
                        let n = self.plan.e_points.len();
                        if data.len() != 2 * n {
                            return Err(DecompError::Config(format!(
                                "E scatter payload: {} values for {n} points",
                                data.len()
                            )));
                        }
                        let (ex, ey) = self.sim.e_field_mut();
                        for (i, &p) in self.plan.e_points.iter().enumerate() {
                            ex[p] = data[i];
                            ey[p] = data[n + i];
                        }
                    }
                }
                phase(
                    comm,
                    &mut self.stats.scatter_bytes,
                    &mut self.stats.solve_secs,
                );
            }
        }

        self.sim.step_post_external_solve();

        self.migrate_drain(comm, t0 + 3)?;
        phase(
            comm,
            &mut self.stats.migrate_bytes,
            &mut self.stats.migrate_drain_secs,
        );
        Ok(())
    }

    /// Route particles whose cell left the subdomain to the owning rank:
    /// classify, post one send per halo neighbor (possibly empty, so no
    /// receive can dangle), and compact the stayers. The matching receives
    /// happen in [`migrate_drain`](Self::migrate_drain) after the solve;
    /// stayers keep their relative order and arrivals append in ascending
    /// sender order — deterministic, and the next counting sort restores
    /// cell order.
    fn migrate_send(&mut self, comm: &mut Comm, tag: u64) -> Result<(), DecompError> {
        let p = self.sim.particles_mut();
        let n = p.len();
        let mut stay = vec![true; n];
        let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); self.plan.neighbors.len()];
        for (i, keep) in stay.iter_mut().enumerate() {
            let owner = self.partition.owner(p.icell[i] as usize);
            if owner != self.rank {
                // The leakage check bounds strays to the write region, so
                // the owner is always a halo neighbor.
                let j = self
                    .plan
                    .neighbors
                    .binary_search(&owner)
                    .expect("stray owner within halo neighborhood");
                outgoing[j].push(i);
                *keep = false;
            }
        }

        for (j, &peer) in self.plan.neighbors.iter().enumerate() {
            let mut payload = Vec::with_capacity(outgoing[j].len() * F_PER_P);
            for &i in &outgoing[j] {
                payload.extend_from_slice(&[
                    f64::from(p.icell[i]),
                    f64::from(p.ix[i]),
                    f64::from(p.iy[i]),
                    p.dx[i],
                    p.dy[i],
                    p.vx[i],
                    p.vy[i],
                ]);
            }
            comm.try_send(peer, tag, &payload)?;
            self.stats.migrated_out += outgoing[j].len() as u64;
        }

        if outgoing.iter().any(|o| !o.is_empty()) {
            compact(p, &stay);
        }
        Ok(())
    }

    /// Drain the migration receives posted by [`migrate_send`]
    /// (Self::migrate_send) — by now the payloads have crossed during the
    /// solve, so this is normally a stash lookup, not a wait.
    fn migrate_drain(&mut self, comm: &mut Comm, tag: u64) -> Result<(), DecompError> {
        for &peer in &self.plan.neighbors {
            let data = comm.try_recv(peer, tag)?;
            if data.len() % F_PER_P != 0 {
                return Err(DecompError::Config(format!(
                    "migration payload from rank {peer}: {} values not a \
                     multiple of {F_PER_P}",
                    data.len()
                )));
            }
            let p = self.sim.particles_mut();
            for q in data.chunks_exact(F_PER_P) {
                p.icell.push(q[0] as u32);
                p.ix.push(q[1] as u32);
                p.iy.push(q[2] as u32);
                p.dx.push(q[3]);
                p.dy.push(q[4]);
                p.vx.push(q[5]);
                p.vy.push(q[6]);
            }
            self.stats.migrated_in += (data.len() / F_PER_P) as u64;
        }
        Ok(())
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize, comm: &mut Comm) -> Result<(), DecompError> {
        for _ in 0..n {
            self.step(comm)?;
        }
        Ok(())
    }

    /// Snapshot the local simulation state (particles, fields, RNG,
    /// diagnostics). The snapshot is the plain [`Simulation::checkpoint`]
    /// format — its config fingerprint covers grid, physics, and this
    /// rank's `keep_cells` range, but *not* the solver mode or thread
    /// count, so a snapshot taken under one solver restores into another.
    pub fn checkpoint(&self) -> Vec<u8> {
        self.sim.checkpoint()
    }

    /// Restore the local simulation from a [`checkpoint`](Self::checkpoint)
    /// snapshot (collective: every rank must restore a snapshot of the same
    /// step so the tag sequence stays aligned).
    pub fn restore(&mut self, snapshot: &[u8]) -> Result<(), DecompError> {
        self.sim.restore(snapshot).map_err(DecompError::Pic)
    }

    /// The underlying local simulation. Its ρ/E arrays hold *global*
    /// values only on this rank's [`HaloPlan::owned_points`] /
    /// [`HaloPlan::e_points`]; elsewhere they are stale partials.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// The partition shared by all ranks.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// This rank's halo plan.
    pub fn plan(&self) -> &HaloPlan {
        &self.plan
    }

    /// Cumulative per-phase communication statistics for this rank.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Transport fault events (retries, kills, detections) observed by this
    /// rank's communicator during decomposed stepping.
    pub fn fault_log(&self) -> &FaultLog {
        &self.faults
    }

    /// Particles currently hosted by this rank.
    pub fn local_particles(&self) -> usize {
        self.sim.particles().len()
    }

    /// Cells owned by this rank.
    pub fn local_cells(&self) -> usize {
        self.partition.range(self.rank).len()
    }

    /// Persistent bytes this rank dedicates to field-solver grid state:
    /// the four slab buffers in [`SolverMode::Slab`] (shrinks as ranks are
    /// added), or three full-grid arrays on the root in
    /// [`SolverMode::RootGather`] (zero on the other ranks).
    pub fn solver_grid_bytes(&self) -> u64 {
        match &self.backend {
            SolverBackend::Slab(s) => s.solver_bytes(),
            SolverBackend::Root(Some(rs)) => (3 * rs.rho.len() * std::mem::size_of::<f64>()) as u64,
            SolverBackend::Root(None) => 0,
        }
    }

    /// The assembled global ρ of the last step — root rank of
    /// [`SolverMode::RootGather`] only (`None` under the slab solver,
    /// where no rank holds the full grid).
    pub fn global_rho(&self) -> Option<&[f64]> {
        match &self.backend {
            SolverBackend::Root(Some(rs)) => Some(rs.rho.as_slice()),
            _ => None,
        }
    }

    /// The solved global E of the last step — root rank of
    /// [`SolverMode::RootGather`] only.
    pub fn global_e(&self) -> Option<(&[f64], &[f64])> {
        match &self.backend {
            SolverBackend::Root(Some(rs)) => Some((rs.ex.as_slice(), rs.ey.as_slice())),
            _ => None,
        }
    }
}

/// Migration payload stride: icell, ix, iy, dx, dy, vx, vy.
const F_PER_P: usize = 7;

/// Order-preserving compaction of all seven SoA columns by a keep mask.
fn compact(p: &mut ParticlesSoA, keep: &[bool]) {
    fn retain<T: Copy>(v: &mut Vec<T>, keep: &[bool]) {
        let mut i = 0;
        v.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }
    retain(&mut p.icell, keep);
    retain(&mut p.ix, keep);
    retain(&mut p.iy, keep);
    retain(&mut p.dx, keep);
    retain(&mut p.dy, keep);
    retain(&mut p.vx, keep);
    retain(&mut p.vy, keep);
}
