//! The decomposed step loop: deposit → migrate-send → halo → solve →
//! migrate-drain, with particle migration latency hidden behind the solve.

use crate::halo::{self, HaloPlan};
use crate::{exchange_rho_routed, slab::SlabSolver, DecompError, Partition};
use minimpi::Comm;
use pic_core::faultlog::{FaultKind, FaultLog};
use pic_core::grid::Grid2D;
use pic_core::particles::{self, ParticlesSoA};
use pic_core::resilience::checkpoint as ckpt;
use pic_core::rng::Rng;
use pic_core::sim::{ParticleLayout, PicConfig, Simulation};
use pic_core::PicError;
use spectral::poisson::{PoissonSolver2D, SolveScratch};
use std::ops::Range;
use std::time::Instant;

/// Tag namespace for decomposition traffic: far above the step-indexed user
/// tags of the replication path (≤ ~2⁴⁰ + small), far below minimpi's
/// control namespaces (2⁴⁴⁺). Each step burns [`TAGS_PER_STEP`] tags.
const TAG_BASE: u64 = 1 << 42;
/// Tags consumed per step: halo, gather, scatter, migrate, four
/// all-to-all rounds of the slab solve, and three re-partition rounds
/// (histogram, particle exchange, field handoff).
const TAGS_PER_STEP: u64 = 16;
/// Point-to-point frames carry raw tags (minimpi epoch-qualifies only its
/// collectives), so the driver folds the communicator epoch into its tag
/// block itself: after a shrink/join bumps the epoch, replayed steps reuse
/// step numbers but never tag-match stale pre-failure frames. Epoch 0 —
/// every non-elastic run — leaves the tags untouched.
const EPOCH_TAG_SHIFT: u64 = 36;
/// Tag of the one-time initialization allreduce.
const INIT_TAG: u64 = TAG_BASE - 16;

/// Which rank set runs the spectral Poisson solve each step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverMode {
    /// Slab-distributed solve: every rank owns a contiguous row slab,
    /// all-to-all exchanges implement the distributed transpose, and no
    /// rank ever holds the full grid. The default.
    Slab,
    /// Gather ρ to the first group rank, solve the full grid there, and
    /// scatter E back — the legacy fallback, O(grid) memory and solve time
    /// on one rank.
    RootGather,
}

/// Knobs of the decomposition itself (the physics lives in [`PicConfig`]).
#[derive(Debug, Clone, Copy)]
pub struct DecompConfig {
    /// Halo width in cells: the Chebyshev distance a particle may travel
    /// in one step. 2 covers |v| < 2 cells/step; raise it for hot tails
    /// (e.g. 128-grid Landau at σ = 1 thermal units ≈ 0.64 cells/step
    /// keeps 3σ under 2, but two-stream beams at v₀ = 3 need 3).
    pub halo_width: usize,
    /// Cut the curve by initial per-cell particle counts instead of cell
    /// counts, so ranks start with near-equal particle loads.
    pub weighted: bool,
    /// Field-solve distribution strategy.
    pub solver: SolverMode,
    /// Per-job tag-namespace block ([`minimpi::job_tag_block`]), folded
    /// into every tag this driver uses. Concurrent decomposed jobs
    /// sharing one world must carry distinct blocks so their step tags
    /// never alias; 0 (the default) is the single-job legacy namespace.
    pub tag_block: u64,
}

impl Default for DecompConfig {
    fn default() -> Self {
        Self {
            halo_width: 2,
            weighted: false,
            solver: SolverMode::Slab,
            tag_block: 0,
        }
    }
}

/// Cumulative per-rank communication accounting, by phase: bytes moved
/// *and* wall time spent, so overlap gains are measurable, not just
/// volume reductions.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommStats {
    /// Bytes moved (sent + received) by ρ halo exchanges.
    pub halo_bytes: u64,
    /// Bytes moved by the owned-ρ gather to the solving rank
    /// ([`SolverMode::RootGather`] only).
    pub gather_bytes: u64,
    /// Bytes moved by the E scatter from the solving rank
    /// ([`SolverMode::RootGather`] only).
    pub scatter_bytes: u64,
    /// Bytes moved by the slab solve's all-to-all rounds
    /// ([`SolverMode::Slab`] only).
    pub solve_bytes: u64,
    /// Bytes moved by particle migration.
    pub migrate_bytes: u64,
    /// Particles sent to other ranks.
    pub migrated_out: u64,
    /// Particles received from other ranks.
    pub migrated_in: u64,
    /// Wall seconds in the ρ halo exchange.
    pub halo_secs: f64,
    /// Wall seconds in the field solve (gather + solve + scatter for the
    /// root path; the full all-to-all pipeline for the slab path).
    pub solve_secs: f64,
    /// Wall seconds posting migration sends (classify + send + compact) —
    /// before the solve, so the payloads travel while ranks compute.
    pub migrate_send_secs: f64,
    /// Wall seconds draining migration receives after the solve. Near-zero
    /// drain time relative to `migrate_send_secs` + transit means the
    /// overlap hid the migration latency.
    pub migrate_drain_secs: f64,
}

impl CommStats {
    /// Total bytes moved across all phases.
    pub fn total_bytes(&self) -> u64 {
        self.halo_bytes
            + self.gather_bytes
            + self.scatter_bytes
            + self.solve_bytes
            + self.migrate_bytes
    }

    /// Total wall seconds attributed to communication-bearing phases.
    pub fn total_secs(&self) -> f64 {
        self.halo_secs + self.solve_secs + self.migrate_send_secs + self.migrate_drain_secs
    }
}

/// A spatially decomposed PIC run: this rank advances only the particles
/// inside its subdomain and stores valid field values only on its points
/// (plus halos). The spectral Poisson solve is either slab-distributed
/// across all ranks (default) or gathered to one root rank
/// ([`SolverMode`]).
///
/// Collective in construction and in [`step`](Self::step): every rank of
/// the communicator must call them in lockstep with identical
/// configurations.
/// # Slots
///
/// The partition is indexed by *slot*, not world rank: slot `s` is the
/// `s`-th contiguous curve range, and [`slot_owner`](Self::slot_owner)
/// maps it to the world rank currently hosting it (a bijection with the
/// live communicator group). In a plain world the map is the identity and
/// the distinction disappears; after a death + rejoin, the replacement
/// rank adopts the dead rank's slot, so partition geometry, halo plans,
/// and tag schedules survive membership churn unchanged.
pub struct DecomposedSimulation {
    sim: Simulation,
    partition: Partition,
    plan: HaloPlan,
    rank: usize,
    root: usize,
    step: u64,
    stats: CommStats,
    faults: FaultLog,
    backend: SolverBackend,
    /// `owned_points` of every slot (solver routing needs them; cheap
    /// enough to keep everywhere).
    all_owned_points: Vec<Vec<usize>>,
    /// `e_points` of every slot.
    all_e_points: Vec<Vec<usize>>,
    /// The physics configuration (with this rank's `keep_cells` applied) —
    /// kept so re-partitions and backend rebuilds can re-derive grid
    /// parameters and fingerprints.
    cfg: PicConfig,
    dcfg: DecompConfig,
    /// The solver mode currently in force (may differ from `dcfg.solver`
    /// after a graceful degradation).
    mode: SolverMode,
    /// The partition slot this rank hosts.
    my_slot: usize,
    /// Slot → hosting world rank (bijection with the live group).
    slot_owner: Vec<usize>,
}

/// Per-rank field-solver state, by mode.
enum SolverBackend {
    /// Root gather/solve/scatter: `Some` on the root rank only.
    Root(Option<RootSolver>),
    /// Slab-distributed solve: every rank carries one.
    Slab(SlabSolver),
}

struct RootSolver {
    solver: PoissonSolver2D,
    scratch: SolveScratch,
    rho: Vec<f64>,
    ex: Vec<f64>,
    ey: Vec<f64>,
}

impl DecomposedSimulation {
    /// Build the partition, slice the sampled particle population by owned
    /// cells, and initialize the local simulation (the initial ρ is summed
    /// across ranks with one allreduce, so every rank starts from the
    /// correct global field — the only full-grid collective of the run).
    pub fn new(
        mut cfg: PicConfig,
        dcfg: DecompConfig,
        comm: &mut Comm,
    ) -> Result<Self, DecompError> {
        if cfg.particle_layout != ParticleLayout::Soa {
            return Err(DecompError::Config(
                "decomposed runs require the SoA particle layout".into(),
            ));
        }
        if cfg.keep_range.is_some() || cfg.keep_cells.is_some() {
            return Err(DecompError::Config(
                "keep_range/keep_cells are owned by the decomposition driver".into(),
            ));
        }
        if dcfg.halo_width == 0 {
            return Err(DecompError::Config("halo_width must be at least 1".into()));
        }
        let rank = comm.rank();
        // One slot per live group member; in a fresh world the group is
        // `0..nranks` and slots coincide with ranks.
        let slot_owner: Vec<usize> = comm.group().to_vec();
        let nranks = slot_owner.len();
        let my_slot = slot_owner
            .iter()
            .position(|&r| r == rank)
            .expect("calling rank is a group member");

        let partition = if dcfg.weighted {
            // Re-sample the (deterministic) initial population once to
            // histogram per-cell loads; every rank computes the same cut.
            let grid = Grid2D::new(cfg.grid_nx, cfg.grid_ny, cfg.lx, cfg.ly)?;
            let layout = cfg
                .ordering
                .build(cfg.grid_nx, cfg.grid_ny)
                .map_err(PicError::from)?;
            let mut rng = Rng::seed_from_u64(cfg.seed);
            let sample = particles::initialize_with_rng(
                &grid,
                layout.as_ref(),
                cfg.distribution,
                cfg.n_particles,
                &mut rng,
            );
            let w = crate::particle_cell_weights(&sample.icell, layout.ncells());
            Partition::new_weighted(cfg.ordering, cfg.grid_nx, cfg.grid_ny, nranks, &w)?
        } else {
            Partition::new(cfg.ordering, cfg.grid_nx, cfg.grid_ny, nranks)?
        };

        let range = partition.range(my_slot);
        cfg.keep_cells = Some((range.start as u32, range.end as u32));

        let plan = HaloPlan::build(&partition, my_slot, dcfg.halo_width);
        let all_owned_points: Vec<Vec<usize>> = (0..nranks)
            .map(|s| HaloPlan::build(&partition, s, dcfg.halo_width).owned_points)
            .collect();
        let all_e_points: Vec<Vec<usize>> = (0..nranks)
            .map(|s| HaloPlan::build(&partition, s, dcfg.halo_width).e_points)
            .collect();

        let mut comm_err = None;
        let init_tag = INIT_TAG + dcfg.tag_block;
        let sim = Simulation::new_with_reduce(cfg.clone(), |rho| {
            if let Err(e) = comm.try_allreduce_sum_tree(rho, init_tag) {
                comm_err = Some(e);
            }
        })?;
        if let Some(e) = comm_err {
            return Err(e.into());
        }

        let mut this = Self {
            sim,
            partition,
            plan,
            rank,
            root: comm.group()[0],
            step: 0,
            stats: CommStats::default(),
            faults: FaultLog::new(),
            backend: SolverBackend::Root(None),
            all_owned_points,
            all_e_points,
            cfg,
            dcfg,
            mode: dcfg.solver,
            my_slot,
            slot_owner,
        };
        this.build_backend(comm)?;
        Ok(this)
    }

    /// Build a driver on a *joining* rank by adopting partition state the
    /// incumbent group already agreed on: explicit `ranges` (the cuts in
    /// force at the rollback step), the resolved `slot_owner` table (which
    /// names this rank for exactly one slot), and the adopted slot's buddy
    /// `snapshot`. No collective participates — the incumbents restore
    /// their own snapshots concurrently — so the joiner slots into the
    /// step/tag schedule exactly where the group rolled back to.
    ///
    /// `cfg` must be the run's original physics configuration (same
    /// `keep_cells`-free form every rank passed to [`new`](Self::new));
    /// `dcfg.solver` must name the mode currently in force.
    pub fn new_adopted(
        mut cfg: PicConfig,
        dcfg: DecompConfig,
        comm: &mut Comm,
        ranges: Vec<Range<usize>>,
        slot_owner: Vec<usize>,
        snapshot: &[u8],
    ) -> Result<Self, DecompError> {
        if cfg.particle_layout != ParticleLayout::Soa {
            return Err(DecompError::Config(
                "decomposed runs require the SoA particle layout".into(),
            ));
        }
        if cfg.keep_range.is_some() || cfg.keep_cells.is_some() {
            return Err(DecompError::Config(
                "keep_range/keep_cells are owned by the decomposition driver".into(),
            ));
        }
        if dcfg.halo_width == 0 {
            return Err(DecompError::Config("halo_width must be at least 1".into()));
        }
        let rank = comm.rank();
        let partition = Partition::from_ranges(cfg.ordering, cfg.grid_nx, cfg.grid_ny, ranges)?;
        if slot_owner.len() != partition.nranks() {
            return Err(DecompError::Config(format!(
                "{} slot owners for {} slots",
                slot_owner.len(),
                partition.nranks()
            )));
        }
        let my_slot = slot_owner
            .iter()
            .position(|&r| r == rank)
            .ok_or_else(|| DecompError::Config(format!("rank {rank} hosts no slot")))?;

        // Full-domain init without communication: the snapshot replaces
        // every field of this state, the construction only sizes buffers
        // and builds kernels deterministically.
        let sim = Simulation::new_with_reduce(cfg.clone(), |_| {})?;
        let plan = HaloPlan::build(&partition, my_slot, dcfg.halo_width);
        let all_owned_points: Vec<Vec<usize>> = (0..partition.nranks())
            .map(|s| HaloPlan::build(&partition, s, dcfg.halo_width).owned_points)
            .collect();
        let all_e_points: Vec<Vec<usize>> = (0..partition.nranks())
            .map(|s| HaloPlan::build(&partition, s, dcfg.halo_width).e_points)
            .collect();
        let range = partition.range(my_slot);
        cfg.keep_cells = Some((range.start as u32, range.end as u32));

        let mut this = Self {
            sim,
            partition,
            plan,
            rank,
            root: comm.group()[0],
            step: 0,
            stats: CommStats::default(),
            faults: FaultLog::new(),
            backend: SolverBackend::Root(None),
            all_owned_points,
            all_e_points,
            cfg,
            dcfg,
            mode: dcfg.solver,
            my_slot,
            slot_owner,
        };
        this.sim
            .set_keep_cells(Some((range.start as u32, range.end as u32)))?;
        this.build_backend(comm)?;
        this.sim.restore(snapshot)?;
        this.step = this.sim.steps() as u64;
        Ok(this)
    }

    /// Rebuild the field-solver backend for the current partition, slot
    /// map, and mode. Slab indices follow the *group order* of the hosting
    /// ranks; every slab value is computed by identical arithmetic
    /// wherever it is hosted (row FFTs are per-row, transposes are pure
    /// permutations), so the solved E is bitwise independent of hosting.
    fn build_backend(&mut self, comm: &Comm) -> Result<(), DecompError> {
        let group = comm.group();
        self.root = group[0];
        self.backend = match self.mode {
            SolverMode::Slab => {
                let me = group
                    .iter()
                    .position(|&r| r == self.rank)
                    .expect("member of own group");
                let owned: Vec<Vec<usize>> = group
                    .iter()
                    .map(|&r| self.all_owned_points[self.slot_of(r)].clone())
                    .collect();
                let epts: Vec<Vec<usize>> = group
                    .iter()
                    .map(|&r| self.all_e_points[self.slot_of(r)].clone())
                    .collect();
                SolverBackend::Slab(SlabSolver::new(
                    self.cfg.grid_nx,
                    self.cfg.grid_ny,
                    self.cfg.lx,
                    self.cfg.ly,
                    me,
                    group.len(),
                    &owned,
                    &epts,
                )?)
            }
            SolverMode::RootGather => SolverBackend::Root(if self.rank == self.root {
                let n = self.cfg.grid_nx * self.cfg.grid_ny;
                Some(RootSolver {
                    solver: PoissonSolver2D::new(
                        self.cfg.grid_nx,
                        self.cfg.grid_ny,
                        self.cfg.lx,
                        self.cfg.ly,
                    )
                    .map_err(PicError::from)?,
                    scratch: SolveScratch::new(),
                    rho: vec![0.0; n],
                    ex: vec![0.0; n],
                    ey: vec![0.0; n],
                })
            } else {
                None
            }),
        };
        Ok(())
    }

    /// The slot hosted by world rank `r`.
    fn slot_of(&self, r: usize) -> usize {
        self.slot_owner
            .iter()
            .position(|&o| o == r)
            .expect("rank hosts a slot")
    }

    /// First tag of this step's block, with the communicator epoch and the
    /// job's tag block folded in (see [`EPOCH_TAG_SHIFT`] and
    /// [`DecompConfig::tag_block`]).
    fn tag0(&self, comm: &Comm) -> u64 {
        TAG_BASE
            + self.dcfg.tag_block
            + (comm.epoch() << EPOCH_TAG_SHIFT)
            + TAGS_PER_STEP * self.step
    }

    /// Advance one step on every rank (collective).
    ///
    /// 1. local sort/kick/push/deposit ([`Simulation::step_pre_reduce`]) —
    ///    the deposit runs the per-rank config's
    ///    [`DepositPath`](pic_core::sim::DepositPath), so decomposed runs
    ///    get the vectorized deposit kernels (and their per-cell FP bound)
    ///    exactly as serial runs do;
    /// 2. leakage check — every particle must still sit in the write
    ///    region, else its deposit escaped the halo;
    /// 3. **post migration sends**: particles whose cell changed owner are
    ///    shipped out and compacted away now, so their payloads travel
    ///    while every rank is busy solving;
    /// 4. halo-exchange partial ρ so owned points hold global values;
    /// 5. field solve — slab-distributed all-to-all pipeline, or the
    ///    root gather/solve/scatter fallback ([`SolverMode`]);
    /// 6. rebuild the local redundant field view and diagnostics;
    /// 7. **drain migration receives** posted in step 3.
    ///
    /// Any injected transport fault surfaces as `Err` (never a deadlock:
    /// sends are non-blocking and receives are deadline-bounded); transport
    /// retry/kill events are folded into [`fault_log`](Self::fault_log).
    pub fn step(&mut self, comm: &mut Comm) -> Result<(), DecompError> {
        self.step += 1;
        let t0 = self.tag0(comm);
        let res = self.step_inner(comm, t0);
        self.faults.ingest_transport(self.step, comm.take_events());
        // Ledger this rank's adaptive hot-path switches (if a controller is
        // enabled) alongside the transport events, so per-rank decision
        // histories are auditable after the run.
        for ev in self.sim.take_hot_path_events() {
            self.faults.record(
                ev.step,
                self.rank,
                comm.op_count(),
                FaultKind::Adapt,
                format!(
                    "{} {} -> {} (disorder {:.3}, uniform {:.3}, period {})",
                    ev.what, ev.from, ev.to, ev.disorder, ev.uniform, ev.period
                ),
            );
        }
        res
    }

    fn step_inner(&mut self, comm: &mut Comm, t0: u64) -> Result<(), DecompError> {
        self.sim.step_pre_reduce();

        for &c in &self.sim.particles().icell {
            if !self.plan.write_cells[c as usize] {
                return Err(DecompError::Leakage {
                    rank: self.rank,
                    icell: c as usize,
                    step: self.step,
                });
            }
        }

        let mut moved = comm.bytes_sent() + comm.bytes_received();
        let mut mark = Instant::now();
        let mut phase = |comm: &Comm, bytes: &mut u64, secs: &mut f64| {
            let now = comm.bytes_sent() + comm.bytes_received();
            *bytes += now - moved;
            moved = now;
            *secs += mark.elapsed().as_secs_f64();
            mark = Instant::now();
        };

        // Comm/compute overlap: migration payloads leave now and sit in
        // the peers' stashes while everyone runs the solve; the matching
        // receives drain after it.
        self.migrate_send(comm, t0 + 3)?;
        phase(
            comm,
            &mut self.stats.migrate_bytes,
            &mut self.stats.migrate_send_secs,
        );

        exchange_rho_routed(comm, &self.plan, self.sim.rho_mut(), t0, &self.slot_owner)?;
        phase(comm, &mut self.stats.halo_bytes, &mut self.stats.halo_secs);

        match &mut self.backend {
            SolverBackend::Slab(slab) => {
                let (rho, ex, ey) = self.sim.field_mut();
                slab.solve(comm, rho, ex, ey, t0 + 4)?;
                phase(
                    comm,
                    &mut self.stats.solve_bytes,
                    &mut self.stats.solve_secs,
                );
            }
            SolverBackend::Root(solver) => {
                let rho = self.sim.rho_mut();
                let owned: Vec<f64> = self.plan.owned_points.iter().map(|&p| rho[p]).collect();
                let gathered = comm.try_gather(&owned, t0 + 1)?;
                phase(
                    comm,
                    &mut self.stats.gather_bytes,
                    &mut self.stats.solve_secs,
                );

                match gathered {
                    Some(parts) => {
                        let rs = solver.as_mut().expect("gather root solves");
                        // Gathered parts arrive in group order; map each
                        // back to the slot its sender hosts.
                        let group = comm.group().to_vec();
                        for (g, vals) in parts.iter().enumerate() {
                            let slot = self
                                .slot_owner
                                .iter()
                                .position(|&o| o == group[g])
                                .expect("group member hosts a slot");
                            for (&v, &p) in vals.iter().zip(&self.all_owned_points[slot]) {
                                rs.rho[p] = v;
                            }
                        }
                        rs.solver
                            .solve_e_with(&rs.rho, &mut rs.ex, &mut rs.ey, &mut rs.scratch);
                        for (s, pts) in self.all_e_points.iter().enumerate() {
                            if s == self.my_slot {
                                continue;
                            }
                            let payload: Vec<f64> = pts
                                .iter()
                                .map(|&p| rs.ex[p])
                                .chain(pts.iter().map(|&p| rs.ey[p]))
                                .collect();
                            comm.try_send(self.slot_owner[s], t0 + 2, &payload)?;
                        }
                        let (ex, ey) = self.sim.e_field_mut();
                        for &p in &self.plan.e_points {
                            ex[p] = rs.ex[p];
                            ey[p] = rs.ey[p];
                        }
                    }
                    None => {
                        let data = comm.try_recv_group(self.root, t0 + 2)?;
                        let n = self.plan.e_points.len();
                        if data.len() != 2 * n {
                            return Err(DecompError::Config(format!(
                                "E scatter payload: {} values for {n} points",
                                data.len()
                            )));
                        }
                        let (ex, ey) = self.sim.e_field_mut();
                        for (i, &p) in self.plan.e_points.iter().enumerate() {
                            ex[p] = data[i];
                            ey[p] = data[n + i];
                        }
                    }
                }
                phase(
                    comm,
                    &mut self.stats.scatter_bytes,
                    &mut self.stats.solve_secs,
                );
            }
        }

        self.sim.step_post_external_solve();

        self.migrate_drain(comm, t0 + 3)?;
        phase(
            comm,
            &mut self.stats.migrate_bytes,
            &mut self.stats.migrate_drain_secs,
        );
        Ok(())
    }

    /// Route particles whose cell left the subdomain to the owning slot's
    /// host: classify, post one send per halo neighbor (possibly empty, so
    /// no receive can dangle), and compact the stayers. The matching
    /// receives happen in [`migrate_drain`](Self::migrate_drain) after the
    /// solve; stayers keep their relative order and arrivals append in
    /// ascending sender-*slot* order — deterministic and independent of
    /// which rank hosts which slot, and the next counting sort restores
    /// cell order.
    fn migrate_send(&mut self, comm: &mut Comm, tag: u64) -> Result<(), DecompError> {
        let p = self.sim.particles_mut();
        let n = p.len();
        let mut stay = vec![true; n];
        let mut outgoing: Vec<Vec<usize>> = vec![Vec::new(); self.plan.neighbors.len()];
        for (i, keep) in stay.iter_mut().enumerate() {
            let owner = self.partition.owner(p.icell[i] as usize);
            if owner != self.my_slot {
                // The leakage check bounds strays to the write region, so
                // the owning slot is always a halo neighbor.
                let j = self
                    .plan
                    .neighbors
                    .binary_search(&owner)
                    .expect("stray owner within halo neighborhood");
                outgoing[j].push(i);
                *keep = false;
            }
        }

        for (j, &peer) in self.plan.neighbors.iter().enumerate() {
            let mut payload = Vec::with_capacity(outgoing[j].len() * F_PER_P);
            for &i in &outgoing[j] {
                payload.extend_from_slice(&[
                    f64::from(p.icell[i]),
                    f64::from(p.ix[i]),
                    f64::from(p.iy[i]),
                    p.dx[i],
                    p.dy[i],
                    p.vx[i],
                    p.vy[i],
                ]);
            }
            comm.try_send(self.slot_owner[peer], tag, &payload)?;
            self.stats.migrated_out += outgoing[j].len() as u64;
        }

        if outgoing.iter().any(|o| !o.is_empty()) {
            compact(p, &stay);
        }
        Ok(())
    }

    /// Drain the migration receives posted by [`migrate_send`]
    /// (Self::migrate_send) — by now the payloads have crossed during the
    /// solve, so this is normally a stash lookup, not a wait.
    fn migrate_drain(&mut self, comm: &mut Comm, tag: u64) -> Result<(), DecompError> {
        for &peer_slot in &self.plan.neighbors {
            let peer = self.slot_owner[peer_slot];
            let data = comm.try_recv_group(peer, tag)?;
            if data.len() % F_PER_P != 0 {
                return Err(DecompError::Config(format!(
                    "migration payload from rank {peer}: {} values not a \
                     multiple of {F_PER_P}",
                    data.len()
                )));
            }
            let p = self.sim.particles_mut();
            for q in data.chunks_exact(F_PER_P) {
                p.icell.push(q[0] as u32);
                p.ix.push(q[1] as u32);
                p.iy.push(q[2] as u32);
                p.dx.push(q[3]);
                p.dy.push(q[4]);
                p.vx.push(q[5]);
                p.vy.push(q[6]);
            }
            self.stats.migrated_in += (data.len() / F_PER_P) as u64;
        }
        Ok(())
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize, comm: &mut Comm) -> Result<(), DecompError> {
        for _ in 0..n {
            self.step(comm)?;
        }
        Ok(())
    }

    /// Snapshot the local simulation state (particles, fields, RNG,
    /// diagnostics). The snapshot is the plain [`Simulation::checkpoint`]
    /// format — its config fingerprint covers grid, physics, and this
    /// rank's `keep_cells` range, but *not* the solver mode or thread
    /// count, so a snapshot taken under one solver restores into another.
    pub fn checkpoint(&self) -> Vec<u8> {
        self.sim.checkpoint()
    }

    /// Restore the local simulation from a [`checkpoint`](Self::checkpoint)
    /// snapshot (collective: every rank must restore a snapshot of the same
    /// step so the tag sequence stays aligned).
    pub fn restore(&mut self, snapshot: &[u8]) -> Result<(), DecompError> {
        self.sim.restore(snapshot).map_err(DecompError::Pic)?;
        self.step = self.sim.steps() as u64;
        Ok(())
    }

    // ------------------------------------------------------- elasticity

    /// Live re-partition (collective): histogram the current particle
    /// population per cell (an allreduce of exact integer counts, so every
    /// rank computes bit-identical weights in any summation order), re-cut
    /// the curve, and migrate only what the new cuts displace — particles
    /// whose cell changed owner, plus a pointwise field handoff so the new
    /// owner of every point inherits the old owner's (canonical) ρ/E
    /// values. Slot hosting is unchanged, so a run that re-cuts on a fixed
    /// schedule stays bit-exact against any same-schedule run of the same
    /// trajectory, whatever its fault history.
    pub fn recut(&mut self, comm: &mut Comm) -> Result<(), DecompError> {
        let hosts = self.slot_owner.clone();
        let my_slot = self.my_slot;
        self.recut_to(comm, hosts.clone(), hosts, my_slot)
    }

    /// Generalized re-partition: re-cut to `new_hosts.len()` slots, with
    /// `old_hosts[s]` naming the world rank holding slot `s`'s *current*
    /// state (differs from the hosting map only during shrink recovery,
    /// where a dead slot's state was injected into its buddy) and
    /// `new_hosts` the hosting map afterwards (a bijection with the live
    /// group). `new_my_slot` is this rank's position in `new_hosts`.
    pub fn recut_to(
        &mut self,
        comm: &mut Comm,
        old_hosts: Vec<usize>,
        new_hosts: Vec<usize>,
        new_my_slot: usize,
    ) -> Result<(), DecompError> {
        let group = comm.group().to_vec();
        let new_nslots = new_hosts.len();
        if new_nslots != group.len() {
            return Err(DecompError::Config(format!(
                "{new_nslots} slots for a {}-rank group",
                group.len()
            )));
        }
        if old_hosts.len() != self.partition.nranks() {
            return Err(DecompError::Config(format!(
                "{} old hosts for {} slots",
                old_hosts.len(),
                self.partition.nranks()
            )));
        }
        if new_hosts.get(new_my_slot) != Some(&self.rank) {
            return Err(DecompError::Config(format!(
                "rank {} does not host new slot {new_my_slot}",
                self.rank
            )));
        }
        let rt = self.tag0(comm) + TAGS_PER_STEP + 8;
        let ncells = self.partition.ncells();

        // 1. Global per-cell histogram: sums of exact small integers are
        //    order-independent in f64, so every rank derives the same cuts.
        let mut w = vec![0.0f64; ncells];
        for &c in &self.sim.particles().icell {
            w[c as usize] += 1.0;
        }
        comm.try_allreduce_sum_tree(&mut w, rt)?;
        let new_part = self.partition.recut_weighted(&w, new_nslots)?;

        // Group index hosting each new slot.
        let g_of_new: Vec<usize> = new_hosts
            .iter()
            .map(|&h| {
                group
                    .iter()
                    .position(|&r| r == h)
                    .ok_or_else(|| DecompError::Config(format!("new host {h} not in group")))
            })
            .collect::<Result<_, _>>()?;

        // 2. Ship particles to their new owner slot (all-slots exchange:
        //    a re-cut can move cells past halo distance).
        {
            let p = self.sim.particles_mut();
            let mut stay = vec![true; p.len()];
            let mut blocks: Vec<Vec<f64>> = vec![Vec::new(); group.len()];
            for (i, keep) in stay.iter_mut().enumerate() {
                let s = new_part.owner(p.icell[i] as usize);
                if s != new_my_slot {
                    blocks[g_of_new[s]].extend_from_slice(&[
                        f64::from(p.icell[i]),
                        f64::from(p.ix[i]),
                        f64::from(p.iy[i]),
                        p.dx[i],
                        p.dy[i],
                        p.vx[i],
                        p.vy[i],
                    ]);
                    *keep = false;
                }
            }
            let moved = blocks.iter().map(|b| b.len() / F_PER_P).sum::<usize>();
            if moved > 0 {
                compact(p, &stay);
            }
            self.stats.migrated_out += moved as u64;
            let parts = comm.try_all_to_all(&blocks, rt + 1)?;
            // Append arrivals in ascending sender-*slot* order, so the
            // particle array is independent of slot → rank hosting.
            let mut order: Vec<usize> = (0..new_nslots).collect();
            order.retain(|&s| s != new_my_slot);
            let p = self.sim.particles_mut();
            for s in order {
                let data = &parts[g_of_new[s]];
                if data.len() % F_PER_P != 0 {
                    return Err(DecompError::Config(format!(
                        "re-cut particle payload from slot {s}: {} values not a \
                         multiple of {F_PER_P}",
                        data.len()
                    )));
                }
                for q in data.chunks_exact(F_PER_P) {
                    p.icell.push(q[0] as u32);
                    p.ix.push(q[1] as u32);
                    p.iy.push(q[2] as u32);
                    p.dx.push(q[3]);
                    p.dy.push(q[4]);
                    p.vx.push(q[5]);
                    p.vy.push(q[6]);
                }
                self.stats.migrated_in += (data.len() / F_PER_P) as u64;
            }
        }

        // 3. Field handoff: for every grid point, the owner of its cell
        //    under the *old* partition is the canonical holder (ρ summed
        //    at owned points by the halo exchange, E delivered at
        //    e_points ⊇ owned points). Each rank sends E at the new
        //    owners' e-points and ρ at their owned points, restricted to
        //    the old slots whose state it holds; both endpoints derive
        //    identical ascending point lists, so no index traffic and the
        //    writes are disjoint. Pointwise copies — no arithmetic — so
        //    the handoff cannot perturb the trajectory.
        let old_po = halo::point_owner_map(&self.partition);
        let new_po = halo::point_owner_map(&new_part);
        let new_e_masks: Vec<Vec<bool>> = (0..new_nslots)
            .map(|s| halo::corner_point_mask(&new_part, &halo::mask_of_range(&new_part, s)))
            .collect();
        {
            let (rho, ex, ey) = self.sim.field_mut();
            let mut blocks: Vec<Vec<f64>> = vec![Vec::new(); group.len()];
            for s in 0..new_nslots {
                let blk = &mut blocks[g_of_new[s]];
                for p in 0..ncells {
                    if new_e_masks[s][p] && old_hosts[old_po[p]] == self.rank {
                        blk.push(ex[p]);
                        blk.push(ey[p]);
                    }
                }
                for p in 0..ncells {
                    if new_po[p] == s && old_hosts[old_po[p]] == self.rank {
                        blk.push(rho[p]);
                    }
                }
            }
            let parts = comm.try_all_to_all(&blocks, rt + 2)?;
            let (rho, ex, ey) = self.sim.field_mut();
            for (g, data) in parts.iter().enumerate() {
                let from_g = |p: usize| old_hosts[old_po[p]] == group[g];
                let ne = (0..ncells)
                    .filter(|&p| new_e_masks[new_my_slot][p] && from_g(p))
                    .count();
                let nr = (0..ncells)
                    .filter(|&p| new_po[p] == new_my_slot && from_g(p))
                    .count();
                if data.len() != 2 * ne + nr {
                    return Err(DecompError::Config(format!(
                        "field handoff from group member {g}: {} values for \
                         {ne} E points + {nr} ρ points",
                        data.len()
                    )));
                }
                let mut it = data.iter();
                for p in (0..ncells).filter(|&p| new_e_masks[new_my_slot][p] && from_g(p)) {
                    ex[p] = *it.next().expect("E payload sized above");
                    ey[p] = *it.next().expect("E payload sized above");
                }
                for p in (0..ncells).filter(|&p| new_po[p] == new_my_slot && from_g(p)) {
                    rho[p] = *it.next().expect("rho payload sized above");
                }
            }
        }
        // 4. Adopt the new partition and rebuild plans + backend. A re-cut
        //    appends arrivals out of cell order, so tell the adaptive
        //    controller (if any) the population was externally shuffled —
        //    the next eligible boundary sorts instead of waiting for the
        //    disorder EWMA to catch up.
        self.sim.note_external_shuffle();
        self.apply_partition(comm, new_part, new_hosts, new_my_slot)?;
        self.faults.record(
            self.step,
            self.rank,
            comm.op_count(),
            FaultKind::Recut,
            format!(
                "{new_nslots} slot(s), slot {new_my_slot} owns {:?}, {} local particle(s)",
                self.partition.range(new_my_slot),
                self.sim.particles().len()
            ),
        );
        Ok(())
    }

    /// Install a partition + hosting map: update `keep_cells` (and the
    /// checkpoint fingerprint with it), rebuild the halo plans and the
    /// solver backend. Purely local.
    fn apply_partition(
        &mut self,
        comm: &Comm,
        part: Partition,
        slot_owner: Vec<usize>,
        my_slot: usize,
    ) -> Result<(), DecompError> {
        let range = part.range(my_slot);
        let keep = (range.start as u32, range.end as u32);
        self.sim.set_keep_cells(Some(keep))?;
        self.cfg.keep_cells = Some(keep);
        self.plan = HaloPlan::build(&part, my_slot, self.dcfg.halo_width);
        self.all_owned_points = (0..part.nranks())
            .map(|s| HaloPlan::build(&part, s, self.dcfg.halo_width).owned_points)
            .collect();
        self.all_e_points = (0..part.nranks())
            .map(|s| HaloPlan::build(&part, s, self.dcfg.halo_width).e_points)
            .collect();
        self.partition = part;
        self.slot_owner = slot_owner;
        self.my_slot = my_slot;
        self.build_backend(comm)
    }

    /// Re-resolve the slot → rank hosting map against the current group
    /// (same partition): how incumbents absorb a membership change —
    /// a joiner adopting a dead rank's slot — without moving any data.
    /// Rebuilds plans and backend against the (possibly rolled-back)
    /// partition.
    pub fn reconfigure_hosts(
        &mut self,
        comm: &Comm,
        slot_owner: Vec<usize>,
    ) -> Result<(), DecompError> {
        if slot_owner.len() != self.partition.nranks() {
            return Err(DecompError::Config(format!(
                "{} slot owners for {} slots",
                slot_owner.len(),
                self.partition.nranks()
            )));
        }
        let my_slot = slot_owner
            .iter()
            .position(|&r| r == self.rank)
            .ok_or_else(|| DecompError::Config(format!("rank {} hosts no slot", self.rank)))?;
        let part = Partition::from_ranges(
            self.partition.ordering(),
            self.partition.layout().ncx(),
            self.partition.layout().ncy(),
            self.partition.ranges().to_vec(),
        )?;
        self.apply_partition(comm, part, slot_owner, my_slot)
    }

    /// Roll this rank back for recovery: re-adopt the partition that was
    /// in force at the checkpoint (`ranges`, this rank at `my_slot`) and
    /// restore the snapshot into it. Leaves the hosting map and solver
    /// backend *stale* — the caller must follow with
    /// [`reconfigure_hosts`](Self::reconfigure_hosts) or
    /// [`recut_to`](Self::recut_to) before stepping; splitting the two is
    /// what lets shrink recovery inject a dead slot's state in between.
    pub fn stage_rollback(
        &mut self,
        ranges: Vec<Range<usize>>,
        my_slot: usize,
        snapshot: &[u8],
    ) -> Result<(), DecompError> {
        let part = Partition::from_ranges(
            self.partition.ordering(),
            self.partition.layout().ncx(),
            self.partition.layout().ncy(),
            ranges,
        )?;
        if my_slot >= part.nranks() {
            return Err(DecompError::Config(format!(
                "slot {my_slot} out of range for {} slots",
                part.nranks()
            )));
        }
        let range = part.range(my_slot);
        let keep = (range.start as u32, range.end as u32);
        self.sim.set_keep_cells(Some(keep))?;
        self.cfg.keep_cells = Some(keep);
        self.partition = part;
        self.my_slot = my_slot;
        self.sim.restore(snapshot)?;
        self.step = self.sim.steps() as u64;
        Ok(())
    }

    /// Inject a dead slot's decoded snapshot into this rank (its buddy):
    /// append the particles (a following [`recut_to`](Self::recut_to)
    /// redistributes them before any leakage check can see them) and adopt
    /// the snapshot's ρ/E values at the dead slot's owned points, making
    /// this rank the canonical holder of that state for the handoff.
    pub fn inject_snapshot(&mut self, slot: usize, snapshot: &[u8]) -> Result<(), DecompError> {
        let st = ckpt::decode(snapshot)?;
        let po = halo::point_owner_map(&self.partition);
        {
            let (rho, ex, ey) = self.sim.field_mut();
            for p in 0..po.len() {
                if po[p] == slot {
                    rho[p] = st.rho[p];
                    ex[p] = st.ex[p];
                    ey[p] = st.ey[p];
                }
            }
        }
        let n = st.particles.len();
        let p = self.sim.particles_mut();
        p.icell.extend_from_slice(&st.particles.icell);
        p.ix.extend_from_slice(&st.particles.ix);
        p.iy.extend_from_slice(&st.particles.iy);
        p.dx.extend_from_slice(&st.particles.dx);
        p.dy.extend_from_slice(&st.particles.dy);
        p.vx.extend_from_slice(&st.particles.vx);
        p.vy.extend_from_slice(&st.particles.vy);
        self.faults.record(
            self.step,
            self.rank,
            0,
            FaultKind::Restore,
            format!("injected {n} particle(s) of orphaned slot {slot}"),
        );
        Ok(())
    }

    /// Switch the field-solve distribution strategy in place (graceful
    /// degradation and recovery). Checkpoints are portable across the
    /// switch: the config fingerprint never covered solver parallelism.
    pub fn set_solver_mode(&mut self, comm: &Comm, mode: SolverMode) -> Result<(), DecompError> {
        if mode != self.mode {
            self.mode = mode;
            self.build_backend(comm)?;
        }
        Ok(())
    }

    /// The solver mode currently in force (tracks degradations, unlike
    /// the configured [`DecompConfig::solver`]).
    pub fn solver_mode(&self) -> SolverMode {
        self.mode
    }

    /// Enable the online adaptive hot-path controller on this rank's local
    /// simulation ([`pic_core::control`]). Decisions are strictly per-rank
    /// — each rank tracks its own disorder and phase timings, so a rank
    /// whose subdomain drifts can shorten its sort period without forcing
    /// the quiet ranks to follow. Step counts stay collective, so the tag
    /// schedule is untouched; every applied switch lands in
    /// [`fault_log`](Self::fault_log) as [`FaultKind::Adapt`].
    pub fn enable_hot_path_controller(&mut self, ccfg: pic_core::control::ControllerConfig) {
        self.sim.enable_controller(ccfg);
    }

    /// This rank's adaptive controller, when one is enabled.
    pub fn hot_path_controller(&self) -> Option<&pic_core::control::HotPathController> {
        self.sim.controller()
    }

    /// The partition slot this rank hosts.
    pub fn my_slot(&self) -> usize {
        self.my_slot
    }

    /// Slot → hosting world rank (bijection with the live group).
    pub fn slot_owner(&self) -> &[usize] {
        &self.slot_owner
    }

    /// The simulation step counter (completed steps).
    pub fn steps(&self) -> u64 {
        self.step
    }

    /// The underlying local simulation. Its ρ/E arrays hold *global*
    /// values only on this rank's [`HaloPlan::owned_points`] /
    /// [`HaloPlan::e_points`]; elsewhere they are stale partials.
    pub fn sim(&self) -> &Simulation {
        &self.sim
    }

    /// The partition shared by all ranks.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// This rank's halo plan.
    pub fn plan(&self) -> &HaloPlan {
        &self.plan
    }

    /// Cumulative per-phase communication statistics for this rank.
    pub fn stats(&self) -> CommStats {
        self.stats
    }

    /// Transport fault events (retries, kills, detections) observed by this
    /// rank's communicator during decomposed stepping.
    pub fn fault_log(&self) -> &FaultLog {
        &self.faults
    }

    /// Particles currently hosted by this rank.
    pub fn local_particles(&self) -> usize {
        self.sim.particles().len()
    }

    /// Cells owned by this rank's slot.
    pub fn local_cells(&self) -> usize {
        self.partition.range(self.my_slot).len()
    }

    /// Persistent bytes this rank dedicates to field-solver grid state:
    /// the four slab buffers in [`SolverMode::Slab`] (shrinks as ranks are
    /// added), or three full-grid arrays on the root in
    /// [`SolverMode::RootGather`] (zero on the other ranks).
    pub fn solver_grid_bytes(&self) -> u64 {
        match &self.backend {
            SolverBackend::Slab(s) => s.solver_bytes(),
            SolverBackend::Root(Some(rs)) => (3 * rs.rho.len() * std::mem::size_of::<f64>()) as u64,
            SolverBackend::Root(None) => 0,
        }
    }

    /// The assembled global ρ of the last step — root rank of
    /// [`SolverMode::RootGather`] only (`None` under the slab solver,
    /// where no rank holds the full grid).
    pub fn global_rho(&self) -> Option<&[f64]> {
        match &self.backend {
            SolverBackend::Root(Some(rs)) => Some(rs.rho.as_slice()),
            _ => None,
        }
    }

    /// The solved global E of the last step — root rank of
    /// [`SolverMode::RootGather`] only.
    pub fn global_e(&self) -> Option<(&[f64], &[f64])> {
        match &self.backend {
            SolverBackend::Root(Some(rs)) => Some((rs.ex.as_slice(), rs.ey.as_slice())),
            _ => None,
        }
    }
}

/// Migration payload stride: icell, ix, iy, dx, dy, vx, vy.
const F_PER_P: usize = 7;

/// Order-preserving compaction of all seven SoA columns by a keep mask.
fn compact(p: &mut ParticlesSoA, keep: &[bool]) {
    fn retain<T: Copy>(v: &mut Vec<T>, keep: &[bool]) {
        let mut i = 0;
        v.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
    }
    retain(&mut p.icell, keep);
    retain(&mut p.ix, keep);
    retain(&mut p.iy, keep);
    retain(&mut p.dx, keep);
    retain(&mut p.dy, keep);
    retain(&mut p.vx, keep);
    retain(&mut p.vy, keep);
}
