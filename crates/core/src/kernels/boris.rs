//! The 2d3v Boris velocity push: half electric kick, magnetic rotation,
//! half electric kick (Boris 1970; the de-facto standard leapfrog pusher).
//!
//! The rotation is the exact Rodrigues form
//! `v⁺ = v⁻ + (v⁻ + v⁻ × t) × s` with `t = (qΔt/2m)·B` and
//! `s = 2t/(1 + |t|²)`, which rotates `v⟂` by `θ = 2·atan(|t|)` — a
//! second-order approximation of the true gyro-angle `Ω·Δt`, so the
//! simulated gyro-period matches the analytic `2πm/(|q|B)` to
//! `O((ΩΔt)²)` and `|v|` is preserved *exactly* (the rotation is
//! norm-conserving in exact arithmetic and to rounding in floats).
//!
//! With a static uniform **B**, `t` and `s` are per-species constants
//! ([`BorisCoeffs`]) hoisted out of the particle loop; the loop body is
//! then one redundant-layout E gather (the same contiguous 8-double block
//! as [`super::velocity`]) plus straight-line rotation arithmetic with no
//! lane-to-lane dependence — which is why the lane-blocked variant is
//! bit-identical to the scalar one, extending the `KernelPath` contract to
//! the electromagnetic push.
//!
//! Velocities here are in *physical* units (the multi-species driver does
//! not hoist Δt/Δx into v; per-species q/m would need a field copy per
//! species, spending the redundant layout's memory budget 2·S-fold).

// SoA kernels take one slice per particle field by design, matching the
// loop shapes of the sibling electrostatic kernels.
#![allow(clippy::too_many_arguments)]

pub use super::simd::LANES;

/// Per-species, per-Δt constants of the Boris rotation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BorisCoeffs {
    /// Half-kick factor `qΔt/(2m)` applied to the gathered E.
    pub h: f64,
    /// Rotation vector `t = h·B`.
    pub t: [f64; 3],
    /// Rotation vector `s = 2t/(1 + |t|²)`.
    pub s: [f64; 3],
}

impl BorisCoeffs {
    /// Coefficients for a species with `charge`/`mass` stepping `dt`
    /// against the static uniform field `b = (Bx, By, Bz)`.
    pub fn new(charge: f64, mass: f64, dt: f64, b: [f64; 3]) -> Self {
        let h = charge * dt / (2.0 * mass);
        let t = [h * b[0], h * b[1], h * b[2]];
        let t2 = t[0] * t[0] + t[1] * t[1] + t[2] * t[2];
        let f = 2.0 / (1.0 + t2);
        Self {
            h,
            t,
            s: [t[0] * f, t[1] * f, t[2] * f],
        }
    }

    /// The rotation angle per step about the B axis: `2·atan(|t|)`.
    pub fn rotation_angle(&self) -> f64 {
        let t2 = self.t[0] * self.t[0] + self.t[1] * self.t[1] + self.t[2] * self.t[2];
        2.0 * t2.sqrt().atan()
    }
}

/// SoA Boris-push kernel signature shared by the scalar and lane variants.
pub type BorisFn =
    fn(&[u32], &[f64], &[f64], &mut [f64], &mut [f64], &mut [f64], &[[f64; 8]], &BorisCoeffs);

/// One particle's push — the single body both variants execute, so
/// bit-identity between them reduces to iteration order alone.
#[inline(always)]
fn push_one(
    e: &[f64; 8],
    odx: f64,
    ody: f64,
    vx: &mut f64,
    vy: &mut f64,
    vz: &mut f64,
    c: &BorisCoeffs,
) {
    // CIC gather, in the exact expression order of `super::velocity`.
    let w00 = (1.0 - odx) * (1.0 - ody);
    let w01 = (1.0 - odx) * ody;
    let w10 = odx * (1.0 - ody);
    let w11 = odx * ody;
    let ex = w00 * e[0] + w01 * e[1] + w10 * e[2] + w11 * e[3];
    let ey = w00 * e[4] + w01 * e[5] + w10 * e[6] + w11 * e[7];
    // Half electric kick (Ez = 0 in the electrostatic + static-B model).
    let vmx = *vx + c.h * ex;
    let vmy = *vy + c.h * ey;
    let vmz = *vz;
    // v' = v⁻ + v⁻ × t
    let vpx = vmx + (vmy * c.t[2] - vmz * c.t[1]);
    let vpy = vmy + (vmz * c.t[0] - vmx * c.t[2]);
    let vpz = vmz + (vmx * c.t[1] - vmy * c.t[0]);
    // v⁺ = v⁻ + v' × s
    let vfx = vmx + (vpy * c.s[2] - vpz * c.s[1]);
    let vfy = vmy + (vpz * c.s[0] - vpx * c.s[2]);
    let vfz = vmz + (vpx * c.s[1] - vpy * c.s[0]);
    // Second half electric kick.
    *vx = vfx + c.h * ex;
    *vy = vfy + c.h * ey;
    *vz = vfz;
}

/// Scalar Boris push over a species' SoA slices (the reference kernel and
/// the shared `n mod LANES` tail of the lane variant).
pub fn boris_push(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &mut [f64],
    vy: &mut [f64],
    vz: &mut [f64],
    e8: &[[f64; 8]],
    c: &BorisCoeffs,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n && vz.len() == n);
    for i in 0..n {
        let e = &e8[icell[i] as usize];
        push_one(e, dx[i], dy[i], &mut vx[i], &mut vy[i], &mut vz[i], c);
    }
}

/// Lane-blocked Boris push: processes [`LANES`] particles per block with
/// the same straight-line body and iteration order as [`boris_push`], so
/// the two are bit-identical on any input (each particle's arithmetic has
/// no cross-lane dependence).
pub fn boris_push_lanes(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &mut [f64],
    vy: &mut [f64],
    vz: &mut [f64],
    e8: &[[f64; 8]],
    c: &BorisCoeffs,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n && vz.len() == n);
    let main = n - n % LANES;
    let mut o = 0;
    while o < main {
        let bc = super::simd::block(icell, o);
        let bdx = super::simd::block(dx, o);
        let bdy = super::simd::block(dy, o);
        let bvx = super::simd::block_mut(vx, o);
        let bvy = super::simd::block_mut(vy, o);
        let bvz = super::simd::block_mut(vz, o);
        for l in 0..LANES {
            let e = &e8[bc[l] as usize];
            push_one(e, bdx[l], bdy[l], &mut bvx[l], &mut bvy[l], &mut bvz[l], c);
        }
        o += LANES;
    }
    boris_push(
        &icell[main..],
        &dx[main..],
        &dy[main..],
        &mut vx[main..],
        &mut vy[main..],
        &mut vz[main..],
        e8,
        c,
    );
}

/// The Boris kernel for a [`crate::sim::KernelPath`] — both bit-identical
/// by the argument above; the knob exists so autotune and parity tests can
/// flip it like the electrostatic paths.
pub fn select_boris(kernel_path: crate::sim::KernelPath) -> BorisFn {
    match kernel_path {
        crate::sim::KernelPath::Scalar => boris_push,
        crate::sim::KernelPath::Lanes => boris_push_lanes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Phase = (Vec<u32>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>, Vec<f64>);

    fn mk(n: usize) -> Phase {
        let mut rng = crate::rng::Rng::seed_from_u64(7);
        let icell: Vec<u32> = (0..n).map(|_| (rng.uniform() * 16.0) as u32).collect();
        let dx: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let dy: Vec<f64> = (0..n).map(|_| rng.uniform()).collect();
        let vx: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let vy: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let vz: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        (icell, dx, dy, vx, vy, vz)
    }

    #[test]
    fn lanes_bit_identical_to_scalar() {
        let (icell, dx, dy, vx, vy, vz) = mk(1003);
        let mut e8 = vec![[0.0f64; 8]; 16];
        let mut rng = crate::rng::Rng::seed_from_u64(9);
        for e in &mut e8 {
            for v in e.iter_mut() {
                *v = rng.normal();
            }
        }
        let c = BorisCoeffs::new(-1.0, 1.0, 0.05, [0.1, -0.2, 0.9]);
        let (mut ax, mut ay, mut az) = (vx.clone(), vy.clone(), vz.clone());
        let (mut bx, mut by, mut bz) = (vx, vy, vz);
        boris_push(&icell, &dx, &dy, &mut ax, &mut ay, &mut az, &e8, &c);
        boris_push_lanes(&icell, &dx, &dy, &mut bx, &mut by, &mut bz, &e8, &c);
        assert_eq!(ax, bx);
        assert_eq!(ay, by);
        assert_eq!(az, bz);
    }

    #[test]
    fn pure_rotation_preserves_speed() {
        // E = 0, B = ẑ: |v| must be conserved to rounding, every step.
        let e8 = vec![[0.0f64; 8]; 4];
        let c = BorisCoeffs::new(-1.0, 1.0, 0.1, [0.0, 0.0, 1.5]);
        let (mut vx, mut vy, mut vz): (Vec<f64>, Vec<f64>, Vec<f64>) =
            (vec![0.7], vec![-0.3], vec![0.45]);
        let speed0 = (vx[0] * vx[0] + vy[0] * vy[0] + vz[0] * vz[0]).sqrt();
        for _ in 0..1000 {
            boris_push(&[0], &[0.5], &[0.5], &mut vx, &mut vy, &mut vz, &e8, &c);
        }
        let speed = (vx[0] * vx[0] + vy[0] * vy[0] + vz[0] * vz[0]).sqrt();
        assert!((speed - speed0).abs() < 1e-12 * speed0.max(1.0));
        // vz is untouched by a ẑ rotation.
        assert!((vz[0] - 0.45).abs() < 1e-15);
    }

    #[test]
    fn rotation_angle_matches_analytic_to_second_order() {
        let dt = 0.05;
        let c = BorisCoeffs::new(-1.0, 1.0, dt, [0.0, 0.0, 2.0]);
        let omega_dt = 2.0 * dt; // |q|B/m · Δt
        let theta = c.rotation_angle();
        // θ = 2 atan(ΩΔt/2) = ΩΔt − (ΩΔt)³/12 + …
        assert!((theta - omega_dt).abs() < omega_dt.powi(3) / 11.0);
        assert!(theta < omega_dt);
    }
}
