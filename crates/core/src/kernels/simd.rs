//! Explicit lane-blocked kernels: fixed-width blocks of [`LANES`] particles
//! processed through array-of-lanes temporaries, with a scalar tail.
//!
//! The scalar kernels in [`super::position`] / [`super::velocity`] /
//! [`super::accumulate`] iterate seven parallel slices whose lengths the
//! compiler cannot prove equal, so every access carries a bounds check and
//! the loops do not autovectorize. These variants convert each block to
//! `&mut [T; LANES]` references first (one length check per block, then
//! provably in-bounds indexing), which lets LLVM emit full-width vector code
//! for the straight-line arithmetic — the explicit-SIMD discipline of
//! Vincenti et al.'s portable deposition algorithm, in safe Rust.
//!
//! Every lane expression either is written with *exactly* the same
//! operations and order as its scalar counterpart, or (the position
//! kernels' floor→wrap pipeline) is an exact float-domain reformulation:
//! Rust's checked `f64 as i64` cast lowers to a scalar `cvttsd2si` plus
//! NaN/saturation fixups per element, so the push instead computes the
//! scalar kernel's `trunc(x) − (x < 0)` floor in f64 (exact for
//! `|x| < 2⁵¹`) and extracts the wrapped cell index with the 2⁵² magic-
//! constant bit trick; blocks containing positions outside that range (or
//! NaN) fall back to the scalar kernel, so results stay bit-identical to
//! the scalar path for *all* inputs and particle counts — the property the
//! kernel-path parity tests pin down. The tail (`n mod LANES` particles)
//! always runs the scalar kernel. Deposition computes the four corner
//! weights lane-blocked but scatters them in particle order, preserving
//! the scalar accumulation order exactly.

// Lane kernels mirror the scalar kernels' slice-per-field signatures.
#![allow(clippy::too_many_arguments)]

use sfc::CellLayout;

/// Lane-block width: 8 × f64 fills one AVX-512 register (two AVX2).
pub const LANES: usize = 8;

/// 1.5 × 2⁵², the classic float→int bit trick: for any integer-valued
/// `f` with `|f| < 2⁵¹`, `f + MAGIC` is exact and the low 32 mantissa bits
/// of the sum are `f`'s two's-complement low 32 bits. Rust's checked
/// `as i64` cast lowers to a scalar `cvttsd2si` plus NaN/saturation fixups
/// per element, which defeats vectorization of the whole loop; this trick
/// keeps the floor→wrap pipeline in vector registers.
const MAGIC: f64 = 6_755_399_441_055_744.0;

/// Positions with `|x| < FLOOR_LIMIT` (= 2⁵¹) take the vectorized
/// floor-by-bit-trick path; a block containing anything larger (or NaN)
/// falls back to the scalar kernel, which preserves the saturating-cast
/// semantics of `as i64` exactly.
const FLOOR_LIMIT: f64 = (1u64 << 51) as f64;

/// Borrow a lane block starting at `o` from a slice as a fixed-size array.
#[inline(always)]
pub(crate) fn block<T>(s: &[T], o: usize) -> &[T; LANES] {
    s[o..o + LANES].try_into().expect("block within bounds")
}

/// Mutable counterpart of [`block`].
#[inline(always)]
pub(crate) fn block_mut<T>(s: &mut [T], o: usize) -> &mut [T; LANES] {
    (&mut s[o..o + LANES])
        .try_into()
        .expect("block within bounds")
}

/// Lane-blocked branchless push, row-major indexing. Bit-identical to
/// [`super::position::update_positions_branchless`].
pub fn update_positions_branchless_lanes(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &[f64],
    vy: &[f64],
    ncx: usize,
    ncy: usize,
    scale: f64,
) {
    debug_assert!(ncx.is_power_of_two() && ncy.is_power_of_two());
    let n = icell.len();
    assert!(
        ix.len() == n
            && iy.len() == n
            && dx.len() == n
            && dy.len() == n
            && vx.len() == n
            && vy.len() == n
    );
    let mxu = ncx as u32 - 1;
    let myu = ncy as u32 - 1;
    let ncyu = ncy as u32;
    let main = n - n % LANES;
    let mut o = 0;
    while o < main {
        let bc = block_mut(icell, o);
        let bix = block_mut(ix, o);
        let biy = block_mut(iy, o);
        let bdx = block_mut(dx, o);
        let bdy = block_mut(dy, o);
        let bvx = block(vx, o);
        let bvy = block(vy, o);
        let mut xs = [0.0f64; LANES];
        let mut ys = [0.0f64; LANES];
        let mut ok = true;
        for l in 0..LANES {
            xs[l] = bix[l] as f64 + bdx[l] + bvx[l] * scale;
            ys[l] = biy[l] as f64 + bdy[l] + bvy[l] * scale;
            // NaN fails the comparison, routing the block to the scalar
            // fallback whose `as i64` semantics handle it.
            ok &= xs[l].abs() < FLOOR_LIMIT;
            ok &= ys[l].abs() < FLOOR_LIMIT;
        }
        if ok {
            for l in 0..LANES {
                let (x, y) = (xs[l], ys[l]);
                // floor(x) as the scalar kernel computes it — trunc minus
                // one when negative — kept in the float domain, where every
                // step is exact for |x| < 2⁵¹.
                let fx = x.trunc() - if x < 0.0 { 1.0 } else { 0.0 };
                let fy = y.trunc() - if y < 0.0 { 1.0 } else { 0.0 };
                let cx = ((fx + MAGIC).to_bits() as u32) & mxu;
                let cy = ((fy + MAGIC).to_bits() as u32) & myu;
                bdx[l] = x - fx;
                bdy[l] = y - fy;
                bix[l] = cx;
                biy[l] = cy;
                bc[l] = cx * ncyu + cy;
            }
        } else {
            super::position::update_positions_branchless(
                &mut bc[..],
                &mut bix[..],
                &mut biy[..],
                &mut bdx[..],
                &mut bdy[..],
                &bvx[..],
                &bvy[..],
                ncx,
                ncy,
                scale,
            );
        }
        o += LANES;
    }
    super::position::update_positions_branchless(
        &mut icell[main..],
        &mut ix[main..],
        &mut iy[main..],
        &mut dx[main..],
        &mut dy[main..],
        &vx[main..],
        &vy[main..],
        ncx,
        ncy,
        scale,
    );
}

/// Lane-blocked branchless push under an arbitrary layout: the wrap/floor
/// arithmetic vectorizes; `layout.encode` stays scalar per lane (the same
/// extra cost Table III charges the SFC orderings). Bit-identical to
/// [`super::position::update_positions_branchless_layout`].
pub fn update_positions_branchless_layout_lanes<L: CellLayout>(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &[f64],
    vy: &[f64],
    layout: &L,
    scale: f64,
) {
    let (ncx, ncy) = (layout.ncx(), layout.ncy());
    debug_assert!(ncx.is_power_of_two() && ncy.is_power_of_two());
    let n = icell.len();
    assert!(
        ix.len() == n
            && iy.len() == n
            && dx.len() == n
            && dy.len() == n
            && vx.len() == n
            && vy.len() == n
    );
    let mxu = ncx as u32 - 1;
    let myu = ncy as u32 - 1;
    let main = n - n % LANES;
    let mut o = 0;
    while o < main {
        let bc = block_mut(icell, o);
        let bix = block_mut(ix, o);
        let biy = block_mut(iy, o);
        let bdx = block_mut(dx, o);
        let bdy = block_mut(dy, o);
        let bvx = block(vx, o);
        let bvy = block(vy, o);
        let mut xs = [0.0f64; LANES];
        let mut ys = [0.0f64; LANES];
        let mut ok = true;
        for l in 0..LANES {
            xs[l] = bix[l] as f64 + bdx[l] + bvx[l] * scale;
            ys[l] = biy[l] as f64 + bdy[l] + bvy[l] * scale;
            ok &= xs[l].abs() < FLOOR_LIMIT;
            ok &= ys[l].abs() < FLOOR_LIMIT;
        }
        if ok {
            // Vector part: positions, floor, wrap, offsets (see the
            // row-major kernel for the float-domain floor argument).
            for l in 0..LANES {
                let (x, y) = (xs[l], ys[l]);
                let fx = x.trunc() - if x < 0.0 { 1.0 } else { 0.0 };
                let fy = y.trunc() - if y < 0.0 { 1.0 } else { 0.0 };
                bdx[l] = x - fx;
                bdy[l] = y - fy;
                bix[l] = ((fx + MAGIC).to_bits() as u32) & mxu;
                biy[l] = ((fy + MAGIC).to_bits() as u32) & myu;
            }
            // Scalar part: the (monomorphized) space-filling-curve encode.
            for l in 0..LANES {
                bc[l] = layout.encode(bix[l] as usize, biy[l] as usize) as u32;
            }
        } else {
            super::position::update_positions_branchless_layout(
                &mut bc[..],
                &mut bix[..],
                &mut biy[..],
                &mut bdx[..],
                &mut bdy[..],
                &bvx[..],
                &bvy[..],
                layout,
                scale,
            );
        }
        o += LANES;
    }
    super::position::update_positions_branchless_layout(
        &mut icell[main..],
        &mut ix[main..],
        &mut iy[main..],
        &mut dx[main..],
        &mut dy[main..],
        &vx[main..],
        &vy[main..],
        layout,
        scale,
    );
}

/// Lane-blocked hoisted kick: gather the 8 redundant E values per lane, then
/// a vectorized weight-and-add block. Bit-identical to
/// [`super::velocity::update_velocities_redundant_hoisted`].
pub fn update_velocities_redundant_hoisted_lanes(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &mut [f64],
    vy: &mut [f64],
    e8: &[[f64; 8]],
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n);
    let main = n - n % LANES;
    let mut o = 0;
    let mut e = [[0.0f64; 8]; LANES];
    while o < main {
        let bc = block(icell, o);
        let bdx = block(dx, o);
        let bdy = block(dy, o);
        let bvx = block_mut(vx, o);
        let bvy = block_mut(vy, o);
        // Gather: one contiguous 8-double block per lane (data-dependent
        // indices — the part that stays a gather on any hardware).
        for l in 0..LANES {
            e[l] = e8[bc[l] as usize];
        }
        for l in 0..LANES {
            let (odx, ody) = (bdx[l], bdy[l]);
            let w00 = (1.0 - odx) * (1.0 - ody);
            let w01 = (1.0 - odx) * ody;
            let w10 = odx * (1.0 - ody);
            let w11 = odx * ody;
            bvx[l] += w00 * e[l][0] + w01 * e[l][1] + w10 * e[l][2] + w11 * e[l][3];
            bvy[l] += w00 * e[l][4] + w01 * e[l][5] + w10 * e[l][6] + w11 * e[l][7];
        }
        o += LANES;
    }
    super::velocity::update_velocities_redundant_hoisted(
        &icell[main..],
        &dx[main..],
        &dy[main..],
        &mut vx[main..],
        &mut vy[main..],
        e8,
    );
}

/// Lane-blocked coefficient kick (unhoisted baseline). Bit-identical to
/// [`super::velocity::update_velocities_redundant`].
pub fn update_velocities_redundant_lanes(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &mut [f64],
    vy: &mut [f64],
    e8: &[[f64; 8]],
    coeff_x: f64,
    coeff_y: f64,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n);
    let main = n - n % LANES;
    let mut o = 0;
    let mut e = [[0.0f64; 8]; LANES];
    while o < main {
        let bc = block(icell, o);
        let bdx = block(dx, o);
        let bdy = block(dy, o);
        let bvx = block_mut(vx, o);
        let bvy = block_mut(vy, o);
        for l in 0..LANES {
            e[l] = e8[bc[l] as usize];
        }
        for l in 0..LANES {
            let (odx, ody) = (bdx[l], bdy[l]);
            let w00 = (1.0 - odx) * (1.0 - ody);
            let w01 = (1.0 - odx) * ody;
            let w10 = odx * (1.0 - ody);
            let w11 = odx * ody;
            let ex = w00 * e[l][0] + w01 * e[l][1] + w10 * e[l][2] + w11 * e[l][3];
            let ey = w00 * e[l][4] + w01 * e[l][5] + w10 * e[l][6] + w11 * e[l][7];
            bvx[l] += coeff_x * ex;
            bvy[l] += coeff_y * ey;
        }
        o += LANES;
    }
    super::velocity::update_velocities_redundant(
        &icell[main..],
        &dx[main..],
        &dy[main..],
        &mut vx[main..],
        &mut vy[main..],
        e8,
        coeff_x,
        coeff_y,
    );
}

/// Lane-blocked redundant deposition: the 4-wide corner weights of a whole
/// lane block are computed in one vectorizable pass, then scattered in
/// particle order (so the accumulation order — and therefore every rounding
/// — matches [`super::accumulate::accumulate_redundant`] exactly).
pub fn accumulate_redundant_lanes(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    rho4: &mut [[f64; 4]],
    w: f64,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n);
    let main = n - n % LANES;
    let mut o = 0;
    let mut wb = [[0.0f64; 4]; LANES];
    while o < main {
        let bc = block(icell, o);
        let bdx = block(dx, o);
        let bdy = block(dy, o);
        // Vector part: 4 corner weights × LANES particles, straight-line.
        for l in 0..LANES {
            wb[l] = super::deposit::corner_weights(bdx[l], bdy[l], w);
        }
        // Scatter part: particle order, one contiguous 4-double block each.
        for l in 0..LANES {
            let cell = &mut rho4[bc[l] as usize];
            for corner in 0..4 {
                cell[corner] += wb[l][corner];
            }
        }
        o += LANES;
    }
    super::deposit::deposit_tail(&icell[main..], &dx[main..], &dy[main..], rho4, w);
}

#[cfg(test)]
mod tests {
    use super::super::{accumulate, position, velocity};
    use super::*;
    use crate::fields::{Field2D, RedundantE, RedundantRho};
    use crate::grid::Grid2D;
    use crate::particles::ParticlesSoA;
    use sfc::{Hilbert, Morton, RowMajor, L4D};

    /// Particle counts around the lane width: empty, single, sub-block,
    /// exact blocks, and ragged tails.
    const EDGE_COUNTS: [usize; 8] = [0, 1, 7, 8, 9, 64, 1000, 1003];

    fn mk(n: usize, ncx: usize, ncy: usize) -> ParticlesSoA {
        let mut p = ParticlesSoA::zeroed(n);
        for i in 0..n {
            let cx = (i * 5 + 3) % ncx;
            let cy = (i * 11 + 1) % ncy;
            p.ix[i] = cx as u32;
            p.iy[i] = cy as u32;
            p.icell[i] = (cx * ncy + cy) as u32;
            p.dx[i] = ((i * 29) % 97) as f64 / 97.0;
            p.dy[i] = ((i * 43) % 89) as f64 / 89.0;
            p.vx[i] = ((i % 13) as f64 - 6.0) * 0.7;
            p.vy[i] = ((i % 17) as f64 - 8.0) * 0.9;
        }
        p
    }

    fn test_field(ncx: usize, ncy: usize) -> Field2D {
        let g = Grid2D::new(ncx, ncy, 1.0, 1.0).unwrap();
        let mut f = Field2D::new(&g);
        for i in 0..f.ex.len() {
            f.ex[i] = ((i * 37 + 11) % 101) as f64 * 0.1;
            f.ey[i] = ((i * 53 + 29) % 97) as f64 * -0.2;
        }
        f
    }

    #[test]
    fn positions_bit_identical_rowmajor() {
        let (ncx, ncy) = (16, 32);
        for n in EDGE_COUNTS {
            let base = mk(n, ncx, ncy);
            let (vx, vy) = (base.vx.clone(), base.vy.clone());
            let mut a = base.clone();
            let mut b = base.clone();
            position::update_positions_branchless(
                &mut a.icell,
                &mut a.ix,
                &mut a.iy,
                &mut a.dx,
                &mut a.dy,
                &vx,
                &vy,
                ncx,
                ncy,
                1.0,
            );
            update_positions_branchless_lanes(
                &mut b.icell,
                &mut b.ix,
                &mut b.iy,
                &mut b.dx,
                &mut b.dy,
                &vx,
                &vy,
                ncx,
                ncy,
                1.0,
            );
            assert_eq!(a.icell, b.icell, "n={n}");
            assert_eq!(a.ix, b.ix, "n={n}");
            assert_eq!(a.iy, b.iy, "n={n}");
            // Bitwise, not approximate: identical expressions must give
            // identical doubles.
            for i in 0..n {
                assert_eq!(a.dx[i].to_bits(), b.dx[i].to_bits(), "dx n={n} i={i}");
                assert_eq!(a.dy[i].to_bits(), b.dy[i].to_bits(), "dy n={n} i={i}");
            }
        }
    }

    #[test]
    fn positions_bit_identical_all_layouts() {
        let (ncx, ncy) = (16, 16);
        let n = 1003;
        let base = mk(n, ncx, ncy);
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        macro_rules! check {
            ($layout:expr) => {{
                let l = $layout;
                let mut a = base.clone();
                let mut b = base.clone();
                position::update_positions_branchless_layout(
                    &mut a.icell,
                    &mut a.ix,
                    &mut a.iy,
                    &mut a.dx,
                    &mut a.dy,
                    &vx,
                    &vy,
                    &l,
                    1.0,
                );
                update_positions_branchless_layout_lanes(
                    &mut b.icell,
                    &mut b.ix,
                    &mut b.iy,
                    &mut b.dx,
                    &mut b.dy,
                    &vx,
                    &vy,
                    &l,
                    1.0,
                );
                assert_eq!(a.icell, b.icell);
                for i in 0..n {
                    assert_eq!(a.dx[i].to_bits(), b.dx[i].to_bits());
                    assert_eq!(a.dy[i].to_bits(), b.dy[i].to_bits());
                }
            }};
        }
        check!(RowMajor::new(ncx, ncy).unwrap());
        check!(L4D::new(ncx, ncy, 4).unwrap());
        check!(Morton::new(ncx, ncy).unwrap());
        check!(Hilbert::new(ncx, ncy).unwrap());
    }

    #[test]
    fn velocities_bit_identical() {
        let (ncx, ncy) = (16, 16);
        let layout = Morton::new(ncx, ncy).unwrap();
        let f = test_field(ncx, ncy);
        let mut e8 = RedundantE::new(&layout);
        e8.fill_from(&f, &layout, 1.0, 1.0);
        for n in EDGE_COUNTS {
            let mut base = mk(n, ncx, ncy);
            for i in 0..n {
                base.icell[i] = layout.encode(base.ix[i] as usize, base.iy[i] as usize) as u32;
            }
            let mut a = base.clone();
            let mut b = base.clone();
            velocity::update_velocities_redundant_hoisted(
                &a.icell.clone(),
                &a.dx.clone(),
                &a.dy.clone(),
                &mut a.vx,
                &mut a.vy,
                &e8.e8,
            );
            update_velocities_redundant_hoisted_lanes(
                &b.icell.clone(),
                &b.dx.clone(),
                &b.dy.clone(),
                &mut b.vx,
                &mut b.vy,
                &e8.e8,
            );
            for i in 0..n {
                assert_eq!(a.vx[i].to_bits(), b.vx[i].to_bits(), "vx n={n} i={i}");
                assert_eq!(a.vy[i].to_bits(), b.vy[i].to_bits(), "vy n={n} i={i}");
            }
            // Coefficient form too.
            let mut c = base.clone();
            let mut d = base.clone();
            velocity::update_velocities_redundant(
                &c.icell.clone(),
                &c.dx.clone(),
                &c.dy.clone(),
                &mut c.vx,
                &mut c.vy,
                &e8.e8,
                0.37,
                -1.25,
            );
            update_velocities_redundant_lanes(
                &d.icell.clone(),
                &d.dx.clone(),
                &d.dy.clone(),
                &mut d.vx,
                &mut d.vy,
                &e8.e8,
                0.37,
                -1.25,
            );
            for i in 0..n {
                assert_eq!(c.vx[i].to_bits(), d.vx[i].to_bits(), "coeff vx n={n}");
                assert_eq!(c.vy[i].to_bits(), d.vy[i].to_bits(), "coeff vy n={n}");
            }
        }
    }

    #[test]
    fn deposition_bit_identical() {
        let (ncx, ncy) = (16, 16);
        let layout = Morton::new(ncx, ncy).unwrap();
        for n in EDGE_COUNTS {
            let mut p = mk(n, ncx, ncy);
            for i in 0..n {
                p.icell[i] = layout.encode(p.ix[i] as usize, p.iy[i] as usize) as u32;
            }
            let mut a = RedundantRho::new(&layout);
            let mut b = RedundantRho::new(&layout);
            accumulate::accumulate_redundant(&p.icell, &p.dx, &p.dy, &mut a.rho4, 0.75);
            accumulate_redundant_lanes(&p.icell, &p.dx, &p.dy, &mut b.rho4, 0.75);
            for (c, (x, y)) in a.rho4.iter().zip(&b.rho4).enumerate() {
                for k in 0..4 {
                    assert_eq!(x[k].to_bits(), y[k].to_bits(), "n={n} cell={c} corner={k}");
                }
            }
        }
    }
}
