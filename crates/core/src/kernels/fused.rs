//! The single fused particle loop — velocity kick, position push, and
//! charge deposition in one pass (the paper's Fig. 1, lines 8–12, before
//! the loop-splitting optimization of §IV-A).
//!
//! The fused shape scans the particle arrays once, but interleaves the E
//! reads and ρ writes, spoiling both vectorization and the per-array memory
//! behaviour; the paper measures an 18–25 % loss against the split loops.
//! These kernels exist to reproduce that comparison (Tables IV and VII).

use crate::fields::{Field2D, RedundantRho, CX, CY, SX, SY};
use crate::particles::ParticlesSoA;

/// Fused SoA loop over the *standard* field/ρ structures, unhoisted: the
/// per-particle multiplies by `coeff_*` (velocity kick) and `scale`
/// (position push) happen inside the loop, and the periodic wrap is the
/// naive `if` + real-modulo form. This is the Table IV baseline shape
/// (modulo its AoS storage — see [`super::aos`]).
#[allow(clippy::too_many_arguments)]
pub fn fused_standard_soa(
    p: &mut ParticlesSoA,
    field: &Field2D,
    rho: &mut [f64],
    coeff_x: f64,
    coeff_y: f64,
    scale: f64,
    w: f64,
) {
    let n = p.len();
    let (ncx, ncy) = (field.ncx, field.ncy);
    assert_eq!(rho.len(), ncx * ncy);
    let (fx, fy) = (ncx as f64, ncy as f64);
    for i in 0..n {
        // Kick at the old position.
        let cx = p.ix[i] as usize;
        let cy = p.iy[i] as usize;
        let cxp = (cx + 1) & (ncx - 1);
        let cyp = (cy + 1) & (ncy - 1);
        let (odx, ody) = (p.dx[i], p.dy[i]);
        let w00 = (1.0 - odx) * (1.0 - ody);
        let w01 = (1.0 - odx) * ody;
        let w10 = odx * (1.0 - ody);
        let w11 = odx * ody;
        let g00 = cx * ncy + cy;
        let g01 = cx * ncy + cyp;
        let g10 = cxp * ncy + cy;
        let g11 = cxp * ncy + cyp;
        let ex =
            w00 * field.ex[g00] + w01 * field.ex[g01] + w10 * field.ex[g10] + w11 * field.ex[g11];
        let ey =
            w00 * field.ey[g00] + w01 * field.ey[g01] + w10 * field.ey[g10] + w11 * field.ey[g11];
        p.vx[i] += coeff_x * ex;
        p.vy[i] += coeff_y * ey;

        // Push, naive-if wrap.
        let mut x = cx as f64 + odx + p.vx[i] * scale;
        let mut y = cy as f64 + ody + p.vy[i] * scale;
        if x < 0.0 || x >= fx {
            x = super::position::modulo_real(x, fx);
        }
        if y < 0.0 || y >= fy {
            y = super::position::modulo_real(y, fy);
        }
        let nx = (x.floor() as usize).min(ncx - 1);
        let ny = (y.floor() as usize).min(ncy - 1);
        let ndx = x - x.floor();
        let ndy = y - y.floor();
        p.ix[i] = nx as u32;
        p.iy[i] = ny as u32;
        p.dx[i] = ndx;
        p.dy[i] = ndy;
        p.icell[i] = (nx * ncy + ny) as u32;

        // Deposit at the new position, scattered.
        let nxp = (nx + 1) & (ncx - 1);
        let nyp = (ny + 1) & (ncy - 1);
        rho[nx * ncy + ny] += w * (1.0 - ndx) * (1.0 - ndy);
        rho[nx * ncy + nyp] += w * (1.0 - ndx) * ndy;
        rho[nxp * ncy + ny] += w * ndx * (1.0 - ndy);
        rho[nxp * ncy + nyp] += w * ndx * ndy;
    }
}

/// Fused SoA loop over the *redundant* structures with hoisted coefficients
/// and the branchless wrap — the optimized data structures in the
/// unsplit loop shape, i.e. the “SoA, 1 loop” column of Table VII.
pub fn fused_redundant_soa(
    p: &mut ParticlesSoA,
    e8: &[[f64; 8]],
    rho4: &mut RedundantRho,
    ncx: usize,
    ncy: usize,
    w: f64,
) {
    fused_redundant_slices(
        &mut p.icell,
        &mut p.ix,
        &mut p.iy,
        &mut p.dx,
        &mut p.dy,
        &mut p.vx,
        &mut p.vy,
        e8,
        &mut rho4.rho4,
        ncx,
        ncy,
        w,
    );
}

/// Slice-based core of [`fused_redundant_soa`], usable on SoA chunk views.
#[allow(clippy::too_many_arguments)]
pub fn fused_redundant_slices(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    e8: &[[f64; 8]],
    rho4: &mut [[f64; 4]],
    ncx: usize,
    ncy: usize,
    w: f64,
) {
    debug_assert!(ncx.is_power_of_two() && ncy.is_power_of_two());
    let n = icell.len();
    let mx = ncx as i64 - 1;
    let my = ncy as i64 - 1;
    for i in 0..n {
        // Kick (hoisted: e8 is pre-scaled, velocities in grid units/step).
        let e = &e8[icell[i] as usize];
        let (odx, ody) = (dx[i], dy[i]);
        let w00 = (1.0 - odx) * (1.0 - ody);
        let w01 = (1.0 - odx) * ody;
        let w10 = odx * (1.0 - ody);
        let w11 = odx * ody;
        vx[i] += w00 * e[0] + w01 * e[1] + w10 * e[2] + w11 * e[3];
        vy[i] += w00 * e[4] + w01 * e[5] + w10 * e[6] + w11 * e[7];

        // Push, branchless.
        let x = ix[i] as f64 + odx + vx[i];
        let y = iy[i] as f64 + ody + vy[i];
        let fxi = (x as i64) - i64::from(x < 0.0);
        let fyi = (y as i64) - i64::from(y < 0.0);
        let nx = (fxi & mx) as usize;
        let ny = (fyi & my) as usize;
        let ndx = x - fxi as f64;
        let ndy = y - fyi as f64;
        ix[i] = nx as u32;
        iy[i] = ny as u32;
        dx[i] = ndx;
        dy[i] = ndy;
        let cell = nx * ncy + ny;
        icell[i] = cell as u32;

        // Deposit (redundant, contiguous).
        let dst = &mut rho4[cell];
        for corner in 0..4 {
            dst[corner] += w * (CX[corner] + SX[corner] * ndx) * (CY[corner] + SY[corner] * ndy);
        }
    }
}

/// Thread-parallel fused redundant loop: per-task private ρ₄ copies,
/// summed at the end (the array-section reduction applied to the fused
/// shape).
pub fn par_fused_redundant_soa(
    p: &mut ParticlesSoA,
    e8: &[[f64; 8]],
    rho4: &mut RedundantRho,
    ncx: usize,
    ncy: usize,
    w: f64,
    nchunks: usize,
) {
    let ncells = rho4.rho4.len();
    let views = super::split_soa_mut(p, nchunks);
    let locals = crate::par::map_collect(views, |v| {
        let mut local = vec![[0.0f64; 4]; ncells];
        fused_redundant_slices(
            v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, e8, &mut local, ncx, ncy, w,
        );
        local
    });
    for local in locals {
        for (dst, src) in rho4.rho4.iter_mut().zip(&local) {
            for k in 0..4 {
                dst[k] += src[k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::RedundantE;
    use crate::grid::Grid2D;
    use crate::kernels::{accumulate, position, velocity};
    use sfc::RowMajor;

    fn mk(n: usize, ncx: usize, ncy: usize) -> ParticlesSoA {
        let mut p = ParticlesSoA::zeroed(n);
        for i in 0..n {
            let cx = (i * 3 + 1) % ncx;
            let cy = (i * 7 + 5) % ncy;
            p.ix[i] = cx as u32;
            p.iy[i] = cy as u32;
            p.icell[i] = (cx * ncy + cy) as u32;
            p.dx[i] = ((i * 29) % 97) as f64 / 97.0;
            p.dy[i] = ((i * 43) % 89) as f64 / 89.0;
            p.vx[i] = ((i % 11) as f64 - 5.0) * 0.3;
            p.vy[i] = ((i % 9) as f64 - 4.0) * 0.4;
        }
        p
    }

    fn mk_field(ncx: usize, ncy: usize) -> Field2D {
        let g = Grid2D::new(ncx, ncy, 1.0, 1.0).unwrap();
        let mut f = Field2D::new(&g);
        for i in 0..f.ex.len() {
            f.ex[i] = ((i * 37 + 3) % 41) as f64 * 0.05;
            f.ey[i] = ((i * 23 + 7) % 31) as f64 * -0.08;
        }
        f
    }

    /// The central invariant of §IV-A: splitting the loop must not change
    /// physics — fused and split pipelines produce identical states.
    #[test]
    fn fused_standard_equals_split_pipeline() {
        let (ncx, ncy) = (16, 16);
        let f = mk_field(ncx, ncy);
        let base = mk(500, ncx, ncy);
        let (coeff_x, coeff_y, scale, w) = (0.9, 1.1, 1.0, 0.75);

        // Fused.
        let mut a = base.clone();
        let mut rho_a = vec![0.0; ncx * ncy];
        fused_standard_soa(&mut a, &f, &mut rho_a, coeff_x, coeff_y, scale, w);

        // Split: kick, push, deposit.
        let mut b = base.clone();
        velocity::update_velocities_standard(
            &b.ix.clone(),
            &b.iy.clone(),
            &b.dx.clone(),
            &b.dy.clone(),
            &mut b.vx,
            &mut b.vy,
            &f,
            coeff_x,
            coeff_y,
        );
        let (vx, vy) = (b.vx.clone(), b.vy.clone());
        position::update_positions_naive_if(
            &mut b.icell,
            &mut b.ix,
            &mut b.iy,
            &mut b.dx,
            &mut b.dy,
            &vx,
            &vy,
            ncx,
            ncy,
            scale,
        );
        let mut rho_b = vec![0.0; ncx * ncy];
        accumulate::accumulate_standard(&b.ix, &b.iy, &b.dx, &b.dy, &mut rho_b, ncx, ncy, w);

        assert_eq!(a.icell, b.icell);
        for i in 0..a.len() {
            assert!((a.vx[i] - b.vx[i]).abs() < 1e-13);
            assert!((a.dx[i] - b.dx[i]).abs() < 1e-12);
        }
        for i in 0..ncx * ncy {
            assert!((rho_a[i] - rho_b[i]).abs() < 1e-10, "cell {i}");
        }
    }

    #[test]
    fn fused_redundant_equals_split_pipeline() {
        let (ncx, ncy) = (16, 16);
        let layout = RowMajor::new(ncx, ncy).unwrap();
        let f = mk_field(ncx, ncy);
        let mut e8 = RedundantE::new(&layout);
        e8.fill_from(&f, &layout, 1.0, 1.0);
        let base = mk(500, ncx, ncy);
        let w = 1.5;

        let mut a = base.clone();
        let mut rho4_a = RedundantRho::new(&layout);
        fused_redundant_soa(&mut a, &e8.e8, &mut rho4_a, ncx, ncy, w);

        let mut b = base.clone();
        velocity::update_velocities_redundant_hoisted(
            &b.icell.clone(),
            &b.dx.clone(),
            &b.dy.clone(),
            &mut b.vx,
            &mut b.vy,
            &e8.e8,
        );
        let (vx, vy) = (b.vx.clone(), b.vy.clone());
        position::update_positions_branchless(
            &mut b.icell,
            &mut b.ix,
            &mut b.iy,
            &mut b.dx,
            &mut b.dy,
            &vx,
            &vy,
            ncx,
            ncy,
            1.0,
        );
        let mut rho4_b = RedundantRho::new(&layout);
        accumulate::accumulate_redundant(&b.icell, &b.dx, &b.dy, &mut rho4_b.rho4, w);

        assert_eq!(a.icell, b.icell);
        for i in 0..a.len() {
            assert!((a.vx[i] - b.vx[i]).abs() < 1e-13);
        }
        for (ca, cb) in rho4_a.rho4.iter().zip(&rho4_b.rho4) {
            for k in 0..4 {
                assert!((ca[k] - cb[k]).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn fused_conserves_charge() {
        let (ncx, ncy) = (8, 8);
        let layout = RowMajor::new(ncx, ncy).unwrap();
        let f = mk_field(ncx, ncy);
        let mut e8 = RedundantE::new(&layout);
        e8.fill_from(&f, &layout, 1.0, 1.0);
        let mut p = mk(1000, ncx, ncy);
        let mut rho4 = RedundantRho::new(&layout);
        fused_redundant_soa(&mut p, &e8.e8, &mut rho4, ncx, ncy, 2.0);
        let total: f64 = rho4.rho4.iter().flat_map(|c| c.iter()).sum();
        assert!((total - 2000.0).abs() < 1e-9);
    }
}
