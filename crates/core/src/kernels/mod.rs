//! The particle-loop kernels, one per optimization variant of the paper.
//!
//! Layout of this module tree:
//!
//! * [`velocity`] — the update-velocities loop (field interpolation), over
//!   standard vs redundant field storage;
//! * [`position`] — the update-positions loop in the paper's three shapes:
//!   `if`+real-modulo, integer-modulo, and branchless bitwise (§IV-C);
//! * [`accumulate`] — the charge-deposition loop, standard (scattered) vs
//!   redundant (contiguous, vectorizable — Fig. 2);
//! * [`deposit`] — the reassociated vectorized deposit variants
//!   ([`deposit::DepositPath`]): per-lane private ρ with transposed
//!   lane-reduction, and the sorted-batch register deposit;
//! * [`fused`] — the single fused particle loop (velocity + position +
//!   deposition in one pass), the shape the paper *splits away from*
//!   (§IV-A), for AoS and SoA;
//! * [`aos`] — AoS mirrors of the split kernels for the Table IV / VII
//!   comparisons.
//!
//! All SoA kernels take plain slices so that the parallel wrappers can hand
//! them disjoint chunks; [`SoaChunksMut`] produces those chunks safely.
//!
//! ### Hoisting convention
//!
//! Every kernel exists in a *coefficient* form (multiplies by `coeff` /
//! `scale` per particle — the unhoisted baseline) and callers get the
//! hoisted variant of §IV-D by pre-scaling the stored fields/velocities and
//! passing `1.0`; the dedicated `*_hoisted` entry points omit the multiply
//! entirely so the generated loop body matches the paper's optimized code.

pub mod accumulate;
pub mod aos;
pub mod boris;
pub mod boundary;
pub mod current;
pub mod deposit;
pub mod fused;
pub mod position;
pub mod simd;
pub mod velocity;

use crate::particles::ParticlesSoA;

/// A mutable view over one contiguous range of a [`ParticlesSoA`].
pub struct SoaViewMut<'a> {
    /// Cell indices.
    pub icell: &'a mut [u32],
    /// Cell x-coordinates.
    pub ix: &'a mut [u32],
    /// Cell y-coordinates.
    pub iy: &'a mut [u32],
    /// In-cell x offsets.
    pub dx: &'a mut [f64],
    /// In-cell y offsets.
    pub dy: &'a mut [f64],
    /// x velocities.
    pub vx: &'a mut [f64],
    /// y velocities.
    pub vy: &'a mut [f64],
}

impl<'a> SoaViewMut<'a> {
    /// Particles in this view.
    pub fn len(&self) -> usize {
        self.icell.len()
    }

    /// True when the view is empty.
    pub fn is_empty(&self) -> bool {
        self.icell.is_empty()
    }
}

/// Split a particle store into `nchunks` disjoint mutable views of
/// near-equal size (for thread fan-out). Returns fewer chunks when there are
/// fewer particles than chunks.
pub fn split_soa_mut(p: &mut ParticlesSoA, nchunks: usize) -> Vec<SoaViewMut<'_>> {
    let n = p.len();
    let nchunks = nchunks.max(1).min(n.max(1));
    let base = n / nchunks;
    let extra = n % nchunks;

    let mut views = Vec::with_capacity(nchunks);
    let (mut icell, mut ix, mut iy, mut dx, mut dy, mut vx, mut vy) = (
        p.icell.as_mut_slice(),
        p.ix.as_mut_slice(),
        p.iy.as_mut_slice(),
        p.dx.as_mut_slice(),
        p.dy.as_mut_slice(),
        p.vx.as_mut_slice(),
        p.vy.as_mut_slice(),
    );
    for c in 0..nchunks {
        let len = base + usize::from(c < extra);
        let (a, b) = icell.split_at_mut(len);
        icell = b;
        let (a2, b2) = ix.split_at_mut(len);
        ix = b2;
        let (a3, b3) = iy.split_at_mut(len);
        iy = b3;
        let (a4, b4) = dx.split_at_mut(len);
        dx = b4;
        let (a5, b5) = dy.split_at_mut(len);
        dy = b5;
        let (a6, b6) = vx.split_at_mut(len);
        vx = b6;
        let (a7, b7) = vy.split_at_mut(len);
        vy = b7;
        views.push(SoaViewMut {
            icell: a,
            ix: a2,
            iy: a3,
            dx: a4,
            dy: a5,
            vx: a6,
            vy: a7,
        });
    }
    views
}

/// Alias kept for discoverability in docs.
pub type SoaChunksMut<'a> = Vec<SoaViewMut<'a>>;

/// Allocation-free variant of [`split_soa_mut`]: writes the views into
/// `out` (a stack array on the hot path) and returns how many were
/// produced. Chunk boundaries are identical to [`split_soa_mut`] — larger
/// chunks first — so the two fan-out paths assign the same particles to the
/// same worker.
///
/// # Panics
///
/// Panics if `out` is shorter than the number of chunks produced
/// (`min(nchunks.max(1), n.max(1))`).
pub fn split_soa_mut_into<'a>(
    p: &'a mut ParticlesSoA,
    nchunks: usize,
    out: &mut [Option<SoaViewMut<'a>>],
) -> usize {
    let n = p.len();
    let nchunks = nchunks.max(1).min(n.max(1));
    assert!(
        out.len() >= nchunks,
        "split_soa_mut_into: {} slots for {nchunks} chunks",
        out.len()
    );
    let base = n / nchunks;
    let extra = n % nchunks;

    let (mut icell, mut ix, mut iy, mut dx, mut dy, mut vx, mut vy) = (
        p.icell.as_mut_slice(),
        p.ix.as_mut_slice(),
        p.iy.as_mut_slice(),
        p.dx.as_mut_slice(),
        p.dy.as_mut_slice(),
        p.vx.as_mut_slice(),
        p.vy.as_mut_slice(),
    );
    for (c, slot) in out.iter_mut().enumerate().take(nchunks) {
        let len = base + usize::from(c < extra);
        let (a, b) = icell.split_at_mut(len);
        icell = b;
        let (a2, b2) = ix.split_at_mut(len);
        ix = b2;
        let (a3, b3) = iy.split_at_mut(len);
        iy = b3;
        let (a4, b4) = dx.split_at_mut(len);
        dx = b4;
        let (a5, b5) = dy.split_at_mut(len);
        dy = b5;
        let (a6, b6) = vx.split_at_mut(len);
        vx = b6;
        let (a7, b7) = vy.split_at_mut(len);
        vy = b7;
        *slot = Some(SoaViewMut {
            icell: a,
            ix: a2,
            iy: a3,
            dx: a4,
            dy: a5,
            vx: a6,
            vy: a7,
        });
    }
    nchunks
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_covers_everything_once() {
        let mut p = ParticlesSoA::zeroed(10);
        for i in 0..10 {
            p.icell[i] = i as u32;
        }
        let views = split_soa_mut(&mut p, 3);
        assert_eq!(views.len(), 3);
        let lens: Vec<usize> = views.iter().map(|v| v.len()).collect();
        assert_eq!(lens, vec![4, 3, 3]);
        let all: Vec<u32> = views.iter().flat_map(|v| v.icell.iter().copied()).collect();
        assert_eq!(all, (0..10).collect::<Vec<u32>>());
    }

    #[test]
    fn split_more_chunks_than_particles() {
        let mut p = ParticlesSoA::zeroed(2);
        let views = split_soa_mut(&mut p, 8);
        assert_eq!(views.len(), 2);
        assert!(views.iter().all(|v| v.len() == 1));
    }

    #[test]
    fn split_empty_store() {
        let mut p = ParticlesSoA::zeroed(0);
        let views = split_soa_mut(&mut p, 4);
        assert_eq!(views.len(), 1);
        assert!(views[0].is_empty());
    }

    #[test]
    fn split_into_matches_vec_variant() {
        for (n, nchunks) in [(10, 3), (2, 8), (0, 4), (100, 7)] {
            let mut p = ParticlesSoA::zeroed(n);
            for i in 0..n {
                p.icell[i] = i as u32;
            }
            let mut q = p.clone();
            let vec_lens: Vec<usize> = split_soa_mut(&mut p, nchunks)
                .iter()
                .map(|v| v.len())
                .collect();
            let mut slots: [Option<SoaViewMut>; 16] = [const { None }; 16];
            let nv = split_soa_mut_into(&mut q, nchunks, &mut slots);
            assert_eq!(nv, vec_lens.len());
            let mut seen = Vec::new();
            for slot in slots.iter().take(nv) {
                let v = slot.as_ref().unwrap();
                seen.extend(v.icell.iter().copied());
            }
            assert_eq!(seen, (0..n as u32).collect::<Vec<u32>>());
            let into_lens: Vec<usize> = slots[..nv]
                .iter()
                .map(|s| s.as_ref().unwrap().len())
                .collect();
            assert_eq!(into_lens, vec_lens);
        }
    }
}
