//! The charge-accumulation (deposition) loop: standard scattered form vs
//! the paper's redundant vectorizable form (Fig. 2), plus the thread
//! equivalent of the OpenMP 4.5 array-section reduction (§V-B2).

// SoA kernels take one slice per particle field by design; bundling them
// into a struct would obscure the loop shapes the paper compares.
#![allow(clippy::too_many_arguments)]

use super::deposit::{self, DepositPath};
use crate::fields::RedundantRho;
use crate::par;
use crate::sim::KernelPath;
use sfc::CellLayout;

/// Standard deposition: four scattered adds onto grid points, periodic wrap
/// (upper half of Fig. 2).
pub fn accumulate_standard(
    ix: &[u32],
    iy: &[u32],
    dx: &[f64],
    dy: &[f64],
    rho: &mut [f64],
    ncx: usize,
    ncy: usize,
    w: f64,
) {
    let n = ix.len();
    assert!(iy.len() == n && dx.len() == n && dy.len() == n);
    assert_eq!(rho.len(), ncx * ncy);
    for i in 0..n {
        let cx = ix[i] as usize;
        let cy = iy[i] as usize;
        let cxp = (cx + 1) & (ncx - 1);
        let cyp = (cy + 1) & (ncy - 1);
        let (odx, ody) = (dx[i], dy[i]);
        rho[cx * ncy + cy] += w * (1.0 - odx) * (1.0 - ody);
        rho[cx * ncy + cyp] += w * (1.0 - odx) * ody;
        rho[cxp * ncy + cy] += w * odx * (1.0 - ody);
        rho[cxp * ncy + cyp] += w * odx * ody;
    }
}

/// Redundant deposition (lower half of Fig. 2): the four corner updates of
/// one particle write a single contiguous `[f64; 4]` block, with the
/// coefficient tables turning the inner corner loop into straight-line
/// vectorizable arithmetic.
pub fn accumulate_redundant(icell: &[u32], dx: &[f64], dy: &[f64], rho4: &mut [[f64; 4]], w: f64) {
    // The scalar body is the shared tail helper of every blocked deposit
    // variant, so there is exactly one copy of the weight/bounds logic.
    deposit::deposit_tail(icell, dx, dy, rho4, w);
}

/// Parallel redundant deposition: each task accumulates into its own
/// private copy of ρ₄, and the copies are summed — exactly the hand-coded
/// OpenMP 4.5 `reduction(+: rho[0:ncells][0:4])` of §V-B2.
pub fn par_accumulate_redundant(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    rho4: &mut RedundantRho,
    w: f64,
    nchunks: usize,
) {
    let n = icell.len();
    let nchunks = nchunks.max(1);
    let chunk = n.div_ceil(nchunks).max(1);
    let ncells = rho4.rho4.len();

    let locals = par::map_collect((0..n).step_by(chunk).collect(), |start| {
        let end = (start + chunk).min(n);
        let mut local = vec![[0.0f64; 4]; ncells];
        accumulate_redundant(
            &icell[start..end],
            &dx[start..end],
            &dy[start..end],
            &mut local,
            w,
        );
        local
    });
    for local in locals {
        for (dst, src) in rho4.rho4.iter_mut().zip(&local) {
            for k in 0..4 {
                dst[k] += src[k];
            }
        }
    }
}

/// Zero-allocation parallel redundant deposition on a persistent pool.
///
/// Worker `w` deposits its particle chunk (boundaries from
/// [`crate::pool::chunk_range`]) into `arenas[w]` — a reusable private ρ₄
/// copy owned by the simulation — and the leader then merges the arenas
/// into `out` in worker order, so the floating-point reduction order is
/// deterministic regardless of thread timing. This is the steady-state form
/// of [`par_accumulate_redundant`]: same §V-B2 array-section reduction, with
/// the inner kernel chosen by the `(DepositPath, KernelPath)` pair through
/// [`deposit::select_kernel`]. Worker chunk boundaries may split a cell run,
/// so under the reassociated paths each worker's arena carries its own
/// partial sums — the merged result still satisfies the per-cell FP bound
/// because the worker-order merge only reassociates further.
///
/// # Panics
///
/// Panics when fewer arenas than pool workers are supplied (single-worker
/// pools need none: deposition then goes straight into `out`).
pub fn pool_accumulate_redundant(
    pool: &crate::pool::ThreadPool,
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    out: &mut RedundantRho,
    arenas: &mut [RedundantRho],
    w: f64,
    path: DepositPath,
    kernel_path: KernelPath,
) {
    let kernel = deposit::select_kernel(path, kernel_path);
    let nw = pool.nthreads();
    let n = icell.len();
    if nw == 1 || n == 0 {
        kernel(icell, dx, dy, &mut out.rho4, w);
        return;
    }
    assert!(
        arenas.len() >= nw,
        "pool_accumulate_redundant: {} arenas for {nw} workers",
        arenas.len()
    );
    pool.run_items(&mut arenas[..nw], |worker, arena| {
        let (s, e) = crate::pool::chunk_range(n, nw, worker);
        arena.clear();
        kernel(&icell[s..e], &dx[s..e], &dy[s..e], &mut arena.rho4, w);
    });
    for arena in &arenas[..nw] {
        out.add_assign(arena);
    }
}

/// Deposit directly to a grid-point array through the redundant
/// accumulator: convenience wrapper used by tests and small harnesses.
pub fn deposit_to_grid(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    layout: &dyn CellLayout,
    rho: &mut [f64],
    w: f64,
) {
    let mut acc = RedundantRho::new(layout);
    accumulate_redundant(icell, dx, dy, &mut acc.rho4, w);
    acc.reduce_to_grid(layout, rho);
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc::{Morton, RowMajor};

    fn mk(
        n: usize,
        ncx: usize,
        ncy: usize,
        layout: &dyn CellLayout,
    ) -> crate::particles::ParticlesSoA {
        let mut p = crate::particles::ParticlesSoA::zeroed(n);
        for i in 0..n {
            let cx = (i * 5 + 1) % ncx;
            let cy = (i * 11 + 2) % ncy;
            p.ix[i] = cx as u32;
            p.iy[i] = cy as u32;
            p.icell[i] = layout.encode(cx, cy) as u32;
            p.dx[i] = ((i * 29) % 97) as f64 / 97.0;
            p.dy[i] = ((i * 43) % 89) as f64 / 89.0;
        }
        p
    }

    #[test]
    fn charge_is_conserved_standard() {
        let (ncx, ncy) = (8, 8);
        let l = RowMajor::new(ncx, ncy).unwrap();
        let p = mk(1000, ncx, ncy, &l);
        let mut rho = vec![0.0; 64];
        accumulate_standard(&p.ix, &p.iy, &p.dx, &p.dy, &mut rho, ncx, ncy, 0.5);
        let total: f64 = rho.iter().sum();
        assert!((total - 500.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn charge_is_conserved_redundant() {
        let (ncx, ncy) = (8, 8);
        let l = Morton::new(ncx, ncy).unwrap();
        let p = mk(1000, ncx, ncy, &l);
        let mut acc = RedundantRho::new(&l);
        accumulate_redundant(&p.icell, &p.dx, &p.dy, &mut acc.rho4, 0.5);
        let total: f64 = acc.rho4.iter().flat_map(|c| c.iter()).sum();
        assert!((total - 500.0).abs() < 1e-9);
    }

    #[test]
    fn redundant_reduces_to_standard() {
        // The paper's two code paths in Fig. 2 must produce identical grids.
        let (ncx, ncy) = (16, 16);
        for layout in [
            Box::new(RowMajor::new(ncx, ncy).unwrap()) as Box<dyn CellLayout>,
            Box::new(Morton::new(ncx, ncy).unwrap()),
        ] {
            let p = mk(2000, ncx, ncy, layout.as_ref());
            let mut rho_std = vec![0.0; ncx * ncy];
            accumulate_standard(&p.ix, &p.iy, &p.dx, &p.dy, &mut rho_std, ncx, ncy, 1.25);
            let mut rho_red = vec![0.0; ncx * ncy];
            deposit_to_grid(&p.icell, &p.dx, &p.dy, layout.as_ref(), &mut rho_red, 1.25);
            for i in 0..ncx * ncy {
                assert!(
                    (rho_std[i] - rho_red[i]).abs() < 1e-10,
                    "{}: cell {i}: {} vs {}",
                    layout.name(),
                    rho_std[i],
                    rho_red[i]
                );
            }
        }
    }

    #[test]
    fn single_particle_corner_weights() {
        let l = RowMajor::new(8, 8).unwrap();
        let icell = vec![l.encode(2, 3) as u32];
        let dx = vec![0.25f64];
        let dy = vec![0.75f64];
        let mut acc = RedundantRho::new(&l);
        accumulate_redundant(&icell, &dx, &dy, &mut acc.rho4, 1.0);
        let c = &acc.rho4[l.encode(2, 3)];
        assert!((c[0] - 0.75 * 0.25).abs() < 1e-15);
        assert!((c[1] - 0.75 * 0.75).abs() < 1e-15);
        assert!((c[2] - 0.25 * 0.25).abs() < 1e-15);
        assert!((c[3] - 0.25 * 0.75).abs() < 1e-15);
    }

    #[test]
    fn particle_on_node_deposits_to_single_point() {
        let l = RowMajor::new(8, 8).unwrap();
        let icell = vec![l.encode(5, 5) as u32];
        let mut acc = RedundantRho::new(&l);
        accumulate_redundant(&icell, &[0.0], &[0.0], &mut acc.rho4, 2.0);
        let c = &acc.rho4[l.encode(5, 5)];
        assert_eq!(c[0], 2.0);
        assert_eq!(c[1], 0.0);
        assert_eq!(c[2], 0.0);
        assert_eq!(c[3], 0.0);
    }

    #[test]
    fn parallel_matches_sequential() {
        let (ncx, ncy) = (16, 16);
        let l = Morton::new(ncx, ncy).unwrap();
        let p = mk(10_000, ncx, ncy, &l);
        let mut seq = RedundantRho::new(&l);
        accumulate_redundant(&p.icell, &p.dx, &p.dy, &mut seq.rho4, 1.0);
        for nchunks in [1usize, 2, 4, 7, 16] {
            let mut par = RedundantRho::new(&l);
            par_accumulate_redundant(&p.icell, &p.dx, &p.dy, &mut par, 1.0, nchunks);
            for (a, b) in seq.rho4.iter().zip(&par.rho4) {
                for k in 0..4 {
                    assert!((a[k] - b[k]).abs() < 1e-10, "nchunks={nchunks}");
                }
            }
        }
    }

    #[test]
    fn parallel_adds_to_existing_content() {
        let l = RowMajor::new(8, 8).unwrap();
        let p = mk(100, 8, 8, &l);
        let mut acc = RedundantRho::new(&l);
        acc.rho4[0][0] = 5.0;
        par_accumulate_redundant(&p.icell, &p.dx, &p.dy, &mut acc, 1.0, 4);
        let total: f64 = acc.rho4.iter().flat_map(|c| c.iter()).sum();
        assert!((total - 105.0).abs() < 1e-9);
    }

    #[test]
    fn empty_particle_set_is_noop() {
        let l = RowMajor::new(8, 8).unwrap();
        let mut acc = RedundantRho::new(&l);
        par_accumulate_redundant(&[], &[], &[], &mut acc, 1.0, 4);
        assert!(acc.rho4.iter().all(|c| *c == [0.0; 4]));
    }

    #[test]
    fn pool_deposition_reusable_and_deterministic() {
        let (ncx, ncy) = (16, 16);
        let l = Morton::new(ncx, ncy).unwrap();
        let p = mk(10_000, ncx, ncy, &l);
        let mut seq = RedundantRho::new(&l);
        accumulate_redundant(&p.icell, &p.dx, &p.dy, &mut seq.rho4, 1.0);
        let combos = [
            (DepositPath::Exact, KernelPath::Scalar),
            (DepositPath::Exact, KernelPath::Lanes),
            (DepositPath::LaneReduce, KernelPath::Lanes),
            (DepositPath::SortedBlock, KernelPath::Lanes),
        ];
        for nthreads in [1usize, 2, 4] {
            let pool = crate::pool::ThreadPool::new(nthreads);
            for (path, kp) in combos {
                let mut arenas: Vec<RedundantRho> = (0..pool.nthreads())
                    .map(|_| RedundantRho::new(&l))
                    .collect();
                // Dirty the arenas: the helper must clear them itself.
                for a in &mut arenas {
                    a.rho4[0][0] = 99.0;
                }
                let run = |arenas: &mut [RedundantRho]| {
                    let mut out = RedundantRho::new(&l);
                    pool_accumulate_redundant(
                        &pool, &p.icell, &p.dx, &p.dy, &mut out, arenas, 1.0, path, kp,
                    );
                    out
                };
                let first = run(&mut arenas);
                let second = run(&mut arenas);
                for (cell, (a, b)) in first.rho4.iter().zip(&second.rho4).enumerate() {
                    for k in 0..4 {
                        // Re-running on reused arenas must be bit-identical.
                        assert_eq!(
                            a[k].to_bits(),
                            b[k].to_bits(),
                            "nthreads={nthreads} path={path:?} cell={cell}"
                        );
                        assert!(
                            (a[k] - seq.rho4[cell][k]).abs() < 1e-10,
                            "nthreads={nthreads} path={path:?} cell={cell}"
                        );
                    }
                }
            }
        }
    }
}
