//! The update-velocities loop: interpolate E at each particle (CIC) and kick.
//!
//! Redundant-layout variants read one contiguous `[f64; 8]` block per
//! particle; standard-layout variants gather from four scattered grid
//! points. The hoisted variants assume the stored field already carries the
//! `q·Δt/m` (and grid-unit) factors, so the loop body is pure
//! interpolate-and-add — the shape the paper reports for its optimized code.

// SoA kernels take one slice per particle field by design; bundling them
// into a struct would obscure the loop shapes the paper compares.
#![allow(clippy::too_many_arguments)]

use crate::fields::Field2D;
use crate::par;

/// Kick from the redundant field: `v += coeff · E_CIC(particle)`.
///
/// # Panics
/// Panics if the slice lengths disagree.
pub fn update_velocities_redundant(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &mut [f64],
    vy: &mut [f64],
    e8: &[[f64; 8]],
    coeff_x: f64,
    coeff_y: f64,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n);
    for i in 0..n {
        let e = &e8[icell[i] as usize];
        let (odx, ody) = (dx[i], dy[i]);
        let w00 = (1.0 - odx) * (1.0 - ody);
        let w01 = (1.0 - odx) * ody;
        let w10 = odx * (1.0 - ody);
        let w11 = odx * ody;
        let ex = w00 * e[0] + w01 * e[1] + w10 * e[2] + w11 * e[3];
        let ey = w00 * e[4] + w01 * e[5] + w10 * e[6] + w11 * e[7];
        vx[i] += coeff_x * ex;
        vy[i] += coeff_y * ey;
    }
}

/// Hoisted kick: the field is pre-scaled, no per-particle coefficient.
pub fn update_velocities_redundant_hoisted(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &mut [f64],
    vy: &mut [f64],
    e8: &[[f64; 8]],
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n);
    for i in 0..n {
        let e = &e8[icell[i] as usize];
        let (odx, ody) = (dx[i], dy[i]);
        let w00 = (1.0 - odx) * (1.0 - ody);
        let w01 = (1.0 - odx) * ody;
        let w10 = odx * (1.0 - ody);
        let w11 = odx * ody;
        vx[i] += w00 * e[0] + w01 * e[1] + w10 * e[2] + w11 * e[3];
        vy[i] += w00 * e[4] + w01 * e[5] + w10 * e[6] + w11 * e[7];
    }
}

/// Kick from standard grid-point storage: four scattered gathers per
/// component, with periodic neighbour wrap (grid dims are powers of two).
pub fn update_velocities_standard(
    ix: &[u32],
    iy: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &mut [f64],
    vy: &mut [f64],
    field: &Field2D,
    coeff_x: f64,
    coeff_y: f64,
) {
    let n = ix.len();
    assert!(iy.len() == n && dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n);
    let (ncx, ncy) = (field.ncx, field.ncy);
    for i in 0..n {
        let cx = ix[i] as usize;
        let cy = iy[i] as usize;
        let cxp = (cx + 1) & (ncx - 1);
        let cyp = (cy + 1) & (ncy - 1);
        let (odx, ody) = (dx[i], dy[i]);
        let w00 = (1.0 - odx) * (1.0 - ody);
        let w01 = (1.0 - odx) * ody;
        let w10 = odx * (1.0 - ody);
        let w11 = odx * ody;
        let g00 = cx * ncy + cy;
        let g01 = cx * ncy + cyp;
        let g10 = cxp * ncy + cy;
        let g11 = cxp * ncy + cyp;
        let ex =
            w00 * field.ex[g00] + w01 * field.ex[g01] + w10 * field.ex[g10] + w11 * field.ex[g11];
        let ey =
            w00 * field.ey[g00] + w01 * field.ey[g01] + w10 * field.ey[g10] + w11 * field.ey[g11];
        vx[i] += coeff_x * ex;
        vy[i] += coeff_y * ey;
    }
}

/// Thread-parallel redundant kick (`#pragma omp for` over particles).
pub fn par_update_velocities_redundant(
    p: &mut crate::particles::ParticlesSoA,
    e8: &[[f64; 8]],
    coeff_x: f64,
    coeff_y: f64,
    nchunks: usize,
) {
    let views = super::split_soa_mut(p, nchunks);
    par::for_each(views, |v| {
        update_velocities_redundant(v.icell, v.dx, v.dy, v.vx, v.vy, e8, coeff_x, coeff_y);
    });
}

/// Thread-parallel hoisted redundant kick.
pub fn par_update_velocities_redundant_hoisted(
    p: &mut crate::particles::ParticlesSoA,
    e8: &[[f64; 8]],
    nchunks: usize,
) {
    let views = super::split_soa_mut(p, nchunks);
    par::for_each(views, |v| {
        update_velocities_redundant_hoisted(v.icell, v.dx, v.dy, v.vx, v.vy, e8);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::RedundantE;
    use crate::grid::Grid2D;
    use sfc::{CellLayout, Morton, RowMajor};

    fn constant_field(v: f64) -> Field2D {
        let g = Grid2D::new(8, 8, 1.0, 1.0).unwrap();
        let mut f = Field2D::new(&g);
        f.ex.fill(v);
        f.ey.fill(-v);
        f
    }

    #[test]
    fn constant_field_kicks_uniformly() {
        let f = constant_field(2.0);
        let layout = RowMajor::new(8, 8).unwrap();
        let mut e8 = RedundantE::new(&layout);
        e8.fill_from(&f, &layout, 1.0, 1.0);

        let icell = vec![layout.encode(3, 4) as u32, layout.encode(0, 0) as u32];
        let dx = vec![0.3, 0.9];
        let dy = vec![0.7, 0.1];
        let mut vx = vec![1.0, -1.0];
        let mut vy = vec![0.0, 0.0];
        update_velocities_redundant(&icell, &dx, &dy, &mut vx, &mut vy, &e8.e8, 0.5, 0.5);
        // CIC of a constant is the constant: Δvx = 0.5·2 = 1.
        assert!((vx[0] - 2.0).abs() < 1e-14);
        assert!((vx[1] - 0.0).abs() < 1e-14);
        assert!((vy[0] + 1.0).abs() < 1e-14);
    }

    #[test]
    fn redundant_matches_standard() {
        // A deterministic "random" field; both storage paths must agree.
        let g = Grid2D::new(16, 16, 1.0, 1.0).unwrap();
        let mut f = Field2D::new(&g);
        for i in 0..f.ex.len() {
            f.ex[i] = ((i * 37 + 11) % 101) as f64 * 0.1;
            f.ey[i] = ((i * 53 + 29) % 97) as f64 * -0.2;
        }
        let layout = Morton::new(16, 16).unwrap();
        let mut e8 = RedundantE::new(&layout);
        e8.fill_from(&f, &layout, 1.0, 1.0);

        let npart = 200;
        let mut icell = Vec::new();
        let mut ix = Vec::new();
        let mut iy = Vec::new();
        let mut dx = Vec::new();
        let mut dy = Vec::new();
        for i in 0..npart {
            let cx = (i * 7) % 16;
            let cy = (i * 13) % 16;
            ix.push(cx as u32);
            iy.push(cy as u32);
            icell.push(layout.encode(cx, cy) as u32);
            dx.push(((i * 31) % 100) as f64 / 100.0);
            dy.push(((i * 17) % 100) as f64 / 100.0);
        }
        let mut vx_a = vec![0.0; npart];
        let mut vy_a = vec![0.0; npart];
        let mut vx_b = vec![0.0; npart];
        let mut vy_b = vec![0.0; npart];
        update_velocities_redundant(&icell, &dx, &dy, &mut vx_a, &mut vy_a, &e8.e8, 1.5, 2.5);
        update_velocities_standard(&ix, &iy, &dx, &dy, &mut vx_b, &mut vy_b, &f, 1.5, 2.5);
        for i in 0..npart {
            assert!((vx_a[i] - vx_b[i]).abs() < 1e-13, "i={i}");
            assert!((vy_a[i] - vy_b[i]).abs() < 1e-13, "i={i}");
        }
    }

    #[test]
    fn hoisted_equals_scaled_coeff() {
        let f = constant_field(3.0);
        let layout = RowMajor::new(8, 8).unwrap();
        // Pre-scale by 0.25 in the redundant copy…
        let mut e8_scaled = RedundantE::new(&layout);
        e8_scaled.fill_from(&f, &layout, 0.25, 0.25);
        // …and compare against coeff = 0.25 on the raw copy.
        let mut e8_raw = RedundantE::new(&layout);
        e8_raw.fill_from(&f, &layout, 1.0, 1.0);

        let icell = vec![0u32; 16];
        let dx: Vec<f64> = (0..16).map(|i| i as f64 / 16.0).collect();
        let dy: Vec<f64> = (0..16).map(|i| (15 - i) as f64 / 16.0).collect();
        let mut vx_a = vec![0.0; 16];
        let mut vy_a = vec![0.0; 16];
        let mut vx_b = vec![0.0; 16];
        let mut vy_b = vec![0.0; 16];
        update_velocities_redundant_hoisted(&icell, &dx, &dy, &mut vx_a, &mut vy_a, &e8_scaled.e8);
        update_velocities_redundant(
            &icell, &dx, &dy, &mut vx_b, &mut vy_b, &e8_raw.e8, 0.25, 0.25,
        );
        for i in 0..16 {
            assert!((vx_a[i] - vx_b[i]).abs() < 1e-14);
            assert!((vy_a[i] - vy_b[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn linear_field_interpolates_exactly() {
        // CIC reproduces linear fields exactly: Ex = ix + iy on an interior
        // patch; a particle at (2 + 0.25, 3 + 0.5) sees 2.25 + 3.5.
        let g = Grid2D::new(8, 8, 1.0, 1.0).unwrap();
        let mut f = Field2D::new(&g);
        for ix in 0..8 {
            for iy in 0..8 {
                f.ex[ix * 8 + iy] = ix as f64 + iy as f64;
            }
        }
        let layout = RowMajor::new(8, 8).unwrap();
        let mut e8 = RedundantE::new(&layout);
        e8.fill_from(&f, &layout, 1.0, 1.0);
        let icell = vec![layout.encode(2, 3) as u32];
        let (dx, dy) = (vec![0.25], vec![0.5]);
        let mut vx = vec![0.0];
        let mut vy = vec![0.0];
        update_velocities_redundant(&icell, &dx, &dy, &mut vx, &mut vy, &e8.e8, 1.0, 1.0);
        assert!((vx[0] - 5.75).abs() < 1e-14);
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = Grid2D::new(16, 16, 1.0, 1.0).unwrap();
        let layout = RowMajor::new(16, 16).unwrap();
        let mut f = Field2D::new(&g);
        for i in 0..f.ex.len() {
            f.ex[i] = (i % 13) as f64;
            f.ey[i] = (i % 7) as f64;
        }
        let mut e8 = RedundantE::new(&layout);
        e8.fill_from(&f, &layout, 1.0, 1.0);

        let n = 10_000;
        let mut p = crate::particles::ParticlesSoA::zeroed(n);
        for i in 0..n {
            p.icell[i] = (i % 256) as u32;
            p.dx[i] = (i % 10) as f64 / 10.0;
            p.dy[i] = (i % 9) as f64 / 9.0;
        }
        let mut q = p.clone();
        update_velocities_redundant(
            &p.icell.clone(),
            &p.dx.clone(),
            &p.dy.clone(),
            &mut p.vx,
            &mut p.vy,
            &e8.e8,
            1.0,
            1.0,
        );
        par_update_velocities_redundant(&mut q, &e8.e8, 1.0, 1.0, 4);
        assert_eq!(p.vx, q.vx);
        assert_eq!(p.vy, q.vy);
    }
}
