//! Array-of-Structures mirrors of the particle kernels.
//!
//! The paper's baseline stores particles as an array of structs; the SoA
//! conversion is worth 19–30 % (§IV-C1, Table IV) because AoS loads stride
//! through memory in units of the whole struct. These kernels reproduce the
//! AoS side of Tables IV and VII. They are intentionally written in the
//! same style as their SoA twins so the comparison isolates the layout.

use crate::fields::{Field2D, RedundantRho, CX, CY, SX, SY};
use crate::particles::Particle;

/// AoS fused loop over standard structures, unhoisted, naive-if wrap —
/// the exact Table IV baseline.
#[allow(clippy::too_many_arguments)]
pub fn fused_standard_aos(
    particles: &mut [Particle],
    field: &Field2D,
    rho: &mut [f64],
    coeff_x: f64,
    coeff_y: f64,
    scale: f64,
    w: f64,
) {
    let (ncx, ncy) = (field.ncx, field.ncy);
    assert_eq!(rho.len(), ncx * ncy);
    let (fx, fy) = (ncx as f64, ncy as f64);
    for p in particles.iter_mut() {
        let cx = p.ix as usize;
        let cy = p.iy as usize;
        let cxp = (cx + 1) & (ncx - 1);
        let cyp = (cy + 1) & (ncy - 1);
        let w00 = (1.0 - p.dx) * (1.0 - p.dy);
        let w01 = (1.0 - p.dx) * p.dy;
        let w10 = p.dx * (1.0 - p.dy);
        let w11 = p.dx * p.dy;
        let g00 = cx * ncy + cy;
        let g01 = cx * ncy + cyp;
        let g10 = cxp * ncy + cy;
        let g11 = cxp * ncy + cyp;
        let ex =
            w00 * field.ex[g00] + w01 * field.ex[g01] + w10 * field.ex[g10] + w11 * field.ex[g11];
        let ey =
            w00 * field.ey[g00] + w01 * field.ey[g01] + w10 * field.ey[g10] + w11 * field.ey[g11];
        p.vx += coeff_x * ex;
        p.vy += coeff_y * ey;

        let mut x = cx as f64 + p.dx + p.vx * scale;
        let mut y = cy as f64 + p.dy + p.vy * scale;
        if x < 0.0 || x >= fx {
            x = super::position::modulo_real(x, fx);
        }
        if y < 0.0 || y >= fy {
            y = super::position::modulo_real(y, fy);
        }
        let nx = (x.floor() as usize).min(ncx - 1);
        let ny = (y.floor() as usize).min(ncy - 1);
        p.dx = x - x.floor();
        p.dy = y - y.floor();
        p.ix = nx as u32;
        p.iy = ny as u32;
        p.icell = (nx * ncy + ny) as u32;

        let nxp = (nx + 1) & (ncx - 1);
        let nyp = (ny + 1) & (ncy - 1);
        rho[nx * ncy + ny] += w * (1.0 - p.dx) * (1.0 - p.dy);
        rho[nx * ncy + nyp] += w * (1.0 - p.dx) * p.dy;
        rho[nxp * ncy + ny] += w * p.dx * (1.0 - p.dy);
        rho[nxp * ncy + nyp] += w * p.dx * p.dy;
    }
}

/// AoS split loop 1/3: velocity kick from standard field storage.
pub fn update_velocities_standard_aos(
    particles: &mut [Particle],
    field: &Field2D,
    coeff_x: f64,
    coeff_y: f64,
) {
    let (ncx, ncy) = (field.ncx, field.ncy);
    for p in particles.iter_mut() {
        let cx = p.ix as usize;
        let cy = p.iy as usize;
        let cxp = (cx + 1) & (ncx - 1);
        let cyp = (cy + 1) & (ncy - 1);
        let w00 = (1.0 - p.dx) * (1.0 - p.dy);
        let w01 = (1.0 - p.dx) * p.dy;
        let w10 = p.dx * (1.0 - p.dy);
        let w11 = p.dx * p.dy;
        let g00 = cx * ncy + cy;
        let g01 = cx * ncy + cyp;
        let g10 = cxp * ncy + cy;
        let g11 = cxp * ncy + cyp;
        p.vx += coeff_x
            * (w00 * field.ex[g00]
                + w01 * field.ex[g01]
                + w10 * field.ex[g10]
                + w11 * field.ex[g11]);
        p.vy += coeff_y
            * (w00 * field.ey[g00]
                + w01 * field.ey[g01]
                + w10 * field.ey[g10]
                + w11 * field.ey[g11]);
    }
}

/// AoS split loop 1/3, redundant field storage, hoisted.
pub fn update_velocities_redundant_aos(particles: &mut [Particle], e8: &[[f64; 8]]) {
    for p in particles.iter_mut() {
        let e = &e8[p.icell as usize];
        let w00 = (1.0 - p.dx) * (1.0 - p.dy);
        let w01 = (1.0 - p.dx) * p.dy;
        let w10 = p.dx * (1.0 - p.dy);
        let w11 = p.dx * p.dy;
        p.vx += w00 * e[0] + w01 * e[1] + w10 * e[2] + w11 * e[3];
        p.vy += w00 * e[4] + w01 * e[5] + w10 * e[6] + w11 * e[7];
    }
}

/// AoS split loop 2/3: branchless position push, row-major indexing.
pub fn update_positions_branchless_aos(
    particles: &mut [Particle],
    ncx: usize,
    ncy: usize,
    scale: f64,
) {
    debug_assert!(ncx.is_power_of_two() && ncy.is_power_of_two());
    let mx = ncx as i64 - 1;
    let my = ncy as i64 - 1;
    for p in particles.iter_mut() {
        let x = p.ix as f64 + p.dx + p.vx * scale;
        let y = p.iy as f64 + p.dy + p.vy * scale;
        let fx = (x as i64) - i64::from(x < 0.0);
        let fy = (y as i64) - i64::from(y < 0.0);
        let cx = (fx & mx) as usize;
        let cy = (fy & my) as usize;
        p.dx = x - fx as f64;
        p.dy = y - fy as f64;
        p.ix = cx as u32;
        p.iy = cy as u32;
        p.icell = (cx * ncy + cy) as u32;
    }
}

/// AoS split loop 2/3: branchless push under an arbitrary layout
/// (monomorphized `encode`, like the SoA twin).
pub fn update_positions_branchless_layout_aos<L: sfc::CellLayout>(
    particles: &mut [Particle],
    layout: &L,
    scale: f64,
) {
    let (ncx, ncy) = (layout.ncx(), layout.ncy());
    debug_assert!(ncx.is_power_of_two() && ncy.is_power_of_two());
    let mx = ncx as i64 - 1;
    let my = ncy as i64 - 1;
    for p in particles.iter_mut() {
        let x = p.ix as f64 + p.dx + p.vx * scale;
        let y = p.iy as f64 + p.dy + p.vy * scale;
        let fx = (x as i64) - i64::from(x < 0.0);
        let fy = (y as i64) - i64::from(y < 0.0);
        let cx = (fx & mx) as usize;
        let cy = (fy & my) as usize;
        p.dx = x - fx as f64;
        p.dy = y - fy as f64;
        p.ix = cx as u32;
        p.iy = cy as u32;
        p.icell = layout.encode(cx, cy) as u32;
    }
}

/// Thread-parallel variant of [`update_positions_branchless_layout_aos`].
pub fn par_update_positions_branchless_layout_aos<L: sfc::CellLayout>(
    particles: &mut [Particle],
    layout: &L,
    scale: f64,
    chunk: usize,
) {
    crate::par::for_each(particles.chunks_mut(chunk.max(1)).collect(), |c| {
        update_positions_branchless_layout_aos(c, layout, scale)
    });
}

/// AoS split loop 2/3: naive-if position push (baseline shape).
pub fn update_positions_naive_if_aos(
    particles: &mut [Particle],
    ncx: usize,
    ncy: usize,
    scale: f64,
) {
    let (fx, fy) = (ncx as f64, ncy as f64);
    for p in particles.iter_mut() {
        let mut x = p.ix as f64 + p.dx + p.vx * scale;
        let mut y = p.iy as f64 + p.dy + p.vy * scale;
        if x < 0.0 || x >= fx {
            x = super::position::modulo_real(x, fx);
        }
        if y < 0.0 || y >= fy {
            y = super::position::modulo_real(y, fy);
        }
        let cx = (x.floor() as usize).min(ncx - 1);
        let cy = (y.floor() as usize).min(ncy - 1);
        p.dx = x - x.floor();
        p.dy = y - y.floor();
        p.ix = cx as u32;
        p.iy = cy as u32;
        p.icell = (cx * ncy + cy) as u32;
    }
}

/// AoS split loop 3/3: standard scattered deposition.
pub fn accumulate_standard_aos(
    particles: &[Particle],
    rho: &mut [f64],
    ncx: usize,
    ncy: usize,
    w: f64,
) {
    assert_eq!(rho.len(), ncx * ncy);
    for p in particles {
        let cx = p.ix as usize;
        let cy = p.iy as usize;
        let cxp = (cx + 1) & (ncx - 1);
        let cyp = (cy + 1) & (ncy - 1);
        rho[cx * ncy + cy] += w * (1.0 - p.dx) * (1.0 - p.dy);
        rho[cx * ncy + cyp] += w * (1.0 - p.dx) * p.dy;
        rho[cxp * ncy + cy] += w * p.dx * (1.0 - p.dy);
        rho[cxp * ncy + cyp] += w * p.dx * p.dy;
    }
}

/// AoS split loop 3/3: redundant contiguous deposition.
pub fn accumulate_redundant_aos(particles: &[Particle], rho4: &mut RedundantRho, w: f64) {
    accumulate_redundant_aos_slice(particles, &mut rho4.rho4, w);
}

/// Scalar-order AoS redundant deposit over a raw ρ₄ slice — the `Exact`
/// reference for [`super::deposit::select_kernel_aos`].
pub fn accumulate_redundant_aos_slice(particles: &[Particle], rho4: &mut [[f64; 4]], w: f64) {
    for p in particles {
        let dst = &mut rho4[p.icell as usize];
        for corner in 0..4 {
            dst[corner] += w * (CX[corner] + SX[corner] * p.dx) * (CY[corner] + SY[corner] * p.dy);
        }
    }
}

/// AoS fused loop over the redundant structures (hoisted, branchless) —
/// Table VII's “AoS, 1 loop” on the optimized data structures.
pub fn fused_redundant_aos(
    particles: &mut [Particle],
    e8: &[[f64; 8]],
    rho4: &mut [[f64; 4]],
    ncx: usize,
    ncy: usize,
    w: f64,
) {
    debug_assert!(ncx.is_power_of_two() && ncy.is_power_of_two());
    let mx = ncx as i64 - 1;
    let my = ncy as i64 - 1;
    for p in particles.iter_mut() {
        let e = &e8[p.icell as usize];
        let w00 = (1.0 - p.dx) * (1.0 - p.dy);
        let w01 = (1.0 - p.dx) * p.dy;
        let w10 = p.dx * (1.0 - p.dy);
        let w11 = p.dx * p.dy;
        p.vx += w00 * e[0] + w01 * e[1] + w10 * e[2] + w11 * e[3];
        p.vy += w00 * e[4] + w01 * e[5] + w10 * e[6] + w11 * e[7];

        let x = p.ix as f64 + p.dx + p.vx;
        let y = p.iy as f64 + p.dy + p.vy;
        let fx = (x as i64) - i64::from(x < 0.0);
        let fy = (y as i64) - i64::from(y < 0.0);
        let cx = (fx & mx) as usize;
        let cy = (fy & my) as usize;
        p.dx = x - fx as f64;
        p.dy = y - fy as f64;
        p.ix = cx as u32;
        p.iy = cy as u32;
        let cell = cx * ncy + cy;
        p.icell = cell as u32;

        let dst = &mut rho4[cell];
        for corner in 0..4 {
            dst[corner] += w * (CX[corner] + SX[corner] * p.dx) * (CY[corner] + SY[corner] * p.dy);
        }
    }
}

/// Thread-parallel AoS redundant kick.
pub fn par_update_velocities_redundant_aos(
    particles: &mut [Particle],
    e8: &[[f64; 8]],
    chunk: usize,
) {
    crate::par::for_each(particles.chunks_mut(chunk.max(1)).collect(), |c| {
        update_velocities_redundant_aos(c, e8)
    });
}

/// Thread-parallel AoS branchless push.
pub fn par_update_positions_branchless_aos(
    particles: &mut [Particle],
    ncx: usize,
    ncy: usize,
    scale: f64,
    chunk: usize,
) {
    crate::par::for_each(particles.chunks_mut(chunk.max(1)).collect(), |c| {
        update_positions_branchless_aos(c, ncx, ncy, scale)
    });
}

/// Thread-parallel AoS redundant deposition with per-task ρ₄ copies.
pub fn par_accumulate_redundant_aos(
    particles: &[Particle],
    rho4: &mut RedundantRho,
    w: f64,
    chunk: usize,
) {
    par_accumulate_redundant_aos_with(particles, rho4, w, chunk, accumulate_redundant_aos_slice);
}

/// [`par_accumulate_redundant_aos`] with an explicit chunk kernel, so the
/// parallel AoS pipeline can run any [`super::deposit::DepositPath`]
/// variant; chunks are merged in deterministic chunk order.
pub fn par_accumulate_redundant_aos_with(
    particles: &[Particle],
    rho4: &mut RedundantRho,
    w: f64,
    chunk: usize,
    kernel: super::deposit::DepositFnAos,
) {
    let ncells = rho4.rho4.len();
    let locals = crate::par::map_collect(particles.chunks(chunk.max(1)).collect(), |c| {
        let mut local = vec![[0.0f64; 4]; ncells];
        kernel(c, &mut local, w);
        local
    });
    for local in locals {
        for (dst, src) in rho4.rho4.iter_mut().zip(&local) {
            for k in 0..4 {
                dst[k] += src[k];
            }
        }
    }
}

/// Thread-parallel AoS fused redundant loop.
pub fn par_fused_redundant_aos(
    particles: &mut [Particle],
    e8: &[[f64; 8]],
    rho4: &mut RedundantRho,
    ncx: usize,
    ncy: usize,
    w: f64,
    chunk: usize,
) {
    let ncells = rho4.rho4.len();
    let locals = crate::par::map_collect(particles.chunks_mut(chunk.max(1)).collect(), |c| {
        let mut local = vec![[0.0f64; 4]; ncells];
        fused_redundant_aos(c, e8, &mut local, ncx, ncy, w);
        local
    });
    for local in locals {
        for (dst, src) in rho4.rho4.iter_mut().zip(&local) {
            for k in 0..4 {
                dst[k] += src[k];
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fields::RedundantE;
    use crate::grid::Grid2D;
    use crate::kernels::{accumulate, position, velocity};
    use crate::particles::ParticlesSoA;
    use sfc::RowMajor;

    fn mk(n: usize, ncx: usize, ncy: usize) -> ParticlesSoA {
        let mut p = ParticlesSoA::zeroed(n);
        for i in 0..n {
            let cx = (i * 3 + 2) % ncx;
            let cy = (i * 7 + 1) % ncy;
            p.ix[i] = cx as u32;
            p.iy[i] = cy as u32;
            p.icell[i] = (cx * ncy + cy) as u32;
            p.dx[i] = ((i * 31) % 101) as f64 / 101.0;
            p.dy[i] = ((i * 37) % 103) as f64 / 103.0;
            p.vx[i] = ((i % 15) as f64 - 7.0) * 0.35;
            p.vy[i] = ((i % 13) as f64 - 6.0) * 0.45;
        }
        p
    }

    fn mk_field(ncx: usize, ncy: usize) -> Field2D {
        let g = Grid2D::new(ncx, ncy, 1.0, 1.0).unwrap();
        let mut f = Field2D::new(&g);
        for i in 0..f.ex.len() {
            f.ex[i] = ((i * 19 + 5) % 43) as f64 * 0.07;
            f.ey[i] = ((i * 29 + 11) % 37) as f64 * -0.09;
        }
        f
    }

    /// AoS and SoA kernels must be bit-for-bit interchangeable.
    #[test]
    fn aos_split_pipeline_matches_soa() {
        let (ncx, ncy) = (16, 16);
        let f = mk_field(ncx, ncy);
        let layout = RowMajor::new(ncx, ncy).unwrap();
        let mut e8 = RedundantE::new(&layout);
        e8.fill_from(&f, &layout, 1.0, 1.0);
        let soa = mk(400, ncx, ncy);
        let mut aos = soa.to_aos();

        // SoA pipeline.
        let mut s = soa.clone();
        velocity::update_velocities_redundant_hoisted(
            &s.icell.clone(),
            &s.dx.clone(),
            &s.dy.clone(),
            &mut s.vx,
            &mut s.vy,
            &e8.e8,
        );
        let (vx, vy) = (s.vx.clone(), s.vy.clone());
        position::update_positions_branchless(
            &mut s.icell,
            &mut s.ix,
            &mut s.iy,
            &mut s.dx,
            &mut s.dy,
            &vx,
            &vy,
            ncx,
            ncy,
            1.0,
        );
        let mut rho4_s = RedundantRho::new(&layout);
        accumulate::accumulate_redundant(&s.icell, &s.dx, &s.dy, &mut rho4_s.rho4, 1.0);

        // AoS pipeline.
        update_velocities_redundant_aos(&mut aos.p, &e8.e8);
        update_positions_branchless_aos(&mut aos.p, ncx, ncy, 1.0);
        let mut rho4_a = RedundantRho::new(&layout);
        accumulate_redundant_aos(&aos.p, &mut rho4_a, 1.0);

        for i in 0..s.len() {
            let q = aos.p[i];
            assert_eq!(q.icell, s.icell[i], "i={i}");
            assert!((q.vx - s.vx[i]).abs() < 1e-14);
            assert!((q.dx - s.dx[i]).abs() < 1e-14);
        }
        for (a, b) in rho4_a.rho4.iter().zip(&rho4_s.rho4) {
            for k in 0..4 {
                assert!((a[k] - b[k]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn aos_fused_matches_soa_fused() {
        let (ncx, ncy) = (16, 16);
        let f = mk_field(ncx, ncy);
        let soa = mk(300, ncx, ncy);
        let mut aos = soa.to_aos();
        let mut s = soa.clone();
        let mut rho_a = vec![0.0; ncx * ncy];
        let mut rho_s = vec![0.0; ncx * ncy];
        fused_standard_aos(&mut aos.p, &f, &mut rho_a, 0.8, 1.2, 1.0, 0.5);
        crate::kernels::fused::fused_standard_soa(&mut s, &f, &mut rho_s, 0.8, 1.2, 1.0, 0.5);
        for i in 0..s.len() {
            assert_eq!(aos.p[i].icell, s.icell[i]);
            assert!((aos.p[i].vy - s.vy[i]).abs() < 1e-14);
        }
        for i in 0..rho_a.len() {
            assert!((rho_a[i] - rho_s[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn aos_standard_velocity_matches_soa() {
        let (ncx, ncy) = (8, 8);
        let f = mk_field(ncx, ncy);
        let soa = mk(200, ncx, ncy);
        let mut aos = soa.to_aos();
        let mut s = soa.clone();
        update_velocities_standard_aos(&mut aos.p, &f, 1.5, -0.5);
        velocity::update_velocities_standard(
            &s.ix.clone(),
            &s.iy.clone(),
            &s.dx.clone(),
            &s.dy.clone(),
            &mut s.vx,
            &mut s.vy,
            &f,
            1.5,
            -0.5,
        );
        for i in 0..s.len() {
            assert!((aos.p[i].vx - s.vx[i]).abs() < 1e-14);
            assert!((aos.p[i].vy - s.vy[i]).abs() < 1e-14);
        }
    }

    #[test]
    fn aos_naive_position_matches_branchless() {
        let (ncx, ncy) = (32, 32);
        let soa = mk(300, ncx, ncy);
        let mut a = soa.to_aos();
        let mut b = soa.to_aos();
        update_positions_naive_if_aos(&mut a.p, ncx, ncy, 1.0);
        update_positions_branchless_aos(&mut b.p, ncx, ncy, 1.0);
        for i in 0..a.len() {
            assert_eq!(a.p[i].icell, b.p[i].icell, "i={i}");
            assert!((a.p[i].dx - b.p[i].dx).abs() < 1e-12);
        }
    }

    #[test]
    fn aos_standard_accumulate_conserves_charge() {
        let (ncx, ncy) = (8, 8);
        let aos = mk(500, ncx, ncy).to_aos();
        let mut rho = vec![0.0; 64];
        accumulate_standard_aos(&aos.p, &mut rho, ncx, ncy, 0.4);
        assert!((rho.iter().sum::<f64>() - 200.0).abs() < 1e-10);
    }
}
