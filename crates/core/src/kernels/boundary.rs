//! Non-periodic boundary conditions — the paper's §VI outlook (“adapt our
//! vectorization techniques when dealing with other boundary conditions
//! like reflecting or escaping particles”).
//!
//! Two position-update variants are provided beyond the periodic wrap:
//!
//! * [`update_positions_reflecting`] — specular walls: a particle crossing
//!   a boundary is mirrored back and the corresponding velocity component
//!   flips sign. Implemented branch-lean via the triangular-wave identity
//!   (fold into `[0, 2n)`, mirror the upper half), which handles multiple
//!   wall crossings in one step, in the same spirit as the paper's
//!   modulo-based periodic wrap;
//! * [`update_positions_absorbing`] — open walls: escaping particles are
//!   marked dead (`icell = DEAD`) and later removed with
//!   [`compact_alive`], the bookkeeping a bounded-plasma simulation needs.
//!
//! These kernels are library extensions exercised by tests and benches;
//! the `Simulation` driver itself remains periodic, as in the paper.

use crate::particles::ParticlesSoA;

/// Sentinel cell index marking an absorbed (dead) particle.
pub const DEAD: u32 = u32::MAX;

/// Fold a coordinate into `[0, n)` with specular reflection; returns the
/// folded coordinate and `true` if the velocity must flip.
#[inline]
fn reflect_fold(x: f64, n: f64) -> (f64, bool) {
    // Triangular wave of period 2n: fold into [0, 2n), mirror upper half.
    let period = 2.0 * n;
    let m = x - (x / period).floor() * period; // in [0, 2n)
    if m < n {
        (m, false)
    } else {
        // Mirror; guard the m == n edge so the result stays inside [0, n).
        let r = period - m;
        (if r >= n { n - f64::EPSILON * n } else { r }, true)
    }
}

/// Reflecting-wall position update (row-major cell indexing).
///
/// Velocities are in grid units per step (`scale = 1`) or physical
/// (`scale = Δt/Δx`), as in the periodic kernels.
#[allow(clippy::too_many_arguments)]
pub fn update_positions_reflecting(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &mut [f64],
    vy: &mut [f64],
    ncx: usize,
    ncy: usize,
    scale: f64,
) {
    let n = icell.len();
    let (fx, fy) = (ncx as f64, ncy as f64);
    for i in 0..n {
        let x = ix[i] as f64 + dx[i] + vx[i] * scale;
        let y = iy[i] as f64 + dy[i] + vy[i] * scale;
        let (xr, flip_x) = reflect_fold(x, fx);
        let (yr, flip_y) = reflect_fold(y, fy);
        if flip_x {
            vx[i] = -vx[i];
        }
        if flip_y {
            vy[i] = -vy[i];
        }
        let cx = (xr.floor() as usize).min(ncx - 1);
        let cy = (yr.floor() as usize).min(ncy - 1);
        dx[i] = xr - cx as f64;
        dy[i] = yr - cy as f64;
        ix[i] = cx as u32;
        iy[i] = cy as u32;
        icell[i] = (cx * ncy + cy) as u32;
    }
}

/// Absorbing-wall position update: particles leaving `[0, ncx) × [0, ncy)`
/// are marked [`DEAD`] and left in place; everything else updates as usual.
/// Returns the number of particles absorbed this call.
#[allow(clippy::too_many_arguments)]
pub fn update_positions_absorbing(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &[f64],
    vy: &[f64],
    ncx: usize,
    ncy: usize,
    scale: f64,
) -> usize {
    let n = icell.len();
    let (fx, fy) = (ncx as f64, ncy as f64);
    let mut absorbed = 0usize;
    for i in 0..n {
        if icell[i] == DEAD {
            continue;
        }
        let x = ix[i] as f64 + dx[i] + vx[i] * scale;
        let y = iy[i] as f64 + dy[i] + vy[i] * scale;
        if x < 0.0 || x >= fx || y < 0.0 || y >= fy {
            icell[i] = DEAD;
            absorbed += 1;
            continue;
        }
        let cx = x.floor() as usize;
        let cy = y.floor() as usize;
        dx[i] = x - cx as f64;
        dy[i] = y - cy as f64;
        ix[i] = cx as u32;
        iy[i] = cy as u32;
        icell[i] = (cx * ncy + cy) as u32;
    }
    absorbed
}

/// Remove dead particles in place, preserving the order of the survivors.
/// Returns the new particle count.
pub fn compact_alive(p: &mut ParticlesSoA) -> usize {
    let mut w = 0usize;
    for r in 0..p.len() {
        if p.icell[r] != DEAD {
            if w != r {
                p.icell[w] = p.icell[r];
                p.ix[w] = p.ix[r];
                p.iy[w] = p.iy[r];
                p.dx[w] = p.dx[r];
                p.dy[w] = p.dy[r];
                p.vx[w] = p.vx[r];
                p.vy[w] = p.vy[r];
            }
            w += 1;
        }
    }
    p.icell.truncate(w);
    p.ix.truncate(w);
    p.iy.truncate(w);
    p.dx.truncate(w);
    p.dy.truncate(w);
    p.vx.truncate(w);
    p.vy.truncate(w);
    w
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one(ix: u32, dx: f64, vx: f64) -> ParticlesSoA {
        let mut p = ParticlesSoA::zeroed(1);
        p.ix[0] = ix;
        p.dx[0] = dx;
        p.vx[0] = vx;
        p.iy[0] = 4;
        p.dy[0] = 0.5;
        p
    }

    #[test]
    fn interior_move_matches_periodic() {
        let mut p = one(3, 0.5, 1.25);
        let (vx, vy) = (p.vx.clone(), p.vy.clone());
        let mut vx = vx;
        let mut vy = vy;
        update_positions_reflecting(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &mut vx,
            &mut vy,
            8,
            8,
            1.0,
        );
        assert_eq!(p.ix[0], 4);
        assert!((p.dx[0] - 0.75).abs() < 1e-12);
        assert_eq!(vx[0], 1.25, "no wall touched, velocity unchanged");
    }

    #[test]
    fn reflection_at_upper_wall() {
        // x = 7.5 + 1.0 = 8.5 → reflected to 7.5, vx flips.
        let mut p = one(7, 0.5, 1.0);
        let mut vx = p.vx.clone();
        let mut vy = p.vy.clone();
        update_positions_reflecting(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &mut vx,
            &mut vy,
            8,
            8,
            1.0,
        );
        assert_eq!(p.ix[0], 7);
        assert!((p.dx[0] - 0.5).abs() < 1e-12);
        assert_eq!(vx[0], -1.0);
    }

    #[test]
    fn reflection_at_lower_wall() {
        // x = 0.25 − 1.0 = −0.75 → reflected to 0.75, vx flips.
        let mut p = one(0, 0.25, -1.0);
        let mut vx = p.vx.clone();
        let mut vy = p.vy.clone();
        update_positions_reflecting(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &mut vx,
            &mut vy,
            8,
            8,
            1.0,
        );
        assert_eq!(p.ix[0], 0);
        assert!((p.dx[0] - 0.75).abs() < 1e-12);
        assert_eq!(vx[0], 1.0);
    }

    #[test]
    fn double_reflection_in_one_step() {
        // x = 0.5 + 17.0 = 17.5; period-16 triangular fold: 17.5 → 14.5,
        // i.e. one bounce off each wall (even count ⇒ net flip twice = flip
        // zero times? No: 17.5 mod 16 = 1.5 ≥ 8? no… walk it: fold(17.5, 8):
        // m = 17.5 − 16 = 1.5 < 8 → lands at 1.5 with NO net flip (two
        // bounces cancel).
        let mut p = one(0, 0.5, 17.0);
        let mut vx = p.vx.clone();
        let mut vy = p.vy.clone();
        update_positions_reflecting(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &mut vx,
            &mut vy,
            8,
            8,
            1.0,
        );
        assert_eq!(p.ix[0], 1);
        assert!((p.dx[0] - 0.5).abs() < 1e-12);
        assert_eq!(vx[0], 17.0, "even number of bounces: velocity restored");
    }

    #[test]
    fn positions_always_in_range() {
        let n = 1000;
        let mut p = ParticlesSoA::zeroed(n);
        for i in 0..n {
            p.ix[i] = (i % 8) as u32;
            p.iy[i] = ((i * 3) % 8) as u32;
            p.dx[i] = ((i * 7) % 100) as f64 / 100.0;
            p.dy[i] = ((i * 11) % 100) as f64 / 100.0;
            p.vx[i] = ((i % 29) as f64 - 14.0) * 1.7;
            p.vy[i] = ((i % 31) as f64 - 15.0) * 2.3;
        }
        let mut vx = p.vx.clone();
        let mut vy = p.vy.clone();
        let speed_before: Vec<f64> = vx.iter().zip(&vy).map(|(a, b)| a.abs() + b.abs()).collect();
        update_positions_reflecting(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &mut vx,
            &mut vy,
            8,
            8,
            1.0,
        );
        for i in 0..n {
            assert!((p.ix[i] as usize) < 8);
            assert!((0.0..1.0).contains(&p.dx[i]), "dx {}", p.dx[i]);
            assert!((0.0..1.0).contains(&p.dy[i]), "dy {}", p.dy[i]);
            // Specular walls preserve speed exactly.
            assert!((vx[i].abs() + vy[i].abs() - speed_before[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn absorbing_marks_and_counts() {
        let mut p = ParticlesSoA::zeroed(3);
        // stays, leaves right, leaves left
        p.ix.copy_from_slice(&[3, 7, 0]);
        p.dx.copy_from_slice(&[0.5, 0.9, 0.1]);
        p.vx.copy_from_slice(&[0.2, 1.0, -1.0]);
        let (vx, vy) = (p.vx.clone(), p.vy.clone());
        let absorbed = update_positions_absorbing(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &vx,
            &vy,
            8,
            8,
            1.0,
        );
        assert_eq!(absorbed, 2);
        assert_ne!(p.icell[0], DEAD);
        assert_eq!(p.icell[1], DEAD);
        assert_eq!(p.icell[2], DEAD);
        // Dead particles are skipped on the next call.
        let again = update_positions_absorbing(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &vx,
            &vy,
            8,
            8,
            1.0,
        );
        assert_eq!(again, 0);
    }

    #[test]
    fn compact_removes_dead_preserving_order() {
        let mut p = ParticlesSoA::zeroed(5);
        for i in 0..5 {
            p.vx[i] = i as f64;
        }
        p.icell[1] = DEAD;
        p.icell[3] = DEAD;
        let n = compact_alive(&mut p);
        assert_eq!(n, 3);
        assert_eq!(p.len(), 3);
        assert_eq!(p.vx, vec![0.0, 2.0, 4.0]);
    }

    #[test]
    fn compact_all_dead_and_none_dead() {
        let mut p = ParticlesSoA::zeroed(3);
        assert_eq!(compact_alive(&mut p), 3);
        p.icell.fill(DEAD);
        assert_eq!(compact_alive(&mut p), 0);
        assert!(p.is_empty());
    }
}
