//! Vectorized charge deposition (ROADMAP item 1): the two reassociated
//! deposit kernels that break the scalar scatter-order dependence keeping
//! [`super::simd::accumulate_redundant_lanes`] at ~1.1x.
//!
//! The scalar/lane deposit preserves the exact per-particle accumulation
//! order, so on sorted populations consecutive particles read-modify-write
//! the *same* `rho4` row and the loop serializes on store-to-load
//! forwarding. Both kernels here trade that exact order for an equivalent
//! reassociated one:
//!
//! * [`accumulate_lane_reduce`] — per-lane private ρ rows following the
//!   portable SIMD deposition of Vincenti et al. (arXiv:1601.02056): each
//!   of the [`LANES`] lanes computes its own `[f64; 4]` corner-weight row,
//!   and a transposed lane-reduction tree-sums the rows of a uniform
//!   (single-cell) block *in registers* before one read-modify-write for
//!   the whole block; mixed blocks scatter per lane in exact order.
//! * [`accumulate_sorted_block`] — the sorted-batch register deposit of
//!   Beck et al. (arXiv:1810.03949): walk runs of equal `icell` (the
//!   counting sort makes them long), accumulate every particle of a run
//!   into a register-resident `[f64; 4]` with a lane-blocked tree
//!   reduction, and issue one store per (cell, corner) instead of one per
//!   particle.
//!
//! Both are deterministic (summation order is a pure function of the input
//! ordering) and correct on *any* ordering — unsorted input just degrades
//! them to per-particle stores. Their per-cell rounding differs from the
//! scalar kernel by at most the reassociation bound proved in
//! `DESIGN.md` §14 and asserted in `tests/parity_kernel_path.rs`:
//! with `k` particles in a cell and weight magnitude `|w|`, every corner of
//! that cell agrees with scalar to within `4 k² ε |w|`.
//!
//! The scalar kernel body itself lives here too ([`deposit_tail`]): it is
//! simultaneously the reference deposit, the `n mod LANES` tail shared by
//! every blocked variant, and the `Exact` path.

use crate::fields::{CX, CY, SX, SY};
use crate::particles::Particle;
use crate::sim::KernelPath;

pub use super::simd::LANES;

/// SoA deposit kernel signature shared by every variant.
pub type DepositFn = fn(&[u32], &[f64], &[f64], &mut [[f64; 4]], f64);

/// AoS deposit kernel signature.
pub type DepositFnAos = fn(&[Particle], &mut [[f64; 4]], f64);

/// Which deposition kernel the split-redundant paths run.
///
/// Unlike [`KernelPath`] — whose two values are bit-identical by contract —
/// only `Exact` preserves the scalar accumulation order bit-for-bit; the
/// other two reassociate the per-cell sums (within the proven FP bound
/// above) to break the scatter serialization. The knob is part of the
/// checkpoint fingerprint so exact and reassociated runs never
/// cross-restore silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DepositPath {
    /// Scalar accumulation order, bit-identical to
    /// [`super::accumulate::accumulate_redundant`] (the lane-blocked weight
    /// pass under [`KernelPath::Lanes`] keeps the same scatter order).
    Exact,
    /// Per-lane private ρ rows + transposed lane-reduction
    /// ([`accumulate_lane_reduce`]).
    LaneReduce,
    /// Sorted-batch register deposit over `icell` runs
    /// ([`accumulate_sorted_block`]).
    SortedBlock,
}

/// The four CIC corner weights of one particle as a straight-line `[f64; 4]`
/// row — the exact expression (and evaluation order) of the scalar
/// reference kernel, shared by every deposit variant so that `Exact`
/// bit-identity and the reassociation bound both reduce to summation-order
/// arguments alone.
#[inline(always)]
pub fn corner_weights(odx: f64, ody: f64, w: f64) -> [f64; 4] {
    let mut wc = [0.0f64; 4];
    for corner in 0..4 {
        wc[corner] = w * (CX[corner] + SX[corner] * odx) * (CY[corner] + SY[corner] * ody);
    }
    wc
}

/// Scalar-order deposit of `icell.len()` particles: the reference kernel
/// body and the single shared tail for every lane-blocked variant (which
/// call it on the `n mod LANES` remainder instead of duplicating the
/// weight/bounds logic).
#[inline]
pub fn deposit_tail(icell: &[u32], dx: &[f64], dy: &[f64], rho4: &mut [[f64; 4]], w: f64) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n);
    for i in 0..n {
        let cell = &mut rho4[icell[i] as usize];
        let wc = corner_weights(dx[i], dy[i], w);
        for corner in 0..4 {
            cell[corner] += wc[corner];
        }
    }
}

/// Pairwise tree reduction of the `LANES` private weight rows into `acc`
/// (8 → 4 → 2 → 1), shortening the serial FP add chain from `LANES` to
/// `log2(LANES) + 1`. Consumes `wb` as scratch.
#[inline(always)]
fn tree_sum_rows(wb: &mut [[f64; 4]; LANES], acc: &mut [f64; 4]) {
    let (lo4, hi4) = wb.split_at_mut(4);
    for (a, b) in lo4.iter_mut().zip(hi4.iter()) {
        for corner in 0..4 {
            a[corner] += b[corner];
        }
    }
    let (lo2, hi2) = lo4.split_at_mut(2);
    for (a, b) in lo2.iter_mut().zip(hi2.iter()) {
        for corner in 0..4 {
            a[corner] += b[corner];
        }
    }
    for corner in 0..4 {
        acc[corner] += lo2[0][corner] + lo2[1][corner];
    }
}

/// Deposit one gathered lane block into `rho4`. A *uniform* block — every
/// lane in the same cell, the common case right after the counting sort —
/// computes its private weight rows and collapses them through the pairwise
/// tree reduction to a single read-modify-write. A *mixed* block runs the
/// exact lane-blocked body (weight pass + per-lane scatter in particle
/// order), bit-identical to [`super::simd::accumulate_redundant_lanes`].
///
/// The one uniform/mixed branch per block — with a branchless fold for the
/// uniformity test itself — is what makes the kernel degrade gracefully on
/// drifted populations: it predicts near-perfectly in both regimes, where
/// a data-dependent adjacent-lane merge loop mispredicts on every run
/// boundary and costs more than the merged stores save (measured 4.1 vs
/// 1.7 ns/particle on a one-step-drifted 1M population). Keeping each
/// arm's weight matrix local to the arm also lets the mixed arm stay in
/// registers instead of round-tripping through a shared stack slot.
#[inline(always)]
fn lane_reduce_block(
    bc: &[u32; LANES],
    bdx: &[f64; LANES],
    bdy: &[f64; LANES],
    w: f64,
    rho4: &mut [[f64; 4]],
) {
    let c0 = bc[0];
    let mut uniform = true;
    for &c in &bc[1..] {
        uniform &= c == c0;
    }
    if uniform {
        let mut acc = [0.0f64; 4];
        tree_reduce_block(bdx, bdy, w, &mut acc);
        let cell = &mut rho4[c0 as usize];
        for corner in 0..4 {
            cell[corner] += acc[corner];
        }
    } else {
        let mut wb = [[0.0f64; 4]; LANES];
        for l in 0..LANES {
            wb[l] = corner_weights(bdx[l], bdy[l], w);
        }
        for l in 0..LANES {
            let cell = &mut rho4[bc[l] as usize];
            for corner in 0..4 {
                cell[corner] += wb[l][corner];
            }
        }
    }
}

/// Per-lane private-ρ deposition with transposed lane-reduction.
///
/// Each block of [`LANES`] particles computes a private `LANES × 4`
/// corner-weight matrix in one straight-line vectorizable pass (no
/// dependence between lanes), then [`lane_reduce_block`] reduces across the
/// lane axis of the transposed matrix: uniform blocks (sorted input)
/// collapse to one read-modify-write of `rho4` per block, mixed blocks
/// scatter per lane exactly like the exact path.
pub fn accumulate_lane_reduce(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    rho4: &mut [[f64; 4]],
    w: f64,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n);
    let main = n - n % LANES;
    let mut o = 0;
    while o < main {
        let bc = super::simd::block(icell, o);
        let bdx = super::simd::block(dx, o);
        let bdy = super::simd::block(dy, o);
        lane_reduce_block(bc, bdx, bdy, w, rho4);
        o += LANES;
    }
    deposit_tail(&icell[main..], &dx[main..], &dy[main..], rho4, w);
}

/// Accumulate one full lane block of corner weights into `acc` with a
/// pairwise tree reduction (8 → 4 → 2 → 1), shortening the serial FP add
/// chain from `LANES` to `log2(LANES) + 1` per block.
#[inline(always)]
fn tree_reduce_block(bdx: &[f64; LANES], bdy: &[f64; LANES], w: f64, acc: &mut [f64; 4]) {
    let mut wb = [[0.0f64; 4]; LANES];
    for l in 0..LANES {
        wb[l] = corner_weights(bdx[l], bdy[l], w);
    }
    tree_sum_rows(&mut wb, acc);
}

/// Sorted-batch register deposition over `icell` runs.
///
/// Walks maximal runs of equal cell index (long after the counting sort),
/// accumulates the whole run into a register-resident `[f64; 4]` — full
/// lane blocks through the pairwise tree reduction, the run remainder in
/// scalar order — and issues a single read-modify-write of the `rho4` row
/// per run. Correct on any ordering; unsorted input shortens the runs to
/// length 1 and the kernel degrades to per-particle stores.
pub fn accumulate_sorted_block(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    rho4: &mut [[f64; 4]],
    w: f64,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n);
    let mut i = 0;
    while i < n {
        let c = icell[i];
        let mut j = i + 1;
        while j < n && icell[j] == c {
            j += 1;
        }
        let cell = &mut rho4[c as usize];
        if j - i == 1 {
            let wc = corner_weights(dx[i], dy[i], w);
            for corner in 0..4 {
                cell[corner] += wc[corner];
            }
        } else {
            let mut acc = [0.0f64; 4];
            let mut p = i;
            while p + LANES <= j {
                tree_reduce_block(
                    super::simd::block(dx, p),
                    super::simd::block(dy, p),
                    w,
                    &mut acc,
                );
                p += LANES;
            }
            for q in p..j {
                let wc = corner_weights(dx[q], dy[q], w);
                for corner in 0..4 {
                    acc[corner] += wc[corner];
                }
            }
            for corner in 0..4 {
                cell[corner] += acc[corner];
            }
        }
        i = j;
    }
}

/// The SoA deposit kernel for a `(DepositPath, KernelPath)` pair — the
/// single dispatch point shared by the sequential step, the pooled
/// per-worker arenas, and the benches. Under `Exact` the [`KernelPath`]
/// picks between the scalar loop and the lane-blocked weight pass (both
/// bit-identical); the reassociated paths have one kernel each.
pub fn select_kernel(path: DepositPath, kernel_path: KernelPath) -> DepositFn {
    match (path, kernel_path) {
        (DepositPath::Exact, KernelPath::Scalar) => super::accumulate::accumulate_redundant,
        (DepositPath::Exact, KernelPath::Lanes) => super::simd::accumulate_redundant_lanes,
        (DepositPath::LaneReduce, _) => accumulate_lane_reduce,
        (DepositPath::SortedBlock, _) => accumulate_sorted_block,
    }
}

// ---------------- AoS mirrors ----------------

/// AoS mirror of [`accumulate_lane_reduce`]: gathers each lane block's cell
/// indices and offsets out of the particle structs, then runs the same
/// [`lane_reduce_block`] — bit-identical to the SoA kernel on any input.
pub fn accumulate_lane_reduce_aos(particles: &[Particle], rho4: &mut [[f64; 4]], w: f64) {
    let n = particles.len();
    let main = n - n % LANES;
    let mut o = 0;
    let mut bc = [0u32; LANES];
    let mut bdx = [0.0f64; LANES];
    let mut bdy = [0.0f64; LANES];
    while o < main {
        let blk = &particles[o..o + LANES];
        for l in 0..LANES {
            bc[l] = blk[l].icell;
            bdx[l] = blk[l].dx;
            bdy[l] = blk[l].dy;
        }
        lane_reduce_block(&bc, &bdx, &bdy, w, rho4);
        o += LANES;
    }
    for p in &particles[main..] {
        let cell = &mut rho4[p.icell as usize];
        let wc = corner_weights(p.dx, p.dy, w);
        for corner in 0..4 {
            cell[corner] += wc[corner];
        }
    }
}

/// AoS mirror of [`accumulate_sorted_block`]: run-walks `icell` through the
/// particle structs with the same register accumulator and one store per
/// run (the lane-blocked tree reduction needs contiguous offset slices, so
/// the AoS form accumulates runs in struct order).
pub fn accumulate_sorted_block_aos(particles: &[Particle], rho4: &mut [[f64; 4]], w: f64) {
    let n = particles.len();
    let mut i = 0;
    while i < n {
        let c = particles[i].icell;
        let mut j = i + 1;
        while j < n && particles[j].icell == c {
            j += 1;
        }
        let cell = &mut rho4[c as usize];
        if j - i == 1 {
            let wc = corner_weights(particles[i].dx, particles[i].dy, w);
            for corner in 0..4 {
                cell[corner] += wc[corner];
            }
        } else {
            let mut acc = [0.0f64; 4];
            for p in &particles[i..j] {
                let wc = corner_weights(p.dx, p.dy, w);
                for corner in 0..4 {
                    acc[corner] += wc[corner];
                }
            }
            for corner in 0..4 {
                cell[corner] += acc[corner];
            }
        }
        i = j;
    }
}

/// The AoS deposit kernel for a [`DepositPath`] (the AoS pipeline has no
/// lane-blocked exact variant, so `Exact` is the scalar struct loop).
pub fn select_kernel_aos(path: DepositPath) -> DepositFnAos {
    match path {
        DepositPath::Exact => super::aos::accumulate_redundant_aos_slice,
        DepositPath::LaneReduce => accumulate_lane_reduce_aos,
        DepositPath::SortedBlock => accumulate_sorted_block_aos,
    }
}

#[cfg(test)]
mod tests {
    use super::super::accumulate::accumulate_redundant;
    use super::*;
    use crate::particles::ParticlesSoA;
    use crate::rng::Rng;

    const EDGE_COUNTS: [usize; 8] = [0, 1, 7, 8, 9, 64, 1000, 1003];

    /// Random population over `ncells` cells; `sorted` controls whether the
    /// cell indices come out in nondecreasing order (long runs) or shuffled.
    fn mk(n: usize, ncells: usize, sorted: bool, seed: u64) -> ParticlesSoA {
        let mut rng = Rng::seed_from_u64(seed);
        let mut p = ParticlesSoA::zeroed(n);
        for i in 0..n {
            p.icell[i] = rng.below(ncells as u64) as u32;
            p.dx[i] = rng.uniform();
            p.dy[i] = rng.uniform();
        }
        if sorted {
            let mut idx: Vec<usize> = (0..n).collect();
            idx.sort_by_key(|&i| p.icell[i]);
            let mut q = ParticlesSoA::zeroed(n);
            for (to, &from) in idx.iter().enumerate() {
                q.icell[to] = p.icell[from];
                q.dx[to] = p.dx[from];
                q.dy[to] = p.dy[from];
            }
            q
        } else {
            p
        }
    }

    fn scalar_rho(p: &ParticlesSoA, ncells: usize, w: f64) -> Vec<[f64; 4]> {
        let mut rho = vec![[0.0f64; 4]; ncells];
        accumulate_redundant(&p.icell, &p.dx, &p.dy, &mut rho, w);
        rho
    }

    /// Per-cell reassociation bound: `4 k² ε |w|` with `k` the cell's
    /// particle count (each ordering of a `k`-term sum of terms bounded by
    /// `|w|` carries error ≤ (k−1)·ε·k·|w|; doubling covers both sides).
    fn assert_within_cell_bound(got: &[[f64; 4]], want: &[[f64; 4]], icell: &[u32], w: f64) {
        let mut counts = vec![0usize; want.len()];
        for &c in icell {
            counts[c as usize] += 1;
        }
        for (cell, (a, b)) in got.iter().zip(want).enumerate() {
            let k = counts[cell] as f64;
            let bound = 4.0 * k * k * f64::EPSILON * w.abs();
            for corner in 0..4 {
                let d = (a[corner] - b[corner]).abs();
                assert!(
                    d <= bound,
                    "cell {cell} corner {corner}: |{} - {}| = {d} > {bound} (k={k})",
                    a[corner],
                    b[corner]
                );
            }
        }
    }

    #[test]
    fn deposit_tail_is_the_scalar_kernel() {
        let p = mk(1003, 64, false, 7);
        let mut a = vec![[0.0f64; 4]; 64];
        let mut b = vec![[0.0f64; 4]; 64];
        deposit_tail(&p.icell, &p.dx, &p.dy, &mut a, 1.5);
        accumulate_redundant(&p.icell, &p.dx, &p.dy, &mut b, 1.5);
        for (x, y) in a.iter().zip(&b) {
            for corner in 0..4 {
                assert_eq!(x[corner].to_bits(), y[corner].to_bits());
            }
        }
    }

    #[test]
    fn reassociated_paths_within_bound_all_orderings() {
        for &n in &EDGE_COUNTS {
            for sorted in [false, true] {
                let p = mk(n, 32, sorted, 0xC0FFEE ^ n as u64);
                let want = scalar_rho(&p, 32, 0.75);
                for kernel in [accumulate_lane_reduce, accumulate_sorted_block] {
                    let mut got = vec![[0.0f64; 4]; 32];
                    kernel(&p.icell, &p.dx, &p.dy, &mut got, 0.75);
                    assert_within_cell_bound(&got, &want, &p.icell, 0.75);
                }
            }
        }
    }

    #[test]
    fn reassociated_paths_are_deterministic() {
        let p = mk(1003, 32, true, 99);
        for kernel in [accumulate_lane_reduce, accumulate_sorted_block] {
            let mut a = vec![[0.0f64; 4]; 32];
            let mut b = vec![[0.0f64; 4]; 32];
            kernel(&p.icell, &p.dx, &p.dy, &mut a, 1.0);
            kernel(&p.icell, &p.dx, &p.dy, &mut b, 1.0);
            for (x, y) in a.iter().zip(&b) {
                for corner in 0..4 {
                    assert_eq!(x[corner].to_bits(), y[corner].to_bits());
                }
            }
        }
    }

    #[test]
    fn kernels_add_to_existing_content() {
        let p = mk(100, 16, true, 3);
        for kernel in [accumulate_lane_reduce, accumulate_sorted_block] {
            let mut rho = vec![[0.0f64; 4]; 16];
            rho[3][1] = 5.0;
            kernel(&p.icell, &p.dx, &p.dy, &mut rho, 1.0);
            let total: f64 = rho.iter().flat_map(|c| c.iter()).sum();
            assert!((total - 105.0).abs() < 1e-9, "total {total}");
        }
    }

    #[test]
    fn aos_mirrors_match_soa_kernels_bitwise() {
        // Same ordering, same arithmetic: the AoS mirrors must reproduce
        // their SoA kernels bit-for-bit, not just within the bound.
        for &n in &EDGE_COUNTS {
            for sorted in [false, true] {
                let p = mk(n, 32, sorted, 0xA05 ^ n as u64);
                let aos = p.to_aos();
                // SortedBlock's SoA form tree-reduces full lane blocks,
                // which the struct-order AoS walk cannot reproduce
                // bit-for-bit — hold that pair to the bound instead.
                let pairs: [(DepositFn, DepositFnAos, bool); 2] = [
                    (accumulate_lane_reduce, accumulate_lane_reduce_aos, true),
                    (accumulate_sorted_block, accumulate_sorted_block_aos, false),
                ];
                for (soa_k, aos_k, bitwise) in pairs {
                    let mut a = vec![[0.0f64; 4]; 32];
                    let mut b = vec![[0.0f64; 4]; 32];
                    soa_k(&p.icell, &p.dx, &p.dy, &mut a, 2.0);
                    aos_k(&aos.p, &mut b, 2.0);
                    if bitwise {
                        for (cell, (x, y)) in a.iter().zip(&b).enumerate() {
                            for corner in 0..4 {
                                assert_eq!(
                                    x[corner].to_bits(),
                                    y[corner].to_bits(),
                                    "n={n} sorted={sorted} cell={cell}"
                                );
                            }
                        }
                    }
                    assert_within_cell_bound(&b, &a, &p.icell, 2.0);
                }
            }
        }
    }

    #[test]
    fn select_kernel_exact_is_bit_identical_to_scalar() {
        let p = mk(1003, 32, true, 11);
        let want = scalar_rho(&p, 32, 1.0);
        for kp in [KernelPath::Scalar, KernelPath::Lanes] {
            let mut got = vec![[0.0f64; 4]; 32];
            select_kernel(DepositPath::Exact, kp)(&p.icell, &p.dx, &p.dy, &mut got, 1.0);
            for (a, b) in got.iter().zip(&want) {
                for corner in 0..4 {
                    assert_eq!(a[corner].to_bits(), b[corner].to_bits(), "{kp:?}");
                }
            }
        }
    }
}
