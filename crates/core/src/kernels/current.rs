//! Vectorized current deposition for the 2d3v multi-species path: the
//! charge-deposit machinery of [`super::deposit`] generalized from one
//! scalar (`ρ`) to the three components of **J**, following the portable
//! SIMD charge/current deposition of Vincenti et al. (arXiv:1601.02056).
//!
//! Each particle contributes `w·v` to the four CIC corners of its cell,
//! stored as one contiguous `[f64; 12]` row per cell
//! (`[Jx₀..Jx₃, Jy₀..Jy₃, Jz₀..Jz₃]`, [`crate::fields::RedundantJ`]). The
//! kernel variants mirror the charge deposit one-for-one and share its
//! [`DepositPath`] knob:
//!
//! * `Exact` — per-particle read-modify-write in input order; the scalar
//!   and lane-blocked forms are bit-identical (the lane form only batches
//!   the row computation, never the scatter).
//! * `LaneReduce` — per-lane private rows, a 12-wide transposed tree
//!   reduction for uniform (single-cell) blocks, exact-order scatter for
//!   mixed blocks.
//! * `SortedBlock` — register accumulation over `icell` runs with one
//!   store per run.
//!
//! The reassociated paths differ from scalar by the same per-cell bound as
//! the charge deposit with `|w|` replaced by the largest per-particle
//! contribution magnitude: with `k` particles in a cell, every component
//! of every corner agrees with scalar to within `4 k² ε max_i |w·v_i|`
//! (DESIGN.md §16).

// SoA kernels take one slice per particle field by design, matching the
// sibling deposit kernels.
#![allow(clippy::too_many_arguments)]

use super::deposit::{corner_weights, DepositPath};
use crate::sim::KernelPath;

pub use super::simd::LANES;

/// SoA current-deposit kernel signature shared by every variant:
/// `(icell, dx, dy, vx, vy, vz, j12, w)`.
pub type CurrentFn = fn(&[u32], &[f64], &[f64], &[f64], &[f64], &[f64], &mut [[f64; 12]], f64);

/// One particle's 12-double current row: the CIC corner weights times each
/// velocity component, in the exact expression order every variant shares.
#[inline(always)]
pub fn current_row(odx: f64, ody: f64, vx: f64, vy: f64, vz: f64, w: f64) -> [f64; 12] {
    let wc = corner_weights(odx, ody, w);
    let mut r = [0.0f64; 12];
    for corner in 0..4 {
        r[corner] = wc[corner] * vx;
        r[4 + corner] = wc[corner] * vy;
        r[8 + corner] = wc[corner] * vz;
    }
    r
}

/// Scalar-order current deposit: the reference kernel body and the shared
/// `n mod LANES` tail for the blocked variants.
#[inline]
pub fn deposit_current_tail(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &[f64],
    vy: &[f64],
    vz: &[f64],
    j12: &mut [[f64; 12]],
    w: f64,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n && vz.len() == n);
    for i in 0..n {
        let cell = &mut j12[icell[i] as usize];
        let r = current_row(dx[i], dy[i], vx[i], vy[i], vz[i], w);
        for k in 0..12 {
            cell[k] += r[k];
        }
    }
}

/// Lane-blocked exact deposit: computes a block of [`LANES`] rows in one
/// straight-line pass, then scatters per lane in particle order —
/// bit-identical to [`deposit_current_tail`].
pub fn deposit_current_lanes(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &[f64],
    vy: &[f64],
    vz: &[f64],
    j12: &mut [[f64; 12]],
    w: f64,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n && vz.len() == n);
    let main = n - n % LANES;
    let mut o = 0;
    while o < main {
        let bc = super::simd::block(icell, o);
        let bdx = super::simd::block(dx, o);
        let bdy = super::simd::block(dy, o);
        let bvx = super::simd::block(vx, o);
        let bvy = super::simd::block(vy, o);
        let bvz = super::simd::block(vz, o);
        let mut rows = [[0.0f64; 12]; LANES];
        for l in 0..LANES {
            rows[l] = current_row(bdx[l], bdy[l], bvx[l], bvy[l], bvz[l], w);
        }
        for l in 0..LANES {
            let cell = &mut j12[bc[l] as usize];
            for k in 0..12 {
                cell[k] += rows[l][k];
            }
        }
        o += LANES;
    }
    deposit_current_tail(
        &icell[main..],
        &dx[main..],
        &dy[main..],
        &vx[main..],
        &vy[main..],
        &vz[main..],
        j12,
        w,
    );
}

/// Pairwise tree reduction of the `LANES` private current rows into `acc`
/// (8 → 4 → 2 → 1) — the 12-wide counterpart of the charge deposit's
/// `tree_sum_rows`. Consumes `rows` as scratch.
#[inline(always)]
fn tree_sum_rows12(rows: &mut [[f64; 12]; LANES], acc: &mut [f64; 12]) {
    let (lo4, hi4) = rows.split_at_mut(4);
    for (a, b) in lo4.iter_mut().zip(hi4.iter()) {
        for k in 0..12 {
            a[k] += b[k];
        }
    }
    let (lo2, hi2) = lo4.split_at_mut(2);
    for (a, b) in lo2.iter_mut().zip(hi2.iter()) {
        for k in 0..12 {
            a[k] += b[k];
        }
    }
    for k in 0..12 {
        acc[k] += lo2[0][k] + lo2[1][k];
    }
}

/// Compute one full lane block of current rows and tree-reduce into `acc`.
#[inline(always)]
fn tree_reduce_current_block(
    bdx: &[f64; LANES],
    bdy: &[f64; LANES],
    bvx: &[f64; LANES],
    bvy: &[f64; LANES],
    bvz: &[f64; LANES],
    w: f64,
    acc: &mut [f64; 12],
) {
    let mut rows = [[0.0f64; 12]; LANES];
    for l in 0..LANES {
        rows[l] = current_row(bdx[l], bdy[l], bvx[l], bvy[l], bvz[l], w);
    }
    tree_sum_rows12(&mut rows, acc);
}

/// Per-lane private-J deposition with transposed lane-reduction: uniform
/// blocks (sorted input) collapse to one read-modify-write of the `j12`
/// row per block, mixed blocks scatter per lane in exact order — the same
/// branchless uniformity fold as the charge deposit.
pub fn deposit_current_lane_reduce(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &[f64],
    vy: &[f64],
    vz: &[f64],
    j12: &mut [[f64; 12]],
    w: f64,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n && vz.len() == n);
    let main = n - n % LANES;
    let mut o = 0;
    while o < main {
        let bc = super::simd::block(icell, o);
        let bdx = super::simd::block(dx, o);
        let bdy = super::simd::block(dy, o);
        let bvx = super::simd::block(vx, o);
        let bvy = super::simd::block(vy, o);
        let bvz = super::simd::block(vz, o);
        let c0 = bc[0];
        let mut uniform = true;
        for &c in &bc[1..] {
            uniform &= c == c0;
        }
        if uniform {
            let mut acc = [0.0f64; 12];
            tree_reduce_current_block(bdx, bdy, bvx, bvy, bvz, w, &mut acc);
            let cell = &mut j12[c0 as usize];
            for k in 0..12 {
                cell[k] += acc[k];
            }
        } else {
            let mut rows = [[0.0f64; 12]; LANES];
            for l in 0..LANES {
                rows[l] = current_row(bdx[l], bdy[l], bvx[l], bvy[l], bvz[l], w);
            }
            for l in 0..LANES {
                let cell = &mut j12[bc[l] as usize];
                for k in 0..12 {
                    cell[k] += rows[l][k];
                }
            }
        }
        o += LANES;
    }
    deposit_current_tail(
        &icell[main..],
        &dx[main..],
        &dy[main..],
        &vx[main..],
        &vy[main..],
        &vz[main..],
        j12,
        w,
    );
}

/// Sorted-batch register deposition over `icell` runs: accumulate each run
/// into a register-resident `[f64; 12]` — full lane blocks through the
/// tree reduction, the remainder in scalar order — and issue one store per
/// run. Correct on any ordering.
pub fn deposit_current_sorted_block(
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &[f64],
    vy: &[f64],
    vz: &[f64],
    j12: &mut [[f64; 12]],
    w: f64,
) {
    let n = icell.len();
    assert!(dx.len() == n && dy.len() == n && vx.len() == n && vy.len() == n && vz.len() == n);
    let mut i = 0;
    while i < n {
        let c = icell[i];
        let mut j = i + 1;
        while j < n && icell[j] == c {
            j += 1;
        }
        let cell = &mut j12[c as usize];
        if j - i == 1 {
            let r = current_row(dx[i], dy[i], vx[i], vy[i], vz[i], w);
            for k in 0..12 {
                cell[k] += r[k];
            }
        } else {
            let mut acc = [0.0f64; 12];
            let mut p = i;
            while p + LANES <= j {
                tree_reduce_current_block(
                    super::simd::block(dx, p),
                    super::simd::block(dy, p),
                    super::simd::block(vx, p),
                    super::simd::block(vy, p),
                    super::simd::block(vz, p),
                    w,
                    &mut acc,
                );
                p += LANES;
            }
            for q in p..j {
                let r = current_row(dx[q], dy[q], vx[q], vy[q], vz[q], w);
                for k in 0..12 {
                    acc[k] += r[k];
                }
            }
            for k in 0..12 {
                cell[k] += acc[k];
            }
        }
        i = j;
    }
}

/// The SoA current kernel for a `(DepositPath, KernelPath)` pair — the
/// single dispatch point, mirroring `deposit::select_kernel`.
pub fn select_current_kernel(path: DepositPath, kernel_path: KernelPath) -> CurrentFn {
    match (path, kernel_path) {
        (DepositPath::Exact, KernelPath::Scalar) => deposit_current_tail,
        (DepositPath::Exact, KernelPath::Lanes) => deposit_current_lanes,
        (DepositPath::LaneReduce, _) => deposit_current_lane_reduce,
        (DepositPath::SortedBlock, _) => deposit_current_sorted_block,
    }
}

/// Pooled current deposit with per-worker arenas and a deterministic
/// worker-order merge — the J counterpart of
/// `accumulate::pool_accumulate_redundant`.
pub fn pool_deposit_current(
    pool: &crate::pool::ThreadPool,
    icell: &[u32],
    dx: &[f64],
    dy: &[f64],
    vx: &[f64],
    vy: &[f64],
    vz: &[f64],
    out: &mut crate::fields::RedundantJ,
    arenas: &mut [crate::fields::RedundantJ],
    w: f64,
    path: DepositPath,
    kernel_path: KernelPath,
) {
    let kernel = select_current_kernel(path, kernel_path);
    let nw = pool.nthreads();
    let n = icell.len();
    if nw == 1 || n == 0 {
        kernel(icell, dx, dy, vx, vy, vz, &mut out.j12, w);
        return;
    }
    assert!(
        arenas.len() >= nw,
        "pool_deposit_current: {} arenas for {nw} workers",
        arenas.len()
    );
    pool.run_items(&mut arenas[..nw], |worker, arena| {
        let (s, e) = crate::pool::chunk_range(n, nw, worker);
        arena.clear();
        kernel(
            &icell[s..e],
            &dx[s..e],
            &dy[s..e],
            &vx[s..e],
            &vy[s..e],
            &vz[s..e],
            &mut arena.j12,
            w,
        );
    });
    for arena in &arenas[..nw] {
        out.add_assign(arena);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize, ncells: usize, sorted: bool) -> (Vec<u32>, [Vec<f64>; 5]) {
        let mut rng = crate::rng::Rng::seed_from_u64(11);
        let mut icell: Vec<u32> = (0..n)
            .map(|_| (rng.uniform() * ncells as f64) as u32)
            .collect();
        if sorted {
            icell.sort_unstable();
        }
        let f = |rng: &mut crate::rng::Rng| (0..n).map(|_| rng.uniform()).collect::<Vec<_>>();
        let dx = f(&mut rng);
        let dy = f(&mut rng);
        let v = |rng: &mut crate::rng::Rng| (0..n).map(|_| rng.normal()).collect::<Vec<_>>();
        (icell, [dx, dy, v(&mut rng), v(&mut rng), v(&mut rng)])
    }

    #[test]
    fn exact_lanes_bit_identical_to_scalar() {
        for sorted in [false, true] {
            let (icell, [dx, dy, vx, vy, vz]) = mk(1003, 32, sorted);
            let mut a = vec![[0.0f64; 12]; 32];
            let mut b = vec![[0.0f64; 12]; 32];
            deposit_current_tail(&icell, &dx, &dy, &vx, &vy, &vz, &mut a, 0.37);
            deposit_current_lanes(&icell, &dx, &dy, &vx, &vy, &vz, &mut b, 0.37);
            assert_eq!(a, b, "sorted={sorted}");
        }
    }

    #[test]
    fn reassociated_paths_within_bound() {
        for sorted in [false, true] {
            let (icell, [dx, dy, vx, vy, vz]) = mk(4096, 16, sorted);
            let w = 0.5;
            let mut reference = vec![[0.0f64; 12]; 16];
            deposit_current_tail(&icell, &dx, &dy, &vx, &vy, &vz, &mut reference, w);
            // Per-cell particle counts and max contribution magnitude.
            let mut k = [0usize; 16];
            let mut vmax = [0.0f64; 16];
            for i in 0..icell.len() {
                let c = icell[i] as usize;
                k[c] += 1;
                let m = vx[i].abs().max(vy[i].abs()).max(vz[i].abs());
                vmax[c] = vmax[c].max(m);
            }
            for kernel in [deposit_current_lane_reduce, deposit_current_sorted_block] {
                let mut got = vec![[0.0f64; 12]; 16];
                kernel(&icell, &dx, &dy, &vx, &vy, &vz, &mut got, w);
                for c in 0..16 {
                    let bound =
                        4.0 * (k[c] as f64).powi(2) * f64::EPSILON * (w * vmax[c]).abs() + 1e-300;
                    for comp in 0..12 {
                        let err = (got[c][comp] - reference[c][comp]).abs();
                        assert!(err <= bound, "cell {c} comp {comp}: {err:e} > {bound:e}");
                    }
                }
            }
        }
    }

    #[test]
    fn total_current_conserved_across_paths() {
        let (icell, [dx, dy, vx, vy, vz]) = mk(2048, 64, true);
        let w = 1.25;
        let sum_vx: f64 = vx.iter().sum::<f64>() * w;
        for kernel in [
            deposit_current_tail as CurrentFn,
            deposit_current_lanes,
            deposit_current_lane_reduce,
            deposit_current_sorted_block,
        ] {
            let mut j12 = vec![[0.0f64; 12]; 64];
            kernel(&icell, &dx, &dy, &vx, &vy, &vz, &mut j12, w);
            let total_jx: f64 = j12.iter().map(|r| r[..4].iter().sum::<f64>()).sum();
            assert!(
                (total_jx - sum_vx).abs() < 1e-9 * sum_vx.abs().max(1.0),
                "{total_jx} vs {sum_vx}"
            );
        }
    }
}
