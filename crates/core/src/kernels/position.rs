//! The update-positions loop in the paper's three shapes (§IV-C).
//!
//! A particle's position is `x = ix + dx` in grid units. The push adds the
//! (grid-unit) velocity, wraps periodically, and re-splits into
//! `(cell, offset)`:
//!
//! 1. [`update_positions_naive_if`] — test `if (x < 0 || x >= ncx)` and call
//!    a real-valued modulo, plus `floor()`: branches and a libm call, the
//!    shape compilers refuse to vectorize (GNU) or vectorize poorly (Intel);
//! 2. [`update_positions_modulo`] — unconditional integer modulo
//!    (`rem_euclid`): branch-free but still an integer division when the
//!    divisor is not known;
//! 3. [`update_positions_branchless`] — the paper's final form: floor by
//!    int-cast minus sign bit, wrap by bitwise AND with `nc − 1` (grid dims
//!    are powers of two). Pure straight-line arithmetic, auto-vectorizable.
//!
//! Each shape has a row-major variant (recomputes `icell = ix·ncy + iy`
//! directly — no per-particle `(ix, iy)` needed) and a layout-generic
//! variant (updates the stored `(ix, iy)` and calls `layout.encode`,
//! monomorphized — the “3 extra seconds” of Table III).

// SoA kernels take one slice per particle field by design; bundling them
// into a struct would obscure the loop shapes the paper compares.
#![allow(clippy::too_many_arguments)]

use crate::par;
use sfc::CellLayout;

/// Reference modulo over the reals (paper §IV-C2 footnote):
/// the unique value in `[0, b)` congruent to `a`.
#[inline]
pub fn modulo_real(a: f64, b: f64) -> f64 {
    a - (a / b).floor() * b
}

/// Shape 1: `if` + real modulo + `floor()` call. Row-major cell indexing.
pub fn update_positions_naive_if(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &[f64],
    vy: &[f64],
    ncx: usize,
    ncy: usize,
    scale: f64,
) {
    let n = icell.len();
    let (fx, fy) = (ncx as f64, ncy as f64);
    for i in 0..n {
        let mut x = ix[i] as f64 + dx[i] + vx[i] * scale;
        let mut y = iy[i] as f64 + dy[i] + vy[i] * scale;
        if x < 0.0 || x >= fx {
            x = modulo_real(x, fx);
        }
        if y < 0.0 || y >= fy {
            y = modulo_real(y, fy);
        }
        let cx = x.floor();
        let cy = y.floor();
        dx[i] = x - cx;
        dy[i] = y - cy;
        // Guard the x == fx-ε rounding edge: floor may round up to fx.
        let cix = (cx as usize).min(ncx - 1);
        let ciy = (cy as usize).min(ncy - 1);
        ix[i] = cix as u32;
        iy[i] = ciy as u32;
        icell[i] = (cix * ncy + ciy) as u32;
    }
}

/// Shape 2: unconditional integer modulo (`rem_euclid`), no inside test.
pub fn update_positions_modulo(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &[f64],
    vy: &[f64],
    ncx: usize,
    ncy: usize,
    scale: f64,
) {
    let n = icell.len();
    for i in 0..n {
        let x = ix[i] as f64 + dx[i] + vx[i] * scale;
        let y = iy[i] as f64 + dy[i] + vy[i] * scale;
        let fx = x.floor();
        let fy = y.floor();
        let cx = (fx as i64).rem_euclid(ncx as i64) as usize;
        let cy = (fy as i64).rem_euclid(ncy as i64) as usize;
        dx[i] = x - fx;
        dy[i] = y - fy;
        ix[i] = cx as u32;
        iy[i] = cy as u32;
        icell[i] = (cx * ncy + cy) as u32;
    }
}

/// Shape 3 (the paper's optimized form), row-major indexing:
/// branchless floor + bitwise wrap, straight-line arithmetic throughout.
pub fn update_positions_branchless(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &[f64],
    vy: &[f64],
    ncx: usize,
    ncy: usize,
    scale: f64,
) {
    debug_assert!(ncx.is_power_of_two() && ncy.is_power_of_two());
    let n = icell.len();
    let mx = ncx as i64 - 1;
    let my = ncy as i64 - 1;
    for i in 0..n {
        let x = ix[i] as f64 + dx[i] + vx[i] * scale;
        let y = iy[i] as f64 + dy[i] + vy[i] * scale;
        // floor(x) = (int)x − (x < 0): exact unless x is a negative integer,
        // which has measure zero for PIC positions (paper §IV-C3).
        let fx = (x as i64) - i64::from(x < 0.0);
        let fy = (y as i64) - i64::from(y < 0.0);
        let cx = (fx & mx) as usize;
        let cy = (fy & my) as usize;
        dx[i] = x - fx as f64;
        dy[i] = y - fy as f64;
        ix[i] = cx as u32;
        iy[i] = cy as u32;
        icell[i] = (cx * ncy + cy) as u32;
    }
}

/// Shape 3 under an arbitrary layout: same branchless arithmetic, then the
/// (monomorphized) `layout.encode` — the extra work Table III charges to
/// the L4D/Morton/Hilbert orderings.
pub fn update_positions_branchless_layout<L: CellLayout>(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &[f64],
    vy: &[f64],
    layout: &L,
    scale: f64,
) {
    let (ncx, ncy) = (layout.ncx(), layout.ncy());
    debug_assert!(ncx.is_power_of_two() && ncy.is_power_of_two());
    let n = icell.len();
    let mx = ncx as i64 - 1;
    let my = ncy as i64 - 1;
    for i in 0..n {
        let x = ix[i] as f64 + dx[i] + vx[i] * scale;
        let y = iy[i] as f64 + dy[i] + vy[i] * scale;
        let fx = (x as i64) - i64::from(x < 0.0);
        let fy = (y as i64) - i64::from(y < 0.0);
        let cx = (fx & mx) as usize;
        let cy = (fy & my) as usize;
        dx[i] = x - fx as f64;
        dy[i] = y - fy as f64;
        ix[i] = cx as u32;
        iy[i] = cy as u32;
        icell[i] = layout.encode(cx, cy) as u32;
    }
}

/// Naive-if shape under an arbitrary layout (for the Table III Hilbert row).
pub fn update_positions_naive_if_layout<L: CellLayout>(
    icell: &mut [u32],
    ix: &mut [u32],
    iy: &mut [u32],
    dx: &mut [f64],
    dy: &mut [f64],
    vx: &[f64],
    vy: &[f64],
    layout: &L,
    scale: f64,
) {
    let (ncx, ncy) = (layout.ncx(), layout.ncy());
    let n = icell.len();
    let (fxm, fym) = (ncx as f64, ncy as f64);
    for i in 0..n {
        let mut x = ix[i] as f64 + dx[i] + vx[i] * scale;
        let mut y = iy[i] as f64 + dy[i] + vy[i] * scale;
        if x < 0.0 || x >= fxm {
            x = modulo_real(x, fxm);
        }
        if y < 0.0 || y >= fym {
            y = modulo_real(y, fym);
        }
        let cx = (x.floor() as usize).min(ncx - 1);
        let cy = (y.floor() as usize).min(ncy - 1);
        dx[i] = x - x.floor();
        dy[i] = y - y.floor();
        ix[i] = cx as u32;
        iy[i] = cy as u32;
        icell[i] = layout.encode(cx, cy) as u32;
    }
}

/// Thread-parallel branchless row-major push.
pub fn par_update_positions_branchless(
    p: &mut crate::particles::ParticlesSoA,
    ncx: usize,
    ncy: usize,
    scale: f64,
    nchunks: usize,
) {
    let views = super::split_soa_mut(p, nchunks);
    par::for_each(views, |v| {
        update_positions_branchless(v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, ncx, ncy, scale);
    });
}

/// Thread-parallel branchless layout-generic push.
pub fn par_update_positions_branchless_layout<L: CellLayout>(
    p: &mut crate::particles::ParticlesSoA,
    layout: &L,
    scale: f64,
    nchunks: usize,
) {
    let views = super::split_soa_mut(p, nchunks);
    par::for_each(views, |v| {
        update_positions_branchless_layout(
            v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, layout, scale,
        );
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc::{Morton, RowMajor};

    fn mk(n: usize, ncx: usize, ncy: usize) -> crate::particles::ParticlesSoA {
        let mut p = crate::particles::ParticlesSoA::zeroed(n);
        for i in 0..n {
            let cx = (i * 5) % ncx;
            let cy = (i * 11) % ncy;
            p.ix[i] = cx as u32;
            p.iy[i] = cy as u32;
            p.icell[i] = (cx * ncy + cy) as u32;
            p.dx[i] = ((i * 29) % 97) as f64 / 97.0;
            p.dy[i] = ((i * 43) % 89) as f64 / 89.0;
            // Velocities spanning multiple cells in both directions,
            // including the "crosses more than one cell" general case.
            p.vx[i] = ((i % 13) as f64 - 6.0) * 0.7;
            p.vy[i] = ((i % 17) as f64 - 8.0) * 0.9;
        }
        p
    }

    fn assert_same(a: &crate::particles::ParticlesSoA, b: &crate::particles::ParticlesSoA) {
        assert_eq!(a.icell, b.icell);
        assert_eq!(a.ix, b.ix);
        assert_eq!(a.iy, b.iy);
        for i in 0..a.len() {
            assert!((a.dx[i] - b.dx[i]).abs() < 1e-12, "dx i={i}");
            assert!((a.dy[i] - b.dy[i]).abs() < 1e-12, "dy i={i}");
        }
    }

    #[test]
    fn all_three_shapes_agree() {
        let (ncx, ncy) = (16, 32);
        let base = mk(500, ncx, ncy);
        let mut a = base.clone();
        let mut b = base.clone();
        let mut c = base.clone();
        update_positions_naive_if(
            &mut a.icell,
            &mut a.ix,
            &mut a.iy,
            &mut a.dx,
            &mut a.dy,
            &a.vx.clone(),
            &a.vy.clone(),
            ncx,
            ncy,
            1.0,
        );
        update_positions_modulo(
            &mut b.icell,
            &mut b.ix,
            &mut b.iy,
            &mut b.dx,
            &mut b.dy,
            &b.vx.clone(),
            &b.vy.clone(),
            ncx,
            ncy,
            1.0,
        );
        update_positions_branchless(
            &mut c.icell,
            &mut c.ix,
            &mut c.iy,
            &mut c.dx,
            &mut c.dy,
            &c.vx.clone(),
            &c.vy.clone(),
            ncx,
            ncy,
            1.0,
        );
        assert_same(&a, &b);
        assert_same(&a, &c);
    }

    #[test]
    fn results_stay_in_range() {
        let (ncx, ncy) = (8, 8);
        let mut p = mk(300, ncx, ncy);
        let (vx, vy) = (p.vx.clone(), p.vy.clone());
        update_positions_branchless(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &vx,
            &vy,
            ncx,
            ncy,
            1.0,
        );
        for i in 0..p.len() {
            assert!((p.ix[i] as usize) < ncx);
            assert!((p.iy[i] as usize) < ncy);
            assert!((0.0..1.0).contains(&p.dx[i]), "dx {}", p.dx[i]);
            assert!((0.0..1.0).contains(&p.dy[i]), "dy {}", p.dy[i]);
            assert_eq!(
                p.icell[i] as usize,
                p.ix[i] as usize * ncy + p.iy[i] as usize
            );
        }
    }

    #[test]
    fn periodic_wrap_is_exact() {
        // One particle at cell 7 + 0.5 moving +1.0 cells wraps to cell 0.
        let mut p = crate::particles::ParticlesSoA::zeroed(2);
        p.ix[0] = 7;
        p.dx[0] = 0.5;
        p.vx[0] = 1.0;
        // And one at cell 0 + 0.25 moving −1.0 wraps to cell 7.
        p.ix[1] = 0;
        p.dx[1] = 0.25;
        p.vx[1] = -1.0;
        let (vx, vy) = (p.vx.clone(), p.vy.clone());
        update_positions_branchless(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &vx,
            &vy,
            8,
            8,
            1.0,
        );
        assert_eq!(p.ix[0], 0);
        assert!((p.dx[0] - 0.5).abs() < 1e-14);
        assert_eq!(p.ix[1], 7);
        assert!((p.dx[1] - 0.25).abs() < 1e-14);
    }

    #[test]
    fn multi_cell_crossing() {
        // The general case the paper insists on: moving 3.75 cells at once.
        let mut p = crate::particles::ParticlesSoA::zeroed(1);
        p.ix[0] = 6;
        p.dx[0] = 0.5;
        p.vx[0] = 3.75; // x: 6.5 → 10.25 → cell 2, offset 0.25 (mod 8)
        let (vx, vy) = (p.vx.clone(), p.vy.clone());
        update_positions_branchless(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &vx,
            &vy,
            8,
            8,
            1.0,
        );
        assert_eq!(p.ix[0], 2);
        assert!((p.dx[0] - 0.25).abs() < 1e-12);
    }

    #[test]
    fn scale_factor_applies() {
        // Unhoisted path: physical v = 4, scale = Δt/Δx = 0.25 → 1 cell.
        let mut p = crate::particles::ParticlesSoA::zeroed(1);
        p.vx[0] = 4.0;
        let (vx, vy) = (p.vx.clone(), p.vy.clone());
        update_positions_branchless(
            &mut p.icell,
            &mut p.ix,
            &mut p.iy,
            &mut p.dx,
            &mut p.dy,
            &vx,
            &vy,
            8,
            8,
            0.25,
        );
        assert_eq!(p.ix[0], 1);
        assert_eq!(p.dx[0], 0.0);
    }

    #[test]
    fn layout_variant_matches_rowmajor_then_reencodes() {
        let (ncx, ncy) = (16, 16);
        let base = mk(400, ncx, ncy);
        let mo = Morton::new(ncx, ncy).unwrap();
        let rm = RowMajor::new(ncx, ncy).unwrap();

        let mut a = base.clone();
        let (vx, vy) = (a.vx.clone(), a.vy.clone());
        update_positions_branchless_layout(
            &mut a.icell,
            &mut a.ix,
            &mut a.iy,
            &mut a.dx,
            &mut a.dy,
            &vx,
            &vy,
            &mo,
            1.0,
        );
        let mut b = base.clone();
        update_positions_branchless(
            &mut b.icell,
            &mut b.ix,
            &mut b.iy,
            &mut b.dx,
            &mut b.dy,
            &vx,
            &vy,
            ncx,
            ncy,
            1.0,
        );
        // Same geometry; icell differs by the layout bijection only.
        assert_eq!(a.ix, b.ix);
        assert_eq!(a.iy, b.iy);
        for i in 0..a.len() {
            assert_eq!(
                a.icell[i] as usize,
                mo.encode(a.ix[i] as usize, a.iy[i] as usize)
            );
            assert_eq!(
                b.icell[i] as usize,
                rm.encode(b.ix[i] as usize, b.iy[i] as usize)
            );
        }
    }

    #[test]
    fn naive_layout_variant_agrees_with_branchless_layout() {
        let (ncx, ncy) = (32, 32);
        let base = mk(300, ncx, ncy);
        let mo = Morton::new(ncx, ncy).unwrap();
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        let mut a = base.clone();
        update_positions_naive_if_layout(
            &mut a.icell,
            &mut a.ix,
            &mut a.iy,
            &mut a.dx,
            &mut a.dy,
            &vx,
            &vy,
            &mo,
            1.0,
        );
        let mut b = base.clone();
        update_positions_branchless_layout(
            &mut b.icell,
            &mut b.ix,
            &mut b.iy,
            &mut b.dx,
            &mut b.dy,
            &vx,
            &vy,
            &mo,
            1.0,
        );
        assert_eq!(a.icell, b.icell);
        for i in 0..a.len() {
            assert!((a.dx[i] - b.dx[i]).abs() < 1e-12);
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let (ncx, ncy) = (16, 16);
        let base = mk(5000, ncx, ncy);
        let mut a = base.clone();
        let mut b = base.clone();
        let (vx, vy) = (base.vx.clone(), base.vy.clone());
        update_positions_branchless(
            &mut a.icell,
            &mut a.ix,
            &mut a.iy,
            &mut a.dx,
            &mut a.dy,
            &vx,
            &vy,
            ncx,
            ncy,
            1.0,
        );
        par_update_positions_branchless(&mut b, ncx, ncy, 1.0, 8);
        assert_same(&a, &b);
    }

    #[test]
    fn modulo_real_reference() {
        assert_eq!(modulo_real(5.0, 8.0), 5.0);
        assert_eq!(modulo_real(8.5, 8.0), 0.5);
        assert_eq!(modulo_real(-0.5, 8.0), 7.5);
        assert_eq!(modulo_real(-16.25, 8.0), 7.75);
    }
}
