//! Particle storage — Array-of-Structures vs Structure-of-Arrays — and
//! initial distributions.
//!
//! Each particle is a cell index plus normalized in-cell offsets (paper §II)
//! and a velocity. The cell coordinates `(ix, iy)` are stored explicitly as
//! well: the non-row-major layouts need them to recompute `icell` after a
//! move (paper §IV-B, the “3 extra seconds” of Table III), while the
//! row-major kernels simply ignore those arrays.
//!
//! Velocities are stored in *grid units per time step* when the coefficient
//! hoisting of §IV-D is enabled (`v_stored = v_phys·Δt/Δx`), or in physical
//! units otherwise; [`crate::sim::Simulation`] owns that convention.

use crate::grid::Grid2D;
use crate::rng::Rng;
use sfc::CellLayout;

/// One particle, AoS form.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Particle {
    /// Flat cell index under the active layout.
    pub icell: u32,
    /// Cell x-coordinate.
    pub ix: u32,
    /// Cell y-coordinate.
    pub iy: u32,
    /// Offset within the cell along x, in `[0, 1)`.
    pub dx: f64,
    /// Offset within the cell along y, in `[0, 1)`.
    pub dy: f64,
    /// Velocity along x (units per the simulation's hoisting convention).
    pub vx: f64,
    /// Velocity along y.
    pub vy: f64,
}

/// Array-of-Structures storage (the paper's baseline particle layout).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParticlesAoS {
    /// The particles.
    pub p: Vec<Particle>,
}

/// Structure-of-Arrays storage (the layout that vectorizes, §IV-C1).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ParticlesSoA {
    /// Flat cell indices.
    pub icell: Vec<u32>,
    /// Cell x-coordinates.
    pub ix: Vec<u32>,
    /// Cell y-coordinates.
    pub iy: Vec<u32>,
    /// In-cell x offsets.
    pub dx: Vec<f64>,
    /// In-cell y offsets.
    pub dy: Vec<f64>,
    /// x velocities.
    pub vx: Vec<f64>,
    /// y velocities.
    pub vy: Vec<f64>,
}

impl ParticlesSoA {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.icell.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.icell.is_empty()
    }

    /// Allocate `n` zeroed particles.
    pub fn zeroed(n: usize) -> Self {
        Self {
            icell: vec![0; n],
            ix: vec![0; n],
            iy: vec![0; n],
            dx: vec![0.0; n],
            dy: vec![0.0; n],
            vx: vec![0.0; n],
            vy: vec![0.0; n],
        }
    }

    /// Extract particle `i` (test/diagnostic helper, not a kernel path).
    pub fn get(&self, i: usize) -> Particle {
        Particle {
            icell: self.icell[i],
            ix: self.ix[i],
            iy: self.iy[i],
            dx: self.dx[i],
            dy: self.dy[i],
            vx: self.vx[i],
            vy: self.vy[i],
        }
    }

    /// Store particle `i`.
    pub fn set(&mut self, i: usize, p: Particle) {
        self.icell[i] = p.icell;
        self.ix[i] = p.ix;
        self.iy[i] = p.iy;
        self.dx[i] = p.dx;
        self.dy[i] = p.dy;
        self.vx[i] = p.vx;
        self.vy[i] = p.vy;
    }

    /// Convert to AoS (for the layout-comparison harnesses).
    pub fn to_aos(&self) -> ParticlesAoS {
        ParticlesAoS {
            p: (0..self.len()).map(|i| self.get(i)).collect(),
        }
    }
}

impl ParticlesAoS {
    /// Number of particles.
    pub fn len(&self) -> usize {
        self.p.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.p.is_empty()
    }

    /// Convert to SoA.
    pub fn to_soa(&self) -> ParticlesSoA {
        let mut s = ParticlesSoA::zeroed(self.len());
        for (i, &p) in self.p.iter().enumerate() {
            s.set(i, p);
        }
        s
    }
}

/// The physical test cases of the paper (§IV: linear/nonlinear Landau
/// damping and the two-stream instability).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InitialDistribution {
    /// `f(x,v) ∝ (1 + α cos(k x)) exp(−|v|²/2)` — Landau damping.
    /// α = 0.01 is the linear regime, α = 0.5 the nonlinear one.
    Landau {
        /// Perturbation amplitude.
        alpha: f64,
        /// Perturbation wavenumber along x (the domain must satisfy
        /// `Lx = 2π/k ×` integer).
        k: f64,
    },
    /// Two counter-streaming beams: `f ∝ (1 + α cos(kx)) [δ-ish beams ±v0]`,
    /// Gaussian-broadened with thermal spread `vt`.
    TwoStream {
        /// Perturbation amplitude.
        alpha: f64,
        /// Perturbation wavenumber.
        k: f64,
        /// Beam drift speed.
        v0: f64,
        /// Thermal spread of each beam.
        vt: f64,
    },
    /// Spatially uniform Maxwellian (no perturbation) — useful for
    /// performance runs where physics is irrelevant.
    Uniform,
    /// A single drifting Maxwellian: density `∝ 1 + α cos(k x)`, mean
    /// x-velocity `v0x`, isotropic thermal spread `vt`. The building block
    /// for multi-species scenarios (beams, cold ion populations).
    DriftingMaxwellian {
        /// Perturbation amplitude.
        alpha: f64,
        /// Perturbation wavenumber along x.
        k: f64,
        /// Mean drift velocity along x.
        v0x: f64,
        /// Isotropic thermal spread.
        vt: f64,
    },
}

impl InitialDistribution {
    /// The thermal spread this distribution samples velocities with —
    /// used to sample out-of-plane `vz` consistently with the in-plane
    /// components in 2d3v runs.
    pub fn thermal_spread(&self) -> f64 {
        match *self {
            InitialDistribution::Landau { .. } | InitialDistribution::Uniform => 1.0,
            InitialDistribution::TwoStream { vt, .. } => vt,
            InitialDistribution::DriftingMaxwellian { vt, .. } => vt,
        }
    }
}

/// Rejection-sample x in `[0, lx)` with density `∝ 1 + α cos(k x)`.
fn sample_perturbed_x(rng: &mut Rng, lx: f64, alpha: f64, k: f64) -> f64 {
    debug_assert!(alpha.abs() <= 1.0);
    loop {
        let x = rng.range(0.0, lx);
        let accept = rng.range(0.0, 1.0 + alpha.abs());
        if accept <= 1.0 + alpha * (k * x).cos() {
            return x;
        }
    }
}

/// Create `n` particles sampled from `dist` on `grid`, velocities in
/// *physical* units, positions encoded under `layout`. Deterministic in
/// `seed`.
pub fn initialize(
    grid: &Grid2D,
    layout: &dyn CellLayout,
    dist: InitialDistribution,
    n: usize,
    seed: u64,
) -> ParticlesSoA {
    let mut rng = Rng::seed_from_u64(seed);
    initialize_with_rng(grid, layout, dist, n, &mut rng)
}

/// [`initialize`] with a caller-owned generator, so the caller can retain
/// (and checkpoint) the stream position after sampling.
pub fn initialize_with_rng(
    grid: &Grid2D,
    layout: &dyn CellLayout,
    dist: InitialDistribution,
    n: usize,
    rng: &mut Rng,
) -> ParticlesSoA {
    let mut out = ParticlesSoA::zeroed(n);
    for i in 0..n {
        let (x_phys, y_phys, vx, vy) = match dist {
            InitialDistribution::Landau { alpha, k } => {
                let x = sample_perturbed_x(rng, grid.lx, alpha, k);
                let y = rng.range(0.0, grid.ly);
                (x, y, rng.normal(), rng.normal())
            }
            InitialDistribution::TwoStream { alpha, k, v0, vt } => {
                let x = sample_perturbed_x(rng, grid.lx, alpha, k);
                let y = rng.range(0.0, grid.ly);
                let sign = if rng.coin() { 1.0 } else { -1.0 };
                (x, y, sign * v0 + vt * rng.normal(), vt * rng.normal())
            }
            InitialDistribution::Uniform => (
                rng.range(0.0, grid.lx),
                rng.range(0.0, grid.ly),
                rng.normal(),
                rng.normal(),
            ),
            InitialDistribution::DriftingMaxwellian { alpha, k, v0x, vt } => {
                let x = if alpha == 0.0 {
                    rng.range(0.0, grid.lx)
                } else {
                    sample_perturbed_x(rng, grid.lx, alpha, k)
                };
                let y = rng.range(0.0, grid.ly);
                (x, y, v0x + vt * rng.normal(), vt * rng.normal())
            }
        };
        let (cx, ox) = grid.split_x(grid.to_grid_x(x_phys));
        let (cy, oy) = grid.split_y(grid.to_grid_y(y_phys));
        out.icell[i] = layout.encode(cx, cy) as u32;
        out.ix[i] = cx as u32;
        out.iy[i] = cy as u32;
        out.dx[i] = ox;
        out.dy[i] = oy;
        out.vx[i] = vx;
        out.vy[i] = vy;
    }
    out
}

/// The macro-particle weight: each of the `n` markers carries
/// `w = n₀·Lx·Ly/n` physical particles, with unit background density n₀ = 1.
pub fn particle_weight(grid: &Grid2D, n: usize) -> f64 {
    grid.lx * grid.ly / n as f64
}

/// Re-encode `icell` for every particle under a new layout (used when a
/// harness switches orderings on the same particle set).
pub fn reencode(particles: &mut ParticlesSoA, layout: &dyn CellLayout) {
    for i in 0..particles.len() {
        particles.icell[i] =
            layout.encode(particles.ix[i] as usize, particles.iy[i] as usize) as u32;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc::RowMajor;

    fn grid() -> Grid2D {
        Grid2D::new(
            32,
            32,
            4.0 * std::f64::consts::PI,
            4.0 * std::f64::consts::PI,
        )
        .unwrap()
    }

    #[test]
    fn initialize_is_deterministic() {
        let g = grid();
        let l = RowMajor::new(32, 32).unwrap();
        let a = initialize(&g, &l, InitialDistribution::Uniform, 1000, 42);
        let b = initialize(&g, &l, InitialDistribution::Uniform, 1000, 42);
        assert_eq!(a.icell, b.icell);
        assert_eq!(a.dx, b.dx);
        assert_eq!(a.vx, b.vx);
        let c = initialize(&g, &l, InitialDistribution::Uniform, 1000, 43);
        assert_ne!(a.icell, c.icell);
    }

    #[test]
    fn offsets_and_cells_in_range() {
        let g = grid();
        let l = RowMajor::new(32, 32).unwrap();
        let p = initialize(
            &g,
            &l,
            InitialDistribution::Landau { alpha: 0.5, k: 0.5 },
            5000,
            1,
        );
        for i in 0..p.len() {
            assert!((p.ix[i] as usize) < 32);
            assert!((p.iy[i] as usize) < 32);
            assert!((0.0..1.0).contains(&p.dx[i]), "dx {}", p.dx[i]);
            assert!((0.0..1.0).contains(&p.dy[i]), "dy {}", p.dy[i]);
            assert_eq!(
                p.icell[i] as usize,
                l.encode(p.ix[i] as usize, p.iy[i] as usize)
            );
        }
    }

    #[test]
    fn landau_perturbation_shows_in_density() {
        // With α = 0.5, k = 0.5 on Lx = 4π: density at kx≈0 exceeds kx≈π.
        let g = grid();
        let l = RowMajor::new(32, 32).unwrap();
        let k = 0.5;
        let p = initialize(
            &g,
            &l,
            InitialDistribution::Landau { alpha: 0.5, k },
            200_000,
            7,
        );
        let mut crest = 0usize; // cells where cos(kx) > 0.7
        let mut trough = 0usize; // cells where cos(kx) < −0.7
        for i in 0..p.len() {
            let x_phys = (p.ix[i] as f64 + p.dx[i]) * g.dx();
            let c = (k * x_phys).cos();
            if c > 0.7 {
                crest += 1;
            } else if c < -0.7 {
                trough += 1;
            }
        }
        let ratio = crest as f64 / trough as f64;
        // Expected ratio ≈ mean(1+0.5c | c>0.7)/mean(1+0.5c | c<−0.7) ≈ 2.6.
        assert!(ratio > 2.0, "crest/trough ratio {ratio}");
    }

    #[test]
    fn maxwellian_moments() {
        let g = grid();
        let l = RowMajor::new(32, 32).unwrap();
        let p = initialize(&g, &l, InitialDistribution::Uniform, 100_000, 3);
        let n = p.len() as f64;
        let mean_vx: f64 = p.vx.iter().sum::<f64>() / n;
        let var_vx: f64 = p.vx.iter().map(|v| v * v).sum::<f64>() / n;
        assert!(mean_vx.abs() < 0.02, "mean vx {mean_vx}");
        assert!((var_vx - 1.0).abs() < 0.03, "var vx {var_vx}");
    }

    #[test]
    fn two_stream_is_bimodal() {
        let g = grid();
        let l = RowMajor::new(32, 32).unwrap();
        let p = initialize(
            &g,
            &l,
            InitialDistribution::TwoStream {
                alpha: 0.01,
                k: 0.5,
                v0: 3.0,
                vt: 0.3,
            },
            50_000,
            11,
        );
        let fast = p.vx.iter().filter(|v| v.abs() > 2.0).count();
        let slow = p.vx.iter().filter(|v| v.abs() < 1.0).count();
        assert!(fast > 45_000, "beams at ±3: {fast}");
        assert!(slow < 500, "little mass near v=0: {slow}");
        // Roughly half in each beam.
        let pos = p.vx.iter().filter(|&&v| v > 0.0).count() as f64 / p.len() as f64;
        assert!((pos - 0.5).abs() < 0.02);
    }

    #[test]
    fn weight_normalization() {
        let g = grid();
        let w = particle_weight(&g, 1000);
        assert!((w * 1000.0 - g.lx * g.ly).abs() < 1e-9);
    }

    #[test]
    fn aos_soa_roundtrip() {
        let g = grid();
        let l = RowMajor::new(32, 32).unwrap();
        let soa = initialize(&g, &l, InitialDistribution::Uniform, 100, 5);
        let aos = soa.to_aos();
        let back = aos.to_soa();
        assert_eq!(soa.icell, back.icell);
        assert_eq!(soa.dx, back.dx);
        assert_eq!(soa.vy, back.vy);
    }

    #[test]
    fn reencode_switches_layout() {
        let g = grid();
        let rm = RowMajor::new(32, 32).unwrap();
        let mo = sfc::Morton::new(32, 32).unwrap();
        let mut p = initialize(&g, &rm, InitialDistribution::Uniform, 500, 9);
        reencode(&mut p, &mo);
        for i in 0..p.len() {
            assert_eq!(
                p.icell[i] as usize,
                mo.encode(p.ix[i] as usize, p.iy[i] as usize)
            );
        }
    }
}
