//! The spatial grid: geometry, normalization, and periodic wrapping.
//!
//! Positions are kept in *grid units*: a particle is `(ix, iy, dx, dy)` with
//! integer cell coordinates and offsets in `[0, 1)` (paper §II). Physical
//! positions map through `x_grid = (x_phys − x_min)/Δx`.

use crate::PicError;

/// Geometry of the periodic Cartesian grid.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grid2D {
    /// Cells along x (power of two, for the bitwise periodic wrap).
    pub ncx: usize,
    /// Cells along y (power of two).
    pub ncy: usize,
    /// Physical domain length along x.
    pub lx: f64,
    /// Physical domain length along y.
    pub ly: f64,
}

impl Grid2D {
    /// Create a grid. Both cell counts must be powers of two — the paper's
    /// branchless position update (§IV-C2) relies on `mod 2^k = & (2^k − 1)`,
    /// and the radix-2 Poisson solver needs it too.
    pub fn new(ncx: usize, ncy: usize, lx: f64, ly: f64) -> Result<Self, PicError> {
        if ncx == 0 || !ncx.is_power_of_two() || ncy == 0 || !ncy.is_power_of_two() {
            return Err(PicError::Config(format!(
                "grid dims must be nonzero powers of two, got {ncx} x {ncy}"
            )));
        }
        if lx.is_nan() || lx <= 0.0 || ly.is_nan() || ly <= 0.0 {
            return Err(PicError::Config(format!(
                "domain lengths must be positive, got {lx} x {ly}"
            )));
        }
        Ok(Self { ncx, ncy, lx, ly })
    }

    /// Total number of cells.
    #[inline]
    pub fn ncells(&self) -> usize {
        self.ncx * self.ncy
    }

    /// Cell size along x.
    #[inline]
    pub fn dx(&self) -> f64 {
        self.lx / self.ncx as f64
    }

    /// Cell size along y.
    #[inline]
    pub fn dy(&self) -> f64 {
        self.ly / self.ncy as f64
    }

    /// Map a physical x to grid units in `[0, ncx)` (periodic wrap applied).
    #[inline]
    pub fn to_grid_x(&self, x_phys: f64) -> f64 {
        let g = x_phys / self.dx();
        wrap_grid(g, self.ncx)
    }

    /// Map a physical y to grid units in `[0, ncy)`.
    #[inline]
    pub fn to_grid_y(&self, y_phys: f64) -> f64 {
        let g = y_phys / self.dy();
        wrap_grid(g, self.ncy)
    }

    /// Split a grid-unit coordinate into `(cell, offset)` with the branchless
    /// floor + bitwise wrap of §IV-C (valid because `n` is a power of two).
    #[inline]
    pub fn split_x(&self, x_grid: f64) -> (usize, f64) {
        split_periodic(x_grid, self.ncx)
    }

    /// Same along y.
    #[inline]
    pub fn split_y(&self, y_grid: f64) -> (usize, f64) {
        split_periodic(y_grid, self.ncy)
    }
}

/// Wrap a grid coordinate into `[0, n)` using real modulo — the reference
/// (slow-path) semantics the branchless kernels must match.
#[inline]
pub fn wrap_grid(g: f64, n: usize) -> f64 {
    let n = n as f64;
    let w = g - (g / n).floor() * n;
    // `g` exactly n (or a tiny negative rounded up) must land inside.
    if w >= n {
        w - n
    } else {
        w
    }
}

/// The paper's branchless split (§IV-C3):
/// `floor` via int-cast minus sign bit, periodic wrap via bitwise AND.
///
/// Requires `n` power of two and `|g|` within `i64` range (PIC positions move
/// a few cells per step, so this always holds).
#[inline]
pub fn split_periodic(g: f64, n: usize) -> (usize, f64) {
    debug_assert!(n.is_power_of_two());
    let fl = (g as i64) - i64::from(g < 0.0 && g.trunc() != g);
    let cell = (fl & (n as i64 - 1)) as usize;
    (cell, g - fl as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_validates() {
        assert!(Grid2D::new(128, 128, 1.0, 1.0).is_ok());
        assert!(Grid2D::new(100, 128, 1.0, 1.0).is_err());
        assert!(Grid2D::new(0, 128, 1.0, 1.0).is_err());
        assert!(Grid2D::new(128, 128, -1.0, 1.0).is_err());
        assert!(Grid2D::new(128, 128, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn cell_sizes() {
        let g = Grid2D::new(64, 32, 4.0 * std::f64::consts::PI, 2.0).unwrap();
        assert!((g.dx() - 4.0 * std::f64::consts::PI / 64.0).abs() < 1e-15);
        assert!((g.dy() - 0.0625).abs() < 1e-15);
        assert_eq!(g.ncells(), 2048);
    }

    #[test]
    fn wrap_grid_reference() {
        assert_eq!(wrap_grid(0.0, 8), 0.0);
        assert_eq!(wrap_grid(7.75, 8), 7.75);
        assert_eq!(wrap_grid(8.0, 8), 0.0);
        assert_eq!(wrap_grid(9.5, 8), 1.5);
        assert_eq!(wrap_grid(-0.25, 8), 7.75);
        assert_eq!(wrap_grid(-8.25, 8), 7.75);
        assert_eq!(wrap_grid(17.0, 8), 1.0);
    }

    #[test]
    fn split_periodic_matches_reference_semantics() {
        for n in [8usize, 128] {
            for &g in &[
                0.0, 0.5, 1.0, 6.9999, 7.0, 7.5, 8.0, 9.25, 127.9, -0.5, -1.0, -7.75, -8.0, -16.5,
                300.25,
            ] {
                let (cell, off) = split_periodic(g, n);
                assert!(cell < n, "g={g} n={n} cell={cell}");
                assert!((0.0..1.0).contains(&off), "g={g} off={off}");
                // cell+off must equal g modulo n.
                let rebuilt = wrap_grid(cell as f64 + off, n);
                let reference = wrap_grid(g, n);
                assert!(
                    (rebuilt - reference).abs() < 1e-12
                        || (rebuilt - reference).abs() > n as f64 - 1e-12,
                    "g={g} n={n}: rebuilt {rebuilt} vs reference {reference}"
                );
            }
        }
    }

    #[test]
    fn split_negative_integer_exact() {
        // g = −1.0 is exactly an integer: floor = −1, offset 0, cell n−1.
        let (cell, off) = split_periodic(-1.0, 8);
        assert_eq!(cell, 7);
        assert_eq!(off, 0.0);
        // g = −0.25: floor = −1, offset 0.75.
        let (cell, off) = split_periodic(-0.25, 8);
        assert_eq!(cell, 7);
        assert!((off - 0.75).abs() < 1e-15);
    }

    #[test]
    fn physical_to_grid_roundtrip() {
        let g = Grid2D::new(16, 16, 8.0, 8.0).unwrap();
        // Δx = 0.5: physical 1.25 → grid 2.5.
        assert!((g.to_grid_x(1.25) - 2.5).abs() < 1e-15);
        // Wraps: physical 8.5 → grid 17 → 1.
        assert!((g.to_grid_x(8.5) - 1.0).abs() < 1e-12);
        let (c, o) = g.split_x(g.to_grid_x(1.25));
        assert_eq!(c, 2);
        assert!((o - 0.5).abs() < 1e-15);
    }
}
