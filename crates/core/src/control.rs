//! Online adaptive hot-path control — the runtime half of the paper's
//! §IV-E future work ("automatic finding of this optimal number" of steps
//! between sorts), done as a closed loop instead of the stop-the-world
//! trial windows in [`crate::autotune`].
//!
//! The loop observes two cheap per-step signals:
//!
//! * a **particle-disorder metric** sampled from the `icell` array — the
//!   fraction of non-monotone (descending) transitions between consecutive
//!   particles, the normalized *mean jump distance* between consecutive
//!   particles (the component that actually prices cache distance in the
//!   field arrays), plus the fraction of lane blocks whose eight entries
//!   share one cell (the structure the sorted-batch deposit exploits);
//! * **EWMA'd per-phase wall times** of the particle loops, attributed to
//!   the kernel arm that ran them.
//!
//! [`HotPathController`] maps the signals to `(KernelPath, DepositPath,
//! sort-now)` decisions with hysteresis, applied only at sort boundaries:
//!
//! * **Sorting** is triggered when the disorder EWMA crosses a threshold
//!   (bounded by a minimum and maximum spacing) — a deterministic function
//!   of the particle trajectory, never of wall time, so a checkpointed run
//!   replays the same sort schedule bit-for-bit.
//! * **DepositPath** follows the uniform-block fraction through a
//!   two-threshold hysteresis band with a patience counter, so it never
//!   oscillates; the decision inputs are again deterministic. Runs that
//!   must stay bit-exact pin the deposit
//!   ([`ControllerConfig::allow_deposit_switch`] = false).
//! * **KernelPath** is the only knob driven by measured wall time: the
//!   controller periodically probes the other arm for one inter-sort
//!   window and switches when the probe beats the incumbent by a margin.
//!   The two arms are bit-identical, so timing noise can never change the
//!   physics — only the speed.
//!
//! Every applied switch is returned as a [`SwitchEvent`] for the caller to
//! ledger through [`crate::faultlog::FaultLog`] /
//! [`crate::diag::DiagStream`]. Controller state serializes into the
//! checkpoint ([`HotPathController::encode_state`]), so a restored run
//! resumes the last decision and — in deterministic mode
//! ([`ControllerConfig::deterministic`]) — replays bit-identically.

use crate::sim::{DepositPath, KernelPath};
use crate::PicError;

/// Width of the disorder-sampling block, matching the kernels' lane width
/// (`LANES` in `crates/core/src/kernels/simd.rs`).
pub const LANE_BLOCK: usize = 8;

/// Normalization of [`Disorder::jump_frac`]: on a fully mixed population
/// the mean adjacent `|Δicell|` is `ncells / 3` (the mean distance of two
/// independent uniform draws), so the mean jump is scaled by
/// `JUMP_FULL_MIX / ncells` to read `~1.0` at full mixing.
pub const JUMP_FULL_MIX: f64 = 3.0;

/// One disorder sample over an `icell` sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Disorder {
    /// Fraction of examined adjacent transitions that descend
    /// (`icell[i+1] < icell[i]`), in `[0, 1]`. Exactly `0` on a population
    /// sorted by cell; approaches `~0.5` on a fully shuffled one.
    pub descent_frac: f64,
    /// Mean adjacent `|Δicell|` normalized so a fully mixed population
    /// reads `~1.0` (see [`JUMP_FULL_MIX`]), clamped to `[0, 1]`. This is
    /// the component that prices locality — it ramps smoothly from `0`
    /// after a sort toward `1` as neighbors diffuse apart, tracking the
    /// measured per-step cost ramp — so it drives the sort decision. The
    /// descent fraction cannot: it saturates near `0.5` within a step or
    /// two of any sort at realistic particle densities.
    pub jump_frac: f64,
    /// Fraction of examined full lane blocks whose [`LANE_BLOCK`] entries
    /// all share one cell, in `[0, 1]` — the run structure the
    /// [`DepositPath::SortedBlock`] kernel amortizes.
    pub uniform_block_frac: f64,
}

impl Disorder {
    /// The sample of an empty or single-particle population.
    pub const NONE: Disorder = Disorder {
        descent_frac: 0.0,
        jump_frac: 0.0,
        uniform_block_frac: 0.0,
    };
}

/// Measure disorder through an index accessor (so AoS mirrors can be
/// sampled without materializing an `icell` slice). `cells` is the total
/// cell count, used to normalize the mean-jump component. Samples one
/// [`LANE_BLOCK`]-wide window every `stride` blocks; `stride = 1` examines
/// every adjacent transition exactly once, so the descent fraction is then
/// `#{i : icell[i+1] < icell[i]} / (n − 1)`.
pub fn measure_disorder_with(
    n: usize,
    stride: usize,
    cells: usize,
    at: impl Fn(usize) -> u32,
) -> Disorder {
    let stride = stride.max(1);
    if n < 2 {
        return Disorder::NONE;
    }
    let mut pairs = 0u64;
    let mut descents = 0u64;
    let mut jump = 0u64;
    let mut full_blocks = 0u64;
    let mut uniform = 0u64;
    let mut o = 0usize;
    while o + 1 < n {
        let end = (o + LANE_BLOCK).min(n - 1); // pairs (i, i+1) for i in o..end
        let full = o + LANE_BLOCK <= n;
        let mut prev = at(o);
        let mut all_eq = true;
        for i in o + 1..=end {
            let c = at(i);
            if c < prev {
                descents += 1;
            }
            jump += c.abs_diff(prev) as u64;
            // Uniformity is judged over the block's LANE_BLOCK entries
            // only (the window's extra pair belongs to the next block).
            if i < o + LANE_BLOCK && c != prev {
                all_eq = false;
            }
            pairs += 1;
            prev = c;
        }
        if full {
            full_blocks += 1;
            if all_eq {
                uniform += 1;
            }
        }
        o += LANE_BLOCK * stride;
    }
    let mean_jump = jump as f64 / pairs as f64;
    Disorder {
        descent_frac: descents as f64 / pairs as f64,
        jump_frac: (JUMP_FULL_MIX * mean_jump / cells.max(1) as f64).min(1.0),
        uniform_block_frac: if full_blocks == 0 {
            0.0
        } else {
            uniform as f64 / full_blocks as f64
        },
    }
}

/// [`measure_disorder_with`] over a plain `icell` slice.
pub fn measure_disorder(icell: &[u32], stride: usize, cells: usize) -> Disorder {
    measure_disorder_with(icell.len(), stride, cells, |i| icell[i])
}

/// Tuning knobs of the [`HotPathController`].
#[derive(Debug, Clone, PartialEq)]
pub struct ControllerConfig {
    /// Sort when the disorder EWMA (fed by the normalized mean jump,
    /// [`Disorder::jump_frac`]) reaches this level. The mean jump — not
    /// the descent fraction — drives sorting because descents saturate
    /// near `0.5` within a step or two of any sort at realistic particle
    /// densities, while the mean jump ramps smoothly over tens of steps,
    /// tracking the measured traversal-cost ramp (an external shuffle,
    /// reported by [`HotPathController::note_shuffle`], saturates it to
    /// `1.0` at once).
    pub sort_threshold: f64,
    /// Never sort more often than every this many steps (amortization
    /// floor — a sort every step would dominate the step cost).
    pub min_sort_spacing: usize,
    /// Always sort at least every this many steps (0 = uncapped), so a
    /// slowly drifting population cannot decay indefinitely below the
    /// threshold while locality erodes.
    pub max_sort_spacing: usize,
    /// EWMA smoothing factor in `(0, 1]` for all signal averages.
    pub alpha: f64,
    /// Disorder sampling stride in lane blocks (1 = full scan; larger
    /// strides sample a `1/stride` subset). The observation runs every
    /// step, so this is a real hot-path cost: small strides stream the
    /// whole `icell` array through the cache each step, which alone can
    /// eat several percent of a step at millions of particles. The mean
    /// jump converges with a few tens of thousands of sampled pairs, so
    /// the default is coarse.
    pub stride: usize,
    /// Allow the controller to move between the reassociated deposit
    /// kernels. `false` pins the deposit configured at construction —
    /// required for `Exact`-path runs that must stay bit-identical to the
    /// scalar accumulation order.
    pub allow_deposit_switch: bool,
    /// Uniform-block EWMA at or above which [`DepositPath::SortedBlock`]
    /// is preferred.
    pub uniform_hi: f64,
    /// Uniform-block EWMA at or below which [`DepositPath::LaneReduce`] is
    /// preferred. Between the two thresholds the current deposit is kept
    /// (the hysteresis band).
    pub uniform_lo: f64,
    /// Consecutive sort boundaries that must agree on a different deposit
    /// before it is switched (patience — no oscillation on a noisy
    /// boundary signal).
    pub deposit_patience: u32,
    /// Feed measured wall times into the kernel-arm decision. `false` is
    /// the fully deterministic mode: the kernel arm never changes, and the
    /// serialized controller state is a pure function of the particle
    /// trajectory (checkpoints of a forked run stay byte-identical).
    pub use_timing: bool,
    /// Probe the other kernel arm for one inter-sort window every this
    /// many sorts (timing mode only).
    pub probe_period: u32,
    /// Cap a probe's inter-sort window at this many steps: an active probe
    /// forces an early sort boundary once the cap is reached, so the cost
    /// of measuring the slower arm is bounded even when the steady-state
    /// sort spacing is long. Probe *starts* are counter-scheduled, so this
    /// keeps the sort schedule independent of measured times.
    pub probe_window: u32,
    /// Relative per-step advantage a probed arm needs before the
    /// controller switches to it (hysteresis against timing noise).
    pub kernel_margin: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        Self {
            sort_threshold: 0.25,
            min_sort_spacing: 4,
            max_sort_spacing: 128,
            alpha: 0.35,
            stride: 32,
            allow_deposit_switch: true,
            uniform_hi: 0.55,
            uniform_lo: 0.30,
            deposit_patience: 2,
            use_timing: true,
            probe_period: 12,
            probe_window: 4,
            kernel_margin: 0.05,
        }
    }
}

impl ControllerConfig {
    /// The fully deterministic profile: disorder-driven sorting and
    /// deposit selection, kernel arm pinned (no timing inputs). A run
    /// under this profile replays bit-identically from any checkpoint,
    /// including checkpoints taken mid-adaptation.
    pub fn deterministic() -> Self {
        Self {
            use_timing: false,
            ..Self::default()
        }
    }
}

/// One applied hot-path switch, for the fault ledger and the diagnostics
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchEvent {
    /// Simulation step at which the switch was applied (a sort boundary).
    pub step: u64,
    /// Which knob switched: `"kernel"` or `"deposit"`.
    pub what: &'static str,
    /// Previous value (stable lowercase name).
    pub from: &'static str,
    /// New value (stable lowercase name).
    pub to: &'static str,
    /// Disorder EWMA at the decision.
    pub disorder: f64,
    /// Uniform-block EWMA at the decision.
    pub uniform: f64,
    /// Steps between the two most recent sorts (the realized period).
    pub period: u64,
}

/// Stable lowercase name of a kernel path (ledger vocabulary).
pub fn kernel_name(p: KernelPath) -> &'static str {
    match p {
        KernelPath::Scalar => "scalar",
        KernelPath::Lanes => "lanes",
    }
}

/// Stable lowercase name of a deposit path (ledger vocabulary).
pub fn deposit_name(p: DepositPath) -> &'static str {
    match p {
        DepositPath::Exact => "exact",
        DepositPath::LaneReduce => "lane_reduce",
        DepositPath::SortedBlock => "sorted_block",
    }
}

fn arm_index(p: KernelPath) -> usize {
    match p {
        KernelPath::Scalar => 0,
        KernelPath::Lanes => 1,
    }
}

fn other_arm(p: KernelPath) -> KernelPath {
    match p {
        KernelPath::Scalar => KernelPath::Lanes,
        KernelPath::Lanes => KernelPath::Scalar,
    }
}

/// The online controller. One per simulation (per rank in decomposed
/// runs — each rank adapts to its own subdomain's disorder).
#[derive(Debug, Clone)]
pub struct HotPathController {
    cfg: ControllerConfig,
    /// Committed kernel arm (what runs outside probe windows).
    kernel: KernelPath,
    /// Committed deposit path.
    deposit: DepositPath,
    /// Arm running a probe window, if one is active.
    probe_arm: Option<KernelPath>,
    steps_since_sort: u64,
    /// EWMA normalized-mean-jump since the last sort (see
    /// [`Disorder::jump_frac`]).
    disorder: f64,
    /// EWMA uniform-block fraction.
    uniform: f64,
    /// EWMA per-step particle-loop seconds per kernel arm.
    arm_secs: [f64; 2],
    arm_seen: [bool; 2],
    deposit_candidate: DepositPath,
    deposit_streak: u32,
    sorts_since_probe: u32,
    /// Steps between the two most recent sorts.
    last_period: u64,
    events: Vec<SwitchEvent>,
}

impl HotPathController {
    /// Build a controller starting from the configured hot-path knobs.
    pub fn new(cfg: ControllerConfig, kernel: KernelPath, deposit: DepositPath) -> Self {
        Self {
            cfg,
            kernel,
            deposit,
            probe_arm: None,
            steps_since_sort: 0,
            disorder: 0.0,
            uniform: 0.0,
            arm_secs: [0.0; 2],
            arm_seen: [false; 2],
            deposit_candidate: deposit,
            deposit_streak: 0,
            sorts_since_probe: 0,
            last_period: 0,
            events: Vec::new(),
        }
    }

    /// The controller's configuration.
    pub fn config(&self) -> &ControllerConfig {
        &self.cfg
    }

    /// Should this step begin with a sort? Deterministic: a threshold on
    /// the disorder EWMA (fed only by particle state), bounded by the
    /// min/max spacing. Never consults wall time, so a restored run makes
    /// the same sort decisions as the run that checkpointed.
    pub fn should_sort(&self) -> bool {
        let since = self.steps_since_sort + 1; // spacing if we sort now
        if since < self.cfg.min_sort_spacing.max(1) as u64 {
            return false;
        }
        // Calibration bootstrap (timing mode): until both kernel arms have
        // been measured once, sort at the minimum spacing so the probe
        // machinery gets its first samples within a few windows instead of
        // waiting out a long steady-state spacing. Which arms have run is
        // itself counter-scheduled, so this stays replay-deterministic.
        if self.cfg.use_timing && !(self.arm_seen[0] && self.arm_seen[1]) {
            return true;
        }
        // A running probe ends at the next boundary, so cap its window:
        // the slower arm never runs longer than `probe_window` steps.
        // Probe starts are counter-scheduled, so the sort schedule stays
        // independent of the measured wall times.
        if self.probe_arm.is_some() && since >= self.cfg.probe_window.max(1) as u64 {
            return true;
        }
        if self.cfg.max_sort_spacing > 0 && since >= self.cfg.max_sort_spacing as u64 {
            return true;
        }
        self.disorder >= self.cfg.sort_threshold
    }

    /// Commit decisions at a sort boundary (call right after the sort
    /// ran). Returns the `(KernelPath, DepositPath)` to run the coming
    /// inter-sort window with — the kernel may be a probe arm.
    pub fn on_sort(&mut self, step: u64) -> (KernelPath, DepositPath) {
        self.last_period = self.steps_since_sort;
        self.steps_since_sort = 0;
        // The population is sorted now: the accumulated disorder is gone.
        self.disorder = 0.0;

        self.decide_deposit(step);
        self.decide_kernel(step);
        (self.probe_arm.unwrap_or(self.kernel), self.deposit)
    }

    fn decide_deposit(&mut self, step: u64) {
        if !self.cfg.allow_deposit_switch {
            return;
        }
        let desired = if self.uniform >= self.cfg.uniform_hi {
            DepositPath::SortedBlock
        } else if self.uniform <= self.cfg.uniform_lo {
            DepositPath::LaneReduce
        } else {
            self.deposit // inside the hysteresis band: keep
        };
        if desired == self.deposit {
            self.deposit_candidate = self.deposit;
            self.deposit_streak = 0;
            return;
        }
        if desired == self.deposit_candidate {
            self.deposit_streak += 1;
        } else {
            self.deposit_candidate = desired;
            self.deposit_streak = 1;
        }
        if self.deposit_streak >= self.cfg.deposit_patience.max(1) {
            self.events.push(SwitchEvent {
                step,
                what: "deposit",
                from: deposit_name(self.deposit),
                to: deposit_name(desired),
                disorder: self.disorder,
                uniform: self.uniform,
                period: self.last_period,
            });
            self.deposit = desired;
            self.deposit_streak = 0;
            // The kernel-arm timings were measured under the old deposit
            // path and can rank the arms differently under the new one
            // (SortedBlock can make Lanes a net loss while LaneReduce makes
            // it a clear win). Drop them so the calibration bootstrap
            // re-measures both arms under the deposit that will actually
            // run, instead of trusting a cross-path comparison.
            if self.cfg.use_timing {
                self.arm_secs = [0.0; 2];
                self.arm_seen = [false; 2];
            }
        }
    }

    fn decide_kernel(&mut self, step: u64) {
        if !self.cfg.use_timing {
            return;
        }
        if let Some(probed) = self.probe_arm.take() {
            // A probe window just finished; its EWMA is fresh. Switch only
            // on a sustained margin over the incumbent.
            let cur = self.arm_secs[arm_index(self.kernel)];
            let alt = self.arm_secs[arm_index(probed)];
            if self.arm_seen[0]
                && self.arm_seen[1]
                && alt < cur * (1.0 - self.cfg.kernel_margin)
                && probed != self.kernel
            {
                self.events.push(SwitchEvent {
                    step,
                    what: "kernel",
                    from: kernel_name(self.kernel),
                    to: kernel_name(probed),
                    disorder: self.disorder,
                    uniform: self.uniform,
                    period: self.last_period,
                });
                self.kernel = probed;
            }
        } else {
            self.sorts_since_probe += 1;
            let incumbent_seen = self.arm_seen[arm_index(self.kernel)];
            let alt_seen = self.arm_seen[arm_index(other_arm(self.kernel))];
            let due = self.sorts_since_probe >= self.cfg.probe_period.max(1);
            // Probe as soon as the incumbent has a fresh baseline while the
            // other arm is unmeasured (calibration — also re-entered after a
            // deposit switch drops stale timings), on the regular cadence
            // afterwards. Never launch a probe before the incumbent has been
            // measured: the comparison at the end of the window would be
            // discarded and the probe wasted.
            if incumbent_seen && (due || !alt_seen) {
                self.sorts_since_probe = 0;
                self.probe_arm = Some(other_arm(self.kernel));
            }
        }
    }

    /// Feed one step's observations: the sampled disorder and the wall
    /// seconds the particle loops took. Call after the particle loops of
    /// every step.
    pub fn observe(&mut self, d: Disorder, particle_secs: f64) {
        self.steps_since_sort += 1;
        let a = self.cfg.alpha.clamp(1e-6, 1.0);
        self.disorder += a * (d.jump_frac - self.disorder);
        self.uniform += a * (d.uniform_block_frac - self.uniform);
        if self.cfg.use_timing {
            let arm = arm_index(self.probe_arm.unwrap_or(self.kernel));
            if self.arm_seen[arm] {
                self.arm_secs[arm] += a * (particle_secs - self.arm_secs[arm]);
            } else {
                self.arm_secs[arm] = particle_secs;
                self.arm_seen[arm] = true;
            }
        }
    }

    /// Notify the controller that an external mechanism (rank migration,
    /// a live re-partition) just shuffled the particle array: saturate the
    /// disorder EWMA so the next eligible boundary sorts. Deterministic —
    /// re-cuts are driven by step counts, not wall time.
    pub fn note_shuffle(&mut self) {
        self.disorder = 1.0;
    }

    /// Committed kernel arm (ignoring any active probe window).
    pub fn kernel(&self) -> KernelPath {
        self.kernel
    }

    /// Committed deposit path.
    pub fn deposit(&self) -> DepositPath {
        self.deposit
    }

    /// Current disorder EWMA.
    pub fn disorder(&self) -> f64 {
        self.disorder
    }

    /// Current uniform-block EWMA.
    pub fn uniform(&self) -> f64 {
        self.uniform
    }

    /// Steps between the two most recent sorts — the realized (adaptive)
    /// sort period.
    pub fn last_period(&self) -> u64 {
        self.last_period
    }

    /// Steps since the last sort.
    pub fn steps_since_sort(&self) -> u64 {
        self.steps_since_sort
    }

    /// Drain the switch events applied since the last call, oldest first.
    pub fn take_events(&mut self) -> Vec<SwitchEvent> {
        std::mem::take(&mut self.events)
    }

    // ---------------- checkpoint state ----------------

    /// Serialize the decision state (EWMAs, counters, committed knobs)
    /// into a little-endian blob for the checkpoint's hot-path metadata.
    /// In deterministic mode the blob is a pure function of the particle
    /// trajectory; in timing mode it additionally carries the wall-time
    /// EWMAs (which restore the kernel preference but are not replayable
    /// bit-for-bit across machines).
    pub fn encode_state(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(CTRL_STATE_LEN);
        b.push(CTRL_STATE_VERSION);
        b.push(arm_index(self.kernel) as u8);
        b.push(deposit_code(self.deposit));
        b.push(match self.probe_arm {
            None => u8::MAX,
            Some(p) => arm_index(p) as u8,
        });
        b.push(deposit_code(self.deposit_candidate));
        b.extend_from_slice(&self.deposit_streak.to_le_bytes());
        b.extend_from_slice(&self.sorts_since_probe.to_le_bytes());
        b.extend_from_slice(&self.steps_since_sort.to_le_bytes());
        b.extend_from_slice(&self.last_period.to_le_bytes());
        b.extend_from_slice(&self.disorder.to_bits().to_le_bytes());
        b.extend_from_slice(&self.uniform.to_bits().to_le_bytes());
        for s in self.arm_secs {
            b.extend_from_slice(&s.to_bits().to_le_bytes());
        }
        b.push(self.arm_seen[0] as u8);
        b.push(self.arm_seen[1] as u8);
        b
    }

    /// Restore the decision state from an [`encode_state`] blob
    /// (configuration is not serialized — it comes from the owning
    /// config's controller profile).
    pub fn restore_state(&mut self, bytes: &[u8]) -> Result<(), PicError> {
        if bytes.len() != CTRL_STATE_LEN {
            return Err(PicError::Checkpoint(format!(
                "controller state blob has {} bytes, expected {CTRL_STATE_LEN}",
                bytes.len()
            )));
        }
        if bytes[0] != CTRL_STATE_VERSION {
            return Err(PicError::Checkpoint(format!(
                "unsupported controller state version {}",
                bytes[0]
            )));
        }
        let kernel = arm_from_code(bytes[1])?;
        let deposit = deposit_from_code(bytes[2])?;
        let probe_arm = match bytes[3] {
            u8::MAX => None,
            c => Some(arm_from_code(c)?),
        };
        let deposit_candidate = deposit_from_code(bytes[4])?;
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let u64_at = |o: usize| u64::from_le_bytes(bytes[o..o + 8].try_into().unwrap());
        let f64_at = |o: usize| f64::from_bits(u64_at(o));
        self.kernel = kernel;
        self.deposit = deposit;
        self.probe_arm = probe_arm;
        self.deposit_candidate = deposit_candidate;
        self.deposit_streak = u32_at(5);
        self.sorts_since_probe = u32_at(9);
        self.steps_since_sort = u64_at(13);
        self.last_period = u64_at(21);
        self.disorder = f64_at(29);
        self.uniform = f64_at(37);
        self.arm_secs = [f64_at(45), f64_at(53)];
        self.arm_seen = [bytes[61] != 0, bytes[62] != 0];
        self.events.clear();
        Ok(())
    }
}

/// Serialized controller-state length ([`HotPathController::encode_state`]).
pub const CTRL_STATE_LEN: usize = 63;
const CTRL_STATE_VERSION: u8 = 1;

fn deposit_code(p: DepositPath) -> u8 {
    match p {
        DepositPath::Exact => 0,
        DepositPath::LaneReduce => 1,
        DepositPath::SortedBlock => 2,
    }
}

fn deposit_from_code(c: u8) -> Result<DepositPath, PicError> {
    match c {
        0 => Ok(DepositPath::Exact),
        1 => Ok(DepositPath::LaneReduce),
        2 => Ok(DepositPath::SortedBlock),
        _ => Err(PicError::Checkpoint(format!("bad deposit code {c}"))),
    }
}

fn arm_from_code(c: u8) -> Result<KernelPath, PicError> {
    match c {
        0 => Ok(KernelPath::Scalar),
        1 => Ok(KernelPath::Lanes),
        _ => Err(PicError::Checkpoint(format!("bad kernel code {c}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_population_has_zero_descents() {
        // Run length 3 (< LANE_BLOCK): sorted, but no block is uniform.
        let icell: Vec<u32> = (0..1000).map(|i| i / 3).collect();
        let d = measure_disorder(&icell, 1, 1024);
        assert_eq!(d.descent_frac, 0.0);
        assert!(d.jump_frac < 0.01, "sorted jumps are tiny: {}", d.jump_frac);
        assert_eq!(d.uniform_block_frac, 0.0);

        // Run length 16 (≥ LANE_BLOCK): sorted and mostly uniform blocks.
        let icell: Vec<u32> = (0..1000).map(|i| i / 16).collect();
        let d = measure_disorder(&icell, 1, 1024);
        assert_eq!(d.descent_frac, 0.0);
        assert!(d.jump_frac < 0.01);
        assert!(d.uniform_block_frac > 0.0);
    }

    #[test]
    fn reversed_population_is_fully_descending() {
        let icell: Vec<u32> = (0..1000u32).rev().collect();
        let d = measure_disorder(&icell, 1, 1024);
        assert_eq!(d.descent_frac, 1.0);
        // Every jump is one cell: fully descending, but locality is fine.
        assert!(d.jump_frac < 0.01);
        assert_eq!(d.uniform_block_frac, 0.0);
    }

    #[test]
    fn mean_jump_separates_scramble_from_local_drift() {
        // Local drift: sorted cells plus small jitter — tiny mean jump.
        let drift: Vec<u32> = (0..2000u32).map(|i| 300 + i / 4 + (i * 7 % 5)).collect();
        assert!(measure_disorder(&drift, 1, 16384).jump_frac < 0.01);
        // Full mix: independent uniform cells (LCG high bits) push the
        // normalized mean jump to ~1 (descents, by contrast, read ~0.5
        // for both states).
        let mut x = 1u32;
        let scramble: Vec<u32> = (0..2000)
            .map(|_| {
                x = x.wrapping_mul(1664525).wrapping_add(1013904223);
                x >> 18 // top 14 bits: uniform over 0..16384
            })
            .collect();
        let d = measure_disorder(&scramble, 1, 16384);
        assert!(d.jump_frac > 0.9, "jump_frac {}", d.jump_frac);
        assert!((0.4..=0.6).contains(&d.descent_frac));
    }

    #[test]
    fn strided_sampling_stays_bounded() {
        let icell: Vec<u32> = (0..997u32).map(|i| i.wrapping_mul(2654435761) % 64).collect();
        for stride in [1, 2, 4, 16] {
            let d = measure_disorder(&icell, stride, 64);
            assert!((0.0..=1.0).contains(&d.descent_frac), "stride={stride}");
            assert!((0.0..=1.0).contains(&d.jump_frac), "stride={stride}");
            assert!(
                (0.0..=1.0).contains(&d.uniform_block_frac),
                "stride={stride}"
            );
        }
    }

    #[test]
    fn tiny_populations_measure_as_ordered() {
        assert_eq!(measure_disorder(&[], 1, 64), Disorder::NONE);
        assert_eq!(measure_disorder(&[7], 1, 64), Disorder::NONE);
    }

    #[test]
    fn uniform_blocks_counted_on_constant_population() {
        let icell = vec![5u32; 64];
        let d = measure_disorder(&icell, 1, 64);
        assert_eq!(d.descent_frac, 0.0);
        assert_eq!(d.uniform_block_frac, 1.0);
    }

    #[test]
    fn sort_decision_respects_spacing_bounds() {
        let mut c = HotPathController::new(
            ControllerConfig {
                sort_threshold: 0.1,
                min_sort_spacing: 3,
                max_sort_spacing: 6,
                alpha: 1.0,
                use_timing: false,
                ..ControllerConfig::default()
            },
            KernelPath::Lanes,
            DepositPath::LaneReduce,
        );
        // High disorder, but inside the minimum spacing: no sort.
        let noisy = Disorder {
            jump_frac: 0.9,
            ..Disorder::NONE
        };
        c.observe(noisy, 0.0);
        assert!(!c.should_sort(), "min spacing must hold");
        c.observe(noisy, 0.0);
        assert!(c.should_sort(), "threshold crossed past the minimum");
        c.on_sort(2);
        // Zero disorder: no sort until the maximum spacing forces one.
        for step in 0..5 {
            assert!(!c.should_sort(), "step {step}");
            c.observe(Disorder::NONE, 0.0);
        }
        assert!(c.should_sort(), "max spacing must force a sort");
    }

    #[test]
    fn deposit_switch_needs_patience_and_hysteresis() {
        let mut c = HotPathController::new(
            ControllerConfig {
                alpha: 1.0,
                deposit_patience: 2,
                use_timing: false,
                ..ControllerConfig::default()
            },
            KernelPath::Lanes,
            DepositPath::LaneReduce,
        );
        let high = Disorder {
            uniform_block_frac: 0.9,
            ..Disorder::NONE
        };
        c.observe(high, 0.0);
        c.on_sort(1);
        assert_eq!(c.deposit(), DepositPath::LaneReduce, "patience 1 of 2");
        c.observe(high, 0.0);
        c.on_sort(2);
        assert_eq!(c.deposit(), DepositPath::SortedBlock, "sustained signal");
        let ev = c.take_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].what, "deposit");
        assert_eq!(ev[0].to, "sorted_block");
        // Mid-band readings keep the new deposit (hysteresis).
        c.observe(
            Disorder {
                uniform_block_frac: 0.45,
                ..Disorder::NONE
            },
            0.0,
        );
        c.on_sort(3);
        assert_eq!(c.deposit(), DepositPath::SortedBlock);
    }

    #[test]
    fn pinned_deposit_never_switches() {
        let mut c = HotPathController::new(
            ControllerConfig {
                alpha: 1.0,
                allow_deposit_switch: false,
                use_timing: false,
                ..ControllerConfig::default()
            },
            KernelPath::Lanes,
            DepositPath::Exact,
        );
        for step in 0..10 {
            c.observe(
                Disorder {
                    uniform_block_frac: 1.0,
                    ..Disorder::NONE
                },
                0.0,
            );
            c.on_sort(step);
        }
        assert_eq!(c.deposit(), DepositPath::Exact);
        assert!(c.take_events().is_empty());
    }

    #[test]
    fn kernel_probe_switches_to_faster_arm() {
        let mut c = HotPathController::new(
            ControllerConfig {
                alpha: 1.0,
                probe_period: 2,
                kernel_margin: 0.05,
                ..ControllerConfig::default()
            },
            KernelPath::Scalar,
            DepositPath::LaneReduce,
        );
        // Window 1 under the incumbent (scalar, slow).
        c.observe(Disorder::NONE, 10.0);
        let (arm, _) = c.on_sort(1);
        // The unmeasured arm triggers an early probe.
        assert_eq!(arm, KernelPath::Lanes);
        // Probe window: lanes is much faster.
        c.observe(Disorder::NONE, 1.0);
        let (arm, _) = c.on_sort(2);
        assert_eq!(arm, KernelPath::Lanes, "probe won by a wide margin");
        assert_eq!(c.kernel(), KernelPath::Lanes);
        let ev = c.take_events();
        assert_eq!(ev.len(), 1);
        assert_eq!(ev[0].what, "kernel");
        assert_eq!(ev[0].from, "scalar");
        assert_eq!(ev[0].to, "lanes");
    }

    #[test]
    fn deposit_switch_recalibrates_kernel_arms() {
        // Under SortedBlock the lanes kernel loses; under LaneReduce it
        // wins. The controller must not trust the SortedBlock-era timings
        // once the deposit switches — it re-measures both arms and only
        // then flips the kernel.
        let mut c = HotPathController::new(
            ControllerConfig {
                alpha: 1.0,
                deposit_patience: 1,
                ..ControllerConfig::default()
            },
            KernelPath::Scalar,
            DepositPath::SortedBlock,
        );
        let blocky = Disorder {
            uniform_block_frac: 0.9,
            ..Disorder::NONE
        };
        c.observe(blocky, 5.0); // incumbent baseline under SortedBlock
        let (arm, _) = c.on_sort(1);
        assert_eq!(arm, KernelPath::Lanes, "calibration probe");
        c.observe(blocky, 6.0); // lanes is slower under SortedBlock
        let (arm, _) = c.on_sort(2);
        assert_eq!(arm, KernelPath::Scalar, "probe lost, keep scalar");
        // The flow turns non-uniform: the deposit flips to LaneReduce.
        c.observe(Disorder::NONE, 5.0);
        let (arm, dep) = c.on_sort(3);
        assert_eq!(dep, DepositPath::LaneReduce);
        assert_eq!(
            arm,
            KernelPath::Scalar,
            "no probe before the incumbent is re-measured"
        );
        c.observe(Disorder::NONE, 4.0); // fresh scalar baseline under LaneReduce
        let (arm, _) = c.on_sort(4);
        assert_eq!(arm, KernelPath::Lanes, "re-calibration probe");
        c.observe(Disorder::NONE, 2.0); // lanes wins under LaneReduce
        c.on_sort(5);
        assert_eq!(c.kernel(), KernelPath::Lanes, "stale ranking revisited");
        let kinds: Vec<&str> = c.take_events().iter().map(|e| e.what).collect();
        assert_eq!(kinds, vec!["deposit", "kernel"]);
    }

    #[test]
    fn deterministic_mode_never_probes() {
        let mut c = HotPathController::new(
            ControllerConfig::deterministic(),
            KernelPath::Lanes,
            DepositPath::LaneReduce,
        );
        for step in 0..20 {
            c.observe(Disorder::NONE, (step % 3) as f64);
            let (arm, _) = c.on_sort(step);
            assert_eq!(arm, KernelPath::Lanes);
        }
        assert!(c.take_events().is_empty());
        // Wall times were never folded into the state.
        assert_eq!(c.arm_secs, [0.0; 2]);
    }

    #[test]
    fn state_roundtrip_is_identity() {
        let mut c = HotPathController::new(
            ControllerConfig::default(),
            KernelPath::Scalar,
            DepositPath::LaneReduce,
        );
        for step in 0..7 {
            c.observe(
                Disorder {
                    descent_frac: 0.3,
                    jump_frac: 0.2,
                    uniform_block_frac: 0.6,
                },
                0.5 + step as f64,
            );
            if step % 3 == 2 {
                c.on_sort(step);
            }
        }
        let blob = c.encode_state();
        assert_eq!(blob.len(), CTRL_STATE_LEN);
        let mut d = HotPathController::new(
            ControllerConfig::default(),
            KernelPath::Lanes,
            DepositPath::Exact,
        );
        d.restore_state(&blob).unwrap();
        assert_eq!(d.kernel(), c.kernel());
        assert_eq!(d.deposit(), c.deposit());
        assert_eq!(d.encode_state(), blob);
        // Corrupt blobs are rejected.
        assert!(d.restore_state(&blob[..blob.len() - 1]).is_err());
        let mut bad = blob.clone();
        bad[2] = 9;
        assert!(d.restore_state(&bad).is_err());
    }

    #[test]
    fn note_shuffle_forces_next_eligible_sort() {
        let mut c = HotPathController::new(
            ControllerConfig {
                min_sort_spacing: 1,
                use_timing: false,
                ..ControllerConfig::default()
            },
            KernelPath::Lanes,
            DepositPath::LaneReduce,
        );
        c.observe(Disorder::NONE, 0.0);
        assert!(!c.should_sort());
        c.note_shuffle();
        assert!(c.should_sort());
    }
}
