//! Fork-join parallelism over a shared persistent pool.
//!
//! The paper's thread level is OpenMP `parallel for` over particle chunks.
//! Earlier revisions spawned one scoped OS thread per work item — unbounded
//! (a `map_collect` over 1000 items spawned 1000 threads) and paying the
//! spawn+join cost on every call. Both patterns now run on one process-wide
//! [`ThreadPool`] sized to `available_parallelism`, created on first use:
//! concurrency is capped at the hardware width, threads are reused across
//! calls, and item order is preserved exactly as before.
//!
//! These helpers still allocate one `Vec` per call to stage owned items, so
//! they serve the administrative and AoS paths. The zero-allocation hot path
//! (`sim.rs`) owns a dedicated [`ThreadPool`] and drives it directly with
//! borrowed slices and per-worker arenas.
//!
//! Do not call these helpers from inside a closure already running on the
//! global pool — pool regions must stay leaf-level (see [`ThreadPool::run`]).

pub use crate::pool::ThreadPool;
use std::sync::OnceLock;

static GLOBAL: OnceLock<ThreadPool> = OnceLock::new();

/// The process-wide pool behind [`for_each`] and [`map_collect`], sized to
/// `available_parallelism` and created on first use.
pub fn global() -> &'static ThreadPool {
    GLOBAL.get_or_init(|| {
        let n = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        ThreadPool::new(n)
    })
}

/// Run `f` over every item on the global pool (at most
/// `available_parallelism` items in flight; the caller's thread
/// participates). With zero or one item this degenerates to a plain loop.
pub fn for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if items.len() <= 1 {
        for it in items {
            f(it);
        }
        return;
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    global().run_items(&mut slots, |_, slot| {
        f(slot.take().expect("pool visits each item exactly once"));
    });
}

/// Map every item on the global pool and return the results in item order.
pub fn map_collect<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<(Option<T>, Option<R>)> =
        items.into_iter().map(|it| (Some(it), None)).collect();
    global().run_items(&mut slots, |_, slot| {
        let it = slot.0.take().expect("pool visits each item exactly once");
        slot.1 = Some(f(it));
    });
    slots
        .into_iter()
        .map(|(_, r)| r.expect("pool filled every slot"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_everything() {
        let hits = AtomicUsize::new(0);
        for_each((0..37).collect(), |i: usize| {
            hits.fetch_add(i + 1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), (1..=37).sum());
    }

    #[test]
    fn for_each_handles_empty_and_single() {
        let hits = AtomicUsize::new(0);
        for_each(Vec::<usize>::new(), |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        for_each(vec![5usize], |i| {
            hits.fetch_add(i, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn for_each_gives_threads_disjoint_mut_slices() {
        let mut data = vec![0u64; 100];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(13).collect();
        for_each(chunks, |c| {
            for x in c.iter_mut() {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let out = map_collect((0..20).collect(), |i: usize| i * i);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn map_collect_item_count_far_exceeds_pool_width() {
        // The old implementation spawned one OS thread per item; the pool
        // must handle a work list far wider than the machine.
        let out = map_collect((0..5000).collect(), |i: usize| i + 1);
        assert_eq!(out.len(), 5000);
        assert!(out.iter().enumerate().all(|(i, &v)| v == i + 1));
    }
}
