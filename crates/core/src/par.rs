//! Minimal fork-join parallelism on `std::thread::scope`.
//!
//! The paper's thread level is OpenMP `parallel for` over particle chunks;
//! earlier revisions used rayon for the same shape. Rayon is unavailable in
//! the offline build environment, so this module provides the two patterns
//! the kernels actually need — parallel `for_each` over owned work items
//! and parallel map with an ordered fold — on scoped OS threads. Chunk
//! counts are small (a few × thread count) and chunk bodies are large
//! (10⁴–10⁶ particles), so per-call thread spawning is well amortized.

/// Run `f` over every item concurrently, one scoped thread per item beyond
/// the first (the first runs on the caller's thread). With zero or one item
/// this degenerates to a plain loop with no thread traffic.
pub fn for_each<T, F>(items: Vec<T>, f: F)
where
    T: Send,
    F: Fn(T) + Sync,
{
    if items.len() <= 1 {
        for it in items {
            f(it);
        }
        return;
    }
    std::thread::scope(|s| {
        let mut iter = items.into_iter();
        let first = iter.next();
        for it in iter {
            let f = &f;
            s.spawn(move || f(it));
        }
        if let Some(it) = first {
            f(it);
        }
    });
}

/// Map every item concurrently and return the results in item order.
pub fn map_collect<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.len() <= 1 {
        return items.into_iter().map(f).collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .into_iter()
            .map(|it| {
                let f = &f;
                s.spawn(move || f(it))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                // A panic in a worker is a programming error in the mapped
                // closure; re-raise it on the caller.
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn for_each_visits_everything() {
        let hits = AtomicUsize::new(0);
        for_each((0..37).collect(), |i: usize| {
            hits.fetch_add(i + 1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), (1..=37).sum());
    }

    #[test]
    fn for_each_handles_empty_and_single() {
        let hits = AtomicUsize::new(0);
        for_each(Vec::<usize>::new(), |_| {
            hits.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        for_each(vec![5usize], |i| {
            hits.fetch_add(i, Ordering::SeqCst);
        });
        assert_eq!(hits.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn for_each_gives_threads_disjoint_mut_slices() {
        let mut data = vec![0u64; 100];
        let chunks: Vec<&mut [u64]> = data.chunks_mut(13).collect();
        for_each(chunks, |c| {
            for x in c.iter_mut() {
                *x += 1;
            }
        });
        assert!(data.iter().all(|&x| x == 1));
    }

    #[test]
    fn map_collect_preserves_order() {
        let out = map_collect((0..20).collect(), |i: usize| i * i);
        assert_eq!(out, (0..20).map(|i| i * i).collect::<Vec<_>>());
    }
}
