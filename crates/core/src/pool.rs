//! A persistent fork-join worker pool — the thread level of the paper's
//! hybrid scheme (OpenMP `parallel for`) without per-call thread spawning.
//!
//! [`crate::par`] originally spawned scoped OS threads on every parallel
//! region. That is well amortized for second-long regions, but the paper's
//! split loops run three regions *per time step*, and at 10⁵–10⁶ particles a
//! region is tens to hundreds of microseconds — the ~10–20 µs clone+join cost
//! per spawn becomes a measurable tax, and the kernel-level page-table and
//! stack traffic pollutes the caches the whole data-structure design is
//! trying to keep warm. This module keeps `N − 1` workers parked on a
//! condvar for the life of the pool and hands them stripes of each job:
//!
//! * **Deterministic assignment**: job item `i` always runs on worker
//!   `i mod N` (the caller's thread acts as worker 0). Results that are
//!   merged in worker order are therefore bitwise reproducible run-to-run,
//!   independent of scheduling — the guarantee `sim.rs` relies on when it
//!   sums per-worker ρ arenas.
//! * **Zero steady-state allocation**: publishing a job writes an epoch and
//!   a type-erased closure pointer under a mutex; nothing is boxed, sent
//!   through channels, or reference-counted per call.
//! * **Panic propagation**: a panicking stripe is caught on the worker,
//!   parked in the shared state, and re-raised on the caller after every
//!   stripe of the job has retired (so borrowed data is never freed while a
//!   surviving worker might still touch it).
//!
//! This is the one module in the crate allowed to use `unsafe`: the job
//! closure is borrowed from the caller's stack and handed to workers as a
//! raw pointer. Soundness rests on a single invariant — **the caller blocks
//! until every stripe has retired** — which `run` enforces unconditionally
//! (even when a stripe panics).

#![allow(unsafe_code)]

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Hard cap on pool width: bounds the stack-allocated per-worker tables the
/// kernels use (chunk ranges, view arrays) so the hot path never allocates.
pub const MAX_THREADS: usize = 64;

/// A type-erased job: `call(ctx, worker)` runs worker `worker`'s stripe.
#[derive(Clone, Copy)]
struct Job {
    call: unsafe fn(*const (), usize),
    ctx: *const (),
}

// SAFETY: `ctx` points at a `Ctx` on the publishing thread's stack; that
// thread blocks until `remaining == 0`, so the pointer outlives every use,
// and the `F: Sync` bound on `run` makes the shared access sound.
unsafe impl Send for Job {}

struct State {
    /// Incremented once per published job; workers run each epoch once.
    epoch: u64,
    job: Option<Job>,
    /// Spawned workers still running the current epoch.
    remaining: usize,
    /// First worker panic of the current epoch, re-raised by the caller.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// Workers park here waiting for a new epoch (or shutdown).
    work: Condvar,
    /// The caller parks here waiting for `remaining` to hit zero.
    done: Condvar,
    /// Stall deadline in nanoseconds (0 = detection off). When set, a job
    /// whose stripes have not all retired within the deadline records a
    /// [`StallEvent`] — the caller keeps waiting regardless (abandoning a
    /// stripe would free borrowed job state under a running worker), but
    /// the hang becomes observable instead of silent.
    stall_nanos: AtomicU64,
    /// Stalls observed so far; drained by [`ThreadPool::take_stall_events`].
    stalls: Mutex<Vec<StallEvent>>,
}

/// One detected worker stall: a job exceeded the configured deadline with
/// stripes still outstanding.
#[derive(Debug, Clone)]
pub struct StallEvent {
    /// Causal sequence number (see [`minimpi::next_event_seq`]) so stalls
    /// merge into the same ledger as transport and recovery events.
    pub seq: u64,
    /// Spawned-worker stripes still running when the deadline elapsed.
    pub remaining: usize,
    /// How long the caller had been waiting when the stall was recorded.
    pub waited: Duration,
}

/// The borrowed, monomorphized context behind a [`Job`].
struct Ctx<'a, F> {
    f: &'a F,
    njobs: usize,
    stride: usize,
}

/// Run worker `worker`'s stripe: items `worker, worker + stride, …`.
///
/// # Safety
/// `ctx` must point at a live `Ctx<F>` whose `f` outlives this call — the
/// pool guarantees it by blocking the publisher until all stripes retire.
unsafe fn run_stripe<F: Fn(usize) + Sync>(ctx: *const (), worker: usize) {
    let ctx = unsafe { &*ctx.cast::<Ctx<'_, F>>() };
    let mut i = worker;
    while i < ctx.njobs {
        (ctx.f)(i);
        i += ctx.stride;
    }
}

/// A persistent fork-join pool of `nthreads` workers (the creating thread
/// counts as worker 0 and participates in every job).
pub struct ThreadPool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
    nthreads: usize,
    /// Serializes concurrent `run` calls from different threads. Held for
    /// the whole fork-join, so nested `run` on the same pool deadlocks —
    /// callers must keep pool regions leaf-level (all in-tree callers do).
    leader: Mutex<()>,
}

impl ThreadPool {
    /// Create a pool of `nthreads` workers (clamped to `1..=`[`MAX_THREADS`]).
    /// `nthreads == 1` spawns nothing; every job runs inline on the caller.
    pub fn new(nthreads: usize) -> Self {
        let nthreads = nthreads.clamp(1, MAX_THREADS);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                epoch: 0,
                job: None,
                remaining: 0,
                panic: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
            stall_nanos: AtomicU64::new(0),
            stalls: Mutex::new(Vec::new()),
        });
        let handles = (1..nthreads)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pic-pool-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn pool worker")
            })
            .collect();
        Self {
            shared,
            handles,
            nthreads,
            leader: Mutex::new(()),
        }
    }

    /// Workers in the pool, including the caller's thread.
    pub fn nthreads(&self) -> usize {
        self.nthreads
    }

    /// Arm (or disarm, with `None`) hung-worker detection: a job whose
    /// stripes are not all retired within `deadline` records a
    /// [`StallEvent`]. The caller still waits for the job to finish —
    /// abandoning a stripe would free borrowed state under a live worker —
    /// so this turns a silent hang into a diagnosable one.
    pub fn set_stall_deadline(&self, deadline: Option<Duration>) {
        let nanos = deadline.map_or(0, |d| d.as_nanos().min(u64::MAX as u128) as u64);
        self.shared
            .stall_nanos
            .store(nanos, AtomicOrdering::Relaxed);
    }

    /// Drain the stall events recorded since the last call.
    pub fn take_stall_events(&self) -> Vec<StallEvent> {
        std::mem::take(&mut *self.shared.stalls.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Run `f(0), f(1), …, f(njobs − 1)` across the pool and return when all
    /// have finished. Item `i` runs on worker `i mod nthreads`; the caller
    /// executes worker 0's stripe itself. Panics in any item are re-raised
    /// here after the whole job has retired.
    pub fn run<F: Fn(usize) + Sync>(&self, njobs: usize, f: F) {
        if njobs == 0 {
            return;
        }
        if self.nthreads == 1 || njobs == 1 {
            for i in 0..njobs {
                f(i);
            }
            return;
        }
        // Poisoning is expected: a propagated job panic unwinds past this
        // guard. The pool's own state stays consistent (the panicking `run`
        // still retired the whole job before re-raising), so recover.
        let _leader = self.leader.lock().unwrap_or_else(|e| e.into_inner());
        let ctx = Ctx {
            f: &f,
            njobs,
            stride: self.nthreads,
        };
        let job = Job {
            call: run_stripe::<F>,
            ctx: (&raw const ctx).cast(),
        };
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            st.job = Some(job);
            st.epoch += 1;
            st.remaining = self.handles.len();
            self.shared.work.notify_all();
        }
        // Worker 0's stripe runs here; a panic must not unwind past the
        // wait below (workers may still hold the ctx pointer).
        let leader_result = catch_unwind(AssertUnwindSafe(|| {
            let mut i = 0;
            while i < njobs {
                f(i);
                i += self.nthreads;
            }
        }));
        let worker_panic = {
            let mut st = self.shared.state.lock().expect("pool state lock");
            let stall = self.shared.stall_nanos.load(AtomicOrdering::Relaxed);
            if stall == 0 {
                while st.remaining > 0 {
                    st = self.shared.done.wait(st).expect("pool done wait");
                }
            } else {
                let deadline = Duration::from_nanos(stall);
                let started = Instant::now();
                let mut reported = false;
                while st.remaining > 0 {
                    let (guard, timeout) = self
                        .shared
                        .done
                        .wait_timeout(st, deadline)
                        .expect("pool done wait");
                    st = guard;
                    if timeout.timed_out() && st.remaining > 0 && !reported {
                        // Record once per job, then keep waiting: the
                        // soundness invariant (caller blocks until every
                        // stripe retires) is non-negotiable.
                        reported = true;
                        self.shared
                            .stalls
                            .lock()
                            .unwrap_or_else(|e| e.into_inner())
                            .push(StallEvent {
                                seq: minimpi::next_event_seq(),
                                remaining: st.remaining,
                                waited: started.elapsed(),
                            });
                    }
                }
            }
            st.job = None;
            st.panic.take()
        };
        if let Err(p) = leader_result {
            resume_unwind(p);
        }
        if let Some(p) = worker_panic {
            resume_unwind(p);
        }
    }

    /// Run `f(i, &mut items[i])` for every item, striped across the pool
    /// like [`run`](Self::run). With `items.len() == nthreads()` this gives
    /// each worker exactly one item — the shape the per-worker arena
    /// reductions use.
    pub fn run_items<T: Send, F: Fn(usize, &mut T) + Sync>(&self, items: &mut [T], f: F) {
        struct SendPtr<T>(*mut T);
        // SAFETY: shared across workers by reference; each index is visited
        // exactly once, so the derived `&mut` references never alias.
        unsafe impl<T> Sync for SendPtr<T> {}
        impl<T> SendPtr<T> {
            // A method (rather than field access) so the closure captures
            // the Sync wrapper itself, not the raw-pointer field.
            fn at(&self, i: usize) -> *mut T {
                // SAFETY of the offset is the caller's `i < items.len()`.
                unsafe { self.0.add(i) }
            }
        }
        let ptr = SendPtr(items.as_mut_ptr());
        self.run(items.len(), |i| {
            // SAFETY: `i < items.len()` and each `i` runs exactly once
            // across all stripes (disjoint residues mod nthreads).
            let item = unsafe { &mut *ptr.at(i) };
            f(i, item);
        });
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().expect("pool state lock");
            st.shutdown = true;
            self.shared.work.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

fn worker_loop(shared: &Shared, worker: usize) {
    let mut seen_epoch = 0u64;
    loop {
        let job = {
            let mut st = shared.state.lock().expect("pool state lock");
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen_epoch {
                    seen_epoch = st.epoch;
                    break st.job.expect("epoch advanced without a job");
                }
                st = shared.work.wait(st).expect("pool work wait");
            }
        };
        // SAFETY: the publisher blocks until `remaining == 0`, so `job.ctx`
        // is live for the duration of this call.
        let result = catch_unwind(AssertUnwindSafe(|| unsafe { (job.call)(job.ctx, worker) }));
        let mut st = shared.state.lock().expect("pool state lock");
        if let Err(p) = result {
            if st.panic.is_none() {
                st.panic = Some(p);
            }
        }
        st.remaining -= 1;
        if st.remaining == 0 {
            shared.done.notify_one();
        }
    }
}

/// The pool as a [`spectral::fft::RowExecutor`]: the seam through which the
/// per-step Poisson solve stripes its FFT row batches and transpose blocks
/// over the same persistent workers as the particle loops. The batch is
/// split into at most `nthreads` contiguous whole-row blocks held in a
/// stack array ([`MAX_THREADS`] slots), so the hot path stays allocation-
/// free; block `c` runs on worker `c` (deterministic striping), though the
/// result is schedule-independent because rows are transformed in place and
/// independently.
impl spectral::fft::RowExecutor for ThreadPool {
    fn width(&self) -> usize {
        self.nthreads
    }

    fn run_rows(
        &self,
        data: &mut [spectral::Complex64],
        row_len: usize,
        f: &(dyn Fn(usize, &mut [spectral::Complex64]) + Sync),
    ) {
        assert_eq!(data.len() % row_len.max(1), 0, "partial row in batch");
        let nrows = data.len() / row_len.max(1);
        let k = self.nthreads.min(nrows);
        if k <= 1 {
            if !data.is_empty() {
                f(0, data);
            }
            return;
        }
        let mut blocks: [(usize, &mut [spectral::Complex64]); MAX_THREADS] =
            std::array::from_fn(|_| (0, Default::default()));
        let mut rest = data;
        for (c, slot) in blocks.iter_mut().enumerate().take(k) {
            let (start, end) = chunk_range(nrows, k, c);
            let (head, tail) = rest.split_at_mut((end - start) * row_len);
            *slot = (start, head);
            rest = tail;
        }
        self.run_items(&mut blocks[..k], |_, (first, block)| f(*first, block));
    }
}

/// Split `n` items into `nchunks` near-equal contiguous ranges; returns the
/// half-open range of chunk `c`. Chunk sizes differ by at most one, with the
/// larger chunks first (matching [`crate::kernels::split_soa_mut`]).
#[inline]
pub fn chunk_range(n: usize, nchunks: usize, c: usize) -> (usize, usize) {
    let base = n / nchunks;
    let extra = n % nchunks;
    let start = c * base + c.min(extra);
    let end = start + base + usize::from(c < extra);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_index_exactly_once() {
        let pool = ThreadPool::new(4);
        for njobs in [0usize, 1, 3, 4, 5, 17, 100] {
            let hits: Vec<AtomicUsize> = (0..njobs).map(|_| AtomicUsize::new(0)).collect();
            pool.run(njobs, |i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::SeqCst) == 1),
                "njobs={njobs}"
            );
        }
    }

    #[test]
    fn run_items_gives_disjoint_mut_access() {
        let pool = ThreadPool::new(3);
        let mut items: Vec<u64> = vec![0; 50];
        pool.run_items(&mut items, |i, v| *v = i as u64 + 1);
        assert!(items.iter().enumerate().all(|(i, &v)| v == i as u64 + 1));
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert_eq!(pool.nthreads(), 1);
        assert!(pool.handles.is_empty());
        let mut items = vec![0u32; 7];
        pool.run_items(&mut items, |_, v| *v += 1);
        assert!(items.iter().all(|&v| v == 1));
    }

    #[test]
    fn pool_is_reusable_across_many_jobs() {
        let pool = ThreadPool::new(4);
        let total = AtomicUsize::new(0);
        for _ in 0..200 {
            pool.run(8, |_| {
                total.fetch_add(1, Ordering::SeqCst);
            });
        }
        assert_eq!(total.load(Ordering::SeqCst), 1600);
    }

    #[test]
    fn deterministic_striping() {
        // Item i must land on worker i mod nthreads: with njobs == nthreads
        // each worker gets exactly one item, so per-worker arenas are a
        // stable partition of the work.
        let pool = ThreadPool::new(4);
        let mut owners = vec![usize::MAX; 4];
        pool.run_items(&mut owners, |i, slot| {
            *slot = i; // each slot written by exactly one stripe
        });
        assert_eq!(owners, vec![0, 1, 2, 3]);
    }

    #[test]
    fn panic_propagates_and_pool_survives() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, |i| {
                assert!(i != 5, "boom at {i}");
            });
        }));
        assert!(result.is_err());
        // The pool must still work after a panicked job.
        let count = AtomicUsize::new(0);
        pool.run(16, |_| {
            count.fetch_add(1, Ordering::SeqCst);
        });
        assert_eq!(count.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn width_is_clamped() {
        assert_eq!(ThreadPool::new(0).nthreads(), 1);
        assert_eq!(ThreadPool::new(MAX_THREADS + 50).nthreads(), MAX_THREADS);
    }

    #[test]
    fn chunk_ranges_cover_exactly() {
        for n in [0usize, 1, 7, 100, 101] {
            for nchunks in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for c in 0..nchunks {
                    let (s, e) = chunk_range(n, nchunks, c);
                    assert_eq!(s, covered, "n={n} nchunks={nchunks} c={c}");
                    covered = e;
                    assert!(e - s <= n / nchunks + 1);
                }
                assert_eq!(covered, n);
            }
        }
    }

    #[test]
    fn stall_deadline_detects_slow_stripe_and_pool_survives() {
        let pool = ThreadPool::new(2);
        pool.set_stall_deadline(Some(Duration::from_millis(20)));
        // Stripe on the spawned worker (odd index) sleeps well past the
        // deadline; the job still completes, but the stall is recorded.
        pool.run(2, |i| {
            if i == 1 {
                std::thread::sleep(Duration::from_millis(120));
            }
        });
        let stalls = pool.take_stall_events();
        assert_eq!(stalls.len(), 1, "one stall per job");
        assert_eq!(stalls[0].remaining, 1);
        assert!(stalls[0].waited >= Duration::from_millis(20));
        assert!(pool.take_stall_events().is_empty(), "drained");
        // Fast jobs under the same deadline record nothing.
        pool.run(8, |_| {});
        assert!(pool.take_stall_events().is_empty());
        // Disarming returns to the untimed wait.
        pool.set_stall_deadline(None);
        pool.run(8, |_| {});
        assert!(pool.take_stall_events().is_empty());
    }

    #[test]
    fn row_executor_blocks_cover_rows_exactly_once() {
        use spectral::fft::RowExecutor;
        use spectral::Complex64;
        let pool = ThreadPool::new(3);
        for (nrows, row_len) in [(0usize, 4usize), (1, 4), (2, 4), (7, 3), (64, 1), (5, 16)] {
            let mut data = vec![Complex64::ZERO; nrows * row_len];
            pool.run_rows(&mut data, row_len, &|first, block| {
                assert_eq!(block.len() % row_len, 0, "partial row handed out");
                for (r, row) in block.chunks_exact_mut(row_len).enumerate() {
                    for z in row.iter_mut() {
                        // Stamp each element with its global row index + 1.
                        *z += Complex64::from_re((first + r + 1) as f64);
                    }
                }
            });
            for (i, z) in data.iter().enumerate() {
                let row = i / row_len;
                assert_eq!(
                    z.re,
                    (row + 1) as f64,
                    "nrows={nrows} row_len={row_len} i={i}"
                );
            }
        }
    }

    #[test]
    fn concurrent_callers_are_serialized() {
        let pool = Arc::new(ThreadPool::new(2));
        let total = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                s.spawn(move || {
                    for _ in 0..50 {
                        pool.run(4, |_| {
                            total.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::SeqCst), 4 * 50 * 4);
    }
}
