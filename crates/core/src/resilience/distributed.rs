//! Coordinated distributed checkpointing and crash-fault recovery — the
//! rank-level counterpart of [`super::watchdog`]'s single-process rollback.
//!
//! [`run_resilient_distributed`] drives `W` *logical* ranks (one
//! [`Simulation`] slice of the global particle set each, via the caller's
//! `make_cfg`) over a [`minimpi::Comm`] whose physical ranks can die
//! mid-run. The design has three pillars:
//!
//! * **Ordered logical reduction.** Each step, every hosted simulation
//!   deposits its partial ρ; the partials travel to the group root, which
//!   sums them *strictly in logical-rank order 0‥W−1* and broadcasts the
//!   total. Summation order is therefore a function of the logical
//!   decomposition alone — independent of which physical rank hosts which
//!   simulation — which is what makes a post-recovery trajectory (fewer
//!   physical ranks, same logical ranks) bit-exact against the fault-free
//!   run.
//! * **Buddy checkpointing.** Every `checkpoint_every` steps each rank
//!   snapshots its hosted simulations through the versioned format of
//!   [`super::checkpoint`] and replicates the bytes in-memory to its
//!   *buddy* — the next live rank in the group. One copy survives any
//!   single rank loss per checkpoint interval; losing a rank *and* its
//!   buddy together is reported as unrecoverable rather than guessed at.
//! * **Shrinking recovery.** When a collective surfaces
//!   [`CommError::RankFailed`], survivors agree on the failure via
//!   [`minimpi::Comm::shrink`], the dead rank's logical simulations are
//!   rebuilt on its buddy from the replicated snapshot, every survivor
//!   rolls back to its own snapshot, and the run resumes from the
//!   checkpointed step — all of it recorded in a [`FaultLog`].
//!
//! The fault-free path pays only the snapshot encode + one buddy
//! send/recv per checkpoint interval (measured in
//! `results/BENCH_resilience.json`); detection machinery is entirely
//! inside `minimpi` and idle unless armed.

use crate::faultlog::{FaultKind, FaultLog};
use crate::sim::{PicConfig, Simulation};
use crate::PicError;
use minimpi::{Comm, CommError};
use std::time::Duration;

/// Tag blocks for the runner's collectives; all below minimpi's control
/// ranges and disjoint from each other.
const INIT_TAG: u64 = 1 << 32;
const CKPT_TAG: u64 = 1 << 33;
const RECOVER_TAG: u64 = 1 << 34;
const STEP_TAG: u64 = 1 << 20;

/// Knobs for [`run_resilient_distributed`].
#[derive(Debug, Clone)]
pub struct DistConfig {
    /// Take a coordinated buddy checkpoint every this many steps (≥ 1).
    pub checkpoint_every: u64,
    /// Give up after this many successful recoveries.
    pub max_recoveries: usize,
    /// Arm the heartbeat failure detector with this timeout (crash faults
    /// injected through [`minimpi::FaultPlan::kill_rank`] are detected via
    /// shared dead flags even without it).
    pub heartbeat_timeout: Option<Duration>,
    /// Override the transport receive deadline for the whole run.
    pub recv_deadline: Option<Duration>,
}

impl Default for DistConfig {
    fn default() -> Self {
        Self {
            checkpoint_every: 5,
            max_recoveries: 3,
            heartbeat_timeout: None,
            recv_deadline: None,
        }
    }
}

/// What one physical rank ends a [`run_resilient_distributed`] call with.
pub struct DistOutcome {
    /// False if this rank was killed by a crash fault (its `sims` are gone).
    pub survivor: bool,
    /// This rank's world rank.
    pub world_rank: usize,
    /// The logical simulations this rank hosts after the run, sorted by
    /// logical id — its own, plus any adopted from dead ranks.
    pub sims: Vec<(usize, Simulation)>,
    /// Completed recoveries (shrink + rollback cycles).
    pub recoveries: usize,
    /// Coordinated checkpoints taken.
    pub checkpoints: usize,
    /// This rank's slice of the fault-event ledger; merge the per-rank
    /// logs with [`FaultLog::merge`] for the causally ordered whole.
    pub log: FaultLog,
}

/// One committed coordinated checkpoint generation. The runner keeps the
/// last two: a crash during a checkpoint exchange can leave some survivors
/// with the new generation committed and others still on the old one, and
/// recovery then agrees on the newest *globally* committed step — which
/// every rank holds as either its latest or its previous generation.
struct Ckpt {
    step: u64,
    /// Live group at checkpoint time (buddy placement is defined on it).
    group: Vec<usize>,
    /// Logical-rank → hosting physical rank at checkpoint time.
    assign: Vec<usize>,
    /// This rank's own snapshots: `(logical id, bytes)`.
    own: Vec<(usize, Vec<u8>)>,
    /// Packed snapshots held for the predecessor (this rank is its
    /// buddy), kept in transport form and unpacked only if recovery
    /// actually needs them — unpacking every generation on the fault-free
    /// path was measurable checkpoint overhead.
    buddy: Vec<f64>,
}

fn comm_err(ctx: &str, e: CommError) -> PicError {
    PicError::Io(format!("{ctx}: {e}"))
}

/// Pack checkpoint snapshots into an f64 payload:
/// `[count, (id, nbytes, ceil(nbytes/8) packed words)…]` — the transport
/// form buddy checkpoint copies travel in. Public because every runner
/// that replicates snapshots over `minimpi` (this one, the decomposition
/// layer's elastic runner) needs the same byte ↔ f64 framing.
pub fn pack_snaps(snaps: &[(usize, Vec<u8>)]) -> Vec<f64> {
    let total: usize = snaps.iter().map(|(_, b)| 2 + b.len().div_ceil(8)).sum();
    let mut out = Vec::with_capacity(1 + total);
    out.push(snaps.len() as f64);
    for (id, bytes) in snaps {
        out.push(*id as f64);
        out.push(bytes.len() as f64);
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            out.push(f64::from_bits(u64::from_le_bytes(c.try_into().unwrap())));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            out.push(f64::from_bits(u64::from_le_bytes(word)));
        }
    }
    out
}

/// Inverse of [`pack_snaps`].
pub fn unpack_snaps(payload: &[f64]) -> Vec<(usize, Vec<u8>)> {
    let count = payload[0] as usize;
    let mut out = Vec::with_capacity(count);
    let mut off = 1;
    for _ in 0..count {
        let id = payload[off] as usize;
        let nbytes = payload[off + 1] as usize;
        let nwords = nbytes.div_ceil(8);
        let mut bytes = vec![0u8; nwords * 8];
        for (dst, w) in bytes
            .chunks_exact_mut(8)
            .zip(&payload[off + 2..off + 2 + nwords])
        {
            dst.copy_from_slice(&w.to_bits().to_le_bytes());
        }
        bytes.truncate(nbytes);
        out.push((id, bytes));
        off += 2 + nwords;
    }
    out
}

/// Sum the partial ρ of every hosted simulation across the group, strictly
/// in logical-rank order: gather `(id, ρ)` pairs to the group root, left-fold
/// from logical rank 0 upward, broadcast the total. The result is bitwise
/// independent of the physical hosting (and, with one logical rank, bitwise
/// equal to the lone partial).
fn ordered_reduce(
    comm: &mut Comm,
    w: usize,
    local: &[(usize, Vec<f64>)],
    tag: u64,
) -> Result<Vec<f64>, CommError> {
    let n = local[0].1.len();
    let mut payload = Vec::with_capacity(1 + local.len() * (1 + n));
    payload.push(local.len() as f64);
    for (id, rho) in local {
        payload.push(*id as f64);
        payload.extend_from_slice(rho);
    }
    let mut reduced = vec![0.0; n];
    if let Some(parts) = comm.try_gather(&payload, tag)? {
        let mut by_id: Vec<Option<&[f64]>> = vec![None; w];
        for p in &parts {
            let count = p[0] as usize;
            let mut off = 1;
            for _ in 0..count {
                let id = p[off] as usize;
                by_id[id] = Some(&p[off + 1..off + 1 + n]);
                off += 1 + n;
            }
        }
        // Left-fold in logical order, seeded from logical rank 0's partial
        // (not zeros) so a single-logical-rank reduction is the identity.
        for (id, slot) in by_id.iter().enumerate() {
            let part = slot.unwrap_or_else(|| panic!("logical rank {id} missing from reduction"));
            if id == 0 {
                reduced.copy_from_slice(part);
            } else {
                for (acc, v) in reduced.iter_mut().zip(part) {
                    *acc += *v;
                }
            }
        }
    }
    comm.try_broadcast(&mut reduced, tag + 1)?;
    Ok(reduced)
}

/// One fallible unit of forward progress: the coordinated checkpoint (when
/// due) plus one simulation step of every hosted logical rank.
#[allow(clippy::too_many_arguments)]
fn step_cycle(
    comm: &mut Comm,
    w: usize,
    sims: &mut [(usize, Simulation)],
    assign: &[usize],
    step: u64,
    need_ckpt: bool,
    cks: &mut Vec<Ckpt>,
    checkpoints: &mut usize,
    log: &mut FaultLog,
) -> Result<(), CommError> {
    let rank = comm.rank();
    if need_ckpt {
        let own: Vec<(usize, Vec<u8>)> = sims.iter().map(|(id, s)| (*id, s.checkpoint())).collect();
        let group = comm.group().to_vec();
        let buddy_snaps = if group.len() > 1 {
            let gi = group
                .iter()
                .position(|&g| g == rank)
                .expect("rank in own group");
            let buddy = group[(gi + 1) % group.len()];
            let ward = group[(gi + group.len() - 1) % group.len()];
            let payload = pack_snaps(&own);
            comm.try_send(buddy, CKPT_TAG, &payload)?;
            let got = comm.try_recv(ward, CKPT_TAG)?;
            log.record(
                step,
                rank,
                comm.op_count(),
                FaultKind::BuddyStore,
                format!("holding {} snapshot(s) for rank {ward}", got[0] as usize),
            );
            got
        } else {
            Vec::new()
        };
        // Commit only after every exchange succeeded, so a failure mid-
        // checkpoint leaves the previous (complete) generation in force.
        log.record(
            step,
            rank,
            comm.op_count(),
            FaultKind::Checkpoint,
            format!("step {step}, {} sim(s)", own.len()),
        );
        cks.push(Ckpt {
            step,
            group,
            assign: assign.to_vec(),
            own,
            buddy: buddy_snaps,
        });
        if cks.len() > 2 {
            cks.remove(0);
        }
        *checkpoints += 1;
    }

    for (_, sim) in sims.iter_mut() {
        sim.step_pre_reduce();
    }
    let local: Vec<(usize, Vec<f64>)> = sims
        .iter_mut()
        .map(|(id, s)| (*id, s.rho_mut().to_vec()))
        .collect();
    let reduced = ordered_reduce(comm, w, &local, STEP_TAG + 2 * step)?;
    for (_, sim) in sims.iter_mut() {
        sim.rho_mut().copy_from_slice(&reduced);
        sim.step_post_reduce();
    }
    Ok(())
}

/// Shrink, agree on the rollback step, adopt the dead ranks' logical
/// simulations from their buddy copies, and roll every survivor back.
/// Returns the agreed step the run resumes from.
#[allow(clippy::too_many_arguments)] // one call site; bundling would only rename the coupling
fn recover(
    comm: &mut Comm,
    w: usize,
    sims: &mut Vec<(usize, Simulation)>,
    assign: &mut Vec<usize>,
    cks: &[Ckpt],
    make_cfg: &dyn Fn(usize) -> PicConfig,
    log: &mut FaultLog,
    step: u64,
) -> Result<u64, PicError> {
    let rank = comm.rank();
    let new_group = comm.shrink().map_err(|e| comm_err("shrink", e))?;
    log.ingest_transport(step, comm.take_events());
    if cks.is_empty() {
        // A death during construction or the very first checkpoint
        // exchange: nothing has been replicated yet, so there is no copy
        // of the dead rank's slice to adopt.
        return Err(PicError::Io(
            "unrecoverable: rank failed before the first coordinated checkpoint committed".into(),
        ));
    }

    // A crash during a checkpoint exchange can leave survivors with
    // different latest generations (off by one): agree on the newest step
    // *every* survivor has committed — the minimum of the latest steps.
    let latest = cks.last().expect("non-empty").step;
    let agreed = {
        let gathered = comm
            .try_gather(&[latest as f64], RECOVER_TAG)
            .map_err(|e| comm_err("rollback agreement", e))?;
        let mut min =
            gathered.map(|parts| parts.iter().map(|p| p[0]).fold(f64::INFINITY, f64::min));
        let mut buf = [min.take().unwrap_or(0.0)];
        comm.try_broadcast(&mut buf, RECOVER_TAG + 1)
            .map_err(|e| comm_err("rollback agreement", e))?;
        buf[0] as u64
    };
    let ck = cks.iter().rev().find(|c| c.step == agreed).ok_or_else(|| {
        PicError::Io(format!(
            "unrecoverable: no local checkpoint for agreed rollback step {agreed}"
        ))
    })?;

    let buddy_snaps = if ck.buddy.is_empty() {
        Vec::new()
    } else {
        unpack_snaps(&ck.buddy)
    };
    debug_assert_eq!(ck.assign.len(), w);
    let mut new_assign = ck.assign.clone();
    for (id, &host) in ck.assign.iter().enumerate() {
        if new_group.contains(&host) {
            if host == rank {
                // Roll back our own copy to the checkpointed state.
                let bytes = &ck
                    .own
                    .iter()
                    .find(|(i, _)| *i == id)
                    .expect("own checkpoint covers hosted sim")
                    .1;
                let sim = &mut sims
                    .iter_mut()
                    .find(|(i, _)| *i == id)
                    .expect("hosted sim present")
                    .1;
                sim.restore(bytes)?;
                log.record(
                    ck.step,
                    rank,
                    comm.op_count(),
                    FaultKind::Rollback,
                    format!("logical rank {id} back to step {}", ck.step),
                );
            }
            continue;
        }
        // Host died: only its immediate successor in the checkpoint-time
        // group holds the replicated snapshot.
        let gi = ck
            .group
            .iter()
            .position(|&g| g == host)
            .expect("checkpoint group covers old host");
        let adopter = ck.group[(gi + 1) % ck.group.len()];
        if !new_group.contains(&adopter) {
            return Err(PicError::Io(format!(
                "unrecoverable: rank {host} and its buddy {adopter} both failed"
            )));
        }
        new_assign[id] = adopter;
        if adopter == rank {
            let bytes = &buddy_snaps
                .iter()
                .find(|(i, _)| *i == id)
                .ok_or_else(|| {
                    PicError::Io(format!(
                        "unrecoverable: no buddy snapshot for logical rank {id}"
                    ))
                })?
                .1;
            if let Some((_, sim)) = sims.iter_mut().find(|(i, _)| *i == id) {
                // Already adopted in an earlier recovery from this same
                // checkpoint — just roll it back.
                sim.restore(bytes)?;
            } else {
                let mut ghost = Simulation::new(make_cfg(id))?;
                ghost.restore(bytes)?;
                sims.push((id, ghost));
            }
            log.record(
                ck.step,
                rank,
                comm.op_count(),
                FaultKind::Restore,
                format!("adopted logical rank {id} from dead rank {host}"),
            );
        }
    }
    // Drop anything the agreed generation assigns to another live rank
    // (possible only after cascaded recoveries with stale adoptions).
    sims.retain(|(id, _)| new_assign[*id] == rank);
    sims.sort_by_key(|(id, _)| *id);
    *assign = new_assign;
    Ok(ck.step)
}

/// Run `nsteps` of a `W`-logical-rank distributed simulation on this
/// physical rank, surviving crash faults: detected failures shrink the
/// communicator, the dead rank's work moves to its buddy, and all
/// survivors roll back to the last coordinated checkpoint and replay.
///
/// `make_cfg(logical_id)` must return the configuration of logical rank
/// `logical_id` — typically [`PicConfig::landau_table1`] with
/// `keep_range` set to that rank's particle slice. Every physical rank
/// must call this with the same `nsteps`, `rcfg`, and (pointwise-equal)
/// `make_cfg`.
///
/// With no faults injected the trajectory is bit-exact against any other
/// physical-rank count hosting the same logical decomposition — including
/// the single-rank case, where it reduces to a plain [`Simulation::run`].
pub fn run_resilient_distributed(
    comm: &mut Comm,
    make_cfg: &dyn Fn(usize) -> PicConfig,
    nsteps: u64,
    rcfg: &DistConfig,
) -> Result<DistOutcome, PicError> {
    let w = comm.size();
    let rank = comm.rank();
    if let Some(d) = rcfg.heartbeat_timeout {
        comm.set_heartbeat_timeout(d);
    }
    if let Some(d) = rcfg.recv_deadline {
        comm.set_recv_deadline(d);
    }
    let mut log = FaultLog::new();

    let dead_outcome = |recoveries, checkpoints, log| DistOutcome {
        survivor: false,
        world_rank: rank,
        sims: Vec::new(),
        recoveries,
        checkpoints,
        log,
    };

    // Construct this rank's own logical simulation; the initial deposit is
    // reduced in logical order exactly like the per-step ones.
    let mut init_err: Option<CommError> = None;
    let sim = {
        let init_err = &mut init_err;
        let comm = &mut *comm;
        Simulation::new_with_reduce(make_cfg(rank), move |rho| {
            match ordered_reduce(comm, w, &[(rank, rho.to_vec())], INIT_TAG) {
                Ok(reduced) => rho.copy_from_slice(&reduced),
                Err(e) => *init_err = Some(e),
            }
        })?
    };
    log.ingest_transport(0, comm.take_events());
    match init_err {
        Some(CommError::RankFailed { rank: r, failed }) if failed == r => {
            return Ok(dead_outcome(0, 0, log));
        }
        Some(e) => return Err(comm_err("setup reduction", e)),
        None => {}
    }

    let mut sims: Vec<(usize, Simulation)> = vec![(rank, sim)];
    let mut assign: Vec<usize> = (0..w).collect();
    let mut cks: Vec<Ckpt> = Vec::new();
    let every = rcfg.checkpoint_every.max(1);
    let mut step: u64 = 0;
    let mut recoveries = 0usize;
    let mut checkpoints = 0usize;
    let mut need_ckpt = true; // always have a committed checkpoint at step 0

    while step < nsteps {
        let res = step_cycle(
            comm,
            w,
            &mut sims,
            &assign,
            step,
            need_ckpt,
            &mut cks,
            &mut checkpoints,
            &mut log,
        );
        log.ingest_transport(step, comm.take_events());
        match res {
            Ok(()) => {
                need_ckpt = false;
                step += 1;
                if step < nsteps && step.is_multiple_of(every) {
                    need_ckpt = true;
                }
            }
            Err(CommError::RankFailed { rank: r, failed }) if failed == r => {
                return Ok(dead_outcome(recoveries, checkpoints, log));
            }
            Err(CommError::RankFailed { .. }) => {
                if recoveries >= rcfg.max_recoveries {
                    return Err(PicError::Io(format!(
                        "gave up after {recoveries} recoveries"
                    )));
                }
                let resume = recover(
                    comm,
                    w,
                    &mut sims,
                    &mut assign,
                    &cks,
                    make_cfg,
                    &mut log,
                    step,
                )?;
                recoveries += 1;
                step = resume;
                // Re-checkpoint immediately under the shrunken topology so
                // the buddy placement matches the new group.
                need_ckpt = true;
            }
            Err(e) => return Err(comm_err("step", e)),
        }
    }

    sims.sort_by_key(|(id, _)| *id);
    Ok(DistOutcome {
        survivor: true,
        world_rank: rank,
        sims,
        recoveries,
        checkpoints,
        log,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_packing_roundtrips() {
        let snaps = vec![
            (3usize, vec![1u8, 2, 3, 4, 5, 6, 7, 8, 9]),
            (0usize, (0..=255u8).collect::<Vec<u8>>()),
            (7usize, Vec::new()),
        ];
        let packed = pack_snaps(&snaps);
        assert_eq!(unpack_snaps(&packed), snaps);
        assert_eq!(unpack_snaps(&pack_snaps(&[])), Vec::new());
    }
}
