//! The checkpoint wire format: versioned, checksummed, little-endian.
//!
//! Layout of an encoded snapshot:
//!
//! ```text
//! magic            8 B   b"PIC2DCKP"
//! version          u32   FORMAT_VERSION
//! config_fprint    u64   hash of Debug-formatted PicConfig (layout knobs,
//!                        grid, dt, seed — a snapshot only restores into a
//!                        simulation built from the same configuration)
//! step_count       u64
//! rng_state        4×u64 xoshiro256++ stream position
//! charge_ref       f64   total-charge reference for the watchdog
//! kernel_path      u32   active hot-path knobs at capture time — metadata,
//! deposit_path     u32   not fingerprint: the adaptive controller may have
//! sort_period      u64   moved them off the configured defaults, and a
//! ctrl_len, ctrl   u64+n restored run must resume the last decision (plus
//!                        the controller's serialized decision state)
//! n_particles      u64
//! icell,ix,iy      3×n×u32
//! dx,dy,vx,vy      4×n×f64
//! n_grid           u64
//! rho,ex,ey        3×n_grid×f64
//! n_diag           u64
//! diag history     n_diag×4×f64 (time, kinetic, field, ex_mode)
//! checksum         u64   snapshot_hash (4-lane word FNV) over every preceding byte
//! ```
//!
//! All floating-point values are stored as raw IEEE-754 bit patterns, so a
//! decode→encode round trip is the identity and restore is bit-exact. The
//! trailing checksum covers the header too: any single flipped bit in a
//! snapshot file is rejected with [`PicError::Checkpoint`] rather than
//! silently corrupting a resumed run.

use crate::particles::ParticlesSoA;
use crate::sim::{DepositPath, DiagSample, KernelPath};
use crate::PicError;

/// Current snapshot format version. Bumped on any layout change; decoding
/// rejects snapshots from other versions. v2 added the hot-path metadata
/// block (active kernel/deposit/sort-period plus adaptive-controller state)
/// between the charge reference and the particle store.
pub const FORMAT_VERSION: u32 = 2;

const MAGIC: [u8; 8] = *b"PIC2DCKP";

/// Active hot-path knobs at capture time, carried as snapshot *metadata*
/// rather than folded into the config fingerprint: the adaptive controller
/// ([`crate::control::HotPathController`]) may have moved the kernel,
/// deposit, or sort period off the configured defaults, and a restored run
/// must resume the controller's last decision instead of silently
/// reverting. `controller` is the serialized decision state
/// ([`crate::control::HotPathController::encode_state`]); empty when no
/// controller is attached.
#[derive(Debug, Clone, PartialEq)]
pub struct HotPathMeta {
    /// Kernel path in effect when the snapshot was captured.
    pub kernel_path: KernelPath,
    /// Deposit path in effect when the snapshot was captured.
    pub deposit_path: DepositPath,
    /// Sort period in effect (the legacy fixed cadence; ignored while a
    /// controller drives the sort schedule).
    pub sort_period: u64,
    /// Serialized controller decision state, or empty.
    pub controller: Vec<u8>,
}

impl HotPathMeta {
    /// Metadata for a config-driven run (no adaptation has happened).
    pub fn fixed(kernel_path: KernelPath, deposit_path: DepositPath, sort_period: u64) -> Self {
        Self {
            kernel_path,
            deposit_path,
            sort_period,
            controller: Vec::new(),
        }
    }
}

fn kernel_code(p: KernelPath) -> u32 {
    match p {
        KernelPath::Scalar => 0,
        KernelPath::Lanes => 1,
    }
}

fn kernel_from_code(c: u32) -> Result<KernelPath, PicError> {
    match c {
        0 => Ok(KernelPath::Scalar),
        1 => Ok(KernelPath::Lanes),
        _ => Err(PicError::Checkpoint(format!(
            "snapshot has unknown kernel-path code {c}"
        ))),
    }
}

fn deposit_code(p: DepositPath) -> u32 {
    match p {
        DepositPath::Exact => 0,
        DepositPath::LaneReduce => 1,
        DepositPath::SortedBlock => 2,
    }
}

fn deposit_from_code(c: u32) -> Result<DepositPath, PicError> {
    match c {
        0 => Ok(DepositPath::Exact),
        1 => Ok(DepositPath::LaneReduce),
        2 => Ok(DepositPath::SortedBlock),
        _ => Err(PicError::Checkpoint(format!(
            "snapshot has unknown deposit-path code {c}"
        ))),
    }
}

/// The complete restorable state of a [`crate::sim::Simulation`], as plain
/// data. [`crate::sim::Simulation::checkpoint`] gathers one of these and
/// [`encode`]s it; restore [`decode`]s and applies it.
#[derive(Debug, Clone, PartialEq)]
pub struct SimState {
    /// Fingerprint of the owning configuration.
    pub config_fingerprint: u64,
    /// Steps taken when the snapshot was captured.
    pub step_count: u64,
    /// RNG stream position (xoshiro256++ internal state).
    pub rng_state: [u64; 4],
    /// Total-charge reference captured at initialization.
    pub charge_ref: f64,
    /// Active hot-path knobs and controller state at capture time.
    pub hot_path: HotPathMeta,
    /// Particle store (SoA canonical form; AoS runs convert losslessly).
    pub particles: ParticlesSoA,
    /// Charge density on grid points.
    pub rho: Vec<f64>,
    /// Electric field x-component on grid points.
    pub ex: Vec<f64>,
    /// Electric field y-component on grid points.
    pub ey: Vec<f64>,
    /// Diagnostics history (one sample per step plus the initial state).
    pub diag: Vec<DiagSample>,
}

/// Checksum used for snapshot integrity: FNV-1a style, but word-wise over
/// four independent lanes folded in lane order, with a byte-serial tail
/// for the last `len % 32` bytes. A plain byte-serial FNV is one long
/// dependent multiply chain and tops out near 1 GB/s, which made the
/// checksum the single largest cost of taking a checkpoint; four lanes
/// let the CPU overlap the multiplies while staying deterministic and
/// position-sensitive.
pub fn snapshot_hash(bytes: &[u8]) -> u64 {
    const SEED: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut lanes = [SEED; 4];
    let mut chunks = bytes.chunks_exact(32);
    for c in &mut chunks {
        for (i, lane) in lanes.iter_mut().enumerate() {
            let w = u64::from_le_bytes(c[i * 8..i * 8 + 8].try_into().unwrap());
            *lane = (*lane ^ w).wrapping_mul(PRIME);
        }
    }
    let mut h = SEED;
    for lane in lanes {
        h = (h ^ lane).wrapping_mul(PRIME);
    }
    for &b in chunks.remainder() {
        h = (h ^ b as u64).wrapping_mul(PRIME);
    }
    h
}

/// FNV-1a 64-bit hash over a byte slice (used for the small canonical
/// config string behind [`config_fingerprint`]; snapshot bodies use the
/// faster [`snapshot_hash`]).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// ---------------- encoding ----------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

// The slice writers serialize through a small cache-resident staging
// block and append it with one `extend_from_slice` per block: appending
// element-wise pays a capacity check and length update per value, and a
// zero-filling `resize` touches every destination page twice. Both made
// `encode` the dominant cost of taking a multi-megabyte snapshot.

const STAGE: usize = 512;

fn put_u32_slice(buf: &mut Vec<u8>, s: &[u32]) {
    let mut block = [0u8; 4 * STAGE];
    for chunk in s.chunks(STAGE) {
        for (dst, v) in block.chunks_exact_mut(4).zip(chunk) {
            dst.copy_from_slice(&v.to_le_bytes());
        }
        buf.extend_from_slice(&block[..chunk.len() * 4]);
    }
}

fn put_f64_slice(buf: &mut Vec<u8>, s: &[f64]) {
    let mut block = [0u8; 8 * STAGE];
    for chunk in s.chunks(STAGE) {
        for (dst, v) in block.chunks_exact_mut(8).zip(chunk) {
            dst.copy_from_slice(&v.to_bits().to_le_bytes());
        }
        buf.extend_from_slice(&block[..chunk.len() * 8]);
    }
}

fn put_hot_path(buf: &mut Vec<u8>, hp: &HotPathMeta) {
    put_u32(buf, kernel_code(hp.kernel_path));
    put_u32(buf, deposit_code(hp.deposit_path));
    put_u64(buf, hp.sort_period);
    put_u64(buf, hp.controller.len() as u64);
    buf.extend_from_slice(&hp.controller);
}

/// Borrowed form of [`SimState`]: everything [`encode_view`] needs,
/// without owning (or cloning) any of the arrays. A multi-megabyte
/// particle store copied once per coordinated checkpoint was the dominant
/// snapshot cost; serializing straight from the simulation's own buffers
/// avoids it.
pub struct SimStateView<'a> {
    /// Fingerprint of the owning configuration.
    pub config_fingerprint: u64,
    /// Steps taken when the snapshot was captured.
    pub step_count: u64,
    /// RNG stream position.
    pub rng_state: [u64; 4],
    /// Total-charge reference captured at initialization.
    pub charge_ref: f64,
    /// Active hot-path knobs and controller state at capture time.
    pub hot_path: &'a HotPathMeta,
    /// Particle store (SoA canonical form).
    pub particles: &'a ParticlesSoA,
    /// Charge density on grid points.
    pub rho: &'a [f64],
    /// Electric field x-component on grid points.
    pub ex: &'a [f64],
    /// Electric field y-component on grid points.
    pub ey: &'a [f64],
    /// Diagnostics history.
    pub diag: &'a [DiagSample],
}

/// Serialize a [`SimState`] into a self-contained checksummed snapshot.
pub fn encode(state: &SimState) -> Vec<u8> {
    encode_view(&SimStateView {
        config_fingerprint: state.config_fingerprint,
        step_count: state.step_count,
        rng_state: state.rng_state,
        charge_ref: state.charge_ref,
        hot_path: &state.hot_path,
        particles: &state.particles,
        rho: &state.rho,
        ex: &state.ex,
        ey: &state.ey,
        diag: &state.diag,
    })
}

/// Serialize a borrowed [`SimStateView`]; same wire format as [`encode`].
pub fn encode_view(state: &SimStateView<'_>) -> Vec<u8> {
    let n = state.particles.len();
    let mut buf = Vec::with_capacity(64 + n * 44 + state.rho.len() * 24 + state.diag.len() * 32);
    buf.extend_from_slice(&MAGIC);
    put_u32(&mut buf, FORMAT_VERSION);
    put_u64(&mut buf, state.config_fingerprint);
    put_u64(&mut buf, state.step_count);
    for w in state.rng_state {
        put_u64(&mut buf, w);
    }
    put_f64(&mut buf, state.charge_ref);
    put_hot_path(&mut buf, state.hot_path);

    put_u64(&mut buf, n as u64);
    put_u32_slice(&mut buf, &state.particles.icell);
    put_u32_slice(&mut buf, &state.particles.ix);
    put_u32_slice(&mut buf, &state.particles.iy);
    put_f64_slice(&mut buf, &state.particles.dx);
    put_f64_slice(&mut buf, &state.particles.dy);
    put_f64_slice(&mut buf, &state.particles.vx);
    put_f64_slice(&mut buf, &state.particles.vy);

    put_u64(&mut buf, state.rho.len() as u64);
    put_f64_slice(&mut buf, state.rho);
    put_f64_slice(&mut buf, state.ex);
    put_f64_slice(&mut buf, state.ey);

    put_u64(&mut buf, state.diag.len() as u64);
    for s in state.diag {
        put_f64(&mut buf, s.time);
        put_f64(&mut buf, s.kinetic);
        put_f64(&mut buf, s.field);
        put_f64(&mut buf, s.ex_mode);
    }

    let sum = snapshot_hash(&buf);
    put_u64(&mut buf, sum);
    buf
}

// ---------------- decoding ----------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], PicError> {
        if self.pos + n > self.buf.len() {
            return Err(PicError::Checkpoint(format!(
                "snapshot truncated: need {} bytes at offset {}, have {}",
                n,
                self.pos,
                self.buf.len() - self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, PicError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> Result<u64, PicError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn f64(&mut self) -> Result<f64, PicError> {
        Ok(f64::from_bits(self.u64()?))
    }

    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, PicError> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }

    fn f64_vec(&mut self, n: usize) -> Result<Vec<f64>, PicError> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.f64()?);
        }
        Ok(v)
    }

    fn hot_path(&mut self) -> Result<HotPathMeta, PicError> {
        let kernel_path = kernel_from_code(self.u32()?)?;
        let deposit_path = deposit_from_code(self.u32()?)?;
        let sort_period = self.u64()?;
        let n = self.len_prefix(1)?;
        let controller = self.take(n)?.to_vec();
        Ok(HotPathMeta {
            kernel_path,
            deposit_path,
            sort_period,
            controller,
        })
    }

    /// Bounded length prefix: a corrupted count must not drive a huge
    /// allocation before the checksum gets a chance to reject the buffer.
    fn len_prefix(&mut self, elem_bytes: usize) -> Result<usize, PicError> {
        let n = self.u64()? as usize;
        let remaining = self.buf.len() - self.pos;
        if n.saturating_mul(elem_bytes) > remaining {
            return Err(PicError::Checkpoint(format!(
                "snapshot corrupt: length prefix {n} exceeds remaining {remaining} bytes"
            )));
        }
        Ok(n)
    }
}

/// Parse and validate a snapshot produced by [`encode`].
///
/// Checks, in order: minimum size, trailing checksum over the whole
/// payload, magic, format version, and internal length consistency. The
/// caller ([`crate::sim::Simulation::restore`]) additionally checks the
/// configuration fingerprint and the array lengths against its own grid.
pub fn decode(bytes: &[u8]) -> Result<SimState, PicError> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err(PicError::Checkpoint(format!(
            "snapshot too small ({} bytes)",
            bytes.len()
        )));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split_at(len-8) leaves 8 bytes"));
    let actual = snapshot_hash(payload);
    if stored != actual {
        return Err(PicError::Checkpoint(format!(
            "snapshot checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }

    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let magic = r.take(8)?;
    if magic != MAGIC {
        return Err(PicError::Checkpoint("bad snapshot magic".into()));
    }
    let version = r.u32()?;
    if version != FORMAT_VERSION {
        return Err(PicError::Checkpoint(format!(
            "unsupported snapshot version {version} (expected {FORMAT_VERSION})"
        )));
    }
    let config_fingerprint = r.u64()?;
    let step_count = r.u64()?;
    let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    let charge_ref = r.f64()?;
    let hot_path = r.hot_path()?;

    let n = r.len_prefix(44)?; // 3×u32 + 4×f64 per particle
    let particles = ParticlesSoA {
        icell: r.u32_vec(n)?,
        ix: r.u32_vec(n)?,
        iy: r.u32_vec(n)?,
        dx: r.f64_vec(n)?,
        dy: r.f64_vec(n)?,
        vx: r.f64_vec(n)?,
        vy: r.f64_vec(n)?,
    };

    let ng = r.len_prefix(24)?; // 3×f64 per grid point
    let rho = r.f64_vec(ng)?;
    let ex = r.f64_vec(ng)?;
    let ey = r.f64_vec(ng)?;

    let nd = r.len_prefix(32)?; // 4×f64 per sample
    let mut diag = Vec::with_capacity(nd);
    for _ in 0..nd {
        diag.push(DiagSample {
            time: r.f64()?,
            kinetic: r.f64()?,
            field: r.f64()?,
            ex_mode: r.f64()?,
        });
    }

    if r.pos != payload.len() {
        return Err(PicError::Checkpoint(format!(
            "snapshot has {} trailing bytes",
            payload.len() - r.pos
        )));
    }

    Ok(SimState {
        config_fingerprint,
        step_count,
        rng_state,
        charge_ref,
        hot_path,
        particles,
        rho,
        ex,
        ey,
        diag,
    })
}

/// Fingerprint a configuration over an explicit canonical field list:
/// every knob that shapes the physics or the data layout. The hot-path
/// knobs — `kernel_path`, `deposit_path`, `sort_period` — are deliberately
/// *excluded* since snapshot format v2: the adaptive controller
/// ([`crate::control::HotPathController`]) retunes them at runtime, and a
/// checkpoint taken mid-adaptation must restore into the same job (the
/// active values travel as [`HotPathMeta`] instead). The controller
/// *profile* is included — it shapes the sort schedule and therefore the
/// trajectory. `threads` stays excluded: it only partitions work across
/// the pool without changing what is computed, so a checkpoint written on
/// an 8-thread run restores into a 1-thread run (and a shrunken
/// distributed survivor can adopt a dead rank's snapshot regardless of its
/// pool size).
pub fn config_fingerprint(cfg: &crate::sim::PicConfig) -> u64 {
    let canon = format!(
        "grid_nx={};grid_ny={};lx={:?};ly={:?};n_particles={};dt={:?};\
         distribution={:?};ordering={:?};particle_layout={:?};\
         field_layout={:?};loop_structure={:?};position_update={:?};\
         hoisted={:?};sort_out_of_place={:?};seed={};keep_range={:?};\
         keep_cells={:?};controller={:?}",
        cfg.grid_nx,
        cfg.grid_ny,
        cfg.lx,
        cfg.ly,
        cfg.n_particles,
        cfg.dt,
        cfg.distribution,
        cfg.ordering,
        cfg.particle_layout,
        cfg.field_layout,
        cfg.loop_structure,
        cfg.position_update,
        cfg.hoisted,
        cfg.sort_out_of_place,
        cfg.seed,
        cfg.keep_range,
        cfg.keep_cells,
        cfg.controller,
    );
    fnv1a(canon.as_bytes())
}

// ---------------- multi-species (EM) snapshots ----------------
//
// The 2d3v multi-species world gets its own magic and encoder so the v1
// single-species wire format above stays byte-identical — a legacy
// checkpoint taken before the species subsystem landed still decodes (and
// hashes) exactly as it did, and the two formats can never be confused:
// the first eight bytes differ.

/// EM snapshot format version (independent of [`FORMAT_VERSION`]). v2
/// added the same hot-path metadata block as the single-species format.
pub const EM_FORMAT_VERSION: u32 = 2;

const EM_MAGIC: [u8; 8] = *b"PIC2DEMS";

/// One species' checkpointed storage.
#[derive(Debug, Clone, PartialEq)]
pub struct EmSpeciesState {
    /// In-plane SoA store.
    pub particles: ParticlesSoA,
    /// Out-of-plane velocities, index-parallel.
    pub vz: Vec<f64>,
}

/// The complete restorable state of an [`crate::em::EmSimulation`].
#[derive(Debug, Clone, PartialEq)]
pub struct EmState {
    /// Fingerprint of the owning [`crate::em::EmConfig`] (covers the
    /// species table).
    pub config_fingerprint: u64,
    /// Steps taken when the snapshot was captured.
    pub step_count: u64,
    /// RNG stream position.
    pub rng_state: [u64; 4],
    /// Total-charge reference captured at initialization.
    pub charge_ref: f64,
    /// Active hot-path knobs and controller state at capture time.
    pub hot_path: HotPathMeta,
    /// Per-species particle stores, in species-table order.
    pub species: Vec<EmSpeciesState>,
    /// Charge density on grid points.
    pub rho: Vec<f64>,
    /// Electric field components on grid points.
    pub ex: Vec<f64>,
    /// See [`ex`](Self::ex).
    pub ey: Vec<f64>,
    /// Current density components on grid points.
    pub jx: Vec<f64>,
    /// See [`jx`](Self::jx).
    pub jy: Vec<f64>,
    /// See [`jx`](Self::jx).
    pub jz: Vec<f64>,
    /// Diagnostics history.
    pub diag: Vec<DiagSample>,
}

/// Serialize an [`EmState`] into a self-contained checksummed snapshot
/// (same integrity scheme as [`encode`]: trailing [`snapshot_hash`] over
/// every preceding byte, raw IEEE-754 bit patterns throughout).
pub fn encode_em(state: &EmState) -> Vec<u8> {
    let np: usize = state.species.iter().map(|s| s.particles.len()).sum();
    let mut buf = Vec::with_capacity(96 + np * 52 + state.rho.len() * 48 + state.diag.len() * 32);
    buf.extend_from_slice(&EM_MAGIC);
    put_u32(&mut buf, EM_FORMAT_VERSION);
    put_u64(&mut buf, state.config_fingerprint);
    put_u64(&mut buf, state.step_count);
    for w in state.rng_state {
        put_u64(&mut buf, w);
    }
    put_f64(&mut buf, state.charge_ref);
    put_hot_path(&mut buf, &state.hot_path);

    put_u64(&mut buf, state.species.len() as u64);
    for sp in &state.species {
        let n = sp.particles.len();
        assert_eq!(sp.vz.len(), n, "vz must be index-parallel");
        put_u64(&mut buf, n as u64);
        put_u32_slice(&mut buf, &sp.particles.icell);
        put_u32_slice(&mut buf, &sp.particles.ix);
        put_u32_slice(&mut buf, &sp.particles.iy);
        put_f64_slice(&mut buf, &sp.particles.dx);
        put_f64_slice(&mut buf, &sp.particles.dy);
        put_f64_slice(&mut buf, &sp.particles.vx);
        put_f64_slice(&mut buf, &sp.particles.vy);
        put_f64_slice(&mut buf, &sp.vz);
    }

    put_u64(&mut buf, state.rho.len() as u64);
    put_f64_slice(&mut buf, &state.rho);
    put_f64_slice(&mut buf, &state.ex);
    put_f64_slice(&mut buf, &state.ey);
    put_f64_slice(&mut buf, &state.jx);
    put_f64_slice(&mut buf, &state.jy);
    put_f64_slice(&mut buf, &state.jz);

    put_u64(&mut buf, state.diag.len() as u64);
    for s in &state.diag {
        put_f64(&mut buf, s.time);
        put_f64(&mut buf, s.kinetic);
        put_f64(&mut buf, s.field);
        put_f64(&mut buf, s.ex_mode);
    }

    let sum = snapshot_hash(&buf);
    put_u64(&mut buf, sum);
    buf
}

/// True when `bytes` starts with the EM snapshot magic — how a runtime
/// holding an opaque snapshot routes it to the right decoder.
pub fn is_em_snapshot(bytes: &[u8]) -> bool {
    bytes.len() >= 8 && bytes[..8] == EM_MAGIC
}

/// Parse and validate a snapshot produced by [`encode_em`].
pub fn decode_em(bytes: &[u8]) -> Result<EmState, PicError> {
    if bytes.len() < EM_MAGIC.len() + 4 + 8 {
        return Err(PicError::Checkpoint(format!(
            "EM snapshot too small ({} bytes)",
            bytes.len()
        )));
    }
    let (payload, tail) = bytes.split_at(bytes.len() - 8);
    let stored = u64::from_le_bytes(tail.try_into().expect("split_at(len-8) leaves 8 bytes"));
    let actual = snapshot_hash(payload);
    if stored != actual {
        return Err(PicError::Checkpoint(format!(
            "EM snapshot checksum mismatch: stored {stored:#018x}, computed {actual:#018x}"
        )));
    }

    let mut r = Reader {
        buf: payload,
        pos: 0,
    };
    let magic = r.take(8)?;
    if magic != EM_MAGIC {
        return Err(PicError::Checkpoint("bad EM snapshot magic".into()));
    }
    let version = r.u32()?;
    if version != EM_FORMAT_VERSION {
        return Err(PicError::Checkpoint(format!(
            "unsupported EM snapshot version {version} (expected {EM_FORMAT_VERSION})"
        )));
    }
    let config_fingerprint = r.u64()?;
    let step_count = r.u64()?;
    let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
    let charge_ref = r.f64()?;
    let hot_path = r.hot_path()?;

    let nsp = r.len_prefix(8)?; // at least the length prefix per species
    let mut species = Vec::with_capacity(nsp);
    for _ in 0..nsp {
        let n = r.len_prefix(52)?; // 3×u32 + 5×f64 per particle
        species.push(EmSpeciesState {
            particles: ParticlesSoA {
                icell: r.u32_vec(n)?,
                ix: r.u32_vec(n)?,
                iy: r.u32_vec(n)?,
                dx: r.f64_vec(n)?,
                dy: r.f64_vec(n)?,
                vx: r.f64_vec(n)?,
                vy: r.f64_vec(n)?,
            },
            vz: r.f64_vec(n)?,
        });
    }

    let ng = r.len_prefix(48)?; // 6×f64 per grid point
    let rho = r.f64_vec(ng)?;
    let ex = r.f64_vec(ng)?;
    let ey = r.f64_vec(ng)?;
    let jx = r.f64_vec(ng)?;
    let jy = r.f64_vec(ng)?;
    let jz = r.f64_vec(ng)?;

    let nd = r.len_prefix(32)?;
    let mut diag = Vec::with_capacity(nd);
    for _ in 0..nd {
        diag.push(DiagSample {
            time: r.f64()?,
            kinetic: r.f64()?,
            field: r.f64()?,
            ex_mode: r.f64()?,
        });
    }

    if r.pos != payload.len() {
        return Err(PicError::Checkpoint(format!(
            "EM snapshot has {} trailing bytes",
            payload.len() - r.pos
        )));
    }

    Ok(EmState {
        config_fingerprint,
        step_count,
        rng_state,
        charge_ref,
        hot_path,
        species,
        rho,
        ex,
        ey,
        jx,
        jy,
        jz,
        diag,
    })
}

/// Fingerprint an [`crate::em::EmConfig`] over an explicit canonical field
/// list — the multi-species analogue of [`config_fingerprint`]. The
/// species table is part of the canonical string (name, charge, mass,
/// density, marker count, and distribution of every species, in order), so
/// two worlds that differ in any species never share a fingerprint and
/// snapshots can never cross-restore between them. `threads` is excluded
/// for the same portability reason as the legacy fingerprint, and the
/// hot-path knobs (`kernel_path`/`deposit_path`/`sort_period`) are
/// excluded for the same adaptive-restore reason as
/// [`config_fingerprint`] — they travel as [`HotPathMeta`] instead, while
/// the controller profile (which shapes the sort schedule) is covered.
pub fn em_config_fingerprint(cfg: &crate::em::EmConfig) -> u64 {
    use std::fmt::Write as _;
    let mut canon = format!(
        "em;grid_nx={};grid_ny={};lx={:?};ly={:?};dt={:?};b0={:?};\
         solve_e={:?};ordering={:?};seed={};replica={:?};\
         controller={:?};nspecies={}",
        cfg.grid_nx,
        cfg.grid_ny,
        cfg.lx,
        cfg.ly,
        cfg.dt,
        cfg.b0,
        cfg.solve_e,
        cfg.ordering,
        cfg.seed,
        cfg.replica,
        cfg.controller,
        cfg.species.len(),
    );
    for s in &cfg.species {
        write!(
            canon,
            ";species[name={};charge={:?};mass={:?};density={:?};n={};dist={:?}]",
            s.name, s.charge, s.mass, s.density, s.n_particles, s.distribution
        )
        .expect("writing to a String cannot fail");
    }
    fnv1a(canon.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> SimState {
        let mut p = ParticlesSoA::zeroed(5);
        for i in 0..5 {
            p.icell[i] = i as u32;
            p.ix[i] = 2 * i as u32;
            p.iy[i] = 3 * i as u32;
            p.dx[i] = 0.1 * i as f64;
            p.dy[i] = 0.2 * i as f64;
            p.vx[i] = -1.5 + i as f64;
            p.vy[i] = 0.5 - i as f64;
        }
        SimState {
            config_fingerprint: 0xDEAD_BEEF,
            step_count: 42,
            rng_state: [1, 2, 3, 4],
            charge_ref: -1024.0,
            hot_path: HotPathMeta {
                kernel_path: KernelPath::Lanes,
                deposit_path: DepositPath::SortedBlock,
                sort_period: 17,
                controller: vec![0xA5, 0x5A, 0x3C, 0xC3],
            },
            particles: p,
            rho: vec![0.25; 16],
            ex: vec![1.0; 16],
            ey: vec![-1.0; 16],
            diag: vec![DiagSample {
                time: 0.05,
                kinetic: 10.0,
                field: 0.01,
                ex_mode: 1e-3,
            }],
        }
    }

    #[test]
    fn roundtrip_is_identity() {
        let s = sample_state();
        let bytes = encode(&s);
        let t = decode(&bytes).unwrap();
        assert_eq!(s, t);
    }

    #[test]
    fn every_flipped_bit_is_detected() {
        let bytes = encode(&sample_state());
        // Flip one bit in a spread of positions (including header, data,
        // and the checksum itself) — all must fail decode.
        for pos in (0..bytes.len()).step_by(97) {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x10;
            assert!(decode(&bad).is_err(), "flip at {pos} went undetected");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = encode(&sample_state());
        for keep in [0, 7, 19, bytes.len() - 9, bytes.len() - 1] {
            assert!(decode(&bytes[..keep]).is_err(), "truncated to {keep}");
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = encode(&sample_state());
        // Version field sits right after the 8-byte magic.
        bytes[8] = FORMAT_VERSION as u8 + 1;
        // Re-stamp the checksum so only the version check can fire.
        let n = bytes.len();
        let sum = snapshot_hash(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, PicError::Checkpoint(ref m) if m.contains("version")));
    }

    #[test]
    fn corrupt_length_prefix_cannot_drive_huge_allocation() {
        let mut bytes = encode(&sample_state());
        // n_particles sits after magic(8) + version(4) + fprint(8) +
        // steps(8) + rng(32) + charge(8) + hot-path meta (4+4+8+8 plus the
        // 4-byte controller blob of `sample_state`) = offset 96.
        bytes[96..104].copy_from_slice(&u64::MAX.to_le_bytes());
        let n = bytes.len();
        let sum = snapshot_hash(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, PicError::Checkpoint(_)));
    }

    #[test]
    fn fingerprint_distinguishes_configs() {
        let a = crate::sim::PicConfig::landau_table1(1000);
        let mut b = a.clone();
        b.seed += 1;
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
        assert_eq!(config_fingerprint(&a), config_fingerprint(&a.clone()));
    }

    #[test]
    fn fingerprint_ignores_hot_path_knobs() {
        // The adaptive controller retunes kernel/deposit/sort-period at
        // runtime; since format v2 they are snapshot metadata, not config
        // identity — a checkpoint taken mid-adaptation restores into the
        // job that configured it.
        let mut a = crate::sim::PicConfig::landau_table1(1000);
        a.kernel_path = crate::sim::KernelPath::Scalar;
        a.deposit_path = crate::sim::DepositPath::Exact;
        a.sort_period = 10;
        let mut b = a.clone();
        b.kernel_path = crate::sim::KernelPath::Lanes;
        b.deposit_path = crate::sim::DepositPath::SortedBlock;
        b.sort_period = 50;
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn fingerprint_covers_controller_profile() {
        // The controller profile shapes the sort schedule — and with it
        // the particle ordering and reassociated-deposit trajectories —
        // so it is part of config identity.
        let a = crate::sim::PicConfig::landau_table1(1000);
        let mut b = a.clone();
        b.controller = Some(crate::control::ControllerConfig::deterministic());
        assert_ne!(config_fingerprint(&a), config_fingerprint(&b));
    }

    #[test]
    fn hot_path_metadata_roundtrips() {
        let s = sample_state();
        let t = decode(&encode(&s)).unwrap();
        assert_eq!(t.hot_path, s.hot_path);
        // Unknown path codes are rejected even with a valid checksum.
        let mut bytes = encode(&s);
        bytes[68..72].copy_from_slice(&7u32.to_le_bytes()); // kernel code
        let n = bytes.len();
        let sum = snapshot_hash(&bytes[..n - 8]);
        bytes[n - 8..].copy_from_slice(&sum.to_le_bytes());
        let err = decode(&bytes).unwrap_err();
        assert!(matches!(err, PicError::Checkpoint(ref m) if m.contains("kernel-path")));
    }

    #[test]
    fn fingerprint_ignores_thread_count() {
        // Thread count partitions work without changing the trajectory, so
        // checkpoints are portable across pool sizes.
        let mut a = crate::sim::PicConfig::landau_table1(1000);
        a.threads = 1;
        let mut b = a.clone();
        b.threads = 8;
        assert_eq!(config_fingerprint(&a), config_fingerprint(&b));
    }
}
