//! Runtime invariant monitors for the step loop.
//!
//! A healthy PIC step preserves a handful of cheap-to-check invariants:
//! every grid quantity is finite, every particle sits in a valid cell with
//! in-range offsets, the total deposited charge is constant (CIC weights
//! sum to one per particle), and the total energy drifts only slowly. A
//! violated invariant means state corruption — a bad reduction in a
//! distributed run, a torn checkpoint, or genuine numerical divergence —
//! and the sooner it is caught, the less work is lost.
//!
//! [`check_invariants`] performs one scan and reports the first violation
//! as [`PicError::Diverged`]. [`run_resilient`] wraps the step loop with
//! periodic scans and checkpoints: a violation rolls the simulation back to
//! the last good snapshot and retries; repeated violations at the same
//! point surface the error to the caller instead of looping forever.

use crate::sim::Simulation;
use crate::PicError;

/// Thresholds and cadences for the watchdog.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WatchdogConfig {
    /// Run the invariant scan every this many steps (≥ 1).
    pub check_every: usize,
    /// Capture a checkpoint every this many steps (≥ 1) in
    /// [`run_resilient`]; checkpoints are only taken after a clean scan.
    pub checkpoint_every: usize,
    /// Maximum tolerated relative total-energy drift over the run.
    pub max_energy_drift: f64,
    /// Relative tolerance on total-charge conservation.
    pub charge_rel_tol: f64,
    /// Rollback attempts from one snapshot before giving up. The
    /// simulation itself is deterministic, so this bounds retries against
    /// *external* nondeterminism (e.g. a flaky reduction callback).
    pub max_rollbacks: usize,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        Self {
            check_every: 1,
            checkpoint_every: 10,
            max_energy_drift: 0.10,
            charge_rel_tol: 1e-6,
            max_rollbacks: 3,
        }
    }
}

/// Outcome of a [`run_resilient`] call that reached the target step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResilientReport {
    /// Steps actually executed, including replayed ones.
    pub steps_executed: usize,
    /// Rollbacks performed.
    pub rollbacks: usize,
    /// Checkpoints captured (excluding the initial one).
    pub checkpoints: usize,
}

fn scan_finite(name: &str, values: &[f64]) -> Result<(), PicError> {
    for (i, &v) in values.iter().enumerate() {
        if !v.is_finite() {
            return Err(PicError::Diverged(format!("{name}[{i}] is {v}")));
        }
    }
    Ok(())
}

/// Scan the simulation for invariant violations; `Ok(())` means healthy.
///
/// For AoS-layout runs the SoA view read here can lag the canonical AoS
/// array between sorts — call
/// [`sync_particles`](Simulation::sync_particles) first (as
/// [`run_resilient`] does) when checking mid-run.
pub fn check_invariants(sim: &Simulation, wcfg: &WatchdogConfig) -> Result<(), PicError> {
    // 1. Grid quantities must be finite.
    let (ex, ey) = sim.e_field();
    scan_finite("rho", sim.rho())?;
    scan_finite("ex", ex)?;
    scan_finite("ey", ey)?;

    // 2. Every particle must reference a valid cell, with consistent
    //    (ix, iy) ↔ icell encoding and in-cell offsets in [0, 1].
    let grid = sim.grid();
    let (ncx, ncy) = (grid.ncx, grid.ncy);
    let layout = sim.cell_layout();
    let ncells = layout.ncells();
    let p = sim.particles();
    for i in 0..p.len() {
        let (c, x, y) = (p.icell[i] as usize, p.ix[i] as usize, p.iy[i] as usize);
        if c >= ncells || x >= ncx || y >= ncy {
            return Err(PicError::Diverged(format!(
                "particle {i} out of range: icell {c} (ncells {ncells}), ix {x} (ncx {ncx}), iy {y} (ncy {ncy})"
            )));
        }
        if layout.encode(x, y) != c {
            return Err(PicError::Diverged(format!(
                "particle {i}: icell {c} disagrees with encode({x}, {y}) = {}",
                layout.encode(x, y)
            )));
        }
        let (dx, dy) = (p.dx[i], p.dy[i]);
        if !(0.0..=1.0).contains(&dx) || !(0.0..=1.0).contains(&dy) {
            return Err(PicError::Diverged(format!(
                "particle {i}: offsets ({dx}, {dy}) outside [0, 1]"
            )));
        }
        if !p.vx[i].is_finite() || !p.vy[i].is_finite() {
            return Err(PicError::Diverged(format!(
                "particle {i}: non-finite velocity ({}, {})",
                p.vx[i], p.vy[i]
            )));
        }
    }

    // 3. Total charge must match the reference captured at initialization.
    let total = sim.total_charge();
    let reference = sim.charge_reference();
    let tol = wcfg.charge_rel_tol * reference.abs().max(1e-300);
    if (total - reference).abs() > tol {
        return Err(PicError::Diverged(format!(
            "total charge {total} deviates from reference {reference} by more than {tol:e}"
        )));
    }

    // 4. Energy drift over the recorded history.
    let drift = sim.diagnostics().relative_energy_drift();
    if drift > wcfg.max_energy_drift {
        return Err(PicError::Diverged(format!(
            "relative energy drift {drift:.3e} exceeds threshold {:.3e}",
            wcfg.max_energy_drift
        )));
    }

    Ok(())
}

/// A structured invariant violation — [`check_invariants`] exported as
/// data for runtimes that ledger watchdog verdicts per tenant instead of
/// aborting the process.
#[derive(Debug, Clone)]
pub struct WatchdogViolation {
    /// Step the violation was observed at.
    pub step: u64,
    /// Description of the first failed invariant.
    pub detail: String,
}

/// Scan invariants and export the verdict: `None` means healthy, `Some`
/// carries the step and the first failed invariant — the shape a
/// multi-tenant runtime records into its [`crate::faultlog::FaultLog`]
/// and attaches to quarantine evidence. Syncs AoS-layout particles first,
/// so it is safe to call mid-run on either layout.
pub fn scan_violation(sim: &mut Simulation, wcfg: &WatchdogConfig) -> Option<WatchdogViolation> {
    sim.sync_particles();
    match check_invariants(sim, wcfg) {
        Ok(()) => None,
        Err(e) => Some(WatchdogViolation {
            step: sim.steps() as u64,
            detail: e.to_string(),
        }),
    }
}

/// Run `nsteps` steps under watchdog protection (single-process loop).
pub fn run_resilient(
    sim: &mut Simulation,
    nsteps: usize,
    wcfg: &WatchdogConfig,
) -> Result<ResilientReport, PicError> {
    run_resilient_with_reduce(sim, nsteps, wcfg, |_| {})
}

/// Run `nsteps` steps under watchdog protection, threading a charge
/// reduction callback through every step (the distributed-run hook of
/// [`Simulation::step_with_reduce`]).
///
/// After each scan interval the invariants are checked; a violation rolls
/// the simulation back to the last good checkpoint and replays. More than
/// [`WatchdogConfig::max_rollbacks`] consecutive rollbacks without
/// progress surface the violation as [`PicError::Diverged`].
pub fn run_resilient_with_reduce(
    sim: &mut Simulation,
    nsteps: usize,
    wcfg: &WatchdogConfig,
    mut reduce: impl FnMut(&mut [f64]),
) -> Result<ResilientReport, PicError> {
    let check_every = wcfg.check_every.max(1);
    let checkpoint_every = wcfg.checkpoint_every.max(1);
    let target = sim.steps() + nsteps;

    let mut last_good = sim.checkpoint();
    let mut last_good_step = sim.steps();
    let mut report = ResilientReport {
        steps_executed: 0,
        rollbacks: 0,
        checkpoints: 0,
    };
    let mut rollbacks_here = 0usize;

    while sim.steps() < target {
        sim.step_with_reduce(&mut reduce);
        report.steps_executed += 1;

        let due = sim.steps().is_multiple_of(check_every) || sim.steps() == target;
        if !due {
            continue;
        }
        sim.sync_particles();
        match check_invariants(sim, wcfg) {
            Ok(()) => {
                if sim.steps().is_multiple_of(checkpoint_every) || sim.steps() == target {
                    last_good = sim.checkpoint();
                    last_good_step = sim.steps();
                    report.checkpoints += 1;
                    rollbacks_here = 0;
                }
            }
            Err(e) => {
                rollbacks_here += 1;
                if rollbacks_here > wcfg.max_rollbacks {
                    return Err(e);
                }
                report.rollbacks += 1;
                sim.restore(&last_good)?;
                debug_assert_eq!(sim.steps(), last_good_step);
            }
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::PicConfig;

    fn small_sim() -> Simulation {
        let mut cfg = PicConfig::landau_table1(2000);
        cfg.grid_nx = 32;
        cfg.grid_ny = 32;
        Simulation::new(cfg).unwrap()
    }

    #[test]
    fn healthy_run_passes() {
        let mut sim = small_sim();
        sim.run(5);
        check_invariants(&sim, &WatchdogConfig::default()).unwrap();
    }

    #[test]
    fn resilient_run_without_faults_matches_plain_run() {
        let mut a = small_sim();
        let mut b = small_sim();
        a.run(12);
        let report = run_resilient(&mut b, 12, &WatchdogConfig::default()).unwrap();
        assert_eq!(report.rollbacks, 0);
        assert_eq!(report.steps_executed, 12);
        assert_eq!(a.rho(), b.rho());
        assert_eq!(a.particles().dx, b.particles().dx);
    }

    #[test]
    fn corrupted_reduce_triggers_rollback_and_recovers() {
        // A reduction callback that injects NaN into ρ exactly once. The
        // watchdog must catch it, roll back, replay cleanly, and end at a
        // state identical to the fault-free run.
        let mut clean = small_sim();
        clean.run(10);

        let mut sim = small_sim();
        let mut armed = true;
        let report = run_resilient_with_reduce(&mut sim, 10, &WatchdogConfig::default(), |rho| {
            if armed {
                armed = false;
                rho[0] = f64::NAN;
            }
        })
        .unwrap();
        assert_eq!(report.rollbacks, 1);
        assert!(report.steps_executed > 10, "one step was replayed");
        assert_eq!(sim.steps(), 10);
        assert_eq!(sim.rho(), clean.rho());
    }

    #[test]
    fn persistent_corruption_surfaces_diverged() {
        let mut sim = small_sim();
        let err = run_resilient_with_reduce(
            &mut sim,
            10,
            &WatchdogConfig {
                max_rollbacks: 2,
                ..Default::default()
            },
            |rho| rho[0] = f64::INFINITY,
        )
        .unwrap_err();
        assert!(matches!(err, PicError::Diverged(_)), "{err}");
    }

    #[test]
    fn energy_drift_threshold_fires() {
        let mut sim = small_sim();
        sim.run(5);
        let strict = WatchdogConfig {
            max_energy_drift: 0.0,
            ..Default::default()
        };
        let err = check_invariants(&sim, &strict).unwrap_err();
        assert!(
            matches!(err, PicError::Diverged(ref m) if m.contains("drift")),
            "{err}"
        );
    }
}
