//! Fault tolerance for the simulation runtime.
//!
//! Three mechanisms, usable separately or together:
//!
//! * [`checkpoint`] — a versioned, checksummed binary snapshot format for
//!   the full simulation state (particles, fields, RNG stream, step
//!   counter, diagnostics history). Restoring a snapshot and continuing is
//!   bit-exact against an uninterrupted run:
//!   [`Simulation::checkpoint`](crate::sim::Simulation::checkpoint) /
//!   [`Simulation::restore`](crate::sim::Simulation::restore).
//! * [`watchdog`] — runtime invariant monitors for the step loop: NaN/Inf
//!   scans of the grid quantities, particle cell/offset range validation,
//!   total-charge conservation, and energy-drift thresholds. Violations
//!   either roll the simulation back to the last good checkpoint
//!   ([`watchdog::run_resilient`]) or surface as a clean
//!   [`PicError::Diverged`](crate::PicError::Diverged).
//! * [`distributed`] — crash-fault tolerance for multi-rank runs:
//!   coordinated buddy checkpointing over `minimpi`, failure detection,
//!   ULFM-style communicator shrinking, and rollback recovery that keeps
//!   the trajectory bit-exact against the fault-free run
//!   ([`distributed::run_resilient_distributed`]).
//!
//! See `DESIGN.md` § "Resilience model" and § "Crash-fault model" for the
//! formats and the threat model.

pub mod checkpoint;
pub mod distributed;
pub mod watchdog;

pub use checkpoint::{decode, encode, SimState, FORMAT_VERSION};
pub use distributed::{
    pack_snaps, run_resilient_distributed, unpack_snaps, DistConfig, DistOutcome,
};
pub use watchdog::{
    check_invariants, run_resilient, scan_violation, ResilientReport, WatchdogConfig,
    WatchdogViolation,
};
