//! Extended diagnostics: phase-space histograms, velocity moments, and the
//! Fourier spectrum of grid quantities — the observables used to *look at*
//! the physics the paper's test cases produce (beam trapping vortices,
//! damped Langmuir modes, thermalization) — plus [`DiagStream`], the
//! line-delimited JSON writer jobs attach for streaming per-step output.

use crate::particles::ParticlesSoA;
use crate::sim::DiagSample;
use crate::PicError;
use spectral::fft::Fft2Plan;
use spectral::Complex64;
use std::fmt::Write as _;
use std::io::{self, Write};

/// A line-delimited (JSONL) streaming writer for per-step diagnostics.
///
/// Records accumulate in a pending buffer, one complete JSON object per
/// line, and reach the sink only on [`commit`](DiagStream::commit) — the
/// checkpoint cadence of the run. A preempted or rolled-back job calls
/// [`discard`](DiagStream::discard) instead, dropping the uncommitted
/// lines, so the stream never carries a torn record or a step that was
/// later replayed: everything after the last committed line is exactly
/// the trajectory the job's final state went through.
#[derive(Debug)]
pub struct DiagStream<W: Write> {
    sink: W,
    pending: String,
    pending_records: u64,
    committed_records: u64,
}

impl<W: Write> DiagStream<W> {
    /// Wrap a sink (file, socket, `Vec<u8>`, …).
    pub fn new(sink: W) -> Self {
        Self {
            sink,
            pending: String::new(),
            pending_records: 0,
            committed_records: 0,
        }
    }

    /// Buffer one sample as a complete JSON line (not yet written).
    pub fn record(&mut self, job: Option<u64>, step: u64, s: &DiagSample) {
        self.pending.push('{');
        if let Some(j) = job {
            let _ = write!(self.pending, "\"job\": {j}, ");
        }
        let _ = write!(
            self.pending,
            "\"step\": {step}, \"time\": {}, \"kinetic\": {}, \"field\": {}, \"ex_mode\": {}, \"total\": {}}}",
            s.time,
            s.kinetic,
            s.field,
            s.ex_mode,
            s.total()
        );
        self.pending.push('\n');
        self.pending_records += 1;
    }

    /// Buffer one per-species moments sample as a complete JSON line —
    /// the multi-species streaming record. Species are identified by name;
    /// the same commit/discard transaction rules as
    /// [`record`](DiagStream::record) apply.
    pub fn record_species(
        &mut self,
        job: Option<u64>,
        step: u64,
        species: &str,
        m: &crate::species::SpeciesMoments,
    ) {
        self.pending.push('{');
        if let Some(j) = job {
            let _ = write!(self.pending, "\"job\": {j}, ");
        }
        let _ = write!(
            self.pending,
            "\"step\": {step}, \"species\": {species:?}, \"number\": {}, \"charge\": {}, \
             \"momentum\": [{}, {}, {}], \"mean_v\": [{}, {}, {}], \
             \"temperature\": [{}, {}, {}], \"kinetic\": {}}}",
            m.number,
            m.charge,
            m.momentum[0],
            m.momentum[1],
            m.momentum[2],
            m.mean_v[0],
            m.mean_v[1],
            m.mean_v[2],
            m.temperature[0],
            m.temperature[1],
            m.temperature[2],
            m.kinetic
        );
        self.pending.push('\n');
        self.pending_records += 1;
    }

    /// Buffer one adaptive hot-path switch decision
    /// ([`crate::control::SwitchEvent`]) as a complete JSON line, so
    /// controller decisions are observable in the same per-step stream as
    /// the physics samples. Same commit/discard transaction rules as
    /// [`record`](DiagStream::record).
    pub fn record_adapt(&mut self, job: Option<u64>, ev: &crate::control::SwitchEvent) {
        self.pending.push('{');
        if let Some(j) = job {
            let _ = write!(self.pending, "\"job\": {j}, ");
        }
        let _ = write!(
            self.pending,
            "\"step\": {}, \"adapt\": {:?}, \"from\": {:?}, \"to\": {:?}, \
             \"disorder\": {}, \"uniform\": {}, \"period\": {}}}",
            ev.step, ev.what, ev.from, ev.to, ev.disorder, ev.uniform, ev.period
        );
        self.pending.push('\n');
        self.pending_records += 1;
    }

    /// Flush every pending line to the sink (whole lines only — a reader
    /// tailing the sink never observes a partial record).
    pub fn commit(&mut self) -> io::Result<()> {
        if !self.pending.is_empty() {
            self.sink.write_all(self.pending.as_bytes())?;
            self.sink.flush()?;
            self.pending.clear();
        }
        self.committed_records += self.pending_records;
        self.pending_records = 0;
        Ok(())
    }

    /// Drop the uncommitted lines (rollback/preemption path); returns how
    /// many records were discarded.
    pub fn discard(&mut self) -> u64 {
        let n = self.pending_records;
        self.pending.clear();
        self.pending_records = 0;
        n
    }

    /// Records durably written so far.
    pub fn committed_records(&self) -> u64 {
        self.committed_records
    }

    /// Records buffered but not yet committed.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Consume the stream, returning the sink (pending lines are dropped;
    /// commit first to keep them).
    pub fn into_inner(self) -> W {
        self.sink
    }
}

/// An `nx × nv` histogram of `f(x, v_x)` (row-major, x-major).
#[derive(Debug, Clone)]
pub struct PhaseSpaceHistogram {
    /// Bins along x (grid units, covering `[0, ncx)`).
    pub nx: usize,
    /// Bins along v.
    pub nv: usize,
    /// Velocity range covered, `[-v_max, v_max)`.
    pub v_max: f64,
    /// Counts, normalized to sum to 1.
    pub density: Vec<f64>,
}

impl PhaseSpaceHistogram {
    /// Build from a particle population. `vx` values outside `±v_max` are
    /// clamped into the edge bins. Velocities are taken as stored (grid
    /// units per step under the hoisted convention — pass `v_scale` to
    /// convert to physical, or `1.0` to keep them raw).
    pub fn compute(
        p: &ParticlesSoA,
        ncx: usize,
        nx: usize,
        nv: usize,
        v_max: f64,
        v_scale: f64,
    ) -> Self {
        assert!(nx > 0 && nv > 0 && v_max > 0.0);
        let mut density = vec![0.0f64; nx * nv];
        let n = p.len();
        for i in 0..n {
            let x = (p.ix[i] as f64 + p.dx[i]) / ncx as f64; // in [0,1)
            let bx = ((x * nx as f64) as usize).min(nx - 1);
            let v = p.vx[i] * v_scale;
            let vn = ((v + v_max) / (2.0 * v_max) * nv as f64).clamp(0.0, nv as f64 - 1.0);
            let bv = vn as usize;
            density[bx * nv + bv] += 1.0;
        }
        if n > 0 {
            let inv = 1.0 / n as f64;
            for d in density.iter_mut() {
                *d *= inv;
            }
        }
        Self {
            nx,
            nv,
            v_max,
            density,
        }
    }

    /// Marginal distribution over v (integrating out x).
    pub fn v_marginal(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nv];
        for bx in 0..self.nx {
            for (bv, o) in out.iter_mut().enumerate() {
                *o += self.density[bx * self.nv + bv];
            }
        }
        out
    }

    /// Marginal distribution over x.
    pub fn x_marginal(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.nx];
        for (bx, o) in out.iter_mut().enumerate() {
            *o = self.density[bx * self.nv..(bx + 1) * self.nv].iter().sum();
        }
        out
    }
}

/// First velocity moments of a particle population (stored units × `v_scale`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VelocityMoments {
    /// Mean x-velocity.
    pub mean_vx: f64,
    /// Mean y-velocity.
    pub mean_vy: f64,
    /// Velocity variance along x (temperature `T_x` for unit mass).
    pub temp_x: f64,
    /// Velocity variance along y.
    pub temp_y: f64,
}

/// Compute mean and variance of the velocity distribution.
pub fn velocity_moments(p: &ParticlesSoA, v_scale: f64) -> VelocityMoments {
    let n = p.len().max(1) as f64;
    let mean = |v: &[f64]| v.iter().sum::<f64>() * v_scale / n;
    let mean_vx = mean(&p.vx);
    let mean_vy = mean(&p.vy);
    let var = |v: &[f64], m: f64| {
        v.iter()
            .map(|&u| {
                let d = u * v_scale - m;
                d * d
            })
            .sum::<f64>()
            / n
    };
    VelocityMoments {
        mean_vx,
        mean_vy,
        temp_x: var(&p.vx, mean_vx),
        temp_y: var(&p.vy, mean_vy),
    }
}

/// Power spectrum `|q̂(kx, ky)|²` of a grid quantity (row-major input),
/// normalized by `(ncx·ncy)²` so a unit-amplitude cosine mode reports ¼ in
/// each of its two conjugate bins.
///
/// Errors if `q.len() != ncx·ncy` or the dimensions are not powers of two
/// (the FFT's requirement).
pub fn mode_spectrum(q: &[f64], ncx: usize, ncy: usize) -> Result<Vec<f64>, PicError> {
    if q.len() != ncx * ncy {
        return Err(PicError::Config(format!(
            "mode_spectrum: grid quantity has {} values, expected {ncx}×{ncy}",
            q.len()
        )));
    }
    let plan = Fft2Plan::new(ncx, ncy)?;
    let mut hat: Vec<Complex64> = q.iter().map(|&v| Complex64::from_re(v)).collect();
    plan.forward(&mut hat);
    let norm = 1.0 / ((ncx * ncy) as f64 * (ncx * ncy) as f64);
    Ok(hat.iter().map(|z| z.norm_sqr() * norm).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn beams(n: usize, ncx: usize) -> ParticlesSoA {
        let mut p = ParticlesSoA::zeroed(n);
        for i in 0..n {
            p.ix[i] = ((i * 7) % ncx) as u32;
            p.dx[i] = 0.5;
            p.vx[i] = if i % 2 == 0 { 3.0 } else { -3.0 };
            p.vy[i] = 0.0;
        }
        p
    }

    #[test]
    fn histogram_is_normalized_and_bimodal() {
        let p = beams(10_000, 32);
        let h = PhaseSpaceHistogram::compute(&p, 32, 16, 20, 5.0, 1.0);
        let total: f64 = h.density.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
        let vm = h.v_marginal();
        // Two sharp beams at ±3 → two occupied v-bins, none near v = 0.
        let mid = vm[h.nv / 2 - 1] + vm[h.nv / 2];
        assert!(mid < 1e-12, "no mass at v=0, got {mid}");
        let occupied = vm.iter().filter(|&&d| d > 0.0).count();
        assert_eq!(occupied, 2);
        // x marginal is uniform-ish over occupied bins.
        let xm = h.x_marginal();
        assert!((xm.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_clamps_outliers() {
        let mut p = ParticlesSoA::zeroed(2);
        p.vx[0] = 100.0;
        p.vx[1] = -100.0;
        let h = PhaseSpaceHistogram::compute(&p, 8, 4, 10, 5.0, 1.0);
        let vm = h.v_marginal();
        assert!(vm[0] > 0.0);
        assert!(vm[9] > 0.0);
    }

    #[test]
    fn moments_of_beams() {
        let p = beams(10_000, 32);
        let m = velocity_moments(&p, 1.0);
        assert!(m.mean_vx.abs() < 1e-12);
        assert!((m.temp_x - 9.0).abs() < 1e-9, "variance of ±3 beams is 9");
        assert_eq!(m.temp_y, 0.0);
    }

    #[test]
    fn moments_respect_scale() {
        let p = beams(100, 32);
        let m = velocity_moments(&p, 0.5);
        assert!((m.temp_x - 2.25).abs() < 1e-9);
    }

    #[test]
    fn spectrum_finds_the_planted_mode() {
        let (ncx, ncy) = (32, 16);
        let q: Vec<f64> = (0..ncx * ncy)
            .map(|i| {
                let ix = i / ncy;
                (2.0 * std::f64::consts::PI * 3.0 * ix as f64 / ncx as f64).cos()
            })
            .collect();
        let s = mode_spectrum(&q, ncx, ncy).unwrap();
        // Peak at (kx=3, ky=0) and its conjugate (ncx−3, 0), each ¼.
        assert!((s[3 * ncy] - 0.25).abs() < 1e-12);
        assert!((s[(ncx - 3) * ncy] - 0.25).abs() < 1e-12);
        let rest: f64 = s
            .iter()
            .enumerate()
            .filter(|(i, _)| *i != 3 * ncy && *i != (ncx - 3) * ncy)
            .map(|(_, v)| v)
            .sum();
        assert!(rest < 1e-12, "leakage {rest}");
    }

    #[test]
    fn empty_population() {
        let p = ParticlesSoA::zeroed(0);
        let h = PhaseSpaceHistogram::compute(&p, 8, 4, 4, 1.0, 1.0);
        assert!(h.density.iter().all(|&d| d == 0.0));
        let m = velocity_moments(&p, 1.0);
        assert_eq!(m.mean_vx, 0.0);
    }

    fn sample(t: f64) -> DiagSample {
        DiagSample {
            time: t,
            kinetic: 1.5 * t,
            field: 0.25,
            ex_mode: 0.125,
        }
    }

    #[test]
    fn diag_stream_commits_whole_lines_at_checkpoint_cadence() {
        let mut ds = DiagStream::new(Vec::new());
        ds.record(Some(3), 1, &sample(0.1));
        ds.record(Some(3), 2, &sample(0.2));
        // Nothing reaches the sink before the checkpoint commit.
        assert_eq!(ds.pending_records(), 2);
        assert_eq!(ds.committed_records(), 0);
        ds.commit().unwrap();
        assert_eq!(ds.committed_records(), 2);

        // A rolled-back slice is discarded, never written.
        ds.record(Some(3), 3, &sample(0.3));
        assert_eq!(ds.discard(), 1);
        ds.record(Some(3), 3, &sample(0.3));
        ds.commit().unwrap();

        let out = String::from_utf8(ds.into_inner()).unwrap();
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 3);
        for l in &lines {
            assert!(l.starts_with("{\"job\": 3, "), "{l}");
            assert!(l.ends_with('}'), "torn record: {l}");
        }
        assert!(lines[0].contains("\"step\": 1"));
        assert!(lines[2].contains("\"step\": 3"));
        assert!(lines[1].contains("\"kinetic\": 0.30000000000000004"));
    }

    #[test]
    fn diag_stream_without_job_omits_field() {
        let mut ds = DiagStream::new(Vec::new());
        ds.record(None, 0, &sample(0.0));
        ds.commit().unwrap();
        let out = String::from_utf8(ds.into_inner()).unwrap();
        assert!(out.starts_with("{\"step\": 0, "), "{out}");
    }

    #[test]
    fn diag_stream_records_adapt_switches() {
        let ev = crate::control::SwitchEvent {
            step: 42,
            what: "kernel",
            from: "scalar",
            to: "lanes",
            disorder: 0.25,
            uniform: 0.5,
            period: 16,
        };
        let mut ds = DiagStream::new(Vec::new());
        ds.record_adapt(Some(3), &ev);
        ds.commit().unwrap();
        let out = String::from_utf8(ds.into_inner()).unwrap();
        assert!(
            out.contains("\"job\": 3")
                && out.contains("\"adapt\": \"kernel\"")
                && out.contains("\"from\": \"scalar\"")
                && out.contains("\"to\": \"lanes\"")
                && out.contains("\"period\": 16"),
            "{out}"
        );
        assert!(out.ends_with('\n'));
    }
}
