//! # pic-core — the 2d2v Vlasov–Poisson Particle-in-Cell library
//!
//! This crate implements the system of *Barsamian, Hirstoaga, Violard,
//! “Efficient Data Structures for a Hybrid Parallel and Vectorized
//! Particle-in-Cell Code”, IPDPSW 2017*: a minimal 2-D electrostatic PIC
//! code whose every data-structure and loop-shape decision is exposed as a
//! configuration knob, so the paper's optimization ladder (Table IV), layout
//! comparison (Tables II–III), and parallel experiments (Figs. 7–9,
//! Tables VI–VII) can all be reproduced from one code base.
//!
//! ## The PIC loop
//!
//! Each time step (paper's Fig. 1):
//! 1. periodically **sort** particles by cell index ([`sort`]);
//! 2. zero ρ, then for each particle **update velocity** (interpolate E),
//!    **update position** (periodic wrap), **accumulate charge**
//!    ([`kernels`] — fused in one loop or split into three);
//! 3. solve **Poisson** for E from ρ (the `spectral` crate).
//!
//! ## Data-structure knobs
//!
//! * particles: AoS vs SoA ([`particles`]);
//! * grid quantities: standard 2-D arrays vs redundant cell-based arrays
//!   ([`fields`]);
//! * cell ordering: row-major, L4D, Morton, Hilbert (the `sfc` crate);
//! * position update: `if`+modulo, integer modulo, or branchless bitwise
//!   ([`kernels::position`]);
//! * loop structure: one fused loop vs three split loops;
//! * coefficient hoisting: raw vs pre-scaled fields and velocities.
//!
//! ## Quickstart
//!
//! ```
//! use pic_core::sim::{PicConfig, Simulation};
//!
//! let mut cfg = PicConfig::landau_table1(10_000); // Table I, scaled down
//! cfg.grid_nx = 32;
//! cfg.grid_ny = 32;
//! let mut sim = Simulation::new(cfg).unwrap();
//! sim.run(20);
//! // Total energy is conserved to a few percent at this resolution.
//! assert!(sim.diagnostics().relative_energy_drift() < 0.05);
//! ```

// `deny`, not `forbid`: the persistent worker pool ([`pool`]) borrows job
// closures across threads through a type-erased pointer and carries the one
// documented `#![allow(unsafe_code)]` in the crate. Everything else is
// checked safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod control;
pub mod diag;
pub mod em;
pub mod faultlog;
pub mod fields;
pub mod grid;
pub mod kernels;
pub mod par;
pub mod particles;
pub mod pool;
pub mod resilience;
pub mod rng;
pub mod sim;
pub mod sort;
pub mod species;
pub mod trace;

/// Errors produced when configuring, constructing, or running a simulation.
#[derive(Debug, Clone, PartialEq)]
pub enum PicError {
    /// The grid layout could not be built.
    Layout(sfc::LayoutError),
    /// The spectral solver could not be built.
    Spectral(spectral::SpectralError),
    /// A configuration value was invalid.
    Config(String),
    /// A checkpoint snapshot could not be encoded, decoded, or applied.
    Checkpoint(String),
    /// A runtime invariant failed (NaN/Inf field values, out-of-range cell
    /// indices, charge loss, or energy drift beyond the watchdog threshold).
    Diverged(String),
    /// An I/O operation on a checkpoint file failed.
    Io(String),
}

impl std::fmt::Display for PicError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PicError::Layout(e) => write!(f, "layout error: {e}"),
            PicError::Spectral(e) => write!(f, "spectral error: {e}"),
            PicError::Config(msg) => write!(f, "config error: {msg}"),
            PicError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            PicError::Diverged(msg) => write!(f, "invariant violation: {msg}"),
            PicError::Io(msg) => write!(f, "i/o error: {msg}"),
        }
    }
}

impl std::error::Error for PicError {}

impl From<sfc::LayoutError> for PicError {
    fn from(e: sfc::LayoutError) -> Self {
        PicError::Layout(e)
    }
}

impl From<spectral::SpectralError> for PicError {
    fn from(e: spectral::SpectralError) -> Self {
        PicError::Spectral(e)
    }
}
