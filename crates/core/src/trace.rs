//! Memory-trace mirrors of the PIC kernels, for the cache-miss experiments.
//!
//! The paper's Figs. 5–6 and Table II count hardware L1/L2/L3 misses during
//! the update-velocities and accumulate loops. We reproduce those counts
//! deterministically: the functions here emit the *exact byte-address
//! streams* those kernels issue — sequential reads of the particle arrays
//! and indexed accesses into the redundant `E`/`ρ` structures — into any
//! [`cachesim::MemSink`] (normally a [`cachesim::Hierarchy`]).
//!
//! A [`MemoryMap`] assigns non-overlapping base addresses to each array,
//! mimicking a contiguous allocation (the arrays are placed far apart so no
//! accidental aliasing occurs — matching distinct heap allocations).

use crate::particles::ParticlesSoA;
use cachesim::MemSink;

/// Sizes of the traced elements, in bytes.
const U32: u32 = 4;
const F64: u32 = 8;
/// One redundant E cell: `[f64; 8]`.
const E8: u32 = 64;
/// One redundant ρ cell: `[f64; 4]`.
const RHO4: u32 = 32;

/// Synthetic base addresses of every traced array.
#[derive(Debug, Clone, Copy)]
pub struct MemoryMap {
    /// Base of the `icell` array.
    pub icell: u64,
    /// Base of the `dx` array.
    pub dx: u64,
    /// Base of the `dy` array.
    pub dy: u64,
    /// Base of the `vx` array.
    pub vx: u64,
    /// Base of the `vy` array.
    pub vy: u64,
    /// Base of the redundant E array (`[f64; 8]` per cell).
    pub e8: u64,
    /// Base of the redundant ρ array (`[f64; 4]` per cell).
    pub rho4: u64,
}

impl MemoryMap {
    /// Lay the arrays out end to end (64-B aligned) for `n` particles and
    /// `ncells` cells, starting at `base`.
    pub fn contiguous(base: u64, n: usize, ncells: usize) -> Self {
        let align = |x: u64| (x + 63) & !63;
        let icell = align(base);
        let dx = align(icell + (n as u64) * U32 as u64);
        let dy = align(dx + (n as u64) * F64 as u64);
        let vx = align(dy + (n as u64) * F64 as u64);
        let vy = align(vx + (n as u64) * F64 as u64);
        let e8 = align(vy + (n as u64) * F64 as u64);
        let rho4 = align(e8 + (ncells as u64) * E8 as u64);
        Self {
            icell,
            dx,
            dy,
            vx,
            vy,
            e8,
            rho4,
        }
    }
}

/// Trace the update-velocities loop (redundant field layout): per particle,
/// sequential reads of `icell`, `dx`, `dy`, one 64-byte read of
/// `e8[icell]`, and read-modify-write of `vx`, `vy`.
pub fn trace_update_velocities(p: &ParticlesSoA, map: &MemoryMap, sink: &mut impl MemSink) {
    for i in 0..p.len() {
        let o = i as u64;
        sink.read(map.icell + o * U32 as u64, U32);
        sink.read(map.dx + o * F64 as u64, F64);
        sink.read(map.dy + o * F64 as u64, F64);
        sink.read(map.e8 + p.icell[i] as u64 * E8 as u64, E8);
        sink.read(map.vx + o * F64 as u64, F64);
        sink.write(map.vx + o * F64 as u64, F64);
        sink.read(map.vy + o * F64 as u64, F64);
        sink.write(map.vy + o * F64 as u64, F64);
    }
}

/// Trace the accumulate loop (redundant ρ layout): per particle, sequential
/// reads of `icell`, `dx`, `dy` and a 32-byte read-modify-write of
/// `rho4[icell]`.
pub fn trace_accumulate(p: &ParticlesSoA, map: &MemoryMap, sink: &mut impl MemSink) {
    for i in 0..p.len() {
        let o = i as u64;
        sink.read(map.icell + o * U32 as u64, U32);
        sink.read(map.dx + o * F64 as u64, F64);
        sink.read(map.dy + o * F64 as u64, F64);
        let cell = map.rho4 + p.icell[i] as u64 * RHO4 as u64;
        sink.read(cell, RHO4);
        sink.write(cell, RHO4);
    }
}

/// Trace the update-positions loop: purely sequential streams over the
/// particle arrays (read `ix`-equivalents via `icell`, `dx`, `dy`, `vx`,
/// `vy`; write back positions and `icell`). Included for the Fig. 8
/// bandwidth accounting — this loop has no indexed accesses at all, which is
/// why it reaches STREAM-level bandwidth.
pub fn trace_update_positions(p: &ParticlesSoA, map: &MemoryMap, sink: &mut impl MemSink) {
    for i in 0..p.len() {
        let o = i as u64;
        sink.read(map.icell + o * U32 as u64, U32);
        sink.read(map.dx + o * F64 as u64, F64);
        sink.read(map.dy + o * F64 as u64, F64);
        sink.read(map.vx + o * F64 as u64, F64);
        sink.read(map.vy + o * F64 as u64, F64);
        sink.write(map.dx + o * F64 as u64, F64);
        sink.write(map.dy + o * F64 as u64, F64);
        sink.write(map.icell + o * U32 as u64, U32);
    }
}

/// Per-particle bytes moved by each loop, for the Fig. 8 bandwidth model:
/// `(update_v, update_x, accumulate)` — counting each byte once (cache-line
/// effects excluded; the measured bandwidth harness uses real timings).
pub fn bytes_per_particle() -> (u64, u64, u64) {
    let v = (U32 + F64 + F64 + E8 + 2 * F64 + 2 * F64) as u64;
    let x = (U32 + 4 * F64 + 2 * F64 + U32) as u64;
    let a = (U32 + F64 + F64 + 2 * RHO4) as u64;
    (v, x, a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cachesim::{ByteCounter, Hierarchy, HierarchyConfig};

    fn particles_in_cells(cells: &[u32]) -> ParticlesSoA {
        let mut p = ParticlesSoA::zeroed(cells.len());
        p.icell.copy_from_slice(cells);
        p
    }

    #[test]
    fn memory_map_does_not_overlap() {
        let m = MemoryMap::contiguous(0, 1000, 256);
        assert!(m.icell < m.dx);
        assert!(m.dx + 8000 <= m.dy);
        assert!(m.vy + 8000 <= m.e8);
        assert!(m.e8 + 256 * 64 <= m.rho4);
        // All 64-byte aligned.
        for a in [m.icell, m.dx, m.dy, m.vx, m.vy, m.e8, m.rho4] {
            assert_eq!(a % 64, 0);
        }
    }

    #[test]
    fn byte_counts_match_constants() {
        let p = particles_in_cells(&[0; 100]);
        let m = MemoryMap::contiguous(0, 100, 16);
        let (ev, ex, ea) = bytes_per_particle();

        let mut c = ByteCounter::default();
        trace_update_velocities(&p, &m, &mut c);
        assert_eq!(c.read_bytes + c.write_bytes, 100 * ev);

        let mut c = ByteCounter::default();
        trace_update_positions(&p, &m, &mut c);
        assert_eq!(c.read_bytes + c.write_bytes, 100 * ex);

        let mut c = ByteCounter::default();
        trace_accumulate(&p, &m, &mut c);
        assert_eq!(c.read_bytes + c.write_bytes, 100 * ea);
    }

    #[test]
    fn sorted_particles_miss_less_than_shuffled() {
        // The cache-locality premise of the whole paper, in one test: the
        // same multiset of cells, visited sorted vs scattered, produces
        // far fewer L2 misses sorted.
        let ncells = 4096usize;
        let n = 40_000usize;
        let sorted: Vec<u32> = (0..n).map(|i| (i * ncells / n) as u32).collect();
        // Deterministic shuffle (LCG step through a coprime stride).
        let shuffled: Vec<u32> = (0..n).map(|i| sorted[(i * 7919) % n]).collect();

        let m = MemoryMap::contiguous(0, n, ncells);
        let run = |cells: &[u32]| {
            let p = particles_in_cells(cells);
            let mut h = Hierarchy::new(HierarchyConfig::tiny());
            trace_accumulate(&p, &m, &mut h);
            h.stats().level(1).misses()
        };
        let miss_sorted = run(&sorted);
        let miss_shuffled = run(&shuffled);
        assert!(
            miss_shuffled > 3 * miss_sorted,
            "sorted {miss_sorted} vs shuffled {miss_shuffled}"
        );
    }

    #[test]
    fn velocity_trace_touches_e8_lines() {
        // One particle per distinct cell: every e8 access is a new 64-B line.
        let cells: Vec<u32> = (0..512u32).collect();
        let p = particles_in_cells(&cells);
        let m = MemoryMap::contiguous(0, cells.len(), 512);
        let mut h = Hierarchy::new(HierarchyConfig::tiny());
        trace_update_velocities(&p, &m, &mut h);
        // At least one miss per distinct e8 line (each cell is its own line).
        assert!(h.stats().level(0).misses() >= 512);
    }
}
