//! Grid-quantity storage: the standard 2-D arrays vs the redundant
//! cell-based arrays (the paper's central data structure, §II and §IV-B).
//!
//! **Standard layout** stores `Ex`, `Ey`, `ρ` at grid points, row-major.
//! Interpolating for a particle then touches four non-contiguous memory
//! locations per component.
//!
//! **Redundant layout** stores, per *cell* and contiguously, the values of
//! both field components at the cell's four corners
//! (`e8[icell] = [Ex₀₀, Ex₀₁, Ex₁₀, Ex₁₁, Ey₀₀, Ey₀₁, Ey₁₀, Ey₁₁]`) and the
//! four charge-accumulation corners (`rho4[icell]`). A particle's entire
//! field interpolation reads one 64-byte-aligned 8-double block; charge
//! deposition writes one 4-double block — contiguous, vectorizable, and laid
//! out along any space-filling curve via the `icell` mapping. The price is 4×
//! the memory of the standard layout.
//!
//! Corner order matches the paper's Fig. 2 coefficient tables:
//! corner 0 → `(ix, iy)`, 1 → `(ix, iy+1)`, 2 → `(ix+1, iy)`,
//! 3 → `(ix+1, iy+1)` (neighbours wrap periodically).

use crate::grid::Grid2D;
use sfc::CellLayout;

/// The CIC corner-weight coefficient tables of Fig. 2:
/// `w[corner] = (CX[corner] + SX[corner]·dx) · (CY[corner] + SY[corner]·dy)`.
pub const CX: [f64; 4] = [1.0, 1.0, 0.0, 0.0];
/// See [`CX`].
pub const SX: [f64; 4] = [-1.0, -1.0, 1.0, 1.0];
/// See [`CX`].
pub const CY: [f64; 4] = [1.0, 0.0, 1.0, 0.0];
/// See [`CX`].
pub const SY: [f64; 4] = [-1.0, 1.0, -1.0, 1.0];

/// Standard 2-D grid-point storage (row-major `[ix * ncy + iy]`).
#[derive(Debug, Clone)]
pub struct Field2D {
    /// Cells along x.
    pub ncx: usize,
    /// Cells along y.
    pub ncy: usize,
    /// x-component of E at grid points.
    pub ex: Vec<f64>,
    /// y-component of E at grid points.
    pub ey: Vec<f64>,
    /// Charge density at grid points.
    pub rho: Vec<f64>,
}

impl Field2D {
    /// Allocate zeroed fields for `grid`.
    pub fn new(grid: &Grid2D) -> Self {
        let n = grid.ncells();
        Self {
            ncx: grid.ncx,
            ncy: grid.ncy,
            ex: vec![0.0; n],
            ey: vec![0.0; n],
            rho: vec![0.0; n],
        }
    }

    /// Row-major grid-point index.
    #[inline]
    pub fn idx(&self, ix: usize, iy: usize) -> usize {
        ix * self.ncy + iy
    }

    /// Zero the charge density (paper's Fig. 1, line 7).
    pub fn clear_rho(&mut self) {
        self.rho.fill(0.0);
    }
}

/// Redundant cell-based storage for E (8 doubles per cell).
#[derive(Debug, Clone)]
pub struct RedundantE {
    /// `[Ex at corners 0..4, Ey at corners 0..4]` per cell, indexed by the
    /// active layout's `icell`.
    pub e8: Vec<[f64; 8]>,
}

/// Redundant cell-based accumulator for ρ (4 doubles per cell).
#[derive(Debug, Clone)]
pub struct RedundantRho {
    /// Per-cell corner accumulators, indexed by the active layout's `icell`.
    pub rho4: Vec<[f64; 4]>,
}

impl RedundantE {
    /// Allocate zeroed storage sized for `layout` (covers padded cells too).
    pub fn new(layout: &dyn CellLayout) -> Self {
        Self {
            e8: vec![[0.0; 8]; layout.ncells()],
        }
    }

    /// Fill from grid-point fields, scaling every value by `scale`
    /// (`scale = 1` for raw fields; the hoisted convention of §IV-D passes
    /// `q·Δt²/(m·Δx)`-style factors here so the particle loop needs no
    /// per-particle multiply).
    pub fn fill_from(&mut self, f: &Field2D, layout: &dyn CellLayout, scale_x: f64, scale_y: f64) {
        let (ncx, ncy) = (f.ncx, f.ncy);
        for ix in 0..ncx {
            let ixp = (ix + 1) & (ncx - 1);
            for iy in 0..ncy {
                let iyp = (iy + 1) & (ncy - 1);
                let c = layout.encode(ix, iy);
                let g00 = f.idx(ix, iy);
                let g01 = f.idx(ix, iyp);
                let g10 = f.idx(ixp, iy);
                let g11 = f.idx(ixp, iyp);
                self.e8[c] = [
                    f.ex[g00] * scale_x,
                    f.ex[g01] * scale_x,
                    f.ex[g10] * scale_x,
                    f.ex[g11] * scale_x,
                    f.ey[g00] * scale_y,
                    f.ey[g01] * scale_y,
                    f.ey[g10] * scale_y,
                    f.ey[g11] * scale_y,
                ];
            }
        }
    }
}

impl RedundantRho {
    /// Allocate zeroed storage sized for `layout`.
    pub fn new(layout: &dyn CellLayout) -> Self {
        Self {
            rho4: vec![[0.0; 4]; layout.ncells()],
        }
    }

    /// Zero all accumulators.
    pub fn clear(&mut self) {
        self.rho4.fill([0.0; 4]);
    }

    /// Scatter the per-cell corner accumulators back onto grid points
    /// (periodic), writing into `rho` (row-major). `rho` is overwritten.
    pub fn reduce_to_grid(&self, layout: &dyn CellLayout, rho: &mut [f64]) {
        let (ncx, ncy) = (layout.ncx(), layout.ncy());
        assert_eq!(rho.len(), ncx * ncy);
        rho.fill(0.0);
        for ix in 0..ncx {
            let ixp = (ix + 1) & (ncx - 1);
            for iy in 0..ncy {
                let iyp = (iy + 1) & (ncy - 1);
                let c = layout.encode(ix, iy);
                let v = &self.rho4[c];
                rho[ix * ncy + iy] += v[0];
                rho[ix * ncy + iyp] += v[1];
                rho[ixp * ncy + iy] += v[2];
                rho[ixp * ncy + iyp] += v[3];
            }
        }
    }

    /// Element-wise add another accumulator (the hand-coded OpenMP 4.5
    /// array-section reduction of §V-B2).
    pub fn add_assign(&mut self, other: &RedundantRho) {
        assert_eq!(self.rho4.len(), other.rho4.len());
        for (a, b) in self.rho4.iter_mut().zip(&other.rho4) {
            for k in 0..4 {
                a[k] += b[k];
            }
        }
    }
}

/// Redundant cell-based accumulator for the current density **J**
/// (12 doubles per cell): the 2d3v analogue of [`RedundantRho`], storing
/// `[Jx at corners 0..4, Jy at corners 0..4, Jz at corners 0..4]`
/// contiguously so a particle's whole current deposit writes one cache-line
/// pair, exactly like the 8-double E block on the gather side.
#[derive(Debug, Clone)]
pub struct RedundantJ {
    /// Per-cell corner accumulators, indexed by the active layout's
    /// `icell`: `[Jx₀..Jx₃, Jy₀..Jy₃, Jz₀..Jz₃]`.
    pub j12: Vec<[f64; 12]>,
}

impl RedundantJ {
    /// Allocate zeroed storage sized for `layout`.
    pub fn new(layout: &dyn CellLayout) -> Self {
        Self {
            j12: vec![[0.0; 12]; layout.ncells()],
        }
    }

    /// Zero all accumulators.
    pub fn clear(&mut self) {
        self.j12.fill([0.0; 12]);
    }

    /// Scatter the per-cell corner accumulators back onto grid points
    /// (periodic), overwriting `jx`, `jy`, `jz` (row-major).
    pub fn reduce_to_grid(
        &self,
        layout: &dyn CellLayout,
        jx: &mut [f64],
        jy: &mut [f64],
        jz: &mut [f64],
    ) {
        let (ncx, ncy) = (layout.ncx(), layout.ncy());
        assert_eq!(jx.len(), ncx * ncy);
        assert_eq!(jy.len(), ncx * ncy);
        assert_eq!(jz.len(), ncx * ncy);
        jx.fill(0.0);
        jy.fill(0.0);
        jz.fill(0.0);
        for ix in 0..ncx {
            let ixp = (ix + 1) & (ncx - 1);
            for iy in 0..ncy {
                let iyp = (iy + 1) & (ncy - 1);
                let c = layout.encode(ix, iy);
                let v = &self.j12[c];
                let g00 = ix * ncy + iy;
                let g01 = ix * ncy + iyp;
                let g10 = ixp * ncy + iy;
                let g11 = ixp * ncy + iyp;
                jx[g00] += v[0];
                jx[g01] += v[1];
                jx[g10] += v[2];
                jx[g11] += v[3];
                jy[g00] += v[4];
                jy[g01] += v[5];
                jy[g10] += v[6];
                jy[g11] += v[7];
                jz[g00] += v[8];
                jz[g01] += v[9];
                jz[g10] += v[10];
                jz[g11] += v[11];
            }
        }
    }

    /// Element-wise add another accumulator (per-worker arena merge).
    pub fn add_assign(&mut self, other: &RedundantJ) {
        assert_eq!(self.j12.len(), other.j12.len());
        for (a, b) in self.j12.iter_mut().zip(&other.j12) {
            for k in 0..12 {
                a[k] += b[k];
            }
        }
    }
}

/// Evaluate the four CIC corner weights for offsets `(dx, dy)`.
#[inline]
pub fn cic_weights(dx: f64, dy: f64) -> [f64; 4] {
    [
        (1.0 - dx) * (1.0 - dy),
        (1.0 - dx) * dy,
        dx * (1.0 - dy),
        dx * dy,
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sfc::{CellLayout, Morton, RowMajor};

    fn grid() -> Grid2D {
        Grid2D::new(8, 8, 1.0, 1.0).unwrap()
    }

    #[test]
    fn cic_weights_partition_of_unity() {
        for &(dx, dy) in &[(0.0, 0.0), (0.5, 0.5), (0.25, 0.75), (0.999, 0.001)] {
            let w = cic_weights(dx, dy);
            assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-15, "({dx},{dy})");
            assert!(w.iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn cic_weights_match_fig2_tables() {
        let (dx, dy) = (0.3, 0.8);
        let w = cic_weights(dx, dy);
        for corner in 0..4 {
            let expect = (CX[corner] + SX[corner] * dx) * (CY[corner] + SY[corner] * dy);
            assert!((w[corner] - expect).abs() < 1e-15, "corner {corner}");
        }
    }

    #[test]
    fn fill_from_picks_right_corners() {
        let g = grid();
        let layout = RowMajor::new(8, 8).unwrap();
        let mut f = Field2D::new(&g);
        // Ex(ix, iy) = 100·ix + iy, Ey = −(100·ix + iy).
        for ix in 0..8 {
            for iy in 0..8 {
                let v = (100 * ix + iy) as f64;
                let i = f.idx(ix, iy);
                f.ex[i] = v;
                f.ey[i] = -v;
            }
        }
        let mut r = RedundantE::new(&layout);
        r.fill_from(&f, &layout, 1.0, 1.0);
        let c = layout.encode(3, 5);
        assert_eq!(r.e8[c][0], 305.0); // (3,5)
        assert_eq!(r.e8[c][1], 306.0); // (3,6)
        assert_eq!(r.e8[c][2], 405.0); // (4,5)
        assert_eq!(r.e8[c][3], 406.0); // (4,6)
        assert_eq!(r.e8[c][4], -305.0);
        assert_eq!(r.e8[c][7], -406.0);
        // Periodic wrap on the far edge: cell (7,7) corners include (0,0).
        let c = layout.encode(7, 7);
        assert_eq!(r.e8[c][0], 707.0);
        assert_eq!(r.e8[c][1], 700.0); // (7,0)
        assert_eq!(r.e8[c][2], 7.0); // (0,7)
        assert_eq!(r.e8[c][3], 0.0); // (0,0)
    }

    #[test]
    fn fill_from_applies_scale() {
        let g = grid();
        let layout = RowMajor::new(8, 8).unwrap();
        let mut f = Field2D::new(&g);
        f.ex.fill(2.0);
        f.ey.fill(3.0);
        let mut r = RedundantE::new(&layout);
        r.fill_from(&f, &layout, 10.0, 100.0);
        assert_eq!(r.e8[0][0], 20.0);
        assert_eq!(r.e8[0][4], 300.0);
    }

    #[test]
    fn rho_reduce_roundtrip_single_particle() {
        // Deposit w=1 at cell (2,3), offsets (0.25, 0.75); reducing must put
        // the CIC weights on the four surrounding grid points.
        let layout = Morton::new(8, 8).unwrap();
        let mut acc = RedundantRho::new(&layout);
        let w = cic_weights(0.25, 0.75);
        let c = layout.encode(2, 3);
        for (corner, &wc) in w.iter().enumerate() {
            acc.rho4[c][corner] += wc;
        }
        let mut rho = vec![0.0; 64];
        acc.reduce_to_grid(&layout, &mut rho);
        assert!((rho[2 * 8 + 3] - w[0]).abs() < 1e-15);
        assert!((rho[2 * 8 + 4] - w[1]).abs() < 1e-15);
        assert!((rho[3 * 8 + 3] - w[2]).abs() < 1e-15);
        assert!((rho[3 * 8 + 4] - w[3]).abs() < 1e-15);
        assert!((rho.iter().sum::<f64>() - 1.0).abs() < 1e-15);
    }

    #[test]
    fn rho_reduce_wraps_periodically() {
        let layout = RowMajor::new(8, 8).unwrap();
        let mut acc = RedundantRho::new(&layout);
        let c = layout.encode(7, 7);
        acc.rho4[c] = [1.0, 2.0, 4.0, 8.0];
        let mut rho = vec![0.0; 64];
        acc.reduce_to_grid(&layout, &mut rho);
        assert_eq!(rho[7 * 8 + 7], 1.0);
        assert_eq!(rho[7 * 8], 2.0); // iy wraps to column 0
        assert_eq!(rho[7], 4.0); // ix wraps to row 0
        assert_eq!(rho[0], 8.0); // both wrap
    }

    #[test]
    fn add_assign_reduces_thread_copies() {
        let layout = RowMajor::new(8, 8).unwrap();
        let mut a = RedundantRho::new(&layout);
        let mut b = RedundantRho::new(&layout);
        a.rho4[5] = [1.0, 1.0, 1.0, 1.0];
        b.rho4[5] = [0.5, 0.25, 0.0, 2.0];
        b.rho4[6] = [9.0, 0.0, 0.0, 0.0];
        a.add_assign(&b);
        assert_eq!(a.rho4[5], [1.5, 1.25, 1.0, 3.0]);
        assert_eq!(a.rho4[6], [9.0, 0.0, 0.0, 0.0]);
    }

    #[test]
    fn clear_zeroes() {
        let layout = RowMajor::new(8, 8).unwrap();
        let mut a = RedundantRho::new(&layout);
        a.rho4[0] = [1.0; 4];
        a.clear();
        assert_eq!(a.rho4[0], [0.0; 4]);
    }
}
