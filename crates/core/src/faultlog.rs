//! Structured fault-event ledger.
//!
//! Every resilience mechanism in the workspace — transport retries and
//! timeouts in `minimpi`, crash-fault kills, failure detection, communicator
//! shrinks, checkpoint/rollback in [`crate::resilience`], worker-stall
//! detection in [`crate::pool`] — emits events into a [`FaultLog`]: what
//! happened, on which rank, at which simulation step and communication op.
//! Per-rank logs merge into one causally ordered ledger (every event carries
//! a sequence number from the process-global counter in
//! [`minimpi::next_event_seq`], drawn at the moment the event occurred), so
//! tests can assert orderings like *kill → detect → shrink → rollback* and
//! post-mortems can reconstruct exactly what the run did. [`FaultLog::to_json`]
//! dumps the ledger without any external dependency.

use minimpi::{TransportEvent, TransportEventKind};
use std::fmt::Write as _;

/// What a [`FaultEvent`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// A transport-level retransmission after a lost or corrupt frame.
    Retry,
    /// A receive or ack deadline elapsed.
    Timeout,
    /// A rank died (crash fault fired on the rank itself).
    Kill,
    /// A survivor's failure detector flagged a dead peer.
    Detect,
    /// The communicator group was rebuilt without the failed ranks.
    Shrink,
    /// A spare rank was admitted into the communicator group.
    Join,
    /// The live partition was re-cut from a fresh particle histogram.
    Recut,
    /// The driver downgraded its operating mode to survive lost capacity
    /// (solver fallback, or decomposed → replicated at one rank).
    Degrade,
    /// A rank rolled its simulation state back to the last checkpoint.
    Rollback,
    /// A coordinated checkpoint was taken.
    Checkpoint,
    /// A simulation was restored from a (buddy) checkpoint.
    Restore,
    /// A checkpoint copy was replicated to the buddy rank.
    BuddyStore,
    /// A pool worker exceeded the stall deadline.
    WorkerStall,
    /// A job yielded the executor at a checkpoint boundary (multi-tenant
    /// runtime; the job resumes bit-exactly from that checkpoint).
    Preempt,
    /// A job was isolated after repeated faults within the quarantine
    /// window — it will not be scheduled again.
    Quarantine,
    /// A job was evicted from the admission queue under overload.
    Shed,
    /// The adaptive hot-path controller switched a kernel or deposit path
    /// at a sort boundary ([`crate::control`]).
    Adapt,
}

impl FaultKind {
    /// Stable lowercase name used in the JSON dump.
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::Retry => "retry",
            FaultKind::Timeout => "timeout",
            FaultKind::Kill => "kill",
            FaultKind::Detect => "detect",
            FaultKind::Shrink => "shrink",
            FaultKind::Join => "join",
            FaultKind::Recut => "recut",
            FaultKind::Degrade => "degrade",
            FaultKind::Rollback => "rollback",
            FaultKind::Checkpoint => "checkpoint",
            FaultKind::Restore => "restore",
            FaultKind::BuddyStore => "buddy_store",
            FaultKind::WorkerStall => "worker_stall",
            FaultKind::Preempt => "preempt",
            FaultKind::Quarantine => "quarantine",
            FaultKind::Shed => "shed",
            FaultKind::Adapt => "adapt",
        }
    }
}

/// One ledger entry.
#[derive(Debug, Clone)]
pub struct FaultEvent {
    /// Process-global causal sequence number (see [`minimpi::next_event_seq`]).
    pub seq: u64,
    /// Simulation step the event occurred at (0 before the first step).
    pub step: u64,
    /// World rank that recorded the event.
    pub rank: usize,
    /// The rank's communication-op counter when the event occurred.
    pub op: u64,
    /// Event class.
    pub kind: FaultKind,
    /// Job the event belongs to, when a multi-tenant runtime recorded it
    /// (`None` for single-run and transport-level events). Keeps merged
    /// multi-job ledgers attributable per tenant.
    pub job: Option<u64>,
    /// Free-form context (peer rank, tag, byte counts, …).
    pub detail: String,
}

/// An append-only, mergeable ledger of [`FaultEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct FaultLog {
    events: Vec<FaultEvent>,
}

impl FaultLog {
    /// An empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one event, stamping it with a fresh causal sequence number.
    pub fn record(&mut self, step: u64, rank: usize, op: u64, kind: FaultKind, detail: String) {
        self.events.push(FaultEvent {
            seq: minimpi::next_event_seq(),
            step,
            rank,
            op,
            kind,
            job: None,
            detail,
        });
    }

    /// Append one job-scoped event — [`record`](Self::record) with the
    /// tenant attached, for multi-tenant runtimes whose ledger interleaves
    /// many jobs' events.
    pub fn record_for_job(
        &mut self,
        job: u64,
        step: u64,
        rank: usize,
        op: u64,
        kind: FaultKind,
        detail: String,
    ) {
        self.events.push(FaultEvent {
            seq: minimpi::next_event_seq(),
            step,
            rank,
            op,
            kind,
            job: Some(job),
            detail,
        });
    }

    /// The seq-ordered slice of events belonging to one job — the evidence
    /// attached to a quarantine verdict.
    pub fn events_for_job(&self, job: u64) -> Vec<FaultEvent> {
        let mut out: Vec<FaultEvent> = self
            .events
            .iter()
            .filter(|e| e.job == Some(job))
            .cloned()
            .collect();
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Fold a batch of transport events (from
    /// [`minimpi::Comm::take_events`]) into the ledger, attributing them to
    /// simulation step `step`. The transport layer already stamped their
    /// sequence numbers at occurrence time, so causal order survives the
    /// late ingestion.
    pub fn ingest_transport(&mut self, step: u64, events: Vec<TransportEvent>) {
        for e in events {
            let kind = match e.kind {
                TransportEventKind::Retry => FaultKind::Retry,
                TransportEventKind::Timeout => FaultKind::Timeout,
                TransportEventKind::Kill => FaultKind::Kill,
                TransportEventKind::Detect => FaultKind::Detect,
                TransportEventKind::Shrink => FaultKind::Shrink,
                TransportEventKind::Join => FaultKind::Join,
            };
            let detail = match e.peer {
                Some(p) => format!("peer {p}, tag {:#x}: {}", e.tag, e.detail),
                None => e.detail,
            };
            self.events.push(FaultEvent {
                seq: e.seq,
                step,
                rank: e.rank,
                op: e.op,
                kind,
                job: None,
                detail,
            });
        }
    }

    /// Merge another rank's ledger into this one and re-sort by sequence
    /// number, restoring the global causal order.
    pub fn merge(&mut self, other: FaultLog) {
        self.events.extend(other.events);
        self.events.sort_by_key(|e| e.seq);
    }

    /// The events, in insertion order (causal order after [`merge`](Self::merge)).
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True if `kinds` occurs as a subsequence of the seq-ordered ledger —
    /// the assertion shape for "kill, then detect, then shrink, then
    /// rollback happened in that order".
    pub fn has_sequence(&self, kinds: &[FaultKind]) -> bool {
        let mut sorted: Vec<&FaultEvent> = self.events.iter().collect();
        sorted.sort_by_key(|e| e.seq);
        let mut want = kinds.iter();
        let mut next = want.next();
        for e in sorted {
            if let Some(&k) = next {
                if e.kind == k {
                    next = want.next();
                }
            } else {
                break;
            }
        }
        next.is_none()
    }

    /// Count of events of one kind.
    pub fn count(&self, kind: FaultKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }

    /// Serialize the ledger as a JSON array, one object per event, ordered
    /// by sequence number.
    pub fn to_json(&self) -> String {
        let mut sorted: Vec<&FaultEvent> = self.events.iter().collect();
        sorted.sort_by_key(|e| e.seq);
        let mut out = String::from("[\n");
        for (i, e) in sorted.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"seq\": {}, \"step\": {}, \"rank\": {}, \"op\": {}, \"kind\": \"{}\", ",
                e.seq,
                e.step,
                e.rank,
                e.op,
                e.kind.name()
            );
            if let Some(job) = e.job {
                let _ = write!(out, "\"job\": {job}, ");
            }
            out.push_str("\"detail\": ");
            escape_json(&mut out, &e.detail);
            out.push('}');
            out.push_str(if i + 1 < sorted.len() { ",\n" } else { "\n" });
        }
        out.push_str("]\n");
        out
    }
}

fn escape_json(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_restores_causal_order() {
        let mut a = FaultLog::new();
        let mut b = FaultLog::new();
        a.record(1, 0, 5, FaultKind::Kill, "die".into());
        b.record(1, 1, 6, FaultKind::Detect, "saw 0".into());
        a.record(2, 0, 7, FaultKind::Shrink, "regroup".into());
        let mut merged = FaultLog::new();
        merged.merge(b);
        merged.merge(a);
        let seqs: Vec<u64> = merged.events().iter().map(|e| e.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
        assert!(merged.has_sequence(&[FaultKind::Kill, FaultKind::Detect, FaultKind::Shrink]));
        assert!(!merged.has_sequence(&[FaultKind::Detect, FaultKind::Kill]));
    }

    #[test]
    fn subsequence_check_handles_gaps_and_repeats() {
        let mut log = FaultLog::new();
        for kind in [
            FaultKind::Retry,
            FaultKind::Kill,
            FaultKind::Retry,
            FaultKind::Detect,
            FaultKind::Shrink,
            FaultKind::Rollback,
        ] {
            log.record(0, 0, 0, kind, String::new());
        }
        assert!(log.has_sequence(&[
            FaultKind::Kill,
            FaultKind::Detect,
            FaultKind::Shrink,
            FaultKind::Rollback
        ]));
        assert!(!log.has_sequence(&[FaultKind::Rollback, FaultKind::Shrink]));
        assert_eq!(log.count(FaultKind::Retry), 2);
    }

    #[test]
    fn json_dump_is_ordered_and_escaped() {
        let mut log = FaultLog::new();
        log.record(3, 1, 9, FaultKind::Timeout, "tag \"x\"\n".into());
        let s = log.to_json();
        assert!(s.starts_with("[\n"), "{s}");
        assert!(s.contains("\"kind\": \"timeout\""), "{s}");
        assert!(s.contains("\\\"x\\\"\\n"), "{s}");
        assert!(s.ends_with("]\n"), "{s}");
    }

    #[test]
    fn job_scoped_events_tag_and_filter() {
        let mut log = FaultLog::new();
        log.record(1, 0, 0, FaultKind::Checkpoint, "global".into());
        log.record_for_job(7, 2, 0, 0, FaultKind::Preempt, "yield to job 9".into());
        log.record_for_job(9, 2, 0, 0, FaultKind::Retry, "attempt 1, \"poison\"".into());
        log.record_for_job(7, 3, 0, 0, FaultKind::Shed, String::new());

        let seven = log.events_for_job(7);
        assert_eq!(seven.len(), 2);
        assert!(seven.iter().all(|e| e.job == Some(7)));
        assert_eq!(seven[0].kind, FaultKind::Preempt);
        assert_eq!(seven[1].kind, FaultKind::Shed);
        assert!(log.events_for_job(3).is_empty());

        // Merged multi-job ledgers stay parseable: the job field is emitted
        // as a bare number, absent for job-less events, and string payloads
        // stay escaped.
        let s = log.to_json();
        assert!(s.contains("\"job\": 7, \"detail\""), "{s}");
        assert!(s.contains("\"kind\": \"quarantine\"") || !s.contains("quarantine"));
        assert!(s.contains("\\\"poison\\\""), "{s}");
        assert!(
            s.lines()
                .filter(|l| l.contains("\"kind\": \"checkpoint\""))
                .all(|l| !l.contains("\"job\"")),
            "{s}"
        );
    }

    #[test]
    fn ingest_preserves_transport_seq() {
        let mut log = FaultLog::new();
        let ev = TransportEvent {
            seq: minimpi::next_event_seq(),
            kind: TransportEventKind::Retry,
            rank: 2,
            peer: Some(0),
            tag: 7,
            op: 11,
            detail: "attempt 1".into(),
        };
        let seq = ev.seq;
        log.ingest_transport(4, vec![ev]);
        let e = &log.events()[0];
        assert_eq!(e.seq, seq);
        assert_eq!(e.step, 4);
        assert_eq!(e.rank, 2);
        assert_eq!(e.op, 11);
        assert_eq!(e.kind, FaultKind::Retry);
        assert!(e.detail.contains("peer 0"));
    }
}
