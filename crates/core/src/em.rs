//! The multi-species 2d3v electromagnetostatic driver: Boris push against a
//! static uniform **B**, electrostatic E from the spectral Poisson solve,
//! lane-blocked current deposition, and per-species moment diagnostics.
//!
//! [`EmSimulation`] is the species-generalized sibling of
//! [`crate::sim::Simulation`]. It reuses the paper's data structures
//! unchanged — per-species [`crate::species::SpeciesArena`]s over the same
//! SoA layout, the redundant 8-double E view for gathers, redundant
//! per-corner ρ and **J** arenas for contiguous deposits — and the same
//! `KernelPath`/`DepositPath` knobs drive the 2d3v kernels
//! ([`crate::kernels::boris`], [`crate::kernels::current`]).
//!
//! Velocities are stored in *physical* units throughout (no §IV-D
//! hoisting: per-species q/m would need one scaled field copy per species,
//! forfeiting the redundant layout's bandwidth win). The position push
//! therefore runs the branchless kernels with the single scale `Δt/Δx`,
//! which — like the unhoisted electrostatic baseline — requires square
//! cells.
//!
//! Determinism contract: trajectories depend only on the config and the
//! executing pool *width*, exactly as in the electrostatic driver, and the
//! `Exact` deposit path over `Scalar`/`Lanes` kernels is bit-identical.

use crate::fields::{Field2D, RedundantE, RedundantJ, RedundantRho};
use crate::grid::Grid2D;
use crate::kernels::accumulate;
use crate::kernels::boris::{select_boris, BorisCoeffs};
use crate::kernels::current;
use crate::kernels::deposit::DepositPath;
use crate::kernels::{position, simd, velocity};
use crate::particles::InitialDistribution;
use crate::pool::ThreadPool;
use crate::resilience::checkpoint::{self as ckpt, EmSpeciesState, EmState};
use crate::resilience::watchdog::{WatchdogConfig, WatchdogViolation};
use crate::rng::Rng;
use crate::control::{self, ControllerConfig, HotPathController, SwitchEvent};
use crate::sim::{AnyLayout, DiagSample, Diagnostics, KernelPath};
use crate::species::{
    species_moments, split_species_mut, SpeciesArena, SpeciesDef, SpeciesMoments,
};
use crate::PicError;
use sfc::Ordering;
use spectral::poisson::{PoissonSolver2D, SolveScratch};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a multi-species 2d3v run.
#[derive(Debug, Clone, PartialEq)]
pub struct EmConfig {
    /// Cells along x (power of two).
    pub grid_nx: usize,
    /// Cells along y (power of two).
    pub grid_ny: usize,
    /// Domain length along x.
    pub lx: f64,
    /// Domain length along y.
    pub ly: f64,
    /// Time step.
    pub dt: f64,
    /// The species table, in initialization order (the sampling RNG stream
    /// is shared, so the order is part of the physics).
    pub species: Vec<SpeciesDef>,
    /// Static uniform magnetic field `(Bx, By, Bz)`.
    pub b0: [f64; 3],
    /// Solve Poisson for the self-consistent E each step. `false` freezes
    /// `E = 0` — pure gyro-motion, the analytic-validation mode.
    pub solve_e: bool,
    /// Cell ordering for the redundant structures.
    pub ordering: Ordering,
    /// Scalar vs lane-blocked inner kernels.
    pub kernel_path: KernelPath,
    /// Deposition kernel for both ρ and **J**.
    pub deposit_path: DepositPath,
    /// Sort every `sort_period` steps (0 = never).
    pub sort_period: usize,
    /// Workers in the persistent thread pool (1 = sequential, no pool).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Replicated-decomposition slice `(rank, nranks)`: every rank samples
    /// the full population deterministically but keeps only its contiguous
    /// `1/nranks` of *each* species; the per-step ρ/J reductions
    /// ([`EmSimulation::step_with_reduce`]) restore the global densities.
    pub replica: Option<(usize, usize)>,
    /// Online adaptive hot-path control ([`crate::control`]) — same
    /// semantics as [`crate::sim::PicConfig::controller`]: `Some` drives
    /// the sort schedule from observed disorder and retunes the
    /// kernel/deposit paths at sort boundaries.
    pub controller: Option<crate::control::ControllerConfig>,
}

impl EmConfig {
    fn base(species: Vec<SpeciesDef>) -> Self {
        Self {
            grid_nx: 32,
            grid_ny: 32,
            lx: 4.0 * std::f64::consts::PI,
            ly: 4.0 * std::f64::consts::PI,
            dt: 0.05,
            species,
            b0: [0.0; 3],
            solve_e: true,
            ordering: Ordering::Morton,
            kernel_path: KernelPath::Lanes,
            deposit_path: DepositPath::LaneReduce,
            sort_period: 20,
            threads: 1,
            seed: 0xB1C0DE,
            replica: None,
            controller: None,
        }
    }

    /// Cyclotron motion: a cold drifting electron population in `B = ẑ`
    /// with the field solve off. Every marker gyrates on the analytic
    /// circle of radius `v₀·m/(|q|B) = 0.5` with period `2πm/(|q|B) = 2π`,
    /// so the simulated gyro-period and gyro-radius can be checked against
    /// closed forms (the Boris rotation angle is `2·atan(ΩΔt/2)`, an
    /// `O((ΩΔt)²)` approximation — 0.05² /12 ≈ 2·10⁻⁵ relative here).
    pub fn cyclotron(n: usize) -> Self {
        let mut cfg = Self::base(vec![SpeciesDef::electrons(
            n,
            InitialDistribution::DriftingMaxwellian {
                alpha: 0.0,
                k: 1.0,
                v0x: 0.5,
                vt: 0.0,
            },
        )]);
        cfg.lx = 16.0;
        cfg.ly = 16.0;
        cfg.grid_nx = 16;
        cfg.grid_ny = 16;
        cfg.b0 = [0.0, 0.0, 1.0];
        cfg.solve_e = false;
        cfg.sort_period = 0; // nothing moves between cells coherently; keep the stream pure
        cfg
    }

    /// Magnetized two-stream: counter-streaming electron beams over a
    /// heavy immobile-ish ion background, with a weak axial `B`. The
    /// electrostatic two-stream instability grows mode 1 of `E_x`.
    pub fn magnetized_two_stream(n: usize) -> Self {
        let k = 0.2;
        let l = 2.0 * std::f64::consts::PI / k;
        let mut cfg = Self::base(vec![
            SpeciesDef::electrons(
                n,
                InitialDistribution::TwoStream {
                    alpha: 0.01,
                    k,
                    v0: 3.0,
                    vt: 0.3,
                },
            ),
            // The unstable mode stands near zero phase velocity, so the
            // ions must be cold (vt ≪ v₀) or their Landau resonance at
            // v ≈ 0 damps the very mode the scenario is meant to grow.
            SpeciesDef::ions(
                n / 4,
                100.0,
                InitialDistribution::DriftingMaxwellian {
                    alpha: 0.0,
                    k: 1.0,
                    v0x: 0.0,
                    vt: 0.05,
                },
            )
            .named("heavy-ions"),
        ]);
        cfg.lx = l;
        cfg.ly = l;
        // Weakly magnetized: the electrostatic growth rate here is
        // γ ≈ 0.14 ωp, and the axial B rotates the beam drift at Ω = |q|B/m.
        // Growth survives only for γ ≫ Ω (at Ω ≈ γ the beams rotate away
        // from the x-mode before it can saturate), so keep Ω = 0.02.
        cfg.b0 = [0.0, 0.0, 0.02];
        cfg
    }

    /// Bump-on-tail: a 90 %-density Maxwellian core plus a 10 %-density
    /// fast beam (v₀ = 4 vₜ). The beam-plasma interaction feeds field
    /// energy growth from the velocity-space gradient.
    pub fn bump_on_tail(n: usize) -> Self {
        Self::base(vec![
            SpeciesDef::electrons(
                n,
                InitialDistribution::DriftingMaxwellian {
                    alpha: 0.01,
                    k: 0.5,
                    v0x: 0.0,
                    vt: 1.0,
                },
            )
            .named("core")
            .with_density(0.9),
            SpeciesDef::electrons(
                n / 10,
                InitialDistribution::DriftingMaxwellian {
                    alpha: 0.0,
                    k: 0.5,
                    v0x: 4.0,
                    vt: 0.5,
                },
            )
            .named("beam")
            .with_density(0.1),
        ])
    }

    /// Ion-acoustic waves: warm electrons neutralized by cold ions
    /// (m = 25) carrying a density perturbation. The perturbation
    /// oscillates at the ion-acoustic frequency instead of damping away.
    pub fn ion_acoustic(n: usize) -> Self {
        Self::base(vec![
            SpeciesDef::electrons(
                n,
                InitialDistribution::DriftingMaxwellian {
                    alpha: 0.0,
                    k: 0.5,
                    v0x: 0.0,
                    vt: 1.0,
                },
            ),
            SpeciesDef::ions(
                n,
                25.0,
                InitialDistribution::DriftingMaxwellian {
                    alpha: 0.05,
                    k: 0.5,
                    v0x: 0.0,
                    vt: 0.2,
                },
            ),
        ])
    }

    /// Lift a single-species electrostatic [`crate::sim::PicConfig`] into a
    /// one-electron-species EM config (the legacy-snapshot restore path).
    /// `b0 = 0` and the Poisson solve stays on, so stepping reproduces the
    /// same physics the 2d2v driver ran (plus an inert `vz = 0`).
    pub fn from_legacy(cfg: &crate::sim::PicConfig) -> Self {
        Self {
            grid_nx: cfg.grid_nx,
            grid_ny: cfg.grid_ny,
            lx: cfg.lx,
            ly: cfg.ly,
            dt: cfg.dt,
            species: vec![SpeciesDef::electrons(cfg.n_particles, cfg.distribution)],
            b0: [0.0; 3],
            solve_e: true,
            ordering: cfg.ordering,
            kernel_path: cfg.kernel_path,
            deposit_path: cfg.deposit_path,
            sort_period: cfg.sort_period,
            threads: cfg.threads,
            seed: cfg.seed,
            replica: None,
            controller: cfg.controller.clone(),
        }
    }

    /// Total marker count across the species table (before any replica
    /// slice).
    pub fn total_particles(&self) -> usize {
        self.species.iter().map(|s| s.n_particles).sum()
    }

    fn validate(&self) -> Result<(), PicError> {
        if self.species.is_empty() {
            return Err(PicError::Config("need at least one species".into()));
        }
        for s in &self.species {
            if s.n_particles == 0 {
                return Err(PicError::Config(format!(
                    "species '{}' needs at least one particle",
                    s.name
                )));
            }
            if !s.mass.is_finite() || s.mass <= 0.0 {
                return Err(PicError::Config(format!(
                    "species '{}' mass must be positive and finite",
                    s.name
                )));
            }
            if !s.density.is_finite() || s.density <= 0.0 {
                return Err(PicError::Config(format!(
                    "species '{}' density must be positive and finite",
                    s.name
                )));
            }
        }
        if self.dt.is_nan() || self.dt <= 0.0 {
            return Err(PicError::Config(format!(
                "dt must be positive, got {}",
                self.dt
            )));
        }
        if !self.b0.iter().all(|b| b.is_finite()) {
            return Err(PicError::Config("b0 must be finite".into()));
        }
        let (dx, dy) = (self.lx / self.grid_nx as f64, self.ly / self.grid_ny as f64);
        if (dx - dy).abs() > 1e-12 * dx {
            return Err(PicError::Config(
                "the 2d3v driver stores physical velocities and requires square cells (Δx = Δy)"
                    .into(),
            ));
        }
        if self.threads == 0 {
            return Err(PicError::Config("threads must be at least 1".into()));
        }
        if let Some((rank, nranks)) = self.replica {
            if nranks == 0 || rank >= nranks {
                return Err(PicError::Config(format!(
                    "replica rank {rank} out of range for {nranks} ranks"
                )));
            }
        }
        Ok(())
    }
}

/// A running multi-species 2d3v simulation.
pub struct EmSimulation {
    cfg: EmConfig,
    grid: Grid2D,
    layout: AnyLayout,
    solver: PoissonSolver2D,
    species: Vec<SpeciesArena>,
    /// Per-species Boris rotation constants, index-parallel with `species`.
    boris: Vec<BorisCoeffs>,
    field: Field2D,
    jx: Vec<f64>,
    jy: Vec<f64>,
    jz: Vec<f64>,
    e8: RedundantE,
    rho4: RedundantRho,
    j12: RedundantJ,
    rho_arenas: Vec<RedundantRho>,
    j_arenas: Vec<RedundantJ>,
    pool: Option<Arc<ThreadPool>>,
    step_count: usize,
    diag: Diagnostics,
    rng: Rng,
    charge_ref: f64,
    solve_scratch: SolveScratch,
    /// Online adaptive controller (present when `cfg.controller` is set).
    controller: Option<HotPathController>,
}

impl EmSimulation {
    /// Build and initialize: sample every species (one shared RNG stream,
    /// in table order), sort, deposit the initial ρ, solve the initial E
    /// (when `solve_e`), and take the leap-frog half-kick back.
    pub fn new(cfg: EmConfig) -> Result<Self, PicError> {
        Self::init(Self::shell(cfg, None)?, |_| {})
    }

    /// Like [`new`](Self::new) but calls `reduce` on the initial deposited
    /// ρ before the first solve — required in replicated runs so every
    /// rank's initial field (and half-kick) sees the *global* density.
    pub fn new_with_reduce(
        cfg: EmConfig,
        reduce: impl FnOnce(&mut [f64]),
    ) -> Result<Self, PicError> {
        Self::init(Self::shell(cfg, None)?, reduce)
    }

    /// Like [`new`](Self::new) over a shared worker pool (multi-tenant
    /// runtimes). Trajectories depend only on the pool width.
    pub fn new_shared(cfg: EmConfig, pool: Arc<ThreadPool>) -> Result<Self, PicError> {
        Self::init(Self::shell(cfg, Some(pool))?, |_| {})
    }

    /// Rebuild directly from an EM checkpoint snapshot.
    pub fn from_snapshot(cfg: EmConfig, snapshot: &[u8]) -> Result<Self, PicError> {
        let mut sim = Self::shell(cfg, None)?;
        sim.restore(snapshot)?;
        Ok(sim)
    }

    /// [`from_snapshot`](Self::from_snapshot) over a shared pool.
    pub fn from_snapshot_shared(
        cfg: EmConfig,
        snapshot: &[u8],
        pool: Arc<ThreadPool>,
    ) -> Result<Self, PicError> {
        let mut sim = Self::shell(cfg, Some(pool))?;
        sim.restore(snapshot)?;
        Ok(sim)
    }

    /// Restore a *legacy* single-species electrostatic snapshot (the
    /// `b"PIC2DCKP"` v1 format) into a one-species EM world: the electron
    /// arena takes the checkpointed particles with `vz = 0` (hoisted
    /// velocities are un-normalized back to physical units), fields and
    /// the RNG stream carry over, and `B = 0` + `solve_e` reproduce the
    /// electrostatic physics the snapshot was running.
    pub fn from_legacy_snapshot(
        cfg: &crate::sim::PicConfig,
        snapshot: &[u8],
    ) -> Result<Self, PicError> {
        let state = ckpt::decode(snapshot)?;
        let expect = ckpt::config_fingerprint(cfg);
        if state.config_fingerprint != expect {
            return Err(PicError::Checkpoint(format!(
                "legacy snapshot fingerprint {:#018x} does not match the config ({expect:#018x})",
                state.config_fingerprint
            )));
        }
        let em_cfg = EmConfig::from_legacy(cfg);
        let mut sim = Self::shell(em_cfg, None)?;
        let mut p = state.particles;
        if cfg.hoisted {
            // Legacy hoisted runs store velocities in grid units per step;
            // the EM arenas are physical.
            let (cx, cy) = (sim.grid.dx() / cfg.dt, sim.grid.dy() / cfg.dt);
            for v in p.vx.iter_mut() {
                *v *= cx;
            }
            for v in p.vy.iter_mut() {
                *v *= cy;
            }
        }
        let n = p.len();
        let def = sim.cfg.species[0].clone();
        sim.species = vec![SpeciesArena::from_parts(def, p, vec![0.0; n], &sim.grid)];
        sim.field.rho.copy_from_slice(&state.rho);
        sim.field.ex.copy_from_slice(&state.ex);
        sim.field.ey.copy_from_slice(&state.ey);
        sim.step_count = state.step_count as usize;
        sim.rng = Rng::from_state(state.rng_state);
        sim.charge_ref = state.charge_ref;
        sim.diag = Diagnostics {
            history: state.diag,
        };
        sim.refresh_field_views();
        Ok(sim)
    }

    fn shell(cfg: EmConfig, shared: Option<Arc<ThreadPool>>) -> Result<Self, PicError> {
        cfg.validate()?;
        let grid = Grid2D::new(cfg.grid_nx, cfg.grid_ny, cfg.lx, cfg.ly)?;
        let layout = AnyLayout::build(cfg.ordering, cfg.grid_nx, cfg.grid_ny)?;
        let solver = PoissonSolver2D::new(cfg.grid_nx, cfg.grid_ny, cfg.lx, cfg.ly)?;
        let field = Field2D::new(&grid);
        let ng = field.rho.len();
        let e8 = RedundantE::new(layout.as_dyn());
        let rho4 = RedundantRho::new(layout.as_dyn());
        let j12 = RedundantJ::new(layout.as_dyn());
        let boris = cfg
            .species
            .iter()
            .map(|s| BorisCoeffs::new(s.charge, s.mass, cfg.dt, cfg.b0))
            .collect();
        let pool = match shared {
            Some(p) => Some(p),
            None => (cfg.threads > 1).then(|| Arc::new(ThreadPool::new(cfg.threads))),
        };
        let (rho_arenas, j_arenas) = match &pool {
            Some(p) => (
                (0..p.nthreads())
                    .map(|_| RedundantRho::new(layout.as_dyn()))
                    .collect(),
                (0..p.nthreads())
                    .map(|_| RedundantJ::new(layout.as_dyn()))
                    .collect(),
            ),
            None => (Vec::new(), Vec::new()),
        };
        let controller = cfg
            .controller
            .clone()
            .map(|cc| HotPathController::new(cc, cfg.kernel_path, cfg.deposit_path));
        Ok(Self {
            grid,
            layout,
            solver,
            species: Vec::new(),
            boris,
            field,
            jx: vec![0.0; ng],
            jy: vec![0.0; ng],
            jz: vec![0.0; ng],
            e8,
            rho4,
            j12,
            rho_arenas,
            j_arenas,
            pool,
            step_count: 0,
            diag: Diagnostics::default(),
            rng: Rng::seed_from_u64(cfg.seed),
            charge_ref: 0.0,
            solve_scratch: SolveScratch::new(),
            controller,
            cfg,
        })
    }

    fn init(mut sim: Self, reduce: impl FnOnce(&mut [f64])) -> Result<Self, PicError> {
        let defs = sim.cfg.species.clone();
        let replica = sim.cfg.replica;
        let ncells = sim.layout.as_dyn().ncells();
        for def in defs {
            let mut arena = SpeciesArena::initialize(
                def,
                &sim.grid,
                sim.layout.as_dyn(),
                &mut sim.rng,
                replica,
            );
            arena.sort(ncells);
            sim.species.push(arena);
        }

        sim.deposit_rho_initial();
        reduce(&mut sim.field.rho);
        sim.charge_ref = sim.field.rho.iter().sum();
        if sim.cfg.solve_e {
            sim.solve_field();
        }
        sim.refresh_field_views();

        // Leap-frog half-kick back, per species: v(−Δt/2) = v(0) −
        // (q/m)·E(x₀)·Δt/2. Ez = 0 so vz is untouched; B contributes no
        // impulse at t = 0 in the Boris stagger.
        for si in 0..sim.species.len() {
            let c = -0.5 * sim.species[si].def.charge * sim.cfg.dt / sim.species[si].def.mass;
            let arena = &mut sim.species[si];
            velocity::update_velocities_redundant(
                &arena.p.icell,
                &arena.p.dx,
                &arena.p.dy,
                &mut arena.p.vx,
                &mut arena.p.vy,
                &sim.e8.e8,
                c,
                c,
            );
        }
        sim.record_diag();
        Ok(sim)
    }

    // ---------------- accessors ----------------

    /// The configuration this simulation runs.
    pub fn config(&self) -> &EmConfig {
        &self.cfg
    }

    /// The spatial grid.
    pub fn grid(&self) -> &Grid2D {
        &self.grid
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.step_count
    }

    /// The live species arenas, in table order.
    pub fn species(&self) -> &[SpeciesArena] {
        &self.species
    }

    /// Diagnostics history (one sample at init + one per step).
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diag
    }

    /// Deposited charge density (post any reduction).
    pub fn rho(&self) -> &[f64] {
        &self.field.rho
    }

    /// Mutable ρ — the hook for external reductions and fault injection.
    pub fn rho_mut(&mut self) -> &mut [f64] {
        &mut self.field.rho
    }

    /// The electric field `(ex, ey)` on grid points.
    pub fn e_field(&self) -> (&[f64], &[f64]) {
        (&self.field.ex, &self.field.ey)
    }

    /// The deposited current density `(jx, jy, jz)` on grid points.
    pub fn j_field(&self) -> (&[f64], &[f64], &[f64]) {
        (&self.jx, &self.jy, &self.jz)
    }

    /// Total deposited charge (Σ over grid values of ρ).
    pub fn total_charge(&self) -> f64 {
        self.field.rho.iter().sum()
    }

    /// The total-charge reference captured right after initialization.
    pub fn charge_reference(&self) -> f64 {
        self.charge_ref
    }

    /// Per-species velocity moments, in table order.
    pub fn moments(&self) -> Vec<SpeciesMoments> {
        self.species.iter().map(species_moments).collect()
    }

    /// Total momentum `Σ_s m_s·w_s·Σ v` across species.
    pub fn total_momentum(&self) -> [f64; 3] {
        let mut p = [0.0; 3];
        for m in self.moments() {
            for (pd, md) in p.iter_mut().zip(m.momentum) {
                *pd += md;
            }
        }
        p
    }

    /// Total kinetic energy `Σ_s ½·m_s·w_s·Σ|v|²` (all three components).
    pub fn kinetic_energy(&self) -> f64 {
        self.species
            .iter()
            .map(|s| {
                let sum: f64 = (0..s.len())
                    .map(|i| s.p.vx[i] * s.p.vx[i] + s.p.vy[i] * s.p.vy[i] + s.vz[i] * s.vz[i])
                    .sum();
                0.5 * s.def.mass * s.weight * sum
            })
            .sum()
    }

    /// Electrostatic field energy from the current grid field.
    pub fn field_energy(&self) -> f64 {
        self.solver.field_energy(&self.field.ex, &self.field.ey)
    }

    /// Amplitude of `E_x`'s Fourier mode `m` along x (y-averaged), same
    /// estimator as the electrostatic driver.
    pub fn ex_mode_amplitude(&self, mode: usize) -> f64 {
        let (ncx, ncy) = (self.grid.ncx, self.grid.ncy);
        let mut re = 0.0;
        let mut im = 0.0;
        for ix in 0..ncx {
            let row: f64 = self.field.ex[ix * ncy..(ix + 1) * ncy].iter().sum();
            let theta = -2.0 * std::f64::consts::PI * (mode * ix) as f64 / ncx as f64;
            re += row * theta.cos();
            im += row * theta.sin();
        }
        2.0 * (re * re + im * im).sqrt() / (ncx * ncy) as f64
    }

    /// Switch scalar vs lane-blocked kernels mid-run (bit-identical paths).
    pub fn set_kernel_path(&mut self, path: KernelPath) {
        self.cfg.kernel_path = path;
    }

    /// Switch the deposition kernel mid-run (changes rounding within the
    /// per-cell bound unless moving between the exact forms).
    pub fn set_deposit_path(&mut self, path: DepositPath) {
        self.cfg.deposit_path = path;
    }

    /// Change the sort period mid-run (autotuning).
    pub fn set_sort_period(&mut self, period: usize) {
        self.cfg.sort_period = period;
    }

    /// Sort every species now, regardless of the configured period.
    pub fn force_sort(&mut self) {
        self.sort_all();
    }

    /// Attach an online adaptive controller ([`crate::control`]) starting
    /// from the currently active kernel/deposit knobs; the profile is also
    /// recorded in the configuration so checkpoints fingerprint the
    /// controller-enabled run.
    pub fn enable_controller(&mut self, ccfg: ControllerConfig) {
        self.cfg.controller = Some(ccfg.clone());
        self.controller = Some(HotPathController::new(
            ccfg,
            self.cfg.kernel_path,
            self.cfg.deposit_path,
        ));
    }

    /// The attached adaptive controller, if any.
    pub fn controller(&self) -> Option<&HotPathController> {
        self.controller.as_ref()
    }

    /// Drain the hot-path switch events applied since the last call
    /// (empty when no controller is attached).
    pub fn take_hot_path_events(&mut self) -> Vec<SwitchEvent> {
        self.controller
            .as_mut()
            .map(|c| c.take_events())
            .unwrap_or_default()
    }

    // ---------------- stepping ----------------

    /// Advance one step.
    pub fn step(&mut self) {
        self.step_with_reduce(|_| {});
    }

    /// Advance one step, calling `reduce` on each freshly deposited grid
    /// array (ρ, then Jx, Jy, Jz) before the field solve — the replicated
    /// decomposition's allreduce hook. Single-process runs pass a no-op.
    pub fn step_with_reduce(&mut self, mut reduce: impl FnMut(&mut [f64])) {
        self.step_pre_reduce();
        reduce(&mut self.field.rho);
        reduce(&mut self.jx);
        reduce(&mut self.jy);
        reduce(&mut self.jz);
        self.step_post_reduce();
    }

    /// First half of a step: sort (periodically), Boris push, position
    /// push, and the ρ/**J** deposits — leaving the per-rank partial grids
    /// in [`rho_mut`](Self::rho_mut)/[`j_mut`](Self::j_mut). Drivers whose
    /// reduction isn't expressible as a closure call this, reduce, then
    /// finish with [`step_post_reduce`](Self::step_post_reduce).
    pub fn step_pre_reduce(&mut self) {
        self.step_count += 1;
        let sort_now = match &self.controller {
            Some(c) => c.should_sort(),
            None => {
                self.cfg.sort_period > 0 && self.step_count.is_multiple_of(self.cfg.sort_period)
            }
        };
        if sort_now {
            self.sort_all();
            // Hot-path decisions commit only at sort boundaries (same
            // bit-exactness contract as the electrostatic driver).
            if let Some(mut c) = self.controller.take() {
                let (k, d) = c.on_sort(self.step_count as u64);
                self.cfg.kernel_path = k;
                self.cfg.deposit_path = d;
                self.controller = Some(c);
            }
        }
        let t = self.controller.is_some().then(Instant::now);
        self.push_velocities();
        self.push_positions();
        self.deposit_rho();
        self.deposit_current();
        if let Some(t) = t {
            self.observe_controller(t.elapsed().as_secs_f64());
        }
    }

    /// Feed the attached controller this step's observables: the
    /// count-weighted mean disorder across the species arenas and the
    /// particle-loop wall seconds.
    fn observe_controller(&mut self, secs: f64) {
        let Some(c) = self.controller.as_mut() else {
            return;
        };
        let stride = c.config().stride;
        let cells = self.grid.ncells();
        let mut weight = 0.0;
        let mut descent = 0.0;
        let mut jump = 0.0;
        let mut uniform = 0.0;
        for arena in &self.species {
            let n = arena.p.len();
            if n < 2 {
                continue;
            }
            let d = control::measure_disorder(&arena.p.icell, stride, cells);
            let w = n as f64;
            weight += w;
            descent += w * d.descent_frac;
            jump += w * d.jump_frac;
            uniform += w * d.uniform_block_frac;
        }
        let d = if weight > 0.0 {
            control::Disorder {
                descent_frac: descent / weight,
                jump_frac: jump / weight,
                uniform_block_frac: uniform / weight,
            }
        } else {
            control::Disorder::NONE
        };
        c.observe(d, secs);
    }

    /// Second half of a step: field solve on the (reduced) ρ, redundant
    /// view refresh, diagnostics. Must follow a
    /// [`step_pre_reduce`](Self::step_pre_reduce).
    pub fn step_post_reduce(&mut self) {
        if self.cfg.solve_e {
            self.solve_field();
            self.refresh_field_views();
        }
        self.record_diag();
    }

    /// Mutable current-density views, for in-place reduction between the
    /// step halves.
    pub fn j_mut(&mut self) -> (&mut [f64], &mut [f64], &mut [f64]) {
        (&mut self.jx, &mut self.jy, &mut self.jz)
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    fn sort_all(&mut self) {
        let ncells = self.layout.as_dyn().ncells();
        for arena in &mut self.species {
            arena.sort(ncells);
        }
    }

    /// Boris push for every species: E gathered from the redundant view
    /// (physical units, so the same `e8` serves all species), rotation by
    /// the per-species hoisted constants.
    fn push_velocities(&mut self) {
        let kernel = select_boris(self.cfg.kernel_path);
        let e8 = &self.e8.e8;
        for (arena, coeffs) in self.species.iter_mut().zip(&self.boris) {
            match &self.pool {
                Some(pool) => {
                    let mut views = split_species_mut(&mut arena.p, &mut arena.vz, pool.nthreads());
                    pool.run_items(&mut views, |_, v| {
                        kernel(v.icell, v.dx, v.dy, v.vx, v.vy, v.vz, e8, coeffs);
                    });
                }
                None => {
                    kernel(
                        &arena.p.icell,
                        &arena.p.dx,
                        &arena.p.dy,
                        &mut arena.p.vx,
                        &mut arena.p.vy,
                        &mut arena.vz,
                        e8,
                        coeffs,
                    );
                }
            }
        }
    }

    /// Branchless position push with the single physical scale `Δt/Δx`
    /// (square cells enforced at validation). `vz` does not move particles
    /// in the 2d domain.
    fn push_positions(&mut self) {
        let scale = self.cfg.dt / self.grid.dx();
        let (ncx, ncy) = (self.grid.ncx, self.grid.ncy);
        let lanes = self.cfg.kernel_path == KernelPath::Lanes;
        for arena in &mut self.species {
            let p = &mut arena.p;
            if let Some(pool) = &self.pool {
                let mut views = split_species_mut(p, &mut arena.vz, pool.nthreads());
                macro_rules! pooled_layout {
                    ($l:expr) => {{
                        let l = $l;
                        pool.run_items(&mut views, |_, v| {
                            if lanes {
                                simd::update_positions_branchless_layout_lanes(
                                    v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, l, scale,
                                );
                            } else {
                                position::update_positions_branchless_layout(
                                    v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, l, scale,
                                );
                            }
                        });
                    }};
                }
                match &self.layout {
                    AnyLayout::RowMajor(_) => pool.run_items(&mut views, |_, v| {
                        if lanes {
                            simd::update_positions_branchless_lanes(
                                v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, ncx, ncy, scale,
                            );
                        } else {
                            position::update_positions_branchless(
                                v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, ncx, ncy, scale,
                            );
                        }
                    }),
                    AnyLayout::L4D(l) => pooled_layout!(l),
                    AnyLayout::Morton(l) => pooled_layout!(l),
                    AnyLayout::Hilbert(l) => pooled_layout!(l),
                }
                continue;
            }
            let crate::particles::ParticlesSoA {
                icell,
                ix,
                iy,
                dx,
                dy,
                vx,
                vy,
            } = p;
            macro_rules! push_layout {
                ($l:expr) => {{
                    let l = $l;
                    if lanes {
                        simd::update_positions_branchless_layout_lanes(
                            icell, ix, iy, dx, dy, vx, vy, l, scale,
                        );
                    } else {
                        position::update_positions_branchless_layout(
                            icell, ix, iy, dx, dy, vx, vy, l, scale,
                        );
                    }
                }};
            }
            match &self.layout {
                AnyLayout::RowMajor(_) => {
                    if lanes {
                        simd::update_positions_branchless_lanes(
                            icell, ix, iy, dx, dy, vx, vy, ncx, ncy, scale,
                        );
                    } else {
                        position::update_positions_branchless(
                            icell, ix, iy, dx, dy, vx, vy, ncx, ncy, scale,
                        );
                    }
                }
                AnyLayout::L4D(l) => push_layout!(l),
                AnyLayout::Morton(l) => push_layout!(l),
                AnyLayout::Hilbert(l) => push_layout!(l),
            }
        }
    }

    /// Initial ρ deposit: always the scalar `Exact` kernel (off the hot
    /// path) so every `DepositPath` starts from bit-identical state.
    fn deposit_rho_initial(&mut self) {
        self.rho4.clear();
        for si in 0..self.species.len() {
            let w = self.species[si].deposit_weight(&self.grid);
            let arena = &self.species[si];
            accumulate::accumulate_redundant(
                &arena.p.icell,
                &arena.p.dx,
                &arena.p.dy,
                &mut self.rho4.rho4,
                w,
            );
        }
        self.rho4
            .reduce_to_grid(self.layout.as_dyn(), &mut self.field.rho);
    }

    /// Per-step ρ deposit: clear once, accumulate every species' signed
    /// contribution through the configured kernel, reduce corners to grid.
    fn deposit_rho(&mut self) {
        self.rho4.clear();
        for si in 0..self.species.len() {
            let w = self.species[si].deposit_weight(&self.grid);
            match &self.pool {
                Some(pool) => {
                    let arena = &self.species[si];
                    accumulate::pool_accumulate_redundant(
                        pool,
                        &arena.p.icell,
                        &arena.p.dx,
                        &arena.p.dy,
                        &mut self.rho4,
                        &mut self.rho_arenas,
                        w,
                        self.cfg.deposit_path,
                        self.cfg.kernel_path,
                    );
                }
                None => {
                    let arena = &self.species[si];
                    crate::kernels::deposit::select_kernel(
                        self.cfg.deposit_path,
                        self.cfg.kernel_path,
                    )(
                        &arena.p.icell,
                        &arena.p.dx,
                        &arena.p.dy,
                        &mut self.rho4.rho4,
                        w,
                    )
                }
            }
        }
        self.rho4
            .reduce_to_grid(self.layout.as_dyn(), &mut self.field.rho);
    }

    /// Per-step **J** deposit, mirroring [`deposit_rho`](Self::deposit_rho)
    /// over the 12-double current rows.
    fn deposit_current(&mut self) {
        self.j12.clear();
        for si in 0..self.species.len() {
            let w = self.species[si].deposit_weight(&self.grid);
            match &self.pool {
                Some(pool) => {
                    let arena = &self.species[si];
                    current::pool_deposit_current(
                        pool,
                        &arena.p.icell,
                        &arena.p.dx,
                        &arena.p.dy,
                        &arena.p.vx,
                        &arena.p.vy,
                        &arena.vz,
                        &mut self.j12,
                        &mut self.j_arenas,
                        w,
                        self.cfg.deposit_path,
                        self.cfg.kernel_path,
                    );
                }
                None => {
                    let arena = &self.species[si];
                    current::select_current_kernel(self.cfg.deposit_path, self.cfg.kernel_path)(
                        &arena.p.icell,
                        &arena.p.dx,
                        &arena.p.dy,
                        &arena.p.vx,
                        &arena.p.vy,
                        &arena.vz,
                        &mut self.j12.j12,
                        w,
                    )
                }
            }
        }
        self.j12.reduce_to_grid(
            self.layout.as_dyn(),
            &mut self.jx,
            &mut self.jy,
            &mut self.jz,
        );
    }

    fn solve_field(&mut self) {
        match &self.pool {
            Some(pool) => self.solver.solve_e_pooled(
                &self.field.rho,
                &mut self.field.ex,
                &mut self.field.ey,
                &mut self.solve_scratch,
                pool.as_ref(),
            ),
            None => self.solver.solve_e_with(
                &self.field.rho,
                &mut self.field.ex,
                &mut self.field.ey,
                &mut self.solve_scratch,
            ),
        }
    }

    fn refresh_field_views(&mut self) {
        // Physical units: no pre-scaling of the stored field.
        self.e8
            .fill_from(&self.field, self.layout.as_dyn(), 1.0, 1.0);
    }

    fn record_diag(&mut self) {
        self.diag.history.push(DiagSample {
            time: self.step_count as f64 * self.cfg.dt,
            kinetic: self.kinetic_energy(),
            field: self.field_energy(),
            ex_mode: self.ex_mode_amplitude(1),
        });
    }

    // ---------------- checkpoint / restore ----------------

    /// Capture a self-contained checksummed snapshot (EM wire format,
    /// `b"PIC2DEMS"` magic — never confusable with legacy v1 snapshots).
    pub fn checkpoint(&self) -> Vec<u8> {
        let state = EmState {
            config_fingerprint: ckpt::em_config_fingerprint(&self.cfg),
            step_count: self.step_count as u64,
            rng_state: self.rng.state(),
            charge_ref: self.charge_ref,
            hot_path: ckpt::HotPathMeta {
                kernel_path: self.cfg.kernel_path,
                deposit_path: self.cfg.deposit_path,
                sort_period: self.cfg.sort_period as u64,
                controller: self
                    .controller
                    .as_ref()
                    .map(|c| c.encode_state())
                    .unwrap_or_default(),
            },
            species: self
                .species
                .iter()
                .map(|s| EmSpeciesState {
                    particles: s.p.clone(),
                    vz: s.vz.clone(),
                })
                .collect(),
            rho: self.field.rho.clone(),
            ex: self.field.ex.clone(),
            ey: self.field.ey.clone(),
            jx: self.jx.clone(),
            jy: self.jy.clone(),
            jz: self.jz.clone(),
            diag: self.diag.history.clone(),
        };
        ckpt::encode_em(&state)
    }

    /// Restore from a snapshot taken by [`checkpoint`](Self::checkpoint).
    /// Verifies checksum, version, config fingerprint (which covers the
    /// species table) and array shapes before touching any state; stepping
    /// on after a restore is bit-exact against the run that snapshotted.
    pub fn restore(&mut self, snapshot: &[u8]) -> Result<(), PicError> {
        let state = ckpt::decode_em(snapshot)?;
        let expect = ckpt::em_config_fingerprint(&self.cfg);
        if state.config_fingerprint != expect {
            return Err(PicError::Checkpoint(format!(
                "EM snapshot fingerprint {:#018x} does not match the config ({expect:#018x})",
                state.config_fingerprint
            )));
        }
        if state.species.len() != self.cfg.species.len() {
            return Err(PicError::Checkpoint(format!(
                "EM snapshot has {} species, config has {}",
                state.species.len(),
                self.cfg.species.len()
            )));
        }
        let ng = self.field.rho.len();
        for arr in [
            &state.rho, &state.ex, &state.ey, &state.jx, &state.jy, &state.jz,
        ] {
            if arr.len() != ng {
                return Err(PicError::Checkpoint(format!(
                    "EM snapshot grid length {} does not match the config ({ng})",
                    arr.len()
                )));
            }
        }
        // Resume the snapshot's controller decision state before adopting
        // anything (a bad blob must reject without touching live state).
        let restored_ctrl = match &self.controller {
            Some(c) if !state.hot_path.controller.is_empty() => {
                let mut nc = c.clone();
                nc.restore_state(&state.hot_path.controller)?;
                Some(nc)
            }
            Some(c) => Some(HotPathController::new(
                c.config().clone(),
                state.hot_path.kernel_path,
                state.hot_path.deposit_path,
            )),
            None => None,
        };
        // Adopt the hot-path metadata so the resumed run continues from
        // the controller's (or autotuner's) last decision.
        self.cfg.kernel_path = state.hot_path.kernel_path;
        self.cfg.deposit_path = state.hot_path.deposit_path;
        self.cfg.sort_period = state.hot_path.sort_period as usize;
        self.controller = restored_ctrl;
        self.species = state
            .species
            .into_iter()
            .zip(&self.cfg.species)
            .map(|(s, def)| SpeciesArena::from_parts(def.clone(), s.particles, s.vz, &self.grid))
            .collect();
        self.field.rho.copy_from_slice(&state.rho);
        self.field.ex.copy_from_slice(&state.ex);
        self.field.ey.copy_from_slice(&state.ey);
        self.jx.copy_from_slice(&state.jx);
        self.jy.copy_from_slice(&state.jy);
        self.jz.copy_from_slice(&state.jz);
        self.step_count = state.step_count as usize;
        self.rng = Rng::from_state(state.rng_state);
        self.charge_ref = state.charge_ref;
        self.diag = Diagnostics {
            history: state.diag,
        };
        self.refresh_field_views();
        Ok(())
    }

    // ---------------- invariants ----------------

    /// Scan run invariants: finite fields and particles, in-range cell
    /// coordinates, per-species conservation of marker counts' deposited
    /// charge against the initialization reference, and bounded total
    /// energy drift (when the field solve is on). `None` means healthy.
    pub fn scan_violation(&self, wcfg: &WatchdogConfig) -> Option<WatchdogViolation> {
        match self.check_invariants(wcfg) {
            Ok(()) => None,
            Err(detail) => Some(WatchdogViolation {
                step: self.step_count as u64,
                detail,
            }),
        }
    }

    fn check_invariants(&self, wcfg: &WatchdogConfig) -> Result<(), String> {
        for (name, arr) in [
            ("rho", &self.field.rho),
            ("ex", &self.field.ex),
            ("ey", &self.field.ey),
            ("jx", &self.jx),
            ("jy", &self.jy),
            ("jz", &self.jz),
        ] {
            if let Some(i) = arr.iter().position(|v| !v.is_finite()) {
                return Err(format!("non-finite {name} at grid index {i}"));
            }
        }
        let ncells = self.layout.as_dyn().ncells() as u32;
        for s in &self.species {
            for i in 0..s.len() {
                if s.p.icell[i] >= ncells {
                    return Err(format!(
                        "species '{}' particle {i} cell {} out of range",
                        s.def.name, s.p.icell[i]
                    ));
                }
                let (dx, dy) = (s.p.dx[i], s.p.dy[i]);
                if !(0.0..1.0).contains(&dx) || !(0.0..1.0).contains(&dy) {
                    return Err(format!(
                        "species '{}' particle {i} offsets ({dx}, {dy}) out of [0,1)",
                        s.def.name
                    ));
                }
                if !s.p.vx[i].is_finite() || !s.p.vy[i].is_finite() || !s.vz[i].is_finite() {
                    return Err(format!(
                        "species '{}' particle {i} has a non-finite velocity",
                        s.def.name
                    ));
                }
            }
        }
        // Charge conservation. A neutral plasma's reference is ~0, so the
        // tolerance is scaled by the total |deposited charge|, not |ref|.
        let scale: f64 = self
            .species
            .iter()
            .map(|s| (s.deposit_weight(&self.grid) * s.len() as f64).abs())
            .sum();
        let total = self.total_charge();
        let tol = wcfg.charge_rel_tol * scale.max(1.0);
        if (total - self.charge_ref).abs() > tol {
            return Err(format!(
                "total charge {total} drifted from reference {} (tol {tol})",
                self.charge_ref
            ));
        }
        if self.cfg.solve_e {
            let drift = self.diag.relative_energy_drift();
            if !drift.is_finite() || drift.abs() > wcfg.max_energy_drift {
                return Err(format!(
                    "relative energy drift {drift} exceeds {}",
                    wcfg.max_energy_drift
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(n: usize) -> EmConfig {
        let mut cfg = EmConfig::ion_acoustic(n);
        cfg.grid_nx = 16;
        cfg.grid_ny = 16;
        cfg.lx = 4.0 * std::f64::consts::PI;
        cfg.ly = 4.0 * std::f64::consts::PI;
        cfg
    }

    #[test]
    fn builds_and_steps_multi_species() {
        let mut sim = EmSimulation::new(tiny(500)).unwrap();
        sim.run(5);
        assert_eq!(sim.steps(), 5);
        assert_eq!(sim.species().len(), 2);
        assert_eq!(sim.diagnostics().history.len(), 6);
        assert!(sim.scan_violation(&WatchdogConfig::default()).is_none());
    }

    #[test]
    fn kernel_paths_bit_identical_on_exact_deposit() {
        let mut a = tiny(400);
        a.deposit_path = DepositPath::Exact;
        a.kernel_path = KernelPath::Scalar;
        let mut b = a.clone();
        b.kernel_path = KernelPath::Lanes;
        let mut sa = EmSimulation::new(a).unwrap();
        let mut sb = EmSimulation::new(b).unwrap();
        sa.run(10);
        sb.run(10);
        for (x, y) in sa.species().iter().zip(sb.species()) {
            assert_eq!(x.p.vx, y.p.vx);
            assert_eq!(x.p.vy, y.p.vy);
            assert_eq!(x.vz, y.vz);
            assert_eq!(x.p.icell, y.p.icell);
        }
        assert_eq!(sa.rho(), sb.rho());
        assert_eq!(sa.j_field().0, sb.j_field().0);
        assert_eq!(sa.j_field().2, sb.j_field().2);
    }

    #[test]
    fn checkpoint_roundtrip_is_bit_exact() {
        let mut sim = EmSimulation::new(tiny(300)).unwrap();
        sim.run(4);
        let snap = sim.checkpoint();
        let mut resumed = EmSimulation::from_snapshot(tiny(300), &snap).unwrap();
        sim.run(5);
        resumed.run(5);
        assert_eq!(sim.checkpoint(), resumed.checkpoint());
    }

    #[test]
    fn restore_rejects_wrong_species_table() {
        let sim = EmSimulation::new(tiny(300)).unwrap();
        let snap = sim.checkpoint();
        let mut other_cfg = tiny(300);
        other_cfg.species[1].mass = 50.0;
        match EmSimulation::from_snapshot(other_cfg, &snap) {
            Err(PicError::Checkpoint(_)) => {}
            Err(e) => panic!("expected a checkpoint error, got {e}"),
            Ok(_) => panic!("restore into a different species table must fail"),
        }
    }

    #[test]
    fn cyclotron_matches_analytic_gyro_period() {
        let cfg = EmConfig::cyclotron(64);
        let dt = cfg.dt;
        let mut sim = EmSimulation::new(cfg).unwrap();
        // Ω = |q|B/m = 1 ⇒ analytic gyro-period 2π. Accumulate the mean
        // velocity's rotation over many steps (the per-step angle, 0.05
        // rad, never wraps) and derive the simulated period from it.
        let steps = 126;
        let mut prev = sim.moments()[0].mean_v;
        let mut total_rotation = 0.0;
        for _ in 0..steps {
            sim.step();
            let cur = sim.moments()[0].mean_v;
            let da = cur[1].atan2(cur[0]) - prev[1].atan2(prev[0]);
            let da = (da + std::f64::consts::PI).rem_euclid(2.0 * std::f64::consts::PI)
                - std::f64::consts::PI;
            total_rotation += da;
            prev = cur;
        }
        let period = steps as f64 * dt * 2.0 * std::f64::consts::PI / total_rotation.abs();
        let analytic = 2.0 * std::f64::consts::PI;
        let rel = (period - analytic).abs() / analytic;
        // Boris period error is O((ΩΔt)²/12) ≈ 2·10⁻⁴ ≪ the 1 % gate.
        assert!(rel < 0.01, "gyro-period {period} vs analytic {analytic}");
        // Speed is exactly conserved by the rotation (E = 0).
        let m1 = sim.moments()[0];
        let s1 = (m1.mean_v[0].powi(2) + m1.mean_v[1].powi(2)).sqrt();
        assert!((s1 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn legacy_snapshot_restores_into_one_species_world() {
        let cfg = {
            let mut c = crate::sim::PicConfig::landau_table1(400);
            c.grid_nx = 16;
            c.grid_ny = 16;
            c
        };
        let mut legacy = crate::sim::Simulation::new(cfg.clone()).unwrap();
        legacy.run(3);
        let snap = legacy.checkpoint();
        let em = EmSimulation::from_legacy_snapshot(&cfg, &snap).unwrap();
        assert_eq!(em.species().len(), 1);
        assert_eq!(em.species()[0].len(), 400);
        assert_eq!(em.steps(), 3);
        assert!(em.species()[0].vz.iter().all(|&v| v == 0.0));
        // Hoisted velocities were converted back to physical units.
        let vx_phys = legacy.particles().vx[0] * em.grid().dx() / cfg.dt;
        assert!((em.species()[0].p.vx[0] - vx_phys).abs() < 1e-15 * vx_phys.abs().max(1.0));
    }

    #[test]
    fn replicated_ranks_reduce_to_the_full_run() {
        let mut cfg = tiny(240);
        cfg.sort_period = 3;
        let mut full = EmSimulation::new(cfg.clone()).unwrap();

        // The initial allreduce: every rank's sampled partial ρ is known
        // deterministically, so precompute the global sum from throwaway
        // shells and hand each real rank the reduced copy at init.
        let nranks = 3;
        let rank_cfg = |r: usize| {
            let mut c = cfg.clone();
            c.replica = Some((r, nranks));
            c
        };
        let mut rho0: Vec<f64> = Vec::new();
        for r in 0..nranks {
            let partial = EmSimulation::new(rank_cfg(r)).unwrap().rho().to_vec();
            if rho0.is_empty() {
                rho0 = partial;
            } else {
                for (a, b) in rho0.iter_mut().zip(&partial) {
                    *a += *b;
                }
            }
        }
        let mut ranks: Vec<EmSimulation> = (0..nranks)
            .map(|r| {
                EmSimulation::new_with_reduce(rank_cfg(r), |arr| arr.copy_from_slice(&rho0))
                    .unwrap()
            })
            .collect();
        let total: usize = ranks.iter().map(|r| r.species()[0].len()).sum();
        assert_eq!(total, full.species()[0].len());

        for _ in 0..4 {
            full.step();
            // Allreduce over the step halves: every rank deposits its
            // partials, the sums are written back, every rank solves.
            for r in &mut ranks {
                r.step_pre_reduce();
            }
            let ng = rho0.len();
            let mut sums = vec![vec![0.0; ng]; 4];
            for r in &mut ranks {
                for (s, arr) in sums[0].iter_mut().zip(r.rho()) {
                    *s += *arr;
                }
                let (jx, jy, jz) = r.j_field();
                for (s, arr) in sums[1].iter_mut().zip(jx) {
                    *s += *arr;
                }
                for (s, arr) in sums[2].iter_mut().zip(jy) {
                    *s += *arr;
                }
                for (s, arr) in sums[3].iter_mut().zip(jz) {
                    *s += *arr;
                }
            }
            for r in &mut ranks {
                r.rho_mut().copy_from_slice(&sums[0]);
                let (jx, jy, jz) = r.j_mut();
                jx.copy_from_slice(&sums[1]);
                jy.copy_from_slice(&sums[2]);
                jz.copy_from_slice(&sums[3]);
                r.step_post_reduce();
            }
        }
        // Every rank now carries the reduced global ρ; it must match the
        // full run's within reassociation noise (the rank partial sums
        // accumulate in a different order than the one-array deposit).
        for r in &ranks {
            for (a, b) in r.rho().iter().zip(full.rho()) {
                assert!((a - b).abs() < 1e-9 * b.abs().max(1.0));
            }
        }
    }

    #[test]
    fn config_validation_rejects_bad_inputs() {
        let mut cfg = tiny(100);
        cfg.species.clear();
        assert!(EmSimulation::new(cfg).is_err());
        let mut cfg = tiny(100);
        cfg.ly *= 2.0; // non-square cells
        assert!(EmSimulation::new(cfg).is_err());
        let mut cfg = tiny(100);
        cfg.replica = Some((3, 3));
        assert!(EmSimulation::new(cfg).is_err());
    }
}
