//! The full PIC simulation loop with every paper knob exposed.
//!
//! [`PicConfig`] selects the data structures and loop shapes; [`Simulation`]
//! runs the leap-frog Vlasov–Poisson loop of the paper's Fig. 1 and records
//! per-phase wall-clock times ([`PhaseTimes`]) and physics diagnostics
//! ([`Diagnostics`]) — everything the table/figure harnesses need.
//!
//! ## Units
//!
//! Normalized plasma units: ε₀ = 1, electron charge `q = −1`, mass `m = 1`,
//! thermal speed 1. With the *hoisted* convention (§IV-D, default) particle
//! velocities are stored in grid cells per time step and the redundant field
//! carries the kick coefficients, so the inner loops are multiply-free; the
//! unhoisted baseline stores physical velocities and multiplies inside the
//! loops (and requires square cells, `Δx = Δy`, as all the paper's test
//! cases have).

use crate::control::{self, ControllerConfig, HotPathController, SwitchEvent};
use crate::fields::{Field2D, RedundantE, RedundantRho};
use crate::grid::Grid2D;
use crate::kernels::{self, accumulate, aos, deposit, fused, position, simd, velocity, SoaViewMut};
use crate::particles::{self, InitialDistribution, ParticlesAoS, ParticlesSoA};
use crate::pool::{ThreadPool, MAX_THREADS};
use crate::resilience::checkpoint::{self as ckpt};
use crate::rng::Rng;
use crate::sort;
use crate::PicError;
use sfc::{CellLayout, Hilbert, Morton, Ordering, RowMajor, L4D};
use spectral::poisson::{PoissonSolver2D, SolveScratch};
use std::sync::Arc;
use std::time::Instant;

/// Electron charge in normalized units.
pub const QE: f64 = -1.0;
/// Electron mass in normalized units.
pub const ME: f64 = 1.0;

/// Particle storage layout (§IV-C1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParticleLayout {
    /// Array of Structures — the baseline.
    Aos,
    /// Structure of Arrays — the vectorizable layout.
    Soa,
}

/// Grid-quantity storage layout (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FieldLayout {
    /// Standard 2-D grid-point arrays.
    Standard,
    /// Redundant cell-based arrays (4× memory, contiguous per-particle).
    Redundant,
}

/// Particle-loop structure (§IV-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoopStructure {
    /// One fused loop doing kick + push + deposit.
    Fused,
    /// Three split loops.
    Split,
}

/// Instruction shape of the optimized inner kernels.
///
/// Both paths compute the same per-particle expressions in the same order,
/// so their results are bit-identical; they differ only in how the loops
/// are presented to the compiler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPath {
    /// Plain per-particle scalar loops.
    Scalar,
    /// Explicit lane-blocked loops ([`crate::kernels::simd`]): fixed-width
    /// blocks of 8 particles through array-of-lanes temporaries, which
    /// removes the bounds checks that keep the scalar loops from
    /// autovectorizing.
    Lanes,
}

pub use crate::kernels::deposit::DepositPath;

/// Shape of the update-positions loop (§IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PositionUpdate {
    /// `if` + real modulo + `floor()` call.
    NaiveIf,
    /// Unconditional integer modulo.
    ModuloInt,
    /// Branchless int-cast floor + bitwise AND wrap.
    Branchless,
}

/// A concrete layout instance for static-dispatch kernels.
#[derive(Debug, Clone)]
pub enum AnyLayout {
    /// Row-major (scan) order.
    RowMajor(RowMajor),
    /// L4D tiling.
    L4D(L4D),
    /// Morton / Z order.
    Morton(Morton),
    /// Hilbert order.
    Hilbert(Hilbert),
}

impl AnyLayout {
    /// Build from the `sfc` ordering enum.
    pub fn build(ord: Ordering, ncx: usize, ncy: usize) -> Result<Self, PicError> {
        Ok(match ord {
            Ordering::RowMajor | Ordering::ColMajor => {
                AnyLayout::RowMajor(RowMajor::new(ncx, ncy)?)
            }
            Ordering::L4D(size) => AnyLayout::L4D(L4D::new(ncx, ncy, size)?),
            Ordering::Morton => AnyLayout::Morton(Morton::new(ncx, ncy)?),
            Ordering::Hilbert => AnyLayout::Hilbert(Hilbert::new(ncx, ncy)?),
        })
    }

    /// Dynamic view for the O(ncells) administrative loops.
    pub fn as_dyn(&self) -> &dyn CellLayout {
        match self {
            AnyLayout::RowMajor(l) => l,
            AnyLayout::L4D(l) => l,
            AnyLayout::Morton(l) => l,
            AnyLayout::Hilbert(l) => l,
        }
    }

    /// True when the layout is plain row-major (enables the cheaper
    /// position-update path that re-derives `icell` arithmetically).
    pub fn is_row_major(&self) -> bool {
        matches!(self, AnyLayout::RowMajor(_))
    }
}

/// Cumulative wall-clock seconds per phase — the rows of Tables III–V.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Update-velocities loop.
    pub update_v: f64,
    /// Update-positions loop.
    pub update_x: f64,
    /// Charge-accumulation loop (including the fused loop when unsplit).
    pub accumulate: f64,
    /// Particle sorting.
    pub sort: f64,
    /// Redundant→grid ρ reduction + redundant E refill.
    pub convert: f64,
    /// Poisson solve.
    pub solve: f64,
}

impl PhaseTimes {
    /// Total accounted time.
    pub fn total(&self) -> f64 {
        self.update_v + self.update_x + self.accumulate + self.sort + self.convert + self.solve
    }

    /// The paper's “push” aggregate (update-velocities + update-positions,
    /// Table V terminology).
    pub fn push(&self) -> f64 {
        self.update_v + self.update_x
    }
}

/// One recorded diagnostic sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiagSample {
    /// Simulation time.
    pub time: f64,
    /// Kinetic energy (physical units).
    pub kinetic: f64,
    /// Electrostatic field energy `½∫|E|²`.
    pub field: f64,
    /// Amplitude of the fundamental `E_x` Fourier mode along x — the
    /// quantity whose exponential envelope gives the Landau damping /
    /// two-stream growth rate, free of the particle-noise floor that sits
    /// in the total field energy.
    pub ex_mode: f64,
}

impl DiagSample {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.kinetic + self.field
    }
}

/// Physics diagnostics over the run.
#[derive(Debug, Clone, Default)]
pub struct Diagnostics {
    /// One sample per step (plus the initial state).
    pub history: Vec<DiagSample>,
}

impl Diagnostics {
    /// `max |E_total(t) − E_total(0)| / E_total(0)` over the run.
    pub fn relative_energy_drift(&self) -> f64 {
        let e0 = match self.history.first() {
            Some(s) => s.total(),
            None => return 0.0,
        };
        self.history
            .iter()
            .map(|s| (s.total() - e0).abs() / e0.abs().max(1e-300))
            .fold(0.0, f64::max)
    }

    /// Fit the exponential damping/growth rate γ of the field energy:
    /// least-squares slope of `ln W_E(t)` over the samples in
    /// `[t0, t1]`, divided by 2 (since `W_E ∝ e^{2γt}` for `E ∝ e^{γt}`).
    /// Returns `None` with fewer than 3 usable samples.
    pub fn field_energy_rate(&self, t0: f64, t1: f64) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .history
            .iter()
            .filter(|s| s.time >= t0 && s.time <= t1 && s.field > 0.0)
            .map(|s| (s.time, s.field.ln()))
            .collect();
        linear_fit(&pts).map(|slope| 0.5 * slope)
    }

    /// Local maxima of the `|E_x|` fundamental-mode amplitude in `[t0, t1]`
    /// — the oscillation peaks whose envelope decays at the Landau rate.
    pub fn mode_peaks(&self, t0: f64, t1: f64) -> Vec<(f64, f64)> {
        let h: Vec<&DiagSample> = self
            .history
            .iter()
            .filter(|s| s.time >= t0 && s.time <= t1)
            .collect();
        let mut peaks = Vec::new();
        for w in h.windows(3) {
            if w[1].ex_mode > w[0].ex_mode && w[1].ex_mode >= w[2].ex_mode && w[1].ex_mode > 0.0 {
                peaks.push((w[1].time, w[1].ex_mode));
            }
        }
        peaks
    }

    /// γ from the envelope of the fundamental-mode oscillation peaks —
    /// the standard Landau-damping measurement (the mode oscillates at the
    /// Langmuir frequency; only its peak envelope decays exponentially).
    /// Returns `None` with fewer than 2 peaks in the window.
    pub fn mode_envelope_rate(&self, t0: f64, t1: f64) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .mode_peaks(t0, t1)
            .into_iter()
            .map(|(t, a)| (t, a.ln()))
            .collect();
        if pts.len() < 2 {
            return None;
        }
        linear_fit(&pts)
    }

    /// γ from a direct least-squares fit of `ln |E_x mode|` over *all*
    /// samples in `[t0, t1]` — the right estimator for purely growing
    /// modes (two-stream: the unstable root has Re ω ≈ 0, so the amplitude
    /// rises monotonically and has no oscillation peaks to envelope-fit).
    pub fn mode_amplitude_rate(&self, t0: f64, t1: f64) -> Option<f64> {
        let pts: Vec<(f64, f64)> = self
            .history
            .iter()
            .filter(|s| s.time >= t0 && s.time <= t1 && s.ex_mode > 0.0)
            .map(|s| (s.time, s.ex_mode.ln()))
            .collect();
        if pts.len() < 3 {
            return None;
        }
        linear_fit(&pts)
    }
}

/// Least-squares slope of `y(x)`; `None` when degenerate.
fn linear_fit(pts: &[(f64, f64)]) -> Option<f64> {
    if pts.len() < 2 {
        return None;
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-30 {
        return None;
    }
    Some((n * sxy - sx * sy) / denom)
}

/// Full configuration of one PIC run.
#[derive(Debug, Clone)]
pub struct PicConfig {
    /// Cells along x (power of two).
    pub grid_nx: usize,
    /// Cells along y (power of two).
    pub grid_ny: usize,
    /// Domain length along x.
    pub lx: f64,
    /// Domain length along y.
    pub ly: f64,
    /// Number of macro-particles.
    pub n_particles: usize,
    /// Time step.
    pub dt: f64,
    /// Initial phase-space distribution.
    pub distribution: InitialDistribution,
    /// Cell ordering for the redundant structures.
    pub ordering: Ordering,
    /// Particle storage layout.
    pub particle_layout: ParticleLayout,
    /// Grid-quantity storage layout.
    pub field_layout: FieldLayout,
    /// Loop structure.
    pub loop_structure: LoopStructure,
    /// Update-positions shape.
    pub position_update: PositionUpdate,
    /// Scalar vs explicit lane-blocked inner kernels (split-redundant SoA
    /// path; other paths always run scalar).
    pub kernel_path: KernelPath,
    /// Which deposition kernel the split-redundant paths (SoA and AoS) run.
    /// `Exact` preserves the scalar accumulation order bit-for-bit; the
    /// reassociated paths ([`DepositPath::LaneReduce`],
    /// [`DepositPath::SortedBlock`]) stay within the per-cell FP bound of
    /// `crates/core/src/kernels/deposit.rs`. Standard-field and fused paths
    /// deposit inline and ignore this knob; the initial deposit at
    /// construction always runs `Exact` so every path starts from identical
    /// state.
    pub deposit_path: DepositPath,
    /// Coefficient hoisting (§IV-D).
    pub hoisted: bool,
    /// Sort every `sort_period` steps (0 = never).
    pub sort_period: usize,
    /// Use the out-of-place sort (paper default) or in-place.
    pub sort_out_of_place: bool,
    /// Workers in the simulation's persistent thread pool (1 = sequential,
    /// no pool).
    pub threads: usize,
    /// RNG seed.
    pub seed: u64,
    /// Process-parallel slice: sample all `n_particles` (deterministically in
    /// `seed`) but keep only indices `[start, end)` — the paper's §V-A
    /// scheme where every rank owns a fixed subset of one global particle
    /// population and the per-step allreduce of ρ (via
    /// [`Simulation::step_with_reduce`]) restores the global density.
    /// `None` keeps everything.
    pub keep_range: Option<(usize, usize)>,
    /// Spatial slice: sample all `n_particles` (deterministically in `seed`)
    /// but keep only those whose initial cell index falls in `[lo, hi)` —
    /// the domain-decomposed counterpart of `keep_range`, where a rank owns
    /// a contiguous range of the SFC cell ordering instead of a fixed index
    /// slice of the particle population. `None` keeps everything.
    pub keep_cells: Option<(u32, u32)>,
    /// Online adaptive hot-path control ([`crate::control`]). `Some`
    /// attaches a [`HotPathController`] that drives the sort schedule from
    /// the observed particle disorder and retunes
    /// `kernel_path`/`deposit_path` at sort boundaries; `None` keeps the
    /// fixed `sort_period` cadence and the configured paths. The profile
    /// is part of the checkpoint fingerprint (it shapes the trajectory);
    /// the knobs it moves travel as snapshot metadata.
    pub controller: Option<crate::control::ControllerConfig>,
}

impl PicConfig {
    /// The paper's Table I test case — linear Landau damping on a 128×128
    /// grid — scaled to `n_particles` markers (the paper uses 50 million).
    /// Fully optimized settings (the ladder's last rung).
    pub fn landau_table1(n_particles: usize) -> Self {
        let k = 0.5;
        let l = 2.0 * std::f64::consts::PI / k; // 4π
        Self {
            grid_nx: 128,
            grid_ny: 128,
            lx: l,
            ly: l,
            n_particles,
            dt: 0.05,
            distribution: InitialDistribution::Landau { alpha: 0.01, k },
            ordering: Ordering::Morton,
            particle_layout: ParticleLayout::Soa,
            field_layout: FieldLayout::Redundant,
            loop_structure: LoopStructure::Split,
            position_update: PositionUpdate::Branchless,
            kernel_path: KernelPath::Lanes,
            deposit_path: DepositPath::LaneReduce,
            hoisted: true,
            sort_period: 20,
            sort_out_of_place: true,
            threads: 1,
            seed: 0xB1C0DE,
            keep_range: None,
            keep_cells: None,
            controller: None,
        }
    }

    /// Nonlinear Landau damping (α = 0.5).
    pub fn landau_nonlinear(n_particles: usize) -> Self {
        let mut cfg = Self::landau_table1(n_particles);
        cfg.distribution = InitialDistribution::Landau { alpha: 0.5, k: 0.5 };
        cfg
    }

    /// Two-stream instability test case.
    pub fn two_stream(n_particles: usize) -> Self {
        let k = 0.2;
        let l = 2.0 * std::f64::consts::PI / k;
        let mut cfg = Self::landau_table1(n_particles);
        cfg.lx = l;
        cfg.ly = l;
        cfg.distribution = InitialDistribution::TwoStream {
            alpha: 0.01,
            k,
            v0: 3.0,
            vt: 0.3,
        };
        cfg
    }

    /// The Table IV *baseline*: AoS, standard 2-D structures, one fused
    /// loop, naive-if positions, no hoisting.
    pub fn baseline(n_particles: usize) -> Self {
        let mut cfg = Self::landau_table1(n_particles);
        cfg.ordering = Ordering::RowMajor;
        cfg.particle_layout = ParticleLayout::Aos;
        cfg.field_layout = FieldLayout::Standard;
        cfg.loop_structure = LoopStructure::Fused;
        cfg.position_update = PositionUpdate::NaiveIf;
        cfg.kernel_path = KernelPath::Scalar;
        cfg.deposit_path = DepositPath::Exact;
        cfg.hoisted = false;
        cfg
    }

    fn validate(&self) -> Result<(), PicError> {
        if self.n_particles == 0 {
            return Err(PicError::Config("need at least one particle".into()));
        }
        if self.dt.is_nan() || self.dt <= 0.0 {
            return Err(PicError::Config(format!(
                "dt must be positive, got {}",
                self.dt
            )));
        }
        if self.field_layout == FieldLayout::Standard
            && !matches!(self.ordering, Ordering::RowMajor)
        {
            return Err(PicError::Config(
                "the standard field layout only supports row-major ordering".into(),
            ));
        }
        if self.loop_structure == LoopStructure::Fused
            && self.field_layout == FieldLayout::Redundant
            && !matches!(self.ordering, Ordering::RowMajor)
        {
            return Err(PicError::Config(
                "the fused redundant loop is implemented for row-major ordering only".into(),
            ));
        }
        Ok(())
    }
}

/// A running PIC simulation.
pub struct Simulation {
    cfg: PicConfig,
    grid: Grid2D,
    layout: AnyLayout,
    solver: PoissonSolver2D,
    /// SoA store — the primary representation.
    particles: ParticlesSoA,
    /// AoS mirror, maintained only when `cfg.particle_layout == Aos`.
    particles_aos: Option<ParticlesAoS>,
    scratch: ParticlesSoA,
    field: Field2D,
    e8: RedundantE,
    rho4: RedundantRho,
    /// Macro-particle weight times |q| (deposition magnitude).
    wq: f64,
    /// Macro-particle weight (number density per marker).
    weight: f64,
    step_count: usize,
    timers: PhaseTimes,
    diag: Diagnostics,
    /// The sampling RNG, retained past initialization so its stream
    /// position can be checkpointed and restored.
    rng: Rng,
    /// Total deposited charge right after initialization (post-reduce) —
    /// the conservation reference for the watchdog.
    charge_ref: f64,
    /// Persistent worker pool for the particle loops (`threads > 1` only);
    /// workers park between steps, so fork-join costs no thread spawns.
    /// Shared (`Arc`) so a multi-tenant runtime can run many simulations
    /// over one pool ([`new_shared`](Self::new_shared)); determinism depends
    /// only on the pool width, never on which jobs share it.
    pool: Option<Arc<ThreadPool>>,
    /// Per-worker private ρ₄ copies for the pooled deposition reduction,
    /// reused every step (zero steady-state allocation).
    rho_arenas: Vec<RedundantRho>,
    /// Reusable counting-sort buffers (histogram, prefix sums, cursors).
    sort_arena: sort::SortArena,
    /// Reusable spectral workspaces for the per-step Poisson solve.
    solve_scratch: SolveScratch,
    /// Online adaptive controller (present when `cfg.controller` is set):
    /// drives the sort schedule from observed disorder and retunes the
    /// kernel/deposit paths at sort boundaries.
    controller: Option<HotPathController>,
}

impl Simulation {
    /// Build and initialize a simulation: sample particles, deposit ρ, solve
    /// the initial field, and shift velocities back half a step (leap-frog).
    pub fn new(cfg: PicConfig) -> Result<Self, PicError> {
        Self::new_with_reduce(cfg, |_| {})
    }

    /// Like [`new`](Self::new), but calls `reduce` on the initial deposited
    /// ρ before the first Poisson solve — required in distributed runs (the
    /// ranks' partial densities must be summed before the initial field and
    /// the leap-frog half-kick are computed, exactly as at every later step).
    pub fn new_with_reduce(
        cfg: PicConfig,
        reduce: impl FnOnce(&mut [f64]),
    ) -> Result<Self, PicError> {
        Self::init(Self::shell(cfg, None)?, reduce)
    }

    /// Like [`new`](Self::new), but runs the particle loops over a worker
    /// pool shared with other simulations instead of building a private one.
    /// Trajectories depend only on the pool *width* (the deterministic
    /// i-mod-n striping), never on which tenants share the pool, so a run
    /// over a shared width-`n` pool is bit-identical to a private
    /// `threads = n` run.
    pub fn new_shared(cfg: PicConfig, pool: Arc<ThreadPool>) -> Result<Self, PicError> {
        Self::init(Self::shell(cfg, Some(pool))?, |_| {})
    }

    /// Rebuild a simulation directly from a checkpoint snapshot, without
    /// sampling and initializing a throwaway particle population first.
    /// The snapshot must carry `cfg`'s fingerprint
    /// ([`restore`](Self::restore) verifies checksum, version, fingerprint,
    /// and array shapes before touching anything); derived structures are
    /// rebuilt from the restored state, and stepping on is bit-exact
    /// against the run that took the snapshot.
    pub fn from_snapshot(cfg: PicConfig, snapshot: &[u8]) -> Result<Self, PicError> {
        let mut sim = Self::shell(cfg, None)?;
        sim.restore(snapshot)?;
        Ok(sim)
    }

    /// [`from_snapshot`](Self::from_snapshot) over a shared pool — the
    /// resume path of a multi-tenant job runtime re-admitting a preempted
    /// job.
    pub fn from_snapshot_shared(
        cfg: PicConfig,
        snapshot: &[u8],
        pool: Arc<ThreadPool>,
    ) -> Result<Self, PicError> {
        let mut sim = Self::shell(cfg, Some(pool))?;
        sim.restore(snapshot)?;
        Ok(sim)
    }

    /// Validate `cfg` and build the simulation chassis — grid, layout,
    /// solver, field arrays, executor, scratch — with an empty particle
    /// store. The caller either initializes a fresh population
    /// ([`init`](Self::init)) or restores a snapshot into it.
    fn shell(cfg: PicConfig, shared: Option<Arc<ThreadPool>>) -> Result<Self, PicError> {
        cfg.validate()?;
        let grid = Grid2D::new(cfg.grid_nx, cfg.grid_ny, cfg.lx, cfg.ly)?;
        if !cfg.hoisted && (grid.dx() - grid.dy()).abs() > 1e-12 * grid.dx() {
            return Err(PicError::Config(
                "the unhoisted baseline requires square cells (Δx = Δy)".into(),
            ));
        }
        let layout = AnyLayout::build(cfg.ordering, cfg.grid_nx, cfg.grid_ny)?;
        let solver = PoissonSolver2D::new(cfg.grid_nx, cfg.grid_ny, cfg.lx, cfg.ly)?;
        let weight = particles::particle_weight(&grid, cfg.n_particles);
        let field = Field2D::new(&grid);
        let e8 = RedundantE::new(layout.as_dyn());
        let rho4 = RedundantRho::new(layout.as_dyn());

        // The persistent executor: a shared pool if one was handed in, else
        // a private pool for the whole simulation lifetime (`threads > 1`),
        // plus the per-worker deposition arenas it reduces over (sized by
        // the executing pool's width, not `cfg.threads`).
        let pool = match shared {
            Some(p) => Some(p),
            None => (cfg.threads > 1).then(|| Arc::new(ThreadPool::new(cfg.threads))),
        };
        let rho_arenas = match (&pool, cfg.field_layout) {
            (Some(p), FieldLayout::Redundant) => (0..p.nthreads())
                .map(|_| RedundantRho::new(layout.as_dyn()))
                .collect(),
            _ => Vec::new(),
        };

        let controller = cfg
            .controller
            .clone()
            .map(|cc| HotPathController::new(cc, cfg.kernel_path, cfg.deposit_path));

        Ok(Self {
            // Deposition magnitude: macro-charge per unit area, so that the
            // accumulated grid values are a charge *density* (the CIC
            // weights sum to 1 per particle, and each grid point represents
            // a Δx·Δy patch).
            wq: weight * QE.abs() / (grid.dx() * grid.dy()),
            weight,
            grid,
            layout,
            solver,
            particles: ParticlesSoA::zeroed(0),
            particles_aos: None,
            scratch: ParticlesSoA::zeroed(0),
            field,
            e8,
            rho4,
            step_count: 0,
            timers: PhaseTimes::default(),
            diag: Diagnostics::default(),
            rng: Rng::seed_from_u64(cfg.seed),
            charge_ref: 0.0,
            pool,
            rho_arenas,
            sort_arena: sort::SortArena::new(),
            solve_scratch: SolveScratch::new(),
            controller,
            cfg,
        })
    }

    /// Initialize a [`shell`](Self::shell): sample the particle population,
    /// apply the `keep_range`/`keep_cells` filters, sort, deposit, solve the
    /// initial field, and take the leap-frog half-step back.
    fn init(mut sim: Self, reduce: impl FnOnce(&mut [f64])) -> Result<Self, PicError> {
        let mut particles = particles::initialize_with_rng(
            &sim.grid,
            sim.layout.as_dyn(),
            sim.cfg.distribution,
            sim.cfg.n_particles,
            &mut sim.rng,
        );
        if let Some((start, end)) = sim.cfg.keep_range {
            if start >= end || end > sim.cfg.n_particles {
                return Err(PicError::Config(format!(
                    "keep_range {start}..{end} out of bounds for {} particles",
                    sim.cfg.n_particles
                )));
            }
            let take = |v: &mut Vec<u32>| *v = v[start..end].to_vec();
            let takef = |v: &mut Vec<f64>| *v = v[start..end].to_vec();
            take(&mut particles.icell);
            take(&mut particles.ix);
            take(&mut particles.iy);
            takef(&mut particles.dx);
            takef(&mut particles.dy);
            takef(&mut particles.vx);
            takef(&mut particles.vy);
        }
        if let Some((lo, hi)) = sim.cfg.keep_cells {
            let ncells = sim.layout.as_dyn().ncells();
            if lo >= hi || hi as usize > ncells {
                return Err(PicError::Config(format!(
                    "keep_cells {lo}..{hi} out of bounds for {ncells} cells"
                )));
            }
            let mask: Vec<bool> = particles.icell.iter().map(|&c| lo <= c && c < hi).collect();
            fn retain_mask<T: Copy>(v: &mut Vec<T>, mask: &[bool]) {
                let mut i = 0;
                v.retain(|_| {
                    let keep = mask[i];
                    i += 1;
                    keep
                });
            }
            retain_mask(&mut particles.icell, &mask);
            retain_mask(&mut particles.ix, &mask);
            retain_mask(&mut particles.iy, &mask);
            retain_mask(&mut particles.dx, &mask);
            retain_mask(&mut particles.dy, &mask);
            retain_mask(&mut particles.vx, &mask);
            retain_mask(&mut particles.vy, &mask);
            if particles.is_empty() {
                return Err(PicError::Config(format!(
                    "keep_cells {lo}..{hi} holds no particles — subdomain too small"
                )));
            }
        }

        // Initial sort (paper's initialization line 1).
        let ncells = sim.layout.as_dyn().ncells();
        sort::sort_out_of_place(&mut particles, &mut sim.scratch, ncells);
        sim.particles = particles;

        // Initial deposit + solve (line 2), with the cross-rank reduction in
        // distributed runs.
        sim.deposit_initial();
        reduce(&mut sim.field.rho);
        sim.charge_ref = sim.field.rho.iter().sum();
        sim.solve_field();

        // Leap-frog half-step: v(−Δt/2) = v(0) − (q/m)·E(x₀)·Δt/2.
        sim.half_kick_back();

        // Velocity normalization for the hoisted convention.
        if sim.cfg.hoisted {
            let (sx, sy) = (sim.cfg.dt / sim.grid.dx(), sim.cfg.dt / sim.grid.dy());
            for v in sim.particles.vx.iter_mut() {
                *v *= sx;
            }
            for v in sim.particles.vy.iter_mut() {
                *v *= sy;
            }
        }
        sim.refresh_field_views();
        if sim.cfg.particle_layout == ParticleLayout::Aos {
            sim.particles_aos = Some(sim.particles.to_aos());
        }
        sim.record_diag();
        Ok(sim)
    }

    /// The configuration this simulation runs.
    pub fn config(&self) -> &PicConfig {
        &self.cfg
    }

    /// The grid geometry.
    pub fn grid(&self) -> &Grid2D {
        &self.grid
    }

    /// Steps taken so far.
    pub fn steps(&self) -> usize {
        self.step_count
    }

    /// Per-phase cumulative timings.
    pub fn timers(&self) -> PhaseTimes {
        self.timers
    }

    /// Zero the phase timers (for warmup-discarding harnesses).
    pub fn reset_timers(&mut self) {
        self.timers = PhaseTimes::default();
    }

    /// Physics diagnostics.
    pub fn diagnostics(&self) -> &Diagnostics {
        &self.diag
    }

    /// Read-only particle view (SoA). For AoS-layout runs the AoS array is
    /// canonical between sorts; call [`sync_particles`](Self::sync_particles)
    /// first when reading mid-run.
    pub fn particles(&self) -> &ParticlesSoA {
        &self.particles
    }

    /// Charge density on grid points (row-major), as of the last step.
    pub fn rho(&self) -> &[f64] {
        &self.field.rho
    }

    /// Electric field on grid points (row-major).
    pub fn e_field(&self) -> (&[f64], &[f64]) {
        (&self.field.ex, &self.field.ey)
    }

    /// Mutable electric field on grid points (row-major) — for drivers that
    /// obtain E externally (a decomposed run receives its subdomain's field
    /// from the solving rank) and then finish the step with
    /// [`step_post_external_solve`](Self::step_post_external_solve).
    pub fn e_field_mut(&mut self) -> (&mut [f64], &mut [f64]) {
        (&mut self.field.ex, &mut self.field.ey)
    }

    /// Mutable particle store (SoA). Drivers that migrate particles between
    /// ranks edit the arrays directly; only meaningful for SoA-layout runs
    /// (AoS runs keep a separate canonical mirror between sorts).
    pub fn particles_mut(&mut self) -> &mut ParticlesSoA {
        &mut self.particles
    }

    /// `(ρ, Ex, Ey)` in one borrow — for external-solver drivers that read
    /// the reduced density and write field values in a single pass (the
    /// slab-distributed solve consumes owned-point ρ while depositing
    /// solved E at this rank's interpolation points).
    pub fn field_mut(&mut self) -> (&mut [f64], &mut [f64], &mut [f64]) {
        (&mut self.field.rho, &mut self.field.ex, &mut self.field.ey)
    }

    /// The active cell layout (dynamic view).
    pub fn cell_layout(&self) -> &dyn CellLayout {
        self.layout.as_dyn()
    }

    /// Current total deposited charge, `Σ ρ` over grid points.
    pub fn total_charge(&self) -> f64 {
        self.field.rho.iter().sum()
    }

    /// Total-charge reference captured at initialization (post-reduce).
    pub fn charge_reference(&self) -> f64 {
        self.charge_ref
    }

    /// Re-declare the spatial slice this simulation owns
    /// ([`PicConfig::keep_cells`]), without touching live state.
    ///
    /// `keep_cells` only filters the *initial* population; afterwards it
    /// identifies the subdomain in the checkpoint fingerprint, so snapshots
    /// can never restore into a simulation owning different cells. A live
    /// re-partition legitimately changes the owned range: the driver
    /// migrates the particles itself, then calls this so the fingerprint
    /// follows the new cut — adopting a snapshot taken under a given range
    /// likewise requires declaring that range first. `None` declares full
    /// ownership (the replicated fallback at one rank).
    pub fn set_keep_cells(&mut self, range: Option<(u32, u32)>) -> Result<(), PicError> {
        if let Some((lo, hi)) = range {
            let ncells = self.layout.as_dyn().ncells() as u32;
            if lo >= hi || hi > ncells {
                return Err(PicError::Config(format!(
                    "keep_cells {lo}..{hi} out of bounds for {ncells} cells"
                )));
            }
        }
        self.cfg.keep_cells = range;
        Ok(())
    }

    // ---------------- checkpoint / restart ----------------

    /// Capture the complete restorable state as a versioned, checksummed
    /// binary snapshot. Restoring it (into a simulation built from the
    /// same [`PicConfig`]) and stepping on is bit-exact against an
    /// uninterrupted run, for both SoA and AoS particle layouts.
    pub fn checkpoint(&self) -> Vec<u8> {
        // AoS runs keep the AoS array canonical between sorts; serialize
        // from it so no stale SoA data leaks into the snapshot. The
        // conversion copies f64/u32 values verbatim — no precision loss.
        // SoA runs serialize straight from the live store: cloning a
        // multi-megabyte particle array per coordinated checkpoint was
        // the largest single cost of the resilient step loop.
        let converted;
        let particles = match &self.particles_aos {
            Some(aos) => {
                converted = aos.to_soa();
                &converted
            }
            None => &self.particles,
        };
        let hot_path = ckpt::HotPathMeta {
            kernel_path: self.cfg.kernel_path,
            deposit_path: self.cfg.deposit_path,
            sort_period: self.cfg.sort_period as u64,
            controller: self
                .controller
                .as_ref()
                .map(|c| c.encode_state())
                .unwrap_or_default(),
        };
        ckpt::encode_view(&ckpt::SimStateView {
            config_fingerprint: ckpt::config_fingerprint(&self.cfg),
            step_count: self.step_count as u64,
            rng_state: self.rng.state(),
            charge_ref: self.charge_ref,
            hot_path: &hot_path,
            particles,
            rho: &self.field.rho,
            ex: &self.field.ex,
            ey: &self.field.ey,
            diag: &self.diag.history,
        })
    }

    /// Replace the simulation state with a decoded snapshot.
    ///
    /// Rejects (without touching current state) snapshots that fail the
    /// checksum, carry a different format version, belong to a different
    /// configuration, or whose array shapes disagree with this
    /// simulation's grid. Derived structures (the redundant field view,
    /// the AoS mirror, the sort scratch buffer) are rebuilt, not restored
    /// — they are deterministic functions of the restored state.
    pub fn restore(&mut self, snapshot: &[u8]) -> Result<(), PicError> {
        let st = ckpt::decode(snapshot)?;
        if st.config_fingerprint != ckpt::config_fingerprint(&self.cfg) {
            return Err(PicError::Checkpoint(
                "snapshot belongs to a different configuration".into(),
            ));
        }
        let ng = self.grid.ncells();
        if st.rho.len() != ng || st.ex.len() != ng || st.ey.len() != ng {
            return Err(PicError::Checkpoint(format!(
                "snapshot grid size {} does not match {} cells",
                st.rho.len(),
                ng
            )));
        }
        let ncells = self.layout.as_dyn().ncells();
        if st.particles.icell.iter().any(|&c| (c as usize) >= ncells) {
            return Err(PicError::Checkpoint(
                "snapshot particle cell index out of range".into(),
            ));
        }
        // Resume the snapshot's controller decision state before adopting
        // anything (a bad blob must reject without touching live state).
        // An empty blob means the snapshot was taken without a controller:
        // start this one fresh from the recorded knobs.
        let restored_ctrl = match &self.controller {
            Some(c) if !st.hot_path.controller.is_empty() => {
                let mut nc = c.clone();
                nc.restore_state(&st.hot_path.controller)?;
                Some(nc)
            }
            Some(c) => Some(HotPathController::new(
                c.config().clone(),
                st.hot_path.kernel_path,
                st.hot_path.deposit_path,
            )),
            None => None,
        };

        // Adopt the hot-path metadata: the controller (or the autotuner)
        // may have moved these off the configured defaults, and a resumed
        // run must continue from the last decision, not silently revert.
        self.cfg.kernel_path = st.hot_path.kernel_path;
        self.cfg.deposit_path = st.hot_path.deposit_path;
        self.cfg.sort_period = st.hot_path.sort_period as usize;
        self.controller = restored_ctrl;

        self.step_count = st.step_count as usize;
        self.rng = Rng::from_state(st.rng_state);
        self.charge_ref = st.charge_ref;
        self.scratch = ParticlesSoA::zeroed(st.particles.len());
        self.particles = st.particles;
        self.field.rho = st.rho;
        self.field.ex = st.ex;
        self.field.ey = st.ey;
        self.diag.history = st.diag;
        self.rho4.clear();
        self.refresh_field_views();
        self.particles_aos =
            (self.cfg.particle_layout == ParticleLayout::Aos).then(|| self.particles.to_aos());
        Ok(())
    }

    /// Write a checkpoint to a file.
    pub fn save_checkpoint(&self, path: impl AsRef<std::path::Path>) -> Result<(), PicError> {
        std::fs::write(path.as_ref(), self.checkpoint())
            .map_err(|e| PicError::Io(format!("write {}: {e}", path.as_ref().display())))
    }

    /// Restore from a checkpoint file written by
    /// [`save_checkpoint`](Self::save_checkpoint).
    pub fn restore_from_file(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), PicError> {
        let bytes = std::fs::read(path.as_ref())
            .map_err(|e| PicError::Io(format!("read {}: {e}", path.as_ref().display())))?;
        self.restore(&bytes)
    }

    /// Deposit the initial charge without moving particles. Always runs the
    /// scalar `Exact` kernel (off the hot path), so every [`DepositPath`]
    /// starts a run from bit-identical initial state.
    fn deposit_initial(&mut self) {
        self.rho4.clear();
        accumulate::accumulate_redundant(
            &self.particles.icell,
            &self.particles.dx,
            &self.particles.dy,
            &mut self.rho4.rho4,
            self.wq * QE.signum(),
        );
        self.rho4
            .reduce_to_grid(self.layout.as_dyn(), &mut self.field.rho);
    }

    /// Solve Poisson from `field.rho` into `field.ex/ey`. Multi-threaded
    /// runs stripe the FFT passes over the persistent pool
    /// ([`PoissonSolver2D::solve_e_pooled`]); the two paths are bit-exact,
    /// so trajectories stay invariant under the thread count.
    fn solve_field(&mut self) {
        let t = Instant::now();
        match &self.pool {
            Some(pool) => self.solver.solve_e_pooled(
                &self.field.rho,
                &mut self.field.ex,
                &mut self.field.ey,
                &mut self.solve_scratch,
                pool.as_ref(),
            ),
            None => self.solver.solve_e_with(
                &self.field.rho,
                &mut self.field.ex,
                &mut self.field.ey,
                &mut self.solve_scratch,
            ),
        }
        self.timers.solve += t.elapsed().as_secs_f64();
    }

    /// Rebuild the redundant (possibly scaled) field view from `field`.
    fn refresh_field_views(&mut self) {
        let t = Instant::now();
        if self.cfg.field_layout == FieldLayout::Redundant {
            let (sx, sy) = self.kick_scales();
            self.e8.fill_from(&self.field, self.layout.as_dyn(), sx, sy);
        }
        self.timers.convert += t.elapsed().as_secs_f64();
    }

    /// Per-axis field pre-scale factors for the redundant view.
    fn kick_scales(&self) -> (f64, f64) {
        if self.cfg.hoisted {
            // Δv_grid = (q/m)·E·Δt · (Δt/Δ) — all folded into the stored field.
            let c = QE * self.cfg.dt / ME;
            (
                c * self.cfg.dt / self.grid.dx(),
                c * self.cfg.dt / self.grid.dy(),
            )
        } else {
            (1.0, 1.0)
        }
    }

    /// A pre-scaled copy of the standard field arrays: `E · qΔt²/(mΔ)` per
    /// axis — the §IV-D hoisting applied to the standard layout (one
    /// O(ncells) pass per step instead of O(N) per-particle multiplies).
    fn scaled_standard_field(&self) -> Field2D {
        let (sx, sy) = self.kick_scales();
        let mut f = self.field.clone();
        for v in f.ex.iter_mut() {
            *v *= sx;
        }
        for v in f.ey.iter_mut() {
            *v *= sy;
        }
        f
    }

    /// `(coeff_x, coeff_y)` for unhoisted kicks, `scale` for unhoisted pushes.
    fn unhoisted_coeffs(&self) -> (f64, f64, f64) {
        let c = QE * self.cfg.dt / ME;
        (c, c, self.cfg.dt / self.grid.dx())
    }

    /// Shift velocities back Δt/2 using the freshly solved initial field
    /// (physical velocity units at this point).
    fn half_kick_back(&mut self) {
        let mut e8 = RedundantE::new(self.layout.as_dyn());
        e8.fill_from(&self.field, self.layout.as_dyn(), 1.0, 1.0);
        let c = -0.5 * QE * self.cfg.dt / ME;
        velocity::update_velocities_redundant(
            &self.particles.icell,
            &self.particles.dx,
            &self.particles.dy,
            &mut self.particles.vx,
            &mut self.particles.vy,
            &e8.e8,
            c,
            c,
        );
    }

    fn nchunks(&self) -> usize {
        self.cfg.threads.max(1) * 4
    }

    /// Advance one time step (paper Fig. 1, lines 4–13).
    pub fn step(&mut self) {
        self.step_with_reduce(|_| {});
    }

    /// Advance one step, calling `reduce` on the freshly deposited grid ρ
    /// *before* the Poisson solve. This is the hook for the paper's
    /// process-level parallelism (§V-A): with particles split across ranks,
    /// `reduce` performs the `MPI_ALLREDUCE` that sums the per-rank charge
    /// densities, and every rank then solves Poisson over the whole grid.
    pub fn step_with_reduce(&mut self, reduce: impl FnOnce(&mut [f64])) {
        self.step_pre_reduce();
        // Charge reduction across ranks (no-op in single-process runs).
        reduce(&mut self.field.rho);
        self.step_post_reduce();
    }

    /// First half of a step: sort (periodically) and run the particle
    /// loops, leaving the freshly deposited per-rank ρ in
    /// [`rho_mut`](Self::rho_mut). Distributed drivers that cannot express
    /// their reduction as a closure (e.g. a fallible collective that may
    /// need recovery) call this, reduce ρ themselves, then finish the step
    /// with [`step_post_reduce`](Self::step_post_reduce).
    pub fn step_pre_reduce(&mut self) {
        self.step_count += 1;

        // Periodic sort (lines 4–6): disorder-driven when a controller is
        // attached, the fixed configured cadence otherwise.
        let sort_now = match &self.controller {
            Some(c) => c.should_sort(),
            None => {
                self.cfg.sort_period > 0 && self.step_count.is_multiple_of(self.cfg.sort_period)
            }
        };
        if sort_now {
            self.sort_particles();
            // Hot-path decisions are committed only at sort boundaries, so
            // `Exact`-path runs stay bit-exact between them and the deposit
            // always sees freshly sorted runs.
            if let Some(mut c) = self.controller.take() {
                let (k, d) = c.on_sort(self.step_count as u64);
                self.cfg.kernel_path = k;
                self.cfg.deposit_path = d;
                self.controller = Some(c);
            }
        }

        // Particle loops (lines 7–12).
        let before = self.timers;
        match self.cfg.particle_layout {
            ParticleLayout::Soa => self.step_soa(),
            ParticleLayout::Aos => self.step_aos(),
        }
        self.observe_controller(before);
    }

    /// Feed the attached controller this step's observables: the sampled
    /// particle disorder and the particle-loop wall seconds (the timer
    /// delta across the loops — sort ran before `before` was captured and
    /// the solve/convert phases run after, so the delta is exactly the
    /// kick/push/deposit time).
    fn observe_controller(&mut self, before: PhaseTimes) {
        let Some(c) = self.controller.as_mut() else {
            return;
        };
        let secs = self.timers.total() - before.total();
        let stride = c.config().stride;
        let cells = self.grid.ncells();
        let d = match &self.particles_aos {
            Some(aos) => {
                control::measure_disorder_with(aos.p.len(), stride, cells, |i| aos.p[i].icell)
            }
            None => control::measure_disorder(&self.particles.icell, stride, cells),
        };
        c.observe(d, secs);
    }

    /// Second half of a step: Poisson solve on the (reduced) ρ and
    /// diagnostics. Must follow a [`step_pre_reduce`](Self::step_pre_reduce).
    pub fn step_post_reduce(&mut self) {
        // ρ₄ → grid ρ (redundant path) happened inside step_*; solve (line 13).
        self.solve_field();
        self.refresh_field_views();
        self.record_diag();
    }

    /// Mutable view of the deposited charge density, for in-place reduction
    /// between [`step_pre_reduce`](Self::step_pre_reduce) and
    /// [`step_post_reduce`](Self::step_post_reduce).
    pub fn rho_mut(&mut self) -> &mut [f64] {
        &mut self.field.rho
    }

    /// Finish a step whose Poisson solve happened *outside* this simulation:
    /// rebuild the redundant field view from the externally written
    /// [`e_field_mut`](Self::e_field_mut) arrays and record diagnostics.
    /// The decomposed driver uses this — one rank solves the global field
    /// and scatters each subdomain's E values, so the local solver never
    /// runs. Must follow a [`step_pre_reduce`](Self::step_pre_reduce).
    ///
    /// Diagnostics recorded here are *local* (this rank's particles, and
    /// field values only valid on the subdomain's points) — meaningful
    /// after a cross-rank reduction, not per rank.
    pub fn step_post_external_solve(&mut self) {
        self.refresh_field_views();
        self.record_diag();
    }

    /// Run `n` steps.
    pub fn run(&mut self, n: usize) {
        for _ in 0..n {
            self.step();
        }
    }

    /// Sort the particles now, regardless of the configured period (used by
    /// the [`crate::autotune`] machinery and by harnesses that manage their
    /// own sorting schedule).
    pub fn force_sort(&mut self) {
        self.sort_particles();
    }

    /// Switch between scalar and lane-blocked inner kernels at runtime.
    /// Both paths produce bit-identical physics, so this is safe mid-run;
    /// the autotuner and benches use it to compare the two.
    pub fn set_kernel_path(&mut self, path: KernelPath) {
        self.cfg.kernel_path = path;
    }

    /// Switch the deposition kernel at runtime. Unlike
    /// [`set_kernel_path`](Self::set_kernel_path) this *does* change the
    /// rounding of subsequent steps (within the per-cell FP bound of
    /// [`crate::kernels::deposit`]) unless switching between the two exact
    /// forms; the autotuner restores the configured value after its trials,
    /// and checkpoints record the active value as metadata so a restored
    /// run resumes it.
    pub fn set_deposit_path(&mut self, path: DepositPath) {
        self.cfg.deposit_path = path;
    }

    /// Change the fixed sort cadence at runtime (0 = never). Ignored while
    /// a controller is attached — the controller owns the sort schedule.
    pub fn set_sort_period(&mut self, period: usize) {
        self.cfg.sort_period = period;
    }

    /// Attach an online adaptive controller ([`crate::control`]) starting
    /// from the currently active kernel/deposit knobs. Also records the
    /// profile in the configuration, so subsequent checkpoints fingerprint
    /// the controller-enabled run.
    pub fn enable_controller(&mut self, ccfg: ControllerConfig) {
        self.cfg.controller = Some(ccfg.clone());
        self.controller = Some(HotPathController::new(
            ccfg,
            self.cfg.kernel_path,
            self.cfg.deposit_path,
        ));
    }

    /// The attached adaptive controller, if any.
    pub fn controller(&self) -> Option<&HotPathController> {
        self.controller.as_ref()
    }

    /// Drain the hot-path switch events applied since the last call
    /// (empty when no controller is attached). Drivers ledger these
    /// through [`crate::faultlog::FaultLog`] /
    /// [`crate::diag::DiagStream`].
    pub fn take_hot_path_events(&mut self) -> Vec<SwitchEvent> {
        self.controller
            .as_mut()
            .map(|c| c.take_events())
            .unwrap_or_default()
    }

    /// Tell the attached controller that an external mechanism (rank
    /// migration, a live re-partition) just reordered the particle store,
    /// so the next eligible boundary sorts. No-op without a controller.
    pub fn note_external_shuffle(&mut self) {
        if let Some(c) = self.controller.as_mut() {
            c.note_shuffle();
        }
    }

    /// Pre-reserve diagnostic-history capacity for `n` further steps so
    /// steady-state stepping appends samples without reallocating.
    pub fn reserve_diagnostics(&mut self, n: usize) {
        self.diag.history.reserve(n);
    }

    fn sort_particles(&mut self) {
        let t = Instant::now();
        let ncells = self.layout.as_dyn().ncells();
        // Keep the canonical representation (SoA or AoS) sorted.
        if self.cfg.particle_layout == ParticleLayout::Aos {
            if let Some(aos) = self.particles_aos.take() {
                self.particles = aos.to_soa();
            }
        }
        match (&self.pool, self.cfg.sort_out_of_place) {
            (Some(pool), true) => sort::pool_sort_out_of_place(
                &mut self.particles,
                &mut self.scratch,
                ncells,
                pool,
                &mut self.sort_arena,
            ),
            (None, true) => sort::sort_out_of_place_with(
                &mut self.particles,
                &mut self.scratch,
                ncells,
                &mut self.sort_arena,
            ),
            (_, false) => {
                sort::sort_in_place_with(&mut self.particles, ncells, &mut self.sort_arena)
            }
        }
        if self.cfg.particle_layout == ParticleLayout::Aos {
            self.particles_aos = Some(self.particles.to_aos());
        }
        self.timers.sort += t.elapsed().as_secs_f64();
    }

    // ---------------- SoA stepping ----------------

    fn step_soa(&mut self) {
        match (self.cfg.loop_structure, self.cfg.field_layout) {
            (LoopStructure::Split, FieldLayout::Redundant) => self.soa_split_redundant(),
            (LoopStructure::Split, FieldLayout::Standard) => self.soa_split_standard(),
            (LoopStructure::Fused, FieldLayout::Redundant) => self.soa_fused_redundant(),
            (LoopStructure::Fused, FieldLayout::Standard) => self.soa_fused_standard(),
        }
    }

    fn soa_split_redundant(&mut self) {
        let lanes = self.cfg.kernel_path == KernelPath::Lanes;
        let hoisted = self.cfg.hoisted;
        let unhoisted = self.unhoisted_coeffs();

        // Kick: elementwise over particles, so a view is a view — the pool
        // fan-out and the sequential whole-store call are bit-identical.
        let t = Instant::now();
        {
            let e8 = &self.e8.e8;
            let p = &mut self.particles;
            let kick = |v: &mut SoaViewMut<'_>| match (hoisted, lanes) {
                (true, true) => simd::update_velocities_redundant_hoisted_lanes(
                    v.icell, v.dx, v.dy, v.vx, v.vy, e8,
                ),
                (true, false) => velocity::update_velocities_redundant_hoisted(
                    v.icell, v.dx, v.dy, v.vx, v.vy, e8,
                ),
                (false, true) => simd::update_velocities_redundant_lanes(
                    v.icell,
                    v.dx,
                    v.dy,
                    v.vx,
                    v.vy,
                    e8,
                    unhoisted.0,
                    unhoisted.1,
                ),
                (false, false) => velocity::update_velocities_redundant(
                    v.icell,
                    v.dx,
                    v.dy,
                    v.vx,
                    v.vy,
                    e8,
                    unhoisted.0,
                    unhoisted.1,
                ),
            };
            match &self.pool {
                Some(pool) => {
                    let mut views: [Option<SoaViewMut<'_>>; MAX_THREADS] =
                        [const { None }; MAX_THREADS];
                    let nv = kernels::split_soa_mut_into(p, pool.nthreads(), &mut views);
                    pool.run_items(&mut views[..nv], |_, slot| {
                        kick(slot.as_mut().expect("view slot filled"));
                    });
                }
                None => {
                    let ParticlesSoA {
                        icell,
                        ix,
                        iy,
                        dx,
                        dy,
                        vx,
                        vy,
                    } = p;
                    kick(&mut SoaViewMut {
                        icell,
                        ix,
                        iy,
                        dx,
                        dy,
                        vx,
                        vy,
                    });
                }
            }
        }
        self.timers.update_v += t.elapsed().as_secs_f64();

        // Push.
        let t = Instant::now();
        self.push_positions_soa();
        self.timers.update_x += t.elapsed().as_secs_f64();

        // Deposit: kernel chosen by the (DepositPath, KernelPath) pair.
        let t = Instant::now();
        self.rho4.clear();
        let w = self.wq * QE.signum();
        match &self.pool {
            Some(pool) => {
                let (p, rho4, arenas) = (&self.particles, &mut self.rho4, &mut self.rho_arenas);
                accumulate::pool_accumulate_redundant(
                    pool,
                    &p.icell,
                    &p.dx,
                    &p.dy,
                    rho4,
                    arenas,
                    w,
                    self.cfg.deposit_path,
                    self.cfg.kernel_path,
                );
            }
            None => deposit::select_kernel(self.cfg.deposit_path, self.cfg.kernel_path)(
                &self.particles.icell,
                &self.particles.dx,
                &self.particles.dy,
                &mut self.rho4.rho4,
                w,
            ),
        }
        self.timers.accumulate += t.elapsed().as_secs_f64();

        let t = Instant::now();
        self.rho4
            .reduce_to_grid(self.layout.as_dyn(), &mut self.field.rho);
        self.timers.convert += t.elapsed().as_secs_f64();
    }

    fn soa_split_standard(&mut self) {
        // Standard fields are row-major only (validated). With hoisting the
        // kick reads a pre-scaled field copy and velocities are normalized
        // (grid units/step); unhoisted keeps per-particle coefficients.
        let hoisted = self.cfg.hoisted;
        let scaled = hoisted.then(|| self.scaled_standard_field());
        let (cx, cy, scale) = if hoisted {
            (1.0, 1.0, 1.0)
        } else {
            self.unhoisted_coeffs()
        };
        let kick_field = scaled.as_ref().unwrap_or(&self.field);
        let p = &mut self.particles;
        let t = Instant::now();
        velocity::update_velocities_standard(
            &p.ix, &p.iy, &p.dx, &p.dy, &mut p.vx, &mut p.vy, kick_field, cx, cy,
        );
        self.timers.update_v += t.elapsed().as_secs_f64();

        let t = Instant::now();
        let (ncx, ncy) = (self.grid.ncx, self.grid.ncy);
        // scale is 1.0 under hoisting (normalized velocities), Δt/Δx
        // otherwise (physical velocities).
        let eff_scale = scale;
        let ParticlesSoA {
            icell,
            ix,
            iy,
            dx,
            dy,
            vx,
            vy,
        } = p;
        match self.cfg.position_update {
            PositionUpdate::NaiveIf => position::update_positions_naive_if(
                icell, ix, iy, dx, dy, vx, vy, ncx, ncy, eff_scale,
            ),
            PositionUpdate::ModuloInt => position::update_positions_modulo(
                icell, ix, iy, dx, dy, vx, vy, ncx, ncy, eff_scale,
            ),
            PositionUpdate::Branchless => position::update_positions_branchless(
                icell, ix, iy, dx, dy, vx, vy, ncx, ncy, eff_scale,
            ),
        }
        self.timers.update_x += t.elapsed().as_secs_f64();

        let t = Instant::now();
        self.field.clear_rho();
        accumulate::accumulate_standard(
            &p.ix,
            &p.iy,
            &p.dx,
            &p.dy,
            &mut self.field.rho,
            self.grid.ncx,
            self.grid.ncy,
            self.wq * QE.signum(),
        );
        self.timers.accumulate += t.elapsed().as_secs_f64();
    }

    fn soa_fused_redundant(&mut self) {
        let t = Instant::now();
        self.rho4.clear();
        let w = self.wq * QE.signum();
        fused::fused_redundant_soa(
            &mut self.particles,
            &self.e8.e8,
            &mut self.rho4,
            self.grid.ncx,
            self.grid.ncy,
            w,
        );
        self.timers.accumulate += t.elapsed().as_secs_f64();
        let t = Instant::now();
        self.rho4
            .reduce_to_grid(self.layout.as_dyn(), &mut self.field.rho);
        self.timers.convert += t.elapsed().as_secs_f64();
    }

    fn soa_fused_standard(&mut self) {
        let hoisted = self.cfg.hoisted;
        let scaled = hoisted.then(|| self.scaled_standard_field());
        let (cx, cy, scale) = if hoisted {
            (1.0, 1.0, 1.0)
        } else {
            self.unhoisted_coeffs()
        };
        let t = Instant::now();
        self.field.clear_rho();
        // Work around the borrow of field (read ex/ey, write rho): take rho.
        let mut rho = std::mem::take(&mut self.field.rho);
        fused::fused_standard_soa(
            &mut self.particles,
            scaled.as_ref().unwrap_or(&self.field),
            &mut rho,
            cx,
            cy,
            scale,
            self.wq * QE.signum(),
        );
        self.field.rho = rho;
        self.timers.accumulate += t.elapsed().as_secs_f64();
    }

    fn push_positions_soa(&mut self) {
        let p = &mut self.particles;
        let scale = if self.cfg.hoisted {
            1.0
        } else {
            self.cfg.dt / self.grid.dx()
        };
        let (ncx, ncy) = (self.grid.ncx, self.grid.ncy);
        let lanes = self.cfg.kernel_path == KernelPath::Lanes;

        // Pooled path first: fan views out to the workers (the push is
        // elementwise, so chunking never changes results). As before, the
        // parallel path always runs the branchless kernel.
        if let Some(pool) = &self.pool {
            let mut views: [Option<SoaViewMut<'_>>; MAX_THREADS] = [const { None }; MAX_THREADS];
            let nv = kernels::split_soa_mut_into(p, pool.nthreads(), &mut views);
            macro_rules! pooled_layout {
                ($l:expr) => {{
                    let l = $l;
                    pool.run_items(&mut views[..nv], |_, slot| {
                        let v = slot.as_mut().expect("view slot filled");
                        if lanes {
                            simd::update_positions_branchless_layout_lanes(
                                v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, l, scale,
                            );
                        } else {
                            position::update_positions_branchless_layout(
                                v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, l, scale,
                            );
                        }
                    });
                }};
            }
            match &self.layout {
                AnyLayout::RowMajor(_) => pool.run_items(&mut views[..nv], |_, slot| {
                    let v = slot.as_mut().expect("view slot filled");
                    if lanes {
                        simd::update_positions_branchless_lanes(
                            v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, ncx, ncy, scale,
                        );
                    } else {
                        position::update_positions_branchless(
                            v.icell, v.ix, v.iy, v.dx, v.dy, v.vx, v.vy, ncx, ncy, scale,
                        );
                    }
                }),
                AnyLayout::L4D(l) => pooled_layout!(l),
                AnyLayout::Morton(l) => pooled_layout!(l),
                AnyLayout::Hilbert(l) => pooled_layout!(l),
            }
            return;
        }

        // Sequential path: disjoint field borrows — positions/cells mutate,
        // velocities are read-only; no copies (the paper's loop reads v and
        // writes x).
        let ParticlesSoA {
            icell,
            ix,
            iy,
            dx,
            dy,
            vx,
            vy,
        } = p;
        macro_rules! push_with_layout {
            ($l:expr) => {
                match self.cfg.position_update {
                    PositionUpdate::Branchless | PositionUpdate::ModuloInt => {
                        if lanes {
                            simd::update_positions_branchless_layout_lanes(
                                icell, ix, iy, dx, dy, vx, vy, $l, scale,
                            )
                        } else {
                            position::update_positions_branchless_layout(
                                icell, ix, iy, dx, dy, vx, vy, $l, scale,
                            )
                        }
                    }
                    PositionUpdate::NaiveIf => position::update_positions_naive_if_layout(
                        icell, ix, iy, dx, dy, vx, vy, $l, scale,
                    ),
                }
            };
        }
        match &self.layout {
            AnyLayout::RowMajor(_) => match (self.cfg.position_update, lanes) {
                (PositionUpdate::NaiveIf, _) => position::update_positions_naive_if(
                    icell, ix, iy, dx, dy, vx, vy, ncx, ncy, scale,
                ),
                (PositionUpdate::ModuloInt, _) => position::update_positions_modulo(
                    icell, ix, iy, dx, dy, vx, vy, ncx, ncy, scale,
                ),
                (PositionUpdate::Branchless, true) => simd::update_positions_branchless_lanes(
                    icell, ix, iy, dx, dy, vx, vy, ncx, ncy, scale,
                ),
                (PositionUpdate::Branchless, false) => position::update_positions_branchless(
                    icell, ix, iy, dx, dy, vx, vy, ncx, ncy, scale,
                ),
            },
            AnyLayout::L4D(l) => push_with_layout!(l),
            AnyLayout::Morton(l) => push_with_layout!(l),
            AnyLayout::Hilbert(l) => push_with_layout!(l),
        }
    }

    // ---------------- AoS stepping ----------------

    fn step_aos(&mut self) {
        let mut aos = self
            .particles_aos
            .take()
            .unwrap_or_else(|| self.particles.to_aos());
        let threads = self.cfg.threads;
        let chunk = aos.len().div_ceil(self.nchunks()).max(1);

        match (self.cfg.loop_structure, self.cfg.field_layout) {
            (LoopStructure::Fused, FieldLayout::Standard) => {
                let hoisted = self.cfg.hoisted;
                let scaled = hoisted.then(|| self.scaled_standard_field());
                let (cx, cy, scale) = if hoisted {
                    (1.0, 1.0, 1.0)
                } else {
                    self.unhoisted_coeffs()
                };
                let t = Instant::now();
                self.field.clear_rho();
                let mut rho = std::mem::take(&mut self.field.rho);
                aos::fused_standard_aos(
                    &mut aos.p,
                    scaled.as_ref().unwrap_or(&self.field),
                    &mut rho,
                    cx,
                    cy,
                    scale,
                    self.wq * QE.signum(),
                );
                self.field.rho = rho;
                self.timers.accumulate += t.elapsed().as_secs_f64();
            }
            (LoopStructure::Split, FieldLayout::Standard) => {
                let hoisted = self.cfg.hoisted;
                let scaled = hoisted.then(|| self.scaled_standard_field());
                let (cx, cy, scale) = if hoisted {
                    (1.0, 1.0, 1.0)
                } else {
                    self.unhoisted_coeffs()
                };
                let t = Instant::now();
                aos::update_velocities_standard_aos(
                    &mut aos.p,
                    scaled.as_ref().unwrap_or(&self.field),
                    cx,
                    cy,
                );
                self.timers.update_v += t.elapsed().as_secs_f64();
                let t = Instant::now();
                match self.cfg.position_update {
                    PositionUpdate::NaiveIf => aos::update_positions_naive_if_aos(
                        &mut aos.p,
                        self.grid.ncx,
                        self.grid.ncy,
                        scale,
                    ),
                    _ => aos::update_positions_branchless_aos(
                        &mut aos.p,
                        self.grid.ncx,
                        self.grid.ncy,
                        scale,
                    ),
                }
                self.timers.update_x += t.elapsed().as_secs_f64();
                let t = Instant::now();
                self.field.clear_rho();
                aos::accumulate_standard_aos(
                    &aos.p,
                    &mut self.field.rho,
                    self.grid.ncx,
                    self.grid.ncy,
                    self.wq * QE.signum(),
                );
                self.timers.accumulate += t.elapsed().as_secs_f64();
            }
            (LoopStructure::Split, FieldLayout::Redundant) => {
                // Hoisted redundant AoS pipeline (Table VII's “AoS, 3 loops”).
                let t = Instant::now();
                let scaled_e8;
                let e8: &[[f64; 8]] = if self.cfg.hoisted {
                    &self.e8.e8
                } else {
                    // Unhoisted: fold the coefficient into a scaled copy once.
                    let (cx, cy, _) = self.unhoisted_coeffs();
                    let mut scaled = self.e8.clone();
                    for cell in scaled.e8.iter_mut() {
                        let (ex, ey) = cell.split_at_mut(4);
                        for e in ex {
                            *e *= cx;
                        }
                        for e in ey {
                            *e *= cy;
                        }
                    }
                    scaled_e8 = scaled;
                    &scaled_e8.e8
                };
                if threads > 1 {
                    aos::par_update_velocities_redundant_aos(&mut aos.p, e8, chunk);
                } else {
                    aos::update_velocities_redundant_aos(&mut aos.p, e8);
                }
                self.timers.update_v += t.elapsed().as_secs_f64();
                let t = Instant::now();
                let scale = if self.cfg.hoisted {
                    1.0
                } else {
                    self.cfg.dt / self.grid.dx()
                };
                {
                    let (ncx, ncy) = (self.grid.ncx, self.grid.ncy);
                    macro_rules! aos_push {
                        ($l:expr) => {{
                            let l = $l;
                            if threads > 1 {
                                aos::par_update_positions_branchless_layout_aos(
                                    &mut aos.p, l, scale, chunk,
                                );
                            } else {
                                aos::update_positions_branchless_layout_aos(&mut aos.p, l, scale);
                            }
                        }};
                    }
                    match &self.layout {
                        AnyLayout::RowMajor(_) => {
                            if threads > 1 {
                                aos::par_update_positions_branchless_aos(
                                    &mut aos.p, ncx, ncy, scale, chunk,
                                );
                            } else {
                                aos::update_positions_branchless_aos(&mut aos.p, ncx, ncy, scale);
                            }
                        }
                        AnyLayout::L4D(l) => aos_push!(l),
                        AnyLayout::Morton(l) => aos_push!(l),
                        AnyLayout::Hilbert(l) => aos_push!(l),
                    }
                }
                self.timers.update_x += t.elapsed().as_secs_f64();
                let t = Instant::now();
                self.rho4.clear();
                let w = self.wq * QE.signum();
                let kernel = deposit::select_kernel_aos(self.cfg.deposit_path);
                if threads > 1 {
                    aos::par_accumulate_redundant_aos_with(
                        &aos.p,
                        &mut self.rho4,
                        w,
                        chunk,
                        kernel,
                    );
                } else {
                    kernel(&aos.p, &mut self.rho4.rho4, w);
                }
                self.timers.accumulate += t.elapsed().as_secs_f64();
                let t = Instant::now();
                self.rho4
                    .reduce_to_grid(self.layout.as_dyn(), &mut self.field.rho);
                self.timers.convert += t.elapsed().as_secs_f64();
            }
            (LoopStructure::Fused, FieldLayout::Redundant) => {
                // Table VII's “AoS, 1 loop” on the optimized structures.
                let t = Instant::now();
                self.rho4.clear();
                let w = self.wq * QE.signum();
                let (ncx, ncy) = (self.grid.ncx, self.grid.ncy);
                if threads > 1 {
                    let (e8, rho4) = (&self.e8.e8, &mut self.rho4);
                    aos::par_fused_redundant_aos(&mut aos.p, e8, rho4, ncx, ncy, w, chunk);
                } else {
                    aos::fused_redundant_aos(
                        &mut aos.p,
                        &self.e8.e8,
                        &mut self.rho4.rho4,
                        ncx,
                        ncy,
                        w,
                    );
                }
                self.timers.accumulate += t.elapsed().as_secs_f64();
                let t = Instant::now();
                self.rho4
                    .reduce_to_grid(self.layout.as_dyn(), &mut self.field.rho);
                self.timers.convert += t.elapsed().as_secs_f64();
            }
        }

        self.particles_aos = Some(aos);
    }

    /// Synchronize the SoA view from the AoS store (AoS runs keep the AoS
    /// array canonical between sorts; call this before reading
    /// [`particles`](Self::particles) mid-run).
    pub fn sync_particles(&mut self) {
        if let Some(aos) = &self.particles_aos {
            self.particles = aos.to_soa();
        }
    }

    // ---------------- diagnostics ----------------

    /// Kinetic energy in physical units, `½·w·m·Σ|v|²`.
    pub fn kinetic_energy(&self) -> f64 {
        let (cx, cy) = if self.cfg.hoisted {
            (self.grid.dx() / self.cfg.dt, self.grid.dy() / self.cfg.dt)
        } else {
            (1.0, 1.0)
        };
        let sum: f64 = match &self.particles_aos {
            Some(aos) => aos
                .p
                .iter()
                .map(|p| {
                    let vx = p.vx * cx;
                    let vy = p.vy * cy;
                    vx * vx + vy * vy
                })
                .sum(),
            None => self
                .particles
                .vx
                .iter()
                .zip(&self.particles.vy)
                .map(|(&ux, &uy)| {
                    let vx = ux * cx;
                    let vy = uy * cy;
                    vx * vx + vy * vy
                })
                .sum(),
        };
        0.5 * self.weight * ME * sum
    }

    /// Electrostatic field energy from the current grid field.
    pub fn field_energy(&self) -> f64 {
        self.solver.field_energy(&self.field.ex, &self.field.ey)
    }

    /// Amplitude of `E_x`'s Fourier mode `m` along x (averaged over y):
    /// `(2/ncx)·|Σ_x Ē_x(x) e^{−i 2π m x/ncx}|` with `Ē_x` the y-average.
    pub fn ex_mode_amplitude(&self, mode: usize) -> f64 {
        let (ncx, ncy) = (self.grid.ncx, self.grid.ncy);
        let mut re = 0.0;
        let mut im = 0.0;
        for ix in 0..ncx {
            let row: f64 = self.field.ex[ix * ncy..(ix + 1) * ncy].iter().sum();
            let theta = -2.0 * std::f64::consts::PI * (mode * ix) as f64 / ncx as f64;
            re += row * theta.cos();
            im += row * theta.sin();
        }
        2.0 * (re * re + im * im).sqrt() / (ncx * ncy) as f64
    }

    fn record_diag(&mut self) {
        self.diag.history.push(DiagSample {
            time: self.step_count as f64 * self.cfg.dt,
            kinetic: self.kinetic_energy(),
            field: self.field_energy(),
            ex_mode: self.ex_mode_amplitude(1),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(n: usize) -> PicConfig {
        let mut cfg = PicConfig::landau_table1(n);
        cfg.grid_nx = 32;
        cfg.grid_ny = 32;
        cfg
    }

    #[test]
    fn builds_and_steps() {
        let mut sim = Simulation::new(small(2000)).unwrap();
        sim.run(5);
        assert_eq!(sim.steps(), 5);
        assert_eq!(sim.diagnostics().history.len(), 6);
    }

    #[test]
    fn charge_is_conserved_every_step() {
        let mut sim = Simulation::new(small(3000)).unwrap();
        // Σ over grid points of the charge *density* is ncells × mean
        // density = −ncells (unit background density, normalized units).
        let expect = QE * sim.grid().ncells() as f64;
        for _ in 0..5 {
            sim.step();
            let total: f64 = sim.rho().iter().sum();
            assert!(
                (total - expect).abs() < 1e-9 * expect.abs(),
                "{total} vs {expect}"
            );
        }
    }

    #[test]
    fn energy_conserved_at_few_percent() {
        let mut cfg = small(20_000);
        cfg.dt = 0.05;
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run(40);
        let drift = sim.diagnostics().relative_energy_drift();
        assert!(drift < 0.02, "energy drift {drift}");
    }

    #[test]
    fn all_orderings_agree_on_physics() {
        // Same seed, same steps — the grid ρ must match across layouts.
        let mut reference: Option<Vec<f64>> = None;
        for ord in Ordering::paper_set() {
            let mut cfg = small(2000);
            cfg.ordering = ord;
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run(3);
            let rho = sim.rho().to_vec();
            match &reference {
                None => reference = Some(rho),
                Some(r) => {
                    for i in 0..r.len() {
                        assert!(
                            (r[i] - rho[i]).abs() < 1e-9,
                            "{ord}: rho[{i}] {} vs {}",
                            rho[i],
                            r[i]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn aos_and_soa_agree() {
        let mk = |layout| {
            let mut cfg = small(2000);
            cfg.ordering = Ordering::RowMajor;
            cfg.particle_layout = layout;
            cfg.field_layout = FieldLayout::Redundant;
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run(3);
            sim.rho().to_vec()
        };
        let a = mk(ParticleLayout::Soa);
        let b = mk(ParticleLayout::Aos);
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-9, "rho[{i}]");
        }
    }

    #[test]
    fn fused_and_split_agree() {
        let mk = |ls| {
            let mut cfg = small(2000);
            cfg.ordering = Ordering::RowMajor;
            cfg.loop_structure = ls;
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run(3);
            sim.rho().to_vec()
        };
        let a = mk(LoopStructure::Split);
        let b = mk(LoopStructure::Fused);
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-9, "rho[{i}]");
        }
    }

    #[test]
    fn standard_and_redundant_fields_agree() {
        let mk = |fl, hoisted| {
            let mut cfg = small(2000);
            cfg.ordering = Ordering::RowMajor;
            cfg.field_layout = fl;
            cfg.hoisted = hoisted;
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run(3);
            sim.rho().to_vec()
        };
        let a = mk(FieldLayout::Redundant, false);
        let b = mk(FieldLayout::Standard, false);
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-9, "rho[{i}]");
        }
    }

    #[test]
    fn hoisted_standard_fields_agree_with_unhoisted() {
        let mk = |hoisted| {
            let mut cfg = small(2000);
            cfg.ordering = Ordering::RowMajor;
            cfg.field_layout = FieldLayout::Standard;
            cfg.hoisted = hoisted;
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run(4);
            sim.rho().to_vec()
        };
        let a = mk(true);
        let b = mk(false);
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-8, "rho[{i}]: {} vs {}", a[i], b[i]);
        }
    }

    #[test]
    fn hoisted_and_unhoisted_agree() {
        let mk = |hoisted| {
            let mut cfg = small(2000);
            cfg.ordering = Ordering::RowMajor;
            cfg.hoisted = hoisted;
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run(4);
            sim.rho().to_vec()
        };
        let a = mk(true);
        let b = mk(false);
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-8, "rho[{i}]: {} vs {}", a[i], b[i]);
        }
    }

    #[test]
    fn threads_do_not_change_physics() {
        let mk = |threads| {
            let mut cfg = small(5000);
            cfg.threads = threads;
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run(3);
            sim.rho().to_vec()
        };
        let a = mk(1);
        let b = mk(4);
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-9, "rho[{i}]");
        }
    }

    #[test]
    fn sorting_does_not_change_physics() {
        let mk = |period, oop| {
            let mut cfg = small(3000);
            cfg.sort_period = period;
            cfg.sort_out_of_place = oop;
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run(6);
            sim.rho().to_vec()
        };
        let a = mk(0, true);
        let b = mk(2, true);
        let c = mk(2, false);
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-9);
            assert!((a[i] - c[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn position_update_variants_agree() {
        let mk = |pu| {
            let mut cfg = small(2000);
            cfg.ordering = Ordering::RowMajor;
            cfg.position_update = pu;
            let mut sim = Simulation::new(cfg).unwrap();
            sim.run(4);
            sim.rho().to_vec()
        };
        let a = mk(PositionUpdate::Branchless);
        let b = mk(PositionUpdate::NaiveIf);
        let c = mk(PositionUpdate::ModuloInt);
        for i in 0..a.len() {
            assert!((a[i] - b[i]).abs() < 1e-9);
            assert!((a[i] - c[i]).abs() < 1e-9);
        }
    }

    #[test]
    fn amplitude_rate_recovers_planted_exponential() {
        // Synthetic diagnostics: A(t) = e^{0.35 t} → fitted rate 0.35.
        let mut d = Diagnostics::default();
        for i in 0..50 {
            let t = i as f64 * 0.1;
            d.history.push(DiagSample {
                time: t,
                kinetic: 0.0,
                field: 0.0,
                ex_mode: (0.35 * t).exp(),
            });
        }
        let r = d.mode_amplitude_rate(0.0, 5.0).unwrap();
        assert!((r - 0.35).abs() < 1e-9, "rate {r}");
        // A monotone signal has no interior peaks: envelope fit defers.
        assert!(d.mode_envelope_rate(0.0, 5.0).is_none());
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut cfg = small(0);
        assert!(Simulation::new(cfg.clone()).is_err());
        cfg.n_particles = 100;
        cfg.field_layout = FieldLayout::Standard;
        cfg.ordering = Ordering::Morton;
        assert!(Simulation::new(cfg).is_err());
    }

    #[test]
    fn timers_accumulate() {
        let mut sim = Simulation::new(small(2000)).unwrap();
        sim.run(3);
        let t = sim.timers();
        assert!(t.update_v > 0.0);
        assert!(t.update_x > 0.0);
        assert!(t.accumulate > 0.0);
        assert!(t.solve > 0.0);
        sim.reset_timers();
        assert_eq!(sim.timers().total(), 0.0);
    }

    #[test]
    fn landau_mode_amplitude_decays() {
        // Linear Landau damping: the fundamental E_x mode decays at
        // γ ≈ −0.153 for k = 0.5, so its amplitude at t≈8 sits well below
        // the initial one. (Total field energy is noise-dominated at this
        // particle count, so we track the mode, as the paper's validation
        // does.)
        let mut cfg = PicConfig::landau_table1(100_000);
        cfg.grid_nx = 32;
        cfg.grid_ny = 16;
        cfg.dt = 0.1;
        let mut sim = Simulation::new(cfg).unwrap();
        sim.run(80); // t = 8
        let h = &sim.diagnostics().history;
        let early = h[0].ex_mode;
        let late_max = h[60..].iter().map(|s| s.ex_mode).fold(0.0f64, f64::max);
        assert!(
            late_max < 0.5 * early,
            "expected damping: early {early}, late max {late_max}"
        );
    }
}
