//! Automatic selection of the sorting period — the future work the paper
//! names explicitly (§IV-E: “the optimal number of iterations between two
//! sorting steps can vary according to the architecture. Therefore it will
//! be interesting to implement an automatic finding of this optimal
//! number.”).
//!
//! The cost model is simple and measured, not assumed: sorting every `P`
//! steps costs `sort_time / P` per step but keeps the particle traversal of
//! the field arrays cache-friendly; as particles randomize, the per-step
//! particle-loop time creeps up. [`autotune_sort_period`] measures the
//! per-step wall time of short trial windows at several candidate periods
//! on the *live* simulation state and returns the cheapest.
//!
//! These stop-the-world trial windows are the *calibration fallback*; the
//! closed-loop successor that retunes continuously from per-step disorder
//! observations is [`crate::control`]. Both drivers plug in through the
//! [`Tunable`] trait, so every tuner here is written once and works on
//! either simulation kind.

use crate::em::EmSimulation;
use crate::sim::{DepositPath, KernelPath, Simulation};
use crate::PicError;
use std::time::Instant;

/// The handful of operations a trial-window tuner needs from a simulation:
/// sort now, advance one step, and get/set the two hot-path knobs. Both
/// [`Simulation`] and [`EmSimulation`] implement it, so the trial loops
/// below are generic instead of being duplicated per driver behind
/// parallel `&mut dyn FnMut` closures.
pub trait Tunable {
    /// Sort the particle store(s) now, regardless of the configured period.
    fn force_sort(&mut self);
    /// Advance one time step.
    fn advance(&mut self);
    /// The active kernel path.
    fn kernel_path(&self) -> KernelPath;
    /// Switch the kernel path (bit-identical arms, safe mid-run).
    fn set_kernel_path(&mut self, path: KernelPath);
    /// The active deposition path.
    fn deposit_path(&self) -> DepositPath;
    /// Switch the deposition path (rounding changes within the per-cell
    /// FP bound unless moving between exact forms).
    fn set_deposit_path(&mut self, path: DepositPath);
}

impl Tunable for Simulation {
    fn force_sort(&mut self) {
        Simulation::force_sort(self);
    }
    fn advance(&mut self) {
        self.step();
    }
    fn kernel_path(&self) -> KernelPath {
        self.config().kernel_path
    }
    fn set_kernel_path(&mut self, path: KernelPath) {
        Simulation::set_kernel_path(self, path);
    }
    fn deposit_path(&self) -> DepositPath {
        self.config().deposit_path
    }
    fn set_deposit_path(&mut self, path: DepositPath) {
        Simulation::set_deposit_path(self, path);
    }
}

impl Tunable for EmSimulation {
    fn force_sort(&mut self) {
        EmSimulation::force_sort(self);
    }
    fn advance(&mut self) {
        self.step();
    }
    fn kernel_path(&self) -> KernelPath {
        self.config().kernel_path
    }
    fn set_kernel_path(&mut self, path: KernelPath) {
        EmSimulation::set_kernel_path(self, path);
    }
    fn deposit_path(&self) -> DepositPath {
        self.config().deposit_path
    }
    fn set_deposit_path(&mut self, path: DepositPath) {
        EmSimulation::set_deposit_path(self, path);
    }
}

/// Result of one tuning trial.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// The sorting period tried.
    pub period: usize,
    /// Measured mean seconds per step, including amortized sorting.
    pub secs_per_step: f64,
}

/// Outcome of the auto-tuning run.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// All trials, in the order they ran.
    pub trials: Vec<TrialResult>,
    /// The winning period.
    pub best_period: usize,
}

/// Measure `window` steps per candidate period on `sim` (which keeps
/// advancing — the tuner is designed to run inside a long simulation, the
/// way the paper imagines deploying it) and return the report. The
/// simulation's configured sort period is NOT changed; the caller applies
/// `report.best_period` via its config for subsequent runs.
///
/// `candidates` must be non-empty and positive (violations are user
/// configuration, reported as [`PicError::Config`]); `window` should be at
/// least as large as the largest candidate so each trial pays its sort
/// exactly once.
pub fn autotune_sort_period(
    sim: &mut Simulation,
    candidates: &[usize],
    window: usize,
) -> Result<TuneReport, PicError> {
    tune_sort_period(sim, candidates, window)
}

/// [`autotune_sort_period`] for the multi-species 2d3v driver — identical
/// trial schedule, measured over [`EmSimulation::step`].
pub fn autotune_em_sort_period(
    sim: &mut EmSimulation,
    candidates: &[usize],
    window: usize,
) -> Result<TuneReport, PicError> {
    tune_sort_period(sim, candidates, window)
}

/// The generic trial loop behind [`autotune_sort_period`]: emulate "sort
/// every `period`" within a window on the live simulation and time the
/// steps.
pub fn tune_sort_period<S: Tunable>(
    sim: &mut S,
    candidates: &[usize],
    window: usize,
) -> Result<TuneReport, PicError> {
    if candidates.is_empty() {
        return Err(PicError::Config(
            "autotune needs at least one candidate period".into(),
        ));
    }
    let mut trials = Vec::with_capacity(candidates.len());
    for &period in candidates {
        if period == 0 {
            return Err(PicError::Config(
                "autotune candidate periods must be positive".into(),
            ));
        }
        let w = window.max(period);
        let t = Instant::now();
        let mut left = w;
        while left > 0 {
            // Emulate "sort every `period`" within the window: run
            // period−1 unsorted steps, then one step with a forced sort.
            let run = period.min(left);
            for i in 0..run {
                if i == run - 1 && run == period {
                    sim.force_sort();
                }
                sim.advance();
            }
            left -= run;
        }
        trials.push(TrialResult {
            period,
            secs_per_step: t.elapsed().as_secs_f64() / w as f64,
        });
    }
    let best_period = trials
        .iter()
        // Wall-clock measurements are always finite, so total_cmp gives the
        // same order partial_cmp would; trials is non-empty because
        // candidates is.
        .min_by(|a, b| a.secs_per_step.total_cmp(&b.secs_per_step))
        .expect("candidates verified non-empty")
        .period;
    Ok(TuneReport {
        trials,
        best_period,
    })
}

/// Result of one hot-path tuning trial: a (kernel path, deposit path, sort
/// period) triple.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HotPathTrial {
    /// The kernel path tried.
    pub path: KernelPath,
    /// The deposition path tried.
    pub deposit: DepositPath,
    /// The sorting period tried.
    pub period: usize,
    /// Measured mean seconds per step, including amortized sorting.
    pub secs_per_step: f64,
}

/// Outcome of the three-dimensional hot-path tuning run.
#[derive(Debug, Clone)]
pub struct HotPathReport {
    /// All trials, in the order they ran.
    pub trials: Vec<HotPathTrial>,
    /// The winning kernel path.
    pub best_path: KernelPath,
    /// The winning deposition path.
    pub best_deposit: DepositPath,
    /// The winning period.
    pub best_period: usize,
}

/// Tune the kernel path × deposit path × sort period grid on the live
/// simulation: for each (kernel, deposit) pair, run
/// [`autotune_sort_period`] over `periods`. The knobs interact — the
/// sorted-batch deposit lives or dies by the run lengths the sort period
/// maintains, and lane-blocked kernels shift the balance between compute
/// and the cache misses that sorting repairs — so the grid is measured
/// jointly rather than per-axis. The simulation's kernel and deposit paths
/// are restored to their configured values afterwards; as with the period
/// tuner, the caller applies the winners. Note the trials themselves
/// advance the simulation under each candidate deposit path, so a tuned
/// run's trajectory is reproducible only by replaying the same tuning
/// schedule (the reassociated paths round differently within the per-cell
/// FP bound).
pub fn autotune_hot_path(
    sim: &mut Simulation,
    periods: &[usize],
    paths: &[KernelPath],
    deposits: &[DepositPath],
    window: usize,
) -> Result<HotPathReport, PicError> {
    tune_hot_path(sim, periods, paths, deposits, window)
}

/// Tune the kernel path × deposit path × sort period grid on a live
/// multi-species 2d3v simulation — the EM counterpart of
/// [`autotune_hot_path`], with the same restore-after-trials contract. The
/// grid now also covers the Boris push and current-deposit kernels, which
/// share the `KernelPath`/`DepositPath` knobs with the ρ deposit.
pub fn autotune_em_hot_path(
    sim: &mut EmSimulation,
    periods: &[usize],
    paths: &[KernelPath],
    deposits: &[DepositPath],
    window: usize,
) -> Result<HotPathReport, PicError> {
    tune_hot_path(sim, periods, paths, deposits, window)
}

/// The generic grid loop behind [`autotune_hot_path`] /
/// [`autotune_em_hot_path`] — one implementation for every [`Tunable`]
/// driver.
pub fn tune_hot_path<S: Tunable>(
    sim: &mut S,
    periods: &[usize],
    paths: &[KernelPath],
    deposits: &[DepositPath],
    window: usize,
) -> Result<HotPathReport, PicError> {
    if paths.is_empty() {
        return Err(PicError::Config(
            "autotune needs at least one kernel path".into(),
        ));
    }
    if deposits.is_empty() {
        return Err(PicError::Config(
            "autotune needs at least one deposit path".into(),
        ));
    }
    let original = sim.kernel_path();
    let original_deposit = sim.deposit_path();
    let restore = |sim: &mut S| {
        sim.set_kernel_path(original);
        sim.set_deposit_path(original_deposit);
    };
    let mut trials = Vec::with_capacity(paths.len() * deposits.len() * periods.len());
    for &path in paths {
        sim.set_kernel_path(path);
        for &dep in deposits {
            sim.set_deposit_path(dep);
            let report = match tune_sort_period(sim, periods, window) {
                Ok(r) => r,
                Err(e) => {
                    restore(sim);
                    return Err(e);
                }
            };
            trials.extend(report.trials.iter().map(|t| HotPathTrial {
                path,
                deposit: dep,
                period: t.period,
                secs_per_step: t.secs_per_step,
            }));
        }
    }
    restore(sim);
    let best = trials
        .iter()
        .min_by(|a, b| a.secs_per_step.total_cmp(&b.secs_per_step))
        .expect("paths, deposits, and periods verified non-empty");
    Ok(HotPathReport {
        best_path: best.path,
        best_deposit: best.deposit,
        best_period: best.period,
        trials,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::PicConfig;

    fn sim(n: usize) -> Simulation {
        let mut cfg = PicConfig::landau_table1(n);
        cfg.grid_nx = 32;
        cfg.grid_ny = 32;
        cfg.sort_period = 0; // the tuner drives sorting itself
        Simulation::new(cfg).unwrap()
    }

    #[test]
    fn returns_a_candidate() {
        let mut s = sim(5_000);
        let report = autotune_sort_period(&mut s, &[5, 10, 20], 20).unwrap();
        assert_eq!(report.trials.len(), 3);
        assert!([5, 10, 20].contains(&report.best_period));
        for t in &report.trials {
            assert!(t.secs_per_step > 0.0);
        }
    }

    #[test]
    fn simulation_keeps_advancing() {
        let mut s = sim(2_000);
        let before = s.steps();
        autotune_sort_period(&mut s, &[4, 8], 8).unwrap();
        assert!(s.steps() >= before + 16);
    }

    #[test]
    fn physics_unchanged_by_tuning_schedule() {
        // Sorting is a permutation: a tuned run and a never-sorted run end
        // with the same ρ.
        let mut a = sim(2_000);
        let mut b = sim(2_000);
        autotune_sort_period(&mut a, &[3], 6).unwrap();
        b.run(6);
        let (ra, rb) = (a.rho(), b.rho());
        for i in 0..ra.len() {
            assert!((ra[i] - rb[i]).abs() < 1e-9, "rho[{i}]");
        }
    }

    #[test]
    fn hot_path_tunes_all_axes_and_restores_paths() {
        let mut s = sim(3_000);
        let configured = s.config().kernel_path;
        let configured_deposit = s.config().deposit_path;
        let report = autotune_hot_path(
            &mut s,
            &[5, 10],
            &[KernelPath::Scalar, KernelPath::Lanes],
            &[
                DepositPath::Exact,
                DepositPath::LaneReduce,
                DepositPath::SortedBlock,
            ],
            10,
        )
        .unwrap();
        assert_eq!(report.trials.len(), 12);
        assert!([5, 10].contains(&report.best_period));
        assert_eq!(s.config().kernel_path, configured);
        assert_eq!(s.config().deposit_path, configured_deposit);
        assert!(report.trials.iter().all(|t| t.secs_per_step > 0.0));
        assert!(report.trials.iter().any(|t| t.path == report.best_path
            && t.deposit == report.best_deposit
            && t.period == report.best_period));
    }

    #[test]
    fn hot_path_rejects_empty_axes() {
        let mut s = sim(1_000);
        let deposits = [DepositPath::Exact];
        assert!(matches!(
            autotune_hot_path(&mut s, &[5], &[], &deposits, 5),
            Err(crate::PicError::Config(_))
        ));
        assert!(matches!(
            autotune_hot_path(&mut s, &[5], &[KernelPath::Lanes], &[], 5),
            Err(crate::PicError::Config(_))
        ));
        assert!(matches!(
            autotune_hot_path(&mut s, &[], &[KernelPath::Lanes], &deposits, 5),
            Err(crate::PicError::Config(_))
        ));
    }

    #[test]
    fn em_hot_path_tunes_and_restores() {
        let mut cfg = crate::em::EmConfig::ion_acoustic(800);
        cfg.grid_nx = 16;
        cfg.grid_ny = 16;
        cfg.lx = 4.0 * std::f64::consts::PI;
        cfg.ly = 4.0 * std::f64::consts::PI;
        cfg.sort_period = 0;
        let mut s = EmSimulation::new(cfg).unwrap();
        let configured = s.config().kernel_path;
        let configured_deposit = s.config().deposit_path;
        let report = autotune_em_hot_path(
            &mut s,
            &[4, 8],
            &[KernelPath::Scalar, KernelPath::Lanes],
            &[DepositPath::Exact, DepositPath::LaneReduce],
            8,
        )
        .unwrap();
        assert_eq!(report.trials.len(), 8);
        assert_eq!(s.config().kernel_path, configured);
        assert_eq!(s.config().deposit_path, configured_deposit);
        assert!(report.trials.iter().all(|t| t.secs_per_step > 0.0));
    }

    #[test]
    fn empty_candidates_report_config_error() {
        let mut s = sim(1_000);
        let err = autotune_sort_period(&mut s, &[], 10).unwrap_err();
        assert!(matches!(err, crate::PicError::Config(_)), "{err}");
        let err = autotune_sort_period(&mut s, &[0], 10).unwrap_err();
        assert!(matches!(err, crate::PicError::Config(_)), "{err}");
    }
}
